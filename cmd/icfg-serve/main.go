// Command icfg-serve runs the rewriter as a daemon. Clients POST
// serialised binaries to /rewrite (see internal/service for the wire
// format, or use icfg-rewrite -remote) and get back rewritten images;
// analyses are cached by content hash so repeat rewrites of the same
// binary skip CFG construction, jump-table analysis, and function-
// pointer analysis entirely.
//
// Usage:
//
//	icfg-serve [-addr :8844] [-workers N] [-queue N] [-batch-queue N]
//	           [-analyses N] [-results N] [-funcs N] [-disk dir]
//	           [-batch-dir dir] [-max-body N] [-timeout dur]
//	           [-patch-jobs N]
//	           [-self URL -peers URL,URL,...] [-replicas N]
//	           [-peer-timeout dur] [-probe dur]
//
// /batch accepts a JSON manifest of binaries and rewrite options,
// returns a job ID, and streams per-binary progress over SSE at
// /batch/{id}/events (poll /batch/{id} as a fallback; fetch outputs
// from /batch/{id}/output/{i}). Batch items run on a lower-priority
// scheduler lane — interactive /rewrite traffic always dispatches
// first — and identical binaries across jobs share one analysis. With
// -batch-dir, job state persists across restarts: a daemon killed
// mid-batch finishes the job when it comes back.
//
// Besides /rewrite, /stats, and /healthz, the server exposes /metrics
// (Prometheus text: request outcomes, cache paths, per-stage latency
// histograms, queue and store gauges) and /debug/pprof for profiling a
// live daemon. Clients can add trace=1 to /rewrite for a span tree of
// their request.
//
// With -self and -peers the daemon joins a rewrite cluster
// (internal/cluster): requests route by binary content hash over a
// consistent-hash ring, non-owned requests forward to a healthy owner,
// and analysis misses first ask the owning peer for its cached function
// units (the warm path) before recomputing. Front the peer set with
// icfg-gateway for a single client-facing address.
//
// SIGINT/SIGTERM drain gracefully: in-flight rewrites complete, queued
// requests are rejected with 503, and the final cache statistics are
// printed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"icfgpatch/internal/cluster"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/batch"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	workers := flag.Int("workers", 0, "rewrite worker count (default: GOMAXPROCS)")
	queue := flag.Int("queue", 0, "request queue depth (default: 64)")
	batchQueue := flag.Int("batch-queue", 0, "batch-lane queue depth (default: 256)")
	batchDir := flag.String("batch-dir", "", "persist batch job state here (enables resume after restart)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes for /rewrite and /batch (default 256MiB, -1: unbounded)")
	analyses := flag.Int("analyses", 0, "analysis cache entries (default: 32)")
	results := flag.Int("results", 0, "result cache entries (0 disables the result cache)")
	funcs := flag.Int("funcs", 0, "function-unit store entries for delta analysis (default: 4096, -1 disables)")
	disk := flag.String("disk", "", "persist the result cache to this directory")
	timeout := flag.Duration("timeout", 0, "per-request processing timeout (0: none)")
	patchJobs := flag.Int("patch-jobs", 0, "per-request plan/emit worker pool (0: serial; output is byte-identical either way)")
	self := flag.String("self", "", "cluster: this node's base URL as listed in -peers")
	peers := flag.String("peers", "", "cluster: comma-separated base URLs of all nodes, self included")
	replicas := flag.Int("replicas", 0, "cluster: replication factor (default 2)")
	peerTimeout := flag.Duration("peer-timeout", 0, "cluster: budget for warm-path unit fetches from peers (default 2s)")
	probe := flag.Duration("probe", 0, "cluster: active /healthz probe interval (0: passive health only)")
	flag.Parse()

	if *disk != "" && *results == 0 {
		fatal(errors.New("-disk requires -results > 0"))
	}
	if (*self == "") != (*peers == "") {
		fatal(errors.New("-self and -peers must be set together"))
	}

	s := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		BatchQueueDepth: *batchQueue,
		MaxRequestBytes: *maxBody,
		AnalysisEntries: *analyses,
		ResultEntries:   *results,
		FuncEntries:     *funcs,
		Dir:             *disk,
		Timeout:         *timeout,
		PatchJobs:       *patchJobs,
	})

	// The batch surface wraps the service handler; the cluster routes
	// wrap both. /batch jobs therefore always run on the node that
	// accepted them (the gateway picks that node by manifest hash), and
	// each item routes to its binary's hash owner via InstallBatch.
	mgr, err := batch.New(s, batch.Config{
		Dir:             *batchDir,
		MaxRequestBytes: *maxBody,
	})
	if err != nil {
		fatal(err)
	}
	handler := mgr.Handler(s.Handler())
	if *self != "" {
		node, err := cluster.NewNode(s, cluster.Config{
			Self:        *self,
			Peers:       strings.Split(*peers, ","),
			Replicas:    *replicas,
			PeerTimeout: *peerTimeout,
		})
		if err != nil {
			fatal(err)
		}
		node.InstallBatch(mgr)
		handler = node.HandlerWith(handler)
		if *probe > 0 {
			probeCtx, stopProbes := context.WithCancel(context.Background())
			defer stopProbes()
			node.StartProbes(probeCtx, *probe)
		}
		fmt.Printf("icfg-serve: cluster member %s (%d peers)\n", *self, len(strings.Split(*peers, ",")))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("icfg-serve: listening on %s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("icfg-serve: %s, draining\n", sig)
	case err := <-errc:
		fatal(err)
	}

	// Stop accepting, then drain the rewrite pool: in-flight requests
	// finish, queued ones get their clean rejection.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	// Park batch runners first (their in-flight items go back to pending
	// in the persisted record), then drain the rewrite pool.
	if err := mgr.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("batch drain: %w", err))
	}
	if err := s.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Println(s.Stats())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icfg-serve:", err)
	os.Exit(1)
}
