// Command icfg-rewrite applies incremental CFG patching to a serialised
// binary (.icfg file, as produced by the asm toolchain or icfg-objdump's
// tooling) and writes the rewritten image.
//
// Usage:
//
//	icfg-rewrite -mode jt [-where block|func] [-payload empty|counter]
//	             [-funcs f1,f2] [-verify] [-check] [-metrics] [-trace]
//	             [-gap bytes] [-patch-jobs N] [-no-evidence]
//	             [-remote http://host:port] [-retries N]
//	             [-profile heat.icfgprf] [-profile-out heat.icfgprf]
//	             -o out.icfg in.icfg
//
// -no-evidence disables the landing-pad evidence layer: func-ptr mode
// takes the conservative path even on CFI builds (refusing imprecise
// workloads instead of accepting them on marker evidence). On binaries
// that claim CFI, -check runs both images under CET enforcement, so a
// passing check also proves every indirect transfer in the rewritten
// binary still lands on a marker.
//
// With -remote the rewrite is performed by an icfg-serve daemon: the
// serialised binary is POSTed to the service, which caches analyses by
// content hash so repeat rewrites of the same binary run the warm patch
// path. All other flags behave identically; -check still executes both
// binaries locally in the reference emulator.
//
// -profile-out runs the *input* binary in the reference emulator with
// heat capture on and writes the block-heat profile artifact — the
// capture half of the profile-guided loop. -profile feeds a previously
// captured artifact back into the rewrite (locally via core.Options,
// remotely framed into the request body), steering hot functions onto
// the fast multi-version path. Both can be combined to capture and
// immediately consume a profile in one invocation.
//
// With -remote and -batch the CLI submits a whole fleet in one job:
//
//	icfg-rewrite -remote http://host:port -batch manifest.json
//
// The manifest lists items as {"name", "input", "output", "opts"};
// items without "opts" inherit the CLI's mode/where/payload flags, and
// "output" defaults to "<input>.out". Progress streams live over the
// job's SSE event feed — per-binary start/done lines with the cache
// path each rewrite took — and survives server restarts (the stream
// resumes and a -batch-dir daemon finishes the job). Outputs are
// fetched and written as the job completes.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"strconv"
	"strings"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/profile"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
	"icfgpatch/internal/store"
)

// checkMaxInstrs bounds each -check execution; the workload drivers all
// terminate well under this.
const checkMaxInstrs = 200_000_000

func main() {
	mode := flag.String("mode", "jt", "rewriting mode: dir, jt, func-ptr")
	where := flag.String("where", "block", "instrumentation point: block, func")
	payload := flag.String("payload", "empty", "payload: empty, counter")
	funcs := flag.String("funcs", "", "comma-separated function subset (default: all)")
	verify := flag.Bool("verify", false, "overwrite stale original code with illegal instructions")
	check := flag.Bool("check", false, "run original and rewritten binaries in the emulator and compare outputs")
	metrics := flag.Bool("metrics", false, "print per-pass rewrite metrics")
	trace := flag.Bool("trace", false, "print the rewrite's span tree (stage timings and counters)")
	gap := flag.Uint64("gap", 0, "force a gap (bytes) before the relocated code section")
	patchJobs := flag.Int("patch-jobs", 0, "worker pool for the local plan and emit stages (<=1: serial; output is byte-identical either way; with -remote the daemon's -patch-jobs governs)")
	remote := flag.String("remote", "", "rewrite via an icfg-serve daemon at this base URL instead of locally")
	retries := flag.Int("retries", 2, "with -remote: retries for transient connection failures (refused/reset/EOF before headers)")
	batchFile := flag.String("batch", "", "with -remote: submit this JSON manifest as one batch job with live progress")
	noEvidence := flag.Bool("no-evidence", false, "disable the landing-pad evidence layer: func-ptr mode takes the conservative path even on CFI builds")
	profileIn := flag.String("profile", "", "block-heat profile artifact guiding the rewrite (hot functions get the fast multi-version path)")
	profileOut := flag.String("profile-out", "", "run the input binary under the emulator with heat capture and write the profile artifact here")
	out := flag.String("o", "", "output path (required)")
	flag.Parse()

	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "icfg-rewrite:", err)
		fmt.Fprintln(os.Stderr, "usage: icfg-rewrite [flags] -o out.icfg in.icfg")
		fmt.Fprintln(os.Stderr, "       icfg-rewrite -remote URL -batch manifest.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// The flag surface is exactly the service wire surface, so the CLI
	// reuses its parser: one set of validation for both paths.
	v := url.Values{}
	v.Set("mode", *mode)
	v.Set("where", *where)
	v.Set("payload", *payload)
	if *funcs != "" {
		v.Set("funcs", *funcs)
	}
	if *verify {
		v.Set("verify", "1")
	}
	if *gap > 0 {
		v.Set("gap", strconv.FormatUint(*gap, 10))
	}
	if *noEvidence {
		// Framed as the wire feature bit so local and -remote invocations
		// share one spelling (and a remote daemon too old to know the bit
		// refuses with 400 instead of silently rewriting with evidence).
		v.Set("features", strconv.FormatUint(wire.FeatureNoEvidence, 10))
	}
	// A bad mode/where/payload string is a usage error, reported with
	// the flag reference — not a runtime failure (and never a panic in
	// the arch layer, which only sees validated values).
	opts, err := service.ParseOptions(v)
	if err != nil {
		usage(err)
	}

	if *batchFile != "" {
		if *remote == "" {
			usage(fmt.Errorf("-batch requires -remote"))
		}
		if flag.NArg() != 0 || *out != "" {
			usage(fmt.Errorf("-batch takes inputs and outputs from the manifest, not the command line"))
		}
		if err := runBatch(*remote, *retries, *batchFile, v.Encode()); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 || (*out == "" && *profileOut == "") {
		usage(fmt.Errorf("need exactly one input file and -o (or -profile-out)"))
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := bin.Unmarshal(raw)
	if err != nil {
		fatal(err)
	}

	if *profileOut != "" {
		prof, err := captureProfile(img, raw, opts.Mode)
		if err != nil {
			fatal(fmt.Errorf("profile capture: %w", err))
		}
		if err := os.WriteFile(*profileOut, prof.Encode(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("captured profile: %d funcs, %d hot, total heat %d -> %s\n",
			len(prof.Funcs), len(prof.HotFuncs()), prof.TotalCount, *profileOut)
		if *profileIn == *profileOut {
			// Capture-and-consume in one invocation: skip the re-read.
			opts.Profile = prof
		}
		if *out == "" {
			return // capture-only mode
		}
	}
	if *profileIn != "" && opts.Profile == nil {
		pb, err := os.ReadFile(*profileIn)
		if err != nil {
			fatal(err)
		}
		// Guidance is advisory end to end: a profile that fails its
		// hardened decode — or carries no heat — degrades to the unguided
		// rewrite with a warning, mirroring the service's door.
		switch prof, err := profile.Decode(pb); {
		case err != nil:
			fmt.Fprintf(os.Stderr, "icfg-rewrite: warning: profile %s unusable (%v); rewriting unguided\n", *profileIn, err)
		case prof.Trivial():
			fmt.Fprintf(os.Stderr, "icfg-rewrite: warning: profile %s carries no heat; rewriting unguided\n", *profileIn)
		default:
			opts.Profile = prof
		}
	}

	var (
		stats       core.Stats
		metricsText string
		traceText   string
		rewritten   *bin.Binary
		cacheLine   string
	)
	if *remote != "" {
		cl := &service.Client{BaseURL: *remote, Trace: *trace, Retries: *retries}
		image, reply, err := cl.Rewrite(context.Background(), raw, opts)
		if err != nil {
			fatal(err)
		}
		traceText = reply.TraceText
		rewritten, err = bin.Unmarshal(image)
		if err != nil {
			fatal(fmt.Errorf("remote returned a bad image: %w", err))
		}
		if err := os.WriteFile(*out, image, 0o644); err != nil {
			fatal(err)
		}
		stats, metricsText = reply.Stats, reply.MetricsText
		switch {
		case reply.ResultHit:
			cacheLine = fmt.Sprintf("result cache hit (%.1fms server)", float64(reply.ElapsedUS)/1000)
		case reply.AnalysisHit:
			cacheLine = fmt.Sprintf("warm analysis (%.1fms server)", float64(reply.ElapsedUS)/1000)
		case reply.FuncsReused > 0:
			cacheLine = fmt.Sprintf("delta analysis (reused %d / recomputed %d funcs, %.1fms server)",
				reply.FuncsReused, reply.FuncsRecomputed, float64(reply.ElapsedUS)/1000)
		default:
			cacheLine = fmt.Sprintf("cold (%.1fms server)", float64(reply.ElapsedUS)/1000)
		}
	} else {
		opts.PatchJobs = *patchJobs
		var sp *obs.Span
		if *trace {
			sp = obs.NewTrace("rewrite")
			opts.Trace = sp
		}
		res, err := core.Rewrite(img, opts)
		if err != nil {
			fatal(err)
		}
		sp.End()
		traceText = sp.Render()
		if err := res.Binary.WriteFile(*out); err != nil {
			fatal(err)
		}
		stats, metricsText, rewritten = res.Stats, res.Metrics.Render(), res.Binary
	}

	fmt.Printf("rewrote %s (%s, mode %s)\n", flag.Arg(0), img.Arch, opts.Mode)
	printSummary(stats)
	if cacheLine != "" {
		fmt.Printf("  service:      %s\n", cacheLine)
	}
	if *metrics {
		fmt.Println(metricsText)
	}
	if *trace && traceText != "" {
		fmt.Println(traceText)
	}

	if *check {
		if err := checkRun(img, rewritten); err != nil {
			fatal(fmt.Errorf("check: %w", err))
		}
		fmt.Println("  check:        outputs identical")
	}
}

func printSummary(s core.Stats) {
	fmt.Printf("  functions:    %d/%d instrumented (coverage %.2f%%)\n",
		s.InstrumentedFuncs, s.TotalFuncs, 100*s.Coverage())
	if len(s.SkippedFuncs) > 0 {
		fmt.Printf("  skipped:      %s\n", strings.Join(s.SkippedFuncs, ", "))
	}
	fmt.Printf("  CFL blocks:   %d (+%d scratch blocks)\n", s.CFLBlocks, s.ScratchBlocks)
	fmt.Printf("  trampolines:  %v\n", s.Trampolines)
	fmt.Printf("  jump tables:  %d cloned\n", s.ClonedTables)
	fmt.Printf("  fn pointers:  %d rewritten\n", s.RewrittenPtrs)
	fmt.Printf("  ra map:       %d entries\n", s.RAMapEntries)
	if s.HotFuncs > 0 || s.VariantFuncs > 0 {
		fmt.Printf("  profile:      %d hot funcs, %d with fast variants\n", s.HotFuncs, s.VariantFuncs)
	}
	if s.MarkSites > 0 {
		trust := "untrusted"
		if s.EvidenceTrusted {
			trust = "trusted"
		}
		fmt.Printf("  landing pads: %d marks (%s), %d candidates skipped, %d tables mark-bounded\n",
			s.MarkSites, trust, s.EvidenceSkips, s.MarkBoundedTables)
	}
	fmt.Printf("  size:         %d -> %d bytes (+%.2f%%)\n",
		s.OrigLoadedSize, s.NewLoadedSize, 100*s.SizeIncrease())
}

// checkRun executes orig and rewritten under the emulator and compares
// their outputs byte for byte. A binary that claims CFI runs under CET
// enforcement, so the check also proves every indirect transfer in the
// rewritten image still lands on a marker.
func checkRun(orig, rewritten *bin.Binary) error {
	enforce := orig.CFI()
	want, err := execute(orig, enforce)
	if err != nil {
		return fmt.Errorf("original binary: %w", err)
	}
	got, err := execute(rewritten, enforce)
	if err != nil {
		return fmt.Errorf("rewritten binary: %w", err)
	}
	if !bytes.Equal(want.Output, got.Output) {
		return fmt.Errorf("output diverged: original %d bytes, rewritten %d bytes", len(want.Output), len(got.Output))
	}
	return nil
}

func execute(img *bin.Binary, enforceCET bool) (emu.Result, error) {
	lib, err := rtlib.Preload(img)
	if err != nil {
		return emu.Result{}, err
	}
	m, err := emu.Load(img, emu.Options{Runtime: lib, MaxInstrs: checkMaxInstrs, EnforceCET: enforceCET})
	if err != nil {
		return emu.Result{}, err
	}
	return m.Run()
}

// captureProfile runs the input binary under the reference emulator
// with heat capture on and aggregates the landing counts over its CFG
// into a profile artifact keyed by the binary's content hash.
func captureProfile(img *bin.Binary, raw []byte, mode core.Mode) (*profile.Profile, error) {
	lib, err := rtlib.Preload(img)
	if err != nil {
		return nil, err
	}
	m, err := emu.Load(img, emu.Options{Runtime: lib, MaxInstrs: checkMaxInstrs, CaptureHeat: true})
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, fmt.Errorf("emulated run: %w", err)
	}
	an, err := core.Analyze(img, core.AnalysisConfig{Mode: mode})
	if err != nil {
		return nil, err
	}
	return an.ProfileFromHeat(store.Hash(raw), res.Heat), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icfg-rewrite:", err)
	os.Exit(1)
}
