// Command icfg-rewrite applies incremental CFG patching to a serialised
// binary (.icfg file, as produced by the asm toolchain or icfg-objdump's
// tooling) and writes the rewritten image.
//
// Usage:
//
//	icfg-rewrite -mode jt [-where block|func] [-payload empty|counter]
//	             [-funcs f1,f2] [-verify] [-gap bytes] -o out.icfg in.icfg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

func main() {
	mode := flag.String("mode", "jt", "rewriting mode: dir, jt, func-ptr")
	where := flag.String("where", "block", "instrumentation point: block, func")
	payload := flag.String("payload", "empty", "payload: empty, counter")
	funcs := flag.String("funcs", "", "comma-separated function subset (default: all)")
	verify := flag.Bool("verify", false, "overwrite stale original code with illegal instructions")
	gap := flag.Uint64("gap", 0, "force a gap (bytes) before the relocated code section")
	out := flag.String("o", "", "output path (required)")
	flag.Parse()

	if flag.NArg() != 1 || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: icfg-rewrite [flags] -o out.icfg in.icfg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	img, err := bin.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opts := core.Options{Verify: *verify, InstrGap: *gap}
	switch *mode {
	case "dir":
		opts.Mode = core.ModeDir
	case "jt":
		opts.Mode = core.ModeJT
	case "func-ptr", "funcptr":
		opts.Mode = core.ModeFuncPtr
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *where {
	case "block":
		opts.Request.Where = instrument.BlockEntry
	case "func":
		opts.Request.Where = instrument.FuncEntry
	default:
		fatal(fmt.Errorf("unknown instrumentation point %q", *where))
	}
	switch *payload {
	case "empty":
		opts.Request.Payload = instrument.PayloadEmpty
	case "counter":
		opts.Request.Payload = instrument.PayloadCounter
	default:
		fatal(fmt.Errorf("unknown payload %q", *payload))
	}
	if *funcs != "" {
		opts.Request.Funcs = strings.Split(*funcs, ",")
	}

	res, err := core.Rewrite(img, opts)
	if err != nil {
		fatal(err)
	}
	if err := res.Binary.WriteFile(*out); err != nil {
		fatal(err)
	}

	s := res.Stats
	fmt.Printf("rewrote %s (%s, mode %s)\n", flag.Arg(0), img.Arch, opts.Mode)
	fmt.Printf("  functions:    %d/%d instrumented (coverage %.2f%%)\n",
		s.InstrumentedFuncs, s.TotalFuncs, 100*s.Coverage())
	if len(s.SkippedFuncs) > 0 {
		fmt.Printf("  skipped:      %s\n", strings.Join(s.SkippedFuncs, ", "))
	}
	fmt.Printf("  CFL blocks:   %d (+%d scratch blocks)\n", s.CFLBlocks, s.ScratchBlocks)
	fmt.Printf("  trampolines:  %v\n", s.Trampolines)
	fmt.Printf("  jump tables:  %d cloned\n", s.ClonedTables)
	fmt.Printf("  fn pointers:  %d rewritten\n", s.RewrittenPtrs)
	fmt.Printf("  ra map:       %d entries\n", s.RAMapEntries)
	fmt.Printf("  size:         %d -> %d bytes (+%.2f%%)\n",
		s.OrigLoadedSize, s.NewLoadedSize, 100*s.SizeIncrease())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icfg-rewrite:", err)
	os.Exit(1)
}
