// Command icfg-rewrite applies incremental CFG patching to a serialised
// binary (.icfg file, as produced by the asm toolchain or icfg-objdump's
// tooling) and writes the rewritten image.
//
// Usage:
//
//	icfg-rewrite -mode jt [-where block|func] [-payload empty|counter]
//	             [-funcs f1,f2] [-verify] [-check] [-metrics]
//	             [-gap bytes] -o out.icfg in.icfg
//
// With -check the original and rewritten binaries are both executed in
// the reference emulator and their outputs compared; a fault or output
// divergence is reported on stderr and the command exits non-zero.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

// checkMaxInstrs bounds each -check execution; the workload drivers all
// terminate well under this.
const checkMaxInstrs = 200_000_000

func main() {
	mode := flag.String("mode", "jt", "rewriting mode: dir, jt, func-ptr")
	where := flag.String("where", "block", "instrumentation point: block, func")
	payload := flag.String("payload", "empty", "payload: empty, counter")
	funcs := flag.String("funcs", "", "comma-separated function subset (default: all)")
	verify := flag.Bool("verify", false, "overwrite stale original code with illegal instructions")
	check := flag.Bool("check", false, "run original and rewritten binaries in the emulator and compare outputs")
	metrics := flag.Bool("metrics", false, "print per-pass rewrite metrics")
	gap := flag.Uint64("gap", 0, "force a gap (bytes) before the relocated code section")
	out := flag.String("o", "", "output path (required)")
	flag.Parse()

	if flag.NArg() != 1 || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: icfg-rewrite [flags] -o out.icfg in.icfg")
		flag.PrintDefaults()
		os.Exit(2)
	}
	img, err := bin.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opts := core.Options{Verify: *verify, InstrGap: *gap}
	switch *mode {
	case "dir":
		opts.Mode = core.ModeDir
	case "jt":
		opts.Mode = core.ModeJT
	case "func-ptr", "funcptr":
		opts.Mode = core.ModeFuncPtr
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *where {
	case "block":
		opts.Request.Where = instrument.BlockEntry
	case "func":
		opts.Request.Where = instrument.FuncEntry
	default:
		fatal(fmt.Errorf("unknown instrumentation point %q", *where))
	}
	switch *payload {
	case "empty":
		opts.Request.Payload = instrument.PayloadEmpty
	case "counter":
		opts.Request.Payload = instrument.PayloadCounter
	default:
		fatal(fmt.Errorf("unknown payload %q", *payload))
	}
	if *funcs != "" {
		opts.Request.Funcs = strings.Split(*funcs, ",")
	}

	res, err := core.Rewrite(img, opts)
	if err != nil {
		fatal(err)
	}
	if err := res.Binary.WriteFile(*out); err != nil {
		fatal(err)
	}

	s := res.Stats
	fmt.Printf("rewrote %s (%s, mode %s)\n", flag.Arg(0), img.Arch, opts.Mode)
	fmt.Printf("  functions:    %d/%d instrumented (coverage %.2f%%)\n",
		s.InstrumentedFuncs, s.TotalFuncs, 100*s.Coverage())
	if len(s.SkippedFuncs) > 0 {
		fmt.Printf("  skipped:      %s\n", strings.Join(s.SkippedFuncs, ", "))
	}
	fmt.Printf("  CFL blocks:   %d (+%d scratch blocks)\n", s.CFLBlocks, s.ScratchBlocks)
	fmt.Printf("  trampolines:  %v\n", s.Trampolines)
	fmt.Printf("  jump tables:  %d cloned\n", s.ClonedTables)
	fmt.Printf("  fn pointers:  %d rewritten\n", s.RewrittenPtrs)
	fmt.Printf("  ra map:       %d entries\n", s.RAMapEntries)
	fmt.Printf("  size:         %d -> %d bytes (+%.2f%%)\n",
		s.OrigLoadedSize, s.NewLoadedSize, 100*s.SizeIncrease())
	if *metrics {
		fmt.Println(res.Metrics.Render())
	}

	if *check {
		if err := checkRun(img, res.Binary); err != nil {
			fatal(fmt.Errorf("check: %w", err))
		}
		fmt.Println("  check:        outputs identical")
	}
}

// checkRun executes orig and rewritten under the emulator and compares
// their outputs byte for byte.
func checkRun(orig, rewritten *bin.Binary) error {
	want, err := execute(orig)
	if err != nil {
		return fmt.Errorf("original binary: %w", err)
	}
	got, err := execute(rewritten)
	if err != nil {
		return fmt.Errorf("rewritten binary: %w", err)
	}
	if !bytes.Equal(want.Output, got.Output) {
		return fmt.Errorf("output diverged: original %d bytes, rewritten %d bytes", len(want.Output), len(got.Output))
	}
	return nil
}

func execute(img *bin.Binary) (emu.Result, error) {
	lib, err := rtlib.Preload(img)
	if err != nil {
		return emu.Result{}, err
	}
	m, err := emu.Load(img, emu.Options{Runtime: lib, MaxInstrs: checkMaxInstrs})
	if err != nil {
		return emu.Result{}, err
	}
	return m.Run()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icfg-rewrite:", err)
	os.Exit(1)
}
