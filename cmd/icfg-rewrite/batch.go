// Batch mode: submit a manifest of binaries to a remote daemon as one
// fleet job, follow its SSE progress feed, and collect the outputs.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
)

// fileManifest is the on-disk manifest format: file paths where the
// wire manifest carries bytes.
type fileManifest struct {
	Items []fileItem `json:"items"`
}

type fileItem struct {
	// Name labels the item in progress output (default: the input path).
	Name string `json:"name,omitempty"`
	// Input is the serialised binary to rewrite.
	Input string `json:"input"`
	// Output is where the rewritten image lands (default: Input+".out").
	Output string `json:"output,omitempty"`
	// Opts overrides the CLI's rewrite flags for this item, as a
	// /rewrite query string (e.g. "mode=jt&where=func").
	Opts string `json:"opts,omitempty"`
}

// runBatch drives one fleet job end to end. defaultOpts is the CLI
// flag set rendered as a query string, inherited by items without
// their own.
func runBatch(remote string, retries int, path, defaultOpts string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var fm fileManifest
	if err := json.Unmarshal(data, &fm); err != nil {
		return fmt.Errorf("bad manifest %s: %w", path, err)
	}
	if len(fm.Items) == 0 {
		return fmt.Errorf("manifest %s has no items", path)
	}
	man := wire.BatchManifest{Items: make([]wire.BatchItem, len(fm.Items))}
	outputs := make([]string, len(fm.Items))
	for i, it := range fm.Items {
		raw, err := os.ReadFile(it.Input)
		if err != nil {
			return fmt.Errorf("manifest item %d: %w", i, err)
		}
		name := it.Name
		if name == "" {
			name = it.Input
		}
		opts := it.Opts
		if opts == "" {
			opts = defaultOpts
		}
		man.Items[i] = wire.BatchItem{Name: name, Opts: opts, Binary: raw}
		outputs[i] = it.Output
		if outputs[i] == "" {
			outputs[i] = it.Input + ".out"
		}
	}
	// Two items writing one path would silently race; the common way to
	// get here is listing the same input twice (e.g. with different
	// opts) and letting both default to "<input>.out".
	seen := map[string]int{}
	for i, out := range outputs {
		if j, dup := seen[out]; dup {
			return fmt.Errorf("manifest items %d and %d both write %s; set distinct \"output\" paths", j, i, out)
		}
		seen[out] = i
	}

	ctx := context.Background()
	cl := &service.Client{BaseURL: remote, Retries: retries}
	acc, err := cl.BatchSubmit(ctx, man)
	if err != nil {
		return err
	}
	fmt.Printf("batch %s: %d items submitted\n", acc.ID, acc.Items)

	// Live progress from the event stream. The client resumes from the
	// last seen sequence number across transient disconnects, so a node
	// restart mid-job shows up as a pause, not a dead display.
	failed := 0
	err = cl.BatchEvents(ctx, acc.ID, 0, func(ev wire.BatchEvent) bool {
		switch ev.Type {
		case wire.EventItemStart:
			fmt.Printf("  [%d/%d] %s: rewriting...\n", ev.Done, ev.Total, ev.Name)
		case wire.EventItemDone:
			fmt.Printf("  [%d/%d] %s: done (%s, %.1fms server)\n",
				ev.Done, ev.Total, ev.Name, ev.Path, float64(ev.WallUS)/1000)
		case wire.EventItemFailed:
			failed++
			fmt.Printf("  [%d/%d] %s: FAILED: %s\n", ev.Done, ev.Total, ev.Name, ev.Err)
		case wire.EventJobFailed:
			fmt.Printf("batch %s: finished with failures\n", acc.ID)
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("event stream: %w", err)
	}

	// The stream ended at job-done/job-failed; confirm with a status
	// poll (also exercises the polling fallback path) and fetch outputs.
	st, err := cl.BatchStatus(ctx, acc.ID)
	if err != nil {
		return err
	}
	written := 0
	for i, item := range st.Items {
		if item.State != wire.BatchDone {
			continue
		}
		image, err := cl.BatchOutput(ctx, acc.ID, i)
		if err != nil {
			return fmt.Errorf("output %d (%s): %w", i, item.Name, err)
		}
		if err := os.WriteFile(outputs[i], image, 0o644); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("batch %s: %d/%d outputs written\n", acc.ID, written, st.Total)
	if failed > 0 || st.State == wire.BatchFailed {
		return fmt.Errorf("batch %s: %d items failed", acc.ID, failed)
	}
	return nil
}
