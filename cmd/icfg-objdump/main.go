// Command icfg-objdump inspects a serialised binary: section layout,
// symbols, relocations, metadata, a full disassembly, and — with -plan —
// the staged patch plan the rewriter would execute (plan and layout
// stages only; nothing is emitted or mutated).
//
// Usage:
//
//	icfg-objdump [-d] [-funcs] [-marks] [-plan [-mode m] [-with-profile heat.icfgprf]] [-sym func] file.icfg
//	icfg-objdump -profile heat.icfgprf
//
// -marks lists the landing-pad marker sites per function with their
// evidence-source attribution (which pointer sources and jump tables
// reference each marked address) and the trust decision the analysis
// would make for the binary.
//
// -profile treats the file as a block-heat profile artifact (as written
// by icfg-rewrite -profile-out) and dumps it: per-function heat, block
// counts, and each function's hot/cold placement tier under the mean
// threshold. -with-profile feeds an artifact into -plan, so the dumped
// plan shows the variant each function was assigned (dispatch stubs,
// fast bodies, selector cells) instead of the unguided layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/profile"
)

// printCFG disassembles by control-flow traversal and prints each
// function's blocks, edges and resolved jump tables.
func printCFG(img *bin.Binary, symSel string) {
	var g *cfg.Graph
	var err error
	if len(img.FuncSymbols()) == 0 {
		g, err = cfg.BuildStripped(img, analysis.NewJumpTables(img))
	} else {
		g, err = cfg.Build(img, analysis.NewJumpTables(img))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
		os.Exit(1)
	}
	kinds := map[cfg.EdgeKind]string{
		cfg.EdgeFall: "fall", cfg.EdgeJump: "jump", cfg.EdgeCond: "cond",
		cfg.EdgeCallFall: "call-fall", cfg.EdgeIndirect: "indirect",
	}
	for _, f := range g.Funcs {
		if symSel != "" && f.Name != symSel {
			continue
		}
		status := "ok"
		if f.Err != nil {
			status = "FAILED: " + f.Err.Error()
		}
		fmt.Printf("%sfunc %s [%#x,%#x) blocks=%d %s%s", "\n", f.Name, f.Entry, f.End, len(f.Blocks), status, "\n")
		for _, blk := range f.Blocks {
			fmt.Printf("  block %#x..%#x (%d instrs) ends %s%s", blk.Start, blk.End, len(blk.Instrs), blk.Last().Kind, "\n")
			for _, e := range blk.Succs {
				fmt.Printf("    -> %#x (%s)%s", e.To, kinds[e.Kind], "\n")
			}
		}
		for _, ij := range f.IndirectJumps {
			switch {
			case ij.Table != nil:
				fmt.Printf("  jump table @%#x: %d entries of %d bytes at %#x (exact=%v)%s",
					ij.Addr, ij.Table.Count, ij.Table.EntrySize, ij.Table.TableAddr, ij.Table.BoundExact, "\n")
			case ij.TailCall:
				fmt.Printf("  indirect tail call @%#x%s", ij.Addr, "\n")
			default:
				fmt.Printf("  unresolved indirect jump @%#x: %v%s", ij.Addr, ij.Err, "\n")
			}
		}
	}
}

// printMarks lists the landing-pad marker sites the evidence layer
// found, grouped per function, with each site's evidence-source
// attribution: which ranked pointer sources (reloc, data-cell,
// code-imm) and which resolved jump tables reference the address. The
// header states the trust decision — the same one core.Analyze makes —
// so the listing doubles as a diagnostic for why a CFI build did (or
// did not) take the evidence-enabled func-ptr path.
func printMarks(img *bin.Binary, symSel string) {
	ev := analysis.ScanEvidence(img)
	trust := "untrusted"
	switch {
	case ev.Trusted:
		trust = "trusted"
	case ev.Corrupt:
		trust = "CORRUPT"
	}
	fmt.Printf("\nlanding pads: %d marker sites  cfi=%v  evidence %s\n",
		ev.Marks.Count(), img.CFI(), trust)
	if ev.Marks.Count() == 0 {
		return
	}

	var g *cfg.Graph
	var err error
	if len(img.FuncSymbols()) == 0 {
		g, err = cfg.BuildStripped(img, analysis.NewJumpTables(img))
	} else {
		g, err = cfg.Build(img, analysis.NewJumpTables(img))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
		os.Exit(1)
	}

	// Attribute each marker address to the evidence sources referencing
	// it. The pointer sweep can refuse (ErrImprecise on a marker-less or
	// corrupt build); the mark listing still prints, just without pointer
	// attribution.
	refs := map[uint64][]string{}
	addRef := func(addr uint64, src string) {
		for _, have := range refs[addr] {
			if have == src {
				return
			}
		}
		refs[addr] = append(refs[addr], src)
	}
	sites, perr := ev.FuncPointers(img, g)
	for _, s := range sites {
		addRef(s.Value, s.Kind.String())
	}
	for _, f := range g.Funcs {
		for _, ij := range f.IndirectJumps {
			if ij.Table == nil {
				continue
			}
			for _, t := range ij.Table.Targets {
				addRef(t, analysis.SourceJumpTable.String())
			}
		}
	}

	for _, addr := range ev.Marks.Addrs() {
		f, inFunc := g.FuncContaining(addr)
		name, role := "(outside functions)", ""
		if inFunc {
			name = f.Name
			if addr == f.Entry {
				role = "entry"
			} else {
				role = fmt.Sprintf("+%#x", addr-f.Entry)
			}
		}
		if symSel != "" && name != symSel {
			continue
		}
		srcs := "-"
		if len(refs[addr]) > 0 {
			srcs = strings.Join(refs[addr], ",")
		}
		fmt.Printf("  %#10x  %-30s %-8s %s\n", addr, name, role, srcs)
	}

	fmt.Println("\nevidence sources:")
	for _, k := range []analysis.SourceKind{
		analysis.SourceLandingPad, analysis.SourceReloc,
		analysis.SourceDataCell, analysis.SourceCodeImm,
	} {
		fmt.Printf("  %-12s %d\n", k, ev.Counts[k])
	}
	tables := 0
	for _, f := range g.Funcs {
		for _, ij := range f.IndirectJumps {
			if ij.Table != nil {
				tables++
			}
		}
	}
	fmt.Printf("  %-12s %d\n", analysis.SourceJumpTable, tables)
	if ev.Skipped > 0 {
		fmt.Printf("  skipped      %d (candidates proven unreachable by markers)\n", ev.Skipped)
	}
	if perr != nil {
		fmt.Printf("  pointer attribution incomplete: %v\n", perr)
	}
}

// printFuncHashes lists every function with the content hash the
// incremental-analysis layer keys its units by. Stripped binaries fall
// back to discovered entry points, matching what the delta engine
// itself would hash.
func printFuncHashes(img *bin.Binary) {
	syms := img.FuncSymbols()
	if len(syms) == 0 {
		var err error
		if syms, err = cfg.DiscoverFunctions(img); err != nil {
			fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\n%d functions:\n", len(syms))
	for _, sym := range syms {
		fmt.Printf("  %#10x %8d  %s  %s\n", sym.Addr, sym.Size, img.FuncContentHash(sym), sym.Name)
	}
}

// printPlan runs the rewriter's plan and layout stages — no emission,
// no binary mutation — and dumps the laid-out PatchPlan: section moves,
// per-unit relocation items with resolved targets and expansion states,
// and the planned trampoline jobs. -sym restricts instrumentation to one
// function; -mode selects the rewriting mode the plan is built for.
func printPlan(img *bin.Binary, modeName, symSel, profPath string) {
	var mode core.Mode
	switch modeName {
	case "dir":
		mode = core.ModeDir
	case "jt", "":
		mode = core.ModeJT
	case "func-ptr", "funcptr":
		mode = core.ModeFuncPtr
	default:
		fmt.Fprintf(os.Stderr, "icfg-objdump: unknown mode %q\n", modeName)
		os.Exit(2)
	}
	an, err := core.Analyze(img, core.AnalysisConfig{Mode: mode})
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
		os.Exit(1)
	}
	opts := core.Options{Mode: mode, Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}}
	if profPath != "" {
		// Guided plans are inspected under the request shape that engages
		// variant planning: full block-entry counters.
		opts.Request.Payload = instrument.PayloadCounter
		opts.Profile = readProfile(profPath)
	}
	if symSel != "" {
		opts.Request.Funcs = []string{symSel}
	}
	p, err := an.PlanFor(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
		os.Exit(1)
	}
	fmt.Println()
	p.Dump(os.Stdout)
}

// readProfile loads and decodes a profile artifact, exiting on failure
// — inspection of a named artifact wants the decode error, not the
// rewriter's silent degradation.
func readProfile(path string) *profile.Profile {
	pb, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
		os.Exit(1)
	}
	p, err := profile.Decode(pb)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icfg-objdump: %s: %v\n", path, err)
		os.Exit(1)
	}
	return p
}

// printProfile dumps a block-heat profile artifact: the capture
// identity, aggregate heat, and per-function heat with the hot/cold
// tier the planner would assign under the mean threshold.
func printProfile(path string) {
	p := readProfile(path)
	fmt.Printf("profile %s\n", path)
	fmt.Printf("  binary hash   %s\n", orDash(p.BinaryHash))
	fmt.Printf("  arch          %s\n", p.Arch)
	fmt.Printf("  functions     %d\n", len(p.Funcs))
	fmt.Printf("  total heat    %d\n", p.TotalCount)
	hot := p.HotFuncs()
	fmt.Printf("  hot set       %d funcs\n", len(hot))
	fmt.Println()
	fmt.Printf("  %-30s %10s %7s %12s %8s  %s\n", "function", "entry", "blocks", "heat", "share", "tier")
	for _, f := range p.Funcs {
		tier := "cold"
		switch {
		case hot[f.Name]:
			tier = "hot"
		case f.Count == 0:
			tier = "dead"
		}
		share := 0.0
		if p.TotalCount > 0 {
			share = 100 * float64(f.Count) / float64(p.TotalCount)
		}
		fmt.Printf("  %-30s %#10x %7d %12d %7.2f%%  %s\n", f.Name, f.Entry, f.Blocks, f.Count, share, tier)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// printAddrMaps decodes the rewriter's address-map sections (.ra_map,
// .tramp_map) entry by entry rather than leaving them as opaque bytes.
func printAddrMaps(img *bin.Binary) {
	for _, name := range []string{bin.SecRAMap, bin.SecTrampMap} {
		s := img.Section(name)
		if s == nil {
			continue
		}
		pairs, err := bin.DecodeAddrMap(s.Data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icfg-objdump: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s: %d entries\n", name, len(pairs))
		for _, p := range pairs {
			fmt.Printf("  %#10x -> %#10x\n", p.From, p.To)
		}
	}
}

// addrMapSummary annotates an address-map section's row in the section
// table with its decoded entry count.
func addrMapSummary(s *bin.Section) string {
	if s.Name != bin.SecRAMap && s.Name != bin.SecTrampMap {
		return ""
	}
	pairs, err := bin.DecodeAddrMap(s.Data)
	if err != nil {
		return fmt.Sprintf("  (corrupt map: %v)", err)
	}
	return fmt.Sprintf("  (%d map entries)", len(pairs))
}

func main() {
	disas := flag.Bool("d", false, "disassemble function symbols")
	showCFG := flag.Bool("cfg", false, "print control flow graphs (blocks, edges, jump tables)")
	ramap := flag.Bool("ramap", false, "decode .ra_map/.tramp_map sections entry by entry")
	funcs := flag.Bool("funcs", false, "print each function's address, size, and content hash")
	marks := flag.Bool("marks", false, "list landing-pad marker sites per function with evidence-source attribution")
	plan := flag.Bool("plan", false, "dump the staged patch plan (plan + layout stages, no emission)")
	mode := flag.String("mode", "jt", "rewriting mode for -plan: dir, jt, func-ptr")
	symSel := flag.String("sym", "", "disassemble (or with -plan, instrument) only this function")
	profDump := flag.Bool("profile", false, "treat file as a block-heat profile artifact and dump it")
	withProf := flag.String("with-profile", "", "with -plan: guide the plan with this profile artifact (implies counter payload)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: icfg-objdump [-d] [-cfg] [-ramap] [-funcs] [-marks] [-plan [-mode m] [-with-profile p]] [-sym name] file.icfg")
		fmt.Fprintln(os.Stderr, "       icfg-objdump -profile heat.icfgprf")
		os.Exit(2)
	}
	if *profDump {
		printProfile(flag.Arg(0))
		return
	}
	img, err := bin.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-objdump:", err)
		os.Exit(1)
	}

	fmt.Printf("arch %s  pie=%v  shared=%v  entry %#x\n", img.Arch, img.PIE, img.SharedLib, img.Entry)
	for k, v := range img.Meta {
		fmt.Printf("  meta %s=%s\n", k, v)
	}
	fmt.Println("\nsections:")
	for _, s := range img.Sections {
		flags := ""
		if s.Flags&bin.FlagAlloc != 0 {
			flags += "A"
		}
		if s.Flags&bin.FlagExec != 0 {
			flags += "X"
		}
		if s.Flags&bin.FlagWrite != 0 {
			flags += "W"
		}
		fmt.Printf("  %-16s %#10x..%#10x %8d %s%s\n", s.Name, s.Addr, s.End(), s.Size(), flags, addrMapSummary(s))
	}
	fmt.Printf("\n%d symbols, %d dynamic, %d runtime relocs, %d link relocs\n",
		len(img.Symbols), len(img.DynSymbols), len(img.Relocs), len(img.LinkRelocs))

	if *marks {
		printMarks(img, *symSel)
		return
	}
	if *plan {
		printPlan(img, *mode, *symSel, *withProf)
		return
	}
	if *ramap {
		printAddrMaps(img)
		return
	}
	if *funcs {
		printFuncHashes(img)
		return
	}
	if *showCFG {
		printCFG(img, *symSel)
		return
	}
	if !*disas && *symSel == "" {
		return
	}
	text := img.Text()
	for _, sym := range img.FuncSymbols() {
		if *symSel != "" && sym.Name != *symSel {
			continue
		}
		fmt.Printf("\n%08x <%s>:\n", sym.Addr, sym.Name)
		if text == nil || !text.Contains(sym.Addr) {
			fmt.Println("  (outside text)")
			continue
		}
		// A corrupt symbol table can declare a size past the section;
		// clamp instead of letting the slice expression panic.
		end := sym.Addr + sym.Size
		if end > text.End() {
			fmt.Printf("  (symbol size %d overruns text; truncating)\n", sym.Size)
			end = text.End()
		}
		data := text.Data[sym.Addr-text.Addr : end-text.Addr]
		for _, ins := range arch.DecodeAll(img.Arch, data, sym.Addr) {
			target := ""
			if t, ok := ins.Target(); ok {
				if f, ok2 := img.FuncAt(t); ok2 {
					target = fmt.Sprintf("  <%s+%#x>", f.Name, t-f.Addr)
				}
			}
			fmt.Printf("  %8x: %s%s\n", ins.Addr, ins, target)
		}
	}
}
