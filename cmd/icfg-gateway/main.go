// Command icfg-gateway is the rewrite cluster's front door: a thin
// stateless proxy that hashes each POSTed binary and forwards the
// request to the icfg-serve node that owns it on the consistent-hash
// ring, failing over through the replica set when the owner is down.
// Clients talk to one address; cache locality and failover happen
// behind it. The gateway holds no caches and no rewrite machinery, so
// any number of them can front the same peer set.
//
// Usage:
//
//	icfg-gateway -peers http://n1:8844,http://n2:8844,http://n3:8844
//	             [-addr :8840] [-replicas N] [-probe dur] [-max-body N]
//
// Batch jobs route through the gateway too: POST /batch lands the whole
// manifest on the node chosen by the manifest's hash, and the gateway
// remembers which node owns each job ID so /batch/{id},
// /batch/{id}/events (SSE, flushed per event), and
// /batch/{id}/output/{i} follow it there — falling back to probing the
// peers when the gateway has restarted and forgotten.
//
// -replicas (and the nodes' -funcs/-analyses sizing) should match the
// peers' own settings so the gateway's failover candidates are exactly
// the nodes holding the caches. /metrics exposes
// icfg_cluster_forwards_total and icfg_cluster_peers_healthy; /cluster
// reports the membership view.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"icfgpatch/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8840", "listen address")
	peers := flag.String("peers", "", "comma-separated base URLs of the icfg-serve nodes (required)")
	replicas := flag.Int("replicas", 0, "replication factor, matching the nodes' setting (default 2)")
	probe := flag.Duration("probe", 5*time.Second, "active /healthz probe interval (0: passive health only)")
	maxBody := flag.Int64("max-body", 0, "request body cap in bytes for /rewrite and /batch (default 256MiB, -1: unbounded)")
	flag.Parse()

	if *peers == "" {
		fatal(errors.New("-peers is required"))
	}
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Peers:           strings.Split(*peers, ","),
		Replicas:        *replicas,
		MaxRequestBytes: *maxBody,
	})
	if err != nil {
		fatal(err)
	}
	if *probe > 0 {
		probeCtx, stopProbes := context.WithCancel(context.Background())
		defer stopProbes()
		gw.StartProbes(probeCtx, *probe)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("icfg-gateway: listening on %s, fronting %s\n", ln.Addr(), *peers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("icfg-gateway: %s, shutting down\n", sig)
	case err := <-errc:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icfg-gateway:", err)
	os.Exit(1)
}
