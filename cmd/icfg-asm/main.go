// Command icfg-asm assembles the toolkit's text assembly format into a
// serialised binary consumable by icfg-rewrite and icfg-objdump.
//
// Usage:
//
//	icfg-asm -o out.icfg in.s
package main

import (
	"flag"
	"fmt"
	"os"

	"icfgpatch/internal/asm"
)

func main() {
	out := flag.String("o", "", "output path (required)")
	flag.Parse()
	if flag.NArg() != 1 || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: icfg-asm -o out.icfg in.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, dbg, err := asm.AssembleText(string(src))
	if err != nil {
		fatal(err)
	}
	if err := img.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("assembled %s: %s, %d functions, %d bytes of text\n",
		flag.Arg(0), img.Arch, len(dbg.FuncStart), img.Text().Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "icfg-asm:", err)
	os.Exit(1)
}
