// Command icfg-experiments reproduces the paper's evaluation tables and
// figures on the synthetic workload suite and prints them.
//
// The Table 3 sweep runs its independent (benchmark, approach) cells on
// a worker pool (-jobs); the aggregated tables are byte-identical to a
// serial run. Every failed rewrite or verification is reported on
// stderr and reflected in a non-zero exit status, in addition to being
// printed in the tables.
//
// Usage:
//
//	icfg-experiments [-run all|table1|table2|table3|figure1|figure2|firefox|docker|bolt|diogenes|incremental|profile|landingpads]
//	                 [-arch x64|ppc|a64|all] [-jobs N] [-metrics] [-trace]
//
// Two exclusive modes maintain the repo's performance trajectory
// (BENCH_<n>.json snapshots) instead of running experiments:
//
//	icfg-experiments -bench-record FILE [-bench-pr N] [-bench-iters N]
//	icfg-experiments -bench-compare BASE [-bench-candidate FILE]
//	                 [-latency-tolerance PCT] [-allocs-tolerance PCT]
//
// -bench-record measures the current build and writes the snapshot;
// -bench-compare gates a candidate snapshot (or a fresh measurement
// when -bench-candidate is empty) against a committed baseline and
// exits non-zero on any regression beyond the tolerances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/experiments"
	"icfgpatch/internal/perf"
	"icfgpatch/internal/workload"
)

// knownRuns are the -run values; validated up front so a typo'd
// selector is a usage error instead of a silent empty (and successful-
// looking) run.
var knownRuns = []string{
	"all", "table1", "table2", "table3", "figure1", "figure2",
	"firefox", "docker", "bolt", "diogenes", "ablation", "trampolines",
	"incremental", "profile", "landingpads",
}

func main() {
	runSel := flag.String("run", "all", "experiment to run: "+strings.Join(knownRuns, ", "))
	archSel := flag.String("arch", "all", "architecture for table3/incremental: x64, ppc, a64, all")
	jobs := flag.Int("jobs", 0, "worker count for the table3 sweep (0 = one per CPU, 1 = serial)")
	metrics := flag.Bool("metrics", false, "print aggregated per-pass rewrite metrics after table3 and workload cache stats at exit")
	trace := flag.Bool("trace", false, "print each rewrite's span tree (table3 and ablation cells)")
	benchRecord := flag.String("bench-record", "", "record a performance trajectory snapshot to FILE and exit")
	benchPR := flag.Int("bench-pr", 0, "PR number to stamp into the recorded snapshot")
	benchIters := flag.Int("bench-iters", 0, "timing iterations for -bench-record (0 = default)")
	benchCompare := flag.String("bench-compare", "", "gate against the baseline snapshot BASE and exit non-zero on regression")
	benchCandidate := flag.String("bench-candidate", "", "candidate snapshot for -bench-compare (empty = measure the current build)")
	latencyTol := flag.Float64("latency-tolerance", 0, "percent latency growth -bench-compare tolerates (0 = default)")
	allocsTol := flag.Float64("allocs-tolerance", 0, "percent allocs/op growth -bench-compare tolerates (0 = default)")
	flag.Parse()

	usage := func(err error) {
		fmt.Fprintln(os.Stderr, "icfg-experiments:", err)
		flag.PrintDefaults()
		os.Exit(2)
	}
	// The bench modes are exclusive: they measure or gate the build's
	// performance trajectory instead of running experiments.
	if *benchRecord != "" && *benchCompare != "" {
		usage(fmt.Errorf("-bench-record and -bench-compare are mutually exclusive"))
	}
	if *benchRecord != "" {
		runBenchRecord(*benchRecord, *benchPR, *benchIters)
		return
	}
	if *benchCompare != "" {
		runBenchCompare(*benchCompare, *benchCandidate, *benchPR, *benchIters, *latencyTol, *allocsTol)
		return
	}
	known := false
	for _, r := range knownRuns {
		known = known || r == *runSel
	}
	if !known {
		usage(fmt.Errorf("unknown experiment %q (want one of %s)", *runSel, strings.Join(knownRuns, ", ")))
	}
	var arches []arch.Arch
	if strings.ToLower(*archSel) == "all" {
		arches = arch.All()
	} else {
		a, err := arch.Parse(strings.ToLower(*archSel))
		if err != nil {
			usage(err)
		}
		arches = []arch.Arch{a}
	}
	if *trace {
		experiments.SetTrace(os.Stdout)
	}

	want := func(name string) bool { return *runSel == "all" || *runSel == name }
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "icfg-experiments:", err)
		os.Exit(1)
	}
	// Failed cells are reported per run (the graceful-failure contract):
	// the sweep continues, stderr lists each failure, and the process
	// exits non-zero so callers cannot mistake a failing sweep for a
	// clean one.
	failedRuns := 0
	report := func(failures []string) {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "icfg-experiments: FAILED run:", f)
		}
		failedRuns += len(failures)
	}

	if want("table1") {
		fmt.Println(experiments.Table1Render())
	}
	if want("table2") {
		fmt.Println(experiments.Table2Render())
	}
	if want("figure1") {
		out, err := experiments.Figure1Render()
		if err != nil {
			fail(err)
		}
		fmt.Println(out)
	}
	if want("figure2") {
		res, err := experiments.Figure2()
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	}
	if want("table3") {
		for _, a := range arches {
			res, err := experiments.Table3ForArchParallel(a, *jobs)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Render())
			if *metrics {
				fmt.Println(res.MetricsRender())
			}
			report(res.Failures())
		}
	}
	if want("firefox") {
		res, err := experiments.Firefox()
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
		report(res.Failures())
	}
	if want("docker") {
		res, err := experiments.Docker()
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
		report(res.Failures())
	}
	if want("bolt") {
		res, err := experiments.BOLTComparison()
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	}
	if want("diogenes") {
		res, err := experiments.Diogenes()
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
		report(res.Failures())
	}
	if want("ablation") {
		res, err := experiments.Ablation(arch.PPC)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Render())
	}
	if want("incremental") {
		for _, a := range arches {
			res, err := experiments.Incremental(a)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Render())
			report(res.Failures())
		}
	}
	if want("profile") {
		for _, a := range arches {
			res, err := experiments.ProfileGuided(a)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Render())
			report(res.Failures())
		}
	}
	if want("landingpads") {
		for _, a := range arches {
			res, err := experiments.LandingPads(a)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Render())
			report(res.Failures())
		}
	}
	if want("trampolines") {
		for _, a := range arch.All() {
			res, err := experiments.Trampolines(a)
			if err != nil {
				fail(err)
			}
			fmt.Println(res.Render())
		}
	}

	if *metrics {
		fmt.Printf("workload cache: %s\n", workload.CacheStats())
	}
	if failedRuns > 0 {
		fmt.Fprintf(os.Stderr, "icfg-experiments: %d failed run(s)\n", failedRuns)
		os.Exit(1)
	}
}

// runBenchRecord measures the current build and writes the snapshot.
func runBenchRecord(path string, pr, iters int) {
	tr, err := perf.Record(perf.RecordOptions{PR: pr, Iters: iters})
	if err != nil {
		fmt.Fprintln(os.Stderr, "icfg-experiments:", err)
		os.Exit(1)
	}
	if err := tr.Save(path); err != nil {
		fmt.Fprintln(os.Stderr, "icfg-experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("recorded %s: cold=%.1fms warm=%.1fms delta=%.1fms emit=%.0fMB/s warm-allocs=%.0f/op p50=%.1fms p99=%.1fms guided-ratio=%.3f\n",
		path, tr.ColdRewriteNs/1e6, tr.WarmPatchNs/1e6, tr.DeltaRewriteNs/1e6,
		tr.EmitThroughputMBps, tr.WarmPatchAllocsPerOp, tr.ServiceP50Ns/1e6, tr.ServiceP99Ns/1e6,
		tr.ProfileGuidedOverheadRatio)
}

// runBenchCompare gates a candidate snapshot — or a fresh measurement
// of the current build — against the committed baseline.
func runBenchCompare(basePath, candPath string, pr, iters int, latencyTol, allocsTol float64) {
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "icfg-experiments:", err)
		os.Exit(1)
	}
	base, err := perf.Load(basePath)
	if err != nil {
		fatal(err)
	}
	var cand *perf.Trajectory
	if candPath != "" {
		if cand, err = perf.Load(candPath); err != nil {
			fatal(err)
		}
	} else {
		fmt.Println("measuring current build for comparison...")
		if cand, err = perf.Record(perf.RecordOptions{PR: pr, Iters: iters}); err != nil {
			fatal(err)
		}
	}
	regs, err := perf.Compare(base, cand, perf.Tolerances{LatencyPct: latencyTol, AllocsPct: allocsTol})
	if err != nil {
		fatal(err)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintln(os.Stderr, "icfg-experiments: REGRESSION:", r)
		}
		fmt.Fprintf(os.Stderr, "icfg-experiments: %d perf regression(s) vs %s\n", len(regs), basePath)
		os.Exit(1)
	}
	fmt.Printf("bench-compare: no regressions vs %s\n", basePath)
}
