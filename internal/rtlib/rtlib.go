// Package rtlib is the runtime library that the paper injects into
// rewritten binaries with LD_PRELOAD (Section 3): it contains the trap
// signal handler that transfers control for trap trampolines, and the
// return-address translation routine of Section 6, backed by the .ra_map
// section it extracts from the rewritten binary. It also records which
// unwinding hooks are active: the libunwind step-function wrap for C++
// exceptions (Section 6.1) and the runtime.findfunc/runtime.pcvalue
// input patch for Go binaries (Section 6.2).
//
// rtlib implements emu.Runtime; loading a rewritten binary without
// preloading the library reproduces the paper's failure modes (unhandled
// trap signals, unwinding through untranslated return addresses).
package rtlib

import (
	"fmt"

	"icfgpatch/internal/bin"
)

// Meta keys the rewriter sets in the output binary's note section to
// describe which runtime hooks the library must install.
const (
	// MetaWrapUnwind marks binaries whose exception unwinding requires
	// the step-function wrap.
	MetaWrapUnwind = "icfg-wrap-unwind"
	// MetaGoPatch marks binaries whose Go runtime traceback functions
	// are entry-instrumented for RA translation.
	MetaGoPatch = "icfg-go-patch"
)

// Library is the loaded runtime library state for one rewritten binary.
type Library struct {
	traps      *bin.AddrMap
	ramap      *bin.AddrMap
	wrapUnwind bool
	goPatch    bool
}

// Preload extracts the trampoline map and return-address map from the
// rewritten binary, the moral equivalent of the library's constructor
// running under LD_PRELOAD. Binaries with no .tramp_map/.ra_map sections
// yield empty maps (the library is harmless on unrewritten binaries).
func Preload(b *bin.Binary) (*Library, error) {
	lib := &Library{
		traps:      bin.NewAddrMap(nil),
		ramap:      bin.NewAddrMap(nil),
		wrapUnwind: b.Meta[MetaWrapUnwind] == "1",
		goPatch:    b.Meta[MetaGoPatch] == "1",
	}
	if s := b.Section(bin.SecTrampMap); s != nil {
		pairs, err := bin.DecodeAddrMap(s.Data)
		if err != nil {
			return nil, fmt.Errorf("rtlib: parsing %s: %w", bin.SecTrampMap, err)
		}
		lib.traps = bin.NewAddrMap(pairs)
	}
	if s := b.Section(bin.SecRAMap); s != nil {
		pairs, err := bin.DecodeAddrMap(s.Data)
		if err != nil {
			return nil, fmt.Errorf("rtlib: parsing %s: %w", bin.SecRAMap, err)
		}
		lib.ramap = bin.NewAddrMap(pairs)
	}
	return lib, nil
}

// TrapTarget implements emu.Runtime: the signal handler's lookup from
// trap trampoline address to relocated code target.
func (l *Library) TrapTarget(pc uint64) (uint64, bool) { return l.traps.Lookup(pc) }

// TranslateRA implements emu.Runtime: Section 6's RATranslation routine.
// Addresses absent from the map pass through unchanged — "this case
// happens naturally when we are unwinding through binaries that are not
// instrumented".
func (l *Library) TranslateRA(pc uint64) uint64 {
	if to, ok := l.ramap.Lookup(pc); ok {
		return to
	}
	return pc
}

// WrapsUnwind implements emu.Runtime.
func (l *Library) WrapsUnwind() bool { return l.wrapUnwind }

// PatchesGoRuntime implements emu.Runtime.
func (l *Library) PatchesGoRuntime() bool { return l.goPatch }

// TrapCount returns the number of trap trampolines registered.
func (l *Library) TrapCount() int { return l.traps.Len() }

// RAMapCount returns the number of return-address mappings.
func (l *Library) RAMapCount() int { return l.ramap.Len() }
