package rtlib

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

func rewrittenLike() *bin.Binary {
	b := bin.New(arch.X64)
	b.Entry = 0x401000
	b.Sections = []*bin.Section{
		{Name: bin.SecText, Addr: 0x401000, Data: []byte{0x90}, Flags: bin.FlagAlloc | bin.FlagExec},
		{Name: bin.SecTrampMap, Addr: 0x500000, Data: bin.EncodeAddrMap([]bin.AddrPair{{From: 0x401000, To: 0x900000}}), Flags: bin.FlagAlloc},
		{Name: bin.SecRAMap, Addr: 0x501000, Data: bin.EncodeAddrMap([]bin.AddrPair{{From: 0x900010, To: 0x401010}}), Flags: bin.FlagAlloc},
	}
	b.Meta[MetaWrapUnwind] = "1"
	return b
}

func TestPreloadReadsMaps(t *testing.T) {
	lib, err := Preload(rewrittenLike())
	if err != nil {
		t.Fatal(err)
	}
	if to, ok := lib.TrapTarget(0x401000); !ok || to != 0x900000 {
		t.Errorf("TrapTarget = %#x, %v", to, ok)
	}
	if _, ok := lib.TrapTarget(0x999); ok {
		t.Error("TrapTarget hit a missing entry")
	}
	if got := lib.TranslateRA(0x900010); got != 0x401010 {
		t.Errorf("TranslateRA = %#x", got)
	}
	// Pass-through for unknown addresses (uninstrumented frames).
	if got := lib.TranslateRA(0x777); got != 0x777 {
		t.Errorf("unknown RA translated to %#x", got)
	}
	if !lib.WrapsUnwind() || lib.PatchesGoRuntime() {
		t.Error("hook flags wrong")
	}
	if lib.TrapCount() != 1 || lib.RAMapCount() != 1 {
		t.Error("counts wrong")
	}
}

func TestPreloadOnPlainBinary(t *testing.T) {
	b := bin.New(arch.X64)
	lib, err := Preload(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.TrapTarget(1); ok {
		t.Error("empty library resolved a trap")
	}
	if lib.TranslateRA(42) != 42 {
		t.Error("empty library translated an address")
	}
}

func TestPreloadRejectsCorruptMaps(t *testing.T) {
	b := rewrittenLike()
	b.Section(bin.SecRAMap).Data = []byte{1, 2, 3}
	if _, err := Preload(b); err == nil {
		t.Error("corrupt ra_map accepted")
	}
}
