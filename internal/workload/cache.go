package workload

import (
	"sync"
	"sync/atomic"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/store"
)

// The generators are deterministic but not cheap: building and linking
// the 19-benchmark suite dominates the start of every experiment sweep,
// and the parallel Table 3 runner would otherwise regenerate identical
// binaries in every worker. The cache memoises each seeded binary so it
// is generated and compiled once and then shared read-only across cells:
// that sharing is safe because the rewriter clones before mutating and
// the emulator copies section data into its own pages.

// cacheKey identifies one memoised generation request. The CFI axis is
// part of the identity: a landing-pad build is a different binary of the
// same program, and mixing the two would hand one experiment cell the
// other's bytes.
type cacheKey struct {
	kind string
	a    arch.Arch
	pie  bool
	cfi  bool
}

// cacheEntry single-flights one generation: the first caller runs gen,
// concurrent and later callers share the stored result.
type cacheEntry struct {
	once  sync.Once
	progs []*Program
	err   error
}

var (
	progCache   sync.Map // cacheKey -> *cacheEntry
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

// CacheStats reports the workload cache's hit/miss counters — the same
// shape internal/store uses, so experiment reports can print both
// caches uniformly. A miss is a generation actually run; concurrent
// callers that share a single-flighted generation count as hits.
func CacheStats() store.Stats {
	return store.Stats{Hits: cacheHits.Load(), Misses: cacheMisses.Load()}
}

// cached memoises gen behind key.
func cached(key cacheKey, gen func() ([]*Program, error)) ([]*Program, error) {
	e, _ := progCache.LoadOrStore(key, &cacheEntry{})
	ent := e.(*cacheEntry)
	generated := false
	ent.once.Do(func() {
		generated = true
		cacheMisses.Add(1)
		ent.progs, ent.err = gen()
	})
	if !generated {
		cacheHits.Add(1)
	}
	return ent.progs, ent.err
}

// cachedOne memoises a single-program generator.
func cachedOne(key cacheKey, gen func() (*Program, error)) (*Program, error) {
	progs, err := cached(key, func() ([]*Program, error) {
		p, err := gen()
		if err != nil {
			return nil, err
		}
		return []*Program{p}, nil
	})
	if err != nil {
		return nil, err
	}
	return progs[0], nil
}

// SPECSuiteCached returns the memoised 19-benchmark suite for one
// architecture/PIE configuration. Callers must treat the programs as
// read-only.
func SPECSuiteCached(a arch.Arch, pie bool) ([]*Program, error) {
	return cached(cacheKey{kind: "spec", a: a, pie: pie}, func() ([]*Program, error) { return SPECSuite(a, pie) })
}

// LibxulCached returns the memoised Firefox libxul.so-like workload.
func LibxulCached(a arch.Arch) (*Program, error) {
	return cachedOne(cacheKey{kind: "libxul", a: a, pie: true}, func() (*Program, error) { return Libxul(a) })
}

// LibxulCFICached returns the memoised landing-pad (CFI) build of the
// libxul.so-like workload.
func LibxulCFICached(a arch.Arch) (*Program, error) {
	return cachedOne(cacheKey{kind: "libxul", a: a, pie: true, cfi: true}, func() (*Program, error) { return LibxulCFI(a) })
}

// DockerCached returns the memoised Docker-like Go binary.
func DockerCached(a arch.Arch) (*Program, error) {
	return cachedOne(cacheKey{kind: "docker", a: a, pie: true}, func() (*Program, error) { return Docker(a) })
}

// DockerCFICached returns the memoised landing-pad (CFI) build of the
// Docker-like Go binary — the workload conservative func-ptr analysis
// refuses and landing-pad evidence rewrites soundly.
func DockerCFICached(a arch.Arch) (*Program, error) {
	return cachedOne(cacheKey{kind: "docker", a: a, pie: true, cfi: true}, func() (*Program, error) { return DockerCFI(a) })
}

// LibcudaCached returns the memoised libcuda.so-like driver library.
func LibcudaCached(a arch.Arch) (*Program, error) {
	return cachedOne(cacheKey{kind: "libcuda", a: a, pie: true}, func() (*Program, error) { return Libcuda(a) })
}
