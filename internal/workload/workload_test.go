package workload

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
)

func runProg(t *testing.T, img *bin.Binary, arg uint64) emu.Result {
	t.Helper()
	m, err := emu.Load(img, emu.Options{Arg: arg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSPECSuiteGeneratesAndRuns(t *testing.T) {
	for _, a := range arch.All() {
		progs, err := SPECSuite(a, false)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(progs) != 19 {
			t.Fatalf("%s: %d benchmarks, want 19 (627.cam4_s excluded)", a, len(progs))
		}
		excLangs := 0
		for _, p := range progs {
			res := runProg(t, p.Binary, 0)
			if len(res.Output) == 0 {
				t.Errorf("%s/%s: no output", a, p.Profile.Name)
			}
			if res.Instrs < 1000 {
				t.Errorf("%s/%s: only %d instructions — too small to measure", a, p.Profile.Name, res.Instrs)
			}
			if p.Profile.Exceptions {
				excLangs++
				if res.Unwinds == 0 {
					t.Errorf("%s/%s: exception benchmark never unwound", a, p.Profile.Name)
				}
			}
		}
		if excLangs != 2 {
			t.Errorf("%s: %d exception benchmarks, want 2 (620.omnetpp, 623.xalancbmk)", a, excLangs)
		}
	}
}

func TestSPECDeterministic(t *testing.T) {
	a, _ := SPECSuite(arch.X64, false)
	b, _ := SPECSuite(arch.X64, false)
	for i := range a {
		if string(a[i].Binary.Marshal()) != string(b[i].Binary.Marshal()) {
			t.Fatalf("%s: generation not deterministic", a[i].Profile.Name)
		}
	}
}

func TestSPECDifferentPerArch(t *testing.T) {
	// PPC profiles include opaque switches (coverage story); X64 do not.
	found := false
	for _, p := range specProfiles() {
		adj := archAdjust(arch.PPC, p)
		if adj.OpaqueFrac > 0 {
			found = true
		}
		if x := archAdjust(arch.X64, p); x.OpaqueFrac != 0 {
			t.Errorf("%s: x64 profile has opaque switches", p.Name)
		}
	}
	if !found {
		t.Error("no ppc profile with opaque switches — coverage story impossible")
	}
}

func TestLibxulTraits(t *testing.T) {
	p, err := Libxul(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Binary.UsesExceptions() {
		t.Error("libxul must use exceptions")
	}
	if p.Binary.Lang() != "c++/rust" {
		t.Errorf("lang = %q", p.Binary.Lang())
	}
	if len(p.Binary.FuncSymbols()) < 400 {
		t.Errorf("only %d functions", len(p.Binary.FuncSymbols()))
	}
	if _, ok := p.Binary.SymbolByName("dtor00"); !ok {
		t.Error("no destructors")
	}
	// The two browser benchmarks behave differently.
	lat := runProg(t, p.Binary, CmdLatencyBenchmark)
	js := runProg(t, p.Binary, CmdJetStream)
	if string(lat.Output) == string(js.Output) {
		t.Error("latency and jetstream workloads are indistinguishable")
	}
}

func TestDockerTraits(t *testing.T) {
	p, err := Docker(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Binary.GoRuntime() {
		t.Error("docker must carry a go runtime")
	}
	if p.Binary.Section(bin.SecGoPCLN) == nil {
		t.Error("no pclntab")
	}
	for _, name := range []string{"runtime.findfunc", "runtime.pcvalue", "runtime.goexit"} {
		if _, ok := p.Binary.SymbolByName(name); !ok {
			t.Errorf("missing %s", name)
		}
	}
	if _, ok := p.Binary.SymbolByName("go.vtab0"); !ok {
		t.Error("missing function table cell")
	}
	// Commands produce distinct outputs; tracebacks happen.
	seen := map[string]bool{}
	for cmd := uint64(1); cmd <= DockerCommands; cmd++ {
		res := runProg(t, p.Binary, cmd)
		seen[string(res.Output)] = true
		if res.Walks == 0 {
			t.Errorf("command %d: no traceback walks (GC model missing)", cmd)
		}
	}
	if len(seen) < DockerCommands {
		t.Errorf("only %d distinct command outputs of %d", len(seen), DockerCommands)
	}
}

func TestLibcudaTraits(t *testing.T) {
	p, err := Libcuda(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Binary.Meta["symbol-versioning"] != "1" {
		t.Error("libcuda must carry symbol versioning metadata")
	}
	funcs := p.Binary.FuncSymbols()
	if len(funcs) < 1000 {
		t.Errorf("only %d functions, want ~1200 (1:10 scale of 12644)", len(funcs))
	}
	small := 0
	for _, f := range funcs {
		if f.Size < 96 {
			small++
		}
	}
	if small < len(funcs)/3 {
		t.Errorf("only %d small functions of %d — thunk/dispatcher-heavy driver model missing", small, len(funcs))
	}
	targets := DiogenesTargets(p, 120)
	if len(targets) != 120 {
		t.Errorf("got %d targets", len(targets))
	}
	runProg(t, p.Binary, 0)
}

func TestBoundaryTableTraits(t *testing.T) {
	for _, a := range arch.All() {
		p, err := BoundaryTable(a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if len(p.Debug.Tables) != 1 {
			t.Fatalf("%s: %d tables, want 1", a, len(p.Debug.Tables))
		}
		tbl := p.Debug.Tables[0]
		if tbl.N != BoundaryCases {
			t.Errorf("%s: table has %d entries, want %d", a, tbl.N, BoundaryCases)
		}
		// The regression configuration: on the rodata-table ISAs the
		// table must sit flush against the section end, so Assumption-2
		// extension is limited exactly by the section boundary. (PPC
		// embeds its tables in .text.)
		if !tbl.InText {
			rod := p.Binary.Section(bin.SecRodata)
			if rod == nil {
				t.Fatalf("%s: no rodata section", a)
			}
			end := tbl.Addr + uint64(tbl.N*tbl.EntrySize)
			if end != rod.End() {
				t.Errorf("%s: table ends at %#x, rodata at %#x — not flush against the section boundary",
					a, end, rod.End())
			}
		}
		res := runProg(t, p.Binary, 0)
		if len(res.Output) == 0 {
			t.Errorf("%s: no output", a)
		}
	}
}

func TestGoBinariesHaveNoJumpTables(t *testing.T) {
	p, err := Docker(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Debug.Tables) != 0 {
		t.Errorf("go binary has %d jump tables; the Go compiler emits none", len(p.Debug.Tables))
	}
}

func TestSPECSuitePIEVariant(t *testing.T) {
	// The PIE builds (used by the IR-lowering rows and the BOLT
	// comparison) must run and carry runtime relocations.
	progs, err := SPECSuite(arch.X64, true)
	if err != nil {
		t.Fatal(err)
	}
	withRelocs := 0
	for _, p := range progs {
		if !p.Binary.PIE {
			t.Fatalf("%s: not PIE", p.Profile.Name)
		}
		if len(p.Binary.Relocs) > 0 {
			withRelocs++
		}
		res := runProg(t, p.Binary, 0)
		if len(res.Output) == 0 {
			t.Errorf("%s: no output", p.Profile.Name)
		}
	}
	if withRelocs < 15 {
		t.Errorf("only %d/19 PIE benchmarks carry runtime relocations", withRelocs)
	}
}

func TestProfileKnobsChangeBinaries(t *testing.T) {
	base := Profile{Name: "k", Seed: 1, Lang: "c", Funcs: 12, Iters: 4}
	with := base
	with.SwitchFrac = 0.9
	p1, err := Generate(arch.X64, false, base)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(arch.X64, false, with)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Debug.Tables) <= len(p1.Debug.Tables) {
		t.Errorf("SwitchFrac knob inert: %d vs %d tables", len(p2.Debug.Tables), len(p1.Debug.Tables))
	}
}
