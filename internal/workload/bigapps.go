package workload

import (
	"icfgpatch/internal/arch"
)

// Libxul generates the Firefox libxul.so-like workload: a large mixed
// C++/Rust code base with exceptions, many tiny functions, library
// destructors, and a few analysis-resistant switches (coverage 99.93% in
// the paper). The real library has a 120MiB text section with ~241K
// functions; this is a 1:150 scale model with the same traits. Two
// "browser benchmark" command IDs (1 = latency benchmark, 2 =
// JetStream2) select different workloads through the command dispatch.
func Libxul(a arch.Arch) (*Program, error) {
	return Generate(a, true, libxulProfile())
}

// LibxulCFI generates the same libxul.so-like program built with
// landing pads (Profile.CFI): marker prologues and marked jump-table
// cases, for the evidence-layer experiments (mark-bounded tables,
// marker overhead).
func LibxulCFI(a arch.Arch) (*Program, error) {
	p := libxulProfile()
	p.CFI = true
	return Generate(a, true, p)
}

func libxulProfile() Profile {
	return Profile{
		Name:           "libxul.so",
		Seed:           8080,
		Lang:           "c++/rust",
		Funcs:          420,
		SwitchFrac:     0.30,
		SpillFrac:      0.12,
		OpaqueFrac:     0.015, // a few unanalysable functions -> ~99.x% coverage
		TinyFrac:       0.22,
		DispatcherFrac: 0.08,
		TailCallFrac:   0.04,
		Exceptions:     true,
		StackCalls:     true,
		Iters:          40,
		DtorFuncs:      6,
		Commands:       2,
	}
}

// LatencyBenchmarkRuns and JetStreamRuns are the command IDs and repeat
// counts of the two browser benchmarks (the paper ran them 120 and 40
// times; the shapes need far fewer deterministic runs here).
const (
	CmdLatencyBenchmark = 1
	CmdJetStream        = 2
)

// Docker generates the Docker-like Go binary: a Go runtime that walks
// the stack (garbage collection model), goexit+1 pointer arithmetic, a
// function-table cell that defeats precise pointer analysis (func-ptr
// mode must refuse), no jump tables (dir ≡ jt), and 13 command IDs.
func Docker(a arch.Arch) (*Program, error) {
	return Generate(a, true, dockerProfile())
}

// DockerCFI generates the same Docker-like Go program built with
// landing pads (Profile.CFI). The function-table cell that makes
// conservative func-ptr analysis refuse the plain build is still
// present — but its mid-instruction target carries no marker, so
// trusted landing-pad evidence proves it unreachable and the build
// rewrites soundly in func-ptr mode.
func DockerCFI(a arch.Arch) (*Program, error) {
	p := dockerProfile()
	p.CFI = true
	return Generate(a, true, p)
}

func dockerProfile() Profile {
	return Profile{
		Name:       "docker",
		Seed:       1903,
		Lang:       "go",
		Funcs:      260,
		TinyFrac:   0.15,
		GoRuntime:  true,
		GoVtab:     true,
		StackCalls: true,
		Iters:      30,
		Commands:   13,
	}
}

// DockerCommands is the number of docker commands the correctness test
// exercises (pull, run, exec, ... — 13 in the paper).
const DockerCommands = 13

// GoTable generates a small Go-like function-table program: Go runtime,
// goexit pointer arithmetic, and the mid-instruction vtable cell that
// makes conservative func-ptr analysis refuse. Unlike Docker it has no
// command dispatch (whose mixing immediate exceeds the fixed-width ALU
// range), so it generates on every ISA — the cross-architecture
// evidence-layer tests run on it.
func GoTable(a arch.Arch) (*Program, error) {
	return Generate(a, true, goTableProfile())
}

// GoTableCFI generates the landing-pad (CFI) build of GoTable: the
// vtable cell is still present, but trusted marker evidence proves its
// mid-instruction target unreachable, so func-ptr mode accepts the
// binary it refuses when built without markers.
func GoTableCFI(a arch.Arch) (*Program, error) {
	p := goTableProfile()
	p.CFI = true
	return Generate(a, true, p)
}

func goTableProfile() Profile {
	return Profile{
		Name:       "go-table",
		Seed:       4120,
		Lang:       "go",
		Funcs:      48,
		TinyFrac:   0.12,
		GoRuntime:  true,
		GoVtab:     true,
		StackCalls: true,
		Iters:      8,
	}
}

// Libcuda generates the libcuda.so-like GPU driver library for the
// Diogenes case study: ~12644 functions in the real driver scaled 1:10,
// mostly tiny internal thunks, with symbol versioning metadata (which
// makes IR lowering fail) and a deep call chain under the public entry
// points. The main function is the Diogenes identification test: a hot
// loop through the public synchronization APIs, each funnelling into the
// hidden internal sync function.
func Libcuda(a arch.Arch) (*Program, error) {
	return Generate(a, true, Profile{
		Name:           "libcuda.so",
		Seed:           7000,
		Lang:           "c++",
		Funcs:          1200,
		SwitchFrac:     0.04,
		SpillFrac:      0.3,
		TinyFrac:       0.25,
		DispatcherFrac: 0.50,
		Roots:          48,
		Iters:          60,
		ExtraMeta:      map[string]string{"symbol-versioning": "1"},
	})
}

// DiogenesTargets returns the function subset Diogenes instruments: the
// paper instruments 700 of 12644 driver functions (the public sync APIs
// and everything on their call graphs). Scaled here, the hottest
// dispatch-heavy functions come first — the ones whose tiny case blocks
// force mainstream rewriting into trap trampolines.
func DiogenesTargets(p *Program, n int) []string {
	var out []string
	seen := map[string]bool{}
	for _, tbl := range p.Debug.Tables {
		if len(out) >= n {
			return out
		}
		if !seen[tbl.Func] && len(tbl.Func) >= 2 && tbl.Func[:2] == "fn" {
			seen[tbl.Func] = true
			out = append(out, tbl.Func)
		}
	}
	for _, sym := range p.Binary.FuncSymbols() {
		if len(out) >= n {
			break
		}
		if !seen[sym.Name] && len(sym.Name) >= 2 && sym.Name[:2] == "fn" {
			seen[sym.Name] = true
			out = append(out, sym.Name)
		}
	}
	return out
}
