package workload

import (
	"fmt"

	"icfgpatch/internal/arch"
)

// specProfiles lists the 19 SPEC CPU 2017-like benchmarks (627.cam4_s is
// excluded, as in the paper: it does not compile). The traits mirror the
// real suite: C++ benchmarks with exceptions (620.omnetpp, 623.xalancbmk),
// 8 programs with Fortran components (computed gotos → dense jump
// tables), interpreter-style C programs with big, hard switches
// (600.perlbench, 602.gcc), and lean numeric kernels.
func specProfiles() []Profile {
	return []Profile{
		{Name: "600.perlbench_s", Seed: 600, Lang: "c", Funcs: 34, SwitchFrac: 0.55, SpillFrac: 0.30, TinyFrac: 0.10, TailCallFrac: 0.06, StackCalls: true, Iters: 60},
		{Name: "602.gcc_s", Seed: 602, Lang: "c", Funcs: 48, SwitchFrac: 0.50, SpillFrac: 0.25, TinyFrac: 0.12, TailCallFrac: 0.08, StackCalls: true, Iters: 45},
		{Name: "603.bwaves_s", Seed: 603, Lang: "fortran", Funcs: 18, SwitchFrac: 0.40, SpillFrac: 0.10, TinyFrac: 0.05, Iters: 90},
		{Name: "605.mcf_s", Seed: 605, Lang: "c", Funcs: 16, SwitchFrac: 0.15, TinyFrac: 0.08, Iters: 110},
		{Name: "607.cactuBSSN_s", Seed: 607, Lang: "c++/c/fortran", Funcs: 40, SwitchFrac: 0.30, SpillFrac: 0.12, TinyFrac: 0.10, Iters: 55},
		{Name: "619.lbm_s", Seed: 619, Lang: "c", Funcs: 12, SwitchFrac: 0.10, TinyFrac: 0.05, Iters: 130},
		{Name: "620.omnetpp_s", Seed: 620, Lang: "c++", Funcs: 42, SwitchFrac: 0.25, SpillFrac: 0.10, TinyFrac: 0.15, Exceptions: true, StackCalls: true, Iters: 50},
		{Name: "621.wrf_s", Seed: 621, Lang: "fortran/c", Funcs: 44, SwitchFrac: 0.45, SpillFrac: 0.15, TinyFrac: 0.08, Iters: 45},
		{Name: "623.xalancbmk_s", Seed: 623, Lang: "c++", Funcs: 46, SwitchFrac: 0.30, SpillFrac: 0.12, TinyFrac: 0.14, Exceptions: true, StackCalls: true, Iters: 45},
		{Name: "625.x264_s", Seed: 625, Lang: "c", Funcs: 30, SwitchFrac: 0.25, SpillFrac: 0.08, TinyFrac: 0.10, Iters: 70},
		{Name: "628.pop2_s", Seed: 628, Lang: "fortran/c", Funcs: 36, SwitchFrac: 0.40, SpillFrac: 0.12, TinyFrac: 0.06, Iters: 55},
		{Name: "631.deepsjeng_s", Seed: 631, Lang: "c++", Funcs: 24, SwitchFrac: 0.30, SpillFrac: 0.10, TinyFrac: 0.08, Iters: 75},
		{Name: "638.imagick_s", Seed: 638, Lang: "c", Funcs: 32, SwitchFrac: 0.20, SpillFrac: 0.05, TinyFrac: 0.08, Iters: 65},
		{Name: "641.leela_s", Seed: 641, Lang: "c++", Funcs: 22, SwitchFrac: 0.20, SpillFrac: 0.08, TinyFrac: 0.10, Iters: 80},
		{Name: "644.nab_s", Seed: 644, Lang: "c", Funcs: 20, SwitchFrac: 0.15, TinyFrac: 0.06, Iters: 95},
		{Name: "648.exchange2_s", Seed: 648, Lang: "fortran", Funcs: 14, SwitchFrac: 0.50, SpillFrac: 0.15, TinyFrac: 0.04, Iters: 85},
		{Name: "649.fotonik3d_s", Seed: 649, Lang: "fortran", Funcs: 16, SwitchFrac: 0.35, SpillFrac: 0.10, TinyFrac: 0.05, Iters: 90},
		{Name: "654.roms_s", Seed: 654, Lang: "fortran", Funcs: 26, SwitchFrac: 0.40, SpillFrac: 0.12, TinyFrac: 0.06, Iters: 60},
		{Name: "657.xz_s", Seed: 657, Lang: "c", Funcs: 22, SwitchFrac: 0.25, SpillFrac: 0.10, TinyFrac: 0.10, TailCallFrac: 0.05, Iters: 80},
	}
}

// archAdjust applies the per-architecture hardness the paper observed:
// ppc64le jump tables (embedded in code, TOC-relative bases) resist
// analysis more often — a handful of functions per suite become
// uninstrumentable (coverage 99.41% in Table 3) — and aarch64 very
// rarely loses one (99.99%); x86-64 reaches 100%.
func archAdjust(a arch.Arch, p Profile) Profile {
	switch a {
	case arch.PPC:
		switch p.Name {
		case "602.gcc_s", "621.wrf_s", "600.perlbench_s", "628.pop2_s":
			p.OpaqueFrac = 0.06
		}
	case arch.A64:
		if p.Name == "602.gcc_s" {
			p.OpaqueFrac = 0.02
		}
	}
	return p
}

// SPECCFI generates the landing-pad (CFI) build of one named SPEC-like
// benchmark: the same program with marker prologues and marked
// jump-table cases. The switch-heavy interpreters (600.perlbench_s,
// 602.gcc_s) are the interesting builds — their spilled-index switches
// produce the inexact bounds marker evidence tightens.
func SPECCFI(a arch.Arch, pie bool, name string) (*Program, error) {
	for _, p := range specProfiles() {
		if p.Name == name {
			p = archAdjust(a, p)
			p.CFI = true
			return Generate(a, pie, p)
		}
	}
	return nil, fmt.Errorf("workload: no SPEC profile named %q", name)
}

// SPECSuite generates the 19-benchmark suite for one architecture.
func SPECSuite(a arch.Arch, pie bool) ([]*Program, error) {
	var out []*Program
	for _, p := range specProfiles() {
		prog, err := Generate(a, pie, archAdjust(a, p))
		if err != nil {
			return nil, err
		}
		out = append(out, prog)
	}
	return out, nil
}
