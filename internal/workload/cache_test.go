package workload

import (
	"sync"
	"testing"

	"icfgpatch/internal/arch"
)

// TestCachedSuiteSingleFlight drives the memoised suite from many
// goroutines at once: every caller must get the same generated programs
// (pointer identity — one generation shared, not N generations), and
// under -race the single-flight must be clean.
func TestCachedSuiteSingleFlight(t *testing.T) {
	const callers = 8
	suites := make([][]*Program, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			suites[g], errs[g] = SPECSuiteCached(arch.A64, false)
		}(g)
	}
	wg.Wait()
	for g := 0; g < callers; g++ {
		if errs[g] != nil {
			t.Fatalf("caller %d: %v", g, errs[g])
		}
		if len(suites[g]) == 0 {
			t.Fatalf("caller %d: empty suite", g)
		}
		for i := range suites[g] {
			if suites[g][i] != suites[0][i] {
				t.Fatalf("caller %d got a different program instance for benchmark %d", g, i)
			}
		}
	}
}

// TestCachedSuiteMatchesFresh verifies the cache is a pure memoisation:
// the cached binaries are byte-identical to a freshly generated suite.
func TestCachedSuiteMatchesFresh(t *testing.T) {
	cachedSuite, err := SPECSuiteCached(arch.A64, false)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := SPECSuite(arch.A64, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cachedSuite) != len(fresh) {
		t.Fatalf("suite sizes differ: %d cached, %d fresh", len(cachedSuite), len(fresh))
	}
	for i := range fresh {
		if cachedSuite[i].Profile.Name != fresh[i].Profile.Name {
			t.Errorf("benchmark %d: name %q vs %q", i, cachedSuite[i].Profile.Name, fresh[i].Profile.Name)
		}
		if string(cachedSuite[i].Binary.Marshal()) != string(fresh[i].Binary.Marshal()) {
			t.Errorf("benchmark %s: cached binary differs from fresh generation", fresh[i].Profile.Name)
		}
	}
}

// TestCachedOneIdentity checks the single-program caches return the
// same instance on repeated calls.
func TestCachedOneIdentity(t *testing.T) {
	a, err := LibcudaCached(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LibcudaCached(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("LibcudaCached regenerated instead of memoising")
	}
}

// TestCacheStats checks the hit/miss counters: repeated calls for one
// key must record at most one miss (the generation) and count every
// other caller as a hit. Counters are process-global, so the test
// measures deltas; the assertions hold whether or not another test
// already generated the key.
func TestCacheStats(t *testing.T) {
	before := CacheStats()
	for i := 0; i < 3; i++ {
		if _, err := LibcudaCached(arch.A64); err != nil {
			t.Fatal(err)
		}
	}
	d := CacheStats()
	d.Hits -= before.Hits
	d.Misses -= before.Misses
	if d.Hits+d.Misses != 3 {
		t.Fatalf("3 calls recorded %d hits + %d misses", d.Hits, d.Misses)
	}
	if d.Misses > 1 {
		t.Fatalf("one key generated %d times", d.Misses)
	}
	if d.Hits < 2 {
		t.Fatalf("repeat calls not counted as hits: %s", d)
	}
}
