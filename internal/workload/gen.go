// Package workload generates the synthetic binaries the experiments run:
// a 19-program SPEC CPU 2017-like suite, a Firefox libxul.so-like huge
// mixed C++/Rust library, a Docker-like Go binary, and a libcuda.so-like
// driver library for the Diogenes case study. Every generator is seeded
// and deterministic; the traits that drive the paper's results (jump
// table density and hardness, exception use, tiny functions, language
// runtime behaviour) are explicit profile knobs.
package workload

import (
	"fmt"
	"math/rand"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
)

// Profile describes one generated program.
type Profile struct {
	Name string
	Seed int64
	// Lang is the .note.lang source language tag.
	Lang string
	// Funcs is the number of generated worker functions.
	Funcs int
	// SwitchFrac is the fraction of functions containing a jump-table
	// switch.
	SwitchFrac float64
	// SpillFrac is the fraction of switches with a spilled index (bound
	// recovery fails; Assumption-2 extension needed).
	SpillFrac float64
	// OpaqueFrac is the fraction of switches with an opaque table base
	// (analysis failure; the function becomes uninstrumentable).
	OpaqueFrac float64
	// TinyFrac is the fraction of tiny (few-byte) functions, the main
	// source of trap trampolines.
	TinyFrac float64
	// TailCallFrac is the fraction of functions ending in an indirect
	// tail call.
	TailCallFrac float64
	// DispatcherFrac is the fraction of functions that are leaf
	// dispatchers: a jump-table switch whose cases return directly.
	// Their case blocks are single return instructions — too small for
	// anything but a trap trampoline on X64 when they are CFL blocks,
	// which is what separates dir from jt on trap counts (Firefox and
	// Diogenes, Sections 8.2 and 9).
	DispatcherFrac float64
	// Exceptions adds try/catch around some calls and throwing callees.
	Exceptions bool
	// StackCalls adds indirect calls through stack slots.
	StackCalls bool
	// GoRuntime marks a Go-like binary: runtime stubs, pclntab,
	// traceback syscalls in hot code, goexit+1 pointer arithmetic, a
	// mid-instruction function-table cell, and no jump tables (the Go
	// compiler emits none, Section 8.2).
	GoRuntime bool
	// Iters is the main loop trip count (controls run length).
	Iters int
	// SharedLib marks the output as a library with exported symbols.
	SharedLib bool
	// DtorFuncs adds tiny destructor-style functions run once at exit —
	// the libxul.so situation where dir mode's trap trampolines land in
	// library destructors (Section 8.2).
	DtorFuncs int
	// GoVtab adds a Go-style function table cell holding a
	// mid-instruction code address, which function-pointer analysis
	// must refuse (func-ptr mode fails on Docker, Section 8.2).
	GoVtab bool
	// CFI builds the program with CET-style landing pads: the linker
	// prepends an arch.Mark to every function prologue (asm.Builder
	// SetCFI), the generator emits one at every jump-table case label,
	// and the binary carries the cfi=1 note the evidence layer's trust
	// decision keys on. It is a workload-identity axis: a CFI build is a
	// different binary (different bytes, different content hash) of the
	// same program.
	CFI bool
	// Commands > 0 makes main dispatch on the startup argument so that
	// distinct command IDs produce distinct workloads and outputs (the
	// 13 Docker commands; the two browser benchmarks).
	Commands int
	// Roots overrides how many workers the main loop calls directly
	// (default 4); drivers with wide public APIs (libcuda) use more.
	Roots int
	// ExtraMeta is merged into the note metadata.
	ExtraMeta map[string]string
}

// Program is a generated benchmark.
type Program struct {
	Profile Profile
	Binary  *bin.Binary
	Debug   *asm.DebugInfo
}

// Generate builds the program for one architecture/PIE configuration.
func Generate(a arch.Arch, pie bool, p Profile) (*Program, error) {
	g := &generator{
		rng: rand.New(rand.NewSource(p.Seed ^ int64(a)<<8)),
		b:   asm.New(a, pie),
		p:   p,
		a:   a,
	}
	if err := g.build(); err != nil {
		return nil, fmt.Errorf("workload: generating %s for %s: %w", p.Name, a, err)
	}
	img, dbg, err := g.b.Link()
	if err != nil {
		return nil, fmt.Errorf("workload: linking %s for %s: %w", p.Name, a, err)
	}
	return &Program{Profile: p, Binary: img, Debug: dbg}, nil
}

type generator struct {
	rng *rand.Rand
	b   *asm.Builder
	p   Profile
	a   arch.Arch
	// funcNames[i] is worker i; workers only call higher-index workers,
	// so the call graph is a DAG plus one explicitly recursive worker.
	funcNames []string
	ptrCells  []string
}

// accSlot is the frame slot generated functions use to protect their
// accumulator across calls.
const accSlot = 8

func (g *generator) build() error {
	p := g.p
	g.b.SetMeta("lang", p.Lang)
	if p.CFI {
		g.b.SetCFI()
	}
	if p.Exceptions {
		g.b.SetMeta("exceptions", "1")
	}
	if p.GoRuntime {
		g.b.SetMeta("go-runtime", "1")
	}
	for k, v := range p.ExtraMeta {
		g.b.SetMeta(k, v)
	}

	if p.GoRuntime {
		// The runtime functions Section 6.2 instruments.
		ff := g.b.Func("runtime.findfunc")
		ff.OpI(arch.Add, arch.R0, arch.R1, 0)
		ff.Return()
		pv := g.b.Func("runtime.pcvalue")
		pv.OpI(arch.Add, arch.R0, arch.R1, 0)
		pv.Return()
		// runtime.goexit with the Listing 1 entry nop and the +nop
		// pointer cell the loader relocates. A CFI build carries a second,
		// explicit landing pad at the cell's target: the prologue marker
		// covers only the entry, and the real runtime's goexit sentinel is
		// a legitimate indirect-transfer target, so its mid-function
		// address must decode as a marker for the evidence layer to keep
		// (rather than skip) the cell's func-ptr rewrite.
		gx := g.b.Func("runtime.goexit")
		gx.Nop()
		if p.CFI {
			gx.Mark()
		}
		gx.OpI(arch.Add, arch.R0, arch.R1, 7)
		gx.Return()
		nopLen := int64(1)
		if g.a.FixedWidth() {
			nopLen = 4
		}
		off := nopLen
		if p.CFI {
			// Past the prologue marker and the nop, onto the explicit
			// marker (marker and nop encode to the same length per ISA).
			off += nopLen
		}
		// The cell is a return-address sentinel the stack walker compares
		// against, as in the real runtime — never a call target. Keep it
		// out of the callable pointer pool: dir/jt modes leave pointers
		// unrewritten and only place trampolines at CFL block starts, so
		// calling through a mid-function pointer is outside their
		// soundness contract (the paper handles goexit+1 via the RA map).
		g.b.FuncPtrGlobal("go.goexitfn", "runtime.goexit", off)
	}

	// Worker functions, generated leaf-to-root so calls only target
	// already-named higher-index workers.
	for i := 0; i < p.Funcs; i++ {
		g.funcNames = append(g.funcNames, fmt.Sprintf("fn%03d", i))
	}
	// Function pointer cells, targeting the leaf-ward half of the DAG so
	// pointer calls from root-ward workers cannot form call cycles.
	nPtr := max(1, p.Funcs/4)
	for k := 0; k < nPtr; k++ {
		lo := p.Funcs / 2
		target := g.funcNames[lo+g.rng.Intn(max(1, p.Funcs-lo))]
		cell := fmt.Sprintf("fp%02d", k)
		g.b.FuncPtrGlobal(cell, target, 0)
		g.ptrCells = append(g.ptrCells, cell)
	}

	for i := p.Funcs - 1; i >= 0; i-- {
		g.worker(i)
	}

	if p.GoVtab && p.Funcs > 1 {
		// A code pointer into the middle of an instruction: fn001's
		// body starts with a multi-byte instruction on every ISA, so
		// entry+2 is never a boundary.
		g.b.FuncPtrGlobal("go.vtab0", g.funcNames[1], 2)
	}
	for d := 0; d < p.DtorFuncs; d++ {
		dt := g.b.Func(fmt.Sprintf("dtor%02d", d))
		g.dispatcher(dt, 3+d%3)
	}

	if p.Exceptions {
		th := g.b.Func("thrower")
		skip := th.NewLabel()
		th.OpI(arch.Sub, arch.R6, arch.R1, 1)
		th.BranchCondTo(arch.NE, arch.R6, skip)
		th.Throw()
		th.Bind(skip)
		th.OpI(arch.Add, arch.R0, arch.R1, 11)
		th.Return()
	}

	g.main()
	g.b.SetEntry("main")
	if p.SharedLib {
		g.b.SetSharedLib()
		for _, n := range g.funcNames {
			if g.rng.Float64() < 0.1 {
				g.b.Export(n)
			}
		}
	}
	return nil
}

// worker emits one generated function. Index 0 is the root the main loop
// calls; higher indexes are deeper in the call DAG.
func (g *generator) worker(i int) {
	p := g.p
	f := g.b.Func(g.funcNames[i])
	r := g.rng

	tiny := r.Float64() < p.TinyFrac
	if tiny {
		f.OpI(arch.Add, arch.R0, arch.R1, int64(1+r.Intn(7)))
		f.Return()
		return
	}
	if !p.GoRuntime && r.Float64() < p.DispatcherFrac {
		g.dispatcher(f, 3+r.Intn(4))
		return
	}
	if p.TailCallFrac > 0 && i < p.Funcs/2 && r.Float64() < p.TailCallFrac && len(g.ptrCells) > 0 {
		// A leaf tail-call thunk: no frame and no saved link register, so
		// the tail-callee returns directly to this function's caller.
		cell := g.ptrCells[r.Intn(len(g.ptrCells))]
		f.OpI(arch.Add, arch.R1, arch.R1, int64(i))
		f.LoadGlobal(arch.R9, arch.R9, cell, 8)
		f.TailJumpReg(arch.R9)
		return
	}

	canCall := i+1 < p.Funcs
	f.SetFrame(48)

	// Accumulator r3 from the argument.
	f.OpI(arch.Add, arch.R3, arch.R1, int64(i))

	// An arithmetic loop: the compute the benchmark spends most of its
	// time in (SPEC programs are compute-dominated; call overheads are
	// diluted accordingly).
	trips := 4 + r.Intn(9)
	f.Li(arch.R4, int64(trips))
	top := f.Here()
	f.Op3(arch.Add, arch.R3, arch.R3, arch.R4)
	f.OpI(arch.Shl, arch.R5, arch.R3, 1)
	f.Op3(arch.Xor, arch.R3, arch.R3, arch.R5)
	f.OpI(arch.Mul, arch.R5, arch.R5, 3)
	f.OpI(arch.Shr, arch.R6, arch.R3, 2)
	f.Op3(arch.Add, arch.R3, arch.R3, arch.R6)
	f.Op3(arch.And, arch.R5, arch.R5, arch.R3)
	f.Op3(arch.Xor, arch.R3, arch.R3, arch.R5)
	f.OpI(arch.Sub, arch.R4, arch.R4, 1)
	f.BranchCondTo(arch.NE, arch.R4, top)

	// Optionally a jump-table switch on r3 % n (never in Go binaries).
	if !p.GoRuntime && r.Float64() < p.SwitchFrac {
		n := 3 + r.Intn(5)
		opts := asm.SwitchOpts{}
		roll := r.Float64()
		if roll < p.OpaqueFrac {
			opts.OpaqueBase = true
		} else if roll < p.OpaqueFrac+p.SpillFrac {
			opts.SpillIndex = true
		}
		f.Li(arch.R7, int64(n))
		f.Op3(arch.Div, arch.R8, arch.R3, arch.R7)
		f.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
		f.Op3(arch.Sub, arch.R8, arch.R3, arch.R8)
		cases := make([]asm.Label, n)
		for k := range cases {
			cases[k] = f.NewLabel()
		}
		def := f.NewLabel()
		join := f.NewLabel()
		f.Switch(arch.R8, arch.R9, arch.R10, cases, def, opts)
		for k, c := range cases {
			f.Bind(c)
			if p.CFI {
				f.Mark() // jump-table targets are indirect-transfer targets
			}
			f.OpI(arch.Add, arch.R3, arch.R3, int64(10+k*3))
			f.BranchTo(join)
		}
		f.Bind(def)
		f.OpI(arch.Add, arch.R3, arch.R3, 999)
		f.Bind(join)
	}

	// Calls into the DAG, protecting the accumulator. Pointer calls are
	// only emitted root-ward of the cells' leaf-ward targets, keeping
	// the call graph acyclic.
	if canCall {
		nCalls := 1 + r.Intn(2)
		mayPtr := i < p.Funcs/2 && len(g.ptrCells) > 0
		for c := 0; c < nCalls && i+1 < p.Funcs; c++ {
			// Jump at least half the remaining distance leaf-ward so the
			// call tree depth is logarithmic and total work stays
			// bounded regardless of seed.
			span := p.Funcs - i - 1
			base := i + 1 + span/2
			callee := g.funcNames[base+r.Intn(max(1, p.Funcs-base))]
			f.StoreLocal(arch.R3, accSlot)
			f.Mov(arch.R1, arch.R3)
			switch {
			case p.StackCalls && mayPtr && r.Float64() < 0.18:
				cell := g.ptrCells[r.Intn(len(g.ptrCells))]
				f.LoadGlobal(arch.R9, arch.R9, cell, 8)
				f.CallStackSlot(arch.R9, 24)
			case mayPtr && r.Float64() < 0.35:
				cell := g.ptrCells[r.Intn(len(g.ptrCells))]
				f.CallPtr(arch.R9, cell)
			default:
				f.CallF(callee)
			}
			f.LoadLocal(arch.R3, accSlot)
			f.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
		}
	}

	if p.Exceptions && canCall && (i == 0 || r.Float64() < 0.3) {
		catch := f.NewLabel()
		done := f.NewLabel()
		f.StoreLocal(arch.R3, accSlot)
		f.OpI(arch.And, arch.R1, arch.R3, 3)
		f.BeginTry()
		f.CallF("thrower")
		f.EndTry(catch)
		f.LoadLocal(arch.R3, accSlot)
		f.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
		f.BranchTo(done)
		f.Bind(catch)
		f.LoadLocal(arch.R3, accSlot)
		f.OpI(arch.Add, arch.R3, arch.R3, 5)
		f.Bind(done)
	}

	if p.GoRuntime && r.Float64() < 0.2 {
		// GC-style traceback from deep in the call stack.
		f.StoreLocal(arch.R3, accSlot)
		f.I(arch.Instr{Kind: arch.Syscall, Imm: emu.SysTraceback})
		f.LoadLocal(arch.R3, accSlot)
	}

	f.Mov(arch.R0, arch.R3)
	f.Return()
}

// dispatcher emits a leaf function that jump-table-dispatches on its
// argument into return-only case blocks.
func (g *generator) dispatcher(f *asm.FuncBuilder, n int) {
	f.Li(arch.R7, int64(n))
	f.Op3(arch.Div, arch.R8, arch.R1, arch.R7)
	f.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
	f.Op3(arch.Sub, arch.R8, arch.R1, arch.R8)
	f.OpI(arch.Add, arch.R0, arch.R1, 1)
	cases := make([]asm.Label, n)
	for k := range cases {
		cases[k] = f.NewLabel()
	}
	def := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	for _, c := range cases {
		f.Bind(c)
		if g.p.CFI {
			f.Mark()
		}
		f.Return() // one-instruction case block
	}
	f.Bind(def)
	f.OpI(arch.Add, arch.R0, arch.R0, 2)
	f.Return()
}

// main emits the driver loop: iterate, call root workers with varying
// arguments, fold results into a checksum, print it.
func (g *generator) main() {
	p := g.p
	m := g.b.Func("main")
	m.SetFrame(64)
	m.StoreLocal(arch.R1, 24)     // startup argument (command ID)
	m.Li(arch.R3, 0)              // checksum
	m.Li(arch.R4, int64(p.Iters)) // countdown
	top := m.Here()

	roots := 1 + min(3, p.Funcs-1)
	if p.Roots > 0 {
		roots = min(p.Roots, p.Funcs)
	}
	for rt := 0; rt < roots; rt++ {
		m.StoreLocal(arch.R3, accSlot)
		m.StoreLocal(arch.R4, 16)
		m.Mov(arch.R1, arch.R4)
		if p.Commands > 0 {
			// Mix the command ID into the work so each command has its
			// own observable behaviour.
			m.LoadLocal(arch.R5, 24)
			m.OpI(arch.Mul, arch.R5, arch.R5, 0x9E37)
			m.Op3(arch.Xor, arch.R1, arch.R1, arch.R5)
			m.OpI(arch.And, arch.R1, arch.R1, 0xFFF)
		}
		m.CallF(g.funcNames[rt])
		m.LoadLocal(arch.R3, accSlot)
		m.LoadLocal(arch.R4, 16)
		m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
		m.OpI(arch.Shl, arch.R5, arch.R3, 3)
		m.Op3(arch.Xor, arch.R3, arch.R3, arch.R5)
	}
	if p.GoRuntime {
		m.StoreLocal(arch.R3, accSlot)
		m.I(arch.Instr{Kind: arch.Syscall, Imm: emu.SysTraceback})
		m.LoadLocal(arch.R3, accSlot)
		m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	}
	m.OpI(arch.Sub, arch.R4, arch.R4, 1)
	m.BranchCondTo(arch.NE, arch.R4, top)
	for d := 0; d < p.DtorFuncs; d++ {
		m.StoreLocal(arch.R3, accSlot)
		m.Mov(arch.R1, arch.R3)
		m.CallF(fmt.Sprintf("dtor%02d", d))
		m.LoadLocal(arch.R3, accSlot)
		m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	}
	m.Print(arch.R3)
	m.Li(arch.R0, 0)
	m.Halt()
}
