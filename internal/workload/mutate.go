package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// MutateVersion derives "version 2" of a binary for incremental-rewrite
// experiments: it clones b and perturbs k of its functions with a
// length-stable, semantics-local edit — flipping the low bit of a small
// ALU immediate on an accumulator register. The edit models the typical
// content of a point release (changed constants, tweaked arithmetic)
// while deliberately leaving every function's size, control flow, and
// jump-table data untouched, so exactly the mutated functions' content
// hashes change.
//
// The choice of functions and sites is deterministic in seed. It
// returns the mutated clone and the sorted names of the functions
// actually mutated; an error if fewer than k functions have a mutable
// site.
func MutateVersion(b *bin.Binary, k int, seed int64) (*bin.Binary, []string, error) {
	syms := b.FuncSymbols()
	text := b.Text()
	if text == nil {
		return nil, nil, fmt.Errorf("workload: mutate: binary has no text section")
	}
	r := rand.New(rand.NewSource(seed))
	order := r.Perm(len(syms))

	clone := b.Clone()
	enc := arch.ForArch(b.Arch)
	var mutated []string
	for _, i := range order {
		if len(mutated) == k {
			break
		}
		sym := syms[i]
		if sym.Size == 0 {
			continue
		}
		site, ok := mutationSite(b, sym)
		if !ok {
			continue
		}
		ins := site
		ins.Imm ^= 1
		raw, err := enc.Encode(ins)
		if err != nil {
			return nil, nil, fmt.Errorf("workload: mutate %s at %#x: %w", sym.Name, site.Addr, err)
		}
		if len(raw) != site.EncLen {
			// Length-stable by construction: both immediates are small and
			// the synthetic ISA's encodings are fixed per kind.
			return nil, nil, fmt.Errorf("workload: mutate %s at %#x: encoding length changed (%d -> %d)",
				sym.Name, site.Addr, site.EncLen, len(raw))
		}
		if err := clone.WriteAt(site.Addr, raw); err != nil {
			return nil, nil, fmt.Errorf("workload: mutate %s: %w", sym.Name, err)
		}
		mutated = append(mutated, sym.Name)
	}
	if len(mutated) < k {
		return nil, nil, fmt.Errorf("workload: mutate: only %d of %d requested functions have a mutable site", len(mutated), k)
	}
	sort.Strings(mutated)
	return clone, mutated, nil
}

// mutationSite linearly decodes the function and returns its first
// safely mutable instruction: an add-immediate onto one of the
// generator's accumulator registers (R0, R1, R3) with a small
// immediate. Small immediates keep the flip length-stable on every
// arch and cannot collide with the jump-table boundary hints the
// resolver scans for (those are text addresses, far above 1000).
func mutationSite(b *bin.Binary, sym bin.Symbol) (arch.Instr, bool) {
	text := b.SectionAt(sym.Addr)
	if text == nil {
		return arch.Instr{}, false
	}
	data := text.Data[sym.Addr-text.Addr : sym.Addr+sym.Size-text.Addr]
	for _, ins := range arch.DecodeAll(b.Arch, data, sym.Addr) {
		if ins.Kind != arch.ALUImm && ins.Kind != arch.AddImm16 {
			continue
		}
		if ins.Op != arch.Add {
			continue
		}
		if !accumulatorReg(ins.Rd) || !accumulatorReg(ins.Rs1) {
			continue
		}
		if ins.Imm < 0 || ins.Imm > 1000 {
			continue
		}
		return ins, true
	}
	return arch.Instr{}, false
}

func accumulatorReg(r arch.Reg) bool {
	return r == arch.R0 || r == arch.R1 || r == arch.R3
}
