package workload

import (
	"fmt"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
)

// BoundaryCases is the switch width of the BoundaryTable workload:
// wider than analysis.MaxTableEntries, so a bound-extension cap applied
// to a hard limit would silently truncate the table.
const BoundaryCases = analysis.MaxTableEntries + 88

// BoundaryDriverIndices are the case indices the BoundaryTable driver
// exercises: well below the extension cap, just below it, at it, and
// above it. The above-cap indices are the regression: a rewriter that
// truncated the table leaves them dispatching through stale code.
var BoundaryDriverIndices = []int{
	0, 7,
	analysis.MaxTableEntries - 1,
	analysis.MaxTableEntries,
	analysis.MaxTableEntries + 78,
	BoundaryCases - 1,
}

// BoundaryTable generates the jump-table bound regression workload: one
// giant dispatcher whose switch has BoundaryCases cases, whose index is
// spilled across the stack so bound recovery fails (Assumption-2
// extension kicks in), and whose table is the last item in .rodata —
// flush against the section end, the configuration where the extension
// limit IS the section boundary. The driver calls indices on both sides
// of the cap, so truncation shows up as divergent runtime output, not
// just a smaller resolved count.
func BoundaryTable(a arch.Arch) (*Program, error) {
	b := asm.New(a, false)

	d := b.Func("dispatch")
	d.SetFrame(32)
	// idx = arg mod BoundaryCases.
	d.Li(arch.R7, int64(BoundaryCases))
	d.Op3(arch.Div, arch.R8, arch.R1, arch.R7)
	d.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
	d.Op3(arch.Sub, arch.R8, arch.R1, arch.R8)
	cases := make([]asm.Label, BoundaryCases)
	for i := range cases {
		cases[i] = d.NewLabel()
	}
	def := d.NewLabel()
	join := d.NewLabel()
	d.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{SpillIndex: true})
	for i, c := range cases {
		d.Bind(c)
		d.OpI(arch.Add, arch.R0, arch.R1, int64(3*i+1))
		d.BranchTo(join)
	}
	d.Bind(def)
	d.OpI(arch.Add, arch.R0, arch.R1, 1999) // 12-bit ALU immediate limit
	d.Bind(join)
	d.Return()

	m := b.Func("main")
	m.SetFrame(48)
	m.Li(arch.R3, 0) // checksum
	for _, idx := range BoundaryDriverIndices {
		m.StoreLocal(arch.R3, accSlot)
		m.Li(arch.R1, int64(idx))
		m.CallF("dispatch")
		m.LoadLocal(arch.R3, accSlot)
		m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
		m.OpI(arch.Shl, arch.R5, arch.R3, 1)
		m.Op3(arch.Xor, arch.R3, arch.R3, arch.R5)
	}
	m.Print(arch.R3)
	m.Li(arch.R0, 0)
	m.Halt()
	b.SetEntry("main")

	img, dbg, err := b.Link()
	if err != nil {
		return nil, fmt.Errorf("workload: linking boundary-table for %s: %w", a, err)
	}
	p := Profile{Name: "boundary-table", Lang: "c++"}
	return &Program{Profile: p, Binary: img, Debug: dbg}, nil
}
