package bin_test

import (
	"bytes"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/workload"
)

// fuzzSeeds returns serialised workload binaries for every arch — real
// on-the-wire inputs, which give the fuzzer structurally valid starting
// points to mutate.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	var seeds [][]byte
	for _, a := range []arch.Arch{arch.X64, arch.A64, arch.PPC} {
		p, err := workload.Generate(a, false, workload.Profile{
			Name: "fuzzseed", Seed: 11, Lang: "c",
			Funcs: 6, SwitchFrac: 0.3, TinyFrac: 0.2, Iters: 2,
		})
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, p.Binary.Marshal())
	}
	return seeds
}

// FuzzDeserialize drives bin.Unmarshal with mutated serialised
// binaries. Malformed or truncated input must return an error — never
// panic — and anything that parses must survive a Marshal/Unmarshal
// round trip byte-identically.
func FuzzDeserialize(f *testing.F) {
	for _, raw := range fuzzSeeds(f) {
		f.Add(raw)
		// Truncations exercise every table's short-input path.
		for _, frac := range []int{2, 3, 10} {
			f.Add(raw[:len(raw)/frac])
		}
	}
	f.Add([]byte("ICFGBIN1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := bin.Unmarshal(data)
		if err != nil {
			return
		}
		out := b.Marshal()
		b2, err := bin.Unmarshal(out)
		if err != nil {
			t.Fatalf("re-unmarshal of marshalled binary failed: %v", err)
		}
		if !bytes.Equal(out, b2.Marshal()) {
			t.Fatal("marshal/unmarshal round trip not stable")
		}
	})
}

// FuzzDecodeAddrMap drives the .ra_map/.tramp_map payload decoder; a
// hostile entry count must fail cleanly instead of over-allocating.
func FuzzDecodeAddrMap(f *testing.F) {
	f.Add(bin.EncodeAddrMap([]bin.AddrPair{{From: 0x1000, To: 0x2000}, {From: 0x1010, To: 0x2040}}))
	f.Add(bin.EncodeAddrMap(nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		pairs, err := bin.DecodeAddrMap(data)
		if err != nil {
			return
		}
		enc := bin.EncodeAddrMap(pairs)
		back, err := bin.DecodeAddrMap(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded map failed: %v", err)
		}
		if len(back) != len(pairs) {
			t.Fatalf("round trip lost entries: %d -> %d", len(pairs), len(back))
		}
	})
}
