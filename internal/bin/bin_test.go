package bin

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"icfgpatch/internal/arch"
)

// testBinary builds a small but fully populated binary.
func testBinary() *Binary {
	b := New(arch.X64)
	b.PIE = true
	b.Entry = 0x401000
	b.TOCValue = 0x10008000
	b.Sections = []*Section{
		{Name: SecText, Addr: 0x401000, Data: []byte{0x90, 0xC3, 0x90, 0x90}, Flags: FlagAlloc | FlagExec, Align: 16},
		{Name: SecRodata, Addr: 0x402000, Data: make([]byte, 64), Flags: FlagAlloc, Align: 8},
		{Name: SecData, Addr: 0x403000, Data: make([]byte, 32), Flags: FlagAlloc | FlagWrite, Align: 8},
		{Name: SecEhFrame, Addr: 0x404000, Data: []byte{1, 2, 3}, Flags: FlagAlloc, Align: 8},
		{Name: ".debug_info", Addr: 0, Data: make([]byte, 128), Flags: 0, Align: 1},
	}
	b.Symbols = []Symbol{
		{Name: "main", Addr: 0x401000, Size: 2, Kind: SymFunc, Global: true},
		{Name: "helper", Addr: 0x401002, Size: 2, Kind: SymFunc},
		{Name: "gvar", Addr: 0x403000, Size: 8, Kind: SymObject},
	}
	b.DynSymbols = []Symbol{{Name: "main", Addr: 0x401000, Size: 2, Kind: SymFunc, Global: true}}
	b.Relocs = []Reloc{{Kind: RelocRelative, Off: 0x403000, Addend: 0x401000}}
	b.LinkRelocs = []Reloc{{Kind: RelocAbs64, Off: 0x403008, Addend: 4, Sym: "main"}}
	b.Meta["lang"] = "c++"
	b.Meta["exceptions"] = "1"
	return b
}

func TestMarshalRoundTrip(t *testing.T) {
	b := testBinary()
	data := b.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), data) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	b1, b2 := testBinary(), testBinary()
	// Shuffle section and meta insertion order; the output must not vary.
	b2.Sections[0], b2.Sections[2] = b2.Sections[2], b2.Sections[0]
	if !bytes.Equal(b1.Marshal(), b2.Marshal()) {
		t.Error("marshalling is not deterministic under section reordering")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a binary")); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	data := testBinary().Marshal()
	for _, cut := range []int{9, 20, len(data) / 2, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalTruncationQuick(t *testing.T) {
	data := testBinary().Marshal()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cut := r.Intn(len(data))
		_, err := Unmarshal(data[:cut])
		return err != nil // must never succeed, and never panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.icfg")
	b := testBinary()
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), b.Marshal()) {
		t.Error("file round trip mismatch")
	}
}

func TestSectionLookup(t *testing.T) {
	b := testBinary()
	if s := b.Section(SecText); s == nil || s.Addr != 0x401000 {
		t.Fatal("Section(.text) failed")
	}
	if b.Text() == nil {
		t.Fatal("Text() failed")
	}
	if s := b.SectionAt(0x402010); s == nil || s.Name != SecRodata {
		t.Error("SectionAt inside .rodata failed")
	}
	if b.SectionAt(0x500000) != nil {
		t.Error("SectionAt unmapped address returned a section")
	}
	// Unloaded sections are not found by address.
	if b.SectionAt(0) != nil {
		t.Error("SectionAt found the unloaded debug section")
	}
}

func TestReadWriteAt(t *testing.T) {
	b := testBinary()
	if err := b.WriteAt(0x402004, []byte{9, 8, 7}); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(0x402004, 3)
	if err != nil || !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Errorf("ReadAt = %v, %v", got, err)
	}
	if _, err := b.ReadAt(0x402000, 1<<16); err == nil {
		t.Error("cross-boundary read accepted")
	}
	if err := b.WriteAt(0x999999, []byte{1}); err == nil {
		t.Error("unmapped write accepted")
	}
}

func TestAddSectionOverlap(t *testing.T) {
	b := testBinary()
	if _, err := b.AddSection(&Section{Name: ".new", Addr: 0x402020, Data: make([]byte, 8), Flags: FlagAlloc}); err == nil {
		t.Error("overlapping section accepted")
	}
	if _, err := b.AddSection(&Section{Name: SecText, Addr: 0x900000, Data: []byte{0}, Flags: FlagAlloc}); err == nil {
		t.Error("duplicate section name accepted")
	}
	if _, err := b.AddSection(&Section{Name: ".ok", Addr: 0x900000, Data: make([]byte, 8), Flags: FlagAlloc}); err != nil {
		t.Errorf("valid section rejected: %v", err)
	}
	b.RemoveSection(".ok")
	if b.Section(".ok") != nil {
		t.Error("RemoveSection failed")
	}
}

func TestSymbolQueries(t *testing.T) {
	b := testBinary()
	funcs := b.FuncSymbols()
	if len(funcs) != 2 || funcs[0].Name != "main" || funcs[1].Name != "helper" {
		t.Errorf("FuncSymbols = %+v", funcs)
	}
	if s, ok := b.SymbolByName("gvar"); !ok || s.Kind != SymObject {
		t.Error("SymbolByName failed")
	}
	if _, ok := b.SymbolByName("nope"); ok {
		t.Error("SymbolByName found a ghost")
	}
	if f, ok := b.FuncAt(0x401003); !ok || f.Name != "helper" {
		t.Errorf("FuncAt = %+v, %v", f, ok)
	}
	if _, ok := b.FuncAt(0x403000); ok {
		t.Error("FuncAt matched a data symbol")
	}
}

func TestLoadedSizeExcludesDebug(t *testing.T) {
	b := testBinary()
	want := uint64(4 + 64 + 32 + 3)
	if got := b.LoadedSize(); got != want {
		t.Errorf("LoadedSize = %d, want %d", got, want)
	}
	if got := b.MaxLoadedAddr(); got != 0x404003 {
		t.Errorf("MaxLoadedAddr = %#x", got)
	}
}

func TestMetaHelpers(t *testing.T) {
	b := testBinary()
	if b.Lang() != "c++" || !b.UsesExceptions() || b.GoRuntime() {
		t.Error("meta helpers wrong")
	}
	if !b.HasReloc(0x403000) || b.HasReloc(0x403008) {
		t.Error("HasReloc wrong (link relocs must not count)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := testBinary()
	c := b.Clone()
	if !reflect.DeepEqual(b, c) {
		t.Fatal("clone differs")
	}
	c.Sections[0].Data[0] = 0xFF
	c.Meta["lang"] = "go"
	c.Symbols[0].Name = "changed"
	if b.Sections[0].Data[0] == 0xFF || b.Meta["lang"] == "go" || b.Symbols[0].Name == "changed" {
		t.Error("clone shares storage with the original")
	}
}

func TestCloneSharedCOW(t *testing.T) {
	b := testBinary()
	c := b.CloneShared()
	if &c.Sections[0].Data[0] != &b.Sections[0].Data[0] {
		t.Fatal("CloneShared copied section data eagerly")
	}
	orig := b.Sections[0].Data[0]

	// A write through the clone detaches the clone's copy only.
	c.Sections[0].MutableData()[0] = 0xFF
	if b.Sections[0].Data[0] != orig {
		t.Fatal("write through clone corrupted the source")
	}
	if c.Sections[0].Data[0] != 0xFF {
		t.Fatal("write through clone lost")
	}

	// The source side is COW too: a fresh clone keeps the bytes it saw
	// even when the SOURCE is written afterwards.
	c2 := b.CloneShared()
	if err := b.WriteAt(b.Sections[0].Addr, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if c2.Sections[0].Data[0] != orig {
		t.Fatal("write through source corrupted an existing clone")
	}
	if b.Sections[0].Data[0] != 0xAA {
		t.Fatal("write through source lost")
	}

	// Metadata is deep from the start.
	c.Meta["lang"] = "go"
	c.Symbols[0].Name = "changed"
	if b.Meta["lang"] == "go" || b.Symbols[0].Name == "changed" {
		t.Error("CloneShared shares metadata storage")
	}
}

// TestCloneSharedConcurrent pins the concurrency contract the rewrite
// service relies on: many goroutines may CloneShared one read-only
// binary at once (each marking the shared source sections), each
// writing through its own clone only. Run under -race via make race.
func TestCloneSharedConcurrent(t *testing.T) {
	b := testBinary()
	orig := b.Sections[0].Data[0]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := b.CloneShared()
			c.Sections[0].MutableData()[0] = byte(i)
		}(i)
	}
	wg.Wait()
	if b.Sections[0].Data[0] != orig {
		t.Fatal("concurrent clone writes corrupted the source")
	}
}

func TestValidate(t *testing.T) {
	b := testBinary()
	if err := b.Validate(); err != nil {
		t.Fatalf("valid binary rejected: %v", err)
	}
	noText := b.Clone()
	noText.RemoveSection(SecText)
	if err := noText.Validate(); err == nil {
		t.Error("missing .text accepted")
	}
	badEntry := b.Clone()
	badEntry.Entry = 0xdead0000
	if err := badEntry.Validate(); err == nil {
		t.Error("unmapped entry accepted")
	}
	badReloc := b.Clone()
	badReloc.Relocs = append(badReloc.Relocs, Reloc{Off: 0xdead0000})
	if err := badReloc.Validate(); err == nil {
		t.Error("unmapped relocation accepted")
	}
	overlap := b.Clone()
	overlap.Sections[1].Addr = 0x401002 // collide with .text
	if err := overlap.Validate(); err == nil {
		t.Error("overlapping sections accepted")
	}
}

func TestAddrMapRoundTrip(t *testing.T) {
	pairs := []AddrPair{{From: 30, To: 3}, {From: 10, To: 1}, {From: 20, To: 2}}
	enc := EncodeAddrMap(pairs)
	dec, err := DecodeAddrMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || dec[0].From != 10 || dec[2].To != 3 {
		t.Errorf("decoded = %+v", dec)
	}
	m := NewAddrMap(dec)
	for _, p := range pairs {
		if got, ok := m.Lookup(p.From); !ok || got != p.To {
			t.Errorf("Lookup(%d) = %d, %v", p.From, got, ok)
		}
	}
	if _, ok := m.Lookup(15); ok {
		t.Error("Lookup found a missing key")
	}
	if m.Len() != 3 {
		t.Error("Len wrong")
	}
}

func TestAddrMapQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		pairs := make([]AddrPair, len(keys))
		want := map[uint64]uint64{}
		for i, k := range keys {
			pairs[i] = AddrPair{From: k, To: k ^ 0xABCD}
			want[k] = k ^ 0xABCD
		}
		dec, err := DecodeAddrMap(EncodeAddrMap(pairs))
		if err != nil {
			return false
		}
		m := NewAddrMap(dec)
		for k, v := range want {
			if got, ok := m.Lookup(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeAddrMapRejectsShort(t *testing.T) {
	if _, err := DecodeAddrMap([]byte{1, 2}); err == nil {
		t.Error("short map accepted")
	}
	enc := EncodeAddrMap([]AddrPair{{1, 2}})
	if _, err := DecodeAddrMap(enc[:len(enc)-4]); err == nil {
		t.Error("truncated map accepted")
	}
}
