package bin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"

	"icfgpatch/internal/arch"
)

// The serialised format is deterministic: an 8-byte magic, a version, the
// header fields, then length-prefixed tables. Sections are written in
// address order so that byte-identical binaries compare equal.

var magic = [8]byte{'I', 'C', 'F', 'G', 'B', 'I', 'N', '1'}

// ErrBadMagic is returned when loading a file that is not a serialised
// binary.
var ErrBadMagic = errors.New("bin: bad magic (not an ICFGBIN1 file)")

type writer struct{ buf bytes.Buffer }

func (w *writer) u8(v uint8) { w.buf.WriteByte(v) }
func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) str(s string) { w.u64(uint64(len(s))); w.buf.WriteString(s) }
func (w *writer) bytes(b []byte) {
	w.u64(uint64(len(b)))
	w.buf.Write(b)
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("bin: truncated input reading %s at offset %d", what, r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// count reads a table length and rejects any count that could not fit
// in the remaining input given a minimum entry size. This bounds both
// allocation and loop work by the input length, so a hostile 2^60-entry
// header fails cleanly instead of panicking on a negative make cap or
// grinding through the loop.
func (r *reader) count(what string, minEntrySize int) uint64 {
	n := r.u64()
	if r.err != nil {
		return 0
	}
	if rem := len(r.b) - r.off; n > uint64(rem)/uint64(minEntrySize) {
		if r.err == nil {
			r.err = fmt.Errorf("bin: %s table declares %d entries but only %d bytes remain at offset %d", what, n, rem, r.off)
		}
		return 0
	}
	return n
}

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil || r.off+int(n) > len(r.b) || n > uint64(len(r.b)) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *reader) bytesField() []byte {
	n := r.u64()
	if r.err != nil || r.off+int(n) > len(r.b) || n > uint64(len(r.b)) {
		r.fail("bytes")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += int(n)
	return out
}

func writeSymbols(w *writer, syms []Symbol) {
	w.u64(uint64(len(syms)))
	for _, s := range syms {
		w.str(s.Name)
		w.u64(s.Addr)
		w.u64(s.Size)
		w.u8(uint8(s.Kind))
		if s.Global {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
}

// symbolWireSize is the minimum serialised Symbol: name length prefix,
// addr, size, kind, global flag.
const symbolWireSize = 8 + 8 + 8 + 1 + 1

func readSymbols(r *reader) []Symbol {
	n := r.count("symbol", symbolWireSize)
	if r.err != nil {
		return nil
	}
	syms := make([]Symbol, 0, n)
	for k := uint64(0); k < n && r.err == nil; k++ {
		var s Symbol
		s.Name = r.str()
		s.Addr = r.u64()
		s.Size = r.u64()
		s.Kind = SymKind(r.u8())
		s.Global = r.u8() != 0
		syms = append(syms, s)
	}
	return syms
}

func writeRelocs(w *writer, rels []Reloc) {
	w.u64(uint64(len(rels)))
	for _, rl := range rels {
		w.u8(uint8(rl.Kind))
		w.u64(rl.Off)
		w.i64(rl.Addend)
		w.str(rl.Sym)
	}
}

// relocWireSize is the minimum serialised Reloc: kind, offset, addend,
// symbol length prefix.
const relocWireSize = 1 + 8 + 8 + 8

func readRelocs(r *reader) []Reloc {
	n := r.count("reloc", relocWireSize)
	if r.err != nil {
		return nil
	}
	rels := make([]Reloc, 0, n)
	for k := uint64(0); k < n && r.err == nil; k++ {
		var rl Reloc
		rl.Kind = RelocKind(r.u8())
		rl.Off = r.u64()
		rl.Addend = r.i64()
		rl.Sym = r.str()
		rels = append(rels, rl)
	}
	return rels
}

// Marshal serialises the binary.
func (b *Binary) Marshal() []byte {
	var w writer
	w.buf.Write(magic[:])
	w.u8(uint8(b.Arch))
	flags := uint8(0)
	if b.PIE {
		flags |= 1
	}
	if b.SharedLib {
		flags |= 2
	}
	w.u8(flags)
	w.u64(b.Entry)
	w.u64(b.TOCValue)

	secs := append([]*Section(nil), b.Sections...)
	sort.Slice(secs, func(i, j int) bool {
		if secs[i].Addr != secs[j].Addr {
			return secs[i].Addr < secs[j].Addr
		}
		return secs[i].Name < secs[j].Name
	})
	w.u64(uint64(len(secs)))
	for _, s := range secs {
		w.str(s.Name)
		w.u64(s.Addr)
		w.u8(uint8(s.Flags))
		w.u64(s.Align)
		w.bytes(s.Data)
	}

	writeSymbols(&w, b.Symbols)
	writeSymbols(&w, b.DynSymbols)
	writeRelocs(&w, b.Relocs)
	writeRelocs(&w, b.LinkRelocs)

	keys := make([]string, 0, len(b.Meta))
	for k := range b.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.u64(uint64(len(keys)))
	for _, k := range keys {
		w.str(k)
		w.str(b.Meta[k])
	}
	return w.buf.Bytes()
}

// Unmarshal parses a serialised binary.
func Unmarshal(data []byte) (*Binary, error) {
	if len(data) < len(magic) || !bytes.Equal(data[:len(magic)], magic[:]) {
		return nil, ErrBadMagic
	}
	r := &reader{b: data, off: len(magic)}
	b := New(arch.Arch(r.u8()))
	flags := r.u8()
	b.PIE = flags&1 != 0
	b.SharedLib = flags&2 != 0
	b.Entry = r.u64()
	b.TOCValue = r.u64()

	// Minimum serialised section: name prefix, addr, flags, align, data
	// prefix.
	nsec := r.count("section", 8+8+1+8+8)
	for k := uint64(0); k < nsec && r.err == nil; k++ {
		s := &Section{}
		s.Name = r.str()
		s.Addr = r.u64()
		s.Flags = SectionFlags(r.u8())
		s.Align = r.u64()
		s.Data = r.bytesField()
		b.Sections = append(b.Sections, s)
	}

	b.Symbols = readSymbols(r)
	b.DynSymbols = readSymbols(r)
	b.Relocs = readRelocs(r)
	b.LinkRelocs = readRelocs(r)

	nmeta := r.count("meta", 8+8)
	for k := uint64(0); k < nmeta && r.err == nil; k++ {
		key := r.str()
		b.Meta[key] = r.str()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("bin: %d trailing bytes after binary at offset %d", len(data)-r.off, r.off)
	}
	if !b.Arch.Valid() {
		return nil, fmt.Errorf("bin: unknown architecture %d", b.Arch)
	}
	return b, nil
}

// WriteFile serialises the binary to path.
func (b *Binary) WriteFile(path string) error {
	return os.WriteFile(path, b.Marshal(), 0o644)
}

// ReadFile loads a serialised binary from path.
func ReadFile(path string) (*Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
