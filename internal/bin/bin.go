// Package bin defines the binary container used throughout the toolkit.
// It is modelled on ELF: a binary is a set of sections with load
// addresses, a symbol table, a dynamic symbol table with its string table,
// runtime relocations (.rela.dyn), optional link-time relocations (kept
// only when the program was linked with the equivalent of -Wl,-q), unwind
// tables carried as an encoded .eh_frame-like section, and a note section
// with language metadata. Binaries serialise to a deterministic byte
// format so they can be written to disk, inspected with cmd/icfg-objdump,
// and reloaded.
package bin

import (
	"fmt"
	"sort"
	"sync/atomic"

	"icfgpatch/internal/arch"
)

// Well-known section names. The rewriter consumes the originals and emits
// the .instr/.ra_map/.tramp_map/.rodata.icfg additions shown in Figure 1
// of the paper.
const (
	SecText     = ".text"
	SecRodata   = ".rodata"
	SecData     = ".data"
	SecBSS      = ".bss"
	SecDynSym   = ".dynsym"
	SecDynStr   = ".dynstr"
	SecRelaDyn  = ".rela.dyn"
	SecEhFrame  = ".eh_frame"
	SecGoPCLN   = ".gopclntab"
	SecNote     = ".note.lang"
	SecInterp   = ".interp"
	SecInstr    = ".instr"       // relocated code + instrumentation
	SecRAMap    = ".ra_map"      // relocated→original return address map
	SecTrampMap = ".tramp_map"   // trap address → relocated target map
	SecJTClone  = ".rodata.icfg" // cloned jump tables
	// OldPrefix renames consumed dynamic-linking sections so the loader
	// does not confuse them with their relocated replacements; their
	// storage becomes trampoline scratch space (Section 3 of the paper).
	OldPrefix = ".old"
)

// SectionFlags describe how a section is mapped.
type SectionFlags uint8

// Section flags.
const (
	// FlagAlloc marks sections loaded into memory at runtime; only these
	// count toward the size(1)-style size measurements.
	FlagAlloc SectionFlags = 1 << iota
	// FlagExec marks executable sections.
	FlagExec
	// FlagWrite marks writable sections.
	FlagWrite
	// FlagNoBits marks sections that occupy memory but no file bytes
	// (.bss); Data holds only the length.
	FlagNoBits
)

// Section is a named, contiguous address range with contents.
type Section struct {
	Name  string
	Addr  uint64
	Data  []byte
	Flags SectionFlags
	Align uint64

	// shared (accessed atomically; non-zero = true) marks Data as
	// aliased with another binary's section (see CloneShared): the
	// bytes are read-only until own() detaches a private copy. WriteAt
	// honours the flag; code that writes Data directly must go through
	// MutableData first. Atomic because concurrent rewrites of one
	// read-only binary all mark its sections shared — racing stores of
	// the same value, but stores nonetheless.
	shared uint32
}

// own detaches a private copy of a shared section's contents; a no-op
// for sections that already own their bytes.
func (s *Section) own() {
	if atomic.LoadUint32(&s.shared) != 0 {
		s.Data = append([]byte(nil), s.Data...)
		atomic.StoreUint32(&s.shared, 0)
	}
}

// MutableData returns the section's contents, detaching them from any
// sharing binary first — the required accessor for in-place writes that
// bypass Binary.WriteAt.
func (s *Section) MutableData() []byte {
	s.own()
	return s.Data
}

// Size returns the section's size in bytes.
func (s *Section) Size() uint64 { return uint64(len(s.Data)) }

// End returns the first address past the section.
func (s *Section) End() uint64 { return s.Addr + s.Size() }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint64) bool { return addr >= s.Addr && addr < s.End() }

// Loaded reports whether the section is mapped at runtime.
func (s *Section) Loaded() bool { return s.Flags&FlagAlloc != 0 }

// NewSharedSection returns a new section at addr aliasing src's current
// contents copy-on-write: both sections are marked shared, so whichever
// is written first (through WriteAt or MutableData) detaches its own
// copy and the other keeps the bytes as of this call. The rewriter uses
// this for zero-copy section moves.
func NewSharedSection(name string, addr uint64, src *Section) *Section {
	atomic.StoreUint32(&src.shared, 1)
	return &Section{Name: name, Addr: addr, Data: src.Data, Flags: src.Flags, Align: src.Align, shared: 1}
}

// SymKind distinguishes symbol types.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymObject
)

// Symbol is one symbol table entry.
type Symbol struct {
	Name   string
	Addr   uint64
	Size   uint64
	Kind   SymKind
	Global bool
}

// RelocKind distinguishes relocation semantics.
type RelocKind uint8

// Relocation kinds.
const (
	// RelocRelative is the R_*_RELATIVE runtime relocation: at load time
	// the loader stores loadBase+Addend into the 8-byte slot at Off.
	// PIEs carry one for every absolute pointer in data, including
	// function pointers — the property Egalito and RetroWrite depend on.
	RelocRelative RelocKind = iota
	// RelocAbs64 is a link-time relocation recording that the 8-byte slot
	// at Off holds Sym+Addend. Linkers discard these unless asked to keep
	// them (-Wl,-q); BOLT requires them for function reordering.
	RelocAbs64
)

// Reloc is one relocation entry. Off is the absolute address of the slot
// being relocated.
type Reloc struct {
	Kind   RelocKind
	Off    uint64
	Addend int64
	Sym    string // symbol name for link-time relocations; empty otherwise
}

// Binary is a complete executable or shared library.
type Binary struct {
	Arch arch.Arch
	// PIE marks position independent binaries: all code is PC-relative
	// (or TOC-relative on PPC) and absolute data pointers carry
	// RelocRelative entries applied at load time.
	PIE bool
	// SharedLib marks shared objects (no entry point requirement).
	SharedLib bool
	Entry     uint64
	Sections  []*Section
	Symbols   []Symbol
	// DynSymbols are the dynamic symbols whose table lives in .dynsym.
	DynSymbols []Symbol
	// Relocs are runtime relocations (.rela.dyn contents).
	Relocs []Reloc
	// LinkRelocs are link-time relocations, present only when the
	// binary was linked with the -Wl,-q equivalent.
	LinkRelocs []Reloc
	// Meta carries .note.lang key/value metadata: "lang" (c, c++, go,
	// fortran, rust, mixed), "exceptions" ("1" when the language runtime
	// unwinds the stack), "go-runtime" ("1" for Go-like binaries whose
	// runtime walks stacks for GC and stack growth).
	Meta map[string]string
	// TOCValue is the runtime value of the TOC register r2 on PPC
	// (position independent code derives it from its own address; we
	// record the link-time value and the loader rebases it).
	TOCValue uint64
}

// New returns an empty binary for the architecture.
func New(a arch.Arch) *Binary {
	return &Binary{Arch: a, Meta: map[string]string{}}
}

// Section returns the section with the given name, or nil.
func (b *Binary) Section(name string) *Section {
	for _, s := range b.Sections {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Text returns the .text section, or nil.
func (b *Binary) Text() *Section { return b.Section(SecText) }

// SectionAt returns the loaded section containing addr, or nil.
func (b *Binary) SectionAt(addr uint64) *Section {
	for _, s := range b.Sections {
		if s.Loaded() && s.Contains(addr) {
			return s
		}
	}
	return nil
}

// AddSection appends a section and returns it. It fails if the name is
// already present or the address range overlaps an existing loaded
// section.
func (b *Binary) AddSection(s *Section) (*Section, error) {
	if b.Section(s.Name) != nil {
		return nil, fmt.Errorf("bin: duplicate section %s", s.Name)
	}
	if s.Loaded() {
		for _, o := range b.Sections {
			if o.Loaded() && s.Addr < o.End() && o.Addr < s.Addr+s.Size() {
				return nil, fmt.Errorf("bin: section %s [%#x,%#x) overlaps %s [%#x,%#x)",
					s.Name, s.Addr, s.Addr+s.Size(), o.Name, o.Addr, o.End())
			}
		}
	}
	b.Sections = append(b.Sections, s)
	return s, nil
}

// RemoveSection deletes the named section if present.
func (b *Binary) RemoveSection(name string) {
	for k, s := range b.Sections {
		if s.Name == name {
			b.Sections = append(b.Sections[:k], b.Sections[k+1:]...)
			return
		}
	}
}

// ReadAt copies length bytes starting at addr from whichever loaded
// section holds them. It fails when the range is unmapped or crosses a
// section boundary.
func (b *Binary) ReadAt(addr, length uint64) ([]byte, error) {
	s := b.SectionAt(addr)
	if s == nil {
		return nil, fmt.Errorf("bin: address %#x is not mapped", addr)
	}
	if addr+length > s.End() {
		return nil, fmt.Errorf("bin: read [%#x,%#x) crosses the end of %s", addr, addr+length, s.Name)
	}
	return s.Data[addr-s.Addr : addr-s.Addr+length], nil
}

// WriteAt overwrites bytes at addr inside a loaded section.
func (b *Binary) WriteAt(addr uint64, data []byte) error {
	s := b.SectionAt(addr)
	if s == nil {
		return fmt.Errorf("bin: address %#x is not mapped", addr)
	}
	if addr+uint64(len(data)) > s.End() {
		return fmt.Errorf("bin: write [%#x,%#x) crosses the end of %s", addr, addr+uint64(len(data)), s.Name)
	}
	s.own() // copy-on-write for sections shared via CloneShared
	copy(s.Data[addr-s.Addr:], data)
	return nil
}

// FuncSymbols returns the function symbols sorted by address.
func (b *Binary) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range b.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SymbolByName returns the first symbol with the given name.
func (b *Binary) SymbolByName(name string) (Symbol, bool) {
	for _, s := range b.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// FuncAt returns the function symbol covering addr.
func (b *Binary) FuncAt(addr uint64) (Symbol, bool) {
	for _, s := range b.Symbols {
		if s.Kind == SymFunc && addr >= s.Addr && addr < s.Addr+s.Size {
			return s, true
		}
	}
	return Symbol{}, false
}

// LoadedSize sums the sizes of all loaded sections: the size(1) model
// used for the paper's "size increase" columns (debug and note sections
// do not count).
func (b *Binary) LoadedSize() uint64 {
	var n uint64
	for _, s := range b.Sections {
		if s.Loaded() {
			n += s.Size()
		}
	}
	return n
}

// MaxLoadedAddr returns the highest end address of any loaded section,
// used when placing new sections.
func (b *Binary) MaxLoadedAddr() uint64 {
	var hi uint64
	for _, s := range b.Sections {
		if s.Loaded() && s.End() > hi {
			hi = s.End()
		}
	}
	return hi
}

// HasReloc reports whether a runtime relocation targets the slot at off.
func (b *Binary) HasReloc(off uint64) bool {
	for _, r := range b.Relocs {
		if r.Off == off {
			return true
		}
	}
	return false
}

// Lang returns the source language recorded in the note metadata.
func (b *Binary) Lang() string { return b.Meta["lang"] }

// UsesExceptions reports whether the binary's language runtime performs
// exception-driven stack unwinding (C++ exceptions).
func (b *Binary) UsesExceptions() bool { return b.Meta["exceptions"] == "1" }

// GoRuntime reports whether the binary carries a Go-style runtime that
// natively unwinds the stack (garbage collection, stack growth).
func (b *Binary) GoRuntime() bool { return b.Meta["go-runtime"] == "1" }

// CFI reports whether the binary claims to have been built with
// hardware-CFI landing pads (arch.Mark at every indirect-transfer
// target). The claim is advisory: the evidence layer verifies it
// against the actual marker sites before trusting it.
func (b *Binary) CFI() bool { return b.Meta["cfi"] == "1" }

// Clone returns a deep copy of the binary; the rewriter mutates the clone
// so callers keep the original for differential testing.
func (b *Binary) Clone() *Binary {
	nb := &Binary{
		Arch:      b.Arch,
		PIE:       b.PIE,
		SharedLib: b.SharedLib,
		Entry:     b.Entry,
		TOCValue:  b.TOCValue,
		Meta:      map[string]string{},
	}
	for k, v := range b.Meta {
		nb.Meta[k] = v
	}
	for _, s := range b.Sections {
		d := make([]byte, len(s.Data))
		copy(d, s.Data)
		nb.Sections = append(nb.Sections, &Section{Name: s.Name, Addr: s.Addr, Data: d, Flags: s.Flags, Align: s.Align})
	}
	nb.Symbols = append([]Symbol(nil), b.Symbols...)
	nb.DynSymbols = append([]Symbol(nil), b.DynSymbols...)
	nb.Relocs = append([]Reloc(nil), b.Relocs...)
	nb.LinkRelocs = append([]Reloc(nil), b.LinkRelocs...)
	return nb
}

// CloneShared returns a copy of the binary whose sections share the
// original's contents copy-on-write: metadata (headers, symbols,
// relocations) is copied eagerly, but each section's Data is aliased
// read-only and detached only when first written through WriteAt or
// MutableData. The rewriter's zero-copy section assembly rests on this:
// a multi-megabyte input whose rewrite touches only .text and a few
// data slots clones only those sections' bytes. Callers that mutate
// Data directly (not via WriteAt/MutableData) must use Clone instead.
func (b *Binary) CloneShared() *Binary {
	nb := &Binary{
		Arch:      b.Arch,
		PIE:       b.PIE,
		SharedLib: b.SharedLib,
		Entry:     b.Entry,
		TOCValue:  b.TOCValue,
		Meta:      make(map[string]string, len(b.Meta)),
	}
	for k, v := range b.Meta {
		nb.Meta[k] = v
	}
	nb.Sections = make([]*Section, 0, len(b.Sections))
	for _, s := range b.Sections {
		// Both sides are marked shared: whichever binary writes first —
		// through WriteAt or MutableData — detaches its own copy, so the
		// other keeps the bytes it saw at clone time.
		atomic.StoreUint32(&s.shared, 1)
		nb.Sections = append(nb.Sections, &Section{
			Name: s.Name, Addr: s.Addr, Data: s.Data, Flags: s.Flags, Align: s.Align,
			shared: 1,
		})
	}
	nb.Symbols = append([]Symbol(nil), b.Symbols...)
	nb.DynSymbols = append([]Symbol(nil), b.DynSymbols...)
	nb.Relocs = append([]Reloc(nil), b.Relocs...)
	nb.LinkRelocs = append([]Reloc(nil), b.LinkRelocs...)
	return nb
}

// Validate performs structural checks: a text section exists, loaded
// sections do not overlap, symbols point into sections, and relocation
// slots are mapped. The rewriter validates its output before returning it.
func (b *Binary) Validate() error {
	if !b.Arch.Valid() {
		return fmt.Errorf("bin: invalid architecture %d", b.Arch)
	}
	if b.Text() == nil {
		return fmt.Errorf("bin: no %s section", SecText)
	}
	sorted := append([]*Section(nil), b.Sections...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	var prev *Section
	for _, s := range sorted {
		if !s.Loaded() || s.Size() == 0 {
			continue
		}
		if prev != nil && s.Addr < prev.End() {
			return fmt.Errorf("bin: sections %s and %s overlap", prev.Name, s.Name)
		}
		prev = s
	}
	for _, sym := range b.Symbols {
		if sym.Kind == SymFunc && sym.Size > 0 && b.SectionAt(sym.Addr) == nil {
			return fmt.Errorf("bin: function symbol %s at unmapped address %#x", sym.Name, sym.Addr)
		}
	}
	for _, r := range b.Relocs {
		if b.SectionAt(r.Off) == nil {
			return fmt.Errorf("bin: relocation slot at unmapped address %#x", r.Off)
		}
	}
	if !b.SharedLib && b.SectionAt(b.Entry) == nil {
		return fmt.Errorf("bin: entry point %#x is not mapped", b.Entry)
	}
	return nil
}
