package bin

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"

	"icfgpatch/internal/arch"
)

// funcHashVersion tags the hash input layout; bump it whenever the
// fields below change so stale identities can never validate.
const funcHashVersion = "icfg-func-v1"

// FuncContentHash returns the content address of one function: a hex
// sha256 over everything a per-function analysis may read from the
// function itself. Two binaries in which a function hashes equal are
// guaranteed to agree on the function's bytes, placement, and the
// relocations landing inside it — the identity the delta engine keys
// its function-granular analysis units by.
//
// The hashed byte range extends MaxLen-1 bytes past the symbol end
// (clamped to the section): the decoder's lookahead window for the last
// instruction may read past a truncated function, so those bytes are
// part of what analysis can observe.
func (b *Binary) FuncContentHash(sym Symbol) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		io.WriteString(h, s)
		h.Write([]byte{0})
	}
	str(funcHashVersion)
	str(sym.Name)
	var flags uint64
	if b.PIE {
		flags |= 1
	}
	if b.SharedLib {
		flags |= 2
	}
	put(uint64(b.Arch)<<8 | flags)
	put(sym.Addr)
	put(sym.Size)

	if s := b.SectionAt(sym.Addr); s != nil {
		end := sym.Addr + sym.Size + uint64(arch.ForArch(b.Arch).MaxLen()-1)
		if end > s.End() {
			end = s.End()
		}
		if sym.Addr < end {
			h.Write(s.Data[sym.Addr-s.Addr : end-s.Addr])
		}
	}

	inRange := func(off uint64) bool { return off >= sym.Addr && off < sym.Addr+sym.Size }
	hashRelocs := func(tag string, relocs []Reloc) {
		str(tag)
		for _, r := range relocs {
			if !inRange(r.Off) {
				continue
			}
			put(uint64(r.Kind))
			put(r.Off)
			put(uint64(r.Addend))
			str(r.Sym)
		}
	}
	hashRelocs("relocs", b.Relocs)
	hashRelocs("link", b.LinkRelocs)
	return hex.EncodeToString(h.Sum(nil))
}
