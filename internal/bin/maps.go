package bin

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// AddrPair maps one address to another. Sorted slices of pairs are the
// payload of both the .ra_map section (relocated return address →
// original call site, Section 6 of the paper) and the .tramp_map section
// (trap trampoline address → relocated target, consumed by the runtime
// library's signal handler).
type AddrPair struct {
	From uint64
	To   uint64
}

// EncodeAddrMap serialises pairs sorted by From into section payload
// bytes: an 8-byte count followed by 16-byte entries. Runtime lookups
// binary-search the encoded form directly, as the paper's preloaded
// runtime library does with the mapping it extracts from the rewritten
// binary.
func EncodeAddrMap(pairs []AddrPair) []byte {
	sorted := append([]AddrPair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	out := make([]byte, 8+16*len(sorted))
	binary.LittleEndian.PutUint64(out, uint64(len(sorted)))
	for k, p := range sorted {
		binary.LittleEndian.PutUint64(out[8+16*k:], p.From)
		binary.LittleEndian.PutUint64(out[16+16*k:], p.To)
	}
	return out
}

// DecodeAddrMap parses a section payload produced by EncodeAddrMap.
func DecodeAddrMap(data []byte) ([]AddrPair, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("bin: address map too short (%d bytes)", len(data))
	}
	// Bound n by the bytes actually present before doing arithmetic on
	// it: 8+16*n overflows for adversarial counts.
	n := binary.LittleEndian.Uint64(data)
	if n > uint64(len(data)-8)/16 {
		return nil, fmt.Errorf("bin: address map declares %d entries but has %d bytes", n, len(data))
	}
	pairs := make([]AddrPair, n)
	for k := range pairs {
		pairs[k].From = binary.LittleEndian.Uint64(data[8+16*k:])
		pairs[k].To = binary.LittleEndian.Uint64(data[16+16*k:])
	}
	return pairs, nil
}

// AddrMap is a binary-searchable address mapping loaded from an encoded
// section.
type AddrMap struct {
	pairs []AddrPair // sorted by From
}

// NewAddrMap builds a map from decoded pairs (sorting defensively).
func NewAddrMap(pairs []AddrPair) *AddrMap {
	sorted := append([]AddrPair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	return &AddrMap{pairs: sorted}
}

// Lookup returns the mapping of addr, or (0, false) when absent.
func (m *AddrMap) Lookup(addr uint64) (uint64, bool) {
	i := sort.Search(len(m.pairs), func(i int) bool { return m.pairs[i].From >= addr })
	if i < len(m.pairs) && m.pairs[i].From == addr {
		return m.pairs[i].To, true
	}
	return 0, false
}

// Len returns the number of entries.
func (m *AddrMap) Len() int { return len(m.pairs) }

// Pairs returns the sorted entries (shared; callers must not mutate).
func (m *AddrMap) Pairs() []AddrPair { return m.pairs }
