package asm

import (
	"fmt"

	"icfgpatch/internal/arch"
)

// Builder accumulates a whole program before linking.
type Builder struct {
	arch     arch.Arch
	pie      bool
	shared   bool
	cfi      bool
	textBase uint64
	meta     map[string]string
	entry    string

	funcs   []*FuncBuilder
	funcIdx map[string]int
	globals []*Global
	globIdx map[string]int
	rodata  []rodataItem
	exports map[string]bool
	// keepLinkRelocs emulates linking with -Wl,-q: link-time relocations
	// for function addresses in data are retained (BOLT's precondition).
	keepLinkRelocs bool
}

// New returns a Builder for the architecture. PIE binaries use
// PC-relative global access and carry runtime relocations for absolute
// pointers; position dependent binaries bake absolute addresses in.
func New(a arch.Arch, pie bool) *Builder {
	base := uint64(0x401000)
	if pie {
		base = 0x1000
	}
	return &Builder{
		arch:     a,
		pie:      pie,
		textBase: base,
		meta:     map[string]string{"lang": "c"},
		entry:    "main",
		funcIdx:  map[string]int{},
		globIdx:  map[string]int{},
		exports:  map[string]bool{},
	}
}

// Arch returns the target architecture.
func (b *Builder) Arch() arch.Arch { return b.arch }

// PIE reports whether the output is position independent.
func (b *Builder) PIE() bool { return b.pie }

// SetMeta records a .note.lang key (e.g. "lang", "exceptions",
// "go-runtime").
func (b *Builder) SetMeta(key, value string) { b.meta[key] = value }

// SetEntry selects the entry function (default "main").
func (b *Builder) SetEntry(name string) { b.entry = name }

// SetSharedLib marks the output as a shared library (no entry function
// required; implies PIE semantics for addressing decisions).
func (b *Builder) SetSharedLib() { b.shared = true }

// KeepLinkRelocs retains link-time relocations in the output, the
// equivalent of linking with -Wl,-q that BOLT requires.
func (b *Builder) KeepLinkRelocs() { b.keepLinkRelocs = true }

// SetTextBase overrides the .text load address.
func (b *Builder) SetTextBase(addr uint64) { b.textBase = addr }

// SetCFI marks the program as compiled with hardware-CFI landing pads:
// the linker prepends an arch.Mark to every function prologue (the
// compiler's -fcf-protection behaviour), and the "cfi=1" note is
// recorded so analyses know markers are supposed to be complete.
// Builders must additionally call FuncBuilder.Mark at every jump-table
// case label and any other computed-branch target they emit.
func (b *Builder) SetCFI() {
	b.cfi = true
	b.meta["cfi"] = "1"
}

// CFI reports whether SetCFI was called.
func (b *Builder) CFI() bool { return b.cfi }

// Func starts a new function. Functions are laid out in declaration
// order.
func (b *Builder) Func(name string) *FuncBuilder {
	if _, dup := b.funcIdx[name]; dup {
		panic(fmt.Sprintf("asm: duplicate function %q", name))
	}
	f := &FuncBuilder{b: b, name: name, frame: 0}
	b.funcIdx[name] = len(b.funcs)
	b.funcs = append(b.funcs, f)
	return f
}

// Export adds the named function to the dynamic symbol table.
func (b *Builder) Export(name string) { b.exports[name] = true }

// Global defines a zero-initialised data object of the given size.
func (b *Builder) Global(name string, size int) {
	b.addGlobal(&Global{Name: name, Init: make([]byte, size)})
}

// GlobalInit defines a data object with initial contents.
func (b *Builder) GlobalInit(name string, data []byte) {
	b.addGlobal(&Global{Name: name, Init: append([]byte(nil), data...)})
}

// FuncPtrGlobal defines an 8-byte data cell holding the address of
// function target plus addend. In PIE the cell carries a runtime
// RelocRelative entry, which is what makes function pointers visible to
// relocation-based analyses; addend != 0 reproduces the Go runtime's
// "function entry plus one" pattern from Listing 1 of the paper.
func (b *Builder) FuncPtrGlobal(name, target string, addend int64) {
	b.addGlobal(&Global{Name: name, Init: make([]byte, 8), PtrTo: target, Addend: addend})
}

func (b *Builder) addGlobal(g *Global) {
	if _, dup := b.globIdx[g.Name]; dup {
		panic(fmt.Sprintf("asm: duplicate global %q", g.Name))
	}
	b.globIdx[g.Name] = len(b.globals)
	b.globals = append(b.globals, g)
}

// RodataBytes places a read-only blob in .rodata, in insertion order
// relative to jump tables — generators use it to separate tables with
// constant data (Assumption 2 of the paper).
func (b *Builder) RodataBytes(name string, data []byte) {
	b.rodata = append(b.rodata, rodataItem{name: name, data: append([]byte(nil), data...), align: 8})
}

// FuncBuilder assembles one function. The zero frame is grown with
// SetFrame; prologue and epilogue are synthesised at link time, and the
// function's unwind recipe (FDE) is derived from them.
type FuncBuilder struct {
	b       *Builder
	name    string
	frame   int64
	hasCall bool
	slots   []slot
	nlabels int
	binds   map[Label]int // label -> slot index
	tables  []*jumpTable
	tries   []tryRegion
	// labelAddr is filled during layout.
	labelAddr map[Label]uint64
	start     uint64
	end       uint64
}

// Name returns the function's name.
func (f *FuncBuilder) Name() string { return f.name }

// SetFrame sets the local-variable frame size in bytes (0..1024,
// 8-aligned). Non-leaf functions on the fixed-width ISAs get at least 16
// bytes so the prologue can save the link register.
func (f *FuncBuilder) SetFrame(n int64) {
	if n < 0 || n > 1024 || n%8 != 0 {
		panic(fmt.Sprintf("asm: bad frame size %d", n))
	}
	f.frame = n
}

// NewLabel allocates an unbound label.
func (f *FuncBuilder) NewLabel() Label {
	f.nlabels++
	return Label(f.nlabels - 1)
}

// Bind attaches the label to the current position.
func (f *FuncBuilder) Bind(l Label) {
	if f.binds == nil {
		f.binds = map[Label]int{}
	}
	if _, dup := f.binds[l]; dup {
		panic(fmt.Sprintf("asm: label %d bound twice in %s", l, f.name))
	}
	f.binds[l] = len(f.slots)
}

// Here allocates and binds a label at the current position.
func (f *FuncBuilder) Here() Label {
	l := f.NewLabel()
	f.Bind(l)
	return l
}

// I emits a raw instruction.
func (f *FuncBuilder) I(ins arch.Instr) {
	if ins.IsCall() {
		f.hasCall = true
	}
	f.slots = append(f.slots, slot{ins: ins, tableIx: -1})
}

func (f *FuncBuilder) iref(ins arch.Instr, r ref) {
	if ins.IsCall() {
		f.hasCall = true
	}
	rc := r
	f.slots = append(f.slots, slot{ins: ins, ref: &rc, tableIx: -1})
}

// Nop emits a no-op.
func (f *FuncBuilder) Nop() { f.I(arch.Instr{Kind: arch.Nop}) }

// Mark emits a landing-pad marker (arch.Mark) at the current position.
// CFI builders place one at every indirect-branch target that is not a
// function entry (entries are marked automatically by SetCFI).
func (f *FuncBuilder) Mark() { f.I(arch.Instr{Kind: arch.Mark}) }

// Li loads the constant v into rd, synthesising movz/movk sequences on
// the fixed-width ISAs.
func (f *FuncBuilder) Li(rd arch.Reg, v int64) {
	if f.b.arch == arch.X64 {
		f.I(arch.Instr{Kind: arch.MovImm, Rd: rd, Imm: v})
		return
	}
	u := uint64(v)
	f.I(arch.Instr{Kind: arch.MovImm16, Rd: rd, Imm: int64(u & 0xFFFF)})
	for sh := uint8(1); sh < 4; sh++ {
		chunk := (u >> (16 * sh)) & 0xFFFF
		if chunk != 0 {
			f.I(arch.Instr{Kind: arch.MovK16, Rd: rd, Imm: int64(chunk), Shift: sh})
		}
	}
}

// Mov copies rs into rd.
func (f *FuncBuilder) Mov(rd, rs arch.Reg) { f.I(arch.Instr{Kind: arch.MovReg, Rd: rd, Rs1: rs}) }

// Op3 emits rd = rs1 <op> rs2.
func (f *FuncBuilder) Op3(op arch.ALUOp, rd, rs1, rs2 arch.Reg) {
	f.I(arch.Instr{Kind: arch.ALU, Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits rd = rs1 <op> imm (imm must fit the architecture's ALU
// immediate field: 12 bits signed on fixed-width ISAs).
func (f *FuncBuilder) OpI(op arch.ALUOp, rd, rs1 arch.Reg, imm int64) {
	f.I(arch.Instr{Kind: arch.ALUImm, Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// LoadLocal reads a frame slot: rd = mem[sp + off].
func (f *FuncBuilder) LoadLocal(rd arch.Reg, off int64) {
	f.I(arch.Instr{Kind: arch.Load, Rd: rd, Rs1: arch.SP, Size: 8, Imm: off})
}

// StoreLocal writes a frame slot: mem[sp + off] = rs.
func (f *FuncBuilder) StoreLocal(rs arch.Reg, off int64) {
	f.I(arch.Instr{Kind: arch.Store, Rs2: rs, Rs1: arch.SP, Size: 8, Imm: off})
}

// BranchTo emits an unconditional branch to the label.
func (f *FuncBuilder) BranchTo(l Label) {
	f.iref(arch.Instr{Kind: arch.Branch}, ref{mode: refPC, label: l, table: -1})
}

// BranchCondTo emits a conditional branch to the label, testing rs
// against zero.
func (f *FuncBuilder) BranchCondTo(c arch.Cond, rs arch.Reg, l Label) {
	f.iref(arch.Instr{Kind: arch.BranchCond, Cond: c, Rs1: rs}, ref{mode: refPC, label: l, table: -1})
}

// CallF emits a direct call to the named function.
func (f *FuncBuilder) CallF(name string) {
	f.iref(arch.Instr{Kind: arch.Call}, ref{mode: refPC, sym: name, table: -1})
}

// TailJumpReg emits an indirect tail call: an indirect jump whose target
// is a function entry in rs. Unresolvable by jump-table analysis, it is
// the construct the paper's gap-based tail call heuristic rescues.
func (f *FuncBuilder) TailJumpReg(rs arch.Reg) {
	f.I(arch.Instr{Kind: arch.JumpInd, Rs1: rs})
}

// LoadGlobalAddr forms the address of a global or function in rd: Lea or
// RIP-like addressing in PIE, movz/movk or movimm absolute
// materialisation in position dependent code.
func (f *FuncBuilder) LoadGlobalAddr(rd arch.Reg, name string) {
	switch {
	case f.b.pie && f.b.arch == arch.X64:
		f.iref(arch.Instr{Kind: arch.Lea, Rd: rd}, ref{mode: refPC, sym: name, table: -1})
	case f.b.pie:
		f.iref(arch.Instr{Kind: arch.LeaHi, Rd: rd}, ref{mode: refPage, sym: name, table: -1})
		f.iref(arch.Instr{Kind: arch.AddImm16, Rd: rd, Rs1: rd}, ref{mode: refLo12, sym: name, table: -1})
	case f.b.arch == arch.X64:
		f.iref(arch.Instr{Kind: arch.MovImm, Rd: rd}, ref{mode: refAbs64, sym: name, table: -1})
	default:
		f.iref(arch.Instr{Kind: arch.MovImm16, Rd: rd}, ref{mode: refAbs16, sym: name, table: -1})
		f.iref(arch.Instr{Kind: arch.MovK16, Rd: rd, Shift: 1}, ref{mode: refAbs16, sym: name, table: -1})
	}
}

// LoadGlobal reads size bytes from the named global into rd, clobbering
// tmp for the address on paths that need it. PIE X64 uses a RIP-relative
// load, the idiom function-pointer analysis keys on.
func (f *FuncBuilder) LoadGlobal(rd, tmp arch.Reg, name string, size uint8) {
	if f.b.pie && f.b.arch == arch.X64 {
		f.iref(arch.Instr{Kind: arch.LoadPC, Rd: rd, Size: size}, ref{mode: refPC, sym: name, table: -1})
		return
	}
	f.LoadGlobalAddr(tmp, name)
	f.I(arch.Instr{Kind: arch.Load, Rd: rd, Rs1: tmp, Size: size})
}

// StoreGlobal writes size bytes of rs to the named global, clobbering
// tmp for the address.
func (f *FuncBuilder) StoreGlobal(rs, tmp arch.Reg, name string, size uint8) {
	f.LoadGlobalAddr(tmp, name)
	f.I(arch.Instr{Kind: arch.Store, Rs2: rs, Rs1: tmp, Size: size})
}

// CallPtr loads a code pointer from the named global cell and calls it.
func (f *FuncBuilder) CallPtr(tmp arch.Reg, cell string) {
	f.LoadGlobal(tmp, tmp, cell, 8)
	f.I(arch.Instr{Kind: arch.CallInd, Rs1: tmp})
}

// CallStackSlot stores the pointer in rs to a stack slot and calls
// through the memory operand — the indirect-call-through-stack construct
// that broke Dyninst-10.2's call emulation (Section 8.1).
func (f *FuncBuilder) CallStackSlot(rs arch.Reg, off int64) {
	f.StoreLocal(rs, off)
	f.I(arch.Instr{Kind: arch.CallIndMem, Rs1: arch.SP, Imm: off})
}

// BeginTry opens an exception try region ending at EndTry.
func (f *FuncBuilder) BeginTry() {
	f.tries = append(f.tries, tryRegion{startSlot: len(f.slots), endSlot: -1})
}

// EndTry closes the innermost open try region, dispatching throws inside
// it to the catch label.
func (f *FuncBuilder) EndTry(catch Label) {
	for i := len(f.tries) - 1; i >= 0; i-- {
		if f.tries[i].endSlot == -1 {
			f.tries[i].endSlot = len(f.slots)
			f.tries[i].catch = catch
			return
		}
	}
	panic("asm: EndTry without BeginTry in " + f.name)
}

// Throw raises an exception.
func (f *FuncBuilder) Throw() { f.I(arch.Instr{Kind: arch.Throw}) }

// Print emits a syscall printing the value of rs to the program output.
func (f *FuncBuilder) Print(rs arch.Reg) {
	if rs != arch.R1 {
		f.Mov(arch.R1, rs)
	}
	f.I(arch.Instr{Kind: arch.Syscall, Imm: 1})
}

// Return emits the epilogue and return (expanded at link time once leaf
// status is known).
func (f *FuncBuilder) Return() {
	f.slots = append(f.slots, slot{pseudo: pseudoRet, tableIx: -1})
}

// Halt stops the program with the exit status in r0.
func (f *FuncBuilder) Halt() { f.I(arch.Instr{Kind: arch.Halt}) }

// Trap emits a trap instruction (used by tests).
func (f *FuncBuilder) Trap() { f.I(arch.Instr{Kind: arch.Trap}) }

// Switch emits a jump-table dispatch on idx with len(targets) cases and
// a default label, using the architecture's table idiom. tmp1 and tmp2
// are clobbered; idx is preserved. Opts select analysis-hostile
// variants.
func (f *FuncBuilder) Switch(idx, tmp1, tmp2 arch.Reg, targets []Label, def Label, opts SwitchOpts) {
	if len(targets) == 0 {
		panic("asm: switch with no cases in " + f.name)
	}
	tbl := &jumpTable{targets: append([]Label(nil), targets...), fn: f, loadSlot: -1, dispatchSlot: -1}
	tix := len(f.tables)
	f.tables = append(f.tables, tbl)

	// Bounds check: tmp1 = idx - N; if tmp1 >= 0 goto default.
	f.OpI(arch.Sub, tmp1, idx, int64(len(targets)))
	f.BranchCondTo(arch.GE, tmp1, def)

	dispatchIdx := idx
	if opts.SpillIndex {
		// Spill and reload the index through the stack between the
		// bounds check and the table read.
		f.StoreLocal(idx, 0)
		f.LoadLocal(tmp2, 0)
		dispatchIdx = tmp2
	}

	switch f.b.arch {
	case arch.X64:
		if f.b.pie {
			tbl.style = TableRel32
		} else {
			tbl.style = TableAbs64
		}
		f.tableBase(tmp1, tix, opts)
		tbl.loadSlot = len(f.slots)
		if tbl.style == TableAbs64 {
			f.I(arch.Instr{Kind: arch.LoadIdx, Rd: tmp2, Rs1: tmp1, Rs2: dispatchIdx, Size: 8, Scale: 8})
		} else {
			// movsxd idiom: table-relative entries are signed.
			f.I(arch.Instr{Kind: arch.LoadIdx, Rd: tmp2, Rs1: tmp1, Rs2: dispatchIdx, Size: 4, Scale: 4, Signed: true})
			f.Op3(arch.Add, tmp2, tmp2, tmp1)
		}
		tbl.dispatchSlot = len(f.slots)
		f.I(arch.Instr{Kind: arch.JumpInd, Rs1: tmp2})
		f.b.rodata = append(f.b.rodata, rodataItem{name: tableSymbol(f.name, tix), table: tbl})
	case arch.PPC:
		// Table embedded in .text immediately after the dispatch, with
		// 4-byte table-relative entries (Assumption 1 of the paper does
		// not hold here).
		tbl.style = TableRel32
		tbl.inText = true
		f.tableBase(tmp1, tix, opts)
		tbl.loadSlot = len(f.slots)
		// lwa idiom: in-text table entries are signed (cases may precede
		// the table).
		f.I(arch.Instr{Kind: arch.LoadIdx, Rd: tmp2, Rs1: tmp1, Rs2: dispatchIdx, Size: 4, Scale: 4, Signed: true})
		f.Op3(arch.Add, tmp2, tmp2, tmp1)
		tbl.dispatchSlot = len(f.slots)
		f.I(arch.Instr{Kind: arch.JumpInd, Rs1: tmp2})
		f.slots = append(f.slots, slot{tableIx: tix})
	case arch.A64:
		// 1- or 2-byte unsigned (target-funcStart)/4 entries in .rodata;
		// style is finalised at layout time when the function size is
		// known (small functions get 1-byte entries).
		tbl.style = TableRel16
		f.tableBase(tmp1, tix, opts)
		tbl.loadSlot = len(f.slots)
		f.I(arch.Instr{Kind: arch.LoadIdx, Rd: tmp2, Rs1: tmp1, Rs2: dispatchIdx, Size: 2, Scale: 2})
		f.OpI(arch.Shl, tmp2, tmp2, 2)
		// tmp1 = function start address.
		f.iref(arch.Instr{Kind: arch.Lea, Rd: tmp1}, ref{mode: refPC, sym: f.name, table: -1})
		f.Op3(arch.Add, tmp2, tmp2, tmp1)
		tbl.dispatchSlot = len(f.slots)
		f.I(arch.Instr{Kind: arch.JumpInd, Rs1: tmp2})
		f.b.rodata = append(f.b.rodata, rodataItem{name: tableSymbol(f.name, tix), table: tbl})
	}
}

// tableBase forms the address of table tix in rd, either PC-relatively
// (analysable) or through an opaque data cell (Failure 1).
func (f *FuncBuilder) tableBase(rd arch.Reg, tix int, opts SwitchOpts) {
	if opts.OpaqueBase {
		cell := fmt.Sprintf(".%s.tbl%d.cell", f.name, tix)
		f.b.addGlobal(&Global{Name: cell, Init: make([]byte, 8), PtrTo: tableSymbol(f.name, tix)})
		f.LoadGlobal(rd, rd, cell, 8)
		return
	}
	if f.b.arch == arch.PPC || (f.b.arch == arch.A64 && !f.b.pie) || f.b.arch == arch.A64 {
		// PPC tables are nearby in .text (adr reaches); A64 tables live
		// in .rodata, reached with adrp/add.
		if f.b.arch == arch.PPC {
			f.iref(arch.Instr{Kind: arch.Lea, Rd: rd}, ref{mode: refPC, table: tix, label: -1})
			return
		}
		f.iref(arch.Instr{Kind: arch.LeaHi, Rd: rd}, ref{mode: refPage, table: tix, label: -1})
		f.iref(arch.Instr{Kind: arch.AddImm16, Rd: rd, Rs1: rd}, ref{mode: refLo12, table: tix, label: -1})
		return
	}
	// X64: lea table(%rip) in PIE, movabs in position dependent code.
	if f.b.pie {
		f.iref(arch.Instr{Kind: arch.Lea, Rd: rd}, ref{mode: refPC, table: tix, label: -1})
	} else {
		f.iref(arch.Instr{Kind: arch.MovImm, Rd: rd}, ref{mode: refAbs64, table: tix, label: -1})
	}
}

// tableSymbol names the linker-internal symbol of a jump table.
func tableSymbol(fn string, tix int) string { return fmt.Sprintf(".%s.jt%d", fn, tix) }
