// Package asm is the synthetic compiler toolchain: a builder API for
// constructing programs (functions, loops, switches, indirect calls,
// exceptions), an assembler that expands the builder's macro items into
// concrete instructions using each architecture's code generation idioms,
// and a linker that lays out sections, resolves references, emits jump
// tables, unwind tables, symbol tables, dynamic-linking sections and
// relocations, and produces a bin.Binary.
//
// The codegen idioms are the ones the paper's binary analyses
// characterise: bounds-check-then-dispatch jump tables (in .rodata with
// 8-byte absolute or 4-byte table-relative entries on X64, embedded in
// .text on PPC, with 1- or 2-byte function-relative entries in .rodata on
// A64), nop alignment padding between functions, PC-relative global
// access with runtime relocations in PIE, and movz/movk address
// materialisation in position dependent fixed-width code.
package asm

import (
	"fmt"

	"icfgpatch/internal/arch"
)

// Label names a position inside one function, to be bound with Bind.
type Label int

// TableStyle selects the jump table entry encoding.
type TableStyle uint8

// Jump table styles.
const (
	// TableAbs64 stores 8-byte absolute target addresses (position
	// dependent X64 and PPC).
	TableAbs64 TableStyle = iota
	// TableRel32 stores 4-byte target-minus-table-base offsets (PIE X64,
	// and PPC where the table is embedded in .text after the dispatch).
	TableRel32
	// TableRel8 stores 1-byte unsigned (target-funcStart)/4 offsets
	// (A64 tbb idiom; only for functions under 1KB).
	TableRel8
	// TableRel16 stores 2-byte unsigned (target-funcStart)/4 offsets
	// (A64 tbh idiom).
	TableRel16
)

// String names the style.
func (s TableStyle) String() string {
	switch s {
	case TableAbs64:
		return "abs64"
	case TableRel32:
		return "rel32"
	case TableRel8:
		return "rel8"
	case TableRel16:
		return "rel16"
	default:
		return fmt.Sprintf("style(%d)", uint8(s))
	}
}

// EntrySize returns the table entry width in bytes.
func (s TableStyle) EntrySize() int {
	switch s {
	case TableAbs64:
		return 8
	case TableRel32:
		return 4
	case TableRel8:
		return 1
	default:
		return 2
	}
}

// SwitchOpts tune the emitted jump table idiom, including the
// deliberately analysis-hostile variants the paper's Section 5.1
// failure analysis is about.
type SwitchOpts struct {
	// SpillIndex stores the switch index to a stack slot and reloads it
	// before the table read, separating the bounds check from the use:
	// the backward slice hits a memory load, so table-size inference
	// fails and the analysis must fall back to Assumption-2 bound
	// extension ("values spilled to and reloaded from memory").
	SpillIndex bool
	// OpaqueBase loads the table base address from a data cell instead
	// of forming it PC-relatively: the analysis cannot find where the
	// table starts (Failure 1), so the whole function becomes
	// uninstrumentable.
	OpaqueBase bool
}

// refMode says how a resolved target address patches an instruction.
type refMode uint8

const (
	refNone  refMode = iota
	refPC            // Imm = target - instrAddr (branch, call, lea, loadpc)
	refPage          // Imm = page(target) - page(instrAddr) (adrp)
	refLo12          // Imm = target & 0xFFF (add after adrp)
	refAbs64         // Imm = target (x64 movimm)
	refAbs16         // Imm = 16-bit chunk Shift of target (movz/movk)
)

// ref is a symbolic operand resolved at link time. Exactly one of label
// (>= 0), sym (non-empty) or table (>= 0) identifies the target.
type ref struct {
	mode   refMode
	label  Label
	sym    string
	table  int
	addend int64
}

// pseudoKind marks builder items that expand during finalisation.
type pseudoKind uint8

const (
	pseudoNone pseudoKind = iota
	// pseudoRet expands to the epilogue + return sequence once the
	// function knows whether it is a leaf and its final frame size.
	pseudoRet
)

// slot is one builder item: an instruction (possibly with a symbolic
// ref), a pseudo item, or an in-text jump table data blob (PPC).
type slot struct {
	ins     arch.Instr
	ref     *ref
	pseudo  pseudoKind
	tableIx int // >= 0: this slot is the in-text data of that table
}

// jumpTable is one switch dispatch table.
type jumpTable struct {
	style   TableStyle
	targets []Label
	inText  bool // PPC: emitted right after the dispatch in .text
	// addr is assigned at layout time.
	addr uint64
	// fn backlink for resolving target labels.
	fn *FuncBuilder
	// loadSlot and dispatchSlot index the function's table-read and
	// indirect-jump slots, for late style fix-ups and debug info.
	loadSlot     int
	dispatchSlot int
}

// tryRegion records a source-level try block and its catch label.
type tryRegion struct {
	startSlot int
	endSlot   int // exclusive; -1 until EndTry
	catch     Label
}

// Global is one data object.
type Global struct {
	Name string
	// Init is the initial contents; the object's size is len(Init).
	Init []byte
	// PtrTo, when non-empty, makes this an 8-byte cell holding the
	// address of that symbol plus Addend. In PIE it gets a runtime
	// relocation; in position dependent code the address is baked in.
	PtrTo  string
	Addend int64
	addr   uint64
}

// rodataItem is one read-only blob or jump table, placed in .rodata in
// insertion order (so generators can interleave tables with constant
// data, the A64 situation of Assumption 2).
type rodataItem struct {
	name  string
	data  []byte
	table *jumpTable // nil for plain blobs
	align uint64
	addr  uint64 // assigned at layout time
}

// TableInfo is ground-truth metadata about one emitted jump table,
// returned in DebugInfo for testing the analyses (the rewriter itself
// never sees it).
type TableInfo struct {
	Func         string
	Addr         uint64
	Style        TableStyle
	EntrySize    int
	N            int
	Targets      []uint64
	DispatchAddr uint64 // address of the JumpInd instruction
	InText       bool
}

// DebugInfo is the compiler's ground truth, used only by tests and
// experiment oracles.
type DebugInfo struct {
	FuncStart map[string]uint64
	FuncEnd   map[string]uint64
	Tables    []TableInfo
	// PadRanges lists [start,end) alignment padding ranges in .text.
	PadRanges [][2]uint64
}
