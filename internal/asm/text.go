package asm

import (
	"fmt"
	"strconv"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// AssembleText parses the toolkit's assembly text format and links it
// into a binary. The format drives the same Builder API used
// programmatically, so everything the builder can express — jump tables,
// try/catch regions, pointer cells, metadata — is writable by hand:
//
//	.arch x64            ; x64 | ppc | a64
//	.pie                 ; position independent (default: dependent)
//	.meta lang c++
//	.global buf 16       ; zero-initialised data object
//	.fnptr fp callee 0   ; pointer cell: &callee + 0
//	.func callee
//	    addi r0, r1, 5
//	    ret
//	.func main frame=32
//	    li r3, 0
//	loop:
//	    addi r3, r3, 1
//	    subi r9, r3, 10
//	    blt r9, loop
//	    print r3
//	    halt
//	.entry main
//
// Comments run from ';' to end of line. Labels end with ':'. Branch
// mnemonics are b, beq/bne/blt/bge/bgt/ble; ALU register forms are
// add/sub/mul/div/and/or/xor/shl/shr, with -i suffixed immediate forms;
// ld/st move 8 bytes via [rN+off]; switch takes an index register, two
// scratch registers, a case label list and a default label.
func AssembleText(src string) (*bin.Binary, *DebugInfo, error) {
	p := &textParser{labels: map[string]Label{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, nil, fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
	}
	if p.b == nil {
		return nil, nil, fmt.Errorf("asm: missing .arch directive")
	}
	return p.b.Link()
}

type textParser struct {
	b      *Builder
	f      *FuncBuilder
	labels map[string]Label
}

// label returns (creating on demand) the named label in the current
// function.
func (p *textParser) label(name string) Label {
	if l, ok := p.labels[name]; ok {
		return l
	}
	l := p.f.NewLabel()
	p.labels[name] = l
	return l
}

func parseReg(s string) (arch.Reg, error) {
	switch s {
	case "sp":
		return arch.SP, nil
	case "lr":
		return arch.LR, nil
	case "tar":
		return arch.TAR, nil
	}
	if strings.HasPrefix(s, "r") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < arch.NumGPRegs {
			return arch.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// operands splits "a, b, c" into fields.
func operands(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

var aluOps = map[string]arch.ALUOp{
	"add": arch.Add, "sub": arch.Sub, "mul": arch.Mul, "div": arch.Div,
	"and": arch.And, "or": arch.Or, "xor": arch.Xor, "shl": arch.Shl, "shr": arch.Shr,
}

var condBranches = map[string]arch.Cond{
	"beq": arch.EQ, "bne": arch.NE, "blt": arch.LT,
	"bge": arch.GE, "bgt": arch.GT, "ble": arch.LE,
}

func (p *textParser) line(line string) error {
	if strings.HasPrefix(line, ".") {
		return p.directive(line)
	}
	if strings.HasSuffix(line, ":") {
		if p.f == nil {
			return fmt.Errorf("label outside function")
		}
		name := strings.TrimSuffix(line, ":")
		p.f.Bind(p.label(name))
		return nil
	}
	if p.f == nil {
		return fmt.Errorf("instruction outside function")
	}
	return p.instruction(line)
}

func (p *textParser) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".arch":
		if p.b != nil {
			return fmt.Errorf(".arch given twice")
		}
		if len(fields) != 2 {
			return fmt.Errorf(".arch needs one operand")
		}
		a, err := arch.Parse(fields[1])
		if err != nil {
			return err
		}
		p.b = New(a, false)
		return nil
	}
	if p.b == nil {
		return fmt.Errorf("%s before .arch", fields[0])
	}
	switch fields[0] {
	case ".pie":
		// Rebuild the builder in PIE mode; must precede any content.
		if len(p.b.funcs) > 0 || len(p.b.globals) > 0 {
			return fmt.Errorf(".pie must precede functions and globals")
		}
		p.b = New(p.b.arch, true)
	case ".meta":
		if len(fields) < 3 {
			return fmt.Errorf(".meta needs key and value")
		}
		p.b.SetMeta(fields[1], strings.Join(fields[2:], " "))
	case ".global":
		if len(fields) != 3 {
			return fmt.Errorf(".global needs name and size")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return fmt.Errorf("bad size %q", fields[2])
		}
		p.b.Global(fields[1], n)
	case ".fnptr":
		if len(fields) != 4 {
			return fmt.Errorf(".fnptr needs cell, target, addend")
		}
		add, err := parseImm(fields[3])
		if err != nil {
			return err
		}
		p.b.FuncPtrGlobal(fields[1], fields[2], add)
	case ".func":
		if len(fields) < 2 {
			return fmt.Errorf(".func needs a name")
		}
		p.f = p.b.Func(fields[1])
		p.labels = map[string]Label{}
		for _, opt := range fields[2:] {
			if v, ok := strings.CutPrefix(opt, "frame="); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("bad frame %q", v)
				}
				p.f.SetFrame(int64(n))
			} else {
				return fmt.Errorf("unknown .func option %q", opt)
			}
		}
	case ".entry":
		if len(fields) != 2 {
			return fmt.Errorf(".entry needs a name")
		}
		p.b.SetEntry(fields[1])
	case ".export":
		if len(fields) != 2 {
			return fmt.Errorf(".export needs a name")
		}
		p.b.Export(fields[1])
	case ".shared":
		p.b.SetSharedLib()
	case ".try":
		p.f.BeginTry()
	case ".endtry":
		if len(fields) != 2 {
			return fmt.Errorf(".endtry needs a catch label")
		}
		p.f.EndTry(p.label(fields[1]))
	default:
		return fmt.Errorf("unknown directive %s", fields[0])
	}
	return nil
}

func (p *textParser) instruction(line string) error {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], line[i+1:]
	}
	ops := operands(rest)
	f := p.f

	reg := func(i int) (arch.Reg, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnem, i+1)
		}
		return parseReg(ops[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnem, i+1)
		}
		return parseImm(ops[i])
	}

	switch {
	case mnem == "nop":
		f.Nop()
	case mnem == "ret":
		f.Return()
	case mnem == "halt":
		f.Halt()
	case mnem == "trap":
		f.Trap()
	case mnem == "throw":
		f.Throw()
	case mnem == "li":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		f.Li(rd, v)
	case mnem == "mov":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		f.Mov(rd, rs)
	case mnem == "print":
		rs, err := reg(0)
		if err != nil {
			return err
		}
		f.Print(rs)
	case mnem == "call":
		if len(ops) != 1 {
			return fmt.Errorf("call needs a function name")
		}
		f.CallF(ops[0])
	case mnem == "callptr":
		if len(ops) != 2 {
			return fmt.Errorf("callptr needs tmp register and cell name")
		}
		tmp, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		f.CallPtr(tmp, ops[1])
	case mnem == "tailjump":
		rs, err := reg(0)
		if err != nil {
			return err
		}
		f.TailJumpReg(rs)
	case mnem == "b":
		if len(ops) != 1 {
			return fmt.Errorf("b needs a label")
		}
		f.BranchTo(p.label(ops[0]))
	case mnem == "ld":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, err := imm(1)
		if err != nil {
			return err
		}
		f.LoadLocal(rd, off)
	case mnem == "st":
		rs, err := reg(0)
		if err != nil {
			return err
		}
		off, err := imm(1)
		if err != nil {
			return err
		}
		f.StoreLocal(rs, off)
	case mnem == "ldg":
		if len(ops) != 2 {
			return fmt.Errorf("ldg needs register and global name")
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		f.LoadGlobal(rd, rd, ops[1], 8)
	case mnem == "stg":
		if len(ops) != 3 {
			return fmt.Errorf("stg needs register, scratch, global name")
		}
		rs, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		tmp, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		f.StoreGlobal(rs, tmp, ops[2], 8)
	case mnem == "switch":
		// switch idx, tmp1, tmp2, [L1 L2 ...], default
		if len(ops) < 5 {
			return fmt.Errorf("switch needs idx, tmp1, tmp2, [cases], default")
		}
		idx, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		t1, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		t2, err := parseReg(ops[2])
		if err != nil {
			return err
		}
		caseField := strings.Join(ops[3:len(ops)-1], " ")
		caseField = strings.Trim(caseField, "[] ")
		var cases []Label
		for _, c := range strings.Fields(caseField) {
			cases = append(cases, p.label(c))
		}
		if len(cases) == 0 {
			return fmt.Errorf("switch with no cases")
		}
		f.Switch(idx, t1, t2, cases, p.label(ops[len(ops)-1]), SwitchOpts{})
	default:
		if cond, ok := condBranches[mnem]; ok {
			if len(ops) != 2 {
				return fmt.Errorf("%s needs register and label", mnem)
			}
			rs, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			f.BranchCondTo(cond, rs, p.label(ops[1]))
			return nil
		}
		if op, ok := aluOps[mnem]; ok {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs1, err := reg(1)
			if err != nil {
				return err
			}
			rs2, err := reg(2)
			if err != nil {
				return err
			}
			f.Op3(op, rd, rs1, rs2)
			return nil
		}
		if op, ok := aluOps[strings.TrimSuffix(mnem, "i")]; ok && strings.HasSuffix(mnem, "i") {
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs1, err := reg(1)
			if err != nil {
				return err
			}
			v, err := imm(2)
			if err != nil {
				return err
			}
			f.OpI(op, rd, rs1, v)
			return nil
		}
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return nil
}
