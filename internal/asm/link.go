package asm

import (
	"encoding/binary"
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/unwind"
)

// InterpPath is the program interpreter recorded in .interp; the loader
// refuses images whose .interp does not name it.
const InterpPath = "/lib64/ld-icfg.so.1"

// Link lays out the program, resolves every reference, and produces the
// binary plus the compiler's ground-truth debug information.
func (b *Builder) Link() (*bin.Binary, *DebugInfo, error) {
	if len(b.funcs) == 0 {
		return nil, nil, fmt.Errorf("asm: no functions")
	}
	enc := arch.ForArch(b.arch)
	dbg := &DebugInfo{FuncStart: map[string]uint64{}, FuncEnd: map[string]uint64{}}

	// Pass 1: finalise functions (prologue/epilogue, pseudo expansion)
	// and lay out .text.
	cursor := b.textBase
	var padRanges [][2]uint64
	for _, f := range b.funcs {
		f.finalize()
		aligned := align(cursor, 16)
		if aligned != cursor {
			padRanges = append(padRanges, [2]uint64{cursor, aligned})
		}
		cursor = aligned
		f.start = cursor
		addr := cursor
		for k := range f.slots {
			s := &f.slots[k]
			s.ins.Addr = addr
			if s.tableIx >= 0 && f.tables[s.tableIx].inText {
				tbl := f.tables[s.tableIx]
				tbl.addr = addr
				addr += uint64(tbl.style.EntrySize() * len(tbl.targets))
				continue
			}
			s.ins.EncLen = arch.EncLen(b.arch, s.ins)
			addr += uint64(s.ins.EncLen)
		}
		f.end = addr
		cursor = addr
		f.labelAddr = map[Label]uint64{}
		for l, idx := range f.binds {
			if idx < len(f.slots) {
				f.labelAddr[l] = f.slots[idx].ins.Addr
			} else {
				f.labelAddr[l] = f.end
			}
		}
		dbg.FuncStart[f.name] = f.start
		dbg.FuncEnd[f.name] = f.end
	}
	textEnd := cursor
	dbg.PadRanges = padRanges

	// A64 table styles: small functions get 1-byte entries.
	for _, f := range b.funcs {
		if b.arch != arch.A64 {
			break
		}
		for _, tbl := range f.tables {
			if f.end-f.start <= 255*4 {
				tbl.style = TableRel8
			} else {
				tbl.style = TableRel16
			}
			if tbl.loadSlot >= 0 {
				sz := uint8(tbl.style.EntrySize())
				f.slots[tbl.loadSlot].ins.Size = sz
				f.slots[tbl.loadSlot].ins.Scale = sz
			}
		}
	}

	// Pass 2: lay out .rodata (tables not embedded in text, plus blobs,
	// in insertion order) and .data (globals).
	rodataBase := align(textEnd, 0x1000)
	rcursor := rodataBase
	for i := range b.rodata {
		it := &b.rodata[i]
		al := it.align
		if it.table != nil {
			al = uint64(it.table.style.EntrySize())
			it.data = make([]byte, it.table.style.EntrySize()*len(it.table.targets))
		}
		if al == 0 {
			al = 1
		}
		rcursor = align(rcursor, al)
		if it.table != nil {
			it.table.addr = rcursor
		}
		it.addr = rcursor
		rcursor += uint64(len(it.data))
	}
	rodataEnd := rcursor

	dataBase := align(rodataEnd, 0x1000)
	dcursor := dataBase
	for _, g := range b.globals {
		dcursor = align(dcursor, 8)
		g.addr = dcursor
		dcursor += uint64(len(g.Init))
	}
	dataEnd := dcursor

	// Symbol resolution map.
	symAddr := map[string]uint64{}
	for _, f := range b.funcs {
		symAddr[f.name] = f.start
	}
	for _, g := range b.globals {
		symAddr[g.Name] = g.addr
	}
	for _, f := range b.funcs {
		for tix, tbl := range f.tables {
			symAddr[tableSymbol(f.name, tix)] = tbl.addr
		}
	}
	for i := range b.rodata {
		if it := &b.rodata[i]; it.table == nil && it.name != "" {
			symAddr[it.name] = it.addr
		}
	}

	// Pass 3: resolve refs and encode .text.
	text := make([]byte, textEnd-b.textBase)
	fillNops(b.arch, text)
	for _, f := range b.funcs {
		for k := range f.slots {
			s := &f.slots[k]
			if s.tableIx >= 0 && f.tables[s.tableIx].inText {
				tbl := f.tables[s.tableIx]
				if err := emitTable(tbl, text[tbl.addr-b.textBase:], symAddr, f); err != nil {
					return nil, nil, err
				}
				continue
			}
			if s.ref != nil {
				target, err := resolveRef(f, s.ref, symAddr)
				if err != nil {
					return nil, nil, err
				}
				patchRef(&s.ins, s.ref.mode, target)
			}
			bs, err := enc.Encode(s.ins)
			if err != nil {
				return nil, nil, fmt.Errorf("asm: %s at %#x in %s: %w", s.ins, s.ins.Addr, f.name, err)
			}
			copy(text[s.ins.Addr-b.textBase:], bs)
		}
	}

	// Encode .rodata.
	rodata := make([]byte, rodataEnd-rodataBase)
	for i := range b.rodata {
		it := &b.rodata[i]
		if it.table != nil {
			if err := emitTable(it.table, it.data, symAddr, it.table.fn); err != nil {
				return nil, nil, err
			}
		}
		copy(rodata[it.addr-rodataBase:], it.data)
	}

	// Encode .data, collecting runtime (and optionally link-time)
	// relocations for pointer cells.
	data := make([]byte, dataEnd-dataBase)
	var relocs, linkRelocs []bin.Reloc
	for _, g := range b.globals {
		copy(data[g.addr-dataBase:], g.Init)
		if g.PtrTo == "" {
			continue
		}
		target, ok := symAddr[g.PtrTo]
		if !ok {
			return nil, nil, fmt.Errorf("asm: pointer cell %s references unknown symbol %q", g.Name, g.PtrTo)
		}
		v := target + uint64(g.Addend)
		binary.LittleEndian.PutUint64(data[g.addr-dataBase:], v)
		if b.pie {
			relocs = append(relocs, bin.Reloc{Kind: bin.RelocRelative, Off: g.addr, Addend: int64(v)})
		}
		if b.keepLinkRelocs {
			linkRelocs = append(linkRelocs, bin.Reloc{Kind: bin.RelocAbs64, Off: g.addr, Addend: g.Addend, Sym: g.PtrTo})
		}
	}

	// Unwind table.
	var fdes []unwind.FDE
	for _, f := range b.funcs {
		fde := unwind.FDE{
			Start:     f.start,
			End:       f.end,
			FrameSize: uint64(f.frame),
			RAInLR:    b.arch.FixedWidth() && !f.hasCall,
		}
		for _, tr := range f.tries {
			if tr.endSlot < 0 {
				return nil, nil, fmt.Errorf("asm: unterminated try region in %s", f.name)
			}
			fde.Pads = append(fde.Pads, unwind.LandingPad{
				TryStart: f.slotAddr(tr.startSlot),
				TryEnd:   f.slotAddr(tr.endSlot),
				Pad:      f.labelAddr[tr.catch],
			})
		}
		fdes = append(fdes, fde)
	}
	ehFrame := unwind.NewTable(fdes).Encode()

	// Assemble the binary.
	out := bin.New(b.arch)
	out.PIE = b.pie
	out.SharedLib = b.shared
	for k, v := range b.meta {
		out.Meta[k] = v
	}
	out.TOCValue = rodataBase + 0x8000

	for _, s := range []*bin.Section{
		{Name: bin.SecText, Addr: b.textBase, Data: text, Flags: bin.FlagAlloc | bin.FlagExec, Align: 16},
		{Name: bin.SecRodata, Addr: rodataBase, Data: rodata, Flags: bin.FlagAlloc, Align: 8},
		{Name: bin.SecData, Addr: dataBase, Data: data, Flags: bin.FlagAlloc | bin.FlagWrite, Align: 8},
	} {
		if err := addSection(out, s); err != nil {
			return nil, nil, err
		}
	}

	cursor = align(dataEnd, 0x1000)
	addBlob := func(name string, payload []byte, flags bin.SectionFlags) error {
		s := &bin.Section{Name: name, Addr: cursor, Data: payload, Flags: flags, Align: 8}
		if err := addSection(out, s); err != nil {
			return err
		}
		cursor = align(s.End(), 0x100)
		return nil
	}
	if err := addBlob(bin.SecEhFrame, ehFrame, bin.FlagAlloc); err != nil {
		return nil, nil, err
	}

	// Dynamic-linking sections: encoded dynamic symbols, their string
	// table, and the runtime relocations. Their byte size matters — the
	// rewriter retires and reuses them as trampoline scratch space.
	dynSyms := b.dynSymbols(symAddr)
	dsBytes, strBytes := encodeDynSyms(dynSyms)
	if err := addBlob(bin.SecDynSym, dsBytes, bin.FlagAlloc); err != nil {
		return nil, nil, err
	}
	if err := addBlob(bin.SecDynStr, strBytes, bin.FlagAlloc); err != nil {
		return nil, nil, err
	}
	if err := addBlob(bin.SecRelaDyn, encodeRelocs(relocs), bin.FlagAlloc); err != nil {
		return nil, nil, err
	}

	if b.meta["go-runtime"] == "1" {
		var pcs []unwind.PCFunc
		for id, f := range b.funcs {
			pcs = append(pcs, unwind.PCFunc{Start: f.start, End: f.end, ID: uint32(id)})
		}
		if err := addBlob(bin.SecGoPCLN, unwind.NewPCTable(pcs).Encode(), bin.FlagAlloc); err != nil {
			return nil, nil, err
		}
	}
	if err := addBlob(bin.SecNote, encodeMeta(b.meta), bin.FlagAlloc); err != nil {
		return nil, nil, err
	}
	if !b.shared {
		// Program interpreter request, as in ET_EXEC/ET_DYN ELF images.
		// The loader validates it; BOLT's block-reordering bug corrupts
		// it in some binaries (Section 8.3).
		if err := addBlob(bin.SecInterp, []byte(InterpPath), bin.FlagAlloc); err != nil {
			return nil, nil, err
		}
	}

	for _, f := range b.funcs {
		out.Symbols = append(out.Symbols, bin.Symbol{Name: f.name, Addr: f.start, Size: f.end - f.start, Kind: bin.SymFunc, Global: true})
	}
	for _, g := range b.globals {
		out.Symbols = append(out.Symbols, bin.Symbol{Name: g.Name, Addr: g.addr, Size: uint64(len(g.Init)), Kind: bin.SymObject})
	}
	for i := range b.rodata {
		if it := &b.rodata[i]; it.table == nil && it.name != "" {
			out.Symbols = append(out.Symbols, bin.Symbol{Name: it.name, Addr: it.addr, Size: uint64(len(it.data)), Kind: bin.SymObject})
		}
	}
	for _, d := range dynSyms {
		out.DynSymbols = append(out.DynSymbols, d)
	}
	out.Relocs = relocs
	out.LinkRelocs = linkRelocs

	if !b.shared {
		entry, ok := symAddr[b.entry]
		if !ok {
			return nil, nil, fmt.Errorf("asm: entry function %q not defined", b.entry)
		}
		out.Entry = entry
	}

	// Ground truth tables for tests.
	for _, f := range b.funcs {
		for tix, tbl := range f.tables {
			info := TableInfo{
				Func:      f.name,
				Addr:      tbl.addr,
				Style:     tbl.style,
				EntrySize: tbl.style.EntrySize(),
				N:         len(tbl.targets),
				InText:    tbl.inText,
			}
			for _, l := range tbl.targets {
				info.Targets = append(info.Targets, f.labelAddr[l])
			}
			if tbl.dispatchSlot >= 0 {
				info.DispatchAddr = f.slots[tbl.dispatchSlot].ins.Addr
			}
			_ = tix
			dbg.Tables = append(dbg.Tables, info)
		}
	}

	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("asm: linked binary invalid: %w", err)
	}
	return out, dbg, nil
}

// addSection places one linker-laid-out section into the output image.
// Layout is cursor-driven and should never produce conflicts, but a
// builder bug (or a hand-constructed layout) must surface as a Link
// error, not a panic in library code.
func addSection(out *bin.Binary, s *bin.Section) error {
	if _, err := out.AddSection(s); err != nil {
		return fmt.Errorf("asm: linker section layout for %s: %w", s.Name, err)
	}
	return nil
}

// slotAddr returns the address of the slot at index k (or the function
// end for k == len(slots)).
func (f *FuncBuilder) slotAddr(k int) uint64 {
	if k < len(f.slots) {
		return f.slots[k].ins.Addr
	}
	return f.end
}

// finalize expands pseudo slots and prepends the prologue.
func (f *FuncBuilder) finalize() {
	a := f.b.arch
	fixed := a.FixedWidth()
	if fixed && f.hasCall && f.frame < 16 {
		f.frame = 16
	}

	var prologue []slot
	if f.b.cfi {
		// The landing pad must be the function's first instruction — an
		// indirect call lands exactly at the entry address.
		prologue = append(prologue, slot{ins: arch.Instr{Kind: arch.Mark}, tableIx: -1})
	}
	if fixed && f.hasCall {
		prologue = append(prologue, slot{ins: arch.Instr{Kind: arch.Store, Rs2: arch.LR, Rs1: arch.SP, Size: 8, Imm: -8}, tableIx: -1})
	}
	if f.frame > 0 {
		prologue = append(prologue, slot{ins: arch.Instr{Kind: arch.ALUImm, Op: arch.Sub, Rd: arch.SP, Rs1: arch.SP, Imm: f.frame}, tableIx: -1})
	}

	var epilogue []slot
	if f.frame > 0 {
		epilogue = append(epilogue, slot{ins: arch.Instr{Kind: arch.ALUImm, Op: arch.Add, Rd: arch.SP, Rs1: arch.SP, Imm: f.frame}, tableIx: -1})
	}
	if fixed && f.hasCall {
		epilogue = append(epilogue, slot{ins: arch.Instr{Kind: arch.Load, Rd: arch.LR, Rs1: arch.SP, Size: 8, Imm: -8}, tableIx: -1})
	}
	epilogue = append(epilogue, slot{ins: arch.Instr{Kind: arch.Ret}, tableIx: -1})

	shift := len(prologue)
	out := make([]slot, 0, len(f.slots)+shift+4)
	out = append(out, prologue...)
	// Track how slot indices move so label binds and try regions stay
	// attached to the right positions.
	newIndex := make([]int, len(f.slots)+1)
	for k := range f.slots {
		newIndex[k] = len(out)
		s := f.slots[k]
		if s.pseudo == pseudoRet {
			out = append(out, epilogue...)
			continue
		}
		out = append(out, s)
	}
	newIndex[len(f.slots)] = len(out)
	for l, idx := range f.binds {
		f.binds[l] = newIndex[idx]
	}
	for i := range f.tries {
		f.tries[i].startSlot = newIndex[f.tries[i].startSlot]
		f.tries[i].endSlot = newIndex[f.tries[i].endSlot]
	}
	for _, tbl := range f.tables {
		if tbl.loadSlot >= 0 {
			tbl.loadSlot = newIndex[tbl.loadSlot]
		}
		if tbl.dispatchSlot >= 0 {
			tbl.dispatchSlot = newIndex[tbl.dispatchSlot]
		}
	}
	f.slots = out
}

// resolveRef computes the absolute target address of a symbolic ref.
func resolveRef(f *FuncBuilder, r *ref, symAddr map[string]uint64) (uint64, error) {
	var base uint64
	switch {
	case r.sym != "":
		v, ok := symAddr[r.sym]
		if !ok {
			return 0, fmt.Errorf("asm: %s references undefined symbol %q", f.name, r.sym)
		}
		base = v
	case r.table >= 0:
		base = f.tables[r.table].addr
	case r.label >= 0:
		v, ok := f.labelAddr[r.label]
		if !ok {
			return 0, fmt.Errorf("asm: %s references unbound label %d", f.name, r.label)
		}
		base = v
	default:
		return 0, fmt.Errorf("asm: empty ref in %s", f.name)
	}
	return base + uint64(r.addend), nil
}

// patchRef applies the resolved target to the instruction's immediate.
func patchRef(ins *arch.Instr, mode refMode, target uint64) {
	switch mode {
	case refPC:
		ins.Imm = int64(target - ins.Addr)
	case refPage:
		ins.Imm = int64((target &^ 0xFFF) - (ins.Addr &^ 0xFFF))
	case refLo12:
		ins.Imm = int64(target & 0xFFF)
	case refAbs64:
		ins.Imm = int64(target)
	case refAbs16:
		ins.Imm = int64((target >> (16 * ins.Shift)) & 0xFFFF)
	}
}

// emitTable writes the table's entries into dst.
func emitTable(tbl *jumpTable, dst []byte, symAddr map[string]uint64, f *FuncBuilder) error {
	es := tbl.style.EntrySize()
	for k, l := range tbl.targets {
		target, ok := f.labelAddr[l]
		if !ok {
			return fmt.Errorf("asm: table in %s references unbound label %d", f.name, l)
		}
		switch tbl.style {
		case TableAbs64:
			binary.LittleEndian.PutUint64(dst[k*es:], target)
		case TableRel32:
			binary.LittleEndian.PutUint32(dst[k*es:], uint32(target-tbl.addr))
		case TableRel8, TableRel16:
			off := (target - f.start) / 4
			if tbl.style == TableRel8 {
				if off > 0xFF {
					return fmt.Errorf("asm: rel8 table entry overflow in %s (offset %d)", f.name, off)
				}
				dst[k] = byte(off)
			} else {
				if off > 0xFFFF {
					return fmt.Errorf("asm: rel16 table entry overflow in %s (offset %d)", f.name, off)
				}
				binary.LittleEndian.PutUint16(dst[k*2:], uint16(off))
			}
		}
	}
	return nil
}

// dynSymbols returns the dynamic symbol set: explicitly exported
// functions plus the entry function.
func (b *Builder) dynSymbols(symAddr map[string]uint64) []bin.Symbol {
	var out []bin.Symbol
	for _, f := range b.funcs {
		if b.exports[f.name] || f.name == b.entry {
			out = append(out, bin.Symbol{Name: f.name, Addr: f.start, Size: f.end - f.start, Kind: bin.SymFunc, Global: true})
		}
	}
	return out
}

// encodeDynSyms produces the .dynsym and .dynstr payloads: 24-byte
// entries referencing names in the string table.
func encodeDynSyms(syms []bin.Symbol) (dynsym, dynstr []byte) {
	dynstr = append(dynstr, 0)
	for _, s := range syms {
		nameOff := uint32(len(dynstr))
		dynstr = append(dynstr, s.Name...)
		dynstr = append(dynstr, 0)
		var e [24]byte
		binary.LittleEndian.PutUint64(e[0:], s.Addr)
		binary.LittleEndian.PutUint64(e[8:], s.Size)
		binary.LittleEndian.PutUint32(e[16:], nameOff)
		binary.LittleEndian.PutUint32(e[20:], 1)
		dynsym = append(dynsym, e[:]...)
	}
	return dynsym, dynstr
}

// encodeRelocs produces the .rela.dyn payload: 24-byte entries.
func encodeRelocs(relocs []bin.Reloc) []byte {
	out := make([]byte, 24*len(relocs))
	for k, r := range relocs {
		binary.LittleEndian.PutUint64(out[24*k:], r.Off)
		binary.LittleEndian.PutUint64(out[24*k+8:], uint64(r.Addend))
		binary.LittleEndian.PutUint32(out[24*k+16:], uint32(r.Kind))
	}
	return out
}

// encodeMeta serialises note metadata as key=value lines.
func encodeMeta(meta map[string]string) []byte {
	var out []byte
	// Deterministic order.
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		out = append(out, k...)
		out = append(out, '=')
		out = append(out, meta[k]...)
		out = append(out, '\n')
	}
	return out
}

// fillNops fills a text buffer with the architecture's padding bytes.
func fillNops(a arch.Arch, buf []byte) {
	if a == arch.X64 {
		for i := range buf {
			buf[i] = 0x90
		}
		return
	}
	// Fixed-width nop encodes as four zero bytes.
	for i := range buf {
		buf[i] = 0
	}
}

// align rounds v up to the next multiple of a (a power of two or any
// positive integer).
func align(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}
