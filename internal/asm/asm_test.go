package asm

import (
	"fmt"
	"strings"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
)

// run links the builder's program and executes it, failing the test on
// any error.
func run(t *testing.T, b *Builder) (emu.Result, *bin.Binary, *DebugInfo) {
	t.Helper()
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m, err := emu.Load(img, emu.Options{})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, img, dbg
}

// eachConfig runs the test body for every architecture and PIE setting.
func eachConfig(t *testing.T, body func(t *testing.T, a arch.Arch, pie bool)) {
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			name := a.String()
			if pie {
				name += "/pie"
			} else {
				name += "/nopie"
			}
			t.Run(name, func(t *testing.T) { body(t, a, pie) })
		}
	}
}

func TestArithmeticLoop(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		f := b.Func("main")
		f.Li(arch.R3, 0)  // sum
		f.Li(arch.R4, 10) // counter
		top := f.Here()
		f.Op3(arch.Add, arch.R3, arch.R3, arch.R4)
		f.OpI(arch.Sub, arch.R4, arch.R4, 1)
		f.BranchCondTo(arch.NE, arch.R4, top)
		f.Print(arch.R3)
		f.Li(arch.R0, 0)
		f.Halt()
		res, _, _ := run(t, b)
		if string(res.Output) != "55\n" {
			t.Errorf("output = %q, want 55", res.Output)
		}
		if res.Cycles == 0 || res.Instrs == 0 {
			t.Error("no cycles/instructions counted")
		}
	})
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		// fib(n): recursive.
		fib := b.Func("fib")
		fib.SetFrame(32)
		base := fib.NewLabel()
		fib.OpI(arch.Sub, arch.R6, arch.R1, 2)
		fib.BranchCondTo(arch.LT, arch.R6, base)
		fib.StoreLocal(arch.R1, 8)
		fib.OpI(arch.Sub, arch.R1, arch.R1, 1)
		fib.CallF("fib")
		fib.StoreLocal(arch.R0, 16)
		fib.LoadLocal(arch.R1, 8)
		fib.OpI(arch.Sub, arch.R1, arch.R1, 2)
		fib.CallF("fib")
		fib.LoadLocal(arch.R2, 16)
		fib.Op3(arch.Add, arch.R0, arch.R0, arch.R2)
		fib.Return()
		fib.Bind(base)
		fib.Mov(arch.R0, arch.R1)
		fib.Return()

		m := b.Func("main")
		m.SetFrame(16)
		m.Li(arch.R1, 15)
		m.CallF("fib")
		m.Print(arch.R0)
		m.Li(arch.R0, 0)
		m.Halt()
		b.SetEntry("main")
		res, _, _ := run(t, b)
		if string(res.Output) != "610\n" {
			t.Errorf("fib(15) output = %q, want 610", res.Output)
		}
	})
}

// switchProgram builds a program that dispatches i%5 through a jump
// table for i in [0,40) and prints an accumulated value.
func switchProgram(a arch.Arch, pie bool, opts SwitchOpts) *Builder {
	b := New(a, pie)
	f := b.Func("main")
	f.SetFrame(32)
	f.Li(arch.R3, 0) // acc
	f.Li(arch.R4, 0) // i
	top := f.Here()
	// idx = i % 5
	f.Li(arch.R7, 5)
	f.Op3(arch.Div, arch.R8, arch.R4, arch.R7)
	f.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
	f.Op3(arch.Sub, arch.R8, arch.R4, arch.R8)
	cases := make([]Label, 5)
	for i := range cases {
		cases[i] = f.NewLabel()
	}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, opts)
	for i, c := range cases {
		f.Bind(c)
		f.OpI(arch.Add, arch.R3, arch.R3, int64(10+i*7))
		f.BranchTo(join)
	}
	f.Bind(def)
	f.OpI(arch.Add, arch.R3, arch.R3, 1000)
	f.Bind(join)
	f.OpI(arch.Add, arch.R4, arch.R4, 1)
	f.OpI(arch.Sub, arch.R9, arch.R4, 40)
	f.BranchCondTo(arch.LT, arch.R9, top)
	f.Print(arch.R3)
	f.Halt()
	return b
}

func TestSwitchJumpTables(t *testing.T) {
	// 8 iterations of each case 0..4: acc = 8*(10+17+24+31+38) = 960.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		for _, opts := range []SwitchOpts{{}, {SpillIndex: true}, {OpaqueBase: true}} {
			res, img, dbg := run(t, switchProgram(a, pie, opts))
			if string(res.Output) != "960\n" {
				t.Errorf("opts %+v: output = %q, want 960", opts, res.Output)
			}
			if len(dbg.Tables) != 1 {
				t.Fatalf("opts %+v: %d tables in debug info", opts, len(dbg.Tables))
			}
			tbl := dbg.Tables[0]
			if tbl.N != 5 {
				t.Errorf("table N = %d", tbl.N)
			}
			if a == arch.PPC && !tbl.InText {
				t.Error("ppc jump table must be embedded in .text")
			}
			if a == arch.PPC {
				txt := img.Text()
				if tbl.Addr < txt.Addr || tbl.Addr >= txt.End() {
					t.Error("ppc table address outside .text")
				}
			}
			if a == arch.A64 && tbl.EntrySize > 2 {
				t.Errorf("a64 table entry size = %d, want 1 or 2", tbl.EntrySize)
			}
			if a == arch.X64 && !pie && tbl.Style != TableAbs64 {
				t.Errorf("x64 non-pie table style = %s, want abs64", tbl.Style)
			}
			if a == arch.X64 && pie && tbl.Style != TableRel32 {
				t.Errorf("x64 pie table style = %s, want rel32", tbl.Style)
			}
		}
	})
}

func TestIndirectCallsThroughGlobals(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		cb := b.Func("callee")
		cb.OpI(arch.Add, arch.R0, arch.R1, 5)
		cb.Return()
		b.FuncPtrGlobal("fp", "callee", 0)

		m := b.Func("main")
		m.SetFrame(32)
		m.Li(arch.R1, 37)
		m.CallPtr(arch.R9, "fp")
		m.Print(arch.R0)
		// Indirect call through a stack slot.
		m.Li(arch.R1, 100)
		m.LoadGlobal(arch.R9, arch.R9, "fp", 8)
		m.CallStackSlot(arch.R9, 8)
		m.Print(arch.R0)
		m.Halt()
		b.SetEntry("main")
		res, img, _ := run(t, b)
		if string(res.Output) != "42\n105\n" {
			t.Errorf("output = %q", res.Output)
		}
		// PIE must carry a relocation for the pointer cell.
		sym, _ := img.SymbolByName("fp")
		if pie && !img.HasReloc(sym.Addr) {
			t.Error("pie binary missing RelocRelative for function pointer cell")
		}
		if !pie && img.HasReloc(sym.Addr) {
			t.Error("non-pie binary has an unexpected runtime relocation")
		}
	})
}

func TestFuncPtrPlusOneGoIdiom(t *testing.T) {
	// The Listing 1 pattern: a pointer cell holds callee+nopLen, so the
	// call skips the leading nop.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		nopLen := int64(1)
		if a.FixedWidth() {
			nopLen = 4
		}
		b := New(a, pie)
		cb := b.Func("goexit")
		cb.Nop() // skipped by the +1 pointer
		cb.OpI(arch.Add, arch.R0, arch.R1, 1)
		cb.Return()
		b.FuncPtrGlobal("fp1", "goexit", nopLen)
		m := b.Func("main")
		m.SetFrame(16)
		m.Li(arch.R1, 41)
		m.CallPtr(arch.R9, "fp1")
		m.Print(arch.R0)
		m.Halt()
		b.SetEntry("main")
		res, _, _ := run(t, b)
		if string(res.Output) != "42\n" {
			t.Errorf("output = %q", res.Output)
		}
	})
}

func TestIndirectTailCall(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		fin := b.Func("finish")
		fin.OpI(arch.Add, arch.R0, arch.R1, 2)
		fin.Return()
		b.FuncPtrGlobal("fp", "finish", 0)
		// hop loads the target and tail-jumps: control returns straight
		// to hop's caller.
		hop := b.Func("hop")
		hop.OpI(arch.Add, arch.R1, arch.R1, 10)
		hop.LoadGlobal(arch.R9, arch.R9, "fp", 8)
		hop.TailJumpReg(arch.R9)

		m := b.Func("main")
		m.SetFrame(16)
		m.Li(arch.R1, 30)
		m.CallF("hop")
		m.Print(arch.R0)
		m.Halt()
		b.SetEntry("main")
		res, _, _ := run(t, b)
		if string(res.Output) != "42\n" {
			t.Errorf("output = %q", res.Output)
		}
	})
}

func TestExceptions(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		b.SetMeta("lang", "c++")
		b.SetMeta("exceptions", "1")
		// thrower throws unconditionally, two frames below the catch.
		th := b.Func("thrower")
		th.Throw()
		th.Return()
		mid := b.Func("mid")
		mid.SetFrame(24)
		mid.CallF("thrower")
		mid.OpI(arch.Add, arch.R3, arch.R3, 999) // skipped by the throw
		mid.Return()

		m := b.Func("main")
		m.SetFrame(32)
		catch := m.NewLabel()
		done := m.NewLabel()
		m.Li(arch.R3, 1)
		m.BeginTry()
		m.CallF("mid")
		m.EndTry(catch)
		m.Li(arch.R3, 2) // skipped: exception lands at catch
		m.BranchTo(done)
		m.Bind(catch)
		m.OpI(arch.Add, arch.R3, arch.R3, 40)
		m.Bind(done)
		m.Print(arch.R3)
		m.Halt()
		b.SetEntry("main")
		res, img, _ := run(t, b)
		if string(res.Output) != "41\n" {
			t.Errorf("output = %q, want 41 (catch executed, post-call skipped)", res.Output)
		}
		if res.Unwinds == 0 {
			t.Error("no frames were unwound")
		}
		if img.Section(bin.SecEhFrame) == nil {
			t.Error("no .eh_frame emitted")
		}
	})
}

func TestUncaughtExceptionFaults(t *testing.T) {
	b := New(arch.X64, false)
	f := b.Func("main")
	f.Throw()
	f.Halt()
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.Load(img, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); !emu.IsFault(err, emu.FaultUncaught) {
		t.Errorf("err = %v, want uncaught exception fault", err)
	}
}

func TestGoTraceback(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		b.SetMeta("lang", "go")
		b.SetMeta("go-runtime", "1")
		leafF := b.Func("leaf")
		leafF.SetFrame(16)
		leafF.I(arch.Instr{Kind: arch.Syscall, Imm: emu.SysTraceback})
		leafF.Return()
		midF := b.Func("mid")
		midF.SetFrame(24)
		midF.CallF("leaf")
		midF.Return()
		m := b.Func("main")
		m.SetFrame(32)
		m.CallF("mid")
		m.Print(arch.R0)
		m.Halt()
		b.SetEntry("main")
		res, img, _ := run(t, b)
		if res.Walks != 1 {
			t.Errorf("walks = %d, want 1", res.Walks)
		}
		out := string(res.Output)
		if !strings.HasPrefix(out, "tb:") {
			t.Errorf("output = %q, want traceback checksum", out)
		}
		if img.Section(bin.SecGoPCLN) == nil {
			t.Error("go binary missing .gopclntab")
		}
	})
}

func TestLeafFrameLayout(t *testing.T) {
	// Leaf functions on fixed-width ISAs must not save LR, and their FDE
	// must say RAInLR.
	b := New(arch.A64, false)
	leaf := b.Func("leaf")
	leaf.OpI(arch.Add, arch.R0, arch.R1, 1)
	leaf.Return()
	m := b.Func("main")
	m.SetFrame(16)
	m.CallF("leaf")
	m.Print(arch.R0)
	m.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	txt := img.Text()
	start := dbg.FuncStart["leaf"]
	first := arch.DecodeAll(arch.A64, txt.Data[start-txt.Addr:start-txt.Addr+4], start)[0]
	if first.Kind == arch.Store {
		t.Error("leaf function saves LR")
	}
}

func TestPaddingBetweenFunctions(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		f1 := b.Func("main")
		f1.Li(arch.R0, 0)
		f1.Halt()
		f2 := b.Func("f2")
		f2.Return()
		img, dbg, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		if dbg.FuncStart["f2"]%16 != 0 {
			t.Errorf("f2 start %#x not 16-aligned", dbg.FuncStart["f2"])
		}
		// Padding between functions must decode as nops.
		txt := img.Text()
		for _, pr := range dbg.PadRanges {
			for _, ins := range arch.DecodeAll(a, txt.Data[pr[0]-txt.Addr:pr[1]-txt.Addr], pr[0]) {
				if ins.Kind != arch.Nop {
					t.Errorf("padding at %#x decodes to %s", ins.Addr, ins)
				}
			}
		}
	})
}

func TestDynamicSectionsPresent(t *testing.T) {
	b := New(arch.X64, true)
	f := b.Func("main")
	f.Halt()
	b.Export("main")
	b.FuncPtrGlobal("p", "main", 0)
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{bin.SecDynSym, bin.SecDynStr, bin.SecRelaDyn, bin.SecEhFrame, bin.SecNote} {
		if img.Section(name) == nil {
			t.Errorf("missing section %s", name)
		}
	}
	if len(img.DynSymbols) == 0 {
		t.Error("no dynamic symbols")
	}
	if img.Section(bin.SecRelaDyn).Size() == 0 {
		t.Error("pie with pointer cell has empty .rela.dyn")
	}
}

func TestLinkRelocsOnlyWhenRequested(t *testing.T) {
	mk := func(keep bool) *bin.Binary {
		b := New(arch.X64, false)
		f := b.Func("main")
		f.Halt()
		b.FuncPtrGlobal("p", "main", 0)
		if keep {
			b.KeepLinkRelocs()
		}
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	if n := len(mk(false).LinkRelocs); n != 0 {
		t.Errorf("default build has %d link relocs, want 0 (linkers strip them)", n)
	}
	if n := len(mk(true).LinkRelocs); n == 0 {
		t.Error("-Wl,-q equivalent build lost its link relocations")
	}
}

func TestLinkErrors(t *testing.T) {
	b := New(arch.X64, false)
	if _, _, err := b.Link(); err == nil {
		t.Error("empty program linked")
	}
	b2 := New(arch.X64, false)
	f := b2.Func("main")
	f.CallF("missing")
	f.Halt()
	if _, _, err := b2.Link(); err == nil {
		t.Error("undefined symbol linked")
	}
	b3 := New(arch.X64, false)
	f3 := b3.Func("f")
	f3.Halt()
	b3.SetEntry("nope")
	if _, _, err := b3.Link(); err == nil {
		t.Error("missing entry linked")
	}
}

func TestSharedLibraryLink(t *testing.T) {
	b := New(arch.X64, true)
	b.SetSharedLib()
	f := b.Func("api")
	f.OpI(arch.Add, arch.R0, arch.R1, 1)
	f.Return()
	b.Export("api")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if !img.SharedLib {
		t.Error("not marked shared")
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() []byte {
		img, _, err := switchProgram(arch.A64, true, SwitchOpts{}).Link()
		if err != nil {
			t.Fatal(err)
		}
		return img.Marshal()
	}
	if string(build()) != string(build()) {
		t.Error("linking is not deterministic")
	}
}

func TestNestedTryCatch(t *testing.T) {
	// The innermost enclosing try region must win; a rethrow from the
	// inner catch propagates to the outer one.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		b.SetMeta("exceptions", "1")
		th := b.Func("thrower")
		th.Throw()
		th.Return()

		m := b.Func("main")
		m.SetFrame(48)
		outerCatch := m.NewLabel()
		innerCatch := m.NewLabel()
		done := m.NewLabel()
		m.Li(arch.R3, 0)
		m.BeginTry()
		m.BeginTry()
		m.CallF("thrower")
		m.EndTry(innerCatch)
		m.OpI(arch.Add, arch.R3, arch.R3, 111) // skipped
		m.Bind(innerCatch)
		m.OpI(arch.Add, arch.R3, arch.R3, 1) // inner catch runs
		m.Throw()                            // rethrow to the outer region
		m.EndTry(outerCatch)
		m.BranchTo(done)
		m.Bind(outerCatch)
		m.OpI(arch.Add, arch.R3, arch.R3, 40) // outer catch runs
		m.Bind(done)
		m.Print(arch.R3)
		m.Halt()
		b.SetEntry("main")
		res, _, _ := run(t, b)
		if string(res.Output) != "41\n" {
			t.Errorf("output = %q, want 41 (inner + outer catch)", res.Output)
		}
	})
}

func TestDeepUnwindThroughManyFrames(t *testing.T) {
	// A throw ten frames deep must unwind through every intermediate
	// frame to the only try region at the top.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		b := New(a, pie)
		b.SetMeta("exceptions", "1")
		const depth = 10
		for i := depth - 1; i >= 0; i-- {
			f := b.Func(fmt.Sprintf("lvl%d", i))
			f.SetFrame(int64(16 + 8*(i%4)))
			if i == depth-1 {
				f.Throw()
			} else {
				f.CallF(fmt.Sprintf("lvl%d", i+1))
			}
			f.Return()
		}
		m := b.Func("main")
		m.SetFrame(32)
		catch := m.NewLabel()
		m.Li(arch.R3, 1)
		m.BeginTry()
		m.CallF("lvl0")
		m.EndTry(catch)
		m.Li(arch.R3, 999) // skipped
		m.Bind(catch)
		m.Print(arch.R3)
		m.Halt()
		b.SetEntry("main")
		res, _, _ := run(t, b)
		if string(res.Output) != "1\n" {
			t.Errorf("output = %q, want 1", res.Output)
		}
		if res.Unwinds < depth {
			t.Errorf("unwound %d frames, want >= %d", res.Unwinds, depth)
		}
	})
}

func TestGlobalsAndRodata(t *testing.T) {
	b := New(arch.PPC, false)
	b.GlobalInit("inited", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	b.Global("zeroed", 16)
	b.RodataBytes("blob", []byte("constant"))
	f := b.Func("main")
	f.LoadGlobal(arch.R3, arch.R9, "inited", 8)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	res, img, _ := run(t, b)
	// little-endian 0x0807060504030201
	if string(res.Output) != "578437695752307201\n" {
		t.Errorf("output = %q", res.Output)
	}
	for _, name := range []string{"inited", "zeroed", "blob"} {
		if _, ok := img.SymbolByName(name); !ok {
			t.Errorf("symbol %s missing", name)
		}
	}
	blob, _ := img.SymbolByName("blob")
	data, err := img.ReadAt(blob.Addr, blob.Size)
	if err != nil || string(data) != "constant" {
		t.Errorf("rodata contents = %q, %v", data, err)
	}
}

func TestLiLargeConstantsFixedWidth(t *testing.T) {
	// 64-bit constants need up to four movz/movk chunks on the
	// fixed-width ISAs.
	for _, a := range []arch.Arch{arch.PPC, arch.A64} {
		for _, v := range []int64{0, 1, 0xFFFF, 0x10000, 0x123456789ABC, -1} {
			b := New(a, false)
			f := b.Func("main")
			f.Li(arch.R1, v)
			f.I(arch.Instr{Kind: arch.Syscall, Imm: emu.SysPrint})
			f.Halt()
			b.SetEntry("main")
			res, _, _ := run(t, b)
			want := fmt.Sprintf("%d\n", uint64(v))
			if string(res.Output) != want {
				t.Errorf("%s Li(%#x): output = %q, want %q", a, v, res.Output, want)
			}
		}
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("duplicate function", func() {
		b := New(arch.X64, false)
		b.Func("f")
		b.Func("f")
	})
	expectPanic("duplicate global", func() {
		b := New(arch.X64, false)
		b.Global("g", 8)
		b.Global("g", 8)
	})
	expectPanic("double bind", func() {
		b := New(arch.X64, false)
		f := b.Func("f")
		l := f.NewLabel()
		f.Bind(l)
		f.Bind(l)
	})
	expectPanic("bad frame", func() {
		b := New(arch.X64, false)
		f := b.Func("f")
		f.SetFrame(7)
	})
	expectPanic("endtry without begin", func() {
		b := New(arch.X64, false)
		f := b.Func("f")
		f.EndTry(f.NewLabel())
	})
	expectPanic("empty switch", func() {
		b := New(arch.X64, false)
		f := b.Func("f")
		f.Switch(arch.R1, arch.R2, arch.R3, nil, f.NewLabel(), SwitchOpts{})
	})
}
