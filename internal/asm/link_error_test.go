package asm

import (
	"strings"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// TestAddSectionOverlapIsErrorNotPanic pins the linker's section-layout
// error seam: a conflicting section must come back as an error from
// addSection (and therefore from Link), never as a panic out of library
// code. The cursor-driven layout cannot produce overlaps today, so the
// seam is exercised directly.
func TestAddSectionOverlapIsErrorNotPanic(t *testing.T) {
	out := bin.New(arch.X64)
	if err := addSection(out, &bin.Section{
		Name: bin.SecText, Addr: 0x1000, Data: make([]byte, 0x80),
		Flags: bin.FlagAlloc | bin.FlagExec, Align: 16,
	}); err != nil {
		t.Fatal(err)
	}

	// Overlapping range.
	err := addSection(out, &bin.Section{
		Name: bin.SecRodata, Addr: 0x1040, Data: make([]byte, 0x80),
		Flags: bin.FlagAlloc, Align: 8,
	})
	if err == nil {
		t.Fatal("overlapping section accepted")
	}
	if !strings.Contains(err.Error(), "asm: linker section layout") {
		t.Errorf("overlap error lacks linker context: %v", err)
	}

	// Duplicate name.
	err = addSection(out, &bin.Section{
		Name: bin.SecText, Addr: 0x10000, Data: make([]byte, 8),
		Flags: bin.FlagAlloc | bin.FlagExec, Align: 16,
	})
	if err == nil {
		t.Fatal("duplicate section accepted")
	}

	// The failed adds must not have corrupted the image.
	if n := len(out.Sections); n != 1 {
		t.Errorf("binary has %d sections after rejected adds, want 1", n)
	}
}
