package asm

import (
	"strings"
	"testing"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
)

const demoSource = `
; a loop summing 1..10, then a jump-table dispatch
.arch %ARCH%
.meta lang c
.global scratch 16
.func helper
    addi r0, r1, 5
    ret
.func main frame=32
    li r3, 0
    li r4, 10
loop:
    add r3, r3, r4
    subi r4, r4, 1
    bne r4, loop
    st r3, 8
    mov r1, r3
    call helper
    ld r3, 8
    add r3, r3, r0
    li r8, 1
    switch r8, r9, r10, [c0 c1 c2], dflt
c0:
    addi r3, r3, 10
    b join
c1:
    addi r3, r3, 20
    b join
c2:
    addi r3, r3, 30
    b join
dflt:
    addi r3, r3, 999
join:
    print r3
    li r0, 0
    halt
.entry main
`

func assembleDemo(t *testing.T, archName string) *bin.Binary {
	t.Helper()
	src := strings.ReplaceAll(demoSource, "%ARCH%", archName)
	img, dbg, err := AssembleText(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbg.FuncStart) != 2 {
		t.Fatalf("expected 2 functions, got %d", len(dbg.FuncStart))
	}
	return img
}

func TestAssembleTextRunsOnAllArches(t *testing.T) {
	// sum(1..10)=55, helper adds 5 -> 115, case 1 adds 20 -> 135.
	for _, name := range []string{"x64", "ppc", "a64"} {
		img := assembleDemo(t, name)
		m, err := emu.Load(img, emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(res.Output) != "135\n" {
			t.Errorf("%s: output = %q, want 135", name, res.Output)
		}
	}
}

func TestAssembleTextDirectives(t *testing.T) {
	src := `
.arch x64
.pie
.meta lang c++
.meta exceptions 1
.fnptr fp thrower 0
.func thrower
    throw
    ret
.func main frame=32
.try
    call thrower
.endtry catch
    li r3, 1
    b done
catch:
    li r3, 42
done:
    print r3
    halt
.entry main
`
	img, _, err := AssembleText(src)
	if err != nil {
		t.Fatal(err)
	}
	if !img.PIE || !img.UsesExceptions() {
		t.Error("directives not honoured")
	}
	m, err := emu.Load(img, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "42\n" {
		t.Errorf("output = %q, want 42 (catch taken)", res.Output)
	}
}

func TestAssembleTextErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no arch", "li r1, 5"},
		{"bad arch", ".arch mips"},
		{"instr outside func", ".arch x64\nli r1, 5"},
		{"bad register", ".arch x64\n.func f\nli r99, 5"},
		{"bad mnemonic", ".arch x64\n.func f\nfrobnicate r1"},
		{"late pie", ".arch x64\n.func f\nret\n.pie"},
		{"bad directive", ".arch x64\n.bogus"},
		{"missing entry", ".arch x64\n.func f\nret\n.entry nope"},
		{"endtry without label", ".arch x64\n.func f\n.try\n.endtry"},
	}
	for _, tc := range cases {
		if _, _, err := AssembleText(tc.src); err == nil {
			t.Errorf("%s: assembled without error", tc.name)
		}
	}
}

func TestAssembleTextCommentsAndLabels(t *testing.T) {
	src := `
.arch a64            ; trailing comment
.func main           ; another
    li r3, 7         ; load
lbl:                 ; label comment
    subi r3, r3, 1
    bne r3, lbl
    print r3
    halt
.entry main
`
	img, _, err := AssembleText(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := emu.Load(img, emu.Options{})
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "0\n" {
		t.Errorf("output = %q", res.Output)
	}
}
