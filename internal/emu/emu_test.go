package emu

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// rawBinary assembles the given instructions into a minimal binary.
func rawBinary(t *testing.T, a arch.Arch, pie bool, instrs []arch.Instr) *bin.Binary {
	t.Helper()
	enc := arch.ForArch(a)
	var text []byte
	for _, ins := range instrs {
		bts, err := enc.Encode(ins)
		if err != nil {
			t.Fatalf("encode %s: %v", ins, err)
		}
		text = append(text, bts...)
	}
	b := bin.New(a)
	b.PIE = pie
	b.Entry = 0x401000
	if _, err := b.AddSection(&bin.Section{Name: bin.SecText, Addr: 0x401000, Data: text, Flags: bin.FlagAlloc | bin.FlagExec}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHaltExitCode(t *testing.T) {
	for _, a := range arch.All() {
		mov := arch.Instr{Kind: arch.MovImm16, Rd: arch.R0, Imm: 7}
		if a == arch.X64 {
			mov = arch.Instr{Kind: arch.MovImm, Rd: arch.R0, Imm: 7}
		}
		b := rawBinary(t, a, false, []arch.Instr{mov, {Kind: arch.Halt}})
		m, err := Load(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil || res.Exit != 7 {
			t.Errorf("%s: exit = %d, err = %v", a, res.Exit, err)
		}
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	b := rawBinary(t, arch.X64, false, []arch.Instr{{Kind: arch.Illegal}})
	m, _ := Load(b, Options{})
	if _, err := m.Run(); !IsFault(err, FaultIllegal) {
		t.Errorf("err = %v, want illegal instruction fault", err)
	}
}

func TestFetchOutsideTextFaults(t *testing.T) {
	b := rawBinary(t, arch.X64, false, []arch.Instr{{Kind: arch.Branch, Imm: 0x5000}})
	m, _ := Load(b, Options{})
	if _, err := m.Run(); !IsFault(err, FaultFetch) {
		t.Errorf("err = %v, want fetch fault", err)
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	b := rawBinary(t, arch.A64, false, []arch.Instr{
		{Kind: arch.ALU, Op: arch.Div, Rd: arch.R0, Rs1: arch.R1, Rs2: arch.R2},
	})
	m, _ := Load(b, Options{})
	if _, err := m.Run(); !IsFault(err, FaultDiv) {
		t.Errorf("err = %v, want div fault", err)
	}
}

func TestBudgetFault(t *testing.T) {
	// Infinite loop.
	b := rawBinary(t, arch.PPC, false, []arch.Instr{{Kind: arch.Branch, Imm: 0}})
	m, _ := Load(b, Options{MaxInstrs: 1000})
	if _, err := m.Run(); !IsFault(err, FaultBudget) {
		t.Errorf("err = %v, want budget fault", err)
	}
}

func TestUnhandledTrapFaults(t *testing.T) {
	b := rawBinary(t, arch.X64, false, []arch.Instr{{Kind: arch.Trap}})
	m, _ := Load(b, Options{})
	if _, err := m.Run(); !IsFault(err, FaultTrap) {
		t.Errorf("err = %v, want trap fault", err)
	}
}

// stubRuntime implements Runtime for hook tests.
type stubRuntime struct {
	traps map[uint64]uint64
}

func (s *stubRuntime) TrapTarget(pc uint64) (uint64, bool) { v, ok := s.traps[pc]; return v, ok }
func (s *stubRuntime) TranslateRA(pc uint64) uint64        { return pc }
func (s *stubRuntime) WrapsUnwind() bool                   { return false }
func (s *stubRuntime) PatchesGoRuntime() bool              { return false }

func TestTrapHandlerRedirects(t *testing.T) {
	// trap at 0x401000; handler sends control to the halt at 0x401002.
	b := rawBinary(t, arch.X64, false, []arch.Instr{
		{Kind: arch.Trap},
		{Kind: arch.Illegal},
		{Kind: arch.Halt},
	})
	rt := &stubRuntime{traps: map[uint64]uint64{0x401000: 0x401002}}
	m, _ := Load(b, Options{Runtime: rt})
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Traps != 1 {
		t.Errorf("traps = %d, want 1", res.Traps)
	}
	if res.Cycles < DefaultCosts().Trap {
		t.Errorf("cycles = %d: trap cost not charged", res.Cycles)
	}
}

func TestPIERelocationApplied(t *testing.T) {
	// A PIE binary with a pointer cell; the loader must rebase it.
	b := rawBinary(t, arch.X64, true, []arch.Instr{
		{Kind: arch.LoadPC, Rd: arch.R1, Size: 8, Imm: 0x1000}, // reads the cell
		{Kind: arch.Syscall, Imm: SysPrint},
		{Kind: arch.Halt},
	})
	cell := make([]byte, 8)
	if _, err := b.AddSection(&bin.Section{Name: bin.SecData, Addr: 0x402000, Data: cell, Flags: bin.FlagAlloc | bin.FlagWrite}); err != nil {
		t.Fatal(err)
	}
	b.Relocs = append(b.Relocs, bin.Reloc{Kind: bin.RelocRelative, Off: 0x402000, Addend: 0x401000})
	m, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := "366418595840\n" // 0x401000 + DefaultPIEBase
	if string(res.Output) != want {
		t.Errorf("output = %q, want %q", res.Output, want)
	}
}

func TestICacheBehaviour(t *testing.T) {
	var c ICache
	if c.Access(0) {
		t.Error("cold cache hit")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next line hit while cold")
	}
	// Fill one set beyond associativity: line 0 must be evicted.
	for w := 1; w <= icacheWays; w++ {
		c.Access(uint64(w) * 64 * icacheSets)
	}
	if c.Access(0) {
		t.Error("line survived eviction")
	}
	if c.Misses == 0 || c.Accesses == 0 {
		t.Error("counters not updated")
	}
}

func TestCostModelCharges(t *testing.T) {
	costs := DefaultCosts()
	if costs.instrCost(arch.Instr{Kind: arch.Load}) <= costs.instrCost(arch.Instr{Kind: arch.Nop}) {
		t.Error("loads must cost more than nops")
	}
	div := arch.Instr{Kind: arch.ALU, Op: arch.Div}
	add := arch.Instr{Kind: arch.ALU, Op: arch.Add}
	if costs.instrCost(div) <= costs.instrCost(add) {
		t.Error("div must cost more than add")
	}
	if costs.Trap < 100 {
		t.Error("trap delivery must be expensive (signal model)")
	}
	if costs.UnwindFrame <= costs.RATranslate {
		t.Error("one frame unwind must dominate one RA translation (Section 6 premise)")
	}
}

func TestMemoryReadWriteSizes(t *testing.T) {
	m := NewMemory()
	for _, size := range []uint8{1, 2, 4, 8} {
		if err := m.Write(0x5000, 0x1122334455667788, size); err != nil {
			t.Fatal(err)
		}
		v, err := m.Read(0x5000, size)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0x1122334455667788) & (1<<(8*uint(size)) - 1)
		if size == 8 {
			want = 0x1122334455667788
		}
		if v != want {
			t.Errorf("size %d: read %#x, want %#x", size, v, want)
		}
	}
	// Cross-page access.
	if err := m.Write(pageSize-3, 0xAABBCCDDEEFF, 8); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Read(pageSize-3, 8)
	if v != 0xAABBCCDDEEFF {
		t.Errorf("cross-page read %#x", v)
	}
	if _, err := m.Read(0, 9); err == nil {
		t.Error("size 9 read accepted")
	}
}

func TestFetchWindowRespectsExecRanges(t *testing.T) {
	m := NewMemory()
	m.Map(0x1000, []byte{1, 2, 3, 4}, true)
	m.Map(0x2000, []byte{5, 6}, false)
	if w := m.FetchWindow(0x1002, 10); len(w) != 2 || w[0] != 3 {
		t.Errorf("window = %v", w)
	}
	if m.FetchWindow(0x2000, 4) != nil {
		t.Error("fetched from non-executable range")
	}
	if !m.Executable(0x1003) || m.Executable(0x1004) || m.Executable(0x2000) {
		t.Error("Executable ranges wrong")
	}
}

func TestSignExtendingLoads(t *testing.T) {
	for _, a := range arch.All() {
		instrs := []arch.Instr{
			{Kind: arch.MovImm16, Rd: arch.R2, Imm: 0x2100}, // address low bits
			{Kind: arch.MovK16, Rd: arch.R2, Imm: 0x40, Shift: 1},
			{Kind: arch.Load, Rd: arch.R1, Rs1: arch.R2, Size: 4, Signed: true},
			{Kind: arch.Syscall, Imm: SysPrint},
			{Kind: arch.Halt},
		}
		if a == arch.X64 {
			instrs[0] = arch.Instr{Kind: arch.MovImm, Rd: arch.R2, Imm: 0x402100}
			instrs[1] = arch.Instr{Kind: arch.Nop}
		}
		b := rawBinary(t, a, false, instrs)
		data := make([]byte, 0x200)
		// -4 as int32 little endian at offset 0x100.
		copy(data[0x100:], []byte{0xFC, 0xFF, 0xFF, 0xFF})
		if _, err := b.AddSection(&bin.Section{Name: bin.SecData, Addr: 0x402000, Data: data, Flags: bin.FlagAlloc | bin.FlagWrite}); err != nil {
			t.Fatal(err)
		}
		m, err := Load(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if string(res.Output) != "18446744073709551612\n" { // uint64(-4)
			t.Errorf("%s: output = %q", a, res.Output)
		}
	}
}

func TestExecutionTrace(t *testing.T) {
	b := rawBinary(t, arch.PPC, false, []arch.Instr{
		{Kind: arch.Nop},
		{Kind: arch.Nop},
		{Kind: arch.Halt},
	})
	m, err := Load(b, Options{TraceDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace = %#v, want 3 entries", tr)
	}
	if tr[0] != 0x401000 || tr[2] != 0x401008 {
		t.Errorf("trace = %#v", tr)
	}
	// Without the option, no trace.
	m2, _ := Load(b, Options{})
	m2.Run()
	if m2.Trace() != nil {
		t.Error("trace present without TraceDepth")
	}
}
