package emu

import "icfgpatch/internal/arch"

// Costs is the cycle cost model. Overheads in the paper's tables come
// from exactly these sources on real hardware: extra trampoline
// branches, instruction cache pollution from text↔instr ping-pong, call
// emulation work, trap-signal delivery, and per-frame unwind work.
type Costs struct {
	// Base is charged for every instruction.
	Base uint64
	// Mem is the additional cost of loads and stores.
	Mem uint64
	// Mul and Div are the additional costs of those ALU operations.
	Mul uint64
	Div uint64
	// TakenBranch is charged when control flow actually transfers.
	TakenBranch uint64
	// CallRet is the additional cost of calls and returns.
	CallRet uint64
	// Trap is the cost of delivering a trap signal to the runtime
	// library's handler and resuming — the reason trap trampolines are a
	// last resort (Section 2.2).
	Trap uint64
	// UnwindFrame is the cost of one call-frame unwind step (DWARF
	// recipe lookup plus register-state update); the paper's argument
	// that one RA translation per frame is negligible rests on this
	// being large.
	UnwindFrame uint64
	// UnwindFrameFast is the per-frame cost of the frdwarf-style
	// compiled unwinder (about 10x cheaper than DWARF interpretation).
	UnwindFrameFast uint64
	// RATranslate is the cost of one return-address translation lookup.
	RATranslate uint64
	// ThrowSetup is the fixed cost of raising an exception.
	ThrowSetup uint64
	// Syscall is the cost of an emulator service call.
	Syscall uint64
	// ICacheMiss is charged per instruction-cache line miss.
	ICacheMiss uint64
}

// DefaultCosts returns the cost model used by all experiments.
func DefaultCosts() Costs {
	return Costs{
		Base:        1,
		Mem:         2,
		Mul:         2,
		Div:         19,
		TakenBranch: 1,
		CallRet:     2,
		// Trap-signal delivery round trip (kernel entry, handler lookup,
		// context restore) is microseconds — thousands of cycles.
		Trap:            3000,
		UnwindFrame:     150,
		UnwindFrameFast: 15,
		RATranslate:     4,
		ThrowSetup:      60,
		Syscall:         12,
		ICacheMiss:      20,
	}
}

// instrCost returns the non-branch portion of an instruction's cost.
func (c *Costs) instrCost(i arch.Instr) uint64 {
	cost := c.Base
	switch i.Kind {
	case arch.Load, arch.Store, arch.LoadIdx, arch.LoadPC, arch.CallIndMem:
		cost += c.Mem
	case arch.ALU, arch.ALUImm:
		switch i.Op {
		case arch.Mul:
			cost += c.Mul
		case arch.Div:
			cost += c.Div
		}
	case arch.Syscall:
		cost += c.Syscall
	}
	return cost
}

// ICache models a small set-associative instruction cache. The rewritten
// binary's ping-pong between .text trampolines and .instr code touches
// twice the lines, which is the icache pollution Section 3 describes.
type ICache struct {
	sets [icacheSets][icacheWays]uint64
	// Misses counts line misses since creation.
	Misses uint64
	// Accesses counts line lookups.
	Accesses uint64
}

const (
	icacheLineBits = 6  // 64-byte lines
	icacheSets     = 64 // 64 sets × 8 ways × 64B = 32KB
	icacheWays     = 8
)

// Access looks up the line containing addr, returning true on hit and
// updating LRU order (move-to-front within the set).
func (c *ICache) Access(addr uint64) bool {
	c.Accesses++
	line := addr >> icacheLineBits
	set := &c.sets[line%icacheSets]
	tag := line/icacheSets + 1 // +1 so tag 0 means "empty"
	for w := 0; w < icacheWays; w++ {
		if set[w] == tag {
			copy(set[1:w+1], set[:w])
			set[0] = tag
			return true
		}
	}
	c.Misses++
	copy(set[1:], set[:icacheWays-1])
	set[0] = tag
	return false
}
