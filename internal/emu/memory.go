package emu

import "fmt"

const pageSize = 4096

// Memory is a sparse paged address space. Data reads and writes lazily
// map zero pages (the OS model of demand-paged anonymous memory), but
// instruction fetch is only allowed from ranges loaded as executable, so
// control flow escaping into unmapped or non-executable memory faults —
// the detector behind the paper's illegal-instruction verification mode.
type Memory struct {
	pages  map[uint64]*[pageSize]byte
	ranges []memRange
}

type memRange struct {
	start, end uint64
	exec       bool
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: map[uint64]*[pageSize]byte{}}
}

// Map registers [start, start+len(data)) as a loaded range, copying data
// into it.
func (m *Memory) Map(start uint64, data []byte, exec bool) {
	m.ranges = append(m.ranges, memRange{start: start, end: start + uint64(len(data)), exec: exec})
	for i, b := range data {
		if b != 0 {
			m.page(start + uint64(i))[(start+uint64(i))%pageSize] = b
		}
	}
}

func (m *Memory) page(addr uint64) *[pageSize]byte {
	base := addr / pageSize
	p := m.pages[base]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[base] = p
	}
	return p
}

// Executable reports whether addr lies in an executable mapped range.
func (m *Memory) Executable(addr uint64) bool {
	for _, r := range m.ranges {
		if r.exec && addr >= r.start && addr < r.end {
			return true
		}
	}
	return false
}

// FetchWindow returns up to max bytes of executable memory at addr for
// the decoder (fewer near the end of the range; zero if addr is not
// executable).
func (m *Memory) FetchWindow(addr uint64, max int) []byte {
	for _, r := range m.ranges {
		if r.exec && addr >= r.start && addr < r.end {
			n := uint64(max)
			if addr+n > r.end {
				n = r.end - addr
			}
			out := make([]byte, n)
			for i := range out {
				out[i] = m.page(addr + uint64(i))[(addr+uint64(i))%pageSize]
			}
			return out
		}
	}
	return nil
}

// Read returns size bytes at addr, zero-extended into a uint64.
func (m *Memory) Read(addr uint64, size uint8) (uint64, error) {
	if size == 0 || size > 8 {
		return 0, fmt.Errorf("emu: bad read size %d", size)
	}
	var v uint64
	for i := uint8(0); i < size; i++ {
		b := m.page(addr + uint64(i))[(addr+uint64(i))%pageSize]
		v |= uint64(b) << (8 * i)
	}
	return v, nil
}

// Write stores the low size bytes of v at addr.
func (m *Memory) Write(addr uint64, v uint64, size uint8) error {
	if size == 0 || size > 8 {
		return fmt.Errorf("emu: bad write size %d", size)
	}
	for i := uint8(0); i < size; i++ {
		m.page(addr + uint64(i))[(addr+uint64(i))%pageSize] = byte(v >> (8 * i))
	}
	return nil
}

// ReadU64 implements unwind.Memory.
func (m *Memory) ReadU64(addr uint64) (uint64, error) { return m.Read(addr, 8) }
