// Package emu is the deterministic machine emulator for the three
// synthetic ISAs. It loads bin.Binary images (applying PIE load bases and
// runtime relocations), interprets instructions under a cycle cost model
// with an instruction cache, and implements the language runtime
// behaviours the paper's techniques interact with: trap-signal delivery
// to a handler, C++-style exception unwinding driven by the original
// .eh_frame, and Go-style stack traceback driven by the pclntab. The
// emulated cycle count stands in for wall-clock time in every experiment.
package emu

import (
	"fmt"
	"strconv"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/unwind"
)

// Syscall numbers.
const (
	// SysPrint appends the decimal value of r1 and a newline to the
	// program output.
	SysPrint = 1
	// SysPrintChar appends the low byte of r1 to the program output.
	SysPrintChar = 2
	// SysTraceback performs a Go-runtime-style stack walk (garbage
	// collection / stack growth model): every return address on the
	// stack is resolved through the pclntab; failure to resolve aborts
	// the program like the Go runtime would. The fold of all pcvalue
	// results lands in r0 and the output, so rewritten binaries must
	// translate return addresses to match the original run.
	SysTraceback = 7
)

// Runtime is the interface through which the emulator consults the
// paper's injected runtime library (LD_PRELOAD model). A nil Runtime
// means no library is loaded: traps fault and no translation happens.
type Runtime interface {
	// TrapTarget resolves a trap trampoline address to its transfer
	// target (the signal handler's job).
	TrapTarget(pc uint64) (uint64, bool)
	// TranslateRA maps a relocated return address to its original call
	// site, passing unknown addresses through unchanged.
	TranslateRA(pc uint64) uint64
	// WrapsUnwind reports whether the library wraps the unwinder's step
	// function (C++ exception support, Section 6.1).
	WrapsUnwind() bool
	// PatchesGoRuntime reports whether the library patches
	// runtime.findfunc/runtime.pcvalue inputs (Go support, Section 6.2).
	PatchesGoRuntime() bool
}

// Options configure loading and execution.
type Options struct {
	// LoadBase shifts a PIE image; ignored for position dependent
	// binaries. Zero selects the default PIE base.
	LoadBase uint64
	// MaxInstrs bounds execution (hang detection). Zero means the
	// default of 50 million.
	MaxInstrs uint64
	// Costs overrides the cost model; nil selects DefaultCosts.
	Costs *Costs
	// Runtime is the injected runtime library, if any.
	Runtime Runtime
	// DisableICache turns off instruction cache modelling.
	DisableICache bool
	// FastUnwind swaps the DWARF-interpreting unwinder for the
	// frdwarf-style compiled unwinder (Section 2.3 of the paper): the
	// same original-address-keyed information, an order of magnitude
	// cheaper per frame. RA translation works with both.
	FastUnwind bool
	// TraceDepth keeps a ring buffer of the last N executed PCs,
	// included in fault messages and exposed via Trace() — a debugging
	// aid for diagnosing escaped control flow in rewritten binaries.
	TraceDepth int
	// ProfileAddrs lists addresses (link-time coordinates) whose
	// execution counts are recorded — the ground-truth block profile
	// that instrumentation-integrity checks compare counters against.
	ProfileAddrs []uint64
	// CaptureHeat records every control-transfer landing PC (link-time
	// coordinates) in Result.Heat: any executed instruction that is not
	// the sequential successor of the previous one — block entries,
	// branch/call targets, return landings. Aggregated through
	// profile.Build, this is the block-heat capture profile-guided
	// rewriting feeds back into the planner.
	CaptureHeat bool
	// Arg is placed in r1 at startup (the argv model: workloads select
	// their command or benchmark input through it).
	Arg uint64
	// EnforceCET makes every indirect call and indirect jump fault
	// (FaultCET) unless it lands on a landing-pad marker instruction
	// (arch.Mark) — the hardware-CFI semantics of CET's endbr. Returns
	// are not tracked (the shadow stack is out of scope). Running a
	// rewritten CFI binary under enforcement is a dynamic soundness
	// oracle: any indirect target the rewriter failed to preserve a
	// marker at faults immediately.
	EnforceCET bool
}

// DefaultPIEBase is where PIE images load unless overridden.
const DefaultPIEBase = 0x55_5000_0000

const stackTop = 0x7FFE_0000_0000
const stackSize = 1 << 20

// Result summarises a completed run.
type Result struct {
	Exit    uint64
	Output  []byte
	Cycles  uint64
	Instrs  uint64
	Traps   uint64
	Unwinds uint64 // frames stepped during exception dispatch
	Walks   uint64 // Go traceback walks performed
	ICMiss  uint64
	ICRef   uint64
	// Profile holds per-address execution counts for Options.ProfileAddrs.
	Profile map[uint64]uint64
	// Heat holds control-transfer landing counts when Options.CaptureHeat
	// was set (link-time coordinates).
	Heat map[uint64]uint64
}

// Machine is one loaded program instance.
type Machine struct {
	arch     arch.Arch
	enc      arch.Encoding
	mem      *Memory
	regs     [arch.NumRegs]uint64
	pc       uint64
	costs    Costs
	icache   *ICache
	rt       Runtime
	unwinds  *unwind.Table
	compiled *unwind.Compiled
	pctab    *unwind.PCTable
	loadBase uint64
	output   []byte
	cycles   uint64
	instrs   uint64
	traps    uint64
	unwindN  uint64
	walks    uint64
	max      uint64
	cet      bool
	halted   bool
	profile  map[uint64]uint64
	heat     map[uint64]uint64
	seqNext  uint64   // expected PC if the previous instruction fell through
	trace    []uint64 // ring buffer of executed PCs
	traceIdx int
}

// Load maps the binary into a fresh machine.
func Load(b *bin.Binary, opts Options) (*Machine, error) {
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("emu: refusing to load invalid binary: %w", err)
	}
	m := &Machine{
		arch:  b.Arch,
		enc:   arch.ForArch(b.Arch),
		mem:   NewMemory(),
		costs: DefaultCosts(),
		max:   50_000_000,
	}
	if opts.Costs != nil {
		m.costs = *opts.Costs
	}
	if opts.MaxInstrs != 0 {
		m.max = opts.MaxInstrs
	}
	if !opts.DisableICache {
		m.icache = &ICache{}
	}
	m.rt = opts.Runtime
	m.cet = opts.EnforceCET
	if len(opts.ProfileAddrs) > 0 {
		m.profile = map[uint64]uint64{}
		for _, a := range opts.ProfileAddrs {
			m.profile[a] = 0
		}
	}
	if opts.CaptureHeat {
		m.heat = map[uint64]uint64{}
	}
	if opts.TraceDepth > 0 {
		m.trace = make([]uint64, opts.TraceDepth)
	}

	if s := b.Section(bin.SecInterp); s != nil && !b.SharedLib {
		if len(s.Data) < 8 || string(s.Data[:8]) != "/lib64/l" {
			return nil, fmt.Errorf("emu: bad .interp data: %q", s.Data)
		}
	}
	if b.PIE {
		m.loadBase = DefaultPIEBase
		if opts.LoadBase != 0 {
			m.loadBase = opts.LoadBase
		}
	}
	for _, s := range b.Sections {
		if !s.Loaded() {
			continue
		}
		m.mem.Map(s.Addr+m.loadBase, s.Data, s.Flags&bin.FlagExec != 0)
	}
	// Apply runtime relocations the way the dynamic loader does.
	for _, r := range b.Relocs {
		if r.Kind == bin.RelocRelative {
			if err := m.mem.Write(r.Off+m.loadBase, uint64(r.Addend)+m.loadBase, 8); err != nil {
				return nil, err
			}
		}
	}
	// Stack.
	m.mem.Map(stackTop-stackSize, make([]byte, stackSize), false)
	m.regs[arch.SP] = stackTop - 64
	m.regs[arch.R1] = opts.Arg
	if b.Arch == arch.PPC {
		m.regs[arch.TOCReg] = b.TOCValue + m.loadBase
	}
	m.pc = b.Entry + m.loadBase

	// Language runtime tables, always read from the ORIGINAL sections —
	// the rewriter never touches .eh_frame or .gopclntab.
	if s := b.Section(bin.SecEhFrame); s != nil {
		tab, err := unwind.Decode(s.Data)
		if err != nil {
			return nil, fmt.Errorf("emu: parsing %s: %w", bin.SecEhFrame, err)
		}
		m.unwinds = tab
	} else {
		m.unwinds = unwind.NewTable(nil)
	}
	if opts.FastUnwind {
		m.compiled = unwind.Compile(m.unwinds)
	}
	if s := b.Section(bin.SecGoPCLN); s != nil {
		tab, err := unwind.DecodePCTable(s.Data)
		if err != nil {
			return nil, fmt.Errorf("emu: parsing %s: %w", bin.SecGoPCLN, err)
		}
		m.pctab = tab
	}
	return m, nil
}

// LoadBase returns the base the image was loaded at (zero for position
// dependent binaries).
func (m *Machine) LoadBase() uint64 { return m.loadBase }

// Reg returns a register value (for tests and tools).
func (m *Machine) Reg(r arch.Reg) uint64 { return m.regs[r] }

// translator returns the RA translation in effect for language-runtime
// unwinding, honouring which hooks the runtime library installed. The
// base translation rebases PIE addresses to link-time coordinates, which
// is the load-base adjustment Section 6 describes, then applies the
// .ra_map lookup if present.
func (m *Machine) translator(need func(Runtime) bool) unwind.Translator {
	return func(pc uint64) uint64 {
		if m.rt != nil && need(m.rt) {
			m.cycles += m.costs.RATranslate
			pc = m.rt.TranslateRA(pc - m.loadBase)
			return pc
		}
		return pc - m.loadBase
	}
}

// Run executes until halt, fault, or budget exhaustion.
func (m *Machine) Run() (Result, error) {
	for !m.halted {
		if m.instrs >= m.max {
			return m.result(), &Fault{Kind: FaultBudget, PC: m.pc}
		}
		if err := m.step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

func (m *Machine) result() Result {
	r := Result{
		Exit:    m.regs[arch.R0],
		Output:  m.output,
		Cycles:  m.cycles,
		Instrs:  m.instrs,
		Traps:   m.traps,
		Unwinds: m.unwindN,
		Walks:   m.walks,
	}
	if m.icache != nil {
		r.ICMiss = m.icache.Misses
		r.ICRef = m.icache.Accesses
	}
	r.Profile = m.profile
	r.Heat = m.heat
	return r
}

// MemRead reads emulated memory after a run (counter cells, globals).
// The address is in link-time coordinates; the load base is applied.
func (m *Machine) MemRead(addr uint64, size uint8) (uint64, error) {
	return m.mem.Read(addr+m.loadBase, size)
}

// Trace returns the most recently executed PCs, oldest first (empty
// unless Options.TraceDepth was set).
func (m *Machine) Trace() []uint64 {
	if m.trace == nil {
		return nil
	}
	out := make([]uint64, 0, len(m.trace))
	for i := 0; i < len(m.trace); i++ {
		pc := m.trace[(m.traceIdx+i)%len(m.trace)]
		if pc != 0 {
			out = append(out, pc)
		}
	}
	return out
}

func (m *Machine) step() error {
	window := m.mem.FetchWindow(m.pc, m.enc.MaxLen())
	if window == nil {
		return &Fault{Kind: FaultFetch, PC: m.pc}
	}
	ins, err := m.enc.Decode(window, m.pc)
	if err != nil {
		return &Fault{Kind: FaultFetch, PC: m.pc, Msg: err.Error()}
	}
	if ins.Kind == arch.Illegal {
		return &Fault{Kind: FaultIllegal, PC: m.pc}
	}
	m.instrs++
	if m.trace != nil {
		m.trace[m.traceIdx] = m.pc
		m.traceIdx = (m.traceIdx + 1) % len(m.trace)
	}
	if m.profile != nil {
		if _, ok := m.profile[m.pc-m.loadBase]; ok {
			m.profile[m.pc-m.loadBase]++
		}
	}
	if m.heat != nil {
		if m.pc != m.seqNext {
			m.heat[m.pc-m.loadBase]++
		}
		m.seqNext = m.pc + uint64(ins.EncLen)
	}
	m.cycles += m.costs.instrCost(ins)
	if m.icache != nil && !m.icache.Access(m.pc) {
		m.cycles += m.costs.ICacheMiss
	}
	next := m.pc + uint64(ins.EncLen)

	switch ins.Kind {
	case arch.Nop, arch.Mark:
		// Mark executes as a no-op; its significance is where it sits,
		// not what it does (see checkCET).
	case arch.MovImm:
		m.regs[ins.Rd] = uint64(ins.Imm)
	case arch.MovImm16:
		m.regs[ins.Rd] = uint64(ins.Imm) << (16 * ins.Shift)
	case arch.MovK16:
		mask := uint64(0xFFFF) << (16 * ins.Shift)
		m.regs[ins.Rd] = m.regs[ins.Rd]&^mask | uint64(ins.Imm)<<(16*ins.Shift)
	case arch.MovReg:
		m.regs[ins.Rd] = m.regs[ins.Rs1]
	case arch.ALU:
		v, err := aluOp(ins.Op, m.regs[ins.Rs1], m.regs[ins.Rs2])
		if err != nil {
			return &Fault{Kind: FaultDiv, PC: m.pc}
		}
		m.regs[ins.Rd] = v
	case arch.ALUImm:
		v, err := aluOp(ins.Op, m.regs[ins.Rs1], uint64(ins.Imm))
		if err != nil {
			return &Fault{Kind: FaultDiv, PC: m.pc}
		}
		m.regs[ins.Rd] = v
	case arch.AddIS:
		m.regs[ins.Rd] = m.regs[ins.Rs1] + uint64(ins.Imm<<16)
	case arch.AddImm16:
		m.regs[ins.Rd] = m.regs[ins.Rs1] + uint64(ins.Imm)
	case arch.Load:
		v, err := m.mem.Read(m.regs[ins.Rs1]+uint64(ins.Imm), ins.Size)
		if err != nil {
			return &Fault{Kind: FaultFetch, PC: m.pc, Msg: err.Error()}
		}
		m.regs[ins.Rd] = extend(v, ins)
	case arch.Store:
		if err := m.mem.Write(m.regs[ins.Rs1]+uint64(ins.Imm), m.regs[ins.Rs2], ins.Size); err != nil {
			return &Fault{Kind: FaultFetch, PC: m.pc, Msg: err.Error()}
		}
	case arch.LoadIdx:
		addr := m.regs[ins.Rs1] + m.regs[ins.Rs2]*uint64(ins.Scale) + uint64(ins.Imm)
		v, err := m.mem.Read(addr, ins.Size)
		if err != nil {
			return &Fault{Kind: FaultFetch, PC: m.pc, Msg: err.Error()}
		}
		m.regs[ins.Rd] = extend(v, ins)
	case arch.Lea:
		m.regs[ins.Rd] = m.pc + uint64(ins.Imm)
	case arch.LeaHi:
		m.regs[ins.Rd] = (m.pc &^ 0xFFF) + uint64(ins.Imm)
	case arch.LoadPC:
		v, err := m.mem.Read(m.pc+uint64(ins.Imm), ins.Size)
		if err != nil {
			return &Fault{Kind: FaultFetch, PC: m.pc, Msg: err.Error()}
		}
		m.regs[ins.Rd] = extend(v, ins)
	case arch.Branch:
		m.cycles += m.costs.TakenBranch
		next = m.pc + uint64(ins.Imm)
	case arch.BranchCond:
		if ins.Cond.Holds(int64(m.regs[ins.Rs1])) {
			m.cycles += m.costs.TakenBranch
			next = m.pc + uint64(ins.Imm)
		}
	case arch.Call:
		if err := m.pushRA(next); err != nil {
			return err
		}
		m.cycles += m.costs.CallRet
		next = m.pc + uint64(ins.Imm)
	case arch.CallInd:
		if err := m.checkCET(m.regs[ins.Rs1]); err != nil {
			return err
		}
		if err := m.pushRA(next); err != nil {
			return err
		}
		m.cycles += m.costs.CallRet
		next = m.regs[ins.Rs1]
	case arch.CallIndMem:
		target, err := m.mem.Read(m.regs[ins.Rs1]+uint64(ins.Imm), 8)
		if err != nil {
			return &Fault{Kind: FaultFetch, PC: m.pc, Msg: err.Error()}
		}
		if err := m.checkCET(target); err != nil {
			return err
		}
		if err := m.pushRA(next); err != nil {
			return err
		}
		m.cycles += m.costs.CallRet
		next = target
	case arch.JumpInd:
		if err := m.checkCET(m.regs[ins.Rs1]); err != nil {
			return err
		}
		m.cycles += m.costs.TakenBranch
		next = m.regs[ins.Rs1]
	case arch.Ret:
		m.cycles += m.costs.CallRet
		ra, err := m.popRA()
		if err != nil {
			return err
		}
		if ra == 0 {
			return &Fault{Kind: FaultRet, PC: m.pc}
		}
		next = ra
	case arch.Trap:
		m.traps++
		m.cycles += m.costs.Trap
		if m.rt != nil {
			if target, ok := m.rt.TrapTarget(m.pc - m.loadBase); ok {
				next = target + m.loadBase
				break
			}
		}
		return &Fault{Kind: FaultTrap, PC: m.pc}
	case arch.Halt:
		m.halted = true
	case arch.Syscall:
		if err := m.syscall(ins.Imm); err != nil {
			return err
		}
	case arch.Throw:
		target, err := m.dispatchException()
		if err != nil {
			return err
		}
		next = target
	default:
		return &Fault{Kind: FaultIllegal, PC: m.pc, Msg: ins.String()}
	}
	m.pc = next
	return nil
}

// checkCET enforces landing-pad semantics on an indirect transfer
// target: under Options.EnforceCET the instruction at target must be a
// Mark, anything else is a control-protection fault. The fault is
// reported at the target (where hardware raises #CP) with the
// transferring instruction's PC in the message.
func (m *Machine) checkCET(target uint64) error {
	if !m.cet {
		return nil
	}
	window := m.mem.FetchWindow(target, m.enc.MaxLen())
	if window == nil {
		return &Fault{Kind: FaultCET, PC: target, Msg: fmt.Sprintf("indirect transfer from %#x to unmapped target", m.pc)}
	}
	ins, err := m.enc.Decode(window, target)
	if err != nil || ins.Kind != arch.Mark {
		return &Fault{Kind: FaultCET, PC: target, Msg: fmt.Sprintf("indirect transfer from %#x", m.pc)}
	}
	return nil
}

// extend applies the load's zero- or sign-extension to a raw value.
func extend(v uint64, ins arch.Instr) uint64 {
	if !ins.Signed || ins.Size >= 8 {
		return v
	}
	shift := 64 - 8*uint(ins.Size)
	return uint64(int64(v<<shift) >> shift)
}

func aluOp(op arch.ALUOp, a, b uint64) (uint64, error) {
	switch op {
	case arch.Add:
		return a + b, nil
	case arch.Sub:
		return a - b, nil
	case arch.Mul:
		return a * b, nil
	case arch.Div:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case arch.And:
		return a & b, nil
	case arch.Or:
		return a | b, nil
	case arch.Xor:
		return a ^ b, nil
	case arch.Shl:
		return a << (b & 63), nil
	default:
		return a >> (b & 63), nil
	}
}

// pushRA records the return address: on the stack for X64, in LR for the
// fixed-width ISAs.
func (m *Machine) pushRA(ra uint64) error {
	if m.arch.FixedWidth() {
		m.regs[arch.LR] = ra
		return nil
	}
	m.regs[arch.SP] -= 8
	return m.mem.Write(m.regs[arch.SP], ra, 8)
}

// popRA recovers the return address for Ret.
func (m *Machine) popRA() (uint64, error) {
	if m.arch.FixedWidth() {
		return m.regs[arch.LR], nil
	}
	ra, err := m.mem.Read(m.regs[arch.SP], 8)
	if err != nil {
		return 0, err
	}
	m.regs[arch.SP] += 8
	return ra, nil
}

func (m *Machine) syscall(num int64) error {
	switch num {
	case SysPrint:
		m.output = append(m.output, strconv.FormatUint(m.regs[arch.R1], 10)...)
		m.output = append(m.output, '\n')
	case SysPrintChar:
		m.output = append(m.output, byte(m.regs[arch.R1]))
	case SysTraceback:
		return m.traceback()
	default:
		return &Fault{Kind: FaultIllegal, PC: m.pc, Msg: fmt.Sprintf("unknown syscall %d", num)}
	}
	return nil
}

// dispatchException implements the C++-style personality routine: walk
// frames using the ORIGINAL unwind table, translating return addresses
// when the runtime library wraps the stepper, until a landing pad covers
// the (translated) PC. Returns the address execution resumes at — an
// original-code address, which is why catch blocks are CFL blocks.
func (m *Machine) dispatchException() (uint64, error) {
	translate := m.translator(Runtime.WrapsUnwind)
	pc := translate(m.pc)
	sp := m.regs[arch.SP]
	lr := m.regs[arch.LR]
	m.cycles += m.costs.ThrowSetup
	for depth := 0; depth < 1024; depth++ {
		// Return addresses point just past the call, so outer frames are
		// looked up at pc-1 (the standard DWARF personality adjustment);
		// the throwing frame's own pc is used as-is.
		lookupPC := pc
		if depth > 0 {
			lookupPC = pc - 1
		}
		pad, padOK, covered := m.padFor(lookupPC)
		if !covered {
			return 0, &Fault{Kind: FaultUnwind, PC: m.pc, Msg: fmt.Sprintf("no unwind info for %#x", pc)}
		}
		if padOK {
			m.regs[arch.SP] = sp
			m.cycles += m.costs.TakenBranch
			return pad.Pad + m.loadBase, nil
		}
		m.cycles += m.unwindFrameCost()
		m.unwindN++
		fr, err := m.stepFrame(translate, pc, sp, lr)
		if err != nil {
			return 0, &Fault{Kind: FaultUnwind, PC: m.pc, Msg: err.Error()}
		}
		if fr.RawPC == 0 {
			return 0, &Fault{Kind: FaultUncaught, PC: m.pc}
		}
		pc, sp, lr = fr.PC, fr.SP, 0
	}
	return 0, &Fault{Kind: FaultUncaught, PC: m.pc, Msg: "unwind depth exceeded"}
}

// unwindFrameCost returns the per-frame unwinding cost in effect.
func (m *Machine) unwindFrameCost() uint64 {
	if m.compiled != nil {
		return m.costs.UnwindFrameFast
	}
	return m.costs.UnwindFrame
}

// padFor consults the active unwinder for a landing pad at pc. The
// second result reports a pad hit; the third reports whether pc has any
// unwind coverage at all.
func (m *Machine) padFor(pc uint64) (unwind.LandingPad, bool, bool) {
	if m.compiled != nil {
		if !m.compiled.Covers(pc) {
			return unwind.LandingPad{}, false, false
		}
		pad, ok := m.compiled.PadFor(pc)
		return pad, ok, true
	}
	fde, ok := m.unwinds.Find(pc)
	if !ok {
		return unwind.LandingPad{}, false, false
	}
	pad, ok := fde.PadFor(pc)
	return pad, ok, true
}

// stepFrame performs one frame step with the active unwinder.
func (m *Machine) stepFrame(translate unwind.Translator, pc, sp, lr uint64) (unwind.Frame, error) {
	if m.compiled != nil {
		return m.compiled.Step(m.arch, m.mem, translate, pc, sp, lr)
	}
	return unwind.Step(m.arch, m.unwinds, m.mem, translate, pc, sp, lr)
}

// traceback implements the Go runtime stack walk: every frame's PC must
// resolve through the pclntab (runtime.findfunc), and the fold of
// pcvalue results is the observable outcome. The RA translation hook is
// the entry instrumentation of runtime.findfunc/runtime.pcvalue from
// Section 6.2.
func (m *Machine) traceback() error {
	if m.pctab == nil {
		return &Fault{Kind: FaultGoRuntime, PC: m.pc, Msg: "no pclntab"}
	}
	m.walks++
	translate := m.translator(Runtime.PatchesGoRuntime)
	var frames []unwind.Frame
	var err error
	if m.compiled != nil {
		frames, err = m.compiled.Walk(m.arch, m.mem, translate, m.pc, m.regs[arch.SP], m.regs[arch.LR], 256)
	} else {
		frames, err = unwind.Walk(m.arch, m.unwinds, m.mem, translate, m.pc, m.regs[arch.SP], m.regs[arch.LR], 256)
	}
	if err != nil {
		return &Fault{Kind: FaultGoRuntime, PC: m.pc, Msg: err.Error()}
	}
	var sum uint64
	for _, fr := range frames {
		m.cycles += m.unwindFrameCost()
		v, ok := m.pctab.PCValue(fr.PC)
		if !ok {
			return &Fault{Kind: FaultGoRuntime, PC: m.pc, Msg: fmt.Sprintf("findfunc failed for %#x", fr.PC)}
		}
		sum = sum*131 + v
	}
	m.regs[arch.R0] = sum
	m.output = append(m.output, "tb:"...)
	m.output = append(m.output, strconv.FormatUint(sum, 16)...)
	m.output = append(m.output, '\n')
	return nil
}
