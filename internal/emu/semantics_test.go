package emu

import (
	"fmt"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// execFixed runs a fixed-width instruction sequence (plus halt) and
// returns the machine for register inspection.
func execFixed(t *testing.T, a arch.Arch, instrs []arch.Instr) *Machine {
	t.Helper()
	b := rawBinary(t, a, false, append(instrs, arch.Instr{Kind: arch.Halt}))
	m, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSemanticsMovChain(t *testing.T) {
	// movz/movk chunk composition.
	m := execFixed(t, arch.A64, []arch.Instr{
		{Kind: arch.MovImm16, Rd: arch.R1, Imm: 0x1111},
		{Kind: arch.MovK16, Rd: arch.R1, Imm: 0x2222, Shift: 1},
		{Kind: arch.MovK16, Rd: arch.R1, Imm: 0x3333, Shift: 2},
		{Kind: arch.MovK16, Rd: arch.R1, Imm: 0x4444, Shift: 3},
		// movz resets untouched chunks.
		{Kind: arch.MovImm16, Rd: arch.R2, Imm: 0x5555, Shift: 2},
	})
	if got := m.Reg(arch.R1); got != 0x4444333322221111 {
		t.Errorf("movk chain = %#x", got)
	}
	if got := m.Reg(arch.R2); got != 0x5555<<32 {
		t.Errorf("shifted movz = %#x", got)
	}
}

func TestSemanticsALU(t *testing.T) {
	cases := []struct {
		op   arch.ALUOp
		a, b uint64
		want uint64
	}{
		{arch.Add, 7, 5, 12},
		{arch.Sub, 7, 5, 2},
		{arch.Sub, 5, 7, ^uint64(1)}, // wraps
		{arch.Mul, 7, 5, 35},
		{arch.Div, 35, 5, 7},
		{arch.And, 0b1100, 0b1010, 0b1000},
		{arch.Or, 0b1100, 0b1010, 0b1110},
		{arch.Xor, 0b1100, 0b1010, 0b0110},
		{arch.Shl, 3, 4, 48},
		{arch.Shr, 48, 4, 3},
		{arch.Shl, 1, 65, 2}, // shift amounts mask to 6 bits
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_%d_%d", tc.op, tc.a, tc.b), func(t *testing.T) {
			m := execFixed(t, arch.PPC, []arch.Instr{
				{Kind: arch.MovImm16, Rd: arch.R1, Imm: int64(tc.a)},
				{Kind: arch.MovImm16, Rd: arch.R2, Imm: int64(tc.b & 0xFFFF)},
				{Kind: arch.ALU, Op: tc.op, Rd: arch.R3, Rs1: arch.R1, Rs2: arch.R2},
			})
			if got := m.Reg(arch.R3); got != tc.want {
				t.Errorf("got %#x, want %#x", got, tc.want)
			}
		})
	}
}

func TestSemanticsAddIS(t *testing.T) {
	m := execFixed(t, arch.PPC, []arch.Instr{
		{Kind: arch.MovImm16, Rd: arch.R1, Imm: 0x10},
		{Kind: arch.AddIS, Rd: arch.R2, Rs1: arch.R1, Imm: 2},      // +0x20000
		{Kind: arch.AddIS, Rd: arch.R3, Rs1: arch.R1, Imm: -1},     // -0x10000
		{Kind: arch.AddImm16, Rd: arch.R4, Rs1: arch.R1, Imm: -16}, // addi
	})
	if got := m.Reg(arch.R2); got != 0x20010 {
		t.Errorf("addis positive = %#x", got)
	}
	neg := int64(16) - 0x10000
	if m.Reg(arch.R3) != uint64(neg) {
		t.Errorf("addis negative = %#x", m.Reg(arch.R3))
	}
	if got := m.Reg(arch.R4); got != 0 {
		t.Errorf("addi = %#x", got)
	}
}

func TestSemanticsLeaAndLeaHi(t *testing.T) {
	// lea forms instr address + offset; adrp forms page(instr)+offset.
	b := rawBinary(t, arch.A64, false, []arch.Instr{
		{Kind: arch.Lea, Rd: arch.R1, Imm: 8},
		{Kind: arch.LeaHi, Rd: arch.R2, Imm: 0x3000},
		{Kind: arch.Halt},
	})
	m, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(arch.R1); got != 0x401000+8 {
		t.Errorf("lea = %#x", got)
	}
	if got := m.Reg(arch.R2); got != (0x401004&^0xFFF)+0x3000 {
		t.Errorf("adrp = %#x", got)
	}
}

func TestSemanticsLoadIdxAddressing(t *testing.T) {
	// base + index*scale reads.
	b := rawBinary(t, arch.X64, false, []arch.Instr{
		{Kind: arch.MovImm, Rd: arch.R2, Imm: 0x402000}, // base
		{Kind: arch.MovImm, Rd: arch.R3, Imm: 3},        // index
		{Kind: arch.LoadIdx, Rd: arch.R1, Rs1: arch.R2, Rs2: arch.R3, Size: 2, Scale: 2},
		{Kind: arch.Halt},
	})
	data := make([]byte, 16)
	data[6], data[7] = 0xCD, 0xAB // entry 3 at offset 6, uint16
	if _, err := b.AddSection(&bin.Section{Name: bin.SecData, Addr: 0x402000, Data: data, Flags: bin.FlagAlloc | bin.FlagWrite}); err != nil {
		t.Fatal(err)
	}
	m, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(arch.R1); got != 0xABCD {
		t.Errorf("loadidx = %#x", got)
	}
}

func TestSemanticsCallIndMem(t *testing.T) {
	// call through a memory slot: reads the target from [r2+8].
	b := rawBinary(t, arch.X64, false, []arch.Instr{
		{Kind: arch.MovImm, Rd: arch.R2, Imm: 0x402000},
		{Kind: arch.CallIndMem, Rs1: arch.R2, Imm: 8},
		{Kind: arch.Halt},    // returns here
		{Kind: arch.Illegal}, // padding
	})
	// Callee at 0x401030: set r0, ret.
	enc := arch.ForArch(arch.X64)
	callee := []arch.Instr{
		{Kind: arch.MovImm, Rd: arch.R0, Imm: 99},
		{Kind: arch.Ret},
	}
	text := b.Text()
	off := uint64(0x30)
	for _, ins := range callee {
		bs, _ := enc.Encode(ins)
		for len(text.Data) < int(off)+len(bs) {
			text.Data = append(text.Data, 0x90)
		}
		copy(text.Data[off:], bs)
		off += uint64(len(bs))
	}
	data := make([]byte, 16)
	target := uint64(0x401030)
	for i := 0; i < 8; i++ {
		data[8+i] = byte(target >> (8 * i))
	}
	if _, err := b.AddSection(&bin.Section{Name: bin.SecData, Addr: 0x402000, Data: data, Flags: bin.FlagAlloc | bin.FlagWrite}); err != nil {
		t.Fatal(err)
	}
	m, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 99 {
		t.Errorf("exit = %d, want 99 (callee ran and returned)", res.Exit)
	}
}

func TestSemanticsLRCallDiscipline(t *testing.T) {
	// Fixed-width calls set LR; Ret branches to it; nested calls must
	// save LR or lose the outer return address (the emulator must model
	// exactly that hazard).
	b := rawBinary(t, arch.A64, false, []arch.Instr{
		{Kind: arch.Call, Imm: 12}, // call leaf at +12
		{Kind: arch.Halt},
		{Kind: arch.Illegal},
		// leaf:
		{Kind: arch.MovImm16, Rd: arch.R0, Imm: 7},
		{Kind: arch.Ret},
	})
	m, err := Load(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit != 7 {
		t.Errorf("exit = %d", res.Exit)
	}
	if got := m.Reg(arch.LR); got != 0x401004 {
		t.Errorf("LR = %#x, want return address 0x401004", got)
	}
}
