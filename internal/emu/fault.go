package emu

import "fmt"

// FaultKind classifies execution faults.
type FaultKind uint8

// Fault kinds.
const (
	// FaultIllegal is an illegal or undecodable instruction — what the
	// verification mode's overwritten .text bytes produce when control
	// flow escapes the trampolines.
	FaultIllegal FaultKind = iota
	// FaultFetch is instruction fetch from non-executable memory.
	FaultFetch
	// FaultTrap is a trap instruction with no registered handler target.
	FaultTrap
	// FaultUnwind is a stack unwinding failure: no unwind information
	// covers a (possibly untranslated) return address.
	FaultUnwind
	// FaultUncaught is an exception that unwound past the outermost
	// frame without finding a landing pad.
	FaultUncaught
	// FaultGoRuntime is the Go runtime aborting because a traceback PC
	// resolved to no function (runtime.findfunc failure).
	FaultGoRuntime
	// FaultDiv is division by zero.
	FaultDiv
	// FaultRet is a return past the entry frame (to address 0).
	FaultRet
	// FaultBudget means the instruction budget was exhausted — a hang
	// detector, counted as a failed run.
	FaultBudget
	// FaultCET is an indirect call or jump landing on an instruction
	// that is not a landing-pad marker, raised only under
	// Options.EnforceCET — the hardware-CFI control-protection fault.
	FaultCET
)

var faultNames = [...]string{
	FaultIllegal: "illegal instruction", FaultFetch: "fetch from non-executable memory",
	FaultTrap: "unhandled trap", FaultUnwind: "stack unwinding failed",
	FaultUncaught: "uncaught exception", FaultGoRuntime: "go runtime traceback failed",
	FaultDiv: "division by zero", FaultRet: "return past entry frame",
	FaultBudget: "instruction budget exhausted",
	FaultCET:    "indirect transfer to non-landing-pad",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is an execution fault, fatal to the emulated program.
type Fault struct {
	Kind FaultKind
	PC   uint64
	Msg  string
}

// Error implements error.
func (f *Fault) Error() string {
	if f.Msg != "" {
		return fmt.Sprintf("emu: %s at pc %#x: %s", f.Kind, f.PC, f.Msg)
	}
	return fmt.Sprintf("emu: %s at pc %#x", f.Kind, f.PC)
}

// IsFault reports whether err is a Fault of the given kind.
func IsFault(err error, kind FaultKind) bool {
	f, ok := err.(*Fault)
	return ok && f.Kind == kind
}
