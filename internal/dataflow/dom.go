package dataflow

import (
	"sort"

	"icfgpatch/internal/cfg"
)

// Dominators computes the immediate dominator of every reachable block
// in the function using the classic iterative algorithm (Cooper, Harvey,
// Kennedy). The paper's Section 4.2 notes that dominator-based
// trampoline placement ("blocks that dominate blocks in B_inst", or
// post-dominators of CFL blocks) could reduce trampoline counts further;
// this analysis is the substrate such a refinement would build on, and
// the integrity checker (package core) uses it to reason about paths.
type Dominators struct {
	fn    *cfg.Func
	order []uint64          // reverse postorder of block starts
	index map[uint64]int    // block start -> rpo index
	idom  map[uint64]uint64 // block start -> immediate dominator start
}

// ComputeDominators analyses one function from its entry.
func ComputeDominators(f *cfg.Func) *Dominators {
	d := &Dominators{fn: f, index: map[uint64]int{}, idom: map[uint64]uint64{}}

	// Reverse postorder over the intra-procedural CFG.
	visited := map[uint64]bool{}
	var post []uint64
	var dfs func(uint64)
	dfs = func(start uint64) {
		if visited[start] {
			return
		}
		visited[start] = true
		blk, ok := f.BlockAt(start)
		if !ok {
			return
		}
		for _, e := range blk.Succs {
			dfs(e.To)
		}
		post = append(post, start)
	}
	dfs(f.Entry)
	for i := len(post) - 1; i >= 0; i-- {
		d.index[post[i]] = len(d.order)
		d.order = append(d.order, post[i])
	}
	if len(d.order) == 0 {
		return d
	}

	d.idom[f.Entry] = f.Entry
	changed := true
	for changed {
		changed = false
		for _, b := range d.order {
			if b == f.Entry {
				continue
			}
			blk, _ := f.BlockAt(b)
			var newIdom uint64
			have := false
			for _, p := range blk.Preds {
				if _, processed := d.idom[p]; !processed {
					continue
				}
				if !have {
					newIdom = p
					have = true
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if !have {
				continue // unreachable predecessor-wise
			}
			if d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

// intersect walks two dominator chains to their common ancestor.
func (d *Dominators) intersect(a, b uint64) uint64 {
	for a != b {
		ai, bi := d.index[a], d.index[b]
		for ai > bi {
			a = d.idom[a]
			ai = d.index[a]
		}
		for bi > ai {
			b = d.idom[b]
			bi = d.index[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of the block starting at b; the
// entry returns itself. The second result is false for unreachable
// blocks.
func (d *Dominators) IDom(b uint64) (uint64, bool) {
	v, ok := d.idom[b]
	return v, ok
}

// Dominates reports whether block a dominates block b (every path from
// the entry to b passes through a). A block dominates itself.
func (d *Dominators) Dominates(a, b uint64) bool {
	cur, ok := d.idom[b]
	if !ok {
		return false
	}
	if a == b {
		return true
	}
	for {
		if cur == a {
			return true
		}
		next, ok := d.idom[cur]
		if !ok || next == cur {
			return false
		}
		cur = next
	}
}

// Reachable returns the set of block starts reachable from b.
func (d *Dominators) Reachable(b uint64) map[uint64]bool {
	out := map[uint64]bool{}
	var walk func(uint64)
	walk = func(s uint64) {
		if out[s] {
			return
		}
		out[s] = true
		blk, ok := d.fn.BlockAt(s)
		if !ok {
			return
		}
		for _, e := range blk.Succs {
			walk(e.To)
		}
	}
	walk(b)
	return out
}

// ReachableBlocks returns the sorted reachable block starts from the
// function entry.
func (d *Dominators) ReachableBlocks() []uint64 {
	out := make([]uint64, len(d.order))
	copy(out, d.order)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
