package dataflow

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/cfg"
)

// diamond builds entry -> {then, else} -> join -> exit and returns the
// function plus the label addresses via debug info.
func diamond(t *testing.T) (*cfg.Func, map[string]uint64) {
	t.Helper()
	b := asm.New(arch.X64, false)
	f := b.Func("main")
	els := f.NewLabel()
	join := f.NewLabel()
	f.Li(arch.R3, 5)
	f.BranchCondTo(arch.EQ, arch.R3, els)
	f.OpI(arch.Add, arch.R3, arch.R3, 1) // then
	f.BranchTo(join)
	f.Bind(els)
	f.OpI(arch.Sub, arch.R3, arch.R3, 1) // else
	f.Bind(join)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := g.FuncByName("main")
	if len(fn.Blocks) < 4 {
		t.Fatalf("diamond has %d blocks", len(fn.Blocks))
	}
	marks := map[string]uint64{"entry": fn.Entry}
	// Identify blocks structurally: entry's two successors, their join.
	entry, _ := fn.BlockAt(fn.Entry)
	var thenB, elseB uint64
	for _, e := range entry.Succs {
		if e.Kind == cfg.EdgeCond {
			elseB = e.To
		} else {
			thenB = e.To
		}
	}
	marks["then"] = thenB
	marks["else"] = elseB
	tb, _ := fn.BlockAt(thenB)
	marks["join"] = tb.Succs[0].To
	return fn, marks
}

func TestDominatorsDiamond(t *testing.T) {
	fn, m := diamond(t)
	d := ComputeDominators(fn)
	if !d.Dominates(m["entry"], m["then"]) || !d.Dominates(m["entry"], m["else"]) || !d.Dominates(m["entry"], m["join"]) {
		t.Error("entry must dominate everything")
	}
	if d.Dominates(m["then"], m["join"]) || d.Dominates(m["else"], m["join"]) {
		t.Error("neither branch arm dominates the join")
	}
	if id, ok := d.IDom(m["join"]); !ok || id != m["entry"] {
		t.Errorf("idom(join) = %#x, want entry %#x", id, m["entry"])
	}
	if !d.Dominates(m["join"], m["join"]) {
		t.Error("a block dominates itself")
	}
}

func TestDominatorsLoop(t *testing.T) {
	b := asm.New(arch.A64, false)
	f := b.Func("main")
	f.Li(arch.R4, 3)
	top := f.Here()
	f.OpI(arch.Sub, arch.R4, arch.R4, 1)
	f.BranchCondTo(arch.NE, arch.R4, top)
	f.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := cfg.Build(img, nil)
	fn, _ := g.FuncByName("main")
	d := ComputeDominators(fn)
	for _, blk := range fn.Blocks {
		if !d.Dominates(fn.Entry, blk.Start) {
			t.Errorf("entry does not dominate %#x", blk.Start)
		}
	}
	reach := d.Reachable(fn.Entry)
	if len(reach) != len(fn.Blocks) {
		t.Errorf("%d reachable of %d blocks", len(reach), len(fn.Blocks))
	}
}

func TestDominatorsUnreachableBlock(t *testing.T) {
	// Code after an unconditional branch that nothing targets is
	// unreachable; dominators must not claim it.
	b := asm.New(arch.X64, false)
	f := b.Func("main")
	done := f.NewLabel()
	f.BranchTo(done)
	f.OpI(arch.Add, arch.R3, arch.R3, 1) // dead
	f.Bind(done)
	f.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := cfg.Build(img, nil)
	fn, _ := g.FuncByName("main")
	d := ComputeDominators(fn)
	dead := false
	for _, blk := range fn.Blocks {
		if _, ok := d.IDom(blk.Start); !ok {
			dead = true
		}
	}
	_ = dead // dead code may not even be traversed into a block
	if got := d.ReachableBlocks(); len(got) == 0 {
		t.Error("no reachable blocks")
	}
}
