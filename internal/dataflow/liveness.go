// Package dataflow provides the register liveness analysis used to find
// scratch registers for long trampolines (Section 7) and the backward
// slicing / symbolic evaluation machinery that jump-table analysis
// (Section 5.1) is built on.
package dataflow

import (
	"icfgpatch/internal/arch"
	"icfgpatch/internal/cfg"
)

// abiLiveAtExit is the conservative register set live when control
// leaves a function: the return value, the stack pointer, the link
// register, and the TOC base.
func abiLiveAtExit() arch.RegSet {
	var s arch.RegSet
	return s.Add(arch.R0).Add(arch.SP).Add(arch.LR).Add(arch.TOCReg)
}

// abiCallUses is the set a call site is assumed to read: argument
// registers plus stack and TOC.
func abiCallUses() arch.RegSet {
	var s arch.RegSet
	return s.Add(arch.R1).Add(arch.R2).Add(arch.R3).Add(arch.R4).Add(arch.R5).Add(arch.SP)
}

// Liveness computes per-block live-in register sets with a standard
// backward fixpoint. The analysis is deliberately conservative at
// unresolved indirect jumps (everything is live — the unknown target
// could read any register), which is what pushes the rewriter toward
// spill trampolines or traps exactly where binary analysis ran out of
// precision.
type Liveness struct {
	liveIn  map[uint64]arch.RegSet
	liveOut map[uint64]arch.RegSet
	fn      *cfg.Func
	arch    arch.Arch
}

// ComputeLiveness analyses one function.
func ComputeLiveness(a arch.Arch, f *cfg.Func) *Liveness {
	lv := &Liveness{
		liveIn:  map[uint64]arch.RegSet{},
		liveOut: map[uint64]arch.RegSet{},
		fn:      f,
		arch:    a,
	}
	changed := true
	for rounds := 0; changed && rounds < 64; rounds++ {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			blk := f.Blocks[i]
			out := lv.exitSet(blk)
			for _, e := range blk.Succs {
				out = out.Union(lv.liveIn[e.To])
			}
			in := lv.transfer(blk, out)
			if in != lv.liveIn[blk.Start] || out != lv.liveOut[blk.Start] {
				lv.liveIn[blk.Start] = in
				lv.liveOut[blk.Start] = out
				changed = true
			}
		}
	}
	return lv
}

// exitSet returns the registers live because of how the block leaves
// the function (none for blocks with only intra-procedural successors).
func (lv *Liveness) exitSet(blk *cfg.Block) arch.RegSet {
	last := blk.Last()
	switch last.Kind {
	case arch.Ret, arch.Halt:
		return abiLiveAtExit()
	case arch.Throw:
		var s arch.RegSet
		return s.Add(arch.R1).Add(arch.SP)
	case arch.Branch:
		// Direct tail call out of the function.
		if t, _ := last.Target(); !lv.fn.Contains(t) {
			return abiLiveAtExit().Union(abiCallUses())
		}
	case arch.JumpInd:
		if len(blk.Succs) == 0 {
			// Unresolved indirect jump or indirect tail call: assume
			// everything is live.
			return arch.AllGP().Add(arch.LR).Add(arch.TOCReg).Add(arch.SP)
		}
	}
	return 0
}

// transfer applies the block's instructions backward.
func (lv *Liveness) transfer(blk *cfg.Block, out arch.RegSet) arch.RegSet {
	live := out
	for i := len(blk.Instrs) - 1; i >= 0; i-- {
		ins := blk.Instrs[i]
		live = live.Minus(ins.Defs(lv.arch)).Union(ins.Uses(lv.arch))
		if ins.IsCall() {
			live = live.Union(abiCallUses())
		}
	}
	return live
}

// LiveIn returns the registers live at the block's entry — the set a
// trampoline installed at the block must preserve.
func (lv *Liveness) LiveIn(blockStart uint64) arch.RegSet {
	s, ok := lv.liveIn[blockStart]
	if !ok {
		// Unknown block: assume everything is live.
		return arch.AllGP().Add(arch.LR).Add(arch.TOCReg).Add(arch.SP)
	}
	return s
}

// DeadAt returns a general-purpose scratch register dead at the block's
// entry, or NoReg when liveness finds none (PPC then spills; A64 falls
// back to a trap, Section 7).
func (lv *Liveness) DeadAt(blockStart uint64) arch.Reg {
	live := lv.LiveIn(blockStart)
	// Prefer high caller-saved registers, skipping conventional argument
	// registers to keep the choice away from hot values.
	for r := arch.R14; r >= arch.R6; r-- {
		if !live.Has(r) {
			return r
		}
	}
	for r := arch.R5; r >= arch.R3; r-- {
		if !live.Has(r) {
			return r
		}
	}
	return arch.NoReg
}
