package dataflow

import (
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/cfg"
)

// ExprKind classifies symbolic expressions produced by backward slicing.
type ExprKind uint8

// Expression kinds.
const (
	// EConst is a known constant (folded PC-relative address formation,
	// immediates, the TOC value).
	EConst ExprKind = iota
	// ETableLoad is a scaled indexed load from a constant base — the
	// jump-table read.
	ETableLoad
	// EAdd is the sum of two sub-expressions.
	EAdd
	// EShl is a left shift by a constant.
	EShl
	// EUnknown is anything the slice cannot track: values loaded from
	// writable memory, call results, merged control flow, spilled and
	// reloaded values. Unknowns are where Section 5.1's analysis
	// failures come from.
	EUnknown
)

// Expr is a symbolic expression over the value held in a register.
type Expr struct {
	Kind ExprKind
	// Const is the value for EConst and the shift amount for EShl.
	Const uint64
	// A and B are sub-expressions (EAdd uses both, EShl uses A).
	A *Expr
	B *Expr
	// ETableLoad fields.
	Base     *Expr // base address expression (must be EConst to resolve)
	IdxReg   arch.Reg
	Size     uint8
	Scale    uint8
	Signed   bool
	LoadAddr uint64
	// FromStack marks unknowns that came from a stack reload, the
	// "values spilled to and reloaded from memory" failure cause.
	FromStack bool
}

// String renders the expression for diagnostics.
func (e *Expr) String() string {
	switch e.Kind {
	case EConst:
		return fmt.Sprintf("%#x", e.Const)
	case ETableLoad:
		return fmt.Sprintf("load%d[%s + %s*%d]", e.Size, e.Base, e.IdxReg, e.Scale)
	case EAdd:
		return fmt.Sprintf("(%s + %s)", e.A, e.B)
	case EShl:
		return fmt.Sprintf("(%s << %d)", e.A, e.Const)
	case EUnknown:
		if e.FromStack {
			return "unknown(stack)"
		}
		return "unknown"
	default:
		return "expr?"
	}
}

func constExpr(v uint64) *Expr { return &Expr{Kind: EConst, Const: v} }

func unknown(stack bool) *Expr { return &Expr{Kind: EUnknown, FromStack: stack} }

// addExprs folds constants.
func addExprs(a, b *Expr) *Expr {
	if a.Kind == EConst && b.Kind == EConst {
		return constExpr(a.Const + b.Const)
	}
	return &Expr{Kind: EAdd, A: a, B: b}
}

// Slicer performs backward slices within one function.
type Slicer struct {
	fn  *cfg.Func
	a   arch.Arch
	toc uint64 // runtime TOC value (PPC) for folding TOC-relative math
}

// NewSlicer builds a slicer; tocValue is the PPC TOC register value
// (ignored on other architectures).
func NewSlicer(a arch.Arch, f *cfg.Func, tocValue uint64) *Slicer {
	return &Slicer{fn: f, a: a, toc: tocValue}
}

// cursor walks instructions backward across single-predecessor chains.
type cursor struct {
	blk *cfg.Block
	idx int // next instruction index to inspect (moving down to 0)
}

// prev steps the cursor one instruction back, crossing into a unique
// predecessor block when the current block is exhausted. It reports
// false at function entry or control-flow merges.
func (s *Slicer) prev(c *cursor) bool {
	if c.idx > 0 {
		c.idx--
		return true
	}
	if len(c.blk.Preds) != 1 {
		return false
	}
	pred, ok := s.fn.BlockAt(c.blk.Preds[0])
	if !ok || len(pred.Instrs) == 0 {
		return false
	}
	c.blk = pred
	c.idx = len(pred.Instrs) - 1
	return true
}

// SliceValue computes a symbolic expression for the value of reg as
// observed by the instruction at fromAddr (exclusive — the definition is
// searched strictly before it). The slice spans at most maxSteps
// instructions across single-predecessor chains.
func (s *Slicer) SliceValue(fromAddr uint64, reg arch.Reg, maxSteps int) *Expr {
	blk, ok := s.fn.BlockContaining(fromAddr)
	if !ok {
		return unknown(false)
	}
	idx := -1
	for i, ins := range blk.Instrs {
		if ins.Addr == fromAddr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return unknown(false)
	}
	return s.slice(cursor{blk: blk, idx: idx}, reg, maxSteps)
}

func (s *Slicer) slice(c cursor, reg arch.Reg, budget int) *Expr {
	for budget > 0 {
		budget--
		if !s.prev(&c) {
			// Reached the function entry (or a merge) without a
			// definition: the TOC register is an ABI constant, anything
			// else is unknown.
			if s.a == arch.PPC && reg == arch.TOCReg {
				return constExpr(s.toc)
			}
			return unknown(false)
		}
		ins := c.blk.Instrs[c.idx]
		if !ins.Defs(s.a).Has(reg) {
			continue
		}
		switch ins.Kind {
		case arch.MovImm:
			return constExpr(uint64(ins.Imm))
		case arch.MovImm16:
			return constExpr(uint64(ins.Imm) << (16 * ins.Shift))
		case arch.MovK16:
			base := s.slice(c, reg, budget)
			if base.Kind != EConst {
				return unknown(false)
			}
			mask := uint64(0xFFFF) << (16 * ins.Shift)
			return constExpr(base.Const&^mask | uint64(ins.Imm)<<(16*ins.Shift))
		case arch.MovReg:
			return s.slice(c, ins.Rs1, budget)
		case arch.Lea:
			return constExpr(ins.Addr + uint64(ins.Imm))
		case arch.LeaHi:
			return constExpr((ins.Addr &^ 0xFFF) + uint64(ins.Imm))
		case arch.AddIS:
			return addExprs(s.slice(c, ins.Rs1, budget), constExpr(uint64(ins.Imm<<16)))
		case arch.AddImm16:
			return addExprs(s.slice(c, ins.Rs1, budget), constExpr(uint64(ins.Imm)))
		case arch.ALUImm:
			base := s.slice(c, ins.Rs1, budget)
			switch ins.Op {
			case arch.Add:
				return addExprs(base, constExpr(uint64(ins.Imm)))
			case arch.Sub:
				return addExprs(base, constExpr(uint64(-ins.Imm)))
			case arch.Shl:
				if base.Kind == EConst {
					return constExpr(base.Const << uint(ins.Imm))
				}
				return &Expr{Kind: EShl, A: base, Const: uint64(ins.Imm)}
			default:
				return unknown(false)
			}
		case arch.ALU:
			if ins.Op == arch.Add {
				return addExprs(s.slice(c, ins.Rs1, budget), s.slice(c, ins.Rs2, budget))
			}
			return unknown(false)
		case arch.LoadIdx:
			return &Expr{
				Kind:     ETableLoad,
				Base:     s.slice(c, ins.Rs1, budget),
				IdxReg:   ins.Rs2,
				Size:     ins.Size,
				Scale:    ins.Scale,
				Signed:   ins.Signed,
				LoadAddr: ins.Addr,
			}
		case arch.Load:
			// Loads from writable memory are opaque to a sound static
			// analysis — including stack reloads of spilled values.
			return unknown(ins.Rs1 == arch.SP)
		case arch.LoadPC:
			return unknown(false)
		default:
			return unknown(false)
		}
	}
	return unknown(false)
}

// FindBoundsCheck scans backward from the table-read instruction for the
// canonical bounds-check idiom on idxReg:
//
//	sub t, idx, N
//	b.ge t, default
//
// It returns N when found. When the index was spilled and reloaded, the
// register at the table read differs from the compared one and the scan
// fails — the paper's Failure 2 trigger, answered by Assumption-2 bound
// extension rather than under-approximation.
func (s *Slicer) FindBoundsCheck(loadAddr uint64, idxReg arch.Reg, maxSteps int) (int, bool) {
	blk, ok := s.fn.BlockContaining(loadAddr)
	if !ok {
		return 0, false
	}
	idx := -1
	for i, ins := range blk.Instrs {
		if ins.Addr == loadAddr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, false
	}
	c := cursor{blk: blk, idx: idx}
	var cmpReg arch.Reg = arch.NoReg
	for step := 0; step < maxSteps; step++ {
		if !s.prev(&c) {
			return 0, false
		}
		ins := c.blk.Instrs[c.idx]
		if cmpReg == arch.NoReg {
			// Phase 1: find the guarding conditional branch.
			if ins.Kind == arch.BranchCond && ins.Cond == arch.GE {
				cmpReg = ins.Rs1
			} else if ins.Defs(s.a).Has(idxReg) {
				// The index is redefined before any guard: give up.
				return 0, false
			}
			continue
		}
		// Phase 2: find the compare feeding the guard.
		if ins.Kind == arch.ALUImm && ins.Op == arch.Sub && ins.Rd == cmpReg {
			if ins.Rs1 != idxReg {
				return 0, false // guard tests a different register (spill)
			}
			return int(ins.Imm), true
		}
		if ins.Defs(s.a).Has(cmpReg) || ins.Defs(s.a).Has(idxReg) {
			return 0, false
		}
	}
	return 0, false
}
