package dataflow

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

func buildFunc(t *testing.T, a arch.Arch, build func(*asm.FuncBuilder)) (*bin.Binary, *cfg.Func) {
	t.Helper()
	b := asm.New(a, false)
	f := b.Func("main")
	build(f)
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := g.FuncByName("main")
	if !ok {
		t.Fatal("main missing")
	}
	return img, fn
}

func TestLivenessStraightLine(t *testing.T) {
	_, fn := buildFunc(t, arch.X64, func(f *asm.FuncBuilder) {
		f.Li(arch.R3, 1)
		f.Op3(arch.Add, arch.R4, arch.R3, arch.R3) // uses r3
		f.Print(arch.R4)
		f.Halt()
	})
	lv := ComputeLiveness(arch.X64, fn)
	in := lv.LiveIn(fn.Entry)
	// r3 and r4 are defined before use: dead at entry.
	if in.Has(arch.R3) || in.Has(arch.R4) {
		t.Errorf("liveIn = %v: locally defined registers reported live", in)
	}
}

func TestLivenessAcrossBranches(t *testing.T) {
	_, fn := buildFunc(t, arch.A64, func(f *asm.FuncBuilder) {
		els := f.NewLabel()
		join := f.NewLabel()
		f.BranchCondTo(arch.EQ, arch.R5, els)      // r5 used at entry
		f.Op3(arch.Add, arch.R3, arch.R6, arch.R6) // r6 used on this path
		f.BranchTo(join)
		f.Bind(els)
		f.Op3(arch.Add, arch.R3, arch.R7, arch.R7) // r7 used on this path
		f.Bind(join)
		f.Print(arch.R3)
		f.Halt()
	})
	lv := ComputeLiveness(arch.A64, fn)
	in := lv.LiveIn(fn.Entry)
	for _, r := range []arch.Reg{arch.R5, arch.R6, arch.R7} {
		if !in.Has(r) {
			t.Errorf("register %s used on some path but not live at entry (%v)", r, in)
		}
	}
	if in.Has(arch.R10) {
		t.Errorf("r10 never used but live at entry")
	}
}

func TestLivenessDeadAtFindsScratch(t *testing.T) {
	_, fn := buildFunc(t, arch.PPC, func(f *asm.FuncBuilder) {
		f.Op3(arch.Add, arch.R0, arch.R1, arch.R2)
		f.Halt()
	})
	lv := ComputeLiveness(arch.PPC, fn)
	r := lv.DeadAt(fn.Entry)
	if r == arch.NoReg {
		t.Fatal("no scratch register in a function using three registers")
	}
	if lv.LiveIn(fn.Entry).Has(r) {
		t.Errorf("DeadAt returned live register %s", r)
	}
}

func TestLivenessConservativeAtUnresolvedJump(t *testing.T) {
	b := asm.New(arch.X64, false)
	fin := b.Func("fin")
	fin.Return()
	b.FuncPtrGlobal("fp", "fin", 0)
	f := b.Func("main")
	f.LoadGlobal(arch.R9, arch.R9, "fp", 8)
	f.TailJumpReg(arch.R9)
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := cfg.Build(img, nil)
	fn, _ := g.FuncByName("main")
	lv := ComputeLiveness(arch.X64, fn)
	// Everything must be live at the indirect-jump block: the unknown
	// target may read any register. Only the locally clobbered r9 is
	// allowed to be dead at entry.
	in := lv.LiveIn(fn.Entry)
	for r := arch.R0; r < arch.SP; r++ {
		if r != arch.R9 && !in.Has(r) {
			t.Errorf("register %s dead despite unresolved indirect control flow", r)
		}
	}
}

func TestLivenessUnknownBlockIsAllLive(t *testing.T) {
	_, fn := buildFunc(t, arch.X64, func(f *asm.FuncBuilder) { f.Halt() })
	lv := ComputeLiveness(arch.X64, fn)
	if lv.DeadAt(0xdeadbeef) != arch.NoReg {
		t.Error("unknown block produced a scratch register")
	}
}

// sliceProgram builds main with the canonical dispatch idiom and returns
// the function and the address of its indirect jump.
func sliceSetup(t *testing.T, a arch.Arch, opts asm.SwitchOpts) (*bin.Binary, *cfg.Func, uint64, *asm.DebugInfo) {
	t.Helper()
	b := asm.New(a, false)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 1)
	cases := []asm.Label{f.NewLabel(), f.NewLabel(), f.NewLabel()}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, opts)
	for _, c := range cases {
		f.Bind(c)
		f.BranchTo(join)
	}
	f.Bind(def)
	f.Bind(join)
	f.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	// Resolve with ground truth so case blocks exist, mirroring the
	// iterative construction.
	truth := dbg.Tables[0]
	g, err := cfg.Build(img, truthResolver{truth})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := g.FuncByName("main")
	return img, fn, truth.DispatchAddr, dbg
}

type truthResolver struct{ truth asm.TableInfo }

func (r truthResolver) ResolveJump(b *bin.Binary, f *cfg.Func, jumpAddr uint64) (*cfg.ResolvedTable, error) {
	return &cfg.ResolvedTable{
		JumpAddr: jumpAddr, Targets: r.truth.Targets, Count: r.truth.N,
		EntrySize: r.truth.EntrySize, Kind: cfg.TarAbs,
	}, nil
}

func TestSliceRecoversDispatchExpression(t *testing.T) {
	for _, a := range arch.All() {
		img, fn, jumpAddr, dbg := sliceSetup(t, a, asm.SwitchOpts{})
		blk, _ := fn.BlockContaining(jumpAddr)
		jmp := blk.Last()
		s := NewSlicer(a, fn, img.TOCValue)
		e := s.SliceValue(jumpAddr, jmp.Rs1, 96)
		truth := dbg.Tables[0]

		// Find the table load in the expression tree.
		var tl *Expr
		var walk func(*Expr)
		walk = func(x *Expr) {
			if x == nil {
				return
			}
			if x.Kind == ETableLoad {
				tl = x
			}
			walk(x.A)
			walk(x.B)
		}
		walk(e)
		if e.Kind == ETableLoad {
			tl = e
		}
		if tl == nil {
			t.Fatalf("%s: no table load in %s", a, e)
		}
		if tl.Base == nil || tl.Base.Kind != EConst || tl.Base.Const != truth.Addr {
			t.Errorf("%s: table base = %s, want %#x", a, tl.Base, truth.Addr)
		}
		if int(tl.Size) != truth.EntrySize {
			t.Errorf("%s: entry size %d, want %d", a, tl.Size, truth.EntrySize)
		}
	}
}

func TestFindBoundsCheck(t *testing.T) {
	for _, a := range arch.All() {
		img, fn, jumpAddr, _ := sliceSetup(t, a, asm.SwitchOpts{})
		blk, _ := fn.BlockContaining(jumpAddr)
		s := NewSlicer(a, fn, img.TOCValue)
		e := s.SliceValue(jumpAddr, blk.Last().Rs1, 96)
		var tl *Expr
		var walk func(*Expr)
		walk = func(x *Expr) {
			if x == nil {
				return
			}
			if x.Kind == ETableLoad {
				tl = x
			}
			walk(x.A)
			walk(x.B)
		}
		walk(e)
		if e.Kind == ETableLoad {
			tl = e
		}
		if tl == nil {
			t.Fatalf("%s: no table load", a)
		}
		n, ok := s.FindBoundsCheck(tl.LoadAddr, tl.IdxReg, 64)
		if !ok || n != 3 {
			t.Errorf("%s: bounds = %d, %v; want 3, true", a, n, ok)
		}
	}
}

func TestSpilledIndexDefeatsBoundsCheck(t *testing.T) {
	// The SpillIndex variant reloads the index from the stack: the
	// register at the table read is not the compared one, so bound
	// recovery must fail (paper Failure 2 setup).
	for _, a := range arch.All() {
		img, fn, jumpAddr, _ := sliceSetup(t, a, asm.SwitchOpts{SpillIndex: true})
		blk, _ := fn.BlockContaining(jumpAddr)
		s := NewSlicer(a, fn, img.TOCValue)
		e := s.SliceValue(jumpAddr, blk.Last().Rs1, 96)
		var tl *Expr
		var walk func(*Expr)
		walk = func(x *Expr) {
			if x == nil {
				return
			}
			if x.Kind == ETableLoad {
				tl = x
			}
			walk(x.A)
			walk(x.B)
		}
		walk(e)
		if e.Kind == ETableLoad {
			tl = e
		}
		if tl == nil {
			t.Fatalf("%s: table load still recoverable (base is what matters)", a)
		}
		if _, ok := s.FindBoundsCheck(tl.LoadAddr, tl.IdxReg, 64); ok {
			t.Errorf("%s: bounds check found despite the spill", a)
		}
	}
}

func TestOpaqueBaseDefeatsSlice(t *testing.T) {
	for _, a := range arch.All() {
		img, fn, jumpAddr, _ := sliceSetup(t, a, asm.SwitchOpts{OpaqueBase: true})
		blk, _ := fn.BlockContaining(jumpAddr)
		s := NewSlicer(a, fn, img.TOCValue)
		e := s.SliceValue(jumpAddr, blk.Last().Rs1, 96)
		var constBase bool
		var walk func(*Expr)
		walk = func(x *Expr) {
			if x == nil {
				return
			}
			if x.Kind == ETableLoad && x.Base != nil && x.Base.Kind == EConst {
				constBase = true
			}
			walk(x.A)
			walk(x.B)
			walk(x.Base)
		}
		walk(e)
		if constBase {
			t.Errorf("%s: opaque table base resolved to a constant", a)
		}
	}
}

func TestSliceConstantFolding(t *testing.T) {
	_, fn := buildFunc(t, arch.PPC, func(f *asm.FuncBuilder) {
		f.Li(arch.R3, 0x12345)
		f.OpI(arch.Add, arch.R4, arch.R3, 0x10)
		f.Mov(arch.R5, arch.R4)
		f.I(arch.Instr{Kind: arch.JumpInd, Rs1: arch.R5})
	})
	var jump uint64
	for _, blk := range fn.Blocks {
		if blk.Last().Kind == arch.JumpInd {
			jump = blk.Last().Addr
		}
	}
	s := NewSlicer(arch.PPC, fn, 0)
	e := s.SliceValue(jump, arch.R5, 32)
	if e.Kind != EConst || e.Const != 0x12355 {
		t.Errorf("expr = %s, want 0x12355", e)
	}
}

func TestSliceTOCRegisterIsConstant(t *testing.T) {
	_, fn := buildFunc(t, arch.PPC, func(f *asm.FuncBuilder) {
		f.I(arch.Instr{Kind: arch.AddIS, Rd: arch.R4, Rs1: arch.TOCReg, Imm: 2})
		f.I(arch.Instr{Kind: arch.JumpInd, Rs1: arch.R4})
	})
	var jump uint64
	for _, blk := range fn.Blocks {
		if blk.Last().Kind == arch.JumpInd {
			jump = blk.Last().Addr
		}
	}
	s := NewSlicer(arch.PPC, fn, 0x10008000)
	e := s.SliceValue(jump, arch.R4, 16)
	if e.Kind != EConst || e.Const != 0x10008000+2<<16 {
		t.Errorf("expr = %s, want TOC+0x20000", e)
	}
}

func TestSliceStackReloadIsUnknown(t *testing.T) {
	_, fn := buildFunc(t, arch.X64, func(f *asm.FuncBuilder) {
		f.SetFrame(16)
		f.LoadLocal(arch.R3, 0)
		f.I(arch.Instr{Kind: arch.JumpInd, Rs1: arch.R3})
	})
	var jump uint64
	for _, blk := range fn.Blocks {
		if blk.Last().Kind == arch.JumpInd {
			jump = blk.Last().Addr
		}
	}
	s := NewSlicer(arch.X64, fn, 0)
	e := s.SliceValue(jump, arch.R3, 16)
	if e.Kind != EUnknown || !e.FromStack {
		t.Errorf("expr = %s, want unknown(stack)", e)
	}
}

func TestExprStringer(t *testing.T) {
	e := &Expr{Kind: EAdd, A: constExpr(4), B: &Expr{Kind: EShl, A: unknown(false), Const: 2}}
	if e.String() == "" {
		t.Error("empty rendering")
	}
	if unknown(true).String() != "unknown(stack)" {
		t.Error("stack unknown rendering")
	}
}
