// Package unwind models the stack unwinding substrate the paper's runtime
// return-address translation plugs into: DWARF-style .eh_frame unwind
// records (FDEs) with landing pads for exception dispatch, a frame stepper
// equivalent to libunwind's _UL*_step, and a Go-style pclntab used by the
// Go runtime's traceback (runtime.findfunc / runtime.pcvalue).
//
// The crucial property reproduced from the paper: all tables are keyed by
// ORIGINAL code addresses and are never rewritten. A rewritten binary
// supplies a Translator that maps relocated return addresses back to
// original call sites before any lookup — one translation per frame step,
// which is cheap next to the unwind-recipe lookup itself (Section 6).
package unwind

import (
	"encoding/binary"
	"fmt"
	"sort"

	"icfgpatch/internal/arch"
)

// LandingPad describes one exception handler: throws whose (translated)
// PC falls in [TryStart, TryEnd) are dispatched to Pad, an original-code
// address.
type LandingPad struct {
	TryStart uint64
	TryEnd   uint64
	Pad      uint64
}

// FDE is one function's frame description entry. The synthetic compilers
// emit a single recipe per function (calls and throws only occur between
// prologue and epilogue), so no CFI row program is needed.
type FDE struct {
	// Start and End delimit the function's original code range.
	Start uint64
	End   uint64
	// FrameSize is the number of bytes the prologue subtracts from SP.
	// On X64 this excludes the return address slot pushed by call.
	FrameSize uint64
	// RAInLR marks leaf functions on the fixed-width ISAs whose return
	// address never leaves the link register.
	RAInLR bool
	// Pads lists the function's exception landing pads.
	Pads []LandingPad
}

// Contains reports whether pc lies in the FDE's range.
func (f *FDE) Contains(pc uint64) bool { return pc >= f.Start && pc < f.End }

// PadFor returns the landing pad covering pc, if any. When try regions
// nest, the innermost (latest-starting) region wins, matching C++
// personality semantics.
func (f *FDE) PadFor(pc uint64) (LandingPad, bool) {
	best := LandingPad{}
	found := false
	for _, p := range f.Pads {
		if pc >= p.TryStart && pc < p.TryEnd {
			better := p.TryStart > best.TryStart ||
				(p.TryStart == best.TryStart && p.TryEnd < best.TryEnd)
			if !found || better {
				best = p
				found = true
			}
		}
	}
	return best, found
}

// Table is a searchable set of FDEs, the in-memory form of .eh_frame.
type Table struct {
	fdes []FDE // sorted by Start
}

// NewTable builds a table, sorting the entries by start address.
func NewTable(fdes []FDE) *Table {
	s := append([]FDE(nil), fdes...)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	return &Table{fdes: s}
}

// Find returns the FDE covering pc. This is the lookup the language
// runtime performs for every unwound frame; a PC pointing into relocated
// code finds nothing, which is exactly how rewritten binaries break
// exception handling without RA translation.
func (t *Table) Find(pc uint64) (*FDE, bool) {
	i := sort.Search(len(t.fdes), func(i int) bool { return t.fdes[i].Start > pc })
	if i > 0 && t.fdes[i-1].Contains(pc) {
		return &t.fdes[i-1], true
	}
	return nil, false
}

// Len returns the number of FDEs.
func (t *Table) Len() int { return len(t.fdes) }

// FDEs returns the sorted entries (shared storage; do not mutate).
func (t *Table) FDEs() []FDE { return t.fdes }

// Translator maps a return address from rewritten-code coordinates to
// original-code coordinates. The identity translation serves unmodified
// binaries; rewritten binaries install the .ra_map lookup (package rtlib).
// Per Section 6 of the paper, addresses with no mapping pass through
// unchanged — that is how unwinding traverses uninstrumented libraries.
type Translator func(pc uint64) uint64

// Identity is the no-op translator.
func Identity(pc uint64) uint64 { return pc }

// Memory is the slice of machine state the stepper reads.
type Memory interface {
	ReadU64(addr uint64) (uint64, error)
}

// Frame is one logical stack frame during unwinding.
type Frame struct {
	PC uint64 // return address (translated to original coordinates)
	SP uint64 // stack pointer value in this frame
	// RawPC is the untranslated return address as found in memory or LR,
	// i.e. a relocated-code address when the caller executes in .instr.
	RawPC uint64
}

// Step unwinds one frame: given the current (already translated) pc, the
// stack pointer, the link register value, and the FDE table, it computes
// the caller's frame. It mirrors libunwind's _ULx86_64_step /
// _ULppc64_step / _ULaarch64_step: the translator is applied to the
// recovered return address before it is returned, which is precisely the
// function-wrapping hook of Section 6.1.
func Step(a arch.Arch, t *Table, mem Memory, translate Translator, pc, sp, lr uint64) (Frame, error) {
	fde, ok := t.Find(pc)
	if !ok {
		return Frame{}, fmt.Errorf("unwind: no FDE covers pc %#x", pc)
	}
	var raw uint64
	var nsp uint64
	switch {
	case a == arch.X64:
		// RA was pushed by call below the frame: [sp + FrameSize].
		v, err := mem.ReadU64(sp + fde.FrameSize)
		if err != nil {
			return Frame{}, fmt.Errorf("unwind: reading return address: %w", err)
		}
		raw = v
		nsp = sp + fde.FrameSize + 8
	case fde.RAInLR:
		raw = lr
		nsp = sp + fde.FrameSize
	default:
		// Non-leaf fixed-width frame: prologue stored LR at the top of
		// the frame, [sp + FrameSize - 8].
		v, err := mem.ReadU64(sp + fde.FrameSize - 8)
		if err != nil {
			return Frame{}, fmt.Errorf("unwind: reading saved LR: %w", err)
		}
		raw = v
		nsp = sp + fde.FrameSize
	}
	return Frame{PC: translate(raw), SP: nsp, RawPC: raw}, nil
}

// Walk unwinds at most maxFrames frames starting from (pc, sp, lr) and
// returns them innermost first, stopping at the first PC not covered by
// the table (the conventional outermost-frame sentinel). The starting pc
// is translated before the first lookup, matching the Go runtime path
// where runtime.findfunc's input PC is rewritten at function entry.
func Walk(a arch.Arch, t *Table, mem Memory, translate Translator, pc, sp, lr uint64, maxFrames int) ([]Frame, error) {
	var frames []Frame
	cur := Frame{PC: translate(pc), SP: sp, RawPC: pc}
	for len(frames) < maxFrames {
		frames = append(frames, cur)
		if _, ok := t.Find(cur.PC); !ok {
			if len(frames) == 1 {
				return frames, fmt.Errorf("unwind: initial pc %#x not covered", cur.PC)
			}
			return frames[:len(frames)-1], nil
		}
		next, err := Step(a, t, mem, translate, cur.PC, cur.SP, lr)
		if err != nil {
			return frames, err
		}
		lr = 0 // LR is only meaningful for the innermost frame
		if next.RawPC == 0 {
			return frames, nil // reached the sentinel return address
		}
		cur = next
	}
	return frames, fmt.Errorf("unwind: more than %d frames (runaway unwind?)", maxFrames)
}

// encoded .eh_frame layout: u64 count, then per FDE: start, end,
// framesize, flags(u8), padcount(u32), pads (3×u64 each).

// Encode serialises the table to .eh_frame section payload bytes.
func (t *Table) Encode() []byte {
	var out []byte
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:]...)
	}
	put(uint64(len(t.fdes)))
	for _, f := range t.fdes {
		put(f.Start)
		put(f.End)
		put(f.FrameSize)
		if f.RAInLR {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(f.Pads)))
		out = append(out, n[:]...)
		for _, p := range f.Pads {
			put(p.TryStart)
			put(p.TryEnd)
			put(p.Pad)
		}
	}
	return out
}

// Decode parses .eh_frame section payload bytes.
func Decode(data []byte) (*Table, error) {
	off := 0
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("unwind: truncated .eh_frame at offset %d", off)
		}
		return nil
	}
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(data[off:])
		off += 8
		return v
	}
	if err := need(8); err != nil {
		return nil, err
	}
	count := get()
	fdes := make([]FDE, 0, min(int(count), 1<<20))
	for k := uint64(0); k < count; k++ {
		if err := need(8*3 + 1 + 4); err != nil {
			return nil, err
		}
		var f FDE
		f.Start = get()
		f.End = get()
		f.FrameSize = get()
		f.RAInLR = data[off] != 0
		off++
		npads := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if err := need(int(npads) * 24); err != nil {
			return nil, err
		}
		for p := uint32(0); p < npads; p++ {
			f.Pads = append(f.Pads, LandingPad{TryStart: get(), TryEnd: get(), Pad: get()})
		}
		fdes = append(fdes, f)
	}
	return NewTable(fdes), nil
}
