package unwind

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"icfgpatch/internal/arch"
)

// fakeMem is a sparse word-addressed memory for stepper tests.
type fakeMem map[uint64]uint64

func (m fakeMem) ReadU64(addr uint64) (uint64, error) {
	return m[addr], nil
}

func testTable() *Table {
	return NewTable([]FDE{
		{Start: 0x1000, End: 0x1100, FrameSize: 32, Pads: []LandingPad{{TryStart: 0x1010, TryEnd: 0x1050, Pad: 0x10F0}}},
		{Start: 0x1100, End: 0x1180, FrameSize: 0, RAInLR: true},
		{Start: 0x1180, End: 0x1300, FrameSize: 64},
	})
}

func TestFind(t *testing.T) {
	tab := testTable()
	for _, tc := range []struct {
		pc   uint64
		want uint64 // expected FDE start; 0 means not found
	}{
		{0x1000, 0x1000}, {0x10FF, 0x1000}, {0x1100, 0x1100},
		{0x12FF, 0x1180}, {0x1300, 0}, {0x999, 0}, {0x5000000, 0},
	} {
		f, ok := tab.Find(tc.pc)
		if tc.want == 0 {
			if ok {
				t.Errorf("Find(%#x) matched FDE %#x, want none", tc.pc, f.Start)
			}
			continue
		}
		if !ok || f.Start != tc.want {
			t.Errorf("Find(%#x) = %v, %v; want start %#x", tc.pc, f, ok, tc.want)
		}
	}
}

func TestPadFor(t *testing.T) {
	tab := testTable()
	f, _ := tab.Find(0x1020)
	if p, ok := f.PadFor(0x1020); !ok || p.Pad != 0x10F0 {
		t.Errorf("PadFor = %+v, %v", p, ok)
	}
	if _, ok := f.PadFor(0x1060); ok {
		t.Error("PadFor matched outside the try range")
	}
}

func TestStepX64(t *testing.T) {
	tab := testTable()
	// Frame at pc=0x1020 with FrameSize 32: RA at sp+32.
	mem := fakeMem{0x8000 + 32: 0x1190}
	fr, err := Step(arch.X64, tab, mem, Identity, 0x1020, 0x8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.PC != 0x1190 || fr.SP != 0x8000+32+8 {
		t.Errorf("Step = %+v", fr)
	}
}

func TestStepFixedLeafUsesLR(t *testing.T) {
	tab := testTable()
	fr, err := Step(arch.A64, tab, fakeMem{}, Identity, 0x1110, 0x8000, 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if fr.PC != 0x1234 || fr.SP != 0x8000 {
		t.Errorf("leaf Step = %+v", fr)
	}
}

func TestStepFixedNonLeafReadsSavedLR(t *testing.T) {
	tab := testTable()
	mem := fakeMem{0x8000 + 64 - 8: 0x1050}
	fr, err := Step(arch.PPC, tab, mem, Identity, 0x1200, 0x8000, 0xdead)
	if err != nil {
		t.Fatal(err)
	}
	if fr.PC != 0x1050 || fr.SP != 0x8040 {
		t.Errorf("non-leaf Step = %+v", fr)
	}
}

func TestStepUnknownPCFails(t *testing.T) {
	// A relocated-code PC finds no FDE: the exact failure mode of
	// rewritten binaries without RA translation.
	if _, err := Step(arch.X64, testTable(), fakeMem{}, Identity, 0x90000000, 0x8000, 0); err == nil {
		t.Error("Step succeeded for a PC with no unwind info")
	}
}

func TestStepAppliesTranslator(t *testing.T) {
	tab := testTable()
	relocated := uint64(0x90000020)
	mem := fakeMem{0x8000 + 32: relocated}
	translate := func(pc uint64) uint64 {
		if pc == relocated {
			return 0x1200
		}
		return pc
	}
	fr, err := Step(arch.X64, tab, mem, translate, 0x1020, 0x8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.PC != 0x1200 || fr.RawPC != relocated {
		t.Errorf("translated Step = %+v", fr)
	}
}

func TestWalk(t *testing.T) {
	tab := testTable()
	// Call chain: outer (0x1180 frame 64) -> mid (0x1000 frame 32) ->
	// leaf running at pc 0x1110 with LR into mid.
	mem := fakeMem{
		0x8000 + 32: 0x11C0, // mid's pushed RA -> outer (x64 layout)
	}
	frames, err := Walk(arch.X64, tab, mem, Identity, 0x1020, 0x8000, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 2 || frames[0].PC != 0x1020 || frames[1].PC != 0x11C0 {
		t.Errorf("Walk = %+v", frames)
	}
}

func TestWalkStopsAtForeignPC(t *testing.T) {
	tab := testTable()
	mem := fakeMem{0x8000 + 32: 0x7777777} // caller outside any FDE
	frames, err := Walk(arch.X64, tab, mem, Identity, 0x1020, 0x8000, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Errorf("Walk returned %d frames, want 1 (stop at foreign PC)", len(frames))
	}
}

func TestWalkRunawayLimit(t *testing.T) {
	// A frame whose saved RA points back into itself must hit the frame
	// limit, not loop forever.
	tab := NewTable([]FDE{{Start: 0x1000, End: 0x1100, FrameSize: 0}})
	mem := fakeMem{0x8000: 0x1010}
	loop := fakeMem{}
	for sp := uint64(0x8000); sp < 0x9000; sp += 8 {
		loop[sp] = 0x1010
	}
	_ = mem
	if _, err := Walk(arch.X64, tab, loop, Identity, 0x1010, 0x8000, 0, 8); err == nil {
		t.Error("runaway unwind not detected")
	}
}

func TestTableEncodeDecodeRoundTrip(t *testing.T) {
	tab := testTable()
	enc := tab.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != tab.Len() {
		t.Fatalf("decoded %d FDEs, want %d", dec.Len(), tab.Len())
	}
	for i, f := range dec.FDEs() {
		want := tab.FDEs()[i]
		if f.Start != want.Start || f.End != want.End || f.FrameSize != want.FrameSize || f.RAInLR != want.RAInLR || len(f.Pads) != len(want.Pads) {
			t.Errorf("FDE %d = %+v, want %+v", i, f, want)
		}
	}
	// Truncations must fail cleanly.
	for _, cut := range []int{0, 4, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("truncated table at %d accepted", cut)
		}
	}
}

func TestPCTableFindAndValue(t *testing.T) {
	tab := NewPCTable([]PCFunc{
		{Start: 0x2000, End: 0x2100, ID: 1},
		{Start: 0x2100, End: 0x2400, ID: 2},
	})
	if f, ok := tab.FindFunc(0x20FF); !ok || f.ID != 1 {
		t.Errorf("FindFunc = %+v, %v", f, ok)
	}
	if _, ok := tab.FindFunc(0x2400); ok {
		t.Error("FindFunc matched past the end")
	}
	if v, ok := tab.PCValue(0x2110); !ok || v != uint64(2)<<32|0x10 {
		t.Errorf("PCValue = %#x, %v", v, ok)
	}
	if _, ok := tab.PCValue(0x90000000); ok {
		t.Error("PCValue resolved a relocated PC — Go runtime would be fooled")
	}
}

func TestPCTableEncodeDecode(t *testing.T) {
	tab := NewPCTable([]PCFunc{{Start: 5, End: 10, ID: 7}, {Start: 1, End: 5, ID: 3}})
	dec, err := DecodePCTable(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != 2 {
		t.Fatalf("len = %d", dec.Len())
	}
	if f, ok := dec.FindFunc(2); !ok || f.ID != 3 {
		t.Errorf("FindFunc(2) = %+v, %v", f, ok)
	}
	if _, err := DecodePCTable([]byte{1}); err == nil {
		t.Error("short pclntab accepted")
	}
	enc := tab.Encode()
	binary.LittleEndian.PutUint64(enc, 99) // lie about the count
	if _, err := DecodePCTable(enc); err == nil {
		t.Error("overcounted pclntab accepted")
	}
}

func TestPCTableQuickLookupInvariant(t *testing.T) {
	f := func(starts []uint32) bool {
		var funcs []PCFunc
		for i, s := range starts {
			funcs = append(funcs, PCFunc{Start: uint64(s) << 4, End: uint64(s)<<4 + 8, ID: uint32(i)})
		}
		tab := NewPCTable(funcs)
		for _, fn := range funcs {
			got, ok := tab.FindFunc(fn.Start)
			if !ok {
				return false
			}
			// Overlapping ranges may resolve to a different ID, but the
			// result must still contain the queried PC.
			if fn.Start < got.Start || fn.Start >= got.End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
