package unwind

import (
	"fmt"
	"sort"

	"icfgpatch/internal/arch"
)

// Compiled is the frdwarf-style unwinder the paper's Section 2.3 points
// at: the DWARF recipes of a Table are "compiled" ahead of time into
// flat step records, so a frame step is a binary search plus one load —
// roughly an order of magnitude cheaper than interpreting unwind
// recipes. Because the compiled records are still keyed by ORIGINAL
// addresses, runtime return-address translation plugs in unchanged,
// whereas the update-the-DWARF strategy has nothing left to update.
type Compiled struct {
	starts []uint64
	steps  []compiledStep
}

// compiledStep is the "machine code" a recipe compiles to: where the
// return address lives and how far the stack pointer moves.
type compiledStep struct {
	start, end uint64
	frameSize  uint64
	raInLR     bool
	pads       []LandingPad
}

// Compile translates every FDE of the table.
func Compile(t *Table) *Compiled {
	c := &Compiled{}
	for _, f := range t.FDEs() {
		c.starts = append(c.starts, f.Start)
		c.steps = append(c.steps, compiledStep{
			start: f.Start, end: f.End, frameSize: f.FrameSize, raInLR: f.RAInLR, pads: f.Pads,
		})
	}
	return c
}

// find locates the compiled step covering pc.
func (c *Compiled) find(pc uint64) (*compiledStep, bool) {
	i := sort.Search(len(c.starts), func(i int) bool { return c.starts[i] > pc })
	if i > 0 && pc < c.steps[i-1].end {
		return &c.steps[i-1], true
	}
	return nil, false
}

// Covers reports whether pc has compiled unwind information.
func (c *Compiled) Covers(pc uint64) bool {
	_, ok := c.find(pc)
	return ok
}

// PadFor returns the landing pad covering pc, if any; nested regions
// resolve to the innermost one, as in the interpreted table.
func (c *Compiled) PadFor(pc uint64) (LandingPad, bool) {
	s, ok := c.find(pc)
	if !ok {
		return LandingPad{}, false
	}
	best := LandingPad{}
	found := false
	for _, p := range s.pads {
		if pc >= p.TryStart && pc < p.TryEnd {
			better := p.TryStart > best.TryStart ||
				(p.TryStart == best.TryStart && p.TryEnd < best.TryEnd)
			if !found || better {
				best = p
				found = true
			}
		}
	}
	return best, found
}

// Step performs one compiled frame step, mirroring Table-based Step
// (including the translation hook applied to the recovered return
// address).
func (c *Compiled) Step(a arch.Arch, mem Memory, translate Translator, pc, sp, lr uint64) (Frame, error) {
	s, ok := c.find(pc)
	if !ok {
		return Frame{}, fmt.Errorf("unwind: no compiled step covers pc %#x", pc)
	}
	var raw, nsp uint64
	switch {
	case a == arch.X64:
		v, err := mem.ReadU64(sp + s.frameSize)
		if err != nil {
			return Frame{}, err
		}
		raw = v
		nsp = sp + s.frameSize + 8
	case s.raInLR:
		raw = lr
		nsp = sp + s.frameSize
	default:
		v, err := mem.ReadU64(sp + s.frameSize - 8)
		if err != nil {
			return Frame{}, err
		}
		raw = v
		nsp = sp + s.frameSize
	}
	return Frame{PC: translate(raw), SP: nsp, RawPC: raw}, nil
}

// Walk is the compiled counterpart of Table-based Walk.
func (c *Compiled) Walk(a arch.Arch, mem Memory, translate Translator, pc, sp, lr uint64, maxFrames int) ([]Frame, error) {
	var frames []Frame
	cur := Frame{PC: translate(pc), SP: sp, RawPC: pc}
	for len(frames) < maxFrames {
		frames = append(frames, cur)
		if !c.Covers(cur.PC) {
			if len(frames) == 1 {
				return frames, fmt.Errorf("unwind: initial pc %#x not covered", cur.PC)
			}
			return frames[:len(frames)-1], nil
		}
		next, err := c.Step(a, mem, translate, cur.PC, cur.SP, lr)
		if err != nil {
			return frames, err
		}
		lr = 0
		if next.RawPC == 0 {
			return frames, nil
		}
		cur = next
	}
	return frames, fmt.Errorf("unwind: more than %d frames (runaway unwind?)", maxFrames)
}
