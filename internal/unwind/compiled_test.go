package unwind

import (
	"testing"

	"icfgpatch/internal/arch"
)

func TestCompiledMatchesInterpreted(t *testing.T) {
	tab := testTable()
	c := Compile(tab)
	mem := fakeMem{0x8000 + 32: 0x1190, 0x8000 + 64 - 8: 0x1050}
	cases := []struct {
		a  arch.Arch
		pc uint64
		sp uint64
		lr uint64
	}{
		{arch.X64, 0x1020, 0x8000, 0},
		{arch.A64, 0x1110, 0x8000, 0x1234},
		{arch.PPC, 0x1200, 0x8000, 0xdead},
	}
	for _, tc := range cases {
		want, err1 := Step(tc.a, tab, mem, Identity, tc.pc, tc.sp, tc.lr)
		got, err2 := c.Step(tc.a, mem, Identity, tc.pc, tc.sp, tc.lr)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s pc=%#x: error mismatch %v vs %v", tc.a, tc.pc, err1, err2)
		}
		if err1 == nil && got != want {
			t.Errorf("%s pc=%#x: compiled %+v, interpreted %+v", tc.a, tc.pc, got, want)
		}
	}
}

func TestCompiledCoversAndPads(t *testing.T) {
	c := Compile(testTable())
	if !c.Covers(0x1000) || c.Covers(0x1300) || c.Covers(0x10) {
		t.Error("coverage wrong")
	}
	if p, ok := c.PadFor(0x1020); !ok || p.Pad != 0x10F0 {
		t.Errorf("PadFor = %+v, %v", p, ok)
	}
	if _, ok := c.PadFor(0x1060); ok {
		t.Error("pad outside try range")
	}
}

func TestCompiledWalkMatchesInterpreted(t *testing.T) {
	tab := testTable()
	c := Compile(tab)
	mem := fakeMem{0x8000 + 32: 0x11C0}
	want, err1 := Walk(arch.X64, tab, mem, Identity, 0x1020, 0x8000, 0, 16)
	got, err2 := c.Walk(arch.X64, mem, Identity, 0x1020, 0x8000, 0, 16)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if len(got) != len(want) {
		t.Fatalf("frame counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("frame %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestCompiledAppliesTranslator(t *testing.T) {
	tab := testTable()
	c := Compile(tab)
	relocated := uint64(0x90000020)
	mem := fakeMem{0x8000 + 32: relocated}
	translate := func(pc uint64) uint64 {
		if pc == relocated {
			return 0x1200
		}
		return pc
	}
	fr, err := c.Step(arch.X64, mem, translate, 0x1020, 0x8000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fr.PC != 0x1200 || fr.RawPC != relocated {
		t.Errorf("translated compiled Step = %+v", fr)
	}
}
