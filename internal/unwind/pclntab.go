package unwind

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PCFunc is one entry of the Go-style pclntab: a function's original code
// range and its index. The Go runtime's traceback resolves every return
// address on the stack through this table (runtime.findfunc) and derives
// per-PC values from it (runtime.pcvalue); a PC that resolves to no entry
// makes the runtime abort, which is what happens to rewritten Go binaries
// without return-address translation.
type PCFunc struct {
	Start uint64
	End   uint64
	ID    uint32
}

// PCTable is the searchable pclntab.
type PCTable struct {
	funcs []PCFunc // sorted by Start
}

// NewPCTable builds a table sorted by start address.
func NewPCTable(funcs []PCFunc) *PCTable {
	s := append([]PCFunc(nil), funcs...)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	return &PCTable{funcs: s}
}

// FindFunc is the runtime.findfunc equivalent: it resolves pc to a
// function entry.
func (t *PCTable) FindFunc(pc uint64) (PCFunc, bool) {
	i := sort.Search(len(t.funcs), func(i int) bool { return t.funcs[i].Start > pc })
	if i > 0 && pc < t.funcs[i-1].End {
		return t.funcs[i-1], true
	}
	return PCFunc{}, false
}

// PCValue is the runtime.pcvalue equivalent: it derives a deterministic
// per-PC value (here, the PC's offset within its function folded with the
// function ID), failing for unresolvable PCs exactly like findfunc.
func (t *PCTable) PCValue(pc uint64) (uint64, bool) {
	f, ok := t.FindFunc(pc)
	if !ok {
		return 0, false
	}
	return uint64(f.ID)<<32 | (pc - f.Start), true
}

// Len returns the number of functions.
func (t *PCTable) Len() int { return len(t.funcs) }

// Encode serialises the table to .gopclntab payload bytes.
func (t *PCTable) Encode() []byte {
	out := make([]byte, 8+20*len(t.funcs))
	binary.LittleEndian.PutUint64(out, uint64(len(t.funcs)))
	for k, f := range t.funcs {
		binary.LittleEndian.PutUint64(out[8+20*k:], f.Start)
		binary.LittleEndian.PutUint64(out[16+20*k:], f.End)
		binary.LittleEndian.PutUint32(out[24+20*k:], f.ID)
	}
	return out
}

// DecodePCTable parses .gopclntab payload bytes.
func DecodePCTable(data []byte) (*PCTable, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("unwind: pclntab too short (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) < 8+20*n {
		return nil, fmt.Errorf("unwind: pclntab declares %d entries but has %d bytes", n, len(data))
	}
	funcs := make([]PCFunc, n)
	for k := range funcs {
		funcs[k].Start = binary.LittleEndian.Uint64(data[8+20*k:])
		funcs[k].End = binary.LittleEndian.Uint64(data[16+20*k:])
		funcs[k].ID = binary.LittleEndian.Uint32(data[24+20*k:])
	}
	return NewPCTable(funcs), nil
}
