// Package core implements incremental CFG patching, the paper's primary
// contribution: a general binary rewriting approach that balances
// runtime overhead and generality by combining trampoline-based code
// patching with as much binary analysis as the binary supports.
//
// The pipeline (Figure 1):
//
//  1. Build the CFG with jump-table analysis (packages cfg, analysis);
//     functions whose analysis fails gracefully are skipped — partial
//     instrumentation instead of all-or-nothing failure.
//  2. Compute control-flow-landing (CFL) blocks per the selected mode:
//     dir keeps jump-table targets CFL, jt clones jump tables, func-ptr
//     additionally rewrites function pointer definitions. Catch blocks
//     stay CFL in every mode (the unwinder resumes at original
//     addresses); entry blocks always get trampolines so calls from
//     unanalysable code keep instrumentation integrity.
//  3. Run trampoline placement analysis (Section 4): every non-CFL
//     block is a scratch block, CFL blocks extend over following
//     scratch blocks into trampoline superblocks.
//  4. Relocate instrumented functions into .instr, fixing direct
//     control flow, re-resolving PC-relative data references (with
//     island/adrp expansion when ranges no longer reach), patching
//     jump-table dispatches onto cloned tables, inserting payload
//     snippets, and recording the return-address map.
//  5. Install trampolines: direct branch, long sequence, multi-hop via
//     scratch space (padding bytes, unused superblock space, retired
//     dynamic-linking sections), trap as the last resort (Section 7).
//  6. Emit the rewritten binary: patched .text, new .instr, .ra_map,
//     .tramp_map, cloned tables, moved dynamic sections, counters.
package core

import (
	"errors"
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/profile"
)

// Mode selects how much indirect control flow is rewritten (Section 5).
type Mode uint8

// Rewriting modes, in increasing reliance on binary analysis.
const (
	// ModeDir rewrites direct control flow only; jump-table target
	// blocks remain CFL blocks.
	ModeDir Mode = iota
	// ModeJT additionally clones jump tables so intra-procedural
	// indirect jumps stay in relocated code.
	ModeJT
	// ModeFuncPtr additionally rewrites function pointer definitions;
	// it refuses binaries whose pointers cannot be identified precisely.
	ModeFuncPtr
)

// String names the mode as in the paper's tables.
func (m Mode) String() string {
	switch m {
	case ModeDir:
		return "dir"
	case ModeJT:
		return "jt"
	case ModeFuncPtr:
		return "func-ptr"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ErrImpreciseFuncPtrs is returned by ModeFuncPtr when function-pointer
// analysis cannot be precise (the safety requirement of Section 5.2);
// callers fall back to ModeJT, exactly as the paper does for Docker.
var ErrImpreciseFuncPtrs = errors.New("core: function pointer analysis is not precise for this binary")

// Options configure one rewrite.
type Options struct {
	Mode    Mode
	Request instrument.Request
	// Verify overwrites every relocated original code byte that is not
	// a trampoline with an illegal instruction — the paper's strong
	// correctness test (Section 8).
	Verify bool
	// InstrGap forces a minimum distance between the original image and
	// .instr, used by experiments to stress branch ranges (a 120MiB
	// .text has the same effect on ppc64le's ±32MB branch).
	InstrGap uint64
	// NoRAMap suppresses return-address map emission even for binaries
	// that need it, to demonstrate the resulting failures.
	NoRAMap bool
	// NoEvidence disables the landing-pad evidence layer, analysing the
	// binary as if it carried no markers (the historical conservative
	// path). Part of the analysis — and therefore cache — identity; see
	// AnalysisConfig.NoEvidence.
	NoEvidence bool
	// Variant selects baseline behaviours (package baseline); the zero
	// value is incremental CFG patching as published.
	Variant Variant
	// PatchJobs bounds the worker pool the plan and emit stages run
	// their per-function work on; <= 1 runs them serially. The output is
	// byte-identical whatever the value, so PatchJobs is deliberately
	// excluded from every cache and result identity.
	PatchJobs int
	// Profile, when non-nil and non-trivial, guides the rewrite: hot
	// functions (per Profile.HotFuncs) get a second, sparsely
	// instrumented variant body selected by a per-function dispatch
	// stub, and hot functions win the scarce short-branch trampoline
	// scratch first. Guidance is advisory — a nil, trivial, or corrupt
	// profile produces exactly the unguided single-variant output — and
	// participates in cache identity through Profile.Hash (same binary +
	// same profile ⇒ byte-identical output on every execution path).
	// Variant planning engages only for full block-entry counter
	// requests on the paper's published configuration (zero Variant);
	// ablation baselines and other request shapes ignore the profile's
	// variant half but still use its trampoline ordering.
	Profile *profile.Profile
	// Trace, when non-nil, receives an "analyze"/"patch" span subtree
	// with per-stage laps and the pipeline counters. Nil disables
	// tracing at zero cost (obs spans are nil-receiver safe).
	Trace *obs.Span
}

// Variant toggles the design decisions that distinguish the paper's
// approach from the baselines it is evaluated against. Each knob removes
// one of the paper's techniques, so the baselines (package baseline) are
// ablations of the same engine rather than separate reimplementations.
type Variant struct {
	// TrampolineEveryBlock installs a trampoline at every basic block
	// (SRBI's placement), instead of only at CFL blocks.
	TrampolineEveryBlock bool
	// NoSuperblocks limits each trampoline to its own block's bytes —
	// no scratch-block extension (pre-trampoline-placement-analysis
	// behaviour).
	NoSuperblocks bool
	// NoScratchSections forgoes retired dynamic-linking sections as
	// multi-hop scratch space.
	NoScratchSections bool
	// CallEmulation replaces runtime RA translation with call emulation
	// (Multiverse/SRBI): emitted code pushes the ORIGINAL return
	// address, so returns land in original code and every call
	// fall-through block needs a trampoline. Implemented on X64 only —
	// like Dyninst-10.2 — and with that implementation's bug: indirect
	// calls through stack memory are not emulated, so unwinding through
	// them sees relocated addresses.
	CallEmulation bool
	// NoTailCallHeuristic disables the gap-based indirect tail call
	// rescue, failing such functions (lower coverage, as SRBI).
	NoTailCallHeuristic bool
	// StrictJumpTableBounds disables Assumption-2 bound extension: a
	// jump table without a visible bounds check fails its function.
	StrictJumpTableBounds bool
	// FailOnAnyError makes rewriting all-or-nothing (IR lowering): one
	// unanalysable function fails the whole binary.
	FailOnAnyError bool
	// NoTrampolines emits no trampolines at all (IR lowering: the
	// relocated code IS the new program; nothing may land in old text).
	NoTrampolines bool
	// ReverseFuncs relocates functions in reverse order (the BOLT
	// comparison's function reordering experiment).
	ReverseFuncs bool
	// ReverseBlocks relocates each function's blocks in reverse order,
	// materialising explicit branches for broken fall-throughs (the
	// block reordering experiment).
	ReverseBlocks bool
}

// Stats summarises what the rewriter did.
type Stats struct {
	TotalFuncs        int
	InstrumentedFuncs int
	SkippedFuncs      []string
	CFLBlocks         int
	ScratchBlocks     int
	Trampolines       map[arch.TrampolineClass]int
	ClonedTables      int
	RewrittenPtrs     int
	RAMapEntries      int
	OrigLoadedSize    uint64
	NewLoadedSize     uint64
	// HotFuncs / VariantFuncs report profile guidance: how many
	// instrumented functions the profile classified hot, and how many of
	// those received a fast variant body plus dispatch stub.
	HotFuncs     int
	VariantFuncs int
	// Landing-pad evidence attribution (analysis.Evidence): marker sites
	// indexed, whether the marker evidence was trusted, candidate
	// pointers soundly skipped instead of refused (func-ptr mode), and
	// jump tables whose inexact bounds were tightened at an unmarked
	// entry.
	MarkSites         int
	EvidenceTrusted   bool
	EvidenceSkips     int
	MarkBoundedTables int
}

// Coverage returns the instrumented fraction of functions, the paper's
// coverage metric.
func (s Stats) Coverage() float64 {
	if s.TotalFuncs == 0 {
		return 1
	}
	return float64(s.InstrumentedFuncs) / float64(s.TotalFuncs)
}

// SizeIncrease returns the loaded-size growth ratio (the size(1) model).
func (s Stats) SizeIncrease() float64 {
	if s.OrigLoadedSize == 0 {
		return 0
	}
	return float64(s.NewLoadedSize)/float64(s.OrigLoadedSize) - 1
}

// TrapCount returns the number of trap trampolines installed.
func (s Stats) TrapCount() int { return s.Trampolines[arch.TrampTrap] }

// Result is a completed rewrite.
type Result struct {
	Binary *bin.Binary
	Stats  Stats
	// Metrics records per-pass stage timings and counters (the
	// experiment pipeline aggregates them across cells).
	Metrics Metrics
	// CounterCells maps the original address of each instrumented point
	// to its counter cell (PayloadCounter only).
	CounterCells map[uint64]uint64
	// RelocMap maps every relocated original instruction address to its
	// new address (exposed for the IR-lowering baseline, which replaces
	// the text outright, and for tests).
	RelocMap map[uint64]uint64
	// TrapSites lists the original addresses where trap trampolines had
	// to be installed (experiments correlate them with function kinds,
	// e.g. library destructors).
	TrapSites []uint64

	// pooled holds the emit-stage buffers backing the result's .instr
	// and clone sections, returnable to the emit pool via Recycle.
	pooled [][]byte
}

// Recycle returns the result's pooled emit buffers for reuse by later
// Patch calls. The rewritten Binary (and any slice derived from its
// sections) must not be used after Recycle — serialise it first. The
// steady-state service loop is the intended caller: marshal the image,
// recycle the result. Recycle is idempotent; calling it on a result
// whose buffers were never pooled is a no-op.
func (r *Result) Recycle() {
	for _, buf := range r.pooled {
		putEmitBuf(buf)
	}
	r.pooled = nil
}

// Section and layout constants.
const (
	// instrAlign aligns each relocated function in .instr.
	instrAlign = 16
	// sectionGap separates newly added sections.
	sectionGap = 0x1000
)
