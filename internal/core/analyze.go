package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/dataflow"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/profile"
)

// AnalysisConfig identifies one analysis variant of a binary: everything
// Analyze consumes besides the binary itself. Two rewrites of the same
// binary with the same config share all analysis work, whatever their
// instrumentation request — the content-addressed store (internal/store)
// keys cached analyses by binary hash × arch × mode × variant.
type AnalysisConfig struct {
	Mode    Mode
	Variant Variant
	// NoEvidence disables the landing-pad evidence layer: the binary is
	// analysed as if it carried no markers, taking the historical
	// conservative path everywhere. It IS part of the analysis identity
	// (unlike Trace/Units): with evidence engaged a func-ptr analysis of
	// a CFI binary can differ from the conservative one, so the two must
	// never share cache entries.
	NoEvidence bool
	// Trace, when non-nil, receives an "analyze" span with per-stage
	// laps. It is NOT part of the analysis identity: caches key analyses
	// by (hash, arch, mode, variant) only, and Analyze clears it before
	// storing the config in the Analysis so a cached analysis never
	// retains the first requester's span tree.
	Trace *obs.Span
	// Units, when non-nil, is the function-keyed second store level:
	// Analyze pulls unchanged functions' units from it and deposits
	// freshly computed ones, turning a whole-binary analysis of a new
	// version into a delta over the previous one. Like Trace, it is NOT
	// part of the analysis identity — the assembled Analysis is
	// byte-for-byte the one a cold run would produce — and it is cleared
	// before the config is retained.
	Units *UnitStore
}

// Analysis is the request-independent product of analysing one binary:
// the CFG with jump-table resolution, function-pointer sites (func-ptr
// mode), and lazily computed per-function trampoline placement inputs
// (CFL blocks, liveness, superblocks). It is read-only after Analyze
// returns, so one Analysis may serve any number of concurrent Patch
// calls — the rewrite-service warm path.
type Analysis struct {
	Binary *bin.Binary
	Config AnalysisConfig
	Graph  *cfg.Graph
	// PtrSites holds the function-pointer analysis result (func-ptr mode
	// only; nil otherwise).
	PtrSites []analysis.PtrSite
	// Evidence is the landing-pad evidence layer the analysis ran under:
	// marker index, trust decision, and per-source attribution. Never nil
	// (marker-less and NoEvidence analyses carry untrusted evidence).
	Evidence *analysis.Evidence
	// Metrics records the analysis-phase stage timings (cfg,
	// funcptr-analysis). Patch copies them into its Result so a cold
	// Rewrite reports the same stage shape as before the split; a warm
	// Patch reports the timings of the cached analysis.
	Metrics Metrics
	// FuncUnits are the per-function analysis units the graph was
	// assembled from, in symbol-table order.
	FuncUnits []*FuncUnit
	// Delta reports how the assembly went: how many units were reused
	// from the store versus recomputed.
	Delta DeltaStats

	unitOf  map[*cfg.Func]*FuncUnit
	padOnce sync.Once
	padding [][2]uint64
}

// funcPlacement caches one function's trampoline placement inputs. The
// once guard single-flights computation across concurrent Patch calls;
// the fields are read-only afterwards. The memo lives inside the
// function's FuncUnit, so a reused unit carries its placement across
// binary versions — placement depends only on the function's CFG, the
// mode/variant (part of the unit key), and the binary-wide exception
// flag (part of the unit identity).
type funcPlacement struct {
	once sync.Once
	cfl  map[uint64]bool
	lv   *dataflow.Liveness
	sbs  []superblock
}

// Analyze runs every rewrite pass that is independent of the
// instrumentation request, assembling a whole-binary Analysis from
// function-granular units:
//
//  1. function table — symbols, or entry discovery for stripped
//     binaries;
//  2. identity — each function's content-addressed unit ID (bytes,
//     in-range relocations, catch pads, binary-wide environment);
//  3. assembly — for each function, a validated unit from the store
//     (cfgc.Units) or a fresh BuildFunc run with the resolver's read
//     set recorded; then the whole-binary graph, variant adjustments,
//     and function-pointer analysis in func-ptr mode.
//
// The result is cacheable: Patch applies any number of instrumentation
// requests to it without repeating this work.
func Analyze(b *bin.Binary, cfgc AnalysisConfig) (*Analysis, error) {
	mx := Metrics{}
	clock := time.Now()
	sp := cfgc.Trace.Start("analyze")
	defer sp.End()
	units := cfgc.Units
	cfgc.Trace, cfgc.Units = nil, nil // never retained by the (cacheable) Analysis
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("core: input binary invalid: %w", err)
	}

	// Pass 1: the function table.
	text := b.Text()
	if text == nil {
		return nil, fmt.Errorf("core: CFG construction: cfg: binary has no text section")
	}
	syms := b.FuncSymbols()
	if len(syms) == 0 {
		// Stripped binary: recover function entries first, as Dyninst's
		// parser does (the paper's libcuda.so is stripped). Discovery is
		// re-run per version — it is cheap and global — and the delta
		// applies per recovered fn_<addr> function.
		ds, err := cfg.DiscoverFunctions(b)
		if err != nil {
			return nil, fmt.Errorf("core: CFG construction: %w", err)
		}
		syms = ds
	}
	pads, err := cfg.UnwindTable(b)
	if err != nil {
		return nil, fmt.Errorf("core: CFG construction: %w", err)
	}
	resolver := analysis.NewJumpTables(b)
	resolver.Strict = cfgc.Variant.StrictJumpTableBounds

	// Evidence scan: before any unit is keyed, because the trust decision
	// changes CFG construction (mark-bounded jump tables) and so must be
	// part of every unit's identity.
	ev := analysis.Untrusted()
	if !cfgc.NoEvidence {
		ev = analysis.ScanEvidence(b)
	}

	// Pass 2: per-function identities. The full name→ID map must exist
	// before any unit is validated or built: reuse validation compares
	// dependency edges against it, and fresh builds stamp their deps
	// from it.
	env := deltaEnv(b)
	if cfgc.Mode == ModeFuncPtr && ev.Trusted {
		// Marker evidence engages only in func-ptr mode, where it converts
		// refusal into sound acceptance; dir/jt stay byte-identical to the
		// conservative path. The suffix forks the unit identity so trusted
		// and conservative units never validate against each other.
		resolver.UseMarks(ev.Marks)
		env += "|lp1"
	}
	type fent struct {
		sym bin.Symbol
		id  string
	}
	var table []fent
	idByName := make(map[string]string, len(syms))
	for _, sym := range syms {
		if sym.Size == 0 {
			continue
		}
		id := unitID(b, sym, cfg.CatchPads(pads, sym), env)
		table = append(table, fent{sym, id})
		idByName[sym.Name] = id
	}
	symAt := func(addr uint64) (string, bool) {
		i := sort.Search(len(table), func(i int) bool { return table[i].sym.Addr > addr })
		if i > 0 {
			if s := table[i-1].sym; addr >= s.Addr && addr < s.Addr+s.Size {
				return s.Name, true
			}
		}
		return "", false
	}

	// Pass 3: assemble units — reuse validated ones, recompute the rest.
	funcs := make([]*cfg.Func, 0, len(table))
	fus := make([]*FuncUnit, 0, len(table))
	unitOf := make(map[*cfg.Func]*FuncUnit, len(table))
	var delta DeltaStats
	for _, fe := range table {
		key := UnitKey{ID: fe.id, Arch: b.Arch, Mode: cfgc.Mode, Variant: cfgc.Variant}
		var u *FuncUnit
		if units != nil {
			if cand, ok := units.m.Get(key, func(c *FuncUnit) bool {
				return c.validFor(b, resolver, idByName)
			}); ok {
				u = cand
				delta.Reused++
			}
		}
		if u == nil {
			resolver.StartRecording()
			f := cfg.BuildFunc(b, text, fe.sym, pads, resolver)
			rec := resolver.StopRecording()
			if cfgc.Variant.NoTailCallHeuristic && f.Err == nil {
				for _, ij := range f.IndirectJumps {
					if ij.TailCall {
						f.Err = fmt.Errorf("core: unresolved indirect jump at %#x (tail call heuristic disabled)", ij.Addr)
						break
					}
				}
			}
			u = &FuncUnit{Key: key, Name: fe.sym.Name, Fn: f, Reads: rec}
			u.Deps = callDeps(f, rec, symAt, idByName)
			delta.Recomputed++
			delta.RecomputedNames = append(delta.RecomputedNames, fe.sym.Name)
			if units != nil {
				units.m.Put(key, u)
			}
		}
		funcs = append(funcs, u.Fn)
		fus = append(fus, u)
		unitOf[u.Fn] = u
	}
	g := cfg.Assemble(b, funcs)
	if cfgc.Variant.FailOnAnyError {
		for _, f := range g.Funcs {
			if f.Err != nil {
				return nil, fmt.Errorf("core: all-or-nothing rewriting failed: %w", f.Err)
			}
		}
	}
	mx.FuncsReused, mx.FuncsRecomputed = delta.Reused, delta.Recomputed
	sp.Record(StageCFG, mx.lap(StageCFG, &clock))

	// Function pointer analysis gates func-ptr mode (Section 5.2): it is
	// only safe when every pointer is identified precisely.
	var ptrSites []analysis.PtrSite
	if cfgc.Mode == ModeFuncPtr {
		sites, err := ev.FuncPointers(b, g)
		if err != nil {
			if errors.Is(err, analysis.ErrImprecise) {
				return nil, fmt.Errorf("%w: %v", ErrImpreciseFuncPtrs, err)
			}
			return nil, fmt.Errorf("core: function pointer analysis: %w", err)
		}
		ptrSites = sites
	}
	// Deposit the jump-table source's attribution (tables resolved,
	// mark-bounded count) into the evidence layer.
	_ = resolver.Collect(b, g, ev)
	sp.Record(StageFuncPtr, mx.lap(StageFuncPtr, &clock))

	return &Analysis{
		Binary: b, Config: cfgc, Graph: g, PtrSites: ptrSites, Metrics: mx,
		Evidence: ev, FuncUnits: fus, Delta: delta, unitOf: unitOf,
	}, nil
}

// placement returns the function's cached placement inputs, computing
// them on first use. CFL sets, liveness, and superblocks depend only on
// inputs folded into the unit identity — so the memo lives in the
// function's unit and is shared read-only by every Patch on every
// Analysis the unit is assembled into.
func (an *Analysis) placement(f *cfg.Func) *funcPlacement {
	p := &an.unitOf[f].place
	p.once.Do(func() {
		b, mode, v := an.Binary, an.Config.Mode, an.Config.Variant
		cfl := cflSet(b, f, mode)
		if v.CallEmulation && b.Arch == arch.X64 {
			// Emulated calls return to ORIGINAL fall-through blocks.
			for _, blk := range f.Blocks {
				if blk.Last().IsCall() && blk.Last().Kind != arch.CallIndMem {
					cfl[blk.End] = true
				}
			}
		}
		if v.TrampolineEveryBlock {
			for _, blk := range f.Blocks {
				cfl[blk.Start] = true
			}
		}
		sbs := superblocks(f, cfl)
		if v.NoSuperblocks {
			for i := range sbs {
				if blk, ok := f.BlockAt(sbs[i].Start); ok {
					if n := blk.Len() - int(sbs[i].Start-blk.Start); n < sbs[i].Space {
						sbs[i].Space = n
					}
				}
			}
		}
		p.cfl = cfl
		p.lv = dataflow.ComputeLiveness(b.Arch, f)
		p.sbs = sbs
	})
	return p
}

// paddingRanges lazily computes the text section's inter-function
// padding, which every Patch donates to the scratch pool.
func (an *Analysis) paddingRanges() [][2]uint64 {
	an.padOnce.Do(func() { an.padding = paddingRanges(an.Binary) })
	return an.padding
}

// ProfileFromHeat aggregates a heat map captured by an emulated run
// (emu.Options.CaptureHeat, keyed by link-time address) into a profile
// artifact over this analysis's CFG. binaryHash is the content hash of
// the binary the heat was captured on; heat samples that land outside
// any known function are dropped.
func (an *Analysis) ProfileFromHeat(binaryHash string, heat map[uint64]uint64) *profile.Profile {
	fbs := make([]profile.FuncBlocks, 0, len(an.Graph.Funcs))
	for _, f := range an.Graph.Funcs {
		fb := profile.FuncBlocks{Name: f.Name, Entry: f.Entry, Blocks: make([]uint64, 0, len(f.Blocks))}
		for _, blk := range f.Blocks {
			fb.Blocks = append(fb.Blocks, blk.Start)
		}
		fbs = append(fbs, fb)
	}
	return profile.Build(binaryHash, an.Binary.Arch, fbs, heat)
}
