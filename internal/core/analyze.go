package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/dataflow"
	"icfgpatch/internal/obs"
)

// AnalysisConfig identifies one analysis variant of a binary: everything
// Analyze consumes besides the binary itself. Two rewrites of the same
// binary with the same config share all analysis work, whatever their
// instrumentation request — the content-addressed store (internal/store)
// keys cached analyses by binary hash × arch × mode × variant.
type AnalysisConfig struct {
	Mode    Mode
	Variant Variant
	// Trace, when non-nil, receives an "analyze" span with per-stage
	// laps. It is NOT part of the analysis identity: caches key analyses
	// by (hash, arch, mode, variant) only, and Analyze clears it before
	// storing the config in the Analysis so a cached analysis never
	// retains the first requester's span tree.
	Trace *obs.Span
}

// Analysis is the request-independent product of analysing one binary:
// the CFG with jump-table resolution, function-pointer sites (func-ptr
// mode), and lazily computed per-function trampoline placement inputs
// (CFL blocks, liveness, superblocks). It is read-only after Analyze
// returns, so one Analysis may serve any number of concurrent Patch
// calls — the rewrite-service warm path.
type Analysis struct {
	Binary *bin.Binary
	Config AnalysisConfig
	Graph  *cfg.Graph
	// PtrSites holds the function-pointer analysis result (func-ptr mode
	// only; nil otherwise).
	PtrSites []analysis.PtrSite
	// Metrics records the analysis-phase stage timings (cfg,
	// funcptr-analysis). Patch copies them into its Result so a cold
	// Rewrite reports the same stage shape as before the split; a warm
	// Patch reports the timings of the cached analysis.
	Metrics Metrics

	place   sync.Map // *cfg.Func -> *funcPlacement
	padOnce sync.Once
	padding [][2]uint64
}

// funcPlacement caches one function's trampoline placement inputs. The
// once guard single-flights computation across concurrent Patch calls;
// the fields are read-only afterwards.
type funcPlacement struct {
	once sync.Once
	cfl  map[uint64]bool
	lv   *dataflow.Liveness
	sbs  []superblock
}

// Analyze runs every rewrite pass that is independent of the
// instrumentation request: CFG construction with jump-table analysis,
// the variant's coverage adjustments, and function-pointer analysis in
// func-ptr mode. The result is cacheable: Patch applies any number of
// instrumentation requests to it without repeating this work.
func Analyze(b *bin.Binary, cfgc AnalysisConfig) (*Analysis, error) {
	mx := Metrics{}
	clock := time.Now()
	sp := cfgc.Trace.Start("analyze")
	defer sp.End()
	cfgc.Trace = nil // never retained by the (cacheable) Analysis
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("core: input binary invalid: %w", err)
	}
	resolver := analysis.NewJumpTables(b)
	resolver.Strict = cfgc.Variant.StrictJumpTableBounds
	var g *cfg.Graph
	var err error
	if len(b.FuncSymbols()) == 0 {
		// Stripped binary: recover function entries first, as Dyninst's
		// parser does (the paper's libcuda.so is stripped).
		g, err = cfg.BuildStripped(b, resolver)
	} else {
		g, err = cfg.Build(b, resolver)
	}
	if err != nil {
		return nil, fmt.Errorf("core: CFG construction: %w", err)
	}
	if cfgc.Variant.NoTailCallHeuristic {
		for _, f := range g.Funcs {
			if f.Err != nil {
				continue
			}
			for _, ij := range f.IndirectJumps {
				if ij.TailCall {
					f.Err = fmt.Errorf("core: unresolved indirect jump at %#x (tail call heuristic disabled)", ij.Addr)
					break
				}
			}
		}
	}
	if cfgc.Variant.FailOnAnyError {
		for _, f := range g.Funcs {
			if f.Err != nil {
				return nil, fmt.Errorf("core: all-or-nothing rewriting failed: %w", f.Err)
			}
		}
	}
	sp.Record(StageCFG, mx.lap(StageCFG, &clock))

	// Function pointer analysis gates func-ptr mode (Section 5.2): it is
	// only safe when every pointer is identified precisely.
	var ptrSites []analysis.PtrSite
	if cfgc.Mode == ModeFuncPtr {
		sites, err := analysis.FuncPointers(b, g)
		if err != nil {
			if errors.Is(err, analysis.ErrImprecise) {
				return nil, fmt.Errorf("%w: %v", ErrImpreciseFuncPtrs, err)
			}
			return nil, fmt.Errorf("core: function pointer analysis: %w", err)
		}
		ptrSites = sites
	}
	sp.Record(StageFuncPtr, mx.lap(StageFuncPtr, &clock))

	return &Analysis{Binary: b, Config: cfgc, Graph: g, PtrSites: ptrSites, Metrics: mx}, nil
}

// placement returns the function's cached placement inputs, computing
// them on first use. CFL sets, liveness, and superblocks depend only on
// the binary, mode, and variant — all part of the analysis key — so the
// result is shared read-only by every Patch on this Analysis.
func (an *Analysis) placement(f *cfg.Func) *funcPlacement {
	pi, _ := an.place.LoadOrStore(f, &funcPlacement{})
	p := pi.(*funcPlacement)
	p.once.Do(func() {
		b, mode, v := an.Binary, an.Config.Mode, an.Config.Variant
		cfl := cflSet(b, f, mode)
		if v.CallEmulation && b.Arch == arch.X64 {
			// Emulated calls return to ORIGINAL fall-through blocks.
			for _, blk := range f.Blocks {
				if blk.Last().IsCall() && blk.Last().Kind != arch.CallIndMem {
					cfl[blk.End] = true
				}
			}
		}
		if v.TrampolineEveryBlock {
			for _, blk := range f.Blocks {
				cfl[blk.Start] = true
			}
		}
		sbs := superblocks(f, cfl)
		if v.NoSuperblocks {
			for i := range sbs {
				if blk, ok := f.BlockAt(sbs[i].Start); ok {
					if n := blk.Len() - int(sbs[i].Start-blk.Start); n < sbs[i].Space {
						sbs[i].Space = n
					}
				}
			}
		}
		p.cfl = cfl
		p.lv = dataflow.ComputeLiveness(b.Arch, f)
		p.sbs = sbs
	})
	return p
}

// paddingRanges lazily computes the text section's inter-function
// padding, which every Patch donates to the scratch pool.
func (an *Analysis) paddingRanges() [][2]uint64 {
	an.padOnce.Do(func() { an.padding = paddingRanges(an.Binary) })
	return an.padding
}
