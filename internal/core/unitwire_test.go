package core_test

import (
	"bytes"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

// TestUnitWireRoundTrip is the peer warm path's correctness core, with
// the network removed: units computed by one "node" (an Analyze into a
// unit store), shipped through the wire codec, and seeded into a second
// node's empty store must let that node's Analyze reuse every function
// — FuncsRecomputed == 0 — and patch to bytes identical to a cold
// rewrite. Covered per arch because the graphs being serialised differ
// structurally (variable-length vs fixed-width ISAs, in-text tables on
// PPC).
func TestUnitWireRoundTrip(t *testing.T) {
	profile := workload.Profile{
		Name: "unitwire", Seed: 11, Lang: "c++",
		Funcs: 16, SwitchFrac: 0.4, SpillFrac: 0.2,
		TinyFrac: 0.1, Exceptions: true, StackCalls: true, Iters: 4,
	}
	req := instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}

	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		t.Run(a.String(), func(t *testing.T) {
			p, err := workload.Generate(a, false, profile)
			if err != nil {
				t.Fatal(err)
			}
			b := p.Binary
			opts := core.Options{Mode: core.ModeJT, Request: req}

			cold, err := core.Rewrite(b, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := cold.Binary.Marshal()

			// Node A: cold analyze, units deposited.
			unitsA := core.NewUnitStore(0)
			anA, err := core.Analyze(b, core.AnalysisConfig{Mode: core.ModeJT, Units: unitsA})
			if err != nil {
				t.Fatal(err)
			}

			// The wire: marshal A's units, unmarshal into B's world.
			data, err := core.MarshalUnits(anA.FuncUnits)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := core.UnmarshalUnits(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(decoded) != len(anA.FuncUnits) {
				t.Fatalf("round trip lost units: %d -> %d", len(anA.FuncUnits), len(decoded))
			}

			// Node B: empty store seeded from the wire; analysis must be
			// a pure delta.
			unitsB := core.NewUnitStore(0)
			if n := unitsB.Seed(decoded); n != len(decoded) {
				t.Fatalf("seeded %d of %d units", n, len(decoded))
			}
			if st := unitsB.Stats(); st.PeerHits != uint64(len(decoded)) {
				t.Fatalf("Stats.PeerHits = %d, want %d", st.PeerHits, len(decoded))
			}
			anB, err := core.Analyze(b, core.AnalysisConfig{Mode: core.ModeJT, Units: unitsB})
			if err != nil {
				t.Fatal(err)
			}
			if anB.Delta.Recomputed != 0 {
				t.Fatalf("seeded analysis recomputed %d funcs (%v), want 0",
					anB.Delta.Recomputed, anB.Delta.RecomputedNames)
			}
			if anB.Delta.Reused != len(decoded) {
				t.Fatalf("seeded analysis reused %d of %d units", anB.Delta.Reused, len(decoded))
			}

			res, err := anB.Patch(opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Binary.Marshal(); !bytes.Equal(got, want) {
				t.Fatalf("peer-seeded rewrite diverged from cold: %d vs %d bytes", len(got), len(want))
			}
		})
	}
}

// TestUnitWireGarbage pins the decoder's rejection paths: truncated or
// arbitrary bytes must error, never panic.
func TestUnitWireGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {0x01}, []byte("not a gob stream"), bytes.Repeat([]byte{0xff}, 64)} {
		if us, err := core.UnmarshalUnits(data); err == nil && len(us) > 0 {
			t.Errorf("UnmarshalUnits(%d garbage bytes) decoded %d units without error", len(data), len(us))
		}
	}
}
