// Unit wire codec: the peer warm path's serialisation of FuncUnits.
//
// A cluster node that misses its analysis store asks the owning peer
// for the binary's cached units before recomputing (internal/cluster).
// What travels is exactly the reusable state: the unit's identity, its
// CFG, the dependency index, and the resolver's recorded read set. The
// receiver re-validates every unit against its own copy of the binary
// (FuncUnit.validFor — dependency hashes and read-set replay), so a
// stale or mismatched peer answer degrades to a recompute, never to a
// wrong reuse; the lazily memoised placement and emit caches are
// deliberately not shipped, because they are derived state the receiver
// rebuilds on first use without affecting emitted bytes.
//
// Error values are the one non-gob-able ingredient: Func.Err and
// IndirectJump.Err are interfaces holding arbitrary concrete types.
// They flatten to their message text on the wire and rehydrate as
// opaque errors — the rewriter only ever inspects them for nil-ness
// and renders their text, so a rehydrated unit patches byte-identically.
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/cfg"
)

// wireJumpErr records the flattened Err of one IndirectJump by index.
type wireJumpErr struct {
	Index int
	Text  string
}

// wireUnit is FuncUnit's gob shape: memo caches dropped, errors
// flattened.
type wireUnit struct {
	Key      UnitKey
	Name     string
	Fn       *cfg.Func
	FnErr    string
	JumpErrs []wireJumpErr
	Deps     []Dep
	Reads    *analysis.Recording
}

// MarshalUnits encodes units for the peer wire. The units' graphs are
// shared read-only state — encoding copies the top-level Func so the
// error flattening never mutates a unit another request is using.
func MarshalUnits(us []*FuncUnit) ([]byte, error) {
	wus := make([]wireUnit, 0, len(us))
	for _, u := range us {
		if u == nil || u.Fn == nil {
			continue
		}
		w := wireUnit{Key: u.Key, Name: u.Name, Deps: u.Deps, Reads: u.Reads}
		fc := *u.Fn
		if fc.Err != nil {
			w.FnErr = fc.Err.Error()
			fc.Err = nil
		}
		if n := len(fc.IndirectJumps); n > 0 {
			ijs := append([]cfg.IndirectJump(nil), fc.IndirectJumps...)
			for i := range ijs {
				if ijs[i].Err != nil {
					w.JumpErrs = append(w.JumpErrs, wireJumpErr{Index: i, Text: ijs[i].Err.Error()})
					ijs[i].Err = nil
				}
			}
			fc.IndirectJumps = ijs
		}
		w.Fn = &fc
		wus = append(wus, w)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wus); err != nil {
		return nil, fmt.Errorf("core: marshal units: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalUnits decodes a peer's unit payload, rehydrating flattened
// errors and rebuilding each graph's internal block index.
func UnmarshalUnits(data []byte) ([]*FuncUnit, error) {
	var wus []wireUnit
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wus); err != nil {
		return nil, fmt.Errorf("core: unmarshal units: %w", err)
	}
	us := make([]*FuncUnit, 0, len(wus))
	for i := range wus {
		w := &wus[i]
		if w.Fn == nil {
			return nil, fmt.Errorf("core: unmarshal units: unit %d (%s) has no graph", i, w.Name)
		}
		if w.FnErr != "" {
			w.Fn.Err = errors.New(w.FnErr)
		}
		for _, je := range w.JumpErrs {
			if je.Index < 0 || je.Index >= len(w.Fn.IndirectJumps) {
				return nil, fmt.Errorf("core: unmarshal units: unit %s jump-error index %d out of range", w.Name, je.Index)
			}
			w.Fn.IndirectJumps[je.Index].Err = errors.New(je.Text)
		}
		w.Fn.Reindex()
		us = append(us, &FuncUnit{Key: w.Key, Name: w.Name, Fn: w.Fn, Deps: w.Deps, Reads: w.Reads})
	}
	return us, nil
}

// Seed deposits units obtained from a cluster peer into the store,
// attributing them as peer hits in Stats (distinct from disk warms and
// memory hits). The units enter the same validation gauntlet as any
// cached candidate — Analyze re-checks identity, dependency edges, and
// the recorded read set before reuse — so seeding never bypasses the
// delta engine's conservatism. Returns the number seeded.
func (s *UnitStore) Seed(us []*FuncUnit) int {
	if s == nil {
		return 0
	}
	n := 0
	for _, u := range us {
		if u == nil || u.Fn == nil {
			continue
		}
		s.m.Put(u.Key, u)
		n++
	}
	if n > 0 {
		s.m.NotePeer(uint64(n))
	}
	return n
}
