package core

import (
	"fmt"
	"io"
)

// reverseUnits applies the ReverseFuncs ablation: functions relocate in
// reverse symbol order (counter cells keep their symbol-order
// assignment, matching the serial rewriter).
func (p *PatchPlan) reverseUnits() {
	for i, j := 0, len(p.units)-1; i < j; i, j = i+1, j-1 {
		p.units[i], p.units[j] = p.units[j], p.units[i]
	}
}

// PlanFor builds and lays out the patch plan for one request without
// cloning or mutating the binary: the plan and layout stages run, the
// emit stage does not. It is the inspection entry point behind
// icfg-objdump -plan; opts must carry the mode and variant the analysis
// was built with.
func (an *Analysis) PlanFor(opts Options) (*PatchPlan, error) {
	opts, err := an.preparePatch(opts)
	if err != nil {
		return nil, err
	}
	counterBase := alignUp(an.Binary.MaxLoadedAddr(), sectionGap) + sectionGap
	p := newPatchPlan(an, opts, counterBase)
	if opts.Variant.ReverseFuncs {
		p.reverseUnits()
	}
	if err := p.layoutAll(opts); err != nil {
		return nil, err
	}
	return p, nil
}

// Dump renders the laid-out plan for debugging: the section plan, every
// unit's items with their resolved targets and expansion states, and
// the planned trampoline jobs.
func (p *PatchPlan) Dump(w io.Writer) {
	b := p.an.Binary
	fmt.Fprintf(w, "patch plan: arch=%s mode=%s units=%d clones=%d\n",
		b.Arch, p.mode, len(p.units), len(p.clones))
	if p.nextCell > p.counterBase {
		fmt.Fprintf(w, "  counters      [%#x,%#x)\n", p.counterBase, p.nextCell)
	}
	if p.prof != nil {
		fmt.Fprintf(w, "  profile       hash=%s hot=%d variants=%d\n", p.prof.Hash()[:12], len(p.hot), len(p.varAddr))
	}
	if p.selEnd > p.selBase {
		fmt.Fprintf(w, "  selectors     [%#x,%#x)\n", p.selBase, p.selEnd)
	}
	for _, mv := range p.sections.moves {
		fmt.Fprintf(w, "  move %-12s [%#x,%#x) -> %#x scratch=%t\n",
			mv.name, mv.oldAddr, mv.oldEnd, mv.addr, mv.scratch)
	}
	if len(p.clones) > 0 {
		fmt.Fprintf(w, "  clones        base %#x (%d bytes)\n", p.sections.cloneBase, p.cloneBytes())
		for i, c := range p.clones {
			fmt.Fprintf(w, "    clone %d owner=%s addr=%#x entries=%d entry-size=%d\n",
				i, c.owner.Name, c.addr, c.tbl.Count, c.newEntry)
		}
	}
	fmt.Fprintf(w, "  instr         [%#x,%#x)\n", p.instrBase, p.instrEnd)
	for _, u := range p.units {
		fmt.Fprintf(w, "unit %s: start %#x, %d items%s\n", u.fn.Name, p.unitStart[u.fn.Name], len(u.items), p.unitTier(u))
		for i := range u.items {
			it := &u.items[i]
			fmt.Fprintf(w, "  %#x len=%-2d %s", it.newAddr, it.newLen, it.ins.Kind)
			if it.origAddr != 0 {
				fmt.Fprintf(w, " orig=%#x", it.origAddr)
			} else {
				fmt.Fprintf(w, " inserted")
			}
			if it.tk != tkNone {
				fmt.Fprintf(w, " %s -> %#x (%s)", it.pf, p.resolveTarget(it), targetKindName(it.tk))
			}
			if it.expand != 0 {
				fmt.Fprintf(w, " expand=%s", it.expand)
			}
			if it.ra != raNone {
				fmt.Fprintf(w, " ra")
			}
			fmt.Fprintln(w)
		}
	}
	for _, ft := range p.tramps {
		if len(ft.jobs) == 0 {
			continue
		}
		fmt.Fprintf(w, "trampolines %s: cfl=%d scratch-blocks=%d\n", ft.fn.Name, ft.cflBlocks, ft.scratchBlocks)
		for _, job := range ft.jobs {
			to := p.relocMap[job.sb.Start]
			fmt.Fprintf(w, "  superblock %#x space=%d scratch=%s -> %#x\n",
				job.sb.Start, job.sb.Space, job.scratch, to)
		}
	}
}

// unitTier annotates a unit's variant/placement tier under profile
// guidance: hot functions carry a fast variant behind a dispatch stub,
// cold ones relocate single-variant. Empty without a profile.
func (p *PatchPlan) unitTier(u *planUnit) string {
	if p.prof == nil {
		return ""
	}
	if u.variants > 0 {
		return fmt.Sprintf(" [tier=hot variants=2 sel=%#x fast=%#x heat=%d]",
			p.selCells[u.fn.Name], p.varAddr[u.varSlot], p.profCount[u.fn.Name])
	}
	return fmt.Sprintf(" [tier=cold variants=1 heat=%d]", p.profCount[u.fn.Name])
}

// targetKindName names a targetKind for plan dumps.
func targetKindName(tk targetKind) string {
	switch tk {
	case tkAbs:
		return "abs"
	case tkMapped:
		return "mapped"
	case tkClone:
		return "clone"
	case tkFuncBase:
		return "func-base"
	case tkVarEntry:
		return "var-entry"
	case tkLocal:
		return "local"
	default:
		return "none"
	}
}
