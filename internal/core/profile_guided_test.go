package core

import (
	"bytes"
	"strings"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/profile"
	"icfgpatch/internal/rtlib"
)

// captureHeat runs the unmodified binary with heat capture on and
// returns the per-address landing counts.
func captureHeat(t *testing.T, img *bin.Binary) map[uint64]uint64 {
	t.Helper()
	m, err := emu.Load(img, emu.Options{CaptureHeat: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatalf("heat capture run: %v", err)
	}
	if len(out.Heat) == 0 {
		t.Fatal("heat capture recorded nothing")
	}
	return out.Heat
}

func counterRequest() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter}
}

// TestProfileGuidedPreservesBehaviour is the semantic contract of the
// multi-version rewrite: with a real captured profile, hot functions
// get a fast variant behind a dispatch stub, the rewritten binary's
// output is identical to the original, entry-block counters stay exact
// in both variants (they share one cell), and the guided run burns
// fewer emulated cycles than the unguided counter rewrite.
func TestProfileGuidedPreservesBehaviour(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, _, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		want := runOriginal(t, img, nil)
		heat := captureHeat(t, img)

		an, err := Analyze(img, AnalysisConfig{Mode: ModeJT})
		if err != nil {
			t.Fatal(err)
		}
		prof := an.ProfileFromHeat("test", heat)
		if prof.Trivial() {
			t.Fatal("captured profile is trivial")
		}

		unguided, err := an.Patch(Options{Mode: ModeJT, Request: counterRequest(), Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		guided, err := an.Patch(Options{Mode: ModeJT, Request: counterRequest(), Verify: true, Profile: prof})
		if err != nil {
			t.Fatal(err)
		}
		if guided.Stats.HotFuncs == 0 || guided.Stats.VariantFuncs == 0 {
			t.Fatalf("hot=%d variants=%d: guidance planned nothing", guided.Stats.HotFuncs, guided.Stats.VariantFuncs)
		}
		if bytes.Equal(unguided.Binary.Marshal(), guided.Binary.Marshal()) {
			t.Fatal("guided output identical to unguided — profile had no effect")
		}

		run := func(res *Result) emu.Result {
			lib, err := rtlib.Preload(res.Binary)
			if err != nil {
				t.Fatal(err)
			}
			m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
			if err != nil {
				t.Fatal(err)
			}
			out, err := m.Run()
			if err != nil {
				t.Fatalf("run rewritten: %v", err)
			}
			// Entry-block counters must be exact: the fast variant's entry
			// snippet shares the full body's cell.
			for _, f := range an.Graph.Funcs {
				cell, ok := res.CounterCells[f.Entry]
				if !ok {
					continue
				}
				cnt, err := m.MemRead(cell, 8)
				if err != nil {
					t.Fatal(err)
				}
				truth := runOriginal(t, img, []uint64{f.Entry}).Profile[f.Entry]
				if cnt != truth {
					t.Errorf("%s entry counter = %d, ground truth = %d", f.Name, cnt, truth)
				}
			}
			return out
		}
		gotG := run(guided)
		gotU := run(unguided)
		if string(gotG.Output) != string(want.Output) {
			t.Fatalf("guided output = %q, want %q", gotG.Output, want.Output)
		}
		if string(gotU.Output) != string(want.Output) {
			t.Fatalf("unguided output = %q, want %q", gotU.Output, want.Output)
		}
		if gotG.Cycles >= gotU.Cycles {
			t.Errorf("guided run not cheaper: %d cycles vs unguided %d", gotG.Cycles, gotU.Cycles)
		} else {
			t.Logf("guided %d cycles vs unguided %d (hot=%d variants=%d)",
				gotG.Cycles, gotU.Cycles, guided.Stats.HotFuncs, guided.Stats.VariantFuncs)
		}
	})
}

// TestProfileGuidedDegradesCleanly pins the degradation contract: a nil
// profile, an empty profile, and a zero-heat profile all produce output
// byte-identical to the unguided rewrite, with zero variant stats.
func TestProfileGuidedDegradesCleanly(t *testing.T) {
	img, _, err := richProgram(arch.X64, true).Link()
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Mode: ModeJT, Request: counterRequest(), Verify: true}
	base, err := Rewrite(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Binary.Marshal()
	for name, prof := range map[string]*profile.Profile{
		"empty":     {Arch: arch.X64},
		"zero-heat": {Arch: arch.X64, Funcs: []profile.FuncHeat{{Name: "main", Entry: 0x1000, Blocks: 3}}},
	} {
		o := opts
		o.Profile = prof
		res, err := Rewrite(img, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.HotFuncs != 0 || res.Stats.VariantFuncs != 0 {
			t.Errorf("%s: hot=%d variants=%d, want 0/0", name, res.Stats.HotFuncs, res.Stats.VariantFuncs)
		}
		if !bytes.Equal(want, res.Binary.Marshal()) {
			t.Errorf("%s: trivial profile changed the output bytes", name)
		}
	}
}

// TestProfileGuidedAblationsSkipVariants: a non-zero Variant (ablation
// baseline) or a non-counter request uses the profile only for
// trampoline ordering — no dispatch stubs, no selector section — and
// still rewrites correctly.
func TestProfileGuidedAblationsSkipVariants(t *testing.T) {
	img, _, err := richProgram(arch.A64, false).Link()
	if err != nil {
		t.Fatal(err)
	}
	heat := captureHeat(t, img)
	an, err := Analyze(img, AnalysisConfig{Mode: ModeDir, Variant: Variant{ReverseFuncs: true}})
	if err != nil {
		t.Fatal(err)
	}
	prof := an.ProfileFromHeat("test", heat)
	res, err := an.Patch(Options{
		Mode: ModeDir, Variant: Variant{ReverseFuncs: true},
		Request: counterRequest(), Verify: true, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VariantFuncs != 0 {
		t.Fatalf("ablation variant planned %d variant funcs, want 0", res.Stats.VariantFuncs)
	}
	if res.Binary.Section(".icfg.select") != nil {
		t.Fatal("ablation rewrite emitted a selector section")
	}
}

// TestProfileGuidedPlanDump checks the inspection surface: the laid-out
// guided plan dumps the selector region and per-function tier
// annotations, and the stub items resolve through the new target kinds.
func TestProfileGuidedPlanDump(t *testing.T) {
	img, _, err := richProgram(arch.X64, true).Link()
	if err != nil {
		t.Fatal(err)
	}
	heat := captureHeat(t, img)
	an, err := Analyze(img, AnalysisConfig{Mode: ModeJT})
	if err != nil {
		t.Fatal(err)
	}
	prof := an.ProfileFromHeat("test", heat)
	p, err := an.PlanFor(Options{Mode: ModeJT, Request: counterRequest(), Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	p.Dump(&sb)
	out := sb.String()
	for _, wantStr := range []string{"selectors", "tier=hot", "tier=cold", "var-entry", "profile "} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("plan dump missing %q", wantStr)
		}
	}
}
