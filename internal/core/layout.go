package core

import (
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// This file is the LAYOUT stage of the staged patch pipeline: a
// deterministic, arch-parameterized but encoding-free address
// assignment over the PatchPlan. It plans where every new and moved
// section lands, places cloned tables, and iterates per-item address
// assignment with range checking to a fixpoint — growing items into
// islands, adrp pairs, and veneers through the emitter's ExpandedLen,
// never through actual encoding. After layout, every item has a final
// (newAddr, newLen) and every resolved target is a pure function of the
// plan, which is what emit-stage parallelism and reuse rely on.

// sectionMove relocates one dynamic-linking section, retiring the
// original range as trampoline scratch space (Section 3).
type sectionMove struct {
	name    string
	addr    uint64 // new address
	oldAddr uint64
	oldEnd  uint64
	scratch bool // donate the retired range to the scratch pool
}

// sectionPlan is the read-only address plan for the rewrite's new and
// moved sections; it is computed from the input binary without cloning
// or mutating it, so PlanFor can produce a full plan for inspection.
type sectionPlan struct {
	moves     []sectionMove
	cloneBase uint64
	instrBase uint64
}

// layoutAll runs the whole layout stage: section planning, clone
// placement, then the item-address fixpoint.
func (p *PatchPlan) layoutAll(opts Options) error {
	p.planSections(opts)
	p.placeClones(p.sections.cloneBase)
	return p.layout(p.sections.instrBase)
}

// planSections assigns addresses to the counter region, the moved
// dynamic-linking sections, the clone section, and .instr — the same
// arithmetic the serial rewriter interleaved with binary mutation, now
// computed up front from the input binary alone.
func (p *PatchPlan) planSections(opts Options) {
	b := p.an.Binary
	// Selector cells sit directly above the counter region ([selBase,
	// selEnd)); without variants selEnd == nextCell and the arithmetic
	// is bit-identical to an unguided plan.
	cursor := alignUp(p.selEnd, sectionGap) + sectionGap
	for _, name := range []string{bin.SecDynSym, bin.SecDynStr, bin.SecRelaDyn} {
		old := b.Section(name)
		if old == nil {
			continue
		}
		mv := sectionMove{
			name:    name,
			addr:    cursor,
			oldAddr: old.Addr,
			oldEnd:  old.End(),
			scratch: old.Size() > 0 && !opts.Variant.NoScratchSections,
		}
		p.sections.moves = append(p.sections.moves, mv)
		cursor = alignUp(cursor+old.Size(), sectionGap) + sectionGap
	}
	p.sections.cloneBase = cursor
	cursor = alignUp(cursor+p.cloneBytes(), sectionGap) + sectionGap
	p.sections.instrBase = alignUp(cursor+opts.InstrGap, sectionGap)
}

// cloneBytes returns the total size of the clone section.
func (p *PatchPlan) cloneBytes() uint64 {
	var n uint64
	for _, c := range p.clones {
		n = alignUp(n, uint64(c.newEntry)) + uint64(c.newEntry*c.tbl.Count)
	}
	return n
}

// placeClones assigns clone addresses inside the clone section.
func (p *PatchPlan) placeClones(base uint64) {
	addr := base
	for _, c := range p.clones {
		addr = alignUp(addr, uint64(c.newEntry))
		c.addr = addr
		addr += uint64(c.newEntry * c.tbl.Count)
	}
}

// resolveTarget returns the item's concrete target address under the
// current relocMap.
func (p *PatchPlan) resolveTarget(it *planItem) uint64 {
	switch it.tk {
	case tkAbs:
		return it.target
	case tkMapped:
		if na, ok := p.relocMap[it.target]; ok {
			return na
		}
		return it.target // not relocated: keep the original address
	case tkClone:
		return p.clones[it.target].addr
	case tkFuncBase:
		return p.unitStart[p.clones[it.target].owner.Name]
	case tkVarEntry:
		return p.varAddr[it.target]
	case tkLocal:
		// Fast-body control flow prefers the fast-body copy; targets the
		// fast body does not carry (none today — every block is copied)
		// fall back to the full body, then the original.
		if na, ok := p.fastReloc[it.target]; ok {
			return na
		}
		if na, ok := p.relocMap[it.target]; ok {
			return na
		}
		return it.target
	default:
		return 0
	}
}

// layout iterates address assignment and range checking to a fixpoint,
// growing items into islands/pairs/veneers as needed. The relocation
// and unit-start maps are allocated once, presized from the plan, and
// cleared between iterations — the fixpoint typically runs two or three
// times, and rebuilding a many-thousand-entry map each round was a
// measurable share of the warm Patch path's allocations.
func (p *PatchPlan) layout(instrBase uint64) error {
	p.instrBase = instrBase
	a := p.an.Binary.Arch
	mapped, fastMapped := 0, 0
	for _, u := range p.units {
		for i := range u.items {
			if u.items[i].mapAddr != 0 {
				mapped++
			}
			if u.items[i].vmap != 0 {
				fastMapped++
			}
		}
	}
	p.relocMap = make(map[uint64]uint64, mapped)
	p.fastReloc = make(map[uint64]uint64, fastMapped)
	p.unitStart = make(map[string]uint64, len(p.units))
	for iter := 0; iter < 24; iter++ {
		addr := instrBase
		clear(p.relocMap)
		clear(p.fastReloc)
		clear(p.unitStart)
		for _, u := range p.units {
			addr = alignUp(addr, instrAlign)
			p.unitStart[u.fn.Name] = addr
			for i := range u.items {
				it := &u.items[i]
				it.newAddr = addr
				it.newLen = p.emitter.ExpandedLen(p.env, it.ins, it.expand)
				if it.mapAddr != 0 {
					if _, dup := p.relocMap[it.mapAddr]; !dup {
						p.relocMap[it.mapAddr] = addr
					}
				}
				if it.vmap != 0 {
					if _, dup := p.fastReloc[it.vmap]; !dup {
						p.fastReloc[it.vmap] = addr
					}
				}
				addr += uint64(it.newLen)
			}
			if u.variants > 0 {
				// The alternate variant enters at its restore item; the
				// stub's tkVarEntry branch resolves through this slot.
				p.varAddr[u.varSlot] = u.items[u.fastStart].newAddr
			}
		}
		p.instrEnd = addr

		changed := false
		for _, u := range p.units {
			for i := range u.items {
				it := &u.items[i]
				if it.expand == arch.ExpandEmulCall && a.FixedWidth() {
					t := p.resolveTarget(it)
					if abs64(int64(t-it.newAddr)) > arch.DirectBranchRange(a) {
						it.expand = arch.ExpandEmulCallFar
						changed = true
					}
					continue
				}
				if it.tk == tkNone || it.pf != arch.FormPCRel || it.expand != arch.ExpandNone {
					continue
				}
				t := p.resolveTarget(it)
				disp := int64(t - it.newAddr)
				switch it.ins.Kind {
				case arch.BranchCond:
					if abs64(disp) > arch.CondBranchRange(a) {
						it.expand = arch.ExpandCondIsland
						changed = true
					}
				case arch.Branch:
					if abs64(disp) > arch.DirectBranchRange(a) {
						if !a.FixedWidth() {
							return fmt.Errorf("core: branch at %#x cannot reach %#x", it.newAddr, t)
						}
						it.expand = arch.ExpandFarBranch
						changed = true
					}
				case arch.Call:
					if abs64(disp) > arch.CallRange(a) {
						if !a.FixedWidth() {
							return fmt.Errorf("core: call at %#x cannot reach %#x", it.newAddr, t)
						}
						it.expand = arch.ExpandFarCall
						changed = true
					}
				case arch.Lea:
					if abs64(disp) > arch.LeaRange(a) {
						if !a.FixedWidth() {
							return fmt.Errorf("core: lea at %#x cannot reach %#x", it.newAddr, t)
						}
						it.expand = arch.ExpandLeaPair
						changed = true
					}
				case arch.LoadPC:
					limit := int64(1<<31 - 1)
					if a.FixedWidth() {
						limit = 1<<18 - 1
					}
					if abs64(disp) > limit {
						return fmt.Errorf("core: pc-relative load at %#x cannot reach %#x", it.newAddr, t)
					}
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("core: relocation layout did not converge")
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
