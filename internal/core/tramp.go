package core

import (
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// Trampoline installation helpers: choosing a form that fits each
// planned superblock (direct/long in place, multi-hop through scratch
// space, trap as the last resort) and writing it into the original text.
// Installation stays serial — the scratch pool is allocated in a
// deterministic order the multi-hop pass depends on — but it consumes
// the plan's precomputed trampoline jobs.

// preserveMark keeps a landing-pad marker live at a trampoline site:
// when the superblock's block opens with an arch.Mark, the marker bytes
// are rewritten at the block start (the Verify fill may have overwritten
// them) and the superblock comes back shifted past the marker, so the
// installed sequence is [marker][trampoline]. Indirect transfers that
// still target the original address — dir/jt modes never rewrite
// pointers — then land on a marker under CET enforcement and bounce to
// relocated code as before. Blocks that do not open with a marker (every
// block of a marker-less binary) come back unchanged, preserving
// byte-identity. The shift is skipped when it would leave no room for
// the guaranteed trap fallback.
func preserveMark(nb *bin.Binary, sb superblock) (superblock, error) {
	blk := sb.Block
	if blk == nil || sb.Start != blk.Start || len(blk.Instrs) == 0 || blk.Instrs[0].Kind != arch.Mark {
		return sb, nil
	}
	a := nb.Arch
	markLen := blk.Instrs[0].EncLen
	if sb.Space-markLen < arch.TrapTrampolineLen(a) {
		return sb, nil
	}
	bs, err := arch.ForArch(a).Encode(arch.Instr{Kind: arch.Mark})
	if err != nil {
		return sb, err
	}
	if err := nb.WriteAt(sb.Start, bs); err != nil {
		return sb, err
	}
	return superblock{Block: blk, Start: sb.Start + uint64(markLen), Space: sb.Space - markLen}, nil
}

// directOrLong tries the in-place trampoline forms: a single direct
// branch, then the long sequence, within the superblock's space.
func directOrLong(b *bin.Binary, sb superblock, to uint64, scratch arch.Reg) (arch.Trampoline, bool) {
	a := b.Arch
	if a == arch.X64 {
		if sb.Space >= arch.LongTrampolineLen(a) {
			if tr, ok := arch.NewLongTrampoline(a, sb.Start, to, scratch, 0); ok {
				return tr, true
			}
		}
		return arch.Trampoline{}, false
	}
	if sb.Space >= arch.ShortTrampolineLen(a) {
		if tr, ok := arch.NewShortTrampoline(a, sb.Start, to); ok {
			return tr, true
		}
	}
	if tr, ok := arch.NewLongTrampoline(a, sb.Start, to, scratch, b.TOCValue); ok && sb.Space >= tr.Len {
		return tr, true
	}
	return arch.Trampoline{}, false
}

// multiHop places a short trampoline in the block and a long one in
// scratch space within the short form's range (Section 7's
// multi-trampoline design).
func multiHop(b *bin.Binary, sb superblock, to uint64, scratch arch.Reg, pool *scratchPool) (arch.Trampoline, arch.Trampoline, bool) {
	a := b.Arch
	if sb.Space < arch.ShortTrampolineLen(a) {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	hopLen := arch.LongTrampolineLen(a)
	if a == arch.PPC && scratch == arch.NoReg {
		hopLen = arch.LongSpillTrampolineLen(a)
	}
	if a == arch.A64 && scratch == arch.NoReg {
		return arch.Trampoline{}, arch.Trampoline{}, false // paper: fall back to trap
	}
	rng := arch.ShortBranchRange(a)
	hopAddr, ok := pool.alloc(hopLen, sb.Start, rng, rng)
	if !ok {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	short, ok := arch.NewShortTrampoline(a, sb.Start, hopAddr)
	if !ok {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	long, ok := arch.NewLongTrampoline(a, hopAddr, to, scratch, b.TOCValue)
	if !ok || long.Len > hopLen {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	return short, long, true
}

// installTrampoline writes the trampoline into the text section and
// donates the superblock's remaining space to the scratch pool.
func installTrampoline(nb *bin.Binary, text *bin.Section, tr arch.Trampoline, pool *scratchPool, sb superblock, stats *Stats) error {
	if err := writeTrampoline(nb, tr); err != nil {
		return err
	}
	stats.Trampolines[tr.Class]++
	leftover := sb.Start + uint64(tr.Len)
	end := sb.Start + uint64(sb.Space)
	if end > leftover {
		pool.add(leftover, end)
	}
	_ = text
	return nil
}

// writeTrampoline encodes and stores a trampoline's bytes.
func writeTrampoline(nb *bin.Binary, tr arch.Trampoline) error {
	bs, err := tr.Encode(nb.Arch)
	if err != nil {
		return err
	}
	return nb.WriteAt(tr.From, bs)
}

// fillTextIllegal overwrites an instrumented function's code bytes with
// illegal instructions, sparing embedded data ranges — the paper's
// strong verification: any control flow escaping the trampolines faults
// immediately. Maximal runs of code bytes are filled through
// arch.FillIllegal, the same primitive the emit stage uses for .instr
// padding.
func fillTextIllegal(a arch.Arch, text *bin.Section, f *cfg.Func) {
	data := text.MutableData() // text may still be shared with the input binary
	inData := func(addr uint64) bool {
		for _, dr := range f.DataRanges {
			if addr >= dr[0] && addr < dr[1] {
				return true
			}
		}
		return false
	}
	var run uint64
	active := false
	flush := func(end uint64) {
		if active {
			arch.FillIllegal(a, data[run-text.Addr:end-text.Addr])
			active = false
		}
	}
	for addr := f.Entry; addr < f.End; addr++ {
		if !inData(addr) && text.Contains(addr) {
			if !active {
				run, active = addr, true
			}
			continue
		}
		flush(addr)
	}
	flush(f.End)
}

// writeU64 stores a 64-bit value at a mapped address.
func writeU64(nb *bin.Binary, addr, v uint64) error {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	return nb.WriteAt(addr, buf[:])
}
