package core

import "sync"

// This file is the hot-path allocation discipline for the staged patch
// pipeline (DESIGN.md §11). The warm service loop runs Patch thousands
// of times against one cached Analysis; before pooling, every call paid
// one allocation per relocated instruction (plan items), one fresh
// multi-megabyte emit buffer, and a rebuilt relocation map per layout
// iteration. The pools below recycle exactly the allocations whose
// lifetime ends with the Patch call (or, for emit buffers, with the
// caller's explicit Result.Recycle) — never anything retained by the
// emit caches or the returned Result.
//
// Safety rules, enforced by the differential fuzzer's byte-equivalence
// checks (FuzzDifferentialRewrite):
//
//   - planItem is pointer-free (arch.Instr holds only scalars), so a
//     recycled slab cannot keep dead objects alive, and every item is
//     fully overwritten before use (slabs are truncated to length 0 and
//     appended to).
//   - pooled emit buffers are fully overwritten before use: the .instr
//     buffer is pre-filled with illegal instructions end to end, and the
//     clone buffer is cleared (its alignment gaps must read as zero).

// itemSlabPool recycles per-unit planItem slabs across Patch calls.
// Units vary in size, so the pool stores slices by capacity and callers
// fall back to a fresh allocation when a recycled slab is too small
// (the grown slab is what returns to the pool afterwards).
var itemSlabPool = sync.Pool{}

// getItemSlab returns an empty planItem slice with at least capHint
// capacity, recycled when possible.
func getItemSlab(capHint int) []planItem {
	if v := itemSlabPool.Get(); v != nil {
		s := v.([]planItem)
		if cap(s) >= capHint {
			return s[:0]
		}
		// Too small for this unit: recycle it for a smaller one and
		// allocate at the requested size.
		itemSlabPool.Put(v)
	}
	return make([]planItem, 0, capHint)
}

// putItemSlab returns a slab to the pool. Callers must not touch the
// slice afterwards.
func putItemSlab(s []planItem) {
	if cap(s) == 0 {
		return
	}
	itemSlabPool.Put(s[:0]) //nolint:staticcheck // slices are intentionally stored by value
}

// emitBufPool recycles the emit stage's output buffers (.instr bytes
// and clone-section contents). These escape into the Result's sections,
// so they return to the pool only through Result.Recycle — callers that
// keep the rewritten binary simply never recycle, and the buffers stay
// ordinary garbage-collected memory.
var emitBufPool = sync.Pool{}

// getEmitBuf returns a byte slice of length n whose contents are
// UNSPECIFIED — callers must overwrite every byte (or clearEmitBuf it).
func getEmitBuf(n int) []byte {
	if v := emitBufPool.Get(); v != nil {
		b := v.([]byte)
		if cap(b) >= n {
			return b[:n]
		}
		emitBufPool.Put(v)
	}
	return make([]byte, n)
}

// putEmitBuf returns an emit buffer to the pool.
func putEmitBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	emitBufPool.Put(b[:0]) //nolint:staticcheck // slices are intentionally stored by value
}

// release returns the plan's pooled memory: every unit's item slab.
// Called by Patch once the emit stage has run (nothing downstream reads
// items); PlanFor plans skip it so Dump can render them.
func (p *PatchPlan) release() {
	for _, u := range p.units {
		putItemSlab(u.items)
		u.items = nil
	}
}
