package core

import (
	"fmt"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/workload"
)

// TestDifferentialRandomPrograms is the heavyweight differential test:
// seeded random programs across every architecture, PIE setting and
// rewriting mode must behave byte-identically to their originals under
// the strong verification fill. This is the paper's correctness test
// run across a program family instead of one suite.
func TestDifferentialRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("differential stress skipped in -short mode")
	}
	seeds := []int64{11, 23, 37, 51, 73, 88, 104, 131}
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			for _, seed := range seeds {
				name := fmt.Sprintf("%s/pie=%v/seed=%d", a, pie, seed)
				t.Run(name, func(t *testing.T) {
					prof := workload.Profile{
						Name: name, Seed: seed, Lang: "c++",
						Funcs: 24, SwitchFrac: 0.4, SpillFrac: 0.2,
						TinyFrac: 0.15, TailCallFrac: 0.1, DispatcherFrac: 0.1,
						Exceptions: true, StackCalls: true, Iters: 12,
					}
					p, err := workload.Generate(a, pie, prof)
					if err != nil {
						t.Fatal(err)
					}
					want := runOriginal(t, p.Binary, nil)
					for _, mode := range []Mode{ModeDir, ModeJT, ModeFuncPtr} {
						got, res := rewriteAndRun(t, p.Binary, Options{
							Mode:    mode,
							Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
							Verify:  true,
						})
						if string(got.Output) != string(want.Output) {
							t.Errorf("%s: output diverged", mode)
						}
						if res.Stats.Coverage() == 0 {
							t.Errorf("%s: nothing instrumented", mode)
						}
					}
				})
			}
		}
	}
}

// TestDifferentialCounterIntegrityRandom extends the differential test
// with counters: for random programs, every block counter must match
// the ground-truth profile.
func TestDifferentialCounterIntegrityRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	for _, a := range arch.All() {
		t.Run(a.String(), func(t *testing.T) {
			p, err := workload.Generate(a, true, workload.Profile{
				Name: "ctr", Seed: 99, Lang: "c",
				Funcs: 20, SwitchFrac: 0.5, SpillFrac: 0.3,
				TinyFrac: 0.2, Iters: 10, StackCalls: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Rewrite(p.Binary, Options{
				Mode:    ModeJT,
				Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
				Verify:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			var points []uint64
			for pt := range res.CounterCells {
				points = append(points, pt)
			}
			want := runOriginal(t, p.Binary, points)
			lib, err := rtlib.Preload(res.Binary)
			if err != nil {
				t.Fatal(err)
			}
			m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			mism := 0
			for pt, cell := range res.CounterCells {
				cnt, err := m.MemRead(cell, 8)
				if err != nil {
					t.Fatal(err)
				}
				if cnt != want.Profile[pt] {
					mism++
					if mism < 5 {
						t.Errorf("block %#x: counter %d, truth %d", pt, cnt, want.Profile[pt])
					}
				}
			}
			if mism > 0 {
				t.Errorf("%d counters mismatched of %d", mism, len(points))
			}
		})
	}
}

// TestLoadBaseIndependence runs a rewritten PIE image at several load
// bases: position independence of trampolines, cloned tables, counter
// snippets and the RA map must hold at any base.
func TestLoadBaseIndependence(t *testing.T) {
	for _, a := range arch.All() {
		t.Run(a.String(), func(t *testing.T) {
			p, err := workload.Generate(a, true, workload.Profile{
				Name: "base", Seed: 7, Lang: "c++",
				Funcs: 16, SwitchFrac: 0.4, Exceptions: true, Iters: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Rewrite(p.Binary, Options{
				Mode:    ModeFuncPtr,
				Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
				Verify:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			lib, err := rtlib.Preload(res.Binary)
			if err != nil {
				t.Fatal(err)
			}
			var first []byte
			for i, base := range []uint64{emu.DefaultPIEBase, 0x7000_0000, 0x12_3456_7000, 0x60_0000_0000} {
				m0, err := emu.Load(p.Binary, emu.Options{LoadBase: base})
				if err != nil {
					t.Fatal(err)
				}
				orig, err := m0.Run()
				if err != nil {
					t.Fatalf("original at base %#x: %v", base, err)
				}
				m, err := emu.Load(res.Binary, emu.Options{Runtime: lib, LoadBase: base})
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.Run()
				if err != nil {
					t.Fatalf("rewritten at base %#x: %v", base, err)
				}
				if string(got.Output) != string(orig.Output) {
					t.Errorf("base %#x: output diverged", base)
				}
				if i == 0 {
					first = got.Output
				} else if string(got.Output) != string(first) {
					t.Errorf("base %#x: output differs across bases", base)
				}
			}
		})
	}
}

// TestRewriteIdempotentInput verifies the input binary is untouched by
// rewriting (the API contract).
func TestRewriteIdempotentInput(t *testing.T) {
	img, _, err := richProgram(arch.X64, true).Link()
	if err != nil {
		t.Fatal(err)
	}
	before := img.Marshal()
	if _, err := Rewrite(img, Options{
		Mode:    ModeFuncPtr,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
		Verify:  true,
	}); err != nil {
		t.Fatal(err)
	}
	if string(img.Marshal()) != string(before) {
		t.Error("Rewrite mutated its input binary")
	}
}

// TestRewriteDeterministic verifies identical inputs produce identical
// outputs.
func TestRewriteDeterministic(t *testing.T) {
	img, _, err := richProgram(arch.A64, false).Link()
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Mode:    ModeJT,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
		Verify:  true,
	}
	r1, err := Rewrite(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Rewrite(img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Binary.Marshal()) != string(r2.Binary.Marshal()) {
		t.Error("rewriting is not deterministic")
	}
}

// TestReorderVariantsDifferential checks the BOLT-comparison reordering
// transformations against random programs.
func TestReorderVariantsDifferential(t *testing.T) {
	for _, v := range []Variant{{ReverseFuncs: true}, {ReverseBlocks: true}, {ReverseFuncs: true, ReverseBlocks: true}} {
		for _, a := range arch.All() {
			p, err := workload.Generate(a, false, workload.Profile{
				Name: "reorder", Seed: 5, Lang: "c",
				Funcs: 14, SwitchFrac: 0.5, Iters: 6,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := runOriginal(t, p.Binary, nil)
			got, _ := rewriteAndRun(t, p.Binary, Options{
				Mode:    ModeJT,
				Request: instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadEmpty},
				Verify:  true,
				Variant: v,
			})
			if string(got.Output) != string(want.Output) {
				t.Errorf("%s variant %+v: output diverged", a, v)
			}
		}
	}
}

// TestRewriteStrippedBinary rewrites a binary whose symbol table was
// stripped: function discovery recovers the entries and the rewrite
// behaves identically.
func TestRewriteStrippedBinary(t *testing.T) {
	for _, a := range arch.All() {
		img, _, err := richProgram(a, false).Link()
		if err != nil {
			t.Fatal(err)
		}
		want := runOriginal(t, img, nil)
		stripped := img.Clone()
		stripped.Symbols = nil
		got, res := rewriteAndRun(t, stripped, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if string(got.Output) != string(want.Output) {
			t.Errorf("%s: stripped rewrite output diverged", a)
		}
		if res.Stats.TotalFuncs < 5 {
			t.Errorf("%s: only %d functions discovered", a, res.Stats.TotalFuncs)
		}
	}
}

// TestRewrittenBinarySurvivesSerialization writes the rewritten image to
// the serialised format and reloads it: every section the runtime
// library and emulator depend on (.tramp_map, .ra_map, counters,
// metadata) must survive the round trip.
func TestRewrittenBinarySurvivesSerialization(t *testing.T) {
	p, err := workload.Generate(arch.PPC, true, workload.Profile{
		Name: "serde", Seed: 3, Lang: "c++",
		Funcs: 18, SwitchFrac: 0.4, Exceptions: true, Iters: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := runOriginal(t, p.Binary, nil)
	res, err := Rewrite(p.Binary, Options{
		Mode:     ModeJT,
		Request:  instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
		Verify:   true,
		InstrGap: 40 << 20, // force trap/long trampolines into the image
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/rw.icfg"
	if err := res.Binary.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := bin.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.Preload(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	m, err := emu.Load(reloaded, emu.Options{Runtime: lib})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run()
	if err != nil {
		t.Fatalf("reloaded run: %v", err)
	}
	if string(got.Output) != string(want.Output) {
		t.Error("reloaded rewritten binary diverged")
	}
}

// TestHotCodeICache asserts the Section 8.1 claim: although rewritten
// binaries are much larger, jt/func-ptr modes do not blow up the
// instruction cache, because dispatch stays inside the relocated code;
// dir mode's text↔instr ping-pong touches more lines.
func TestHotCodeICache(t *testing.T) {
	p, err := workload.Generate(arch.X64, false, workload.Profile{
		Name: "icache", Seed: 17, Lang: "c",
		Funcs: 20, SwitchFrac: 0.8, DispatcherFrac: 0.3, Iters: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	miss := map[Mode]uint64{}
	for _, mode := range []Mode{ModeDir, ModeJT} {
		res, err := Rewrite(p.Binary, Options{
			Mode:    mode,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		lib, err := rtlib.Preload(res.Binary)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		miss[mode] = out.ICMiss
	}
	if miss[ModeJT] > miss[ModeDir] {
		t.Errorf("jt icache misses (%d) exceed dir's (%d): cloning should shrink hot code", miss[ModeJT], miss[ModeDir])
	}
}
