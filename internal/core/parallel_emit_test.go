package core_test

import (
	"bytes"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// TestStagedPatchGolden is the staged pipeline's byte-equivalence
// contract, checked across every arch × mode cell: a parallel emit
// (PatchJobs=8), a serial emit against the same analysis (PatchJobs=1,
// served entirely from the emit caches the parallel run populated), and
// a version-2 patch reusing unchanged functions' cached bytes must all
// be byte-identical to the serial cold Rewrite of the same binary — and
// the reuse counters must prove each path did what it claims.
func TestStagedPatchGolden(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		suite, err := workload.SPECSuiteCached(a, false)
		if err != nil {
			t.Fatalf("%v suite: %v", a, err)
		}
		v1 := suite[0].Binary
		v2, _, err := workload.MutateVersion(v1, mutateK, 29)
		if err != nil {
			t.Fatalf("%v mutate: %v", a, err)
		}
		var gap uint64
		if a == arch.PPC {
			gap = ppcInstrGap
		}
		for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
			t.Run(a.String()+"/"+mode.String(), func(t *testing.T) {
				opts := core.Options{
					Mode:     mode,
					Request:  instrBlockEmpty(),
					Verify:   true,
					InstrGap: gap,
				}
				serial, err := core.Rewrite(v1, opts) // PatchJobs 0: the serial seed
				if err != nil {
					t.Fatal(err)
				}
				want := serial.Binary.Marshal()

				units := core.NewUnitStore(0)
				an, err := core.Analyze(v1, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatal(err)
				}
				par := opts
				par.PatchJobs = 8
				first, err := an.Patch(par)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, first.Binary.Marshal()) {
					t.Fatal("parallel patch (jobs=8) differs from serial rewrite")
				}
				if first.Metrics.PatchFuncsReused != 0 || first.Metrics.PatchFuncsReencoded == 0 {
					t.Fatalf("first patch reused=%d reencoded=%d, want cold encode of everything",
						first.Metrics.PatchFuncsReused, first.Metrics.PatchFuncsReencoded)
				}

				// Same analysis, serial pool: nothing about the plan changed,
				// so every unit must come from its emit cache.
				one := opts
				one.PatchJobs = 1
				repeat, err := an.Patch(one)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, repeat.Binary.Marshal()) {
					t.Fatal("repeat patch (jobs=1) differs from serial rewrite")
				}
				if repeat.Metrics.PatchFuncsReencoded != 0 ||
					repeat.Metrics.PatchFuncsReused != first.Metrics.PatchFuncsReencoded {
					t.Fatalf("repeat patch reused=%d reencoded=%d, want all %d reused",
						repeat.Metrics.PatchFuncsReused, repeat.Metrics.PatchFuncsReencoded,
						first.Metrics.PatchFuncsReencoded)
				}

				// Version 2 through the warmed unit store: unchanged functions
				// arrive with their emit caches intact and — the mutation being
				// length-stable, so their layout windows did not move — skip
				// re-encoding, while the mutated functions re-encode. The
				// output must still match a cold serial rewrite of version 2.
				cold2, err := core.Rewrite(v2, opts)
				if err != nil {
					t.Fatal(err)
				}
				an2, err := core.Analyze(v2, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatal(err)
				}
				delta, err := an2.Patch(par)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(cold2.Binary.Marshal(), delta.Binary.Marshal()) {
					t.Fatal("v2 delta patch differs from v2 serial rewrite")
				}
				if delta.Metrics.PatchFuncsReused == 0 {
					t.Fatalf("v2 delta patch reused=0 reencoded=%d: patch-level reuse never happened",
						delta.Metrics.PatchFuncsReencoded)
				}
				if delta.Metrics.PatchFuncsReencoded == 0 {
					t.Fatal("v2 delta patch re-encoded nothing: the mutation was invisible to the emit stage")
				}
			})
		}
	}
}

// TestPatchReuseGuard is the make-check gate: a repeat Patch against the
// same analysis and options must re-encode NOTHING — every function
// unit's bytes come from its emit cache — counter-verified, not
// timing-based, and still byte-identical.
func TestPatchReuseGuard(t *testing.T) {
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(p.Binary, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeJT, Request: instrBlockEmpty(), PatchJobs: 4}
	first, err := an.Patch(opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := an.Patch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Metrics.PatchFuncsReencoded != 0 {
		t.Fatalf("repeat patch re-encoded %d funcs, want 0", second.Metrics.PatchFuncsReencoded)
	}
	if second.Metrics.PatchFuncsReused != first.Metrics.PatchFuncsReencoded {
		t.Fatalf("repeat patch reused %d funcs, want all %d",
			second.Metrics.PatchFuncsReused, first.Metrics.PatchFuncsReencoded)
	}
	if !bytes.Equal(first.Binary.Marshal(), second.Binary.Marshal()) {
		t.Fatal("repeat patch output diverged")
	}
	t.Logf("funcs=%d reencoded(first)=%d reused(second)=%d",
		len(an.FuncUnits), first.Metrics.PatchFuncsReencoded, second.Metrics.PatchFuncsReused)
}
