package core

import (
	"fmt"
	"sync"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// This file is the EMIT stage of the staged patch pipeline. Each
// function's unit is encoded independently through the per-arch
// arch.Emitter: every input the emitter sees — resolved targets,
// assigned addresses, expansion states — is captured in the unit's
// items, so units encode on a bounded worker pool into disjoint windows
// of one output buffer and the merge is deterministic whatever the
// worker count. The same property powers patch-level reuse: a unit
// whose fully resolved item stream hashes to the signature of its last
// emission gets its cached bytes copied in, skipping re-encoding — the
// delta path's analog for the patch phase.

// unitEmitCache memoises one function unit's last emitted window. It
// lives on the FuncUnit, so it survives across Patch calls on the same
// Analysis and — through the unit store — across binary versions: an
// unchanged function whose layout window did not move re-emits for
// free. The signature covers every emitter input, so a hit is
// byte-identical to re-encoding by construction.
type unitEmitCache struct {
	mu    sync.Mutex
	ok    bool
	sig   uint64
	bytes []byte
	ra    []bin.AddrPair
}

// fnv1a64 seeds the unit signature hash.
const fnv1a64 = 14695981039346656037

// fnvU64 folds one 64-bit value into an FNV-1a hash, byte by byte.
func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (v >> i) & 0xFF
		h *= 1099511628211
	}
	return h
}

// unitSig hashes everything the emit stage consumes for one unit: the
// laid-out addresses and lengths, expansion states, patch forms,
// resolved targets, return-address contributions, and every instruction
// field, plus the emission environment. Two equal signatures therefore
// emit equal bytes and equal RA pairs.
func (p *PatchPlan) unitSig(u *planUnit) uint64 {
	h := uint64(fnv1a64)
	if p.env.PIE {
		h = fnvU64(h, 1)
	} else {
		h = fnvU64(h, 0)
	}
	h = fnvU64(h, p.env.TOCValue)
	h = fnvU64(h, uint64(len(u.items)))
	for i := range u.items {
		it := &u.items[i]
		h = fnvU64(h, it.newAddr)
		h = fnvU64(h, uint64(it.newLen))
		h = fnvU64(h, it.origAddr)
		h = fnvU64(h, uint64(it.origLen))
		h = fnvU64(h, uint64(it.tk))
		h = fnvU64(h, uint64(it.pf))
		h = fnvU64(h, uint64(it.ra))
		h = fnvU64(h, uint64(it.expand))
		h = fnvU64(h, it.vmap)
		h = fnvU64(h, p.resolveTarget(it))
		ins := &it.ins
		h = fnvU64(h, uint64(ins.Kind))
		h = fnvU64(h, uint64(ins.Op))
		h = fnvU64(h, uint64(ins.Cond))
		h = fnvU64(h, uint64(ins.Rd))
		h = fnvU64(h, uint64(ins.Rs1))
		h = fnvU64(h, uint64(ins.Rs2))
		h = fnvU64(h, uint64(ins.Imm))
		h = fnvU64(h, uint64(ins.Size))
		h = fnvU64(h, uint64(ins.Scale))
		h = fnvU64(h, uint64(ins.Shift))
		var flags uint64
		if ins.Short {
			flags |= 1
		}
		if ins.Signed {
			flags |= 2
		}
		h = fnvU64(h, flags)
		h = fnvU64(h, ins.Addr)
		h = fnvU64(h, uint64(ins.EncLen))
	}
	return h
}

// emitUnit encodes one unit into its window of out, or copies the
// window from the unit's emit cache when the signature matches. It
// returns the unit's return-address pairs in item order.
func (p *PatchPlan) emitUnit(u *planUnit, out []byte) (ra []bin.AddrPair, reused bool, err error) {
	if len(u.items) == 0 {
		return nil, false, nil
	}
	start := u.items[0].newAddr
	last := &u.items[len(u.items)-1]
	end := last.newAddr + uint64(last.newLen)
	sig := p.unitSig(u)
	var cache *unitEmitCache
	if u.fu != nil {
		cache = &u.fu.emit
	}
	if cache != nil {
		cache.mu.Lock()
		if cache.ok && cache.sig == sig && uint64(len(cache.bytes)) == end-start {
			copy(out[start-p.instrBase:], cache.bytes)
			ra = cache.ra
			cache.mu.Unlock()
			return ra, true, nil
		}
		cache.mu.Unlock()
	}
	for i := range u.items {
		it := &u.items[i]
		eit := arch.EmitItem{
			Ins:       it.ins,
			HasTarget: it.tk != tkNone,
			Form:      it.pf,
			Target:    p.resolveTarget(it),
			Expand:    it.expand,
			NewAddr:   it.newAddr,
			NewLen:    it.newLen,
			OrigAddr:  it.origAddr,
			OrigLen:   it.origLen,
		}
		off := it.newAddr - p.instrBase
		if _, err := arch.EmitInto(p.emitter, p.env, eit, out[off:off+uint64(it.newLen)]); err != nil {
			return nil, false, fmt.Errorf("core: emitting %s: %w", u.fn.Name, err)
		}
		switch it.ra {
		case raCallRet:
			ra = append(ra, bin.AddrPair{
				From: it.newAddr + uint64(it.newLen),
				To:   it.origAddr + uint64(it.origLen),
			})
		case raSelf:
			ra = append(ra, bin.AddrPair{From: it.newAddr, To: it.origAddr})
		}
	}
	if cache != nil {
		bs := append([]byte(nil), out[start-p.instrBase:end-p.instrBase]...)
		cache.mu.Lock()
		cache.ok, cache.sig, cache.bytes, cache.ra = true, sig, bs, ra
		cache.mu.Unlock()
	}
	return ra, false, nil
}

// emit produces the .instr bytes, the return-address map, and the clone
// section contents. Units emit into disjoint windows on up to jobs
// workers; the RA pairs and any error are merged in unit order, so the
// result is byte-for-byte independent of the worker count.
func (p *PatchPlan) emit(jobs int) (out, cloneData []byte, raPairs []bin.AddrPair, reusedN, reencodedN int, err error) {
	a := p.an.Binary.Arch
	// The output buffer comes from the emit pool (see pool.go); it is
	// fully overwritten here — illegal-instruction fill end to end, then
	// each unit's window — so recycled contents can never leak through.
	out = getEmitBuf(int(p.instrEnd - p.instrBase))
	arch.FillIllegal(a, out) // unreachable alignment padding must not execute silently
	unitRA := make([][]bin.AddrPair, len(p.units))
	unitReused := make([]bool, len(p.units))
	errs := make([]error, len(p.units))
	runIndexed(len(p.units), jobs, func(i int) {
		unitRA[i], unitReused[i], errs[i] = p.emitUnit(p.units[i], out)
	})
	for _, e := range errs {
		if e != nil {
			putEmitBuf(out)
			return nil, nil, nil, 0, 0, e
		}
	}
	for i, u := range p.units {
		raPairs = append(raPairs, unitRA[i]...)
		if len(u.items) == 0 {
			continue
		}
		if unitReused[i] {
			reusedN++
		} else {
			reencodedN++
		}
	}

	// Clone contents: solve tar(x) = relocated target for each entry.
	if len(p.clones) > 0 {
		var base, end uint64
		base = p.clones[0].addr
		last := p.clones[len(p.clones)-1]
		end = last.addr + uint64(last.newEntry*last.tbl.Count)
		// Pooled like out, but alignment gaps between clones must read
		// as zero, so the recycled buffer is cleared first.
		cloneData = getEmitBuf(int(end - base))
		clear(cloneData)
		for _, c := range p.clones {
			for k, origTarget := range c.tbl.Targets {
				nt, ok := p.relocMap[origTarget]
				if !ok {
					putEmitBuf(out)
					putEmitBuf(cloneData)
					return nil, nil, nil, 0, 0, fmt.Errorf("core: clone target %#x has no relocation", origTarget)
				}
				var x uint64
				switch c.tbl.Kind {
				case cfg.TarAbs:
					x = nt
				case cfg.TarTableRel:
					x = nt - c.addr
				case cfg.TarFuncRel4:
					nf, ok := p.unitStart[c.owner.Name]
					if !ok {
						putEmitBuf(out)
						putEmitBuf(cloneData)
						return nil, nil, nil, 0, 0, fmt.Errorf("core: clone owner %s has no relocated unit", c.owner.Name)
					}
					x = (nt - nf) / 4
				}
				off := c.addr - base + uint64(k*c.newEntry)
				for i := 0; i < c.newEntry; i++ {
					cloneData[off+uint64(i)] = byte(x >> (8 * i))
				}
			}
		}
	}
	return out, cloneData, raPairs, reusedN, reencodedN, nil
}
