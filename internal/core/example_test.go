package core_test

import (
	"fmt"
	"log"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

// Example_rewrite shows the whole pipeline: build a binary, rewrite it
// in jt mode with block counters, preload the runtime library, run, and
// read a counter back.
func Example_rewrite() {
	b := asm.New(arch.X64, true)
	f := b.Func("main")
	f.Li(arch.R3, 0)
	f.Li(arch.R4, 4)
	top := f.Here()
	f.Op3(arch.Add, arch.R3, arch.R3, arch.R4)
	f.OpI(arch.Sub, arch.R4, arch.R4, 1)
	f.BranchCondTo(arch.NE, arch.R4, top)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Rewrite(img, core.Options{
		Mode: core.ModeJT,
		Request: instrument.Request{
			Where:   instrument.BlockEntry,
			Payload: instrument.PayloadCounter,
		},
		Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	lib, err := rtlib.Preload(res.Binary)
	if err != nil {
		log.Fatal(err)
	}
	m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
	if err != nil {
		log.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %s", out.Output)

	// The loop-top block executed once per iteration.
	loopTop := dbg.FuncStart["main"] + funcOffsetOfLoop(dbg)
	count, err := m.MemRead(res.CounterCells[loopTop], 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loop block executed %d times\n", count)
	// Output:
	// output: 10
	// loop block executed 4 times
}

// funcOffsetOfLoop locates the loop-top block: main's entry block holds
// the two loads (movimm ×2 on x64 = 20 bytes), so the loop body starts
// 20 bytes in.
func funcOffsetOfLoop(dbg *asm.DebugInfo) uint64 { return 20 }

// Example_partial restricts instrumentation to one function: the rest of
// the binary keeps its original bytes.
func Example_partial() {
	b := asm.New(arch.A64, false)
	hot := b.Func("hot")
	hot.OpI(arch.Add, arch.R0, arch.R1, 1)
	hot.Return()
	m := b.Func("main")
	m.SetFrame(16)
	m.Li(arch.R1, 41)
	m.CallF("hot")
	m.Print(arch.R0)
	m.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Rewrite(img, core.Options{
		Mode: core.ModeJT,
		Request: instrument.Request{
			Where:   instrument.FuncEntry,
			Payload: instrument.PayloadCounter,
			Funcs:   []string{"hot"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instrumented %d of %d functions\n",
		res.Stats.InstrumentedFuncs, res.Stats.TotalFuncs)
	// Output:
	// instrumented 1 of 2 functions
}
