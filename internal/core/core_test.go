package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

// richProgram builds a program exercising every rewriting concern:
// loops, a jump table switch, direct and indirect calls, an indirect
// call through a stack slot, an indirect tail call, and recursion.
func richProgram(a arch.Arch, pie bool) *asm.Builder {
	b := asm.New(a, pie)

	add5 := b.Func("add5")
	add5.OpI(arch.Add, arch.R0, arch.R1, 5)
	add5.Return()

	dbl := b.Func("dbl")
	dbl.Op3(arch.Add, arch.R0, arch.R1, arch.R1)
	dbl.Return()

	b.FuncPtrGlobal("fp_add5", "add5", 0)
	b.FuncPtrGlobal("fp_dbl", "dbl", 0)

	fin := b.Func("finisher")
	fin.OpI(arch.Add, arch.R0, arch.R1, 3)
	fin.Return()
	b.FuncPtrGlobal("fp_fin", "finisher", 0)

	hop := b.Func("hop")
	hop.OpI(arch.Add, arch.R1, arch.R1, 100)
	hop.LoadGlobal(arch.R9, arch.R9, "fp_fin", 8)
	hop.TailJumpReg(arch.R9)

	fib := b.Func("fib")
	fib.SetFrame(32)
	base := fib.NewLabel()
	fib.OpI(arch.Sub, arch.R6, arch.R1, 2)
	fib.BranchCondTo(arch.LT, arch.R6, base)
	fib.StoreLocal(arch.R1, 8)
	fib.OpI(arch.Sub, arch.R1, arch.R1, 1)
	fib.CallF("fib")
	fib.StoreLocal(arch.R0, 16)
	fib.LoadLocal(arch.R1, 8)
	fib.OpI(arch.Sub, arch.R1, arch.R1, 2)
	fib.CallF("fib")
	fib.LoadLocal(arch.R2, 16)
	fib.Op3(arch.Add, arch.R0, arch.R0, arch.R2)
	fib.Return()
	fib.Bind(base)
	fib.Mov(arch.R0, arch.R1)
	fib.Return()

	m := b.Func("main")
	m.SetFrame(64)
	m.Li(arch.R3, 0) // acc
	m.Li(arch.R4, 0) // i
	top := m.Here()
	// idx = i % 4 through a jump table.
	m.Li(arch.R7, 4)
	m.Op3(arch.Div, arch.R8, arch.R4, arch.R7)
	m.Op3(arch.Mul, arch.R8, arch.R8, arch.R7)
	m.Op3(arch.Sub, arch.R8, arch.R4, arch.R8)
	cases := []asm.Label{m.NewLabel(), m.NewLabel(), m.NewLabel(), m.NewLabel()}
	def := m.NewLabel()
	join := m.NewLabel()
	m.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	m.Bind(cases[0])
	m.OpI(arch.Add, arch.R3, arch.R3, 1)
	m.BranchTo(join)
	m.Bind(cases[1])
	m.StoreLocal(arch.R3, 32)
	m.Mov(arch.R1, arch.R4)
	m.CallPtr(arch.R9, "fp_add5")
	m.LoadLocal(arch.R3, 32)
	m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	m.BranchTo(join)
	m.Bind(cases[2])
	m.StoreLocal(arch.R3, 32)
	m.Mov(arch.R1, arch.R4)
	m.LoadGlobal(arch.R9, arch.R9, "fp_dbl", 8)
	m.CallStackSlot(arch.R9, 40)
	m.LoadLocal(arch.R3, 32)
	m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	m.BranchTo(join)
	m.Bind(cases[3])
	m.StoreLocal(arch.R3, 32)
	m.Mov(arch.R1, arch.R4)
	m.CallF("hop")
	m.LoadLocal(arch.R3, 32)
	m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	m.BranchTo(join)
	m.Bind(def)
	m.OpI(arch.Add, arch.R3, arch.R3, 1000)
	m.Bind(join)
	m.OpI(arch.Add, arch.R4, arch.R4, 1)
	m.OpI(arch.Sub, arch.R9, arch.R4, 20)
	m.BranchCondTo(arch.LT, arch.R9, top)
	m.Print(arch.R3)
	m.StoreLocal(arch.R3, 32)
	m.Li(arch.R1, 12)
	m.CallF("fib")
	m.Print(arch.R0)
	m.Li(arch.R0, 0)
	m.Halt()
	b.SetEntry("main")
	return b
}

// rewriteAndRun rewrites the binary and runs it with the runtime library
// preloaded.
func rewriteAndRun(t *testing.T, img *bin.Binary, opts Options) (emu.Result, *Result) {
	t.Helper()
	res, err := Rewrite(img, opts)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	lib, err := rtlib.Preload(res.Binary)
	if err != nil {
		t.Fatalf("preload: %v", err)
	}
	m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
	if err != nil {
		t.Fatalf("load rewritten: %v", err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatalf("run rewritten (%s): %v", opts.Mode, err)
	}
	return out, res
}

// runOriginal executes the unmodified binary.
func runOriginal(t *testing.T, img *bin.Binary, profile []uint64) emu.Result {
	t.Helper()
	m, err := emu.Load(img, emu.Options{ProfileAddrs: profile})
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run()
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	return out
}

func eachConfig(t *testing.T, body func(t *testing.T, a arch.Arch, pie bool)) {
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			name := fmt.Sprintf("%s/pie=%v", a, pie)
			t.Run(name, func(t *testing.T) { body(t, a, pie) })
		}
	}
}

func TestRewriteAllModesPreservesBehaviour(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, _, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		want := runOriginal(t, img, nil)
		for _, mode := range []Mode{ModeDir, ModeJT, ModeFuncPtr} {
			got, res := rewriteAndRun(t, img, Options{
				Mode:    mode,
				Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
				Verify:  true,
			})
			if string(got.Output) != string(want.Output) {
				t.Errorf("%s: output = %q, want %q", mode, got.Output, want.Output)
			}
			if res.Stats.Coverage() != 1 {
				t.Errorf("%s: coverage = %v, want 1 (no hard constructs here)", mode, res.Stats.Coverage())
			}
			if got.Cycles <= want.Cycles {
				t.Logf("%s: rewritten ran faster (%d vs %d cycles) — unusual but not wrong", mode, got.Cycles, want.Cycles)
			}
		}
	})
}

func TestModeOverheadOrdering(t *testing.T) {
	// jt must not bounce through .text on jump-table dispatch, so it
	// must be cheaper than dir; func-ptr must not bounce on indirect
	// calls either.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, _, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		cycles := map[Mode]uint64{}
		for _, mode := range []Mode{ModeDir, ModeJT, ModeFuncPtr} {
			got, _ := rewriteAndRun(t, img, Options{
				Mode:    mode,
				Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
				Verify:  true,
			})
			cycles[mode] = got.Cycles
		}
		if cycles[ModeJT] > cycles[ModeDir] {
			t.Errorf("jt (%d cycles) slower than dir (%d cycles)", cycles[ModeJT], cycles[ModeDir])
		}
		if cycles[ModeFuncPtr] > cycles[ModeJT] {
			t.Errorf("func-ptr (%d cycles) slower than jt (%d cycles)", cycles[ModeFuncPtr], cycles[ModeJT])
		}
	})
}

func TestInstrumentationIntegrityCounters(t *testing.T) {
	// Counter instrumentation must observe exactly the original block
	// execution counts: trampolines on every unrewritten edge, no
	// skipped or double-counted instrumentation.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, _, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Rewrite(img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
			Verify:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var points []uint64
		for p := range res.CounterCells {
			points = append(points, p)
		}
		want := runOriginal(t, img, points)

		lib, err := rtlib.Preload(res.Binary)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Run()
		if err != nil {
			t.Fatalf("run rewritten: %v", err)
		}
		if string(got.Output) != string(want.Output) {
			t.Fatalf("output diverged: %q vs %q", got.Output, want.Output)
		}
		checked := 0
		for point, cell := range res.CounterCells {
			cnt, err := m.MemRead(cell, 8)
			if err != nil {
				t.Fatal(err)
			}
			if cnt != want.Profile[point] {
				t.Errorf("block %#x: counter = %d, ground truth = %d", point, cnt, want.Profile[point])
			}
			checked++
		}
		if checked < 10 {
			t.Errorf("only %d counters checked — program too small for the test to mean anything", checked)
		}
	})
}

func TestExceptionsAcrossRewriting(t *testing.T) {
	build := func(a arch.Arch, pie bool) *bin.Binary {
		b := asm.New(a, pie)
		b.SetMeta("lang", "c++")
		b.SetMeta("exceptions", "1")
		th := b.Func("thrower")
		skip := th.NewLabel()
		th.BranchCondTo(arch.EQ, arch.R1, skip)
		th.Throw()
		th.Bind(skip)
		th.Li(arch.R0, 7)
		th.Return()
		mid := b.Func("mid")
		mid.SetFrame(24)
		mid.CallF("thrower")
		mid.Return()
		m := b.Func("main")
		m.SetFrame(48)
		catch := m.NewLabel()
		done := m.NewLabel()
		m.Li(arch.R3, 0)
		m.Li(arch.R1, 0)
		m.BeginTry()
		m.CallF("mid")
		m.EndTry(catch)
		m.Op3(arch.Add, arch.R3, arch.R3, arch.R0) // +7 on the non-throw path
		m.Li(arch.R1, 1)
		m.BeginTry()
		m.CallF("mid")
		m.EndTry(catch)
		m.OpI(arch.Add, arch.R3, arch.R3, 999) // skipped: throw path
		m.BranchTo(done)
		m.Bind(catch)
		m.OpI(arch.Add, arch.R3, arch.R3, 40)
		m.Bind(done)
		m.Print(arch.R3)
		m.Halt()
		b.SetEntry("main")
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img := build(a, pie)
		want := runOriginal(t, img, nil)
		if string(want.Output) != "47\n" {
			t.Fatalf("original output = %q, want 47", want.Output)
		}
		got, res := rewriteAndRun(t, img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if string(got.Output) != "47\n" {
			t.Errorf("rewritten output = %q", got.Output)
		}
		if res.Stats.RAMapEntries == 0 {
			t.Error("no return-address map entries for an exception-throwing binary")
		}
		if res.Binary.Meta[rtlib.MetaWrapUnwind] != "1" {
			t.Error("unwind wrapping not requested in the rewritten binary")
		}

		// Without the RA map, unwinding must fail (Section 6's premise).
		broken, err := Rewrite(img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
			NoRAMap: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		lib, _ := rtlib.Preload(broken.Binary)
		m, err := emu.Load(broken.Binary, emu.Options{Runtime: lib})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); !emu.IsFault(err, emu.FaultUnwind) {
			t.Errorf("run without RA map: err = %v, want unwind fault", err)
		}
	})
}

func TestGoRuntimeTraceback(t *testing.T) {
	build := func(a arch.Arch, pie bool) *bin.Binary {
		b := asm.New(a, pie)
		b.SetMeta("lang", "go")
		b.SetMeta("go-runtime", "1")
		// Stub runtime functions the rewriter instruments.
		ff := b.Func("runtime.findfunc")
		ff.Return()
		pv := b.Func("runtime.pcvalue")
		pv.Return()
		leaf := b.Func("leaf")
		leaf.SetFrame(16)
		leaf.I(arch.Instr{Kind: arch.Syscall, Imm: emu.SysTraceback})
		leaf.Return()
		m := b.Func("main")
		m.SetFrame(32)
		m.Li(arch.R4, 3)
		top := m.Here()
		m.CallF("leaf")
		m.OpI(arch.Sub, arch.R4, arch.R4, 1)
		m.BranchCondTo(NEq(), arch.R4, top)
		m.Print(arch.R0)
		m.Halt()
		b.SetEntry("main")
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img := build(a, pie)
		want := runOriginal(t, img, nil)
		got, res := rewriteAndRun(t, img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if string(got.Output) != string(want.Output) {
			t.Errorf("traceback output diverged: %q vs %q", got.Output, want.Output)
		}
		if res.Binary.Meta[rtlib.MetaGoPatch] != "1" {
			t.Error("go runtime patching not requested")
		}
		// Without the RA map, the Go runtime must abort.
		broken, err := Rewrite(img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
			NoRAMap: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		lib, _ := rtlib.Preload(broken.Binary)
		m, _ := emu.Load(broken.Binary, emu.Options{Runtime: lib})
		if _, err := m.Run(); !emu.IsFault(err, emu.FaultGoRuntime) {
			t.Errorf("run without RA map: err = %v, want go runtime fault", err)
		}
	})
}

// NEq avoids a collision with the asm import in this file's builders.
func NEq() arch.Cond { return arch.NE }

func TestPartialInstrumentation(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, dbg, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		want := runOriginal(t, img, nil)
		got, res := rewriteAndRun(t, img, Options{
			Mode: ModeJT,
			Request: instrument.Request{
				Where:   instrument.BlockEntry,
				Payload: instrument.PayloadEmpty,
				Funcs:   []string{"fib", "add5"},
			},
			Verify: true,
		})
		if string(got.Output) != string(want.Output) {
			t.Errorf("output = %q, want %q", got.Output, want.Output)
		}
		if res.Stats.InstrumentedFuncs != 2 {
			t.Errorf("instrumented %d functions, want 2", res.Stats.InstrumentedFuncs)
		}
		// Untouched functions keep their original bytes.
		text := res.Binary.Text()
		orig := img.Text()
		start, end := dbg.FuncStart["main"], dbg.FuncEnd["main"]
		for addr := start; addr < end; addr++ {
			if text.Data[addr-text.Addr] != orig.Data[addr-orig.Addr] {
				t.Fatalf("byte at %#x of uninstrumented main changed", addr)
			}
		}
	})
}

func TestFuncPtrModeRefusesImprecisePointers(t *testing.T) {
	// A data cell holding a mid-instruction code address (the Go
	// function table situation) must make func-ptr mode fail while jt
	// still works.
	for _, a := range arch.All() {
		b := asm.New(a, false)
		f := b.Func("main")
		f.Li(arch.R3, 1)
		f.Print(arch.R3)
		f.Halt()
		// Slot value: main entry + 2 — never an instruction boundary on
		// fixed-width ISAs; on X64 it lands inside the 10-byte movimm.
		b.FuncPtrGlobal("vtab", "main", 2)
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Rewrite(img, Options{
			Mode:    ModeFuncPtr,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		})
		if !errors.Is(err, ErrImpreciseFuncPtrs) {
			t.Errorf("%s: err = %v, want ErrImpreciseFuncPtrs", a, err)
		}
		if _, err := Rewrite(img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		}); err != nil {
			t.Errorf("%s: jt mode must still work: %v", a, err)
		}
	}
}

func TestGoexitPlusOnePattern(t *testing.T) {
	// Listing 1: a relocated function pointer with +nop arithmetic must
	// keep working in func-ptr mode (the pointer maps to the relocated
	// instruction after the nop).
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		nopLen := int64(1)
		if a.FixedWidth() {
			nopLen = 4
		}
		b := asm.New(a, pie)
		gx := b.Func("goexit")
		gx.Nop()
		gx.OpI(arch.Add, arch.R0, arch.R1, 1)
		gx.Return()
		b.FuncPtrGlobal("fp1", "goexit", nopLen)
		m := b.Func("main")
		m.SetFrame(16)
		m.Li(arch.R1, 41)
		m.CallPtr(arch.R9, "fp1")
		m.Print(arch.R0)
		m.Halt()
		b.SetEntry("main")
		img, _, err := b.Link()
		if err != nil {
			t.Fatal(err)
		}
		got, res := rewriteAndRun(t, img, Options{
			Mode:    ModeFuncPtr,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if string(got.Output) != "42\n" {
			t.Errorf("output = %q, want 42", got.Output)
		}
		if res.Stats.RewrittenPtrs == 0 {
			t.Error("no pointers rewritten in func-ptr mode")
		}
	})
}

func TestDirModeLeavesTablesAndBouncesThroughText(t *testing.T) {
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, _, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		_, dirRes := rewriteAndRun(t, img, Options{
			Mode:    ModeDir,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		_, jtRes := rewriteAndRun(t, img, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if dirRes.Stats.ClonedTables != 0 {
			t.Error("dir mode cloned jump tables")
		}
		if jtRes.Stats.ClonedTables == 0 {
			t.Error("jt mode cloned no jump tables")
		}
		if dirRes.Stats.CFLBlocks <= jtRes.Stats.CFLBlocks {
			t.Errorf("dir CFL blocks (%d) must exceed jt CFL blocks (%d)",
				dirRes.Stats.CFLBlocks, jtRes.Stats.CFLBlocks)
		}
		if jtRes.Binary.Section(bin.SecJTClone) == nil {
			t.Error("jt mode emitted no clone section")
		}
	})
}

func TestForcedGapDrivesLongTrampolinesOnPPC(t *testing.T) {
	img, _, err := richProgram(arch.PPC, false).Link()
	if err != nil {
		t.Fatal(err)
	}
	want := runOriginal(t, img, nil)
	// Force .instr beyond the ±32MB branch range.
	got, res := rewriteAndRun(t, img, Options{
		Mode:     ModeJT,
		Request:  instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:   true,
		InstrGap: 48 << 20,
	})
	if string(got.Output) != string(want.Output) {
		t.Errorf("output = %q, want %q", got.Output, want.Output)
	}
	longish := res.Stats.Trampolines[arch.TrampLong] + res.Stats.Trampolines[arch.TrampLongSpill]
	if longish == 0 {
		t.Errorf("no long trampolines despite a 48MB gap: %v", res.Stats.Trampolines)
	}
	if res.Stats.Trampolines[arch.TrampShort] != 0 {
		t.Errorf("single-branch trampolines cannot reach across a 48MB gap: %v", res.Stats.Trampolines)
	}
}

func TestRewrittenBinaryFailsWithoutRuntimeLibrary(t *testing.T) {
	// A rewritten binary that needed trap trampolines must fault when
	// the runtime library is not preloaded.
	img, _, err := richProgram(arch.PPC, false).Link()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rewrite(img, Options{
		Mode:     ModeDir,
		Request:  instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:   true,
		InstrGap: 48 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TrapCount() == 0 {
		t.Skip("no trap trampolines were needed; nothing to demonstrate")
	}
	m, err := emu.Load(res.Binary, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Error("rewritten binary with trap trampolines ran without the runtime library")
	}
}

func TestStatsShape(t *testing.T) {
	img, _, err := richProgram(arch.X64, true).Link()
	if err != nil {
		t.Fatal(err)
	}
	_, res := rewriteAndRun(t, img, Options{
		Mode:    ModeJT,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
	})
	s := res.Stats
	if s.TotalFuncs < 6 || s.InstrumentedFuncs != s.TotalFuncs {
		t.Errorf("funcs: %d/%d", s.InstrumentedFuncs, s.TotalFuncs)
	}
	if s.SizeIncrease() <= 0 {
		t.Error("rewritten binary not larger than original")
	}
	if s.CFLBlocks == 0 || s.ScratchBlocks == 0 {
		t.Errorf("placement stats empty: %+v", s)
	}
	total := 0
	for _, n := range s.Trampolines {
		total += n
	}
	if total < s.CFLBlocks {
		t.Errorf("%d trampolines for %d CFL blocks", total, s.CFLBlocks)
	}
	if !strings.Contains(ModeFuncPtr.String(), "func-ptr") {
		t.Error("mode stringer wrong")
	}
}

func TestArbitraryInstrumentationPoints(t *testing.T) {
	// The Dyninst API model: instrument two specific mid-block
	// instructions with counters; counts must equal the ground-truth
	// execution counts of exactly those instructions, and only the
	// containing functions may be touched.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, dbg, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		// Pick the 3rd instruction of fib and the 2nd of add5.
		text := img.Text()
		pick := func(name string, k int) uint64 {
			start, end := dbg.FuncStart[name], dbg.FuncEnd[name]
			ins := arch.DecodeAll(a, text.Data[start-text.Addr:end-text.Addr], start)
			if len(ins) <= k {
				t.Fatalf("%s too short", name)
			}
			return ins[k].Addr
		}
		points := []uint64{pick("fib", 2), pick("add5", 1)}
		want := runOriginal(t, img, points)

		res, err := Rewrite(img, Options{
			Mode: ModeJT,
			Request: instrument.Request{
				Where:   instrument.AtAddrs,
				Payload: instrument.PayloadCounter,
				Addrs:   points,
			},
			Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.InstrumentedFuncs != 2 {
			t.Errorf("instrumented %d functions, want 2 (fib, add5)", res.Stats.InstrumentedFuncs)
		}
		lib, err := rtlib.Preload(res.Binary)
		if err != nil {
			t.Fatal(err)
		}
		m, err := emu.Load(res.Binary, emu.Options{Runtime: lib})
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if string(got.Output) != string(want.Output) {
			t.Fatalf("output diverged: %q vs %q", got.Output, want.Output)
		}
		for _, p := range points {
			cell, ok := res.CounterCells[p]
			if !ok {
				t.Fatalf("no counter for point %#x", p)
			}
			cnt, err := m.MemRead(cell, 8)
			if err != nil {
				t.Fatal(err)
			}
			if cnt == 0 || cnt != want.Profile[p] {
				t.Errorf("point %#x: counter %d, ground truth %d", p, cnt, want.Profile[p])
			}
		}
	})
}

func TestFastUnwinderWithRATranslation(t *testing.T) {
	// The frdwarf adaptation (Section 2.3): RA translation works
	// unchanged with a compiled, non-DWARF unwinder, and exception-heavy
	// code gets cheaper. A DWARF-rewriting approach has nothing to plug
	// into here.
	b := asm.New(arch.X64, false)
	b.SetMeta("lang", "c++")
	b.SetMeta("exceptions", "1")
	th := b.Func("thrower")
	th.Throw()
	th.Return()
	mid := b.Func("mid")
	mid.SetFrame(24)
	mid.CallF("thrower")
	mid.Return()
	m := b.Func("main")
	m.SetFrame(48)
	m.Li(arch.R4, 50)
	top := m.Here()
	catch := m.NewLabel()
	cont := m.NewLabel()
	m.StoreLocal(arch.R4, 16)
	m.BeginTry()
	m.CallF("mid")
	m.EndTry(catch)
	m.Bind(catch)
	m.LoadLocal(arch.R4, 16)
	m.OpI(arch.Add, arch.R3, arch.R3, 1)
	m.Bind(cont)
	m.OpI(arch.Sub, arch.R4, arch.R4, 1)
	m.BranchCondTo(arch.NE, arch.R4, top)
	m.Print(arch.R3)
	m.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}

	res, err := Rewrite(img, Options{
		Mode:    ModeJT,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtlib.Preload(res.Binary)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(fast bool) emu.Result {
		mach, err := emu.Load(res.Binary, emu.Options{Runtime: lib, FastUnwind: fast})
		if err != nil {
			t.Fatal(err)
		}
		out, err := mach.Run()
		if err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		return out
	}
	slow := runWith(false)
	fast := runWith(true)
	if string(slow.Output) != string(fast.Output) {
		t.Fatalf("outputs diverged: %q vs %q", slow.Output, fast.Output)
	}
	if slow.Unwinds == 0 {
		t.Fatal("no unwinding exercised")
	}
	if fast.Cycles >= slow.Cycles {
		t.Errorf("compiled unwinder not cheaper: %d vs %d cycles", fast.Cycles, slow.Cycles)
	}
}

func TestPlacementIntegrityAudit(t *testing.T) {
	// The static integrity checker must accept the placement Rewrite
	// computes for every mode and configuration, and must reject a
	// placement with a missing trampoline.
	eachConfig(t, func(t *testing.T, a arch.Arch, pie bool) {
		img, _, err := richProgram(a, pie).Link()
		if err != nil {
			t.Fatal(err)
		}
		g, err := buildGraph(img)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeDir, ModeJT, ModeFuncPtr} {
			opts := Options{Mode: mode, Request: instrument.Request{Where: instrument.BlockEntry}}
			if err := AuditPlacement(img, g, opts); err != nil {
				t.Errorf("%s: %v", mode, err)
			}
		}
	})
}

// buildGraph is a test helper exposing the rewriter's CFG construction.
func buildGraph(img *bin.Binary) (*cfg.Graph, error) {
	return cfg.Build(img, analysis.NewJumpTables(img))
}

func TestCheckIntegrityDetectsMissingTrampoline(t *testing.T) {
	img, _, err := richProgram(arch.X64, false).Link()
	if err != nil {
		t.Fatal(err)
	}
	g, err := buildGraph(img)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := g.FuncByName("main")
	cfl := cflSet(img, f, ModeDir)
	inst := map[uint64]bool{}
	for _, blk := range f.Blocks {
		inst[blk.Start] = true
	}
	// No trampolines at all: must be rejected.
	if err := CheckIntegrity(f, cfl, map[uint64]bool{}, inst); err == nil {
		t.Error("empty trampoline set accepted")
	}
	// Trampolines exactly at CFL blocks: accepted.
	tr := map[uint64]bool{}
	for a := range cfl {
		tr[a] = true
	}
	if err := CheckIntegrity(f, cfl, tr, inst); err != nil {
		t.Errorf("CFL placement rejected: %v", err)
	}
	// Drop one CFL trampoline: rejected again.
	for a := range tr {
		delete(tr, a)
		break
	}
	if err := CheckIntegrity(f, cfl, tr, inst); err == nil {
		t.Error("placement with a missing CFL trampoline accepted")
	}
}
