// Function-granular incremental analysis: the delta engine's identities,
// units, dependency index, and store.
//
// One FuncUnit is everything Analyze computes for one function: its CFG
// (with resolved jump tables), the resolver's recorded read set, the
// dependency index edges, and the lazily memoised trampoline placement
// inputs. Units are content-addressed by UnitKey — a hash of the
// function's own content (bytes, in-range relocations, catch pads) and
// the binary-wide invariants the analysis silently depends on — crossed
// with arch × mode × variant, the same identity convention the
// whole-binary analysis store uses.
//
// A unit from a previous binary version may be reused only when every
// way the new version could change its analysis has been ruled out:
//
//   - its own identity hash is unchanged (UnitKey equality);
//   - every dependency-index edge still points at an unchanged function
//     (callees and read-range owners, compared by identity hash);
//   - the resolver's recorded read set replays identically: the same
//     table bytes at the same addresses, the same failed reads, the
//     same boundary-hint answers from the new binary's boundary scan.
//
// Anything else recomputes. Correctness of delta assembly — a delta
// rewrite must be byte-identical to a cold rewrite — follows from this
// conservatism: a reused unit is indistinguishable, input by input,
// from the unit a cold analysis would have built.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/store"
)

// UnitKey addresses one function-granular analysis unit.
type UnitKey struct {
	// ID is the function's identity hash: bin.FuncContentHash plus the
	// catch pads landing in the function and the delta environment (see
	// deltaEnv).
	ID      string
	Arch    arch.Arch
	Mode    Mode
	Variant Variant
}

// Dep is one edge of the dependency index: this unit's analysis was
// built while the named function had the given identity hash. A
// mismatch in the new version invalidates the unit.
type Dep struct {
	Name string
	ID   string
}

// FuncUnit is one function's cached analysis.
type FuncUnit struct {
	Key  UnitKey
	Name string
	// Fn is the function's CFG, immutable after the build. Reusing a
	// unit shares the pointer: graphs assembled for different binary
	// versions may alias unchanged functions, which is safe because
	// Patch never mutates the graph.
	Fn *cfg.Func
	// Deps is the dependency index: direct callees and the owners of
	// read ranges, by name and identity hash at build time.
	Deps []Dep
	// Reads is the resolver's recorded read set: table bytes consulted
	// and boundary-hint queries answered during this unit's analysis.
	Reads *analysis.Recording

	// place memoises the trampoline placement inputs (CFL set,
	// liveness, superblocks) across every Patch of every Analysis the
	// unit is assembled into.
	place funcPlacement
	// emit memoises the unit's last emitted byte window keyed by a
	// signature over every emit-stage input (see emit.go): a Patch of an
	// unchanged function whose layout window did not move copies the
	// cached bytes instead of re-encoding.
	emit unitEmitCache
}

// validFor reports whether the unit may stand in for a fresh analysis
// of the same-identity function in binary b: all dependency edges
// unchanged and the read set replaying identically.
func (u *FuncUnit) validFor(b *bin.Binary, jt *analysis.JumpTables, idByName map[string]string) bool {
	for _, d := range u.Deps {
		if idByName[d.Name] != d.ID {
			return false
		}
	}
	return u.Reads.ValidFor(b, jt)
}

// DeltaStats reports how an Analysis was assembled: how many functions
// were pulled unchanged from the unit store versus recomputed. Without
// a unit store every function counts as recomputed.
type DeltaStats struct {
	Reused     int
	Recomputed int
	// RecomputedNames lists the recomputed functions in symbol-table
	// order — the delta engine's audit trail: tests and the make-check
	// gate assert it stays within changed functions plus dependents.
	RecomputedNames []string
}

// UnitStore is the function-keyed second store level. One store serves
// every binary the process analyses: units are content-addressed, so
// versions of the same program share whatever functions survived the
// diff, and unrelated binaries simply never collide.
type UnitStore struct {
	m *store.Multi[UnitKey, *FuncUnit]
}

// NewUnitStore creates a unit store bounding the number of distinct
// function identities held; <= 0 means unbounded. Each identity keeps
// up to two candidates (the current and the previous version's
// environment for the same function content).
func NewUnitStore(maxFuncs int) *UnitStore {
	return &UnitStore{m: store.NewMulti[UnitKey, *FuncUnit](maxFuncs, 2)}
}

// Len returns the number of distinct function identities held.
func (s *UnitStore) Len() int {
	if s == nil {
		return 0
	}
	return s.m.Len()
}

// Stats returns the unit store's hit/miss/eviction counters.
func (s *UnitStore) Stats() store.Stats {
	if s == nil {
		return store.Stats{}
	}
	return s.m.Stats()
}

// Dependents returns the sorted names of functions whose dependency
// index references any name in changed, excluding the changed functions
// themselves — the "dependents" half of the delta engine's recompute
// bound (changed ∪ dependents ⊇ recomputed).
func Dependents(units []*FuncUnit, changed map[string]bool) []string {
	var out []string
	for _, u := range units {
		if changed[u.Name] {
			continue
		}
		for _, d := range u.Deps {
			if changed[d.Name] {
				out = append(out, u.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// deltaEnv renders the binary-wide invariants every per-function
// analysis silently depends on: architecture, position independence,
// exception use (placement consults it), the text section extent
// (decode windows and plausibility checks), and the TOC value (the
// slicer's r2 seed on PPC). The environment is folded into every unit
// ID, so a layout change — text grown, sections moved — invalidates all
// units rather than risking a stale reuse. The delta engine targets
// same-layout version changes; cross-layout diffs fall back to cold.
func deltaEnv(b *bin.Binary) string {
	text := b.Text()
	var tAddr, tEnd uint64
	if text != nil {
		tAddr, tEnd = text.Addr, text.End()
	}
	return fmt.Sprintf("env1|%d|%t|%t|%t|%x|%x|%x",
		b.Arch, b.PIE, b.SharedLib, b.UsesExceptions(), tAddr, tEnd, b.TOCValue)
}

// unitID computes a function's identity hash: content hash × catch pads
// × delta environment.
func unitID(b *bin.Binary, sym bin.Symbol, catchPads []uint64, env string) string {
	h := sha256.New()
	io.WriteString(h, b.FuncContentHash(sym))
	io.WriteString(h, env)
	for _, p := range catchPads {
		fmt.Fprintf(h, "|%x", p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// callDeps builds a freshly analysed function's dependency index:
// direct call targets resolved to their containing functions, plus the
// owners of recorded read ranges (in-text jump tables land inside a
// function), each stamped with its identity hash at build time.
func callDeps(f *cfg.Func, rec *analysis.Recording, symAt func(uint64) (string, bool), idByName map[string]string) []Dep {
	seen := map[string]bool{}
	add := func(addr uint64) {
		if f.Contains(addr) {
			return
		}
		name, ok := symAt(addr)
		if !ok || seen[name] {
			return
		}
		seen[name] = true
	}
	for _, blk := range f.Blocks {
		if last := blk.Last(); last.Kind == arch.Call {
			if t, ok := last.Target(); ok {
				add(t)
			}
		}
	}
	if rec != nil {
		for _, r := range rec.Reads {
			add(r.Addr)
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	deps := make([]Dep, 0, len(names))
	for _, n := range names {
		deps = append(deps, Dep{Name: n, ID: idByName[n]})
	}
	return deps
}
