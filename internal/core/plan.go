package core

import (
	"sync"
	"sync/atomic"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/profile"
)

// This file is the PLAN stage of the staged patch pipeline: it builds a
// target-neutral PatchPlan — per-function relocation units with symbolic
// targets, trampoline jobs with their superblock/scratch assignments,
// cloned-table selection, and counter-cell allocation — without encoding
// a single byte. Addresses are assigned later by the layout stage
// (layout.go) and bytes are produced by the emit stage (emit.go) through
// the per-arch arch.Emitter.

// targetKind says how a relocated instruction's control-flow or data
// target is resolved during layout.
type targetKind uint8

const (
	tkNone     targetKind = iota
	tkAbs                 // fixed absolute address (original data, counter cells)
	tkMapped              // original code address, re-resolved through relocMap
	tkClone               // cloned jump table (index into clones)
	tkFuncBase            // relocated start of a clone's owner function
	tkVarEntry            // alternate-variant entry (index into varAddr)
	tkLocal               // original code address, preferring the fast-body copy
)

// raKind marks items contributing return-address map entries.
type raKind uint8

const (
	raNone raKind = iota
	// raCallRet maps the relocated return address (after the call) to
	// the original return address.
	raCallRet
	// raSelf maps the relocated instruction address itself (throw sites
	// and syscalls, which stand for calls into the language runtime).
	raSelf
)

// planItem is one instruction (or inserted snippet instruction) in the
// relocated code stream. The symbolic half (tk/target/expand) is owned
// by plan+layout; the emit stage sees only the resolved arch.EmitItem.
type planItem struct {
	ins      arch.Instr
	origAddr uint64 // 0 for inserted instructions
	origLen  int
	mapAddr  uint64 // original address this item stands for in relocMap
	tk       targetKind
	pf       arch.PatchForm
	target   uint64 // tkAbs address / tkMapped original address / tkClone index
	ra       raKind
	expand   arch.Expand
	newAddr  uint64
	newLen   int
	// vmap is the original address this item stands for in the fast-body
	// relocation map (fastReloc): intra-function control flow inside a
	// fast variant resolves through it so hot loops never leave the
	// sparsely instrumented copy. Zero for full-body and stub items.
	vmap uint64
}

// planUnit is one relocated function's plan. fu is the function's
// analysis unit, which carries the emit-reuse cache across Patch calls
// and binary versions. items is a value slab — one allocation per unit
// instead of one per instruction, recycled across Patch calls through
// itemSlabPool (pool.go) — so stages address items by index, never by
// retained pointer.
type planUnit struct {
	fn    *cfg.Func
	fu    *FuncUnit
	items []planItem
	// Variant planning (profile-guided functions only): variants counts
	// alternate bodies (0 or 1), fastStart indexes the first fast-body
	// item, varSlot indexes the plan-level varAddr table the dispatch
	// stub's branch resolves through.
	variants  int
	fastStart int
	varSlot   int
}

// cloneInfo is one jump table selected for cloning.
type cloneInfo struct {
	tbl      *cfg.ResolvedTable
	owner    *cfg.Func
	newEntry int // entry size in the clone (sub-word entries widen to 4)
	addr     uint64
}

// trampJob is one planned trampoline: the superblock to patch and the
// scratch register liveness analysis found dead at its start.
type trampJob struct {
	sb      superblock
	scratch arch.Reg
}

// funcTramp is one function's trampoline jobs plus the block counts the
// stats layer reports.
type funcTramp struct {
	fn            *cfg.Func
	cflBlocks     int
	scratchBlocks int
	jobs          []trampJob
}

// PatchPlan is the staged pipeline's intermediate representation: what
// the patch will do, independent of byte encodings. A plan is built by
// the plan stage, has addresses assigned by the layout stage, and is
// consumed read-only by the emit stage — so emission can run on a worker
// pool and unchanged units can skip re-encoding entirely.
type PatchPlan struct {
	an      *Analysis
	mode    Mode
	req     instrument.Request
	variant Variant
	emitter arch.Emitter
	env     arch.EmitEnv

	units  []*planUnit
	clones []*cloneInfo
	tramps []funcTramp

	baseSite     map[uint64]int // instr addr -> clone index (table base)
	funcSite     map[uint64]int // instr addr -> clone index (func start base)
	widenLoad    map[uint64]int
	codePtrImm   map[uint64]uint64 // instr addr -> original pointer value (func-ptr mode)
	instrumented map[string]bool

	counterCells map[uint64]uint64
	counterBase  uint64
	nextCell     uint64

	// Profile guidance. prof is the (non-trivial) profile steering the
	// rewrite; profCount its per-function heat; hot the instrumented
	// functions that receive a fast variant; selCells their selector
	// cells ([selBase, selEnd), directly above the counter region).
	prof      *profile.Profile
	profCount map[string]uint64
	hot       map[string]bool
	selCells  map[string]uint64
	selBase   uint64
	selEnd    uint64

	// Layout products (assigned by layout.go).
	sections  sectionPlan
	instrBase uint64
	instrEnd  uint64
	unitStart map[string]uint64 // function name -> relocated unit start
	relocMap  map[uint64]uint64
	fastReloc map[uint64]uint64 // original addr -> fast-body copy's addr
	varAddr   []uint64          // variant slot -> fast-body entry addr
}

// newPatchPlan builds the plan for every instrumented function. Unit
// construction is independent per function, so it runs on up to jobs
// workers; counter cells are pre-assigned sequentially in symbol-table
// order first, which keeps the plan — and therefore the emitted bytes —
// identical whatever the worker count.
func newPatchPlan(an *Analysis, opts Options, counterBase uint64) *PatchPlan {
	b, g := an.Binary, an.Graph
	p := &PatchPlan{
		an:           an,
		mode:         opts.Mode,
		req:          opts.Request,
		variant:      opts.Variant,
		emitter:      arch.EmitterFor(b.Arch),
		env:          arch.EmitEnv{PIE: b.PIE, TOCValue: b.TOCValue},
		baseSite:     map[uint64]int{},
		funcSite:     map[uint64]int{},
		widenLoad:    map[uint64]int{},
		codePtrImm:   map[uint64]uint64{},
		instrumented: make(map[string]bool, len(g.Funcs)),
		counterCells: map[uint64]uint64{},
		counterBase:  counterBase,
		nextCell:     counterBase,
	}
	for _, f := range g.Funcs {
		if f.Instrumentable() && p.req.Wants(f.Name) && len(f.Blocks) > 0 {
			p.instrumented[f.Name] = true
		}
	}
	// Collect jump table clones (jt and func-ptr modes).
	if p.mode >= ModeJT {
		for _, f := range g.Funcs {
			if !p.instrumented[f.Name] {
				continue
			}
			for i := range f.IndirectJumps {
				tbl := f.IndirectJumps[i].Table
				if tbl == nil {
					continue
				}
				ci := &cloneInfo{tbl: tbl, owner: f, newEntry: tbl.EntrySize}
				if tbl.EntrySize < 4 {
					ci.newEntry = 4 // widen compressed entries (Section 5.1)
				}
				idx := len(p.clones)
				p.clones = append(p.clones, ci)
				for _, a := range tbl.BaseInstrs {
					p.baseSite[a] = idx
				}
				for _, a := range tbl.FuncStartInstrs {
					p.funcSite[a] = idx
				}
				p.widenLoad[tbl.LoadAddr] = idx
			}
		}
	}
	// Code-immediate pointer sites (func-ptr mode) are known before any
	// unit is built, so classification sees them on the first pass.
	for _, site := range an.PtrSites {
		for _, ia := range site.Instrs {
			p.codePtrImm[ia] = site.Value
		}
	}

	var fns []*cfg.Func
	for _, f := range g.Funcs {
		if p.instrumented[f.Name] {
			fns = append(fns, f)
		}
	}
	// Pre-assign counter cells per function in symbol-table order: the
	// cell sequence must not depend on which worker builds which unit.
	cellBase := make([]uint64, len(fns))
	if p.req.Payload == instrument.PayloadCounter {
		next := counterBase
		for i, f := range fns {
			cellBase[i] = next
			next += 8 * uint64(p.countPoints(f))
		}
		p.nextCell = next
	}

	// Profile guidance. The profile is advisory: trivial (or absent)
	// guidance leaves every structure below empty and the plan identical
	// to the unguided one. Variant bodies engage only for the published
	// configuration on full block-entry counter instrumentation — the
	// ablation baselines stay pure ablations, and the fast body of any
	// other request shape would be indistinguishable from the full one.
	if opts.Profile != nil && !opts.Profile.Trivial() {
		p.prof = opts.Profile
		p.profCount = opts.Profile.CountByName()
	}
	varSlot := make([]int, len(fns))
	selCell := make([]uint64, len(fns))
	p.selBase, p.selEnd = p.nextCell, p.nextCell
	for i := range varSlot {
		varSlot[i] = -1
	}
	if p.prof != nil && p.variant == (Variant{}) &&
		p.req.Where == instrument.BlockEntry && p.req.Payload == instrument.PayloadCounter {
		hotAll := p.prof.HotFuncs()
		p.hot = map[string]bool{}
		p.selCells = map[string]uint64{}
		// Selector cells directly follow the counter region, assigned in
		// the same symbol-table order for worker-count independence.
		slot := 0
		for i, f := range fns {
			if !hotAll[f.Name] {
				continue
			}
			p.hot[f.Name] = true
			selCell[i] = p.selEnd
			p.selCells[f.Name] = p.selEnd
			p.selEnd += 8
			varSlot[i] = slot
			slot++
		}
		p.varAddr = make([]uint64, slot)
	}

	p.units = make([]*planUnit, len(fns))
	cellMaps := make([]map[uint64]uint64, len(fns))
	if !p.variant.NoTrampolines {
		p.tramps = make([]funcTramp, len(fns))
	}
	build := func(i int) {
		f := fns[i]
		p.units[i], cellMaps[i] = p.buildUnit(g, f, cellBase[i], varSlot[i], selCell[i])
		if !p.variant.NoTrampolines {
			pl := an.placement(f)
			ft := funcTramp{fn: f, cflBlocks: len(pl.cfl), scratchBlocks: len(f.Blocks) - len(pl.cfl)}
			for _, sb := range pl.sbs {
				ft.jobs = append(ft.jobs, trampJob{sb: sb, scratch: pl.lv.DeadAt(sb.Block.Start)})
			}
			p.tramps[i] = ft
		}
	}
	runIndexed(len(fns), opts.PatchJobs, build)
	for i := range cellMaps {
		for a, c := range cellMaps[i] {
			p.counterCells[a] = c
		}
	}
	return p
}

// countPoints counts the instrumentation points buildUnit will insert a
// payload snippet for, so counter cells can be pre-assigned.
func (p *PatchPlan) countPoints(f *cfg.Func) int {
	n := 0
	for _, blk := range f.Blocks {
		if p.req.Where == instrument.BlockEntry ||
			(p.req.Where == instrument.FuncEntry && blk.Start == f.Entry) {
			n++
		}
		for _, ins := range blk.Instrs {
			if p.req.WantsAddr(ins.Addr) {
				n++
			}
		}
	}
	return n
}

// buildUnit converts one function's blocks into relocation items,
// inserting payload snippets. cell is the function's pre-assigned
// counter-cell cursor; the returned map records origAddr -> cell for the
// plan's counterCells (merged sequentially to stay deterministic).
//
// For a profile-hot function (varSlot >= 0) the unit is a concatenation
// of three streams behind one item slab, so layout, emission, the unit
// signature, and the slab pool are untouched by multi-versioning:
//
//	[dispatch stub][restore + full body][restore + fast body]
//
// The stub (arch.Emitter.DispatchStub) owns the function entry in the
// relocation map — calls, pointers, and the entry trampoline all
// dispatch — and branches to the fast body when the selector cell at
// selCell is non-zero. The fast body carries only the entry counter
// (sharing the full body's cell) and resolves intra-function control
// flow through fastReloc so hot loops never leave the sparse copy.
func (p *PatchPlan) buildUnit(g *cfg.Graph, f *cfg.Func, cell uint64, varSlot int, selCell uint64) (*planUnit, map[uint64]uint64) {
	u := &planUnit{fn: f, fu: p.an.unitOf[f], varSlot: -1}
	// Size the item slab up front: one item per instruction plus room
	// for inserted snippets and fall-through branches. Underestimates
	// just regrow the slab (the grown one is what gets recycled).
	est := 0
	for _, blk := range f.Blocks {
		est += len(blk.Instrs) + 1
	}
	if p.req.Payload == instrument.PayloadCounter {
		est += 4 * p.countPoints(f)
	}
	if varSlot >= 0 {
		est = 2*est + 16 // stub, two restores, the fast body
	}
	u.items = getItemSlab(est)
	cells := map[uint64]uint64{}

	if varSlot >= 0 {
		// Dispatch stub. The first instruction claims the function entry
		// in the relocation map (its items precede the full body's, and
		// layout's first claim wins). Target kinds are assigned by
		// instruction kind exactly as for counter snippets, plus the
		// trailing conditional branch resolving through varAddr.
		//
		// A CFI function's entry marker must precede the stub: indirect
		// calls dispatch through the entry's relocMap claim, so the claim
		// has to decode as a marker under CET enforcement. The marker item
		// takes the claim (first claim wins); the full body's own copy of
		// the marker is then redundant but harmless (markers are no-ops).
		if eb, ok := f.BlockAt(f.Entry); ok && len(eb.Instrs) > 0 && eb.Instrs[0].Kind == arch.Mark {
			u.items = append(u.items, planItem{ins: arch.Instr{Kind: arch.Mark}, mapAddr: f.Entry})
		}
		for k, ins := range p.emitter.DispatchStub(p.env, selCell) {
			it := planItem{ins: ins}
			if k == 0 {
				it.mapAddr = f.Entry
			}
			switch ins.Kind {
			case arch.Lea, arch.LeaHi:
				it.tk, it.pf, it.target = tkAbs, arch.FormPCRel, selCell
				it.ins.Imm = 0
			case arch.BranchCond:
				it.tk, it.pf, it.target = tkVarEntry, arch.FormPCRel, uint64(varSlot)
			}
			u.items = append(u.items, it)
		}
		// Fall-through into the full body, which must first recover the
		// register the stub spilled.
		u.items = append(u.items, planItem{ins: arch.VariantRestore()})
	}

	p.appendFullBody(u, g, f, &cell, cells)

	if varSlot >= 0 {
		u.variants, u.varSlot = 1, varSlot
		u.fastStart = len(u.items)
		u.items = append(u.items, planItem{ins: arch.VariantRestore()})
		p.appendFastBody(u, g, f, cells)
	}
	return u, cells
}

// appendFullBody appends the function's fully instrumented body — the
// exact item stream an unguided plan consists of.
func (p *PatchPlan) appendFullBody(u *planUnit, g *cfg.Graph, f *cfg.Func, cell *uint64, cells map[uint64]uint64) {
	add := func(it planItem) { u.items = append(u.items, it) }
	blocks := f.Blocks
	if p.variant.ReverseBlocks {
		blocks = make([]*cfg.Block, len(f.Blocks))
		for i, blk := range f.Blocks {
			blocks[len(blocks)-1-i] = blk
		}
	}
	for bi, blk := range blocks {
		instrs := blk.Instrs
		// A landing-pad marker opening a block must stay the relocated
		// block's first instruction: indirect transfers resolve through
		// the block's relocMap claim, and CET enforcement requires the
		// landing address to decode as a marker before any inserted
		// snippet runs. Hoist it above the snippet; marker-less blocks
		// take the historical item order byte-for-byte.
		var markAddr uint64
		if len(instrs) > 0 && instrs[0].Kind == arch.Mark {
			ins := instrs[0]
			it := planItem{ins: ins, origAddr: ins.Addr, origLen: ins.EncLen, mapAddr: ins.Addr}
			it.ins.Short = false
			p.classify(g, f, &it)
			add(it)
			markAddr = ins.Addr
			instrs = instrs[1:]
		}
		if p.req.Where == instrument.BlockEntry ||
			(p.req.Where == instrument.FuncEntry && blk.Start == f.Entry) {
			p.addSnippet(u, blk.Start, cell, cells)
		}
		if markAddr != 0 && p.req.WantsAddr(markAddr) {
			p.addSnippet(u, markAddr, cell, cells)
		}
		for _, ins := range instrs {
			if p.req.WantsAddr(ins.Addr) {
				p.addSnippet(u, ins.Addr, cell, cells)
			}
			it := planItem{ins: ins, origAddr: ins.Addr, origLen: ins.EncLen, mapAddr: ins.Addr}
			it.ins.Short = false // relocated branches use the long form
			p.classify(g, f, &it)
			add(it)
		}
		// Reordered blocks whose successor was reached by falling
		// through need an explicit branch to it.
		if last := blk.Last(); last.FallsThrough() && blk.End < f.End {
			needBranch := p.variant.ReverseBlocks && (bi+1 >= len(blocks) || blocks[bi+1].Start != blk.End)
			if needBranch {
				add(planItem{ins: arch.Instr{Kind: arch.Branch}, tk: tkMapped, pf: arch.FormPCRel, target: blk.End})
			}
		}
	}
}

// appendFastBody appends the sparsely instrumented variant: the entry
// block keeps its counter snippet — sharing the full body's cell, so
// either variant feeds the same counter — and every other block is
// relocated without payload. Items register in fastReloc (vmap), never
// in relocMap, and intra-function control transfers become tkLocal so
// they resolve into this copy first.
func (p *PatchPlan) appendFastBody(u *planUnit, g *cfg.Graph, f *cfg.Func, cells map[uint64]uint64) {
	b := p.an.Binary
	for _, blk := range f.Blocks {
		if blk.Start == f.Entry {
			c := cells[f.Entry]
			for k, ins := range instrument.CounterSnippet(b.Arch, b.PIE, c) {
				it := planItem{ins: ins}
				if k == 0 {
					// Entry loops land on the snippet, after the restore:
					// the restore must only run on arrival from the stub.
					it.vmap = f.Entry
				}
				if ins.Kind == arch.Lea || ins.Kind == arch.LeaHi {
					it.tk, it.pf, it.target = tkAbs, arch.FormPCRel, c
					it.ins.Imm = 0
				}
				u.items = append(u.items, it)
			}
		}
		for _, ins := range blk.Instrs {
			it := planItem{ins: ins, origAddr: ins.Addr, origLen: ins.EncLen}
			it.ins.Short = false
			p.classify(g, f, &it)
			if it.tk == tkMapped && it.pf == arch.FormPCRel && it.target >= f.Entry && it.target < f.End {
				switch ins.Kind {
				case arch.Branch, arch.BranchCond, arch.Call:
					it.tk = tkLocal
				}
			}
			it.vmap = ins.Addr
			u.items = append(u.items, it)
		}
	}
}

// addSnippet appends the payload instructions for the point at origAddr.
func (p *PatchPlan) addSnippet(u *planUnit, origAddr uint64, cell *uint64, cells map[uint64]uint64) {
	if p.req.Payload != instrument.PayloadCounter {
		// Empty instrumentation still owns the mapping for the point
		// (the relocated block starts here); no instructions.
		return
	}
	c := *cell
	*cell += 8
	cells[origAddr] = c
	b := p.an.Binary
	seq := instrument.CounterSnippet(b.Arch, b.PIE, c)
	for k, ins := range seq {
		it := planItem{ins: ins}
		if k == 0 {
			it.mapAddr = origAddr
		}
		if ins.Kind == arch.Lea || ins.Kind == arch.LeaHi {
			it.tk, it.pf, it.target = tkAbs, arch.FormPCRel, c
			it.ins.Imm = 0
		}
		u.items = append(u.items, it)
	}
}

// classify decides how the item's operand is re-resolved.
func (p *PatchPlan) classify(g *cfg.Graph, f *cfg.Func, it *planItem) {
	ins := it.ins
	a := ins.Addr
	if ci, ok := p.baseSite[a]; ok {
		it.tk, it.target = tkClone, uint64(ci)
		switch ins.Kind {
		case arch.Lea, arch.LeaHi:
			it.pf = arch.FormPCRel
		case arch.MovImm:
			it.pf = arch.FormImmAbs
		case arch.ALUImm, arch.AddImm16:
			it.pf = arch.FormImmLo12
		case arch.MovImm16, arch.MovK16:
			it.pf = arch.FormImmHi16
		}
		return
	}
	if ci, ok := p.funcSite[a]; ok {
		// The compressed-table base must be the relocated unit start:
		// under block reordering the entry block may not come first.
		it.tk, it.pf, it.target = tkFuncBase, arch.FormPCRel, uint64(ci)
		return
	}
	if ci, ok := p.widenLoad[a]; ok && p.clones[ci].tbl.EntrySize < 4 {
		it.ins.Size, it.ins.Scale = 4, 4
	}
	switch ins.Kind {
	case arch.Branch, arch.BranchCond, arch.Call:
		t, _ := ins.Target()
		if p.mapsTo(g, t) {
			it.tk, it.pf, it.target = tkMapped, arch.FormPCRel, t
		} else {
			it.tk, it.pf, it.target = tkAbs, arch.FormPCRel, t
		}
		if ins.Kind == arch.Call {
			it.ra = raCallRet
			if p.variant.CallEmulation && p.an.Binary.Arch == arch.X64 {
				it.expand = arch.ExpandEmulCall
				it.ra = raNone
			}
		}
	case arch.CallInd:
		if p.variant.CallEmulation && p.an.Binary.Arch == arch.X64 {
			it.expand = arch.ExpandEmulCallInd
		} else {
			it.ra = raCallRet
		}
	case arch.CallIndMem:
		// Indirect calls through memory still push relocated return
		// addresses that unwinding must translate. (SRBI's call
		// emulation misses these — the Dyninst-10.2 bug — so under
		// CallEmulation they intentionally stay unmapped.)
		if !p.variant.CallEmulation {
			it.ra = raCallRet
		}
	case arch.Lea, arch.LeaHi, arch.LoadPC:
		t, _ := ins.Target()
		it.tk, it.pf, it.target = tkAbs, arch.FormPCRel, t
	case arch.MovImm:
		if v, ok := p.codePtrImm[a]; ok && p.mode == ModeFuncPtr {
			it.tk, it.pf, it.target = tkMapped, arch.FormImmAbs, v
		}
	case arch.MovImm16, arch.MovK16:
		if v, ok := p.codePtrImm[a]; ok && p.mode == ModeFuncPtr {
			it.tk, it.pf, it.target = tkMapped, arch.FormImmHi16, v
		}
	case arch.Throw, arch.Syscall:
		it.ra = raSelf
	}
}

// mapsTo reports whether an original code address belongs to a function
// being relocated (so control flow to it must be retargeted).
func (p *PatchPlan) mapsTo(g *cfg.Graph, addr uint64) bool {
	f, ok := g.FuncContaining(addr)
	return ok && p.instrumented[f.Name]
}

// runIndexed runs body(0..n-1) on up to jobs workers (serially when jobs
// <= 1). Bodies must write only their own index's slots.
func runIndexed(n, jobs int, body func(int)) {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				body(int(i))
			}
		}()
	}
	wg.Wait()
}
