package core_test

import (
	"bytes"
	"sort"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// mutateK is the number of functions perturbed when deriving "version
// 2" of a workload binary.
const mutateK = 3

func deltaOpts(a arch.Arch, mode core.Mode) core.Options {
	var gap uint64
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	return core.Options{Mode: mode, Request: instrBlockEmpty(), InstrGap: gap}
}

// changedByHash diffs the two versions' per-function content hashes:
// the ground-truth changed set, including functions whose own bytes
// moved only inside a neighbour's decode window.
func changedByHash(v1, v2 *bin.Binary) map[string]bool {
	changed := map[string]bool{}
	for _, sym := range v1.FuncSymbols() {
		if v1.FuncContentHash(sym) != v2.FuncContentHash(sym) {
			changed[sym.Name] = true
		}
	}
	return changed
}

// TestDeltaRewriteMatchesCold is the delta engine's correctness
// contract, checked across every arch × mode cell: rewriting version 2
// of a binary with an analysis assembled partly from version 1's
// function units must produce output byte-identical to a cold rewrite
// of version 2 — while the reuse counters prove the delta actually
// happened.
func TestDeltaRewriteMatchesCold(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		suite, err := workload.SPECSuiteCached(a, false)
		if err != nil {
			t.Fatalf("%v suite: %v", a, err)
		}
		v1 := suite[0].Binary
		v2, mutated, err := workload.MutateVersion(v1, mutateK, 7)
		if err != nil {
			t.Fatalf("%v mutate: %v", a, err)
		}
		for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
			t.Run(a.String()+"/"+mode.String(), func(t *testing.T) {
				opts := deltaOpts(a, mode)
				units := core.NewUnitStore(0)

				// Version 1, cold against an empty unit store: everything
				// recomputes, and the rewrite matches a store-less one.
				an1, err := core.Analyze(v1, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatal(err)
				}
				if an1.Delta.Reused != 0 || an1.Delta.Recomputed != len(an1.FuncUnits) {
					t.Fatalf("v1 delta = %+v, want all %d recomputed", an1.Delta, len(an1.FuncUnits))
				}
				cold1, err := core.Rewrite(v1, opts)
				if err != nil {
					t.Fatal(err)
				}
				res1, err := an1.Patch(opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(cold1.Binary.Marshal(), res1.Binary.Marshal()) {
					t.Fatal("v1 unit-assembled rewrite differs from cold rewrite")
				}

				// Version 2 through the warmed store: only the mutated
				// functions and their dependents recompute, and the output is
				// byte-identical to a cold rewrite of version 2.
				an2, err := core.Analyze(v2, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatal(err)
				}
				if an2.Delta.Reused == 0 {
					t.Fatalf("v2 delta = %+v: nothing reused", an2.Delta)
				}
				if an2.Delta.Reused+an2.Delta.Recomputed != len(an2.FuncUnits) {
					t.Fatalf("v2 delta = %+v does not cover %d funcs", an2.Delta, len(an2.FuncUnits))
				}
				for _, name := range mutated {
					found := false
					for _, rn := range an2.Delta.RecomputedNames {
						if rn == name {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("mutated function %s was not recomputed (recomputed: %v)", name, an2.Delta.RecomputedNames)
					}
				}
				changed := changedByHash(v1, v2)
				allowed := map[string]bool{}
				for n := range changed {
					allowed[n] = true
				}
				for _, n := range core.Dependents(an1.FuncUnits, changed) {
					allowed[n] = true
				}
				for _, rn := range an2.Delta.RecomputedNames {
					if !allowed[rn] {
						t.Errorf("recomputed %s, which neither changed nor depends on a change", rn)
					}
				}

				cold2, err := core.Rewrite(v2, opts)
				if err != nil {
					t.Fatal(err)
				}
				res2, err := an2.Patch(opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(cold2.Binary.Marshal(), res2.Binary.Marshal()) {
					t.Fatal("v2 delta rewrite differs from cold rewrite")
				}
			})
		}
	}
}

// TestDeltaStrippedRewriteMatchesCold runs the same contract through
// the stripped-binary path: function entries are re-discovered per
// version, and the delta applies to the recovered fn_<addr> functions.
func TestDeltaStrippedRewriteMatchesCold(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		t.Run(a.String(), func(t *testing.T) {
			suite, err := workload.SPECSuiteCached(a, false)
			if err != nil {
				t.Fatal(err)
			}
			v1 := suite[0].Binary
			v2, _, err := workload.MutateVersion(v1, mutateK, 11)
			if err != nil {
				t.Fatal(err)
			}
			strip := func(b *bin.Binary) *bin.Binary {
				s := b.Clone()
				s.Symbols = nil
				return s
			}
			s1, s2 := strip(v1), strip(v2)

			opts := deltaOpts(a, core.ModeJT)
			units := core.NewUnitStore(0)
			if _, err := core.Analyze(s1, core.AnalysisConfig{Mode: core.ModeJT, Units: units}); err != nil {
				t.Fatal(err)
			}
			an2, err := core.Analyze(s2, core.AnalysisConfig{Mode: core.ModeJT, Units: units})
			if err != nil {
				t.Fatal(err)
			}
			if an2.Delta.Reused == 0 {
				t.Fatalf("stripped v2 delta = %+v: nothing reused", an2.Delta)
			}
			if an2.Delta.Recomputed == 0 {
				t.Fatalf("stripped v2 delta = %+v: mutation invisible", an2.Delta)
			}
			cold2, err := core.Rewrite(s2, opts)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := an2.Patch(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cold2.Binary.Marshal(), res2.Binary.Marshal()) {
				t.Fatal("stripped delta rewrite differs from cold rewrite")
			}
		})
	}
}

// neighbourFixture builds the jump-table-coupling fixture: alpha's
// spilled-index switch gets an inexact bound, capped by the boundary
// hint that beta's table-base movabs materialises (beta's table sits
// right after alpha's in .rodata). leaf1/leaf2 are bystanders; main
// calls everyone.
func neighbourFixture(t *testing.T) *bin.Binary {
	t.Helper()
	b := asm.New(arch.X64, false)

	alpha := b.Func("alpha")
	alpha.SetFrame(32)
	cases := make([]asm.Label, 24)
	for i := range cases {
		cases[i] = alpha.NewLabel()
	}
	def := alpha.NewLabel()
	join := alpha.NewLabel()
	alpha.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{SpillIndex: true})
	for i, c := range cases {
		alpha.Bind(c)
		alpha.OpI(arch.Add, arch.R0, arch.R1, int64(2*i+1))
		alpha.BranchTo(join)
	}
	alpha.Bind(def)
	alpha.OpI(arch.Add, arch.R0, arch.R1, 501)
	alpha.Bind(join)
	alpha.Return()

	beta := b.Func("beta")
	beta.SetFrame(32)
	bcases := make([]asm.Label, 8)
	for i := range bcases {
		bcases[i] = beta.NewLabel()
	}
	bdef := beta.NewLabel()
	bjoin := beta.NewLabel()
	beta.Switch(arch.R8, arch.R9, arch.R10, bcases, bdef, asm.SwitchOpts{})
	for i, c := range bcases {
		beta.Bind(c)
		beta.OpI(arch.Add, arch.R0, arch.R1, int64(3*i+2))
		beta.BranchTo(bjoin)
	}
	beta.Bind(bdef)
	beta.OpI(arch.Add, arch.R0, arch.R1, 777)
	beta.Bind(bjoin)
	beta.Return()

	for _, name := range []string{"leaf1", "leaf2"} {
		lf := b.Func(name)
		lf.OpI(arch.Add, arch.R0, arch.R1, 5)
		lf.Return()
	}

	m := b.Func("main")
	m.SetFrame(48)
	m.Li(arch.R3, 0)
	for _, callee := range []string{"alpha", "beta", "leaf1", "leaf2"} {
		m.Li(arch.R8, 3)
		m.Li(arch.R1, 9)
		m.CallF(callee)
		m.Op3(arch.Add, arch.R3, arch.R3, arch.R0)
	}
	m.Print(arch.R3)
	m.Li(arch.R0, 0)
	m.Halt()
	b.SetEntry("main")

	img, _, err := b.Link()
	if err != nil {
		t.Fatalf("linking neighbour fixture: %v", err)
	}
	return img
}

// TestDeltaJumpTableNeighbourInvalidation mutates beta so the boundary
// hint bounding alpha's inexact jump table moves: beta's table-base
// movabs is retargeted 8 bytes lower. alpha's own bytes are untouched —
// its content hash is unchanged — yet its recorded boundary query now
// answers differently, so the delta engine must recompute it (plus beta
// itself and main, whose dependency index references beta) while still
// reusing the leaves, and the delta rewrite must stay byte-identical to
// cold.
func TestDeltaJumpTableNeighbourInvalidation(t *testing.T) {
	v1 := neighbourFixture(t)

	// Locate beta's table-base movabs: the MovImm materialising a
	// .rodata address.
	var site arch.Instr
	for _, sym := range v1.FuncSymbols() {
		if sym.Name != "beta" {
			continue
		}
		text := v1.SectionAt(sym.Addr)
		data := text.Data[sym.Addr-text.Addr : sym.Addr+sym.Size-text.Addr]
		for _, ins := range arch.DecodeAll(v1.Arch, data, sym.Addr) {
			if ins.Kind == arch.MovImm && v1.SectionAt(uint64(ins.Imm)) != nil {
				site = ins
				break
			}
		}
	}
	if site.Kind != arch.MovImm {
		t.Fatal("fixture: no table-base movabs found in beta")
	}

	v2 := v1.Clone()
	edited := site
	edited.Imm -= 8
	raw, err := arch.ForArch(v1.Arch).Encode(edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != site.EncLen {
		t.Fatalf("edit changed encoding length (%d -> %d)", site.EncLen, len(raw))
	}
	if err := v2.WriteAt(site.Addr, raw); err != nil {
		t.Fatal(err)
	}
	if changed := changedByHash(v1, v2); !changed["beta"] || changed["alpha"] {
		t.Fatalf("hash diff = %v, want beta changed and alpha not", changed)
	}

	units := core.NewUnitStore(0)
	opts := core.Options{Mode: core.ModeJT, Request: instrBlockEmpty()}
	if _, err := core.Analyze(v1, core.AnalysisConfig{Mode: core.ModeJT, Units: units}); err != nil {
		t.Fatal(err)
	}
	an2, err := core.Analyze(v2, core.AnalysisConfig{Mode: core.ModeJT, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	got := append([]string(nil), an2.Delta.RecomputedNames...)
	sort.Strings(got)
	want := []string{"alpha", "beta", "main"}
	if len(got) != len(want) {
		t.Fatalf("recomputed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recomputed %v, want %v", got, want)
		}
	}
	if an2.Delta.Reused != 2 {
		t.Fatalf("reused = %d, want 2 (the leaves)", an2.Delta.Reused)
	}

	cold2, err := core.Rewrite(v2, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := an2.Patch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold2.Binary.Marshal(), res2.Binary.Marshal()) {
		t.Fatal("delta rewrite after neighbour invalidation differs from cold rewrite")
	}
}

// TestDeltaRecomputeBound is the make-check gate: on a K-of-N mutated
// workload, the delta engine recomputes AT MOST the hash-changed
// functions plus their dependency-index dependents — counter-verified,
// not timing-based.
func TestDeltaRecomputeBound(t *testing.T) {
	suite, err := workload.SPECSuiteCached(arch.X64, false)
	if err != nil {
		t.Fatal(err)
	}
	v1 := suite[0].Binary
	const k = 4
	v2, mutated, err := workload.MutateVersion(v1, k, 23)
	if err != nil {
		t.Fatal(err)
	}

	units := core.NewUnitStore(0)
	an1, err := core.Analyze(v1, core.AnalysisConfig{Mode: core.ModeJT, Units: units})
	if err != nil {
		t.Fatal(err)
	}
	an2, err := core.Analyze(v2, core.AnalysisConfig{Mode: core.ModeJT, Units: units})
	if err != nil {
		t.Fatal(err)
	}

	changed := changedByHash(v1, v2)
	for _, name := range mutated {
		if !changed[name] {
			t.Fatalf("mutated %s but its content hash did not change", name)
		}
	}
	deps := core.Dependents(an1.FuncUnits, changed)
	bound := len(changed) + len(deps)
	if an2.Delta.Recomputed > bound {
		t.Fatalf("recomputed %d funcs (%v), bound is %d changed + %d dependents",
			an2.Delta.Recomputed, an2.Delta.RecomputedNames, len(changed), len(deps))
	}
	if an2.Delta.Reused != len(an2.FuncUnits)-an2.Delta.Recomputed {
		t.Fatalf("reused = %d, recomputed = %d, funcs = %d", an2.Delta.Reused, an2.Delta.Recomputed, len(an2.FuncUnits))
	}
	if an2.Delta.Reused == 0 {
		t.Fatal("nothing reused")
	}
	t.Logf("N=%d K=%d changed=%d dependents=%d recomputed=%d reused=%d",
		len(an2.FuncUnits), k, len(changed), len(deps), an2.Delta.Recomputed, an2.Delta.Reused)
}
