package core

import (
	"fmt"
	"strings"
	"time"

	"icfgpatch/internal/arch"
)

// Pipeline stage names, in execution order. Every Rewrite records all of
// them (a stage that does not apply records a near-zero duration), so
// metrics from different runs aggregate positionally.
const (
	StageCFG         = "cfg"
	StageFuncPtr     = "funcptr-analysis"
	StagePlan        = "plan"
	StageLayout      = "layout"
	StageEmit        = "emit"
	StageTrampolines = "trampolines"
	StagePointers    = "pointer-rewrite"
	StageFinalize    = "finalize"
)

// StageMetric is the wall-clock cost of one rewrite pass.
type StageMetric struct {
	Name string
	Wall time.Duration
}

// Metrics is the per-pass metrics layer: stage timings plus the counters
// that explain where a rewrite's time and bytes went. Rewrite fills one
// per call; experiment sweeps aggregate them across many cells with Add.
// Timings are wall-clock and therefore non-deterministic; everything
// else is a deterministic function of the input binary and options.
type Metrics struct {
	Stages []StageMetric
	// CFLBlocks counts control-flow-landing blocks across instrumented
	// functions; ScratchBlocks counts the non-CFL remainder.
	CFLBlocks     int
	ScratchBlocks int
	// ScratchBytesHarvested is the total scratch space collected from
	// retired sections, padding, and unused superblock bytes;
	// ScratchBytesFree is what the trampoline passes left unused.
	ScratchBytesHarvested uint64
	ScratchBytesFree      uint64
	// Trampolines counts installed trampolines by class.
	Trampolines map[arch.TrampolineClass]int
	// ClonedTables counts jump tables cloned into .rodata.icfg.
	ClonedTables int
	// AnalysisFailures counts functions whose CFG or jump-table analysis
	// failed and were skipped (partial instrumentation).
	AnalysisFailures int
	// FuncsReused / FuncsRecomputed report the delta engine's work split:
	// how many per-function analysis units were pulled unchanged from the
	// unit store versus recomputed. A cold analysis (no unit store)
	// recomputes everything.
	FuncsReused     int
	FuncsRecomputed int
	// PatchFuncsReused / PatchFuncsReencoded report the emit stage's work
	// split: how many function units were copied from their emit cache
	// versus rendered and encoded. A first Patch re-encodes everything.
	PatchFuncsReused    int
	PatchFuncsReencoded int
}

// lap appends a stage timing measured since *last, advances *last, and
// returns the duration so call sites can graft it onto a trace span.
func (m *Metrics) lap(name string, last *time.Time) time.Duration {
	now := time.Now()
	d := now.Sub(*last)
	m.Stages = append(m.Stages, StageMetric{Name: name, Wall: d})
	*last = now
	return d
}

// Add accumulates o into m so sweeps can aggregate per-cell metrics.
// Stage timings merge by name; counters sum.
func (m *Metrics) Add(o Metrics) {
	for _, s := range o.Stages {
		found := false
		for i := range m.Stages {
			if m.Stages[i].Name == s.Name {
				m.Stages[i].Wall += s.Wall
				found = true
				break
			}
		}
		if !found {
			m.Stages = append(m.Stages, s)
		}
	}
	m.CFLBlocks += o.CFLBlocks
	m.ScratchBlocks += o.ScratchBlocks
	m.ScratchBytesHarvested += o.ScratchBytesHarvested
	m.ScratchBytesFree += o.ScratchBytesFree
	if len(o.Trampolines) > 0 {
		if m.Trampolines == nil {
			m.Trampolines = map[arch.TrampolineClass]int{}
		}
		for c, n := range o.Trampolines {
			m.Trampolines[c] += n
		}
	}
	m.ClonedTables += o.ClonedTables
	m.AnalysisFailures += o.AnalysisFailures
	m.FuncsReused += o.FuncsReused
	m.FuncsRecomputed += o.FuncsRecomputed
	m.PatchFuncsReused += o.PatchFuncsReused
	m.PatchFuncsReencoded += o.PatchFuncsReencoded
}

// TotalWall sums the stage timings.
func (m Metrics) TotalWall() time.Duration {
	var d time.Duration
	for _, s := range m.Stages {
		d += s.Wall
	}
	return d
}

// TrampolineTotal sums installed trampolines across classes.
func (m Metrics) TrampolineTotal() int {
	n := 0
	for _, v := range m.Trampolines {
		n += v
	}
	return n
}

// Render formats the metrics as a two-line human-readable summary.
func (m Metrics) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stages:")
	for _, s := range m.Stages {
		fmt.Fprintf(&b, " %s=%s", s.Name, s.Wall.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, " total=%s\n", m.TotalWall().Round(time.Microsecond))
	fmt.Fprintf(&b, "counters: cfl-blocks=%d scratch-blocks=%d scratch-bytes=%d (free %d) trampolines=%d tables-cloned=%d analysis-failures=%d funcs-reused=%d funcs-recomputed=%d patch-reused=%d patch-reencoded=%d",
		m.CFLBlocks, m.ScratchBlocks, m.ScratchBytesHarvested, m.ScratchBytesFree,
		m.TrampolineTotal(), m.ClonedTables, m.AnalysisFailures, m.FuncsReused, m.FuncsRecomputed,
		m.PatchFuncsReused, m.PatchFuncsReencoded)
	return b.String()
}
