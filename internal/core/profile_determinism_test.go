package core_test

import (
	"bytes"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/profile"
	"icfgpatch/internal/workload"
)

func instrBlockCounter() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter}
}

// skewedProfile builds a deterministic hot-skewed profile over the
// analysis's functions: every third function is hot, the rest barely
// warm.
func skewedProfile(an *core.Analysis) *profile.Profile {
	heat := make(map[uint64]uint64)
	for i, f := range an.Graph.Funcs {
		if i%3 == 0 {
			heat[f.Entry] = 1000
		} else {
			heat[f.Entry] = 1
		}
	}
	return an.ProfileFromHeat("skew", heat)
}

// TestProfileGuidedDeterminism extends the staged pipeline's
// byte-equivalence contract to guided rewrites: for every arch × mode
// cell, the same binary plus the same profile must produce
// byte-identical output on all four execution paths — serial cold
// Rewrite, parallel emit, repeat patch served from the emit caches, and
// the version-2 delta patch through a warmed unit store.
func TestProfileGuidedDeterminism(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		suite, err := workload.SPECSuiteCached(a, false)
		if err != nil {
			t.Fatalf("%v suite: %v", a, err)
		}
		v1 := suite[0].Binary
		v2, _, err := workload.MutateVersion(v1, mutateK, 29)
		if err != nil {
			t.Fatalf("%v mutate: %v", a, err)
		}
		var gap uint64
		if a == arch.PPC {
			gap = ppcInstrGap
		}
		for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
			t.Run(a.String()+"/"+mode.String(), func(t *testing.T) {
				probe, err := core.Analyze(v1, core.AnalysisConfig{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				prof := skewedProfile(probe)
				opts := core.Options{
					Mode:     mode,
					Request:  instrBlockCounter(),
					Verify:   true,
					InstrGap: gap,
					Profile:  prof,
				}
				serial, err := core.Rewrite(v1, opts)
				if err != nil {
					t.Fatal(err)
				}
				if mode == core.ModeJT && serial.Stats.VariantFuncs == 0 {
					t.Fatal("guided rewrite planned no variants — the profile lane is dead")
				}
				want := serial.Binary.Marshal()

				// Guided output must diverge from unguided exactly when the
				// plan says variants exist.
				unguided := opts
				unguided.Profile = nil
				plain, err := core.Rewrite(v1, unguided)
				if err != nil {
					t.Fatal(err)
				}
				if serial.Stats.VariantFuncs > 0 && bytes.Equal(want, plain.Binary.Marshal()) {
					t.Fatal("variants planned but bytes match the unguided rewrite")
				}
				if serial.Stats.VariantFuncs == 0 && !bytes.Equal(want, plain.Binary.Marshal()) {
					t.Fatal("no variants planned but guided bytes diverge from unguided")
				}

				units := core.NewUnitStore(0)
				an, err := core.Analyze(v1, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatal(err)
				}
				par := opts
				par.PatchJobs = 8
				first, err := an.Patch(par)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, first.Binary.Marshal()) {
					t.Fatal("guided parallel patch differs from guided serial rewrite")
				}

				repeat, err := an.Patch(opts)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, repeat.Binary.Marshal()) {
					t.Fatal("guided repeat patch differs from guided serial rewrite")
				}
				if repeat.Metrics.PatchFuncsReencoded != 0 {
					t.Fatalf("guided repeat patch re-encoded %d funcs, want all from emit cache",
						repeat.Metrics.PatchFuncsReencoded)
				}

				// Delta: v2 through the warmed unit store, same profile
				// (advisory, applies by function name), must equal a cold
				// guided rewrite of v2.
				cold2, err := core.Rewrite(v2, opts)
				if err != nil {
					t.Fatal(err)
				}
				an2, err := core.Analyze(v2, core.AnalysisConfig{Mode: mode, Units: units})
				if err != nil {
					t.Fatal(err)
				}
				delta, err := an2.Patch(par)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(cold2.Binary.Marshal(), delta.Binary.Marshal()) {
					t.Fatal("guided v2 delta patch differs from guided v2 serial rewrite")
				}
				if delta.Metrics.PatchFuncsReused == 0 {
					t.Fatal("guided delta patch reused nothing")
				}
			})
		}
	}
}

// TestProfileGuidedAdversarialHeat runs the determinism check under
// adversarial heat shapes — all-hot, all-cold(-but-alive), and
// single-function spikes — on the serial vs parallel paths.
func TestProfileGuidedAdversarialHeat(t *testing.T) {
	suite, err := workload.SPECSuiteCached(arch.X64, false)
	if err != nil {
		t.Fatal(err)
	}
	v1 := suite[0].Binary
	probe, err := core.Analyze(v1, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]func(i int) uint64{
		"all-hot":  func(int) uint64 { return 7 },
		"all-cold": func(i int) uint64 { return uint64(i % 2) }, // half dead, half at mean
		"spike": func(i int) uint64 {
			if i == 0 {
				return 1 << 40
			}
			return 1
		},
	}
	for name, f := range shapes {
		t.Run(name, func(t *testing.T) {
			heat := make(map[uint64]uint64)
			for i, fn := range probe.Graph.Funcs {
				if h := f(i); h > 0 {
					heat[fn.Entry] = h
				}
			}
			prof := probe.ProfileFromHeat(name, heat)
			opts := core.Options{Mode: core.ModeJT, Request: instrBlockCounter(), Verify: true, Profile: prof}
			serial, err := core.Rewrite(v1, opts)
			if err != nil {
				t.Fatal(err)
			}
			an, err := core.Analyze(v1, core.AnalysisConfig{Mode: core.ModeJT})
			if err != nil {
				t.Fatal(err)
			}
			par := opts
			par.PatchJobs = 8
			got, err := an.Patch(par)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(serial.Binary.Marshal(), got.Binary.Marshal()) {
				t.Fatalf("%s: parallel guided patch diverged from serial", name)
			}
		})
	}
}
