package core

import (
	"fmt"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/instrument"
)

// targetKind says how a relocated instruction's control-flow or data
// target is resolved during layout.
type targetKind uint8

const (
	tkNone     targetKind = iota
	tkAbs                 // fixed absolute address (original data, counter cells)
	tkMapped              // original code address, re-resolved through relocMap
	tkClone               // cloned jump table (index into clones)
	tkFuncBase            // relocated start of a clone's owner function
)

// patchForm says where the resolved target lands in the instruction.
type patchForm uint8

const (
	pfPCRel   patchForm = iota // SetTarget (branches, lea, adrp, loadpc)
	pfImmAbs                   // Imm = target (movimm)
	pfImmLo12                  // Imm = target & 0xFFF (add after adrp)
	pfImmHi16                  // Imm = 16-bit chunk selected by Shift (movz/movk)
)

// expandKind marks items that no longer fit their original encoding's
// range after relocation and must grow (branch islands, adrp pairs,
// veneer-style far calls through the TAR/ip0 register).
type expandKind uint8

const (
	expNone expandKind = iota
	expCondIsland
	expLeaPair
	expFarBranch
	expFarCall
	// expEmulCall / expEmulCallInd replace a call with the call
	// emulation sequence (original return address materialised and
	// pushed / moved to LR, then a plain branch) — the SRBI/Multiverse
	// stack-unwinding strategy the paper's RA translation displaces.
	expEmulCall
	expEmulCallInd
	// expEmulCallFar is the fixed-width emulated call whose target is
	// out of direct branch range (LR materialisation plus a veneer).
	expEmulCallFar
)

// raKind marks items contributing return-address map entries.
type raKind uint8

const (
	raNone raKind = iota
	// raCallRet maps the relocated return address (after the call) to
	// the original return address.
	raCallRet
	// raSelf maps the relocated instruction address itself (throw sites
	// and syscalls, which stand for calls into the language runtime).
	raSelf
)

// relocItem is one instruction (or inserted snippet instruction) in the
// relocated code stream.
type relocItem struct {
	ins      arch.Instr
	origAddr uint64 // 0 for inserted instructions
	origLen  int
	mapAddr  uint64 // original address this item stands for in relocMap
	tk       targetKind
	pf       patchForm
	target   uint64 // tkAbs address / tkMapped original address / tkClone index
	ra       raKind
	expand   expandKind
	newAddr  uint64
	newLen   int
}

// relocUnit is one relocated function.
type relocUnit struct {
	fn    *cfg.Func
	items []*relocItem
}

// cloneInfo is one jump table selected for cloning.
type cloneInfo struct {
	tbl      *cfg.ResolvedTable
	owner    *cfg.Func
	newEntry int // entry size in the clone (sub-word entries widen to 4)
	addr     uint64
}

// relocation drives code relocation for the whole binary.
type relocation struct {
	b       *bin.Binary
	mode    Mode
	req     instrument.Request
	variant Variant
	units   []*relocUnit

	clones       []*cloneInfo
	baseSite     map[uint64]int // instr addr -> clone index (table base)
	funcSite     map[uint64]int // instr addr -> clone index (func start base)
	widenLoad    map[uint64]int
	codePtrImm   map[uint64]uint64 // instr addr -> original pointer value (func-ptr mode)
	instrumented map[string]bool

	instrBase    uint64
	instrEnd     uint64
	unitStart    map[string]uint64 // function name -> relocated unit start
	relocMap     map[uint64]uint64
	raPairs      []bin.AddrPair
	counterCells map[uint64]uint64
	nextCell     uint64
}

// newRelocation prepares items for every instrumented function.
func newRelocation(b *bin.Binary, g *cfg.Graph, opts Options, counterBase uint64) *relocation {
	mode, req := opts.Mode, opts.Request
	r := &relocation{
		b:            b,
		mode:         mode,
		req:          req,
		variant:      opts.Variant,
		baseSite:     map[uint64]int{},
		funcSite:     map[uint64]int{},
		widenLoad:    map[uint64]int{},
		codePtrImm:   map[uint64]uint64{},
		instrumented: map[string]bool{},
		counterCells: map[uint64]uint64{},
		nextCell:     counterBase,
	}
	for _, f := range g.Funcs {
		if f.Instrumentable() && req.Wants(f.Name) && len(f.Blocks) > 0 {
			r.instrumented[f.Name] = true
		}
	}
	// Collect jump table clones (jt and func-ptr modes).
	if mode >= ModeJT {
		for _, f := range g.Funcs {
			if !r.instrumented[f.Name] {
				continue
			}
			for i := range f.IndirectJumps {
				tbl := f.IndirectJumps[i].Table
				if tbl == nil {
					continue
				}
				ci := &cloneInfo{tbl: tbl, owner: f, newEntry: tbl.EntrySize}
				if tbl.EntrySize < 4 {
					ci.newEntry = 4 // widen compressed entries (Section 5.1)
				}
				idx := len(r.clones)
				r.clones = append(r.clones, ci)
				for _, a := range tbl.BaseInstrs {
					r.baseSite[a] = idx
				}
				for _, a := range tbl.FuncStartInstrs {
					r.funcSite[a] = idx
				}
				r.widenLoad[tbl.LoadAddr] = idx
			}
		}
	}
	for _, f := range g.Funcs {
		if r.instrumented[f.Name] {
			r.units = append(r.units, r.buildUnit(g, f))
		}
	}
	return r
}

// cloneBytes returns the total size of the clone section.
func (r *relocation) cloneBytes() uint64 {
	var n uint64
	for _, c := range r.clones {
		n = alignUp(n, uint64(c.newEntry)) + uint64(c.newEntry*c.tbl.Count)
	}
	return n
}

// placeClones assigns clone addresses inside the clone section.
func (r *relocation) placeClones(base uint64) {
	addr := base
	for _, c := range r.clones {
		addr = alignUp(addr, uint64(c.newEntry))
		c.addr = addr
		addr += uint64(c.newEntry * c.tbl.Count)
	}
}

// buildUnit converts one function's blocks into relocation items,
// inserting payload snippets.
func (r *relocation) buildUnit(g *cfg.Graph, f *cfg.Func) *relocUnit {
	u := &relocUnit{fn: f}
	add := func(it *relocItem) { u.items = append(u.items, it) }
	blocks := f.Blocks
	if r.variant.ReverseBlocks {
		blocks = make([]*cfg.Block, len(f.Blocks))
		for i, blk := range f.Blocks {
			blocks[len(blocks)-1-i] = blk
		}
	}
	for bi, blk := range blocks {
		if r.req.Where == instrument.BlockEntry ||
			(r.req.Where == instrument.FuncEntry && blk.Start == f.Entry) {
			r.addSnippet(u, blk.Start)
		}
		for _, ins := range blk.Instrs {
			if r.req.WantsAddr(ins.Addr) {
				r.addSnippet(u, ins.Addr)
			}
			it := &relocItem{ins: ins, origAddr: ins.Addr, origLen: ins.EncLen, mapAddr: ins.Addr}
			it.ins.Short = false // relocated branches use the long form
			r.classify(g, f, it)
			add(it)
		}
		// Reordered blocks whose successor was reached by falling
		// through need an explicit branch to it.
		if last := blk.Last(); last.FallsThrough() && blk.End < f.End {
			needBranch := r.variant.ReverseBlocks && (bi+1 >= len(blocks) || blocks[bi+1].Start != blk.End)
			if needBranch {
				it := &relocItem{ins: arch.Instr{Kind: arch.Branch}, tk: tkMapped, pf: pfPCRel, target: blk.End}
				add(it)
			}
		}
	}
	return u
}

// addSnippet appends the payload instructions for the point at origAddr.
func (r *relocation) addSnippet(u *relocUnit, origAddr uint64) {
	if r.req.Payload != instrument.PayloadCounter {
		if r.req.Payload == instrument.PayloadEmpty {
			// Empty instrumentation still owns the mapping for the
			// point (the relocated block starts here); no instructions.
			return
		}
		return
	}
	cell := r.nextCell
	r.nextCell += 8
	r.counterCells[origAddr] = cell
	seq := instrument.CounterSnippet(r.b.Arch, r.b.PIE, cell)
	for k, ins := range seq {
		it := &relocItem{ins: ins}
		if k == 0 {
			it.mapAddr = origAddr
		}
		if ins.Kind == arch.Lea || ins.Kind == arch.LeaHi {
			it.tk, it.pf, it.target = tkAbs, pfPCRel, cell
			it.ins.Imm = 0
		}
		u.items = append(u.items, it)
	}
}

// classify decides how the item's operand is re-resolved.
func (r *relocation) classify(g *cfg.Graph, f *cfg.Func, it *relocItem) {
	ins := it.ins
	a := ins.Addr
	if ci, ok := r.baseSite[a]; ok {
		it.tk, it.target = tkClone, uint64(ci)
		switch ins.Kind {
		case arch.Lea, arch.LeaHi:
			it.pf = pfPCRel
		case arch.MovImm:
			it.pf = pfImmAbs
		case arch.ALUImm, arch.AddImm16:
			it.pf = pfImmLo12
		case arch.MovImm16, arch.MovK16:
			it.pf = pfImmHi16
		}
		return
	}
	if ci, ok := r.funcSite[a]; ok {
		// The compressed-table base must be the relocated unit start:
		// under block reordering the entry block may not come first.
		it.tk, it.pf, it.target = tkFuncBase, pfPCRel, uint64(ci)
		return
	}
	if ci, ok := r.widenLoad[a]; ok && r.clones[ci].tbl.EntrySize < 4 {
		it.ins.Size, it.ins.Scale = 4, 4
	}
	switch ins.Kind {
	case arch.Branch, arch.BranchCond, arch.Call:
		t, _ := ins.Target()
		if r.mapsTo(g, t) {
			it.tk, it.pf, it.target = tkMapped, pfPCRel, t
		} else {
			it.tk, it.pf, it.target = tkAbs, pfPCRel, t
		}
		if ins.Kind == arch.Call {
			it.ra = raCallRet
			if r.variant.CallEmulation && r.b.Arch == arch.X64 {
				it.expand = expEmulCall
				it.ra = raNone
			}
		}
	case arch.CallInd:
		if r.variant.CallEmulation && r.b.Arch == arch.X64 {
			it.expand = expEmulCallInd
		} else {
			it.ra = raCallRet
		}
	case arch.CallIndMem:
		// Indirect calls through memory still push relocated return
		// addresses that unwinding must translate. (SRBI's call
		// emulation misses these — the Dyninst-10.2 bug — so under
		// CallEmulation they intentionally stay unmapped.)
		if !r.variant.CallEmulation {
			it.ra = raCallRet
		}
	case arch.Lea, arch.LeaHi, arch.LoadPC:
		t, _ := ins.Target()
		it.tk, it.pf, it.target = tkAbs, pfPCRel, t
	case arch.MovImm:
		if v, ok := r.codePtrImm[a]; ok && r.mode == ModeFuncPtr {
			it.tk, it.pf, it.target = tkMapped, pfImmAbs, v
		}
	case arch.MovImm16, arch.MovK16:
		if v, ok := r.codePtrImm[a]; ok && r.mode == ModeFuncPtr {
			it.tk, it.pf, it.target = tkMapped, pfImmHi16, v
		}
	case arch.Throw, arch.Syscall:
		it.ra = raSelf
	}
}

// mapsTo reports whether an original code address belongs to a function
// being relocated (so control flow to it must be retargeted).
func (r *relocation) mapsTo(g *cfg.Graph, addr uint64) bool {
	f, ok := g.FuncContaining(addr)
	return ok && r.instrumented[f.Name]
}

// itemLen returns the item's encoded length under its expansion state.
func (r *relocation) itemLen(it *relocItem) int {
	a := r.b.Arch
	base := arch.EncLen(a, it.ins)
	switch it.expand {
	case expNone:
		return base
	case expCondIsland:
		return base + arch.EncLen(a, arch.Instr{Kind: arch.Branch})
	case expLeaPair:
		return arch.EncLen(a, arch.Instr{Kind: arch.LeaHi}) + arch.EncLen(a, arch.Instr{Kind: arch.ALUImm})
	case expFarBranch:
		return 3 * 4 // adris/adrp + add + indirect branch (fixed-width only)
	case expFarCall:
		return 3 * 4
	case expEmulCall:
		if a == arch.X64 {
			return 8 + r.emulRALen() + 8 + 8 + 8 + 5
		}
		return 3 * 4
	case expEmulCallInd:
		if a == arch.X64 {
			return 8 + r.emulRALen() + 8 + 8 + 8 + 2
		}
		return 3 * 4
	case expEmulCallFar:
		return 5 * 4
	default:
		return base
	}
}

// resolveTarget returns the item's concrete target address under the
// current relocMap.
func (r *relocation) resolveTarget(it *relocItem) uint64 {
	switch it.tk {
	case tkAbs:
		return it.target
	case tkMapped:
		if na, ok := r.relocMap[it.target]; ok {
			return na
		}
		return it.target // not relocated: keep the original address
	case tkClone:
		return r.clones[it.target].addr
	case tkFuncBase:
		return r.unitStart[r.clones[it.target].owner.Name]
	default:
		return 0
	}
}

// layout iterates address assignment and range checking to a fixpoint,
// growing items into islands/pairs/veneers as needed.
func (r *relocation) layout(instrBase uint64) error {
	r.instrBase = instrBase
	a := r.b.Arch
	for iter := 0; iter < 24; iter++ {
		addr := instrBase
		r.relocMap = map[uint64]uint64{}
		r.unitStart = map[string]uint64{}
		for _, u := range r.units {
			addr = alignUp(addr, instrAlign)
			r.unitStart[u.fn.Name] = addr
			for _, it := range u.items {
				it.newAddr = addr
				it.newLen = r.itemLen(it)
				if it.mapAddr != 0 {
					if _, dup := r.relocMap[it.mapAddr]; !dup {
						r.relocMap[it.mapAddr] = addr
					}
				}
				addr += uint64(it.newLen)
			}
		}
		r.instrEnd = addr

		changed := false
		for _, u := range r.units {
			for _, it := range u.items {
				if it.expand == expEmulCall && a.FixedWidth() {
					t := r.resolveTarget(it)
					if abs64(int64(t-it.newAddr)) > arch.DirectBranchRange(a) {
						it.expand = expEmulCallFar
						changed = true
					}
					continue
				}
				if it.tk == tkNone || it.pf != pfPCRel || it.expand != expNone {
					continue
				}
				t := r.resolveTarget(it)
				disp := int64(t - it.newAddr)
				switch it.ins.Kind {
				case arch.BranchCond:
					if abs64(disp) > arch.CondBranchRange(a) {
						it.expand = expCondIsland
						changed = true
					}
				case arch.Branch:
					if abs64(disp) > arch.DirectBranchRange(a) {
						if !a.FixedWidth() {
							return fmt.Errorf("core: branch at %#x cannot reach %#x", it.newAddr, t)
						}
						it.expand = expFarBranch
						changed = true
					}
				case arch.Call:
					if abs64(disp) > arch.CallRange(a) {
						if !a.FixedWidth() {
							return fmt.Errorf("core: call at %#x cannot reach %#x", it.newAddr, t)
						}
						it.expand = expFarCall
						changed = true
					}
				case arch.Lea:
					if abs64(disp) > arch.LeaRange(a) {
						if !a.FixedWidth() {
							return fmt.Errorf("core: lea at %#x cannot reach %#x", it.newAddr, t)
						}
						it.expand = expLeaPair
						changed = true
					}
				case arch.LoadPC:
					limit := int64(1<<31 - 1)
					if a.FixedWidth() {
						limit = 1<<18 - 1
					}
					if abs64(disp) > limit {
						return fmt.Errorf("core: pc-relative load at %#x cannot reach %#x", it.newAddr, t)
					}
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("core: relocation layout did not converge")
}

// emit produces the .instr bytes, the return-address map, and the clone
// section contents.
func (r *relocation) emit() ([]byte, []byte, error) {
	a := r.b.Arch
	enc := arch.ForArch(a)
	out := make([]byte, r.instrEnd-r.instrBase)
	fillIllegal(a, out) // unreachable alignment padding must not execute silently
	for _, u := range r.units {
		for _, it := range u.items {
			seq, err := r.expandItem(it)
			if err != nil {
				return nil, nil, err
			}
			off := it.newAddr - r.instrBase
			total := 0
			for _, ins := range seq {
				bs, err := enc.Encode(ins)
				if err != nil {
					return nil, nil, fmt.Errorf("core: encoding relocated %s (orig %#x): %w", ins, it.origAddr, err)
				}
				copy(out[off+uint64(total):], bs)
				total += len(bs)
			}
			if total != it.newLen {
				return nil, nil, fmt.Errorf("core: item at %#x emitted %d bytes, laid out %d", it.newAddr, total, it.newLen)
			}
			switch it.ra {
			case raCallRet:
				r.raPairs = append(r.raPairs, bin.AddrPair{
					From: it.newAddr + uint64(it.newLen),
					To:   it.origAddr + uint64(it.origLen),
				})
			case raSelf:
				r.raPairs = append(r.raPairs, bin.AddrPair{From: it.newAddr, To: it.origAddr})
			}
		}
	}

	// Clone contents: solve tar(x) = relocated target for each entry.
	var cloneData []byte
	if len(r.clones) > 0 {
		var base, end uint64
		base = r.clones[0].addr
		last := r.clones[len(r.clones)-1]
		end = last.addr + uint64(last.newEntry*last.tbl.Count)
		cloneData = make([]byte, end-base)
		for _, c := range r.clones {
			for k, origTarget := range c.tbl.Targets {
				nt, ok := r.relocMap[origTarget]
				if !ok {
					return nil, nil, fmt.Errorf("core: clone target %#x has no relocation", origTarget)
				}
				var x uint64
				switch c.tbl.Kind {
				case cfg.TarAbs:
					x = nt
				case cfg.TarTableRel:
					x = nt - c.addr
				case cfg.TarFuncRel4:
					nf, ok := r.unitStart[c.owner.Name]
					if !ok {
						return nil, nil, fmt.Errorf("core: clone owner %s has no relocated unit", c.owner.Name)
					}
					x = (nt - nf) / 4
				}
				off := c.addr - base + uint64(k*c.newEntry)
				for i := 0; i < c.newEntry; i++ {
					cloneData[off+uint64(i)] = byte(x >> (8 * i))
				}
			}
		}
	}
	return out, cloneData, nil
}

// expandItem renders the item's final instruction sequence with resolved
// displacements.
func (r *relocation) expandItem(it *relocItem) ([]arch.Instr, error) {
	ins := it.ins
	ins.Addr = it.newAddr
	t := r.resolveTarget(it)
	switch it.expand {
	case expNone:
		switch {
		case it.tk == tkNone:
		case it.pf == pfPCRel:
			ins.SetTarget(t)
		case it.pf == pfImmAbs:
			ins.Imm = int64(t)
		case it.pf == pfImmLo12:
			ins.Imm = int64(t & 0xFFF)
		case it.pf == pfImmHi16:
			ins.Imm = int64((t >> (16 * ins.Shift)) & 0xFFFF)
		}
		return []arch.Instr{ins}, nil
	case expCondIsland:
		// bcond.neg over a full-range branch.
		condLen := arch.EncLen(r.b.Arch, ins)
		branch := arch.Instr{Kind: arch.Branch, Addr: it.newAddr + uint64(condLen)}
		branch.SetTarget(t)
		neg := ins
		neg.Cond = ins.Cond.Negate()
		neg.SetTarget(it.newAddr + uint64(it.newLen))
		return []arch.Instr{neg, branch}, nil
	case expLeaPair:
		hi := arch.Instr{Kind: arch.LeaHi, Rd: ins.Rd, Addr: it.newAddr}
		hi.SetTarget(t)
		lo := arch.Instr{Kind: arch.AddImm16, Rd: ins.Rd, Rs1: ins.Rd, Imm: int64(t & 0xFFF), Addr: it.newAddr + 4}
		return []arch.Instr{hi, lo}, nil
	case expFarBranch, expFarCall:
		return r.veneer(it, t)
	case expEmulCall, expEmulCallInd, expEmulCallFar:
		return r.emulatedCall(it, t)
	}
	return nil, fmt.Errorf("core: unknown expansion %d", it.expand)
}

// emulRALen is the length of the instruction materialising the original
// return address in an emulated call: a PC-relative lea in PIE (the
// value must rebase with the image), an absolute movimm otherwise.
func (r *relocation) emulRALen() int {
	if r.b.PIE {
		return 6
	}
	return 10
}

// emulatedCall renders the call emulation sequence: the ORIGINAL return
// address is pushed (X64) or moved into LR (fixed-width), then control
// branches to the target. The callee's eventual return therefore lands
// at the original fall-through in .text, where a trampoline must wait.
func (r *relocation) emulatedCall(it *relocItem, t uint64) ([]arch.Instr, error) {
	origRA := it.origAddr + uint64(it.origLen)
	a := r.b.Arch
	if a == arch.X64 {
		scratch := arch.R8
		if it.ins.Kind == arch.CallInd && it.ins.Rs1 == arch.R8 {
			scratch = arch.R9
		}
		mat := arch.Instr{Kind: arch.MovImm, Rd: scratch, Imm: int64(origRA)}
		if r.b.PIE {
			// The pushed value must follow the load base: form it
			// PC-relatively (the displacement to the ORIGINAL return
			// address is a link-time constant).
			mat = arch.Instr{Kind: arch.Lea, Rd: scratch}
		}
		seq := []arch.Instr{
			{Kind: arch.Store, Rs2: scratch, Rs1: arch.SP, Size: 8, Imm: -16},
			mat,
			{Kind: arch.ALUImm, Op: arch.Sub, Rd: arch.SP, Rs1: arch.SP, Imm: 8},
			{Kind: arch.Store, Rs2: scratch, Rs1: arch.SP, Size: 8, Imm: 0},
			{Kind: arch.Load, Rd: scratch, Rs1: arch.SP, Size: 8, Imm: -8},
		}
		if it.ins.Kind == arch.CallInd {
			seq = append(seq, arch.Instr{Kind: arch.JumpInd, Rs1: it.ins.Rs1})
		} else {
			br := arch.Instr{Kind: arch.Branch}
			seq = append(seq, br)
		}
		addr := it.newAddr
		for i := range seq {
			seq[i].Addr = addr
			addr += uint64(arch.EncLen(a, seq[i]))
		}
		if r.b.PIE {
			seq[1].SetTarget(origRA)
		}
		if it.ins.Kind != arch.CallInd {
			seq[len(seq)-1].SetTarget(t)
		}
		return seq, nil
	}
	// Fixed-width: materialise the original RA into LR, then branch.
	seq := []arch.Instr{
		{Kind: arch.MovImm16, Rd: arch.LR, Imm: int64(origRA & 0xFFFF)},
		{Kind: arch.MovK16, Rd: arch.LR, Imm: int64((origRA >> 16) & 0xFFFF), Shift: 1},
	}
	if r.b.PIE {
		hi := arch.Instr{Kind: arch.LeaHi, Rd: arch.LR, Addr: it.newAddr}
		hi.SetTarget(origRA)
		seq = []arch.Instr{
			hi,
			{Kind: arch.AddImm16, Rd: arch.LR, Rs1: arch.LR, Imm: int64(origRA & 0xFFF)},
		}
	}
	if it.expand == expEmulCallFar {
		tail, err := r.veneer(&relocItem{newAddr: it.newAddr + 8, expand: expFarBranch}, t)
		if err != nil {
			return nil, err
		}
		seq = append(seq, tail...)
	} else if it.ins.Kind == arch.CallInd {
		seq = append(seq, arch.Instr{Kind: arch.JumpInd, Rs1: it.ins.Rs1})
	} else {
		br := arch.Instr{Kind: arch.Branch, Addr: it.newAddr + 8}
		br.SetTarget(t)
		seq = append(seq, br)
	}
	addr := it.newAddr
	for i := range seq {
		seq[i].Addr = addr
		addr += 4
	}
	return seq, nil
}

// veneer forms a far transfer through the TAR register: TOC-relative
// address formation on PPC (addis/addi), page-relative on A64 (the
// ip0-style veneer), then an indirect branch or call.
func (r *relocation) veneer(it *relocItem, t uint64) ([]arch.Instr, error) {
	a := r.b.Arch
	var seq []arch.Instr
	if a == arch.PPC {
		off := int64(t - r.b.TOCValue)
		lo := int64(int16(off))
		hi := (off - lo) >> 16
		if hi < -(1<<15) || hi >= 1<<15 {
			return nil, fmt.Errorf("core: veneer target %#x beyond ±2GB of TOC", t)
		}
		seq = []arch.Instr{
			{Kind: arch.AddIS, Rd: arch.TAR, Rs1: arch.TOCReg, Imm: hi},
			{Kind: arch.AddImm16, Rd: arch.TAR, Rs1: arch.TAR, Imm: lo},
		}
	} else {
		hi := arch.Instr{Kind: arch.LeaHi, Rd: arch.TAR, Addr: it.newAddr}
		hi.SetTarget(t)
		seq = []arch.Instr{
			hi,
			{Kind: arch.AddImm16, Rd: arch.TAR, Rs1: arch.TAR, Imm: int64(t & 0xFFF)},
		}
	}
	kind := arch.JumpInd
	if it.expand == expFarCall {
		kind = arch.CallInd
	}
	seq = append(seq, arch.Instr{Kind: kind, Rs1: arch.TAR})
	addr := it.newAddr
	for i := range seq {
		seq[i].Addr = addr
		addr += 4
	}
	return seq, nil
}

// fillIllegal fills a buffer with undecodable bytes.
func fillIllegal(a arch.Arch, buf []byte) {
	for i := range buf {
		buf[i] = 0xFF
	}
	_ = a
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
