package core

import (
	"fmt"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// CheckIntegrity statically verifies the paper's Instrumentation
// Integrity property (Section 4.1) for one function of a rewritten
// binary:
//
//	for every CFL block b1 and instrumented block b2, every control
//	flow path from b1 to b2 passes at least one trampoline.
//
// The checker walks the ORIGINAL CFG from every CFL block, stopping at
// blocks whose start carries a trampoline; reaching an instrumented
// block without crossing one is a violation. It is an independent
// validator of the placement computed by Rewrite (used by tests, and by
// anyone modifying the placement — e.g. implementing the paper's
// suggested dominator-based refinement).
func CheckIntegrity(f *cfg.Func, cflBlocks, trampolines, instrumented map[uint64]bool) error {
	for start := range cflBlocks {
		if trampolines[start] {
			continue // intercepted immediately on landing
		}
		// Walk forward without crossing trampolines.
		seen := map[uint64]bool{}
		stack := []uint64{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[cur] {
				continue
			}
			seen[cur] = true
			if instrumented[cur] {
				return fmt.Errorf("core: integrity violation in %s: CFL block %#x reaches instrumented block %#x without a trampoline",
					f.Name, start, cur)
			}
			blk, ok := f.BlockAt(cur)
			if !ok {
				continue
			}
			for _, e := range blk.Succs {
				if !trampolines[e.To] {
					stack = append(stack, e.To)
				}
			}
		}
	}
	return nil
}

// PlacementReport captures the rewrite's placement decisions for one
// function, for integrity checking and diagnostics.
type PlacementReport struct {
	Func        *cfg.Func
	CFL         map[uint64]bool
	Trampolines map[uint64]bool
	// Instrumented marks the block starts carrying payload snippets.
	Instrumented map[uint64]bool
}

// AuditPlacement recomputes the rewrite's placement for every
// instrumentable function of the binary and checks integrity. It mirrors
// the decisions Rewrite makes (same CFG construction, same CFL
// computation, trampolines at every CFL block) so tests can assert the
// property against an independent path through the code.
func AuditPlacement(b *bin.Binary, g *cfg.Graph, opts Options) error {
	for _, f := range g.Funcs {
		if !f.Instrumentable() || !opts.Request.Wants(f.Name) || len(f.Blocks) == 0 {
			continue
		}
		cfl := cflSet(b, f, opts.Mode)
		tramps := map[uint64]bool{}
		for a := range cfl {
			tramps[a] = true
		}
		inst := map[uint64]bool{}
		for _, blk := range f.Blocks {
			inst[blk.Start] = true // block-level instrumentation
		}
		report := PlacementReport{Func: f, CFL: cfl, Trampolines: tramps, Instrumented: inst}
		if err := CheckIntegrity(report.Func, report.CFL, report.Trampolines, report.Instrumented); err != nil {
			return err
		}
	}
	return nil
}
