package core

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

// TestBoundaryTableRewriteEquivalence is the end-to-end regression for
// jump-table bound extension: the workload's table has more entries
// than analysis.MaxTableEntries and sits flush against its section end,
// and the driver dispatches through indices above the cap. A rewriter
// that truncates the table leaves those indices jumping into stale
// original code — with Verify on, that is an illegal-instruction crash
// or divergent output, never a silent pass.
func TestBoundaryTableRewriteEquivalence(t *testing.T) {
	for _, a := range arch.All() {
		p, err := workload.BoundaryTable(a)
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		want := runOriginal(t, p.Binary, nil)
		got, res := rewriteAndRun(t, p.Binary, Options{
			Mode:    ModeJT,
			Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
			Verify:  true,
		})
		if string(got.Output) != string(want.Output) {
			t.Errorf("%s: output = %q, want %q", a, got.Output, want.Output)
		}
		if res.Stats.Coverage() != 1 {
			t.Errorf("%s: coverage = %v, want 1", a, res.Stats.Coverage())
		}
		if res.Stats.ClonedTables != 1 {
			t.Errorf("%s: %d tables cloned, want 1", a, res.Stats.ClonedTables)
		}
	}
}
