package core

import (
	"sync"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

// concurrentProfile is the shared workload profile both goroutines
// build; generation is deterministic, so two independent builds must
// produce identical binaries.
func concurrentProfile() workload.Profile {
	return workload.Profile{
		Name: "concurrent", Seed: 42, Lang: "c++",
		Funcs: 18, SwitchFrac: 0.4, SpillFrac: 0.2,
		TinyFrac: 0.15, Exceptions: true, StackCalls: true, Iters: 8,
	}
}

// TestConcurrentRewriteIndependentBinaries runs two goroutines, each
// rewriting its own independently built binary of the same workload
// profile. Under -race this proves the rewrite path carries no shared
// mutable state; the Marshal comparison proves scheduling cannot leak
// into the output.
func TestConcurrentRewriteIndependentBinaries(t *testing.T) {
	opts := Options{
		Mode:    ModeJT,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty},
		Verify:  true,
	}
	outs := make([][]byte, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := workload.Generate(arch.X64, false, concurrentProfile())
			if err != nil {
				errs[g] = err
				return
			}
			res, err := Rewrite(p.Binary, opts)
			if err != nil {
				errs[g] = err
				return
			}
			outs[g] = res.Binary.Marshal()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if string(outs[0]) != string(outs[1]) {
		t.Error("concurrent rewrites of identical binaries produced different images")
	}
}

// TestConcurrentRewriteSharedBinary rewrites the SAME binary from
// several goroutines at once: Rewrite's contract is that the input is
// shared read-only, so concurrent callers must neither race (-race
// enforced) nor observe each other in their outputs.
func TestConcurrentRewriteSharedBinary(t *testing.T) {
	p, err := workload.Generate(arch.A64, true, concurrentProfile())
	if err != nil {
		t.Fatal(err)
	}
	before := p.Binary.Marshal()
	const goroutines = 4
	outs := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Rewrite(p.Binary, Options{
				Mode:    ModeFuncPtr,
				Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter},
				Verify:  true,
			})
			if err != nil {
				errs[g] = err
				return
			}
			outs[g] = res.Binary.Marshal()
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if string(outs[g]) != string(outs[0]) {
			t.Errorf("goroutine %d produced a different image", g)
		}
	}
	if string(p.Binary.Marshal()) != string(before) {
		t.Error("concurrent rewriting mutated the shared input binary")
	}
}
