package core

import (
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
)

// cflSet computes the control-flow-landing blocks of one function for
// the given mode (Section 4.2). A block is CFL when an incoming control
// flow edge is NOT rewritten:
//
//   - the function entry (indirect calls in dir/jt modes; calls from
//     unanalysable functions in every mode — entries therefore always
//     receive trampolines, which also keeps function-entry
//     instrumentation semantics);
//   - exception catch pads (the unwinder transfers to original
//     addresses in every mode; RA translation does not change where
//     landing pads are);
//   - jump-table target blocks in dir mode (jt and func-ptr clone the
//     tables, removing these CFL blocks — the paper's incremental
//     reduction).
//
// Call fall-through blocks are never CFL here because runtime RA
// translation replaces call emulation (Section 6): relocated calls push
// relocated return addresses, so returns stay in relocated code.
func cflSet(b *bin.Binary, f *cfg.Func, mode Mode) map[uint64]bool {
	cfl := map[uint64]bool{f.Entry: true}
	if b.UsesExceptions() {
		for _, pad := range f.CatchPads {
			cfl[pad] = true
		}
	}
	if mode == ModeDir {
		for _, ij := range f.IndirectJumps {
			if ij.Table == nil {
				continue
			}
			for _, t := range ij.Table.Targets {
				cfl[t] = true
			}
		}
	}
	return cfl
}

// superblock is one trampoline installation site: a CFL block extended
// over the scratch blocks that follow it (Section 4.1, "Trampoline
// Superblock"). Space is the number of original code bytes the
// trampoline may overwrite.
type superblock struct {
	Block *cfg.Block
	Start uint64
	Space int
}

// superblocks computes the trampoline superblocks of one function: every
// non-CFL block is a scratch block ("the key observation"), so each CFL
// block extends to the next CFL block start, bounded by in-function data
// (embedded jump tables, which relocated code may still read) and the
// function end.
func superblocks(f *cfg.Func, cfl map[uint64]bool) []superblock {
	var cflStarts []uint64
	for a := range cfl {
		cflStarts = append(cflStarts, a)
	}
	sort.Slice(cflStarts, func(i, j int) bool { return cflStarts[i] < cflStarts[j] })

	limitAfter := func(start uint64) uint64 {
		limit := f.End
		i := sort.Search(len(cflStarts), func(i int) bool { return cflStarts[i] > start })
		if i < len(cflStarts) && cflStarts[i] < limit {
			limit = cflStarts[i]
		}
		for _, dr := range f.DataRanges {
			if dr[0] >= start && dr[0] < limit {
				limit = dr[0]
			}
		}
		return limit
	}

	var out []superblock
	for _, start := range cflStarts {
		blk, ok := f.BlockAt(start)
		if !ok {
			// A CFL address with no block (e.g. a catch pad in dead
			// code); fall back to the containing block boundary.
			if cb, okc := f.BlockContaining(start); okc {
				blk = cb
			} else {
				continue
			}
		}
		out = append(out, superblock{
			Block: blk,
			Start: start,
			Space: int(limitAfter(start) - start),
		})
	}
	return out
}

// scratchPool allocates scratch space for multi-hop trampolines from
// the three sources of Section 7: alignment padding bytes, unused
// superblock space, and retired dynamic-linking sections.
type scratchPool struct {
	ranges []scratchRange
	align  uint64
	// harvested totals every byte ever contributed, for the metrics
	// layer (total() reports what is still free).
	harvested uint64
}

type scratchRange struct{ start, end uint64 }

func newScratchPool(align uint64) *scratchPool {
	return &scratchPool{align: align}
}

// add contributes a free range.
func (p *scratchPool) add(start, end uint64) {
	start = alignUp(start, p.align)
	if end > start {
		p.ranges = append(p.ranges, scratchRange{start, end})
		p.harvested += end - start
	}
}

// alloc finds n bytes whose start lies within [near-maxBack, near+maxFwd]
// and returns the address, removing the space from the pool.
func (p *scratchPool) alloc(n int, near uint64, maxBack, maxFwd int64) (uint64, bool) {
	for i := range p.ranges {
		r := &p.ranges[i]
		if r.end-r.start < uint64(n) {
			continue
		}
		cand := r.start
		diff := int64(cand - near)
		if diff < -maxBack || diff > maxFwd {
			continue
		}
		r.start = alignUp(cand+uint64(n), p.align)
		if r.start > r.end {
			r.start = r.end
		}
		return cand, true
	}
	return 0, false
}

// total returns the bytes currently available.
func (p *scratchPool) total() uint64 {
	var n uint64
	for _, r := range p.ranges {
		n += r.end - r.start
	}
	return n
}

func alignUp(v, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) / a * a
}

// paddingRanges finds inter-function alignment padding in the text
// section: bytes covered by no function symbol that decode as nops.
func paddingRanges(b *bin.Binary) [][2]uint64 {
	text := b.Text()
	if text == nil {
		return nil
	}
	syms := b.FuncSymbols()
	var out [][2]uint64
	pos := text.Addr
	flush := func(start, end uint64) {
		if end <= start {
			return
		}
		data := text.Data[start-text.Addr : end-text.Addr]
		for _, ins := range arch.DecodeAll(b.Arch, data, start) {
			if ins.Kind != arch.Nop {
				return // not padding; leave it alone
			}
		}
		out = append(out, [2]uint64{start, end})
	}
	for _, s := range syms {
		if s.Addr > pos {
			flush(pos, s.Addr)
		}
		if s.Addr+s.Size > pos {
			pos = s.Addr + s.Size
		}
	}
	flush(pos, text.End())
	return out
}
