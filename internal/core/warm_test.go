package core_test

import (
	"bytes"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

func instrBlockEmpty() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}
}

// ppcInstrGap forces .instr beyond the ±32MB ppc64le branch range so
// long-branch trampolines are exercised (mirrors the experiments
// package's constant).
const ppcInstrGap = 40 << 20

// TestWarmPatchMatchesColdRewrite is the Analyze/Patch split's
// equivalence contract, checked across every arch × mode cell: patching
// against a reused (cached) analysis must produce a rewritten binary
// byte-identical to a cold end-to-end Rewrite.
func TestWarmPatchMatchesColdRewrite(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.PPC, arch.A64} {
		suite, err := workload.SPECSuiteCached(a, false)
		if err != nil {
			t.Fatalf("%v suite: %v", a, err)
		}
		img := suite[0].Binary
		var gap uint64
		if a == arch.PPC {
			gap = ppcInstrGap
		}
		for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
			t.Run(a.String()+"/"+mode.String(), func(t *testing.T) {
				opts := core.Options{
					Mode:     mode,
					Request:  instrBlockEmpty(),
					Verify:   true,
					InstrGap: gap,
				}
				cold, err := core.Rewrite(img, opts)
				if err != nil {
					t.Fatal(err)
				}

				// One analysis, reused for several Patch calls — the store's
				// hit path. Every warm output must match the cold one, and a
				// later warm patch (placements now lazily computed and
				// memoised) must too.
				an, err := core.Analyze(img, core.AnalysisConfig{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				want := cold.Binary.Marshal()
				for i := 0; i < 2; i++ {
					warm, err := an.Patch(opts)
					if err != nil {
						t.Fatalf("warm patch %d: %v", i, err)
					}
					if !bytes.Equal(want, warm.Binary.Marshal()) {
						t.Fatalf("warm patch %d output differs from cold rewrite", i)
					}
				}

				// A different instrumentation subset against the same analysis
				// must also match its own cold rewrite.
				sub := opts
				syms := img.FuncSymbols()
				sub.Request.Funcs = []string{syms[0].Name, syms[len(syms)/2].Name}
				coldSub, err := core.Rewrite(img, sub)
				if err != nil {
					t.Fatal(err)
				}
				warmSub, err := an.Patch(sub)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(coldSub.Binary.Marshal(), warmSub.Binary.Marshal()) {
					t.Fatal("warm patch with function subset differs from cold rewrite")
				}
			})
		}
	}
}

// TestPatchRejectsMismatchedOptions pins the guard: a Patch whose mode
// or variant differs from the analysis configuration must fail rather
// than silently using the wrong cached artefacts.
func TestPatchRejectsMismatchedOptions(t *testing.T) {
	suite, err := workload.SPECSuiteCached(arch.X64, false)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(suite[0].Binary, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Patch(core.Options{Mode: core.ModeDir, Request: instrBlockEmpty()}); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	if _, err := an.Patch(core.Options{Mode: core.ModeJT, Request: instrBlockEmpty(), Variant: core.Variant{NoSuperblocks: true}}); err == nil {
		t.Fatal("variant mismatch accepted")
	}
}
