package core

import (
	"fmt"
	"sort"
	"time"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

// Rewrite performs incremental CFG patching on the binary and returns
// the rewritten image. The input binary is not modified, so one binary
// may be shared read-only by concurrent Rewrite calls.
//
// Rewrite is Analyze followed by Patch: callers that rewrite the same
// binary repeatedly with different instrumentation sets should run
// Analyze once (or hit it in a store.Store) and Patch per request.
func Rewrite(b *bin.Binary, opts Options) (*Result, error) {
	an, err := Analyze(b, AnalysisConfig{Mode: opts.Mode, Variant: opts.Variant, NoEvidence: opts.NoEvidence, Trace: opts.Trace})
	if err != nil {
		return nil, err
	}
	return an.Patch(opts)
}

// preparePatch validates the request against the analysis configuration
// and normalises it: arbitrary instrumentation points restrict
// relocation to the functions that contain them (partial
// instrumentation).
func (an *Analysis) preparePatch(opts Options) (Options, error) {
	if opts.Mode != an.Config.Mode {
		return opts, fmt.Errorf("core: patch mode %s does not match analysis mode %s", opts.Mode, an.Config.Mode)
	}
	if opts.Variant != an.Config.Variant {
		return opts, fmt.Errorf("core: patch variant does not match analysis variant")
	}
	if opts.Request.Where == instrument.AtAddrs && opts.Request.Funcs == nil {
		var names []string
		seen := map[string]bool{}
		for _, addr := range opts.Request.Addrs {
			if f, ok := an.Graph.FuncContaining(addr); ok && !seen[f.Name] {
				seen[f.Name] = true
				names = append(names, f.Name)
			}
		}
		opts.Request.Funcs = names
	}
	return opts, nil
}

// Patch applies one instrumentation request to an analysed binary
// through the staged pipeline — plan (target-neutral IR), layout
// (address assignment), emit (per-arch parallel encoding) — then
// installs trampolines, rewrites function pointers, and emits the new
// sections. The analysis is not mutated, so concurrent Patch calls may
// share it; opts must carry the mode and variant the analysis was built
// with. Output bytes are identical for every Options.PatchJobs value
// and whether or not the emit stage reused cached unit bytes.
func (an *Analysis) Patch(opts Options) (*Result, error) {
	opts, err := an.preparePatch(opts)
	if err != nil {
		return nil, err
	}
	b, g, ptrSites := an.Binary, an.Graph, an.PtrSites
	mx := Metrics{
		Stages:          append([]StageMetric(nil), an.Metrics.Stages...),
		FuncsReused:     an.Metrics.FuncsReused,
		FuncsRecomputed: an.Metrics.FuncsRecomputed,
	}
	clock := time.Now()
	sp := opts.Trace.Start("patch")
	defer sp.End()

	// Copy-on-write clone: section contents stay shared with the input
	// until a write detaches them, so a patch that touches only .text
	// and a few pointer slots never copies the rest of the image
	// (DESIGN.md §11's zero-copy section assembly).
	nb := b.CloneShared()
	stats := Stats{
		Trampolines:    map[arch.TrampolineClass]int{},
		OrigLoadedSize: b.LoadedSize(),
		TotalFuncs:     len(g.Funcs),
	}
	if ev := an.Evidence; ev != nil {
		stats.MarkSites = ev.Marks.Count()
		stats.EvidenceTrusted = ev.Trusted
		stats.EvidenceSkips = ev.Skipped
		stats.MarkBoundedTables = ev.MarkBoundedTables
	}

	// Stage 1: plan. Counters land directly above the loaded image; the
	// plan allocates cells and builds every unit's relocation items.
	counterBase := alignUp(b.MaxLoadedAddr(), sectionGap) + sectionGap
	p := newPatchPlan(an, opts, counterBase)
	for _, f := range g.Funcs {
		if p.instrumented[f.Name] {
			stats.InstrumentedFuncs++
		} else if f.Err != nil {
			stats.SkippedFuncs = append(stats.SkippedFuncs, f.Name)
		}
	}
	stats.HotFuncs = len(p.hot)
	for _, u := range p.units {
		stats.VariantFuncs += u.variants
	}
	if opts.Variant.ReverseFuncs {
		p.reverseUnits()
	}
	sp.Record(StagePlan, mx.lap(StagePlan, &clock))

	// Stage 2: layout — section plan, clone placement, address fixpoint.
	if err := p.layoutAll(opts); err != nil {
		return nil, err
	}
	stats.ClonedTables = len(p.clones)
	sp.Record(StageLayout, mx.lap(StageLayout, &clock))

	// Stage 3: emit — parallel, reuse-aware per-unit encoding.
	instrData, cloneData, raPairs, reused, reencoded, err := p.emit(opts.PatchJobs)
	if err != nil {
		return nil, err
	}
	mx.PatchFuncsReused, mx.PatchFuncsReencoded = reused, reencoded
	// Nothing after the emit stage reads plan items; recycle the slabs
	// for the next Patch (the emit caches hold their own byte copies).
	p.release()
	sp.Record(StageEmit, mx.lap(StageEmit, &clock))

	// Apply the section plan: move dynamic-linking sections, retiring
	// the originals as scratch space (Section 3).
	pool := newScratchPool(b.Arch.InstrAlign())
	for _, mv := range p.sections.moves {
		old := nb.Section(mv.name)
		// Zero-copy move: the relocated section aliases the retired
		// range's current (original) bytes. When the retired range is
		// later written as trampoline scratch, WriteAt's copy-on-write
		// detaches the old section's copy and this alias keeps the
		// pristine contents — the layout window permits sharing exactly
		// because moves happen before any scratch write.
		moved := bin.NewSharedSection(mv.name, mv.addr, old)
		old.Name = bin.OldPrefix + mv.name
		// The retired range becomes trampoline scratch space, so it must
		// be executable from now on.
		old.Flags |= bin.FlagExec
		if _, err := nb.AddSection(moved); err != nil {
			return nil, err
		}
		if mv.scratch {
			pool.add(mv.oldAddr, mv.oldEnd)
		}
	}

	// Patch the original text: verification fill, then trampolines.
	text := nb.Text()
	if opts.Verify {
		for _, f := range g.Funcs {
			if !p.instrumented[f.Name] {
				continue
			}
			fillTextIllegal(b.Arch, text, f)
		}
	}
	for _, pr := range an.paddingRanges() {
		pool.add(pr[0], pr[1])
	}

	var trapPairs []bin.AddrPair
	type hopJob struct {
		sb      superblock
		to      uint64
		scratch arch.Reg
		heat    uint64
	}
	var deferred []hopJob
	for _, ft := range p.tramps {
		stats.CFLBlocks += ft.cflBlocks
		stats.ScratchBlocks += ft.scratchBlocks
		for _, job := range ft.jobs {
			to, ok := p.relocMap[job.sb.Start]
			if !ok {
				return nil, fmt.Errorf("core: CFL block %#x in %s has no relocated address", job.sb.Start, ft.fn.Name)
			}
			sb, err := preserveMark(nb, job.sb)
			if err != nil {
				return nil, err
			}
			tr, ok := directOrLong(b, sb, to, job.scratch)
			if !ok {
				deferred = append(deferred, hopJob{sb: sb, to: to, scratch: job.scratch, heat: p.profCount[ft.fn.Name]})
				continue
			}
			if err := installTrampoline(nb, text, tr, pool, sb, &stats); err != nil {
				return nil, err
			}
		}
	}
	// Second pass: multi-hop through accumulated scratch space, then
	// trap as the last resort. Under profile guidance the hottest
	// functions go first, winning the scarce close-range scratch space
	// while cold functions absorb the trap cost. The stable sort keeps
	// the unguided (deterministic symbol) order within equal heat, so a
	// trivial profile changes nothing.
	if p.prof != nil {
		sort.SliceStable(deferred, func(i, j int) bool { return deferred[i].heat > deferred[j].heat })
	}
	for _, job := range deferred {
		tr, hop, ok := multiHop(b, job.sb, job.to, job.scratch, pool)
		if ok {
			tr.Class = arch.TrampMulti
			if err := installTrampoline(nb, text, tr, pool, job.sb, &stats); err != nil {
				return nil, err
			}
			if err := writeTrampoline(nb, hop); err != nil {
				return nil, err
			}
			continue
		}
		trap := arch.NewTrapTrampoline(b.Arch, job.sb.Start, job.to)
		if err := installTrampoline(nb, text, trap, pool, job.sb, &stats); err != nil {
			return nil, err
		}
		trapPairs = append(trapPairs, bin.AddrPair{From: trap.From, To: trap.To})
	}
	var trapSites []uint64
	for _, tp := range trapPairs {
		trapSites = append(trapSites, tp.From)
	}
	sp.Record(StageTrampolines, mx.lap(StageTrampolines, &clock))

	// Function pointer rewriting (data slots and relocations).
	for _, site := range ptrSites {
		newVal, ok := p.relocMap[site.Value]
		if !ok {
			continue // target not relocated; pointer stays valid
		}
		switch site.Kind {
		case analysis.PtrReloc:
			for i := range nb.Relocs {
				if nb.Relocs[i].Off == site.Slot && nb.Relocs[i].Kind == bin.RelocRelative {
					nb.Relocs[i].Addend = int64(newVal)
				}
			}
			if err := writeU64(nb, site.Slot, newVal); err != nil {
				return nil, err
			}
			stats.RewrittenPtrs++
		case analysis.PtrDataCell:
			if err := writeU64(nb, site.Slot, newVal); err != nil {
				return nil, err
			}
			stats.RewrittenPtrs++
		case analysis.PtrCodeImm:
			stats.RewrittenPtrs++ // patched during relocation
		}
	}
	sp.Record(StagePointers, mx.lap(StagePointers, &clock))

	// New sections.
	if p.nextCell > counterBase {
		if _, err := nb.AddSection(&bin.Section{
			Name: ".icfg.counters", Addr: counterBase,
			Data:  make([]byte, p.nextCell-counterBase),
			Flags: bin.FlagAlloc | bin.FlagWrite, Align: 8,
		}); err != nil {
			return nil, err
		}
	}
	if p.selEnd > p.selBase {
		// Selector cells default to 1: the fast variant runs until a
		// runtime flips a cell to 0 to re-enable full instrumentation for
		// that function — the overhead reduction is the shipped default.
		sel := make([]byte, p.selEnd-p.selBase)
		for i := 0; i < len(sel); i += 8 {
			sel[i] = 1
		}
		if _, err := nb.AddSection(&bin.Section{
			Name: ".icfg.select", Addr: p.selBase, Data: sel,
			Flags: bin.FlagAlloc | bin.FlagWrite, Align: 8,
		}); err != nil {
			return nil, err
		}
	}
	if len(cloneData) > 0 {
		if _, err := nb.AddSection(&bin.Section{
			Name: bin.SecJTClone, Addr: p.sections.cloneBase, Data: cloneData,
			Flags: bin.FlagAlloc, Align: 8,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := nb.AddSection(&bin.Section{
		Name: bin.SecInstr, Addr: p.instrBase, Data: instrData,
		Flags: bin.FlagAlloc | bin.FlagExec, Align: instrAlign,
	}); err != nil {
		return nil, err
	}
	after := alignUp(p.instrBase+uint64(len(instrData)), sectionGap) + sectionGap
	if _, err := nb.AddSection(&bin.Section{
		Name: bin.SecTrampMap, Addr: after, Data: bin.EncodeAddrMap(trapPairs),
		Flags: bin.FlagAlloc, Align: 8,
	}); err != nil {
		return nil, err
	}
	after = alignUp(after+uint64(len(trapPairs)*16+8), sectionGap) + sectionGap

	// Return-address map for binaries whose language runtime unwinds
	// the stack (Section 6).
	if (b.UsesExceptions() || b.GoRuntime()) && !opts.NoRAMap {
		if _, err := nb.AddSection(&bin.Section{
			Name: bin.SecRAMap, Addr: after, Data: bin.EncodeAddrMap(raPairs),
			Flags: bin.FlagAlloc, Align: 8,
		}); err != nil {
			return nil, err
		}
		stats.RAMapEntries = len(raPairs)
		if b.UsesExceptions() {
			nb.Meta[rtlib.MetaWrapUnwind] = "1"
		}
		if b.GoRuntime() {
			// Section 6.2: the Go path instruments runtime.findfunc and
			// runtime.pcvalue; they must exist.
			if _, ok := b.SymbolByName("runtime.findfunc"); !ok {
				return nil, fmt.Errorf("core: go binary lacks runtime.findfunc symbol")
			}
			if _, ok := b.SymbolByName("runtime.pcvalue"); !ok {
				return nil, fmt.Errorf("core: go binary lacks runtime.pcvalue symbol")
			}
			nb.Meta[rtlib.MetaGoPatch] = "1"
		}
	}

	stats.NewLoadedSize = nb.LoadedSize()
	if err := nb.Validate(); err != nil {
		return nil, fmt.Errorf("core: rewritten binary invalid: %w", err)
	}
	sp.Record(StageFinalize, mx.lap(StageFinalize, &clock))
	mx.CFLBlocks = stats.CFLBlocks
	mx.ScratchBlocks = stats.ScratchBlocks
	mx.ScratchBytesHarvested = pool.harvested
	mx.ScratchBytesFree = pool.total()
	mx.Trampolines = map[arch.TrampolineClass]int{}
	for c, n := range stats.Trampolines {
		mx.Trampolines[c] = n
	}
	mx.ClonedTables = stats.ClonedTables
	mx.AnalysisFailures = len(stats.SkippedFuncs)
	if sp != nil {
		sp.SetInt("cfl-blocks", int64(mx.CFLBlocks))
		sp.SetInt("scratch-blocks", int64(mx.ScratchBlocks))
		sp.SetInt("scratch-bytes", int64(mx.ScratchBytesHarvested))
		sp.SetInt("trampolines", int64(mx.TrampolineTotal()))
		sp.SetInt("tables-cloned", int64(mx.ClonedTables))
		sp.SetInt("analysis-failures", int64(mx.AnalysisFailures))
		sp.SetInt("patch-jobs", int64(opts.PatchJobs))
		sp.SetInt("patch-funcs-reused", int64(mx.PatchFuncsReused))
		sp.SetInt("patch-funcs-reencoded", int64(mx.PatchFuncsReencoded))
	}
	res := &Result{Binary: nb, Stats: stats, Metrics: mx, RelocMap: p.relocMap, TrapSites: trapSites}
	res.pooled = append(res.pooled, instrData)
	if len(cloneData) > 0 {
		res.pooled = append(res.pooled, cloneData)
	}
	if opts.Request.Payload == instrument.PayloadCounter {
		res.CounterCells = p.counterCells
	}
	return res, nil
}
