package core

import (
	"fmt"
	"time"

	"icfgpatch/internal/analysis"
	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/cfg"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
)

// Rewrite performs incremental CFG patching on the binary and returns
// the rewritten image. The input binary is not modified, so one binary
// may be shared read-only by concurrent Rewrite calls.
//
// Rewrite is Analyze followed by Patch: callers that rewrite the same
// binary repeatedly with different instrumentation sets should run
// Analyze once (or hit it in a store.Store) and Patch per request.
func Rewrite(b *bin.Binary, opts Options) (*Result, error) {
	an, err := Analyze(b, AnalysisConfig{Mode: opts.Mode, Variant: opts.Variant, Trace: opts.Trace})
	if err != nil {
		return nil, err
	}
	return an.Patch(opts)
}

// Patch applies one instrumentation request to an analysed binary: it
// plans the new layout, relocates the instrumented functions, installs
// trampolines, rewrites function pointers, and emits the new sections.
// The analysis is not mutated, so concurrent Patch calls may share it;
// opts must carry the mode and variant the analysis was built with.
func (an *Analysis) Patch(opts Options) (*Result, error) {
	if opts.Mode != an.Config.Mode {
		return nil, fmt.Errorf("core: patch mode %s does not match analysis mode %s", opts.Mode, an.Config.Mode)
	}
	if opts.Variant != an.Config.Variant {
		return nil, fmt.Errorf("core: patch variant does not match analysis variant")
	}
	b, g, ptrSites := an.Binary, an.Graph, an.PtrSites
	mx := Metrics{
		Stages:          append([]StageMetric(nil), an.Metrics.Stages...),
		FuncsReused:     an.Metrics.FuncsReused,
		FuncsRecomputed: an.Metrics.FuncsRecomputed,
	}
	clock := time.Now()
	sp := opts.Trace.Start("patch")
	defer sp.End()

	// Arbitrary instrumentation points restrict relocation to the
	// functions that contain them (partial instrumentation).
	if opts.Request.Where == instrument.AtAddrs && opts.Request.Funcs == nil {
		var names []string
		seen := map[string]bool{}
		for _, addr := range opts.Request.Addrs {
			if f, ok := g.FuncContaining(addr); ok && !seen[f.Name] {
				seen[f.Name] = true
				names = append(names, f.Name)
			}
		}
		opts.Request.Funcs = names
	}

	nb := b.Clone()
	stats := Stats{
		Trampolines:    map[arch.TrampolineClass]int{},
		OrigLoadedSize: b.LoadedSize(),
		TotalFuncs:     len(g.Funcs),
	}

	// Plan the new layout: counters, moved dynamic sections, cloned
	// tables, then .instr.
	cursor := alignUp(b.MaxLoadedAddr(), sectionGap) + sectionGap
	counterBase := cursor

	r := newRelocation(b, g, opts, counterBase)
	for _, site := range ptrSites {
		for _, ia := range site.Instrs {
			r.codePtrImm[ia] = site.Value
		}
	}
	// Re-run unit construction so code-immediate pointer sites classify
	// with the pointer map in place.
	if len(r.codePtrImm) > 0 {
		r.units = nil
		for _, f := range g.Funcs {
			if r.instrumented[f.Name] {
				r.units = append(r.units, r.buildUnit(g, f))
			}
		}
	}

	for _, f := range g.Funcs {
		if r.instrumented[f.Name] {
			stats.InstrumentedFuncs++
		} else if f.Err != nil {
			stats.SkippedFuncs = append(stats.SkippedFuncs, f.Name)
		}
	}

	if opts.Variant.ReverseFuncs {
		for i, j := 0, len(r.units)-1; i < j; i, j = i+1, j-1 {
			r.units[i], r.units[j] = r.units[j], r.units[i]
		}
	}
	cursor = alignUp(r.nextCell, sectionGap) + sectionGap

	// Move dynamic-linking sections, retiring the originals as scratch
	// space (Section 3).
	pool := newScratchPool(b.Arch.InstrAlign())
	for _, name := range []string{bin.SecDynSym, bin.SecDynStr, bin.SecRelaDyn} {
		old := nb.Section(name)
		if old == nil {
			continue
		}
		moved := &bin.Section{
			Name:  name,
			Addr:  cursor,
			Data:  append([]byte(nil), old.Data...),
			Flags: old.Flags,
			Align: old.Align,
		}
		old.Name = bin.OldPrefix + name
		// The retired range becomes trampoline scratch space, so it must
		// be executable from now on.
		old.Flags |= bin.FlagExec
		if _, err := nb.AddSection(moved); err != nil {
			return nil, err
		}
		cursor = alignUp(moved.End(), sectionGap) + sectionGap
		if old.Size() > 0 && !opts.Variant.NoScratchSections {
			pool.add(old.Addr, old.End())
		}
	}

	cloneBase := cursor
	r.placeClones(cloneBase)
	cursor = alignUp(cloneBase+r.cloneBytes(), sectionGap) + sectionGap
	stats.ClonedTables = len(r.clones)

	instrBase := alignUp(cursor+opts.InstrGap, sectionGap)
	if err := r.layout(instrBase); err != nil {
		return nil, err
	}
	sp.Record(StageLayout, mx.lap(StageLayout, &clock))
	instrData, cloneData, err := r.emit()
	if err != nil {
		return nil, err
	}
	sp.Record(StageEmit, mx.lap(StageEmit, &clock))

	// Patch the original text: verification fill, then trampolines.
	text := nb.Text()
	if opts.Verify {
		for _, f := range g.Funcs {
			if !r.instrumented[f.Name] {
				continue
			}
			fillTextIllegal(b.Arch, text, f)
		}
	}
	for _, pr := range an.paddingRanges() {
		pool.add(pr[0], pr[1])
	}

	var trapPairs []bin.AddrPair
	type hopJob struct {
		sb      superblock
		to      uint64
		scratch arch.Reg
	}
	var deferred []hopJob
	for _, f := range g.Funcs {
		if !r.instrumented[f.Name] || opts.Variant.NoTrampolines {
			continue
		}
		pl := an.placement(f)
		cfl := pl.cfl
		stats.CFLBlocks += len(cfl)
		stats.ScratchBlocks += len(f.Blocks) - len(cfl)
		lv := pl.lv
		sbs := pl.sbs
		for _, sb := range sbs {
			to, ok := r.relocMap[sb.Start]
			if !ok {
				return nil, fmt.Errorf("core: CFL block %#x in %s has no relocated address", sb.Start, f.Name)
			}
			scratch := lv.DeadAt(sb.Block.Start)
			tr, ok := directOrLong(b, sb, to, scratch)
			if !ok {
				deferred = append(deferred, hopJob{sb: sb, to: to, scratch: scratch})
				continue
			}
			if err := installTrampoline(nb, text, tr, pool, sb, &stats); err != nil {
				return nil, err
			}
		}
	}
	// Second pass: multi-hop through accumulated scratch space, then
	// trap as the last resort.
	for _, job := range deferred {
		tr, hop, ok := multiHop(b, job.sb, job.to, job.scratch, pool)
		if ok {
			tr.Class = arch.TrampMulti
			if err := installTrampoline(nb, text, tr, pool, job.sb, &stats); err != nil {
				return nil, err
			}
			if err := writeTrampoline(nb, hop); err != nil {
				return nil, err
			}
			continue
		}
		trap := arch.NewTrapTrampoline(b.Arch, job.sb.Start, job.to)
		if err := installTrampoline(nb, text, trap, pool, job.sb, &stats); err != nil {
			return nil, err
		}
		trapPairs = append(trapPairs, bin.AddrPair{From: trap.From, To: trap.To})
	}
	var trapSites []uint64
	for _, tp := range trapPairs {
		trapSites = append(trapSites, tp.From)
	}
	sp.Record(StageTrampolines, mx.lap(StageTrampolines, &clock))

	// Function pointer rewriting (data slots and relocations).
	for _, site := range ptrSites {
		newVal, ok := r.relocMap[site.Value]
		if !ok {
			continue // target not relocated; pointer stays valid
		}
		switch site.Kind {
		case analysis.PtrReloc:
			for i := range nb.Relocs {
				if nb.Relocs[i].Off == site.Slot && nb.Relocs[i].Kind == bin.RelocRelative {
					nb.Relocs[i].Addend = int64(newVal)
				}
			}
			if err := writeU64(nb, site.Slot, newVal); err != nil {
				return nil, err
			}
			stats.RewrittenPtrs++
		case analysis.PtrDataCell:
			if err := writeU64(nb, site.Slot, newVal); err != nil {
				return nil, err
			}
			stats.RewrittenPtrs++
		case analysis.PtrCodeImm:
			stats.RewrittenPtrs++ // patched during relocation
		}
	}
	sp.Record(StagePointers, mx.lap(StagePointers, &clock))

	// New sections.
	if r.nextCell > counterBase {
		if _, err := nb.AddSection(&bin.Section{
			Name: ".icfg.counters", Addr: counterBase,
			Data:  make([]byte, r.nextCell-counterBase),
			Flags: bin.FlagAlloc | bin.FlagWrite, Align: 8,
		}); err != nil {
			return nil, err
		}
	}
	if len(cloneData) > 0 {
		if _, err := nb.AddSection(&bin.Section{
			Name: bin.SecJTClone, Addr: cloneBase, Data: cloneData,
			Flags: bin.FlagAlloc, Align: 8,
		}); err != nil {
			return nil, err
		}
	}
	if _, err := nb.AddSection(&bin.Section{
		Name: bin.SecInstr, Addr: instrBase, Data: instrData,
		Flags: bin.FlagAlloc | bin.FlagExec, Align: instrAlign,
	}); err != nil {
		return nil, err
	}
	after := alignUp(instrBase+uint64(len(instrData)), sectionGap) + sectionGap
	if _, err := nb.AddSection(&bin.Section{
		Name: bin.SecTrampMap, Addr: after, Data: bin.EncodeAddrMap(trapPairs),
		Flags: bin.FlagAlloc, Align: 8,
	}); err != nil {
		return nil, err
	}
	after = alignUp(after+uint64(len(trapPairs)*16+8), sectionGap) + sectionGap

	// Return-address map for binaries whose language runtime unwinds
	// the stack (Section 6).
	if (b.UsesExceptions() || b.GoRuntime()) && !opts.NoRAMap {
		if _, err := nb.AddSection(&bin.Section{
			Name: bin.SecRAMap, Addr: after, Data: bin.EncodeAddrMap(r.raPairs),
			Flags: bin.FlagAlloc, Align: 8,
		}); err != nil {
			return nil, err
		}
		stats.RAMapEntries = len(r.raPairs)
		if b.UsesExceptions() {
			nb.Meta[rtlib.MetaWrapUnwind] = "1"
		}
		if b.GoRuntime() {
			// Section 6.2: the Go path instruments runtime.findfunc and
			// runtime.pcvalue; they must exist.
			if _, ok := b.SymbolByName("runtime.findfunc"); !ok {
				return nil, fmt.Errorf("core: go binary lacks runtime.findfunc symbol")
			}
			if _, ok := b.SymbolByName("runtime.pcvalue"); !ok {
				return nil, fmt.Errorf("core: go binary lacks runtime.pcvalue symbol")
			}
			nb.Meta[rtlib.MetaGoPatch] = "1"
		}
	}

	stats.NewLoadedSize = nb.LoadedSize()
	if err := nb.Validate(); err != nil {
		return nil, fmt.Errorf("core: rewritten binary invalid: %w", err)
	}
	sp.Record(StageFinalize, mx.lap(StageFinalize, &clock))
	mx.CFLBlocks = stats.CFLBlocks
	mx.ScratchBlocks = stats.ScratchBlocks
	mx.ScratchBytesHarvested = pool.harvested
	mx.ScratchBytesFree = pool.total()
	mx.Trampolines = map[arch.TrampolineClass]int{}
	for c, n := range stats.Trampolines {
		mx.Trampolines[c] = n
	}
	mx.ClonedTables = stats.ClonedTables
	mx.AnalysisFailures = len(stats.SkippedFuncs)
	if sp != nil {
		sp.SetInt("cfl-blocks", int64(mx.CFLBlocks))
		sp.SetInt("scratch-blocks", int64(mx.ScratchBlocks))
		sp.SetInt("scratch-bytes", int64(mx.ScratchBytesHarvested))
		sp.SetInt("trampolines", int64(mx.TrampolineTotal()))
		sp.SetInt("tables-cloned", int64(mx.ClonedTables))
		sp.SetInt("analysis-failures", int64(mx.AnalysisFailures))
	}
	res := &Result{Binary: nb, Stats: stats, Metrics: mx, RelocMap: r.relocMap, TrapSites: trapSites}
	if opts.Request.Payload == instrument.PayloadCounter {
		res.CounterCells = r.counterCells
	}
	return res, nil
}

// directOrLong tries the in-place trampoline forms: a single direct
// branch, then the long sequence, within the superblock's space.
func directOrLong(b *bin.Binary, sb superblock, to uint64, scratch arch.Reg) (arch.Trampoline, bool) {
	a := b.Arch
	if a == arch.X64 {
		if sb.Space >= arch.LongTrampolineLen(a) {
			if tr, ok := arch.NewLongTrampoline(a, sb.Start, to, scratch, 0); ok {
				return tr, true
			}
		}
		return arch.Trampoline{}, false
	}
	if sb.Space >= arch.ShortTrampolineLen(a) {
		if tr, ok := arch.NewShortTrampoline(a, sb.Start, to); ok {
			return tr, true
		}
	}
	if tr, ok := arch.NewLongTrampoline(a, sb.Start, to, scratch, b.TOCValue); ok && sb.Space >= tr.Len {
		return tr, true
	}
	return arch.Trampoline{}, false
}

// multiHop places a short trampoline in the block and a long one in
// scratch space within the short form's range (Section 7's
// multi-trampoline design).
func multiHop(b *bin.Binary, sb superblock, to uint64, scratch arch.Reg, pool *scratchPool) (arch.Trampoline, arch.Trampoline, bool) {
	a := b.Arch
	if sb.Space < arch.ShortTrampolineLen(a) {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	hopLen := arch.LongTrampolineLen(a)
	if a == arch.PPC && scratch == arch.NoReg {
		hopLen = arch.LongSpillTrampolineLen(a)
	}
	if a == arch.A64 && scratch == arch.NoReg {
		return arch.Trampoline{}, arch.Trampoline{}, false // paper: fall back to trap
	}
	rng := arch.ShortBranchRange(a)
	hopAddr, ok := pool.alloc(hopLen, sb.Start, rng, rng)
	if !ok {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	short, ok := arch.NewShortTrampoline(a, sb.Start, hopAddr)
	if !ok {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	long, ok := arch.NewLongTrampoline(a, hopAddr, to, scratch, b.TOCValue)
	if !ok || long.Len > hopLen {
		return arch.Trampoline{}, arch.Trampoline{}, false
	}
	return short, long, true
}

// installTrampoline writes the trampoline into the text section and
// donates the superblock's remaining space to the scratch pool.
func installTrampoline(nb *bin.Binary, text *bin.Section, tr arch.Trampoline, pool *scratchPool, sb superblock, stats *Stats) error {
	if err := writeTrampoline(nb, tr); err != nil {
		return err
	}
	stats.Trampolines[tr.Class]++
	leftover := sb.Start + uint64(tr.Len)
	end := sb.Start + uint64(sb.Space)
	if end > leftover {
		pool.add(leftover, end)
	}
	_ = text
	return nil
}

// writeTrampoline encodes and stores a trampoline's bytes.
func writeTrampoline(nb *bin.Binary, tr arch.Trampoline) error {
	bs, err := tr.Encode(nb.Arch)
	if err != nil {
		return err
	}
	return nb.WriteAt(tr.From, bs)
}

// fillTextIllegal overwrites an instrumented function's code bytes with
// illegal instructions, sparing embedded data ranges — the paper's
// strong verification: any control flow escaping the trampolines faults
// immediately.
func fillTextIllegal(a arch.Arch, text *bin.Section, f *cfg.Func) {
	inData := func(addr uint64) bool {
		for _, dr := range f.DataRanges {
			if addr >= dr[0] && addr < dr[1] {
				return true
			}
		}
		return false
	}
	for addr := f.Entry; addr < f.End; addr++ {
		if !inData(addr) && text.Contains(addr) {
			text.Data[addr-text.Addr] = 0xFF
		}
	}
}

// writeU64 stores a 64-bit value at a mapped address.
func writeU64(nb *bin.Binary, addr, v uint64) error {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	return nb.WriteAt(addr, buf[:])
}
