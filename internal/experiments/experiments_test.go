package experiments

import (
	"strings"
	"testing"

	"icfgpatch/internal/arch"
)

// TestTable3X64Shape asserts the paper's Table 3 qualitative claims on
// x86-64: overhead ordering SRBI > dir > jt > func-ptr ≈ 0; SRBI fails
// the two C++ exception benchmarks while every incremental mode passes
// all 19; coverage 100% for the incremental modes and lower for SRBI;
// IR lowering has near-zero overhead and small size but fails the
// exception benchmarks.
func TestTable3X64Shape(t *testing.T) {
	res, err := Table3ForArch(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	ap := map[string]Table3Approach{}
	for _, a := range res.Approaches {
		ap[a.Name] = a
	}

	srbi, dir, jt, fp := ap["SRBI"], ap["dir"], ap["jt"], ap["func-ptr"]
	irl := ap["IR lowering"]

	if !(srbi.TimeMean > dir.TimeMean && dir.TimeMean > jt.TimeMean && jt.TimeMean >= fp.TimeMean) {
		t.Errorf("overhead ordering violated: srbi=%v dir=%v jt=%v fp=%v",
			srbi.TimeMean, dir.TimeMean, jt.TimeMean, fp.TimeMean)
	}
	if fp.TimeMean > 0.005 {
		t.Errorf("func-ptr mean overhead %v, want close to zero", fp.TimeMean)
	}
	for _, m := range []Table3Approach{dir, jt, fp} {
		if m.Pass != 19 {
			t.Errorf("%s passed %d/19", m.Name, m.Pass)
		}
		if m.CovMean != 1 {
			t.Errorf("%s coverage mean %v, want 100%% on x64", m.Name, m.CovMean)
		}
	}
	if srbi.Pass != 17 {
		t.Errorf("SRBI passed %d, want 17 (the two C++ exception benchmarks fail)", srbi.Pass)
	}
	for _, r := range srbi.Runs {
		failed := !r.Pass
		isExc := r.Bench == "620.omnetpp_s" || r.Bench == "623.xalancbmk_s"
		if failed != isExc {
			t.Errorf("SRBI %s: pass=%v (exceptions=%v)", r.Bench, r.Pass, isExc)
		}
	}
	if srbi.CovMean >= 1 || srbi.CovMin >= 1 {
		t.Error("SRBI coverage must be below 100% (strict bounds, no tail-call rescue)")
	}
	if irl.Pass != 17 {
		t.Errorf("IR lowering passed %d, want 17", irl.Pass)
	}
	if irl.TimeMean > 0.002 {
		t.Errorf("IR lowering overhead %v, want ~0", irl.TimeMean)
	}
	if irl.SizeMean > 0.2 || irl.SizeMean >= jt.SizeMean {
		t.Errorf("IR lowering size %v must be far below patching-based %v", irl.SizeMean, jt.SizeMean)
	}
	if jt.SizeMean < 0.4 || jt.SizeMean > 1.2 {
		t.Errorf("jt size increase %v outside the paper's 60-105%% band", jt.SizeMean)
	}
	if out := res.Render(); !strings.Contains(out, "jt") || !strings.Contains(out, "pass") {
		t.Error("render output malformed")
	}
}

// TestTable3PPCShape asserts the PPC-specific claims: trap-heavy SRBI
// (prohibitive overhead with the ±32MB branch range exceeded), and
// sub-100% coverage for the incremental modes (hard embedded jump
// tables) that still beats SRBI's.
func TestTable3PPCShape(t *testing.T) {
	res, err := Table3ForArch(arch.PPC)
	if err != nil {
		t.Fatal(err)
	}
	ap := map[string]Table3Approach{}
	for _, a := range res.Approaches {
		ap[a.Name] = a
	}
	srbi, dir, jt := ap["SRBI"], ap["dir"], ap["jt"]
	if srbi.TimeMean < 0.20 {
		t.Errorf("SRBI ppc mean overhead %v — expected prohibitive (trap trampolines)", srbi.TimeMean)
	}
	if jt.TimeMean > 0.05 {
		t.Errorf("jt ppc mean overhead %v, want small (long/multi-hop trampolines instead of traps)", jt.TimeMean)
	}
	if dir.CovMean >= 1 {
		t.Error("ppc coverage must be below 100% (embedded jump tables resist analysis)")
	}
	if dir.CovMean <= srbi.CovMean {
		t.Errorf("our ppc coverage %v must beat SRBI's %v", dir.CovMean, srbi.CovMean)
	}
	if dir.Pass != 19 || jt.Pass != 19 {
		t.Errorf("incremental modes must pass 19/19 on ppc: dir=%d jt=%d", dir.Pass, jt.Pass)
	}
	// SRBI's size on ppc exceeds ours (trap machinery), as in the paper.
	if srbi.SizeMean <= jt.SizeMean {
		t.Logf("note: SRBI ppc size %v vs jt %v (paper had SRBI much larger)", srbi.SizeMean, jt.SizeMean)
	}
}

func TestFirefoxShape(t *testing.T) {
	res, err := Firefox()
	if err != nil {
		t.Fatal(err)
	}
	modes := map[string]FirefoxMode{}
	for _, m := range res.Modes {
		modes[m.Mode] = m
	}
	if !modes["dir"].Failed {
		t.Error("dir mode must fail on libxul (trap trampolines in destructors)")
	}
	jt, fp := modes["jt"], modes["func-ptr"]
	for _, m := range []FirefoxMode{jt, fp} {
		if m.Failed {
			t.Fatalf("%s failed: %s", m.Mode, m.Reason)
		}
		if m.Coverage < 0.99 || m.Coverage == 1 {
			t.Errorf("%s coverage %v, want 99.x%%", m.Mode, m.Coverage)
		}
		if m.LatencyMean < 0 || m.LatencyMean > 0.08 {
			t.Errorf("%s latency overhead %v outside the paper's band", m.Mode, m.LatencyMean)
		}
		if m.Traps != 0 {
			t.Errorf("%s installed %d traps; jump table cloning should remove them", m.Mode, m.Traps)
		}
		if m.SizeInc < 0.4 {
			t.Errorf("%s size increase %v too small", m.Mode, m.SizeInc)
		}
	}
	if fp.LatencyMean > jt.LatencyMean {
		t.Errorf("func-ptr latency %v must not exceed jt %v", fp.LatencyMean, jt.LatencyMean)
	}
}

func TestDockerShape(t *testing.T) {
	res, err := Docker()
	if err != nil {
		t.Fatal(err)
	}
	if !res.DirEqualsJT {
		t.Error("dir and jt must coincide for Go binaries (no jump tables)")
	}
	if !res.FuncPtrFailed {
		t.Errorf("func-ptr must refuse the Go function table: %s", res.FuncPtrReason)
	}
	if res.CommandsOK != res.Commands {
		t.Errorf("commands correct %d/%d", res.CommandsOK, res.Commands)
	}
	if res.TracebackWalks == 0 {
		t.Error("no Go runtime stack walks exercised")
	}
	if res.Coverage != 1 {
		t.Errorf("docker coverage %v, want 100%%", res.Coverage)
	}
	if res.MeanOverhead < 0 || res.MeanOverhead > 0.15 {
		t.Errorf("docker mean overhead %v outside the paper's band (6.98%%)", res.MeanOverhead)
	}
}

func TestBOLTShape(t *testing.T) {
	res, err := BOLTComparison()
	if err != nil {
		t.Fatal(err)
	}
	if res.FuncBOLTPass != 0 {
		t.Errorf("BOLT reordered functions for %d benchmarks without link relocations", res.FuncBOLTPass)
	}
	if !strings.Contains(res.FuncBOLTErr, "relocations are enabled") {
		t.Errorf("BOLT error message %q", res.FuncBOLTErr)
	}
	if res.FuncOursPass != res.Total || res.BlockOursPass != res.Total {
		t.Errorf("ours must reorder all %d: funcs=%d blocks=%d", res.Total, res.FuncOursPass, res.BlockOursPass)
	}
	if res.BlockBOLTPass == 0 || res.BlockBOLTPass == res.Total {
		t.Errorf("BOLT block reordering passed %d/%d; the paper saw partial corruption (9/19)", res.BlockBOLTPass, res.Total)
	}
}

func TestDiogenesShape(t *testing.T) {
	res, err := Diogenes()
	if err != nil {
		t.Fatal(err)
	}
	if !res.MainstreamOK {
		t.Fatal("mainstream run failed")
	}
	if res.Speedup < 3 {
		t.Errorf("speedup %.1fx, want the order-of-magnitude improvement of the paper (60x)", res.Speedup)
	}
	if res.OursTraps != 0 {
		t.Errorf("our rewrite installed %d traps; trampoline placement should avoid them", res.OursTraps)
	}
	if res.MainstreamTraps == 0 {
		t.Error("mainstream rewrite installed no traps; the case study's mechanism is missing")
	}
	if res.TotalFuncs < 1000 || res.Instrumented > res.TotalFuncs/10 {
		t.Errorf("partial instrumentation scale wrong: %d of %d", res.Instrumented, res.TotalFuncs)
	}
	if res.EgalitoErr == "" {
		t.Error("Egalito must fail on libcuda (symbol versioning)")
	}
}

func TestFigure2Shape(t *testing.T) {
	res, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalysisCoverage >= 1 || res.AnalysisCoverage <= 0 {
		t.Errorf("analysis-failure coverage %v, want partial", res.AnalysisCoverage)
	}
	if !res.AnalysisCorrect {
		t.Error("analysis failure must not affect other functions")
	}
	if res.OverApproxExtraEntries <= 0 {
		t.Error("over-approximation produced no extra cloned entries")
	}
	if !res.OverApproxCorrect {
		t.Error("over-approximation must not break correctness (cloning)")
	}
	if !res.UnderApproxDetected {
		t.Errorf("forced under-approximation must be caught by verification: %s", res.UnderApproxFault)
	}
	if out := res.Render(); !strings.Contains(out, "under-approximation") {
		t.Error("render malformed")
	}
}

func TestStaticRenders(t *testing.T) {
	if out := Table1Render(); !strings.Contains(out, "Our work") || !strings.Contains(out, "E9Patch") {
		t.Error("Table 1 render malformed")
	}
	if out := Table2Render(); !strings.Contains(out, "bctar") || !strings.Contains(out, "adrp") {
		t.Error("Table 2 render malformed")
	}
	out, err := Figure1Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".instr", ".ra_map", ".tramp_map", ".rodata.icfg", "retired"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 render missing %q", want)
		}
	}
}

// TestAblationShape asserts each design choice's measurable
// contribution on the trampoline-stressed PPC configuration.
func TestAblationShape(t *testing.T) {
	res, err := Ablation(arch.PPC)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]AblationRow{}
	for _, r := range res.Rows {
		rows[r.Name] = r
	}
	full := rows["full system"]
	if full.Traps != 0 {
		t.Errorf("full system installed %d traps on ppc; placement analysis should avoid them", full.Traps)
	}
	noSB := rows["- superblocks"]
	if noSB.Traps <= full.Traps || noSB.Overhead <= 4*full.Overhead {
		t.Errorf("removing superblocks must cost traps and overhead: traps=%d overhead=%v", noSB.Traps, noSB.Overhead)
	}
	noBoth := rows["- superblocks & scratch"]
	if noBoth.Traps <= noSB.Traps {
		t.Errorf("retired-section scratch must absorb some multi-hops: %d vs %d traps", noBoth.Traps, noSB.Traps)
	}
	if rows["- bound extension"].Coverage >= full.Coverage {
		t.Error("removing bound extension must cost coverage")
	}
	if rows["- tail call heuristic"].Coverage >= full.Coverage {
		t.Error("removing the tail call heuristic must cost coverage")
	}
	every := rows["- CFL placement (every block)"]
	if every.Traps <= noSB.Traps {
		t.Errorf("per-block placement must install the most traps: %d", every.Traps)
	}
	for _, r := range res.Rows {
		if r.Pass != r.Total {
			t.Errorf("%s: pass %d/%d — ablations change cost, not correctness", r.Name, r.Pass, r.Total)
		}
	}
	if out := res.Render(); !strings.Contains(out, "superblocks") {
		t.Error("render malformed")
	}
}

// TestTrampolineDistribution asserts the trampoline-class mechanics:
// x64 uses only the 5-byte long branch, ppc with a 40MB gap needs long
// (TOC) sequences and multi-hops but dir mode has more of the scarce
// cases (jump-table target blocks are small), a64's ±128MB branch
// reaches with the short form everywhere.
func TestTrampolineDistribution(t *testing.T) {
	x, err := Trampolines(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	for mode, counts := range x.Rows {
		if counts[arch.TrampShort] != 0 || counts[arch.TrampTrap] != 0 {
			t.Errorf("x64 %s: unexpected classes %v (5-byte branch always reaches)", mode, counts)
		}
		if counts[arch.TrampLong] == 0 {
			t.Errorf("x64 %s: no trampolines at all", mode)
		}
	}
	p, err := Trampolines(arch.PPC)
	if err != nil {
		t.Fatal(err)
	}
	dir, jt := p.Rows["dir"], p.Rows["jt"]
	if dir[arch.TrampLong]+dir[arch.TrampLongSpill]+dir[arch.TrampMulti] == 0 {
		t.Errorf("ppc dir: no long-range forms despite the gap: %v", dir)
	}
	if dirTotal, jtTotal := total(dir), total(jt); jtTotal >= dirTotal {
		t.Errorf("ppc: jt must install fewer trampolines than dir (%d vs %d)", jtTotal, dirTotal)
	}
	a, err := Trampolines(arch.A64)
	if err != nil {
		t.Fatal(err)
	}
	for mode, counts := range a.Rows {
		if counts[arch.TrampShort] == 0 {
			t.Errorf("a64 %s: ±128MB branch should dominate: %v", mode, counts)
		}
		if counts[arch.TrampTrap] != 0 {
			t.Errorf("a64 %s: traps installed: %v", mode, counts)
		}
	}
	if out := p.Render(); !strings.Contains(out, "dir") {
		t.Error("render malformed")
	}
}

func total(m map[arch.TrampolineClass]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// TestProfileGuidedShape asserts the multi-version follow-on's headline
// claim on a variable-width and a fixed-width architecture: with a
// captured profile, counter instrumentation costs measurably fewer
// emulated cycles than the unguided rewrite on the same suite, every
// benchmark still produces the original output, and the guided plans
// actually split hot functions into variants (a ratio below 1 with zero
// variants would mean the win came from somewhere else).
func TestProfileGuidedShape(t *testing.T) {
	for _, a := range []arch.Arch{arch.X64, arch.A64} {
		res, err := ProfileGuided(a)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pass != res.Total {
			for _, f := range res.Failures() {
				t.Error(f)
			}
			t.Fatalf("%s: %d/%d benchmarks passed", a, res.Pass, res.Total)
		}
		variants := 0
		for _, r := range res.Runs {
			variants += r.VariantFuncs
			if r.HotFuncs < r.VariantFuncs {
				t.Errorf("%s %s: %d variants from %d hot funcs", a, r.Bench, r.VariantFuncs, r.HotFuncs)
			}
		}
		if variants == 0 {
			t.Fatalf("%s: no benchmark planned any fast variants", a)
		}
		if res.GuidedMean >= res.UnguidedMean {
			t.Errorf("%s: guided overhead %v not below unguided %v", a, res.GuidedMean, res.UnguidedMean)
		}
		if res.Ratio <= 0 || res.Ratio >= 0.9 {
			t.Errorf("%s: guided/unguided ratio %.3f, want a clear (>10%%) win", a, res.Ratio)
		}
		if out := res.Render(); !strings.Contains(out, "ratio") || !strings.Contains(out, "variants") {
			t.Error("render malformed")
		}
	}
}
