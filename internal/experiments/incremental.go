package experiments

import (
	"fmt"
	"strings"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// incrementalK is how many of the benchmark's functions the synthetic
// point release perturbs.
const incrementalK = 3

// IncrementalCell is one (arch, mode) measurement of the delta engine:
// version 1 rewritten cold to warm the function-unit store, then
// version 2 — a K-function mutation — rewritten both cold and via the
// delta path.
type IncrementalCell struct {
	Arch arch.Arch
	Mode core.Mode

	Funcs      int // functions in the binary
	Mutated    int // functions actually perturbed
	Recomputed int // units the delta path rebuilt
	Reused     int // units pulled unchanged from the store

	Cold      time.Duration // full v2 rewrite, empty store
	Delta     time.Duration // v2 analyze+patch against the warm store
	Identical bool          // delta output byte-identical to cold
	Err       string
}

// IncrementalResult is the incremental-rewrite table: every arch ×
// rewriting mode, reporting the delta path's work split and speedup
// against a cold rewrite of the same second version.
type IncrementalResult struct {
	Cells []IncrementalCell
}

// Incremental runs the delta-rewrite experiment for one architecture
// across all three rewriting modes.
func Incremental(a arch.Arch) (*IncrementalResult, error) {
	suite, err := workload.SPECSuiteCached(a, false)
	if err != nil {
		return nil, err
	}
	v1 := suite[0].Binary
	v2, mutated, err := workload.MutateVersion(v1, incrementalK, 3)
	if err != nil {
		return nil, fmt.Errorf("experiments: incremental %s: %w", a, err)
	}

	var gap uint64
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	res := &IncrementalResult{}
	for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
		cell := IncrementalCell{Arch: a, Mode: mode, Mutated: len(mutated)}
		opts := core.Options{Mode: mode, Request: blockEmpty(), InstrGap: gap}

		units := core.NewUnitStore(0)
		an1, err := core.Analyze(v1, core.AnalysisConfig{Mode: mode, Units: units})
		if err != nil {
			cell.Err = err.Error()
			res.Cells = append(res.Cells, cell)
			continue
		}
		cell.Funcs = len(an1.FuncUnits)

		start := time.Now()
		cold, err := core.Rewrite(v2, opts)
		cell.Cold = time.Since(start)
		if err != nil {
			cell.Err = err.Error()
			res.Cells = append(res.Cells, cell)
			continue
		}

		start = time.Now()
		an2, err := core.Analyze(v2, core.AnalysisConfig{Mode: mode, Units: units})
		if err != nil {
			cell.Err = err.Error()
			res.Cells = append(res.Cells, cell)
			continue
		}
		delta, err := an2.Patch(opts)
		cell.Delta = time.Since(start)
		if err != nil {
			cell.Err = err.Error()
			res.Cells = append(res.Cells, cell)
			continue
		}
		cell.Recomputed = an2.Delta.Recomputed
		cell.Reused = an2.Delta.Reused
		cell.Identical = string(cold.Binary.Marshal()) == string(delta.Binary.Marshal())
		if !cell.Identical {
			cell.Err = "delta output differs from cold rewrite"
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Failures lists the cells that errored or diverged, for the CLI's
// graceful-failure report.
func (r *IncrementalResult) Failures() []string {
	var fails []string
	for _, c := range r.Cells {
		if c.Err != "" {
			fails = append(fails, fmt.Sprintf("incremental %s/%s: %s", c.Arch, c.Mode, c.Err))
		}
	}
	return fails
}

// Render formats the incremental-rewrite table.
func (r *IncrementalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incremental rewrite (v1 cold, v2 = %d mutated functions)\n", incrementalK)
	fmt.Fprintf(&b, "  %-4s %-9s %6s %8s %7s %10s %10s %8s %s\n",
		"arch", "mode", "funcs", "recomp", "reused", "cold", "delta", "speedup", "identical")
	for _, c := range r.Cells {
		if c.Err != "" {
			fmt.Fprintf(&b, "  %-4s %-9s FAILED: %s\n", c.Arch, c.Mode, c.Err)
			continue
		}
		speedup := "n/a"
		if c.Delta > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(c.Cold)/float64(c.Delta))
		}
		fmt.Fprintf(&b, "  %-4s %-9s %6d %8d %7d %10s %10s %8s %v\n",
			c.Arch, c.Mode, c.Funcs, c.Recomputed, c.Reused,
			c.Cold.Round(10*time.Microsecond), c.Delta.Round(10*time.Microsecond),
			speedup, c.Identical)
	}
	return b.String()
}
