package experiments

import (
	"strings"
	"sync/atomic"
	"testing"

	"icfgpatch/internal/arch"
)

// TestTable3ParallelMatchesSerial is the determinism gate for the
// parallel pipeline: the table rendered from a multi-worker sweep must
// be byte-identical to the serial runner's.
func TestTable3ParallelMatchesSerial(t *testing.T) {
	serial, err := Table3ForArch(arch.A64)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table3ForArchParallel(arch.A64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Errorf("parallel sweep diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.Render(), parallel.Render())
	}
	for i, ap := range serial.Approaches {
		pp := parallel.Approaches[i]
		if len(ap.Runs) != len(pp.Runs) {
			t.Fatalf("%s: run count %d vs %d", ap.Name, len(ap.Runs), len(pp.Runs))
		}
		for j := range ap.Runs {
			if ap.Runs[j].Bench != pp.Runs[j].Bench || ap.Runs[j].Pass != pp.Runs[j].Pass ||
				ap.Runs[j].Overhead != pp.Runs[j].Overhead {
				t.Errorf("%s/%s: run %d differs between serial and parallel",
					ap.Name, ap.Runs[j].Bench, j)
			}
		}
	}
}

// TestRunIndexedCoversAll checks the work distribution: every index is
// executed exactly once for serial, saturated, and oversubscribed job
// counts.
func TestRunIndexedCoversAll(t *testing.T) {
	for _, jobs := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]atomic.Int64
		runIndexed(n, jobs, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("jobs=%d: index %d executed %d times", jobs, i, got)
			}
		}
	}
}

// TestTable3RenderZeroPassNA pins the aggregation contract for an
// approach with zero passing runs: the undefined aggregates render as
// n/a, never as a measured 0.00%, and aggregation itself must not
// divide by zero or take a min over an empty set.
func TestTable3RenderZeroPassNA(t *testing.T) {
	runs := []Table3Run{
		{Bench: "600.perlbench_s", Pass: false, Reason: "rewrite failed: synthetic", Coverage: -1},
		{Bench: "602.gcc_s", Pass: false, Reason: "rewrite failed: synthetic", Coverage: -1},
	}
	row := table3Aggregate("broken", runs)
	if row.Pass != 0 || row.Total != 2 {
		t.Fatalf("pass/total = %d/%d, want 0/2", row.Pass, row.Total)
	}
	if row.TimeSamples != 0 || row.CovSamples != 0 {
		t.Fatalf("samples = %d/%d, want 0/0", row.TimeSamples, row.CovSamples)
	}
	res := &Table3Result{Arch: arch.X64, Approaches: []Table3Approach{row}}
	out := res.Render()
	if !strings.Contains(out, "n/a") {
		t.Errorf("zero-passing approach did not render n/a:\n%s", out)
	}
	if strings.Contains(out, "0.00%") {
		t.Errorf("zero-passing approach rendered a fake measured 0.00%%:\n%s", out)
	}
	if !strings.Contains(out, "0/2") {
		t.Errorf("pass column missing 0/2:\n%s", out)
	}
}

// TestTable3FailuresListsFailedCells checks the exit-status feed: every
// failed cell appears as an arch/approach/bench line.
func TestTable3FailuresListsFailedCells(t *testing.T) {
	res := &Table3Result{Arch: arch.PPC, Approaches: []Table3Approach{
		{Name: "SRBI", Runs: []Table3Run{
			{Bench: "620.omnetpp_s", Pass: false, Reason: "output diverged"},
			{Bench: "625.x264_s", Pass: true},
		}},
	}}
	got := res.Failures()
	if len(got) != 1 {
		t.Fatalf("Failures() = %v, want one entry", got)
	}
	if want := "ppc/SRBI/620.omnetpp_s: output diverged"; got[0] != want {
		t.Errorf("Failures()[0] = %q, want %q", got[0], want)
	}
}
