package experiments

import (
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/workload"
)

// ProfileGuidedRun is one benchmark's guided-vs-unguided outcome: the
// binary is run once to capture block heat, rewritten twice with the
// same counter request (with and without the captured profile), and
// both rewrites re-run against the original output and cycle count.
type ProfileGuidedRun struct {
	Bench  string
	Pass   bool
	Reason string // failure reason when !Pass
	// HotFuncs/VariantFuncs are the guided rewrite's planning stats.
	HotFuncs     int
	VariantFuncs int
	// Unguided/Guided are cycle overheads vs. the original binary.
	Unguided float64
	Guided   float64
}

// ProfileGuidedResult is one architecture's with-vs-without-profile
// overhead comparison over the SPEC-like suite.
type ProfileGuidedResult struct {
	Arch arch.Arch
	Runs []ProfileGuidedRun
	// Aggregates over passing runs. Ratio is mean guided overhead over
	// mean unguided overhead — the number the perf trajectory gates on
	// (below 1 means guidance pays for its dispatch stubs).
	UnguidedMean, GuidedMean float64
	Ratio                    float64
	Samples                  int
	Pass, Total              int
}

// blockCounter is the profile-guided measurement request: a counter at
// every block entry, the payload the fast variants elide off the hot
// path.
func blockCounter() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter}
}

// runHeat executes a binary with block-heat capture on, returning the
// result (Heat keyed by link-time block address) alongside any fault.
func runHeat(p *workload.Program) (emu.Result, error) {
	lib, err := rtlib.Preload(p.Binary)
	if err != nil {
		return emu.Result{}, err
	}
	m, err := emu.Load(p.Binary, emu.Options{Runtime: lib, MaxInstrs: 80_000_000, CaptureHeat: true})
	if err != nil {
		return emu.Result{}, err
	}
	return m.Run()
}

// ProfileGuided runs the suite through the capture → rewrite → re-run
// loop on one architecture: the heat of a single profiling run guides
// the second rewrite, and both rewrites are measured against the
// original. The suite's benchmarks concentrate their cycles in loop
// bodies, so the captured profiles are naturally hot-skewed — the
// regime the multi-version rewrite is built for.
func ProfileGuided(a arch.Arch) (*ProfileGuidedResult, error) {
	suite, err := workload.SPECSuiteCached(a, false)
	if err != nil {
		return nil, err
	}
	gap := uint64(0)
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	res := &ProfileGuidedResult{Arch: a}
	for _, p := range suite {
		res.Runs = append(res.Runs, profileGuidedOne(p, gap))
	}
	var ug, gd []float64
	for _, r := range res.Runs {
		res.Total++
		if !r.Pass {
			continue
		}
		res.Pass++
		ug = append(ug, r.Unguided)
		gd = append(gd, r.Guided)
	}
	res.Samples = len(ug)
	_, res.UnguidedMean = aggregate(ug)
	_, res.GuidedMean = aggregate(gd)
	if res.UnguidedMean > 0 {
		res.Ratio = res.GuidedMean / res.UnguidedMean
	}
	return res, nil
}

// profileGuidedOne measures one benchmark. Any panic fails the cell
// with a reason instead of killing the sweep, matching the package's
// graceful-failure contract.
func profileGuidedOne(p *workload.Program, gap uint64) (out ProfileGuidedRun) {
	out = ProfileGuidedRun{Bench: p.Profile.Name}
	defer func() {
		if r := recover(); r != nil {
			out.Pass = false
			out.Reason = fmt.Sprintf("panic during rewrite: %v", r)
		}
	}()
	orig, err := runHeat(p)
	if err != nil {
		out.Reason = "profiling run failed: " + err.Error()
		return out
	}
	an, err := core.Analyze(p.Binary, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		out.Reason = "analysis failed: " + err.Error()
		return out
	}
	prof := an.ProfileFromHeat(p.Profile.Name, orig.Heat)

	opts := core.Options{Mode: core.ModeJT, Request: blockCounter(), InstrGap: gap}
	unguided, err := an.Patch(opts)
	if err != nil {
		out.Reason = "unguided rewrite failed: " + err.Error()
		return out
	}
	opts.Profile = prof
	guided, err := an.Patch(opts)
	if err != nil {
		out.Reason = "guided rewrite failed: " + err.Error()
		return out
	}
	out.HotFuncs = guided.Stats.HotFuncs
	out.VariantFuncs = guided.Stats.VariantFuncs

	ugRes, err := run(unguided.Binary, runOpts{})
	if err != nil {
		out.Reason = "unguided binary faulted: " + err.Error()
		return out
	}
	gdRes, err := run(guided.Binary, runOpts{})
	if err != nil {
		out.Reason = "guided binary faulted: " + err.Error()
		return out
	}
	var origRes emu.Result = orig
	if !sameOutput(ugRes, origRes) {
		out.Reason = "unguided output diverged"
		return out
	}
	if !sameOutput(gdRes, origRes) {
		out.Reason = "guided output diverged"
		return out
	}
	out.Pass = true
	out.Unguided = overhead(ugRes.Cycles, orig.Cycles)
	out.Guided = overhead(gdRes.Cycles, orig.Cycles)
	return out
}

// Render formats the per-benchmark comparison and the aggregate row.
func (r *ProfileGuidedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Profile-guided counter instrumentation (%s)\n", r.Arch)
	fmt.Fprintf(&b, "%-16s %10s %10s %7s %9s\n", "", "unguided", "guided", "hot", "variants")
	for _, run := range r.Runs {
		if !run.Pass {
			fmt.Fprintf(&b, "%-16s FAILED: %s\n", run.Bench, run.Reason)
			continue
		}
		fmt.Fprintf(&b, "%-16s %10s %10s %7d %9d\n",
			run.Bench, pct(run.Unguided), pct(run.Guided), run.HotFuncs, run.VariantFuncs)
	}
	fmt.Fprintf(&b, "%-16s %10s %10s   ratio %.3f   pass %d/%d\n",
		"mean", pctN(r.UnguidedMean, r.Samples), pctN(r.GuidedMean, r.Samples),
		r.Ratio, r.Pass, r.Total)
	return b.String()
}

// Failures lists every failed benchmark as a "bench: reason" line.
func (r *ProfileGuidedResult) Failures() []string {
	var out []string
	for _, run := range r.Runs {
		if !run.Pass {
			out = append(out, fmt.Sprintf("%s/profile/%s: %s", r.Arch, run.Bench, run.Reason))
		}
	}
	return out
}
