package experiments

import (
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/workload"
)

// Table1Render formats the paper's Table 1.
func Table1Render() string {
	var b strings.Builder
	b.WriteString("Table 1 — comparison of binary rewriting approaches\n")
	fmt.Fprintf(&b, "%-12s | %-9s | %-9s | %-19s | %s\n",
		"Approach", "Rewrites", "Reloc", "Unmodified flow", "Stack unwinding")
	for _, r := range baseline.Table1() {
		fmt.Fprintf(&b, "%-12s | %-9s | %-9s | %-19s | %s\n",
			r.Approach, r.Rewrites, r.Relocation, r.Unmodified, r.Unwinding)
	}
	return b.String()
}

// Table2Render formats the paper's Table 2 (trampoline designs).
func Table2Render() string {
	var b strings.Builder
	b.WriteString("Table 2 — trampoline instruction sequences\n")
	fmt.Fprintf(&b, "%-5s | %-55s | %-6s | %s\n", "Arch", "Instructions", "Range", "Len")
	for _, r := range arch.Table2() {
		fmt.Fprintf(&b, "%-5s | %-55s | %-6s | %s\n", r.Arch, r.Sequence, r.Range, r.Len)
	}
	return b.String()
}

// Figure1Render prints the section arrangement of a real rewritten
// binary, the layout of Figure 1.
func Figure1Render() (string, error) {
	p, err := workload.Generate(arch.X64, true, workload.Profile{
		Name: "figure1", Seed: 1, Lang: "c++", Funcs: 12,
		SwitchFrac: 0.4, Exceptions: true, Iters: 4,
	})
	if err != nil {
		return "", err
	}
	rw, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 1 — rewritten binary layout (jt mode, x64 PIE)\n")
	for _, s := range rw.Binary.Sections {
		tag := ""
		switch s.Name {
		case bin.SecText:
			tag = "trampolines over original code"
		case bin.SecInstr:
			tag = "relocated code + instrumentation"
		case bin.SecRAMap:
			tag = "return address map (Section 6)"
		case bin.SecTrampMap:
			tag = "trap trampoline map (runtime library)"
		case bin.SecJTClone:
			tag = "cloned jump tables (Section 5.1)"
		case bin.SecEhFrame:
			tag = "unmodified unwind tables"
		}
		if strings.HasPrefix(s.Name, bin.OldPrefix) {
			tag = "retired; reused as trampoline scratch space"
		}
		fmt.Fprintf(&b, "  %-16s %#10x..%#10x (%6d bytes)  %s\n", s.Name, s.Addr, s.End(), s.Size(), tag)
	}
	return b.String(), nil
}

// Figure2Result demonstrates the three failure modes of Figure 2.
type Figure2Result struct {
	// Analysis failure: graceful skip, lower coverage, correct output.
	AnalysisCoverage float64
	AnalysisCorrect  bool
	// Over-approximation: extra table entries cloned, correct output.
	OverApproxExtraEntries int
	OverApproxCorrect      bool
	// Under-approximation (forced): wrong rewriting, caught by the
	// verification fill as an illegal-instruction fault.
	UnderApproxDetected bool
	UnderApproxFault    string
}

// Figure2 runs the failure mode analysis end to end.
func Figure2() (*Figure2Result, error) {
	res := &Figure2Result{}

	// (1) Analysis reporting failure -> lower coverage, other functions
	// unaffected.
	p, err := workload.Generate(arch.X64, false, workload.Profile{
		Name: "fig2-analysis", Seed: 21, Lang: "c", Funcs: 20,
		SwitchFrac: 0.5, OpaqueFrac: 0.5, Iters: 8,
	})
	if err != nil {
		return nil, err
	}
	orig, err := run(p.Binary, runOpts{})
	if err != nil {
		return nil, err
	}
	rw, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
	if err != nil {
		return nil, err
	}
	res.AnalysisCoverage = rw.Stats.Coverage()
	if got, err := run(rw.Binary, runOpts{}); err == nil && sameOutput(got, orig) {
		res.AnalysisCorrect = true
	}

	// (2) Over-approximation: spilled bounds force Assumption-2
	// extension; the cloned tables carry extra entries, the program
	// still behaves (cloning tolerates over-approximation).
	p2, err := workload.Generate(arch.X64, false, workload.Profile{
		Name: "fig2-over", Seed: 22, Lang: "c", Funcs: 16,
		SwitchFrac: 0.6, SpillFrac: 1.0, Iters: 8,
	})
	if err != nil {
		return nil, err
	}
	orig2, err := run(p2.Binary, runOpts{})
	if err != nil {
		return nil, err
	}
	rw2, err := core.Rewrite(p2.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
	if err != nil {
		return nil, err
	}
	truthEntries := 0
	for _, tbl := range p2.Debug.Tables {
		truthEntries += tbl.N
	}
	cloneSec := rw2.Binary.Section(bin.SecJTClone)
	if cloneSec != nil {
		res.OverApproxExtraEntries = int(cloneSec.Size())/4 - truthEntries
	}
	if got, err := run(rw2.Binary, runOpts{}); err == nil && sameOutput(got, orig2) {
		res.OverApproxCorrect = true
	}

	// (3) Under-approximation, forced: an unresolvable intra-procedural
	// indirect jump in a gap-free function is (wrongly) classified as a
	// tail call; its real targets stay in overwritten original code and
	// the verification fill catches the escape.
	img, err := underApproxBinary()
	if err != nil {
		return nil, err
	}
	rw3, err := core.Rewrite(img, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
	if err != nil {
		return nil, err
	}
	if _, err := run(rw3.Binary, runOpts{}); err != nil {
		res.UnderApproxDetected = emu.IsFault(err, emu.FaultIllegal)
		res.UnderApproxFault = err.Error()
	}
	return res, nil
}

// underApproxBinary builds the trap for the tail-call heuristic: an
// opaque-base switch whose case blocks are all reachable from the
// default path too, so the unexplored-gap check passes and the indirect
// jump is misclassified as a tail call.
func underApproxBinary() (*bin.Binary, error) {
	b := asm.New(arch.X64, false)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 1)
	c0 := f.NewLabel()
	def := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, []asm.Label{c0, c0}, def, asm.SwitchOpts{OpaqueBase: true})
	f.Bind(def)
	f.Bind(c0)
	f.Print(arch.R8)
	f.Halt()
	b.SetEntry("main")
	img, _, err := b.Link()
	return img, err
}

// Render formats the failure mode demonstration.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2 — failure mode analysis\n")
	fmt.Fprintf(&b, "  analysis failure    -> coverage %s, other functions correct: %v\n",
		pct(r.AnalysisCoverage), r.AnalysisCorrect)
	fmt.Fprintf(&b, "  over-approximation  -> %d extra cloned entries, still correct: %v\n",
		r.OverApproxExtraEntries, r.OverApproxCorrect)
	fmt.Fprintf(&b, "  under-approximation -> wrong rewriting detected by verification: %v (%s)\n",
		r.UnderApproxDetected, r.UnderApproxFault)
	return b.String()
}
