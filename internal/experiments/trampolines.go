package experiments

import (
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// TrampolineDistribution aggregates, per architecture and mode, how many
// trampolines of each class (Table 2 forms plus multi-hop and trap) the
// rewriter installed across the SPEC-like suite — the mechanism behind
// every overhead number in Table 3.
type TrampolineDistribution struct {
	Arch arch.Arch
	Gap  uint64
	// Rows maps mode name to class counts.
	Rows map[string]map[arch.TrampolineClass]int
}

// Trampolines runs the distribution study for one architecture, with
// the same PPC .instr gap as Table 3.
func Trampolines(a arch.Arch) (*TrampolineDistribution, error) {
	suite, err := workload.SPECSuiteCached(a, false)
	if err != nil {
		return nil, err
	}
	gap := uint64(0)
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	res := &TrampolineDistribution{Arch: a, Gap: gap, Rows: map[string]map[arch.TrampolineClass]int{}}
	for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
		counts := map[arch.TrampolineClass]int{}
		for _, p := range suite {
			rw, err := core.Rewrite(p.Binary, core.Options{Mode: mode, Request: blockEmpty(), Verify: true, InstrGap: gap})
			if err != nil {
				continue
			}
			for class, n := range rw.Stats.Trampolines {
				counts[class] += n
			}
		}
		res.Rows[mode.String()] = counts
	}
	return res, nil
}

// Render formats the distribution.
func (t *TrampolineDistribution) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trampoline class distribution (%s, gap %d MiB)\n", t.Arch, t.Gap>>20)
	classes := []arch.TrampolineClass{arch.TrampShort, arch.TrampLong, arch.TrampLongSpill, arch.TrampMulti, arch.TrampTrap}
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range classes {
		fmt.Fprintf(&b, " %10s", c)
	}
	b.WriteString("\n")
	for _, mode := range []string{"dir", "jt", "func-ptr"} {
		fmt.Fprintf(&b, "%-10s", mode)
		for _, c := range classes {
			fmt.Fprintf(&b, " %10d", t.Rows[mode][c])
		}
		b.WriteString("\n")
	}
	return b.String()
}
