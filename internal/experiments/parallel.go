package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"icfgpatch/internal/arch"
)

// The parallel evaluation pipeline: the paper's Table 3 sweeps 19
// benchmarks × up to 5 approaches × 3 architectures, and every
// (benchmark, approach, arch) cell is independent — the rewriter never
// mutates its input binary and the emulator owns its own memory — so the
// cells run concurrently on a bounded worker pool. Determinism is
// non-negotiable: workers write results into pre-sized index slots
// (never append), so the aggregated tables are byte-identical to the
// serial runner's regardless of scheduling.

// DefaultJobs is the worker count used when a caller passes jobs <= 0:
// one worker per CPU.
func DefaultJobs() int { return runtime.NumCPU() }

// Table3ForArchParallel runs the Table 3 sweep for one architecture on
// up to jobs concurrent workers (jobs <= 0 selects DefaultJobs). The
// output is byte-identical to Table3ForArch's.
func Table3ForArchParallel(a arch.Arch, jobs int) (*Table3Result, error) {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	return table3Sweep(a, jobs)
}

// runIndexed executes fn(i) for every i in [0, n) on up to jobs
// concurrent workers. jobs <= 1 runs inline — the serial baseline is the
// same code path minus the goroutines. fn must write its result into
// caller-provided indexed storage; runIndexed imposes no result
// ordering of its own.
func runIndexed(n, jobs int, fn func(int)) {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
