package experiments

import (
	"errors"
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

// ppcInstrGap forces .instr beyond the ±32MB ppc64le branch range, the
// situation real HPC binaries with large code and data sections put the
// rewriter in (Section 7): it makes long/multi-hop/trap trampoline
// selection matter on PPC while X64's ±2GB branch and A64's ±128MB
// branch still reach.
const ppcInstrGap = 40 << 20

// Table3Run is one (approach, benchmark) outcome.
type Table3Run struct {
	Bench    string
	Pass     bool
	Reason   string  // failure reason when !Pass
	Overhead float64 // cycle overhead vs. the original binary
	Coverage float64
	SizeInc  float64
	Traps    int
}

// Table3Approach aggregates one approach row of Table 3.
type Table3Approach struct {
	Name string
	Runs []Table3Run
	// Aggregates over the benchmarks (overhead/size over passing runs;
	// coverage over all rewrites that completed).
	TimeMax, TimeMean float64
	CovMin, CovMean   float64
	SizeMax, SizeMean float64
	Pass, Total       int
}

// Table3Result is one architecture's Table 3.
type Table3Result struct {
	Arch       arch.Arch
	Approaches []Table3Approach
}

// blockEmpty is the paper's measurement request: every basic block,
// empty payload, verification fill.
func blockEmpty() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}
}

// Table3ForArch runs the SPEC-like suite through SRBI and the three
// incremental modes (plus IR lowering on x86-64, where the paper managed
// to build Egalito) and aggregates the paper's Table 3 columns.
func Table3ForArch(a arch.Arch) (*Table3Result, error) {
	suite, err := workload.SPECSuite(a, false)
	if err != nil {
		return nil, err
	}
	var pieSuite []*workload.Program
	if a == arch.X64 {
		// IR lowering requires PIE; the paper compiled the benchmarks
		// with -pie for Egalito.
		pieSuite, err = workload.SPECSuite(a, true)
		if err != nil {
			return nil, err
		}
	}
	gap := uint64(0)
	if a == arch.PPC {
		gap = ppcInstrGap
	}

	res := &Table3Result{Arch: a}
	type rewriteFn func(p *workload.Program) (*core.Result, error)
	approaches := []struct {
		name string
		pie  bool
		fn   rewriteFn
	}{
		{"SRBI", false, func(p *workload.Program) (*core.Result, error) {
			return baseline.SRBI(p.Binary, baseline.SRBIOptions{Request: blockEmpty(), Verify: true, InstrGap: gap})
		}},
		{"dir", false, func(p *workload.Program) (*core.Result, error) {
			return core.Rewrite(p.Binary, core.Options{Mode: core.ModeDir, Request: blockEmpty(), Verify: true, InstrGap: gap})
		}},
		{"jt", false, func(p *workload.Program) (*core.Result, error) {
			return core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true, InstrGap: gap})
		}},
		{"func-ptr", false, func(p *workload.Program) (*core.Result, error) {
			return core.Rewrite(p.Binary, core.Options{Mode: core.ModeFuncPtr, Request: blockEmpty(), Verify: true, InstrGap: gap})
		}},
	}
	if a == arch.X64 {
		approaches = append(approaches, struct {
			name string
			pie  bool
			fn   rewriteFn
		}{"IR lowering", true, func(p *workload.Program) (*core.Result, error) {
			return baseline.IRLower(p.Binary, baseline.IRLowerOptions{Request: blockEmpty()})
		}})
	}

	for _, ap := range approaches {
		progs := suite
		if ap.pie {
			progs = pieSuite
		}
		row := Table3Approach{Name: ap.name, Total: len(progs)}
		var ovh, cov, siz []float64
		for _, p := range progs {
			r := runOne(p, ap.fn)
			row.Runs = append(row.Runs, r)
			if r.Coverage >= 0 {
				cov = append(cov, r.Coverage)
			}
			if r.Pass {
				row.Pass++
				ovh = append(ovh, r.Overhead)
				siz = append(siz, r.SizeInc)
			}
		}
		row.TimeMax, row.TimeMean = aggregate(ovh)
		row.SizeMax, row.SizeMean = aggregate(siz)
		_, row.CovMean = aggregate(cov)
		row.CovMin = minOf(cov)
		res.Approaches = append(res.Approaches, row)
	}
	return res, nil
}

// runOne measures one (approach, benchmark) cell.
func runOne(p *workload.Program, rewrite func(*workload.Program) (*core.Result, error)) Table3Run {
	out := Table3Run{Bench: p.Profile.Name, Coverage: -1}
	orig, err := run(p.Binary, runOpts{})
	if err != nil {
		out.Reason = "original run failed: " + err.Error()
		return out
	}
	rw, err := rewrite(p)
	if err != nil {
		out.Reason = "rewrite failed: " + err.Error()
		if errors.Is(err, core.ErrImpreciseFuncPtrs) {
			out.Reason = "func-ptr analysis not precise: " + err.Error()
		}
		return out
	}
	out.Coverage = rw.Stats.Coverage()
	out.SizeInc = rw.Stats.SizeIncrease()
	out.Traps = rw.Stats.TrapCount()
	got, err := run(rw.Binary, runOpts{})
	if err != nil {
		out.Reason = "rewritten binary faulted: " + err.Error()
		return out
	}
	var origRes emu.Result = orig
	if !sameOutput(got, origRes) {
		out.Reason = "output diverged"
		return out
	}
	out.Pass = true
	out.Overhead = overhead(got.Cycles, orig.Cycles)
	return out
}

// Render formats the table the way the paper prints it.
func (t *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — block-level empty instrumentation (%s)\n", t.Arch)
	fmt.Fprintf(&b, "%-12s %9s %9s | %8s %8s | %9s %9s | %s\n",
		"", "time max", "time mean", "cov min", "cov mean", "size max", "size mean", "pass")
	for _, ap := range t.Approaches {
		fmt.Fprintf(&b, "%-12s %9s %9s | %8s %8s | %9s %9s | %d/%d\n",
			ap.Name, pct(ap.TimeMax), pct(ap.TimeMean),
			pct(ap.CovMin), pct(ap.CovMean),
			pct(ap.SizeMax), pct(ap.SizeMean), ap.Pass, ap.Total)
	}
	for _, ap := range t.Approaches {
		for _, r := range ap.Runs {
			if !r.Pass {
				fmt.Fprintf(&b, "  %s: %s FAILED: %s\n", ap.Name, r.Bench, r.Reason)
			}
		}
	}
	return b.String()
}

// ensure bin import is used (section constants appear in other files).
var _ = bin.SecInstr
