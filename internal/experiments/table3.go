package experiments

import (
	"errors"
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/workload"
)

// ppcInstrGap forces .instr beyond the ±32MB ppc64le branch range, the
// situation real HPC binaries with large code and data sections put the
// rewriter in (Section 7): it makes long/multi-hop/trap trampoline
// selection matter on PPC while X64's ±2GB branch and A64's ±128MB
// branch still reach.
const ppcInstrGap = 40 << 20

// Table3Run is one (approach, benchmark) outcome.
type Table3Run struct {
	Bench    string
	Pass     bool
	Reason   string  // failure reason when !Pass
	Overhead float64 // cycle overhead vs. the original binary
	Coverage float64
	SizeInc  float64
	Traps    int
	// Metrics are the rewrite's per-pass metrics (zero when the rewrite
	// itself failed before producing a result).
	Metrics core.Metrics
}

// Table3Approach aggregates one approach row of Table 3.
type Table3Approach struct {
	Name string
	Runs []Table3Run
	// Aggregates over the benchmarks (overhead/size over passing runs;
	// coverage over all rewrites that completed). The *Samples counts
	// record how many benchmarks each aggregate is over: an aggregate
	// with zero samples is undefined and renders as n/a, never as 0.00%.
	TimeMax, TimeMean float64
	CovMin, CovMean   float64
	SizeMax, SizeMean float64
	TimeSamples       int
	CovSamples        int
	Pass, Total       int
	// Metrics sums the per-pass rewrite metrics over all completed cells.
	Metrics core.Metrics
}

// Table3Result is one architecture's Table 3.
type Table3Result struct {
	Arch       arch.Arch
	Approaches []Table3Approach
}

// blockEmpty is the paper's measurement request: every basic block,
// empty payload, verification fill.
func blockEmpty() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}
}

// rewriteFn rewrites one benchmark program under one approach. tr is
// the cell's trace span (nil unless -trace); approaches built on
// core.Rewrite thread it through Options, baselines may ignore it.
type rewriteFn func(p *workload.Program, tr *obs.Span) (*core.Result, error)

// table3Spec is one approach row of the sweep: the approaches are fixed
// up front so the serial and parallel runners execute identical cells.
type table3Spec struct {
	name string
	pie  bool
	fn   rewriteFn
}

// table3Specs lists the sweep's approaches for one architecture: SRBI
// and the three incremental modes, plus IR lowering on x86-64 (where the
// paper managed to build Egalito).
func table3Specs(a arch.Arch) []table3Spec {
	gap := uint64(0)
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	specs := []table3Spec{
		{"SRBI", false, func(p *workload.Program, _ *obs.Span) (*core.Result, error) {
			return baseline.SRBI(p.Binary, baseline.SRBIOptions{Request: blockEmpty(), Verify: true, InstrGap: gap})
		}},
		{"dir", false, func(p *workload.Program, tr *obs.Span) (*core.Result, error) {
			return core.Rewrite(p.Binary, core.Options{Mode: core.ModeDir, Request: blockEmpty(), Verify: true, InstrGap: gap, Trace: tr})
		}},
		{"jt", false, func(p *workload.Program, tr *obs.Span) (*core.Result, error) {
			return core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true, InstrGap: gap, Trace: tr})
		}},
		{"func-ptr", false, func(p *workload.Program, tr *obs.Span) (*core.Result, error) {
			return core.Rewrite(p.Binary, core.Options{Mode: core.ModeFuncPtr, Request: blockEmpty(), Verify: true, InstrGap: gap, Trace: tr})
		}},
	}
	if a == arch.X64 {
		// IR lowering requires PIE; the paper compiled the benchmarks
		// with -pie for Egalito.
		specs = append(specs, table3Spec{"IR lowering", true, func(p *workload.Program, _ *obs.Span) (*core.Result, error) {
			return baseline.IRLower(p.Binary, baseline.IRLowerOptions{Request: blockEmpty()})
		}})
	}
	return specs
}

// Table3ForArch runs the SPEC-like suite through every approach serially
// and aggregates the paper's Table 3 columns.
func Table3ForArch(a arch.Arch) (*Table3Result, error) {
	return table3Sweep(a, 1)
}

// table3Sweep executes the (approach, benchmark) cells on up to jobs
// workers. Every cell is independent: the suite binaries are shared
// read-only (the rewriter clones before mutating, the emulator copies
// section data into its own pages) and each result is written to its own
// index, so the output is byte-identical regardless of job count or
// scheduling order.
func table3Sweep(a arch.Arch, jobs int) (*Table3Result, error) {
	suite, err := workload.SPECSuiteCached(a, false)
	if err != nil {
		return nil, err
	}
	var pieSuite []*workload.Program
	specs := table3Specs(a)
	for _, sp := range specs {
		if sp.pie {
			pieSuite, err = workload.SPECSuiteCached(a, true)
			if err != nil {
				return nil, err
			}
			break
		}
	}
	progsFor := func(sp table3Spec) []*workload.Program {
		if sp.pie {
			return pieSuite
		}
		return suite
	}

	type cell struct{ spec, bench int }
	var cells []cell
	for si, sp := range specs {
		for bi := range progsFor(sp) {
			cells = append(cells, cell{si, bi})
		}
	}
	runs := make([]Table3Run, len(cells))
	runIndexed(len(cells), jobs, func(i int) {
		c := cells[i]
		runs[i] = runOne(specs[c.spec].name, progsFor(specs[c.spec])[c.bench], specs[c.spec].fn)
	})

	res := &Table3Result{Arch: a}
	k := 0
	for _, sp := range specs {
		n := len(progsFor(sp))
		res.Approaches = append(res.Approaches, table3Aggregate(sp.name, runs[k:k+n]))
		k += n
	}
	return res, nil
}

// table3Aggregate folds one approach's runs into the table row. An
// approach with zero passing runs keeps zero samples and renders n/a —
// aggregating over an empty set must never print as a measured 0.00%.
func table3Aggregate(name string, runs []Table3Run) Table3Approach {
	row := Table3Approach{Name: name, Total: len(runs), Runs: append([]Table3Run(nil), runs...)}
	var ovh, cov, siz []float64
	for _, r := range runs {
		if r.Coverage >= 0 {
			cov = append(cov, r.Coverage)
		}
		if r.Pass {
			row.Pass++
			ovh = append(ovh, r.Overhead)
			siz = append(siz, r.SizeInc)
		}
		row.Metrics.Add(r.Metrics)
	}
	row.TimeSamples = len(ovh)
	row.CovSamples = len(cov)
	row.TimeMax, row.TimeMean = aggregate(ovh)
	row.SizeMax, row.SizeMean = aggregate(siz)
	_, row.CovMean = aggregate(cov)
	row.CovMin = minOf(cov)
	return row
}

// runOne measures one (approach, benchmark) cell. A panic anywhere in
// the rewrite or measurement fails this cell with a reported reason
// instead of killing the whole sweep — the per-run half of the paper's
// graceful-failure contract (§4.3).
func runOne(label string, p *workload.Program, rewrite rewriteFn) (out Table3Run) {
	out = Table3Run{Bench: p.Profile.Name, Coverage: -1}
	defer func() {
		if r := recover(); r != nil {
			out.Pass = false
			out.Reason = fmt.Sprintf("panic during rewrite: %v", r)
		}
	}()
	orig, err := run(p.Binary, runOpts{})
	if err != nil {
		out.Reason = "original run failed: " + err.Error()
		return out
	}
	sp := traceRun(label, p.Profile.Name)
	rw, err := rewrite(p, sp)
	emitTrace(sp)
	if err != nil {
		out.Reason = "rewrite failed: " + err.Error()
		if errors.Is(err, core.ErrImpreciseFuncPtrs) {
			out.Reason = "func-ptr analysis not precise: " + err.Error()
		}
		return out
	}
	out.Coverage = rw.Stats.Coverage()
	out.SizeInc = rw.Stats.SizeIncrease()
	out.Traps = rw.Stats.TrapCount()
	out.Metrics = rw.Metrics
	got, err := run(rw.Binary, runOpts{})
	if err != nil {
		out.Reason = "rewritten binary faulted: " + err.Error()
		return out
	}
	var origRes emu.Result = orig
	if !sameOutput(got, origRes) {
		out.Reason = "output diverged"
		return out
	}
	out.Pass = true
	out.Overhead = overhead(got.Cycles, orig.Cycles)
	return out
}

// Render formats the table the way the paper prints it.
func (t *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — block-level empty instrumentation (%s)\n", t.Arch)
	fmt.Fprintf(&b, "%-12s %9s %9s | %8s %8s | %9s %9s | %s\n",
		"", "time max", "time mean", "cov min", "cov mean", "size max", "size mean", "pass")
	for _, ap := range t.Approaches {
		fmt.Fprintf(&b, "%-12s %9s %9s | %8s %8s | %9s %9s | %d/%d\n",
			ap.Name, pctN(ap.TimeMax, ap.TimeSamples), pctN(ap.TimeMean, ap.TimeSamples),
			pctN(ap.CovMin, ap.CovSamples), pctN(ap.CovMean, ap.CovSamples),
			pctN(ap.SizeMax, ap.TimeSamples), pctN(ap.SizeMean, ap.TimeSamples), ap.Pass, ap.Total)
	}
	for _, ap := range t.Approaches {
		for _, r := range ap.Runs {
			if !r.Pass {
				fmt.Fprintf(&b, "  %s: %s FAILED: %s\n", ap.Name, r.Bench, r.Reason)
			}
		}
	}
	return b.String()
}

// MetricsRender formats the aggregated per-pass rewrite metrics of the
// sweep. The stage timings are wall-clock and therefore excluded from
// Render's deterministic table output.
func (t *Table3Result) MetricsRender() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline metrics (%s)\n", t.Arch)
	for _, ap := range t.Approaches {
		fmt.Fprintf(&b, "  %-12s %s\n", ap.Name,
			strings.ReplaceAll(ap.Metrics.Render(), "\n", "\n               "))
	}
	return b.String()
}

// Failures lists every failed (approach, benchmark) cell as a
// "approach/bench: reason" line, for callers that must signal failures
// through the process exit status rather than only in the table.
func (t *Table3Result) Failures() []string {
	var out []string
	for _, ap := range t.Approaches {
		for _, r := range ap.Runs {
			if !r.Pass {
				out = append(out, fmt.Sprintf("%s/%s/%s: %s", t.Arch, ap.Name, r.Bench, r.Reason))
			}
		}
	}
	return out
}

// ensure bin import is used (section constants appear in other files).
var _ = bin.SecInstr
