// Package experiments reproduces the paper's evaluation: Table 1
// (approach comparison), Table 2 (trampoline designs), Figure 1 (binary
// layout), Figure 2 (failure modes), Table 3 (SPEC CPU 2017 block-level
// empty instrumentation), the Firefox libxul.so and Docker experiments
// (Section 8.2), the BOLT comparison (Section 8.3), and the Diogenes
// case study (Section 9). Absolute numbers come from the deterministic
// emulator's cycle model; the paper's qualitative shape — who wins, by
// roughly what factor, where things fail — is asserted by the package
// tests and recorded against the paper's numbers in EXPERIMENTS.md.
package experiments

import (
	"bytes"
	"fmt"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/rtlib"
)

// runOpts carries per-run execution parameters.
type runOpts struct {
	arg      uint64
	loadBase uint64
	maxInstr uint64
	// enforceCET faults any indirect transfer that lands off an
	// arch.Mark (the landing-pad experiments run CFI builds this way, so
	// a pass certifies marker preservation as well as output equality).
	enforceCET bool
}

// run executes a binary with the runtime library preloaded, returning
// the result and any fault.
func run(img *bin.Binary, o runOpts) (emu.Result, error) {
	lib, err := rtlib.Preload(img)
	if err != nil {
		return emu.Result{}, err
	}
	m, err := emu.Load(img, emu.Options{
		Runtime:    lib,
		Arg:        o.arg,
		LoadBase:   o.loadBase,
		EnforceCET: o.enforceCET,
		MaxInstrs: func() uint64 {
			if o.maxInstr != 0 {
				return o.maxInstr
			}
			return 80_000_000
		}(),
	})
	if err != nil {
		return emu.Result{}, err
	}
	return m.Run()
}

// overhead computes the relative cycle overhead of got against base.
func overhead(got, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return float64(got)/float64(base) - 1
}

// sameOutput compares program outputs byte for byte.
func sameOutput(a, b emu.Result) bool { return bytes.Equal(a.Output, b.Output) }

// aggregate computes max and mean of a float slice.
func aggregate(vals []float64) (max, mean float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	max = vals[0]
	var sum float64
	for _, v := range vals {
		if v > max {
			max = v
		}
		sum += v
	}
	return max, sum / float64(len(vals))
}

// minOf returns the minimum of a float slice (0 for empty; callers that
// render it must treat an empty sample set as n/a, not as a measured 0).
func minOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	m := vals[0]
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}

// pct renders a ratio as a percentage string.
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// pctN renders a ratio aggregated over n samples; with no samples the
// aggregate is undefined and renders as n/a (an approach with zero
// passing runs must not report a fake 0.00%).
func pctN(v float64, n int) string {
	if n == 0 {
		return "n/a"
	}
	return pct(v)
}
