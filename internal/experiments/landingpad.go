package experiments

import (
	"errors"
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// LandingPadRow is one (workload, build) cell of the evidence-layer
// study: the same program rewritten in func-ptr mode with the evidence
// layer engaged and on the conservative (NoEvidence) path, against the
// build's own original run.
type LandingPadRow struct {
	Bench string
	CFI   bool
	Pass  bool
	// Reason explains a failed cell.
	Reason string
	// Evidence/Conservative record the func-ptr rewrite outcome on each
	// path: accepted, or the refusal reason.
	Evidence     string
	Conservative string
	// Marks/Skips/MarkBounded are the accepted evidence rewrite's
	// attribution stats (zero when refused).
	Marks, Skips, MarkBounded int
	// Coverage/Overhead measure the accepted evidence rewrite: function
	// coverage and cycle overhead vs. this build's original. CFI builds
	// run both binaries under CET enforcement, so the overhead row also
	// certifies every indirect transfer still lands on a marker.
	Coverage, Overhead float64
	// MarkCost is the CFI build's original-run cycle overhead relative
	// to the marker-less build's original run — what the landing pads
	// themselves cost before any rewriting (CFI rows only).
	MarkCost float64

	// origCycles carries the build's original run cost so LandingPads
	// can derive MarkCost across the plain/CFI pair.
	origCycles uint64
}

// LandingPadResult is one architecture's with/without-landing-pads
// comparison of func-ptr mode over the paired workloads.
type LandingPadResult struct {
	Arch arch.Arch
	Rows []LandingPadRow
	// EvidenceAccepted/ConservativeAccepted count accepted cells per
	// path; their ratio is the funcptr_coverage_ratio the perf
	// trajectory gates.
	EvidenceAccepted, ConservativeAccepted int
	Pass, Total                            int
}

// landingPadPair is one paired workload: the same generator with CFI
// landing pads off and on.
type landingPadPair struct {
	name  string
	arg   uint64
	plain func(arch.Arch) (*workload.Program, error)
	cfi   func(arch.Arch) (*workload.Program, error)
}

// landingPadPairs lists the paired workloads. The Go function-table
// programs are the paper's func-ptr failure case (conservative analysis
// must refuse); perlbench's spilled-index switches produce the inexact
// jump-table bounds marker evidence tightens; libxul is the case
// func-ptr mode already handles, so it measures what marker evidence
// costs when it buys nothing. Docker's command dispatch only assembles
// on x64; the rest pair on every ISA.
func landingPadPairs(a arch.Arch) []landingPadPair {
	pairs := []landingPadPair{
		{"go-table", 1, workload.GoTable, workload.GoTableCFI},
		{"600.perlbench_s", 0,
			func(a arch.Arch) (*workload.Program, error) { return specOne(a, "600.perlbench_s", false) },
			func(a arch.Arch) (*workload.Program, error) { return specOne(a, "600.perlbench_s", true) }},
	}
	if a == arch.X64 {
		pairs = append(pairs,
			landingPadPair{"docker", 1, workload.Docker, workload.DockerCFI},
			landingPadPair{"libxul.so", workload.CmdLatencyBenchmark, workload.Libxul, workload.LibxulCFI})
	}
	return pairs
}

// specOne generates one SPEC-like benchmark, optionally as its CFI
// build.
func specOne(a arch.Arch, name string, cfi bool) (*workload.Program, error) {
	if cfi {
		return workload.SPECCFI(a, false, name)
	}
	suite, err := workload.SPECSuiteCached(a, false)
	if err != nil {
		return nil, err
	}
	for _, p := range suite {
		if p.Profile.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("experiments: no SPEC benchmark named %q", name)
}

// LandingPads runs the evidence-layer study on one architecture: every
// paired workload is rewritten in func-ptr mode on both the evidence
// and the conservative path, accepted rewrites are re-run against the
// original (under CET enforcement for CFI builds), and the marker
// instructions' own run-time cost is measured from the paired
// originals.
func LandingPads(a arch.Arch) (*LandingPadResult, error) {
	gap := uint64(0)
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	res := &LandingPadResult{Arch: a}
	for _, pair := range landingPadPairs(a) {
		plain, err := pair.plain(a)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", pair.name, err)
		}
		cfi, err := pair.cfi(a)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s (cfi): %w", pair.name, err)
		}
		plainRow := landingPadOne(plain, pair.arg, gap, false)
		cfiRow := landingPadOne(cfi, pair.arg, gap, true)
		// The markers' own cost: CFI original vs. plain original, from
		// the two builds' baseline runs.
		if plainRow.origCycles > 0 && cfiRow.origCycles > 0 {
			cfiRow.MarkCost = overhead(cfiRow.origCycles, plainRow.origCycles)
		}
		res.Rows = append(res.Rows, plainRow, cfiRow)
	}
	for _, r := range res.Rows {
		res.Total++
		if r.Pass {
			res.Pass++
		}
		if r.Evidence == "accepted" {
			res.EvidenceAccepted++
		}
		if r.Conservative == "accepted" {
			res.ConservativeAccepted++
		}
	}
	return res, nil
}

// landingPadOne measures one build: original run (CET-enforced when the
// build claims CFI), func-ptr rewrite on both paths, and the accepted
// evidence rewrite's re-run. A refusal on the conservative path is a
// recorded outcome, not a failure — it is the behaviour the paper
// documents for Go binaries; the cell fails only when something
// violates the evidence layer's contract (a CFI build refused under
// evidence, an output divergence, a CET fault).
func landingPadOne(p *workload.Program, arg, gap uint64, isCFI bool) (out LandingPadRow) {
	out = LandingPadRow{Bench: p.Profile.Name, CFI: isCFI}
	defer func() {
		if r := recover(); r != nil {
			out.Pass = false
			out.Reason = fmt.Sprintf("panic during rewrite: %v", r)
		}
	}()
	orig, err := run(p.Binary, runOpts{arg: arg, enforceCET: isCFI})
	if err != nil {
		out.Reason = "original run failed: " + err.Error()
		return out
	}
	out.origCycles = orig.Cycles

	outcome := func(noEvidence bool) (*core.Result, string) {
		res, err := core.Rewrite(p.Binary, core.Options{
			Mode:       core.ModeFuncPtr,
			Request:    blockEmpty(),
			Verify:     true,
			InstrGap:   gap,
			NoEvidence: noEvidence,
		})
		switch {
		case err == nil:
			return res, "accepted"
		case errors.Is(err, core.ErrImpreciseFuncPtrs):
			return nil, "refused (imprecise)"
		default:
			return nil, "failed: " + err.Error()
		}
	}
	_, out.Conservative = outcome(true)
	evRes, evOutcome := outcome(false)
	out.Evidence = evOutcome
	if evRes == nil {
		// A CFI build the evidence layer cannot accept is the failure the
		// experiment exists to catch; a marker-less refusal is the
		// documented conservative behaviour.
		out.Pass = !isCFI && out.Evidence == out.Conservative
		if !out.Pass {
			out.Reason = "evidence path: " + evOutcome
		}
		return out
	}
	out.Marks = evRes.Stats.MarkSites
	out.Skips = evRes.Stats.EvidenceSkips
	out.MarkBounded = evRes.Stats.MarkBoundedTables
	out.Coverage = evRes.Stats.Coverage()
	got, err := run(evRes.Binary, runOpts{arg: arg, enforceCET: isCFI})
	if err != nil {
		out.Reason = "rewritten binary faulted: " + err.Error()
		return out
	}
	if !sameOutput(got, orig) {
		out.Reason = "rewritten output diverged"
		return out
	}
	out.Pass = true
	out.Overhead = overhead(got.Cycles, orig.Cycles)
	return out
}

// Render formats the study as the EXPERIMENTS.md table: one row per
// build, acceptance on both paths, evidence attribution, and the three
// costs (instrumentation overhead, marker cost, coverage).
func (r *LandingPadResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Landing-pad evidence: func-ptr mode with and without markers (%s)\n", r.Arch)
	fmt.Fprintf(&b, "%-16s %-6s %-19s %-19s %6s %6s %9s %9s %9s %9s\n",
		"benchmark", "build", "conservative", "evidence", "marks", "skips", "mb-tables", "coverage", "overhead", "mark-cost")
	for _, row := range r.Rows {
		build := "plain"
		if row.CFI {
			build = "cfi"
		}
		if !row.Pass {
			fmt.Fprintf(&b, "%-16s %-6s FAILED: %s\n", row.Bench, build, row.Reason)
			continue
		}
		cov, ovh, cost := "n/a", "n/a", "-"
		if row.Evidence == "accepted" {
			cov, ovh = pct(row.Coverage), pct(row.Overhead)
		}
		if row.CFI {
			cost = pct(row.MarkCost)
		}
		fmt.Fprintf(&b, "%-16s %-6s %-19s %-19s %6d %6d %9d %9s %9s %9s\n",
			row.Bench, build, row.Conservative, row.Evidence,
			row.Marks, row.Skips, row.MarkBounded, cov, ovh, cost)
	}
	fmt.Fprintf(&b, "accepted: evidence %d/%d, conservative %d/%d   coverage ratio %.3f   pass %d/%d\n",
		r.EvidenceAccepted, r.Total, r.ConservativeAccepted, r.Total,
		r.CoverageRatio(), r.Pass, r.Total)
	return b.String()
}

// CoverageRatio is evidence-path acceptances over conservative-path
// acceptances — the number the perf trajectory gates as
// funcptr_coverage_ratio (above 1 means landing pads convert refusals
// into sound rewrites; exactly 1 means the evidence layer bought
// nothing; 0 conservative acceptances make the ratio undefined and
// return 0).
func (r *LandingPadResult) CoverageRatio() float64 {
	if r.ConservativeAccepted == 0 {
		return 0
	}
	return float64(r.EvidenceAccepted) / float64(r.ConservativeAccepted)
}

// Failures lists every failed cell as a "bench/build: reason" line.
func (r *LandingPadResult) Failures() []string {
	var out []string
	for _, row := range r.Rows {
		if !row.Pass {
			build := "plain"
			if row.CFI {
				build = "cfi"
			}
			out = append(out, fmt.Sprintf("%s/landingpads/%s/%s: %s", r.Arch, row.Bench, build, row.Reason))
		}
	}
	return out
}
