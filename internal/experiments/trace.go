package experiments

import (
	"fmt"
	"io"
	"sync"

	"icfgpatch/internal/obs"
)

// The sweep-wide trace sink (icfg-experiments -trace). Cells run on a
// worker pool, so each finished tree is written whole under the mutex —
// interleaved cells, never interleaved lines.
var (
	traceMu   sync.Mutex
	traceSink io.Writer
)

// SetTrace directs every cell's rendered span tree to w; nil disables
// tracing (the default).
func SetTrace(w io.Writer) {
	traceMu.Lock()
	traceSink = w
	traceMu.Unlock()
}

// traceRun starts one cell's root span, or returns nil when tracing is
// off — which silences the whole span tree downstream.
func traceRun(label, bench string) *obs.Span {
	traceMu.Lock()
	enabled := traceSink != nil
	traceMu.Unlock()
	if !enabled {
		return nil
	}
	return obs.NewTrace(label + "/" + bench)
}

// emitTrace ends the cell's span and writes the rendered tree.
func emitTrace(sp *obs.Span) {
	if sp == nil {
		return
	}
	sp.End()
	traceMu.Lock()
	defer traceMu.Unlock()
	if traceSink != nil {
		fmt.Fprintln(traceSink, sp.Render())
	}
}
