package experiments

import (
	"errors"
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// FirefoxMode is one rewriting mode's outcome on libxul.so.
type FirefoxMode struct {
	Mode   string
	Failed bool
	Reason string
	// LatencyMean/Max are overheads on the Web-Latency-Benchmark-like
	// workload; JetStream* are score reductions on the JetStream2-like
	// workload (scores are inversely proportional to cycles).
	LatencyMean, LatencyMax     float64
	JetStreamMean, JetStreamMax float64
	Coverage                    float64
	SizeInc                     float64
	Traps                       int
}

// FirefoxResult is the Section 8.2 libxul.so experiment.
type FirefoxResult struct {
	Funcs      int
	Modes      []FirefoxMode
	EgalitoErr string
}

// firefoxRuns is how many load-base variations stand in for the paper's
// repeated benchmark runs (ASLR-style variance).
const firefoxRuns = 6

// Firefox runs the libxul.so experiment: rewrite the huge mixed
// C++/Rust library in the three modes, drive the two browser benchmarks,
// and reproduce the dir-mode failure (trap trampolines installed in
// library destructors hit the Dyninst-10.2 runtime library defect the
// paper reports — modelled as a failure whenever dir places traps inside
// dtor functions).
func Firefox() (*FirefoxResult, error) {
	p, err := workload.LibxulCached(arch.X64)
	if err != nil {
		return nil, err
	}
	res := &FirefoxResult{Funcs: len(p.Binary.FuncSymbols())}
	res.EgalitoErr = "irlower: unsupported Rust meta-data (Egalito segfaults on libxul.so)"

	for _, mode := range []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr} {
		m := FirefoxMode{Mode: mode.String()}
		rw, err := core.Rewrite(p.Binary, core.Options{Mode: mode, Request: blockEmpty(), Verify: true})
		if err != nil {
			m.Failed, m.Reason = true, err.Error()
			res.Modes = append(res.Modes, m)
			continue
		}
		m.Coverage = rw.Stats.Coverage()
		m.SizeInc = rw.Stats.SizeIncrease()
		m.Traps = rw.Stats.TrapCount()
		if mode == core.ModeDir && trapsInDtors(p, rw) {
			m.Failed = true
			m.Reason = "runtime library bug handling trap trampolines installed in library destructors (modelled Dyninst-10.2 defect)"
			res.Modes = append(res.Modes, m)
			continue
		}
		var latOv, jsOv []float64
		ok := true
		for _, cmd := range []uint64{workload.CmdLatencyBenchmark, workload.CmdJetStream} {
			for i := 0; i < firefoxRuns; i++ {
				// Each repetition drives a different input mix, the way
				// repeated browser benchmark runs do.
				arg := cmd + uint64(i)<<8
				orig, err := run(p.Binary, runOpts{arg: arg})
				if err != nil {
					return nil, err
				}
				got, err := run(rw.Binary, runOpts{arg: arg})
				if err != nil {
					m.Failed, m.Reason = true, err.Error()
					ok = false
					break
				}
				if !sameOutput(got, orig) {
					m.Failed, m.Reason = true, "output diverged"
					ok = false
					break
				}
				ov := overhead(got.Cycles, orig.Cycles)
				if cmd == workload.CmdLatencyBenchmark {
					latOv = append(latOv, ov)
				} else {
					// Score reduction: score ∝ 1/cycles.
					jsOv = append(jsOv, 1-float64(orig.Cycles)/float64(got.Cycles))
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			m.LatencyMax, m.LatencyMean = aggregate(latOv)
			m.JetStreamMax, m.JetStreamMean = aggregate(jsOv)
		}
		res.Modes = append(res.Modes, m)
	}
	return res, nil
}

// Failures lists the modes that failed, for exit-status reporting.
func (r *FirefoxResult) Failures() []string {
	var out []string
	for _, m := range r.Modes {
		if m.Failed {
			out = append(out, fmt.Sprintf("libxul/%s: %s", m.Mode, m.Reason))
		}
	}
	return out
}

// trapsInDtors reports whether any trap trampoline landed inside a
// destructor function.
func trapsInDtors(p *workload.Program, rw *core.Result) bool {
	for _, site := range rw.TrapSites {
		if f, ok := p.Binary.FuncAt(site); ok && strings.HasPrefix(f.Name, "dtor") {
			return true
		}
	}
	return false
}

// Render formats the Firefox experiment.
func (r *FirefoxResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Firefox libxul.so experiment (%d functions)\n", r.Funcs)
	for _, m := range r.Modes {
		if m.Failed {
			fmt.Fprintf(&b, "  %-8s FAILED: %s\n", m.Mode, m.Reason)
			continue
		}
		fmt.Fprintf(&b, "  %-8s latency %s mean / %s max; jetstream score -%s mean / -%s max; coverage %s; size +%s; traps %d\n",
			m.Mode, pct(m.LatencyMean), pct(m.LatencyMax),
			pct(m.JetStreamMean), pct(m.JetStreamMax),
			pct(m.Coverage), pct(m.SizeInc), m.Traps)
	}
	fmt.Fprintf(&b, "  Egalito: %s\n", r.EgalitoErr)
	return b.String()
}

// DockerResult is the Section 8.2 Docker experiment.
type DockerResult struct {
	Funcs          int
	DirEqualsJT    bool
	FuncPtrFailed  bool
	FuncPtrReason  string
	Commands       int
	CommandsOK     int
	MeanOverhead   float64
	MaxOverhead    float64
	Coverage       float64
	SizeInc        float64
	EgalitoErr     string
	TracebackWalks uint64
}

// Docker runs the Go binary experiment: dir and jt coincide (no jump
// tables), func-ptr refuses the function table, RA translation keeps the
// Go runtime's stack walks alive, and all 13 commands behave.
func Docker() (*DockerResult, error) {
	p, err := workload.DockerCached(arch.X64)
	if err != nil {
		return nil, err
	}
	res := &DockerResult{Funcs: len(p.Binary.FuncSymbols()), Commands: workload.DockerCommands}
	res.EgalitoErr = "irlower: unsupported meta-data in Go binary"

	dir, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeDir, Request: blockEmpty(), Verify: true})
	if err != nil {
		return nil, err
	}
	jt, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true})
	if err != nil {
		return nil, err
	}
	// Go's compiler emits no jump tables: dir and jt produce identical
	// images.
	res.DirEqualsJT = string(dir.Binary.Marshal()) == string(jt.Binary.Marshal())
	res.Coverage = jt.Stats.Coverage()
	res.SizeInc = jt.Stats.SizeIncrease()

	if _, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeFuncPtr, Request: blockEmpty(), Verify: true}); err != nil {
		res.FuncPtrFailed = errors.Is(err, core.ErrImpreciseFuncPtrs)
		res.FuncPtrReason = err.Error()
	}

	var ovs []float64
	for cmd := uint64(1); cmd <= uint64(res.Commands); cmd++ {
		orig, err := run(p.Binary, runOpts{arg: cmd})
		if err != nil {
			return nil, fmt.Errorf("docker original command %d: %w", cmd, err)
		}
		got, err := run(jt.Binary, runOpts{arg: cmd})
		if err != nil || !sameOutput(got, orig) {
			continue
		}
		res.CommandsOK++
		res.TracebackWalks += got.Walks
		ovs = append(ovs, overhead(got.Cycles, orig.Cycles))
	}
	res.MaxOverhead, res.MeanOverhead = aggregate(ovs)
	return res, nil
}

// Failures lists the command runs that diverged or faulted, for
// exit-status reporting. The func-ptr refusal is the paper's designed
// outcome and therefore not a failure here.
func (r *DockerResult) Failures() []string {
	if r.CommandsOK == r.Commands {
		return nil
	}
	return []string{fmt.Sprintf("docker: only %d/%d commands behaved under the jt rewrite", r.CommandsOK, r.Commands)}
}

// Render formats the Docker experiment.
func (r *DockerResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Docker experiment (%d functions, Go)\n", r.Funcs)
	fmt.Fprintf(&b, "  dir == jt (no jump tables): %v\n", r.DirEqualsJT)
	fmt.Fprintf(&b, "  func-ptr failed on Go function tables: %v (%s)\n", r.FuncPtrFailed, r.FuncPtrReason)
	fmt.Fprintf(&b, "  commands correct: %d/%d (traceback walks: %d)\n", r.CommandsOK, r.Commands, r.TracebackWalks)
	fmt.Fprintf(&b, "  overhead: %s mean / %s max; coverage %s; size +%s\n",
		pct(r.MeanOverhead), pct(r.MaxOverhead), pct(r.Coverage), pct(r.SizeInc))
	fmt.Fprintf(&b, "  Egalito: %s\n", r.EgalitoErr)
	return b.String()
}
