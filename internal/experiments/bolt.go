package experiments

import (
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

// BOLTResult is the Section 8.3 comparison: two code reordering
// experiments across the SPEC-like suite on x86-64.
type BOLTResult struct {
	Total int
	// Function reordering.
	FuncBOLTPass int
	FuncBOLTErr  string
	FuncOursPass int
	// Block reordering.
	BlockBOLTPass     int
	BlockOursPass     int
	BlockBOLTSizeMax  float64
	BlockBOLTSizeMean float64
}

// BOLTComparison runs both reordering experiments. The benchmarks are
// built the default way (no -Wl,-q), which is what makes BOLT refuse
// function reordering outright.
func BOLTComparison() (*BOLTResult, error) {
	suite, err := workload.SPECSuiteCached(arch.X64, true)
	if err != nil {
		return nil, err
	}
	res := &BOLTResult{Total: len(suite)}
	req := instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadEmpty}

	var sizes []float64
	for _, p := range suite {
		orig, err := run(p.Binary, runOpts{})
		if err != nil {
			return nil, err
		}

		// (1) Reverse all functions.
		if _, err := baseline.BOLTReorderFunctions(p.Binary); err != nil {
			res.FuncBOLTErr = err.Error()
		} else {
			res.FuncBOLTPass++
		}
		ours, err := core.Rewrite(p.Binary, core.Options{
			Mode: core.ModeJT, Request: req, Verify: true,
			Variant: core.Variant{ReverseFuncs: true},
		})
		if err == nil {
			if got, err := run(ours.Binary, runOpts{}); err == nil && sameOutput(got, orig) {
				res.FuncOursPass++
			}
		}

		// (2) Reverse blocks within functions.
		if bres, err := baseline.BOLTReorderBlocks(p.Binary); err == nil {
			if got, err := run(bres.Binary, runOpts{}); err == nil && sameOutput(got, orig) {
				res.BlockBOLTPass++
				sizes = append(sizes, bres.Stats.SizeIncrease())
			}
		}
		oursB, err := core.Rewrite(p.Binary, core.Options{
			Mode: core.ModeJT, Request: req, Verify: true,
			Variant: core.Variant{ReverseBlocks: true},
		})
		if err == nil {
			if got, err := run(oursB.Binary, runOpts{}); err == nil && sameOutput(got, orig) {
				res.BlockOursPass++
			}
		}
	}
	res.BlockBOLTSizeMax, res.BlockBOLTSizeMean = aggregate(sizes)
	return res, nil
}

// Render formats the BOLT comparison.
func (r *BOLTResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BOLT comparison (x86-64, %d benchmarks)\n", r.Total)
	fmt.Fprintf(&b, "  reverse functions: BOLT %d/%d (%s); ours %d/%d\n",
		r.FuncBOLTPass, r.Total, r.FuncBOLTErr, r.FuncOursPass, r.Total)
	fmt.Fprintf(&b, "  reverse blocks:    BOLT %d/%d (size +%s mean, +%s max); ours %d/%d\n",
		r.BlockBOLTPass, r.Total, pct(r.BlockBOLTSizeMean), pct(r.BlockBOLTSizeMax), r.BlockOursPass, r.Total)
	return b.String()
}
