package experiments

import (
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/workload"
)

// AblationRow measures one design choice's contribution by disabling it
// and re-running the block-level empty instrumentation experiment on the
// trampoline-stressed configuration (PPC with .instr beyond the ±32MB
// branch range, where trampoline real estate is scarcest).
type AblationRow struct {
	Name     string
	Overhead float64 // mean across benchmarks
	Coverage float64 // mean across benchmarks
	Traps    int     // total trap trampolines installed
	Pass     int
	Total    int
}

// AblationResult quantifies each technique of the paper against the
// full system: trampoline superblocks (Section 4), retired-section
// scratch space (Section 7), Assumption-2 bound extension and the
// gap-based tail call heuristic (Section 5.1), and runtime RA
// translation versus call emulation (Section 6).
type AblationResult struct {
	Arch arch.Arch
	Rows []AblationRow
}

// Ablation runs the study. Each row is the full jt-mode system with
// exactly one technique removed.
func Ablation(a arch.Arch) (*AblationResult, error) {
	suite, err := workload.SPECSuiteCached(a, false)
	if err != nil {
		return nil, err
	}
	gap := uint64(0)
	if a == arch.PPC {
		gap = ppcInstrGap
	}
	configs := []struct {
		name string
		v    core.Variant
	}{
		{"full system", core.Variant{}},
		{"- superblocks", core.Variant{NoSuperblocks: true}},
		{"- retired-section scratch", core.Variant{NoScratchSections: true}},
		{"- bound extension", core.Variant{StrictJumpTableBounds: true}},
		{"- tail call heuristic", core.Variant{NoTailCallHeuristic: true}},
		{"- superblocks & scratch", core.Variant{NoSuperblocks: true, NoScratchSections: true}},
		{"- CFL placement (every block)", core.Variant{TrampolineEveryBlock: true}},
	}
	res := &AblationResult{Arch: a}
	for _, cfgv := range configs {
		row := AblationRow{Name: cfgv.name, Total: len(suite)}
		var ovh, cov []float64
		for _, p := range suite {
			r := runOne(cfgv.name, p, func(p *workload.Program, tr *obs.Span) (*core.Result, error) {
				return core.Rewrite(p.Binary, core.Options{
					Mode:     core.ModeJT,
					Request:  blockEmpty(),
					Verify:   true,
					InstrGap: gap,
					Variant:  cfgv.v,
					Trace:    tr,
				})
			})
			if r.Coverage >= 0 {
				cov = append(cov, r.Coverage)
				row.Traps += r.Traps
			}
			if r.Pass {
				row.Pass++
				ovh = append(ovh, r.Overhead)
			}
		}
		_, row.Overhead = aggregate(ovh)
		_, row.Coverage = aggregate(cov)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the ablation study.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — jt mode with one technique removed (%s)\n", r.Arch)
	fmt.Fprintf(&b, "%-30s %10s %10s %6s %s\n", "", "overhead", "coverage", "traps", "pass")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s %10s %10s %6d %d/%d\n",
			row.Name, pct(row.Overhead), pct(row.Coverage), row.Traps, row.Pass, row.Total)
	}
	return b.String()
}
