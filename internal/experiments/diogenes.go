package experiments

import (
	"fmt"
	"sort"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/baseline"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/workload"
)

// diogenesTargetCount scales the paper's 700-of-12644 instrumented
// functions to the generated driver (~5.5%).
const diogenesTargetCount = 70

// DiogenesResult is the Section 9 case study: partial instrumentation of
// the libcuda.so-like driver to find the hidden synchronization function.
type DiogenesResult struct {
	TotalFuncs      int
	Instrumented    int
	MainstreamOK    bool
	MainstreamCost  uint64
	MainstreamTraps int
	OursCost        uint64
	OursTraps       int
	Speedup         float64
	EgalitoErr      string
}

// Diogenes runs the identification test with mainstream-Dyninst-style
// rewriting (SRBI) and with incremental CFG patching. The 60× class
// speedup in the paper comes from trap trampolines: the instrumented
// driver functions are dominated by dispatch code whose one-instruction
// case blocks can only hold traps under per-block trampoline placement.
func Diogenes() (*DiogenesResult, error) {
	p, err := workload.LibcudaCached(arch.X64)
	if err != nil {
		return nil, err
	}
	targets, err := hotTargets(p, diogenesTargetCount)
	if err != nil {
		return nil, err
	}
	req := instrument.Request{
		Where:   instrument.FuncEntry,
		Payload: instrument.PayloadCounter,
		Funcs:   targets,
	}
	res := &DiogenesResult{
		TotalFuncs:   len(p.Binary.FuncSymbols()),
		Instrumented: len(targets),
	}

	// Egalito cannot rewrite the driver at all.
	if _, err := baseline.IRLower(p.Binary, baseline.IRLowerOptions{Request: req}); err != nil {
		res.EgalitoErr = err.Error()
	}

	main, err := baseline.SRBI(p.Binary, baseline.SRBIOptions{Request: req, Verify: true})
	if err != nil {
		return nil, fmt.Errorf("diogenes mainstream rewrite: %w", err)
	}
	res.MainstreamTraps = main.Stats.TrapCount()
	mRun, err := run(main.Binary, runOpts{maxInstr: 200_000_000})
	if err == nil {
		res.MainstreamOK = true
		res.MainstreamCost = mRun.Cycles
	}

	ours, err := core.Rewrite(p.Binary, core.Options{Mode: core.ModeJT, Request: req, Verify: true})
	if err != nil {
		return nil, fmt.Errorf("diogenes incremental rewrite: %w", err)
	}
	res.OursTraps = ours.Stats.TrapCount()
	oRun, err := run(ours.Binary, runOpts{})
	if err != nil {
		return nil, fmt.Errorf("diogenes incremental run: %w", err)
	}
	res.OursCost = oRun.Cycles
	if res.OursCost > 0 && res.MainstreamCost > 0 {
		res.Speedup = float64(res.MainstreamCost) / float64(res.OursCost)
	}
	return res, nil
}

// hotTargets selects the instrumented subset the way Diogenes does: it
// profiles the identification test (the call graphs under the public
// synchronization APIs) and instruments the functions that actually
// execute, preferring the dispatch-heavy ones whose tiny blocks force
// trap trampolines under per-block placement.
func hotTargets(p *workload.Program, n int) ([]string, error) {
	var entries []uint64
	name := map[uint64]string{}
	for _, sym := range p.Binary.FuncSymbols() {
		if strings.HasPrefix(sym.Name, "fn") {
			entries = append(entries, sym.Addr)
			name[sym.Addr] = sym.Name
		}
	}
	m, err := emu.Load(p.Binary, emu.Options{ProfileAddrs: entries})
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	type hot struct {
		addr  uint64
		count uint64
	}
	var hots []hot
	for a, c := range res.Profile {
		if c > 0 {
			hots = append(hots, hot{a, c})
		}
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].count > hots[j].count })
	var out []string
	for _, h := range hots {
		if len(out) >= n {
			break
		}
		out = append(out, name[h.addr])
	}
	return out, nil
}

// Failures lists failed runs for exit-status reporting.
func (r *DiogenesResult) Failures() []string {
	if r.MainstreamOK {
		return nil
	}
	return []string{"diogenes: mainstream (SRBI) identification run failed"}
}

// Render formats the case study.
func (r *DiogenesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Diogenes case study (libcuda.so-like, %d functions, %d instrumented)\n",
		r.TotalFuncs, r.Instrumented)
	fmt.Fprintf(&b, "  mainstream (SRBI): %d cycles, %d trap trampolines (ok=%v)\n",
		r.MainstreamCost, r.MainstreamTraps, r.MainstreamOK)
	fmt.Fprintf(&b, "  ours (jt):         %d cycles, %d trap trampolines\n", r.OursCost, r.OursTraps)
	fmt.Fprintf(&b, "  identification test speedup: %.1fx (paper: 60x, 30 minutes -> 30 seconds)\n", r.Speedup)
	fmt.Fprintf(&b, "  Egalito: %s\n", r.EgalitoErr)
	return b.String()
}
