// Package perf records and compares the repo's performance trajectory.
//
// Every PR that touches a hot path appends a machine-readable snapshot
// (BENCH_<n>.json at the repo root) produced by Record: cold/warm/delta
// rewrite latency, emit throughput, allocations per operation on the
// steady-state paths, and rewrite-service tail latency under concurrent
// load. Compare is the regression gate `make bench-compare` runs against
// the committed snapshot — it fails loudly when a candidate run regresses
// latency or allocations beyond the configured tolerances, and errors
// (rather than silently passing) when a baseline field is missing or
// zero, so a truncated or hand-edited baseline cannot neuter the gate.
//
// Measurements run in-process rather than via `go test -bench` so the
// gate needs no subprocess plumbing and the binary under test is the
// same build that serves requests. Latency fields are medians over
// Iters runs; allocation fields are measured with the world pinned to
// one proc (the same discipline as testing.AllocsPerRun) on the serial
// patch path, which is the deterministic one — parallel workers add a
// scheduler-dependent handful of allocations that would make the budget
// guard flaky.
package perf

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/emu"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/rtlib"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/batch"
	"icfgpatch/internal/service/wire"
	"icfgpatch/internal/store"
	"icfgpatch/internal/workload"
)

// Schema is the trajectory file format identifier. Compare refuses
// files with a different schema so stale formats fail loudly.
const Schema = "icfgpatch-bench/v1"

// Trajectory is one PR's performance snapshot. All latency fields are
// nanoseconds (medians over the recording's iterations); allocation
// fields are per-operation as measured with GOMAXPROCS(1).
type Trajectory struct {
	Schema   string `json:"schema"`
	PR       int    `json:"pr"`
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	CPUs     int    `json:"cpus"`
	Workload string `json:"workload"`

	// ColdRewriteNs is a full Rewrite (analysis + patch) of the workload.
	ColdRewriteNs float64 `json:"cold_rewrite_ns"`
	// WarmPatchNs is Patch against a cached Analysis — the service's
	// analysis-store hit path.
	WarmPatchNs float64 `json:"warm_patch_ns"`
	// DeltaRewriteNs is Analyze+Patch of a mutated version with the
	// previous version's function units in the unit store.
	DeltaRewriteNs float64 `json:"delta_rewrite_ns"`
	// EmitThroughputMBps is emitted .instr bytes over the emit stage's
	// wall time on a cold rewrite.
	EmitThroughputMBps float64 `json:"emit_throughput_mbps"`

	WarmPatchAllocsPerOp    float64 `json:"warm_patch_allocs_per_op"`
	WarmPatchBytesPerOp     float64 `json:"warm_patch_bytes_per_op"`
	WarmAnalyzeAllocsPerOp  float64 `json:"warm_analyze_allocs_per_op"`
	DeltaAnalyzeAllocsPerOp float64 `json:"delta_analyze_allocs_per_op"`

	// ServiceP50Ns/ServiceP99Ns are per-request latency quantiles of
	// ServiceRequests concurrent submissions to an in-process server.
	ServiceP50Ns    float64 `json:"service_p50_ns"`
	ServiceP99Ns    float64 `json:"service_p99_ns"`
	ServiceRequests int     `json:"service_requests"`

	// BatchItemsPerSec is fleet-rewrite throughput: one batch job of
	// BatchItems manifest entries over three distinct binary versions
	// (so dedupe and the delta path both participate), items divided by
	// job wall time, median over the recording's iterations.
	BatchItemsPerSec float64 `json:"batch_items_per_sec"`
	BatchItems       int     `json:"batch_items"`

	// ProfileGuidedOverheadRatio is the guided-over-unguided cycle-
	// overhead ratio of a block-counter rewrite on the libxul/X64
	// workload, with the profile captured from one emulated run of the
	// latency benchmark. Below 1 means the fast variants pay for their
	// dispatch stubs; the emulator's cycle model makes it deterministic,
	// so Compare gates it like a latency field.
	ProfileGuidedOverheadRatio float64 `json:"profile_guided_overhead_ratio"`
	// ProfileWorkloads records the same capture → guided-rewrite loop on
	// the other recorded workloads: docker (Go runtime, X64), the
	// stripped libcuda driver (entry discovery instead of symbols), and
	// a SPEC benchmark on a fixed-width arch (A64). Each entry's ratio
	// is gated.
	ProfileWorkloads map[string]ProfileStats `json:"profile_workloads"`

	// FuncPtrCoverageRatio is evidence-path over conservative-path
	// acceptance of func-ptr mode across the landing-pad workload pairs
	// (go-table, 600.perlbench_s, docker, libxul — each built plain and
	// with CFI landing pads, X64), the same pairing — and so the same
	// ratio — experiments.LandingPads reports for this arch. Above
	// 1 means trusted marker evidence converts ErrImprecise refusals
	// into sound rewrites. Acceptance counts are deterministic, so
	// Compare gates this field exactly instead of with the latency
	// tolerance.
	FuncPtrCoverageRatio float64 `json:"funcptr_coverage_ratio"`

	// AllocBudgets are the ceilings TestAllocBudget asserts: the
	// measured allocs/op at recording time with headroom baked in.
	AllocBudgets map[string]float64 `json:"alloc_budgets"`
}

// ProfileStats summarises one workload's captured profile and the plan
// it guided: how many functions the profile marked hot, how many got a
// fast variant, and the guided/unguided overhead ratio.
type ProfileStats struct {
	HotFuncs     int     `json:"hot_funcs"`
	VariantFuncs int     `json:"variant_funcs"`
	Ratio        float64 `json:"guided_overhead_ratio"`
}

// RecordOptions tune Record. Zero values select the defaults.
type RecordOptions struct {
	// PR stamps the snapshot with its PR number.
	PR int
	// Iters is the timing-loop iteration count (default 5; medians are
	// reported).
	Iters int
	// AllocRuns is the allocation-measurement run count (default 5).
	AllocRuns int
	// ServiceRequests is the concurrent-load request count (default 64).
	ServiceRequests int
	// BudgetHeadroom scales measured allocs/op into AllocBudgets
	// (default 1.3).
	BudgetHeadroom float64
}

func (o *RecordOptions) defaults() {
	if o.Iters <= 0 {
		o.Iters = 5
	}
	if o.AllocRuns <= 0 {
		o.AllocRuns = 5
	}
	if o.ServiceRequests <= 0 {
		o.ServiceRequests = 64
	}
	if o.BudgetHeadroom <= 0 {
		o.BudgetHeadroom = 1.3
	}
}

// Budget keys, shared with the TestAllocBudget guard.
const (
	BudgetWarmPatch    = "warm_patch_allocs"
	BudgetWarmAnalyze  = "warm_analyze_allocs"
	BudgetDeltaAnalyze = "delta_analyze_allocs"
)

// benchRequest is the Table-3 instrumentation request every measurement
// uses: empty payload at block entries on the libxul workload, ModeJT.
func benchRequest() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}
}

// Record measures the current build's performance trajectory on the
// libxul/X64/jt/block-entry workload and returns the snapshot.
func Record(opts RecordOptions) (*Trajectory, error) {
	opts.defaults()
	prog, err := workload.LibxulCached(arch.X64)
	if err != nil {
		return nil, fmt.Errorf("perf: workload: %w", err)
	}
	t := &Trajectory{
		Schema:       Schema,
		PR:           opts.PR,
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		Workload:     "libxul-x64-jt-blockentry",
		AllocBudgets: map[string]float64{},
	}
	req := benchRequest()
	patchOpts := core.Options{Mode: core.ModeJT, Request: req}

	// Cold rewrite latency + emit throughput (from the same runs).
	var emitMBps []float64
	cold, err := medianNs(opts.Iters, func() error {
		res, err := core.Rewrite(prog.Binary, patchOpts)
		if err != nil {
			return err
		}
		if mbps, ok := emitThroughput(res); ok {
			emitMBps = append(emitMBps, mbps)
		}
		res.Recycle()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("perf: cold rewrite: %w", err)
	}
	t.ColdRewriteNs = cold
	if len(emitMBps) == 0 {
		return nil, errors.New("perf: cold rewrite recorded no emit-stage timing")
	}
	sort.Float64s(emitMBps)
	t.EmitThroughputMBps = emitMBps[len(emitMBps)/2]

	// Warm patch latency: one Analysis, repeated Patch.
	an, err := core.Analyze(prog.Binary, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		return nil, fmt.Errorf("perf: analyze: %w", err)
	}
	warm, err := medianNs(opts.Iters, func() error {
		res, err := an.Patch(patchOpts)
		if err != nil {
			return err
		}
		res.Recycle()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("perf: warm patch: %w", err)
	}
	t.WarmPatchNs = warm

	// Delta rewrite latency: per run, a fresh unit store seeded with v1
	// (untimed), then Analyze+Patch of the mutated v2 (timed). Reusing
	// one store would deposit v2's units on the first run and turn every
	// later run into a full-reuse measurement of a different path.
	v2, _, err := workload.MutateVersion(prog.Binary, 3, 17)
	if err != nil {
		return nil, fmt.Errorf("perf: mutate: %w", err)
	}
	delta, err := medianNsSetup(opts.Iters,
		func() (*core.UnitStore, error) {
			units := core.NewUnitStore(0)
			if _, err := core.Analyze(prog.Binary, core.AnalysisConfig{Mode: core.ModeJT, Units: units}); err != nil {
				return nil, err
			}
			return units, nil
		},
		func(units *core.UnitStore) error {
			an, err := core.Analyze(v2, core.AnalysisConfig{Mode: core.ModeJT, Units: units})
			if err != nil {
				return err
			}
			res, err := an.Patch(patchOpts)
			if err != nil {
				return err
			}
			res.Recycle()
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("perf: delta rewrite: %w", err)
	}
	t.DeltaRewriteNs = delta

	// Allocation discipline, serial path, world pinned to one proc.
	measured, warmPatchBytes, err := budgetAllocs(prog.Binary, v2, an, patchOpts, opts.AllocRuns)
	if err != nil {
		return nil, err
	}
	t.WarmPatchAllocsPerOp = measured[BudgetWarmPatch]
	t.WarmPatchBytesPerOp = warmPatchBytes
	t.WarmAnalyzeAllocsPerOp = measured[BudgetWarmAnalyze]
	t.DeltaAnalyzeAllocsPerOp = measured[BudgetDeltaAnalyze]

	t.AllocBudgets[BudgetWarmPatch] = math.Ceil(t.WarmPatchAllocsPerOp * opts.BudgetHeadroom)
	t.AllocBudgets[BudgetWarmAnalyze] = math.Ceil(t.WarmAnalyzeAllocsPerOp * opts.BudgetHeadroom)
	t.AllocBudgets[BudgetDeltaAnalyze] = math.Ceil(t.DeltaAnalyzeAllocsPerOp * opts.BudgetHeadroom)

	// Service tail latency under concurrent load.
	p50, p99, n, err := serviceQuantiles(prog.Binary, patchOpts, opts.ServiceRequests)
	if err != nil {
		return nil, fmt.Errorf("perf: service load: %w", err)
	}
	t.ServiceP50Ns, t.ServiceP99Ns, t.ServiceRequests = p50, p99, n

	// Batch fleet throughput.
	ips, items, err := batchThroughput(prog.Binary, v2, patchOpts, opts.Iters)
	if err != nil {
		return nil, fmt.Errorf("perf: batch throughput: %w", err)
	}
	t.BatchItemsPerSec, t.BatchItems = ips, items

	// Profile-guided overhead ratios: the headline libxul/X64 number
	// plus the other recorded workloads.
	st, err := guidedRatio(prog.Binary, workload.CmdLatencyBenchmark)
	if err != nil {
		return nil, fmt.Errorf("perf: profile-guided libxul/x64: %w", err)
	}
	t.ProfileGuidedOverheadRatio = st.Ratio
	t.ProfileWorkloads = map[string]ProfileStats{}
	for _, w := range []struct {
		name string
		load func() (*bin.Binary, uint64, error)
	}{
		{"docker-x64", func() (*bin.Binary, uint64, error) {
			p, err := workload.DockerCached(arch.X64)
			if err != nil {
				return nil, 0, err
			}
			return p.Binary, 1, nil
		}},
		{"libcuda-stripped-x64", func() (*bin.Binary, uint64, error) {
			p, err := workload.LibcudaCached(arch.X64)
			if err != nil {
				return nil, 0, err
			}
			stripped := p.Binary.Clone()
			stripped.Symbols = nil
			return stripped, 0, nil
		}},
		{"spec-perlbench-a64", func() (*bin.Binary, uint64, error) {
			suite, err := workload.SPECSuiteCached(arch.A64, false)
			if err != nil {
				return nil, 0, err
			}
			return suite[0].Binary, 0, nil
		}},
	} {
		img, arg, err := w.load()
		if err != nil {
			return nil, fmt.Errorf("perf: profile workload %s: %w", w.name, err)
		}
		st, err := guidedRatio(img, arg)
		if err != nil {
			return nil, fmt.Errorf("perf: profile workload %s: %w", w.name, err)
		}
		t.ProfileWorkloads[w.name] = st
	}

	// Evidence-layer acceptance ratio.
	ratio, err := funcPtrCoverageRatio()
	if err != nil {
		return nil, fmt.Errorf("perf: funcptr coverage: %w", err)
	}
	t.FuncPtrCoverageRatio = ratio
	return t, nil
}

// funcPtrCoverageRatio attempts a func-ptr-mode rewrite of each
// landing-pad workload pair member on both the evidence and the
// conservative (NoEvidence) path, counting acceptances. ErrImprecise
// is a recorded refusal; any other failure is an error — a build that
// faults the rewriter must not be scored as a mere refusal.
func funcPtrCoverageRatio() (float64, error) {
	perlbench := func(cfi bool) (*workload.Program, error) {
		if cfi {
			return workload.SPECCFI(arch.X64, false, "600.perlbench_s")
		}
		suite, err := workload.SPECSuiteCached(arch.X64, false)
		if err != nil {
			return nil, err
		}
		return suite[0], nil
	}
	loaders := []func() (*workload.Program, error){
		func() (*workload.Program, error) { return workload.GoTable(arch.X64) },
		func() (*workload.Program, error) { return workload.GoTableCFI(arch.X64) },
		func() (*workload.Program, error) { return perlbench(false) },
		func() (*workload.Program, error) { return perlbench(true) },
		func() (*workload.Program, error) { return workload.DockerCached(arch.X64) },
		func() (*workload.Program, error) { return workload.DockerCFICached(arch.X64) },
		func() (*workload.Program, error) { return workload.LibxulCached(arch.X64) },
		func() (*workload.Program, error) { return workload.LibxulCFICached(arch.X64) },
	}
	evidence, conservative := 0, 0
	for _, load := range loaders {
		p, err := load()
		if err != nil {
			return 0, err
		}
		for _, noEv := range []bool{false, true} {
			res, err := core.Rewrite(p.Binary, core.Options{
				Mode: core.ModeFuncPtr, Request: benchRequest(), NoEvidence: noEv})
			switch {
			case err == nil:
				res.Recycle()
				if noEv {
					conservative++
				} else {
					evidence++
				}
			case errors.Is(err, core.ErrImpreciseFuncPtrs):
			default:
				return 0, fmt.Errorf("%s (noEvidence=%t): %w", p.Profile.Name, noEv, err)
			}
		}
	}
	if conservative == 0 {
		return 0, errors.New("no workload accepted on the conservative path — the ratio is undefined")
	}
	return float64(evidence) / float64(conservative), nil
}

// guidedRatio captures one emulated run's block heat, rewrites the
// binary with and without the resulting profile (block-entry counters,
// ModeJT), and reports the guided/unguided cycle-overhead ratio along
// with the guided plan's hot/variant counts. Both rewrites share one
// analysis; both instrumented runs are checked against the original's
// output so a behaviour break cannot masquerade as a perf number.
func guidedRatio(img *bin.Binary, arg uint64) (ProfileStats, error) {
	var st ProfileStats
	runOnce := func(b *bin.Binary, heat bool) (emu.Result, error) {
		lib, err := rtlib.Preload(b)
		if err != nil {
			return emu.Result{}, err
		}
		m, err := emu.Load(b, emu.Options{Runtime: lib, Arg: arg, MaxInstrs: 200_000_000, CaptureHeat: heat})
		if err != nil {
			return emu.Result{}, err
		}
		return m.Run()
	}
	orig, err := runOnce(img, true)
	if err != nil {
		return st, fmt.Errorf("profiling run: %w", err)
	}
	an, err := core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		return st, err
	}
	prof := an.ProfileFromHeat(store.Hash(img.Marshal()), orig.Heat)
	patchOpts := core.Options{Mode: core.ModeJT,
		Request: instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter}}
	unguided, err := an.Patch(patchOpts)
	if err != nil {
		return st, fmt.Errorf("unguided rewrite: %w", err)
	}
	patchOpts.Profile = prof
	guided, err := an.Patch(patchOpts)
	if err != nil {
		return st, fmt.Errorf("guided rewrite: %w", err)
	}
	st.HotFuncs = guided.Stats.HotFuncs
	st.VariantFuncs = guided.Stats.VariantFuncs
	ug, err := runOnce(unguided.Binary, false)
	if err != nil {
		return st, fmt.Errorf("unguided run: %w", err)
	}
	gd, err := runOnce(guided.Binary, false)
	if err != nil {
		return st, fmt.Errorf("guided run: %w", err)
	}
	if !bytes.Equal(ug.Output, orig.Output) || !bytes.Equal(gd.Output, orig.Output) {
		return st, errors.New("instrumented output diverged from the original")
	}
	ugOv := float64(ug.Cycles)/float64(orig.Cycles) - 1
	gdOv := float64(gd.Cycles)/float64(orig.Cycles) - 1
	if ugOv <= 0 {
		return st, errors.New("unguided rewrite added no measurable overhead")
	}
	st.Ratio = gdOv / ugOv
	return st, nil
}

// batchThroughput runs one fleet job per iteration — batchItemCount
// manifest entries cycling over three distinct binary versions, so
// identical items dedupe through the analysis store's single-flight and
// the versions exercise the delta path — and reports median items/sec.
// Each iteration gets a fresh server and manager: the measurement is
// the cold fleet, the case the batch API exists for.
func batchThroughput(v1, v2 *bin.Binary, patchOpts core.Options, iters int) (float64, int, error) {
	const batchItemCount = 12
	v3, _, err := workload.MutateVersion(v1, 3, 23)
	if err != nil {
		return 0, 0, err
	}
	raws := [][]byte{v1.Marshal(), v2.Marshal(), v3.Marshal()}
	params, err := wire.EncodeOptions(patchOpts)
	if err != nil {
		return 0, 0, err
	}
	man := wire.BatchManifest{}
	for i := 0; i < batchItemCount; i++ {
		man.Items = append(man.Items, wire.BatchItem{
			Name:   fmt.Sprintf("item-%d", i),
			Opts:   params.Encode(),
			Binary: raws[i%len(raws)],
		})
	}
	samples := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		srv := service.New(service.Config{Workers: 4, ResultEntries: 0})
		mgr, err := batch.New(srv, batch.Config{})
		if err != nil {
			srv.Shutdown(context.Background())
			return 0, 0, err
		}
		runtime.GC()
		start := time.Now()
		job, err := mgr.Submit(man)
		if err == nil {
			<-job.Done()
		}
		elapsed := time.Since(start)
		mgr.Shutdown(context.Background())
		srv.Shutdown(context.Background())
		if err != nil {
			return 0, 0, err
		}
		if st := job.Status(); st.State != wire.BatchDone {
			return 0, 0, fmt.Errorf("perf: batch job ended %s", st.State)
		}
		samples = append(samples, float64(batchItemCount)/elapsed.Seconds())
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], batchItemCount, nil
}

// MeasureBudgetAllocs measures the three budgeted allocation counts
// (warm Patch, warm Analyze, delta Analyze) on the standard workload.
// The TestAllocBudget guard compares its result against the committed
// snapshot's AllocBudgets — sharing this code path with Record
// guarantees the guard measures exactly what the budget was set from.
func MeasureBudgetAllocs(runs int) (map[string]float64, error) {
	if runs <= 0 {
		runs = 5
	}
	prog, err := workload.LibxulCached(arch.X64)
	if err != nil {
		return nil, fmt.Errorf("perf: workload: %w", err)
	}
	v2, _, err := workload.MutateVersion(prog.Binary, 3, 17)
	if err != nil {
		return nil, fmt.Errorf("perf: mutate: %w", err)
	}
	an, err := core.Analyze(prog.Binary, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		return nil, fmt.Errorf("perf: analyze: %w", err)
	}
	measured, _, err := budgetAllocs(prog.Binary, v2, an, core.Options{Mode: core.ModeJT, Request: benchRequest()}, runs)
	return measured, err
}

// budgetAllocs measures allocs/op for the three budgeted paths; it also
// reports warm-Patch bytes/op for the trajectory snapshot.
func budgetAllocs(v1, v2 *bin.Binary, an *core.Analysis, patchOpts core.Options, runs int) (map[string]float64, float64, error) {
	measured := map[string]float64{}
	allocs, bytes, err := measureAllocs(runs, true, nil, func(any) error {
		res, err := an.Patch(patchOpts)
		if err != nil {
			return err
		}
		res.Recycle()
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("perf: warm patch allocs: %w", err)
	}
	measured[BudgetWarmPatch] = allocs
	warmPatchBytes := bytes

	allocs, _, err = measureAllocs(runs, true, nil, func(any) error {
		_, err := core.Analyze(v1, core.AnalysisConfig{Mode: patchOpts.Mode})
		return err
	})
	if err != nil {
		return nil, 0, fmt.Errorf("perf: warm analyze allocs: %w", err)
	}
	measured[BudgetWarmAnalyze] = allocs

	// Delta analyze allocs: the first delta IS the measurement, so no
	// warm-up call — each run gets a fresh store seeded with v1.
	allocs, _, err = measureAllocs(runs, false,
		func() (any, error) {
			units := core.NewUnitStore(0)
			if _, err := core.Analyze(v1, core.AnalysisConfig{Mode: patchOpts.Mode, Units: units}); err != nil {
				return nil, err
			}
			return units, nil
		},
		func(state any) error {
			_, err := core.Analyze(v2, core.AnalysisConfig{Mode: patchOpts.Mode, Units: state.(*core.UnitStore)})
			return err
		})
	if err != nil {
		return nil, 0, fmt.Errorf("perf: delta analyze allocs: %w", err)
	}
	measured[BudgetDeltaAnalyze] = allocs
	return measured, warmPatchBytes, nil
}

// emitThroughput derives MB/s from a cold result's .instr size and its
// emit-stage wall time.
func emitThroughput(res *core.Result) (float64, bool) {
	sec := res.Binary.Section(bin.SecInstr)
	if sec == nil || len(sec.Data) == 0 {
		return 0, false
	}
	for _, s := range res.Metrics.Stages {
		if s.Name == core.StageEmit && s.Wall > 0 {
			return float64(len(sec.Data)) / s.Wall.Seconds() / 1e6, true
		}
	}
	return 0, false
}

// medianNs times fn iters times and returns the median in nanoseconds.
func medianNs(iters int, fn func() error) (float64, error) {
	return medianNsSetup(iters, func() (struct{}, error) { return struct{}{}, nil },
		func(struct{}) error { return fn() })
}

// medianNsSetup is medianNs with untimed per-iteration setup. The GC
// runs between setup and the timed window so the measurement does not
// pay the setup's collection debt — on a single-proc box an untimed
// whole-binary analysis can otherwise double the timed delta.
func medianNsSetup[S any](iters int, setup func() (S, error), fn func(S) error) (float64, error) {
	samples := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		state, err := setup()
		if err != nil {
			return 0, err
		}
		runtime.GC()
		start := time.Now()
		if err := fn(state); err != nil {
			return 0, err
		}
		samples = append(samples, float64(time.Since(start).Nanoseconds()))
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], nil
}

// measureAllocs reports mean allocations and bytes per run of fn, with
// the world pinned to one proc (the testing.AllocsPerRun discipline).
// warmup runs fn once, unmeasured, so one-time lazy initialisation does
// not pollute the steady state; setup (optional) produces fresh
// per-run state outside the measured window.
func measureAllocs(runs int, warmup bool, setup func() (any, error), fn func(any) error) (allocs, bytes float64, err error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	newState := func() (any, error) {
		if setup == nil {
			return nil, nil
		}
		return setup()
	}
	if warmup {
		st, err := newState()
		if err != nil {
			return 0, 0, err
		}
		if err := fn(st); err != nil {
			return 0, 0, err
		}
	}
	var totalMallocs, totalBytes uint64
	for i := 0; i < runs; i++ {
		st, err := newState()
		if err != nil {
			return 0, 0, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if err := fn(st); err != nil {
			return 0, 0, err
		}
		runtime.ReadMemStats(&after)
		totalMallocs += after.Mallocs - before.Mallocs
		totalBytes += after.TotalAlloc - before.TotalAlloc
	}
	return float64(totalMallocs) / float64(runs), float64(totalBytes) / float64(runs), nil
}

// serviceQuantiles submits n concurrent rewrites of the same binary to
// an in-process server (result cache disabled, so every request does
// real patch work against the shared analysis) and reports per-request
// p50/p99 latency.
func serviceQuantiles(b *bin.Binary, opts core.Options, n int) (p50, p99 float64, served int, err error) {
	raw := b.Marshal()
	hash := store.Hash(raw)
	srv := service.New(service.Config{Workers: 4, QueueDepth: n + 8, ResultEntries: 0})
	defer srv.Shutdown(context.Background())

	// Prime the analysis store so the measured requests exercise the
	// steady-state warm path rather than racing one cold analysis.
	if _, err := srv.Submit(context.Background(), service.Request{Binary: b, Hash: hash, Opts: opts}); err != nil {
		return 0, 0, 0, err
	}

	lat := make([]float64, n)
	errs := make(chan error, n)
	const workers = 8
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem }()
			start := time.Now()
			_, err := srv.Submit(context.Background(), service.Request{Binary: b, Hash: hash, Opts: opts})
			lat[i] = float64(time.Since(start).Nanoseconds())
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if e := <-errs; e != nil {
			return 0, 0, 0, e
		}
	}
	sort.Float64s(lat)
	return quantile(lat, 0.50), quantile(lat, 0.99), n, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Tolerances bound how far a candidate may drift from the baseline
// before Compare reports a regression. Percentages; zero values select
// the defaults. Latency tolerance is deliberately loose — CI machines
// vary — while the allocation tolerance is tight: allocs/op is
// deterministic on the serial path, so any real growth is a code change.
type Tolerances struct {
	LatencyPct float64 // default 75
	AllocsPct  float64 // default 20
}

func (t *Tolerances) defaults() {
	if t.LatencyPct <= 0 {
		t.LatencyPct = 75
	}
	if t.AllocsPct <= 0 {
		t.AllocsPct = 20
	}
}

// Regression is one gate violation.
type Regression struct {
	Field    string
	Base     float64
	Cand     float64
	DeltaPct float64
	LimitPct float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f -> %.0f (%+.1f%%, limit %.0f%%)", r.Field, r.Base, r.Cand, r.DeltaPct, r.LimitPct)
}

// Compare gates cand against base. It returns the list of regressions
// (empty means the gate passes) or an error when either snapshot is
// unusable — wrong schema, or a compared field that is zero or missing,
// which would otherwise make the gate silently vacuous.
func Compare(base, cand *Trajectory, tol Tolerances) ([]Regression, error) {
	tol.defaults()
	if base.Schema != Schema {
		return nil, fmt.Errorf("perf: baseline schema %q, want %q", base.Schema, Schema)
	}
	if cand.Schema != Schema {
		return nil, fmt.Errorf("perf: candidate schema %q, want %q", cand.Schema, Schema)
	}
	type field struct {
		name       string
		base, cand float64
		limit      float64
		// lowerIsBad flips the comparison for throughput-like fields.
		lowerIsBad bool
	}
	fields := []field{
		{"cold_rewrite_ns", base.ColdRewriteNs, cand.ColdRewriteNs, tol.LatencyPct, false},
		{"warm_patch_ns", base.WarmPatchNs, cand.WarmPatchNs, tol.LatencyPct, false},
		{"delta_rewrite_ns", base.DeltaRewriteNs, cand.DeltaRewriteNs, tol.LatencyPct, false},
		{"service_p50_ns", base.ServiceP50Ns, cand.ServiceP50Ns, tol.LatencyPct, false},
		{"service_p99_ns", base.ServiceP99Ns, cand.ServiceP99Ns, tol.LatencyPct, false},
		{"emit_throughput_mbps", base.EmitThroughputMBps, cand.EmitThroughputMBps, tol.LatencyPct, true},
		{"batch_items_per_sec", base.BatchItemsPerSec, cand.BatchItemsPerSec, tol.LatencyPct, true},
		{"warm_patch_allocs_per_op", base.WarmPatchAllocsPerOp, cand.WarmPatchAllocsPerOp, tol.AllocsPct, false},
		{"warm_analyze_allocs_per_op", base.WarmAnalyzeAllocsPerOp, cand.WarmAnalyzeAllocsPerOp, tol.AllocsPct, false},
		{"delta_analyze_allocs_per_op", base.DeltaAnalyzeAllocsPerOp, cand.DeltaAnalyzeAllocsPerOp, tol.AllocsPct, false},
		{"profile_guided_overhead_ratio", base.ProfileGuidedOverheadRatio, cand.ProfileGuidedOverheadRatio, tol.LatencyPct, false},
		// Acceptance counts are deterministic — no machine variance to
		// tolerate — so the evidence layer's coverage ratio is gated
		// tight: losing even one accepted build fails the gate.
		{"funcptr_coverage_ratio", base.FuncPtrCoverageRatio, cand.FuncPtrCoverageRatio, 1, true},
	}
	// Every per-workload guided-overhead ratio in the baseline is gated
	// too: a missing candidate entry means the measurement was dropped,
	// which must fail rather than silently shrink the gate's coverage.
	// Keys are sorted so the regression report's order is stable.
	workloads := make([]string, 0, len(base.ProfileWorkloads))
	for name := range base.ProfileWorkloads {
		workloads = append(workloads, name)
	}
	sort.Strings(workloads)
	for _, name := range workloads {
		c, ok := cand.ProfileWorkloads[name]
		if !ok {
			return nil, fmt.Errorf("perf: candidate is missing profile workload %s", name)
		}
		fields = append(fields, field{"profile_workloads/" + name + "/guided_overhead_ratio",
			base.ProfileWorkloads[name].Ratio, c.Ratio, tol.LatencyPct, false})
	}
	var regs []Regression
	for _, f := range fields {
		if f.base <= 0 {
			return nil, fmt.Errorf("perf: baseline field %s is zero or missing — re-record the baseline", f.name)
		}
		if f.cand <= 0 {
			return nil, fmt.Errorf("perf: candidate field %s is zero or missing", f.name)
		}
		deltaPct := (f.cand/f.base - 1) * 100
		bad := deltaPct > f.limit
		if f.lowerIsBad {
			bad = deltaPct < -f.limit
		}
		if bad {
			regs = append(regs, Regression{Field: f.name, Base: f.base, Cand: f.cand, DeltaPct: deltaPct, LimitPct: f.limit})
		}
	}
	return regs, nil
}

// Load reads a trajectory snapshot from path.
func Load(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &t, nil
}

// Save writes the snapshot to path as indented JSON.
func (t *Trajectory) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
