package perf

import (
	"path/filepath"
	"reflect"
	"testing"
)

func sample() *Trajectory {
	return &Trajectory{
		Schema:                     Schema,
		PR:                         6,
		GOOS:                       "linux",
		GOARCH:                     "amd64",
		CPUs:                       8,
		Workload:                   "libxul-x64-jt-blockentry",
		ColdRewriteNs:              30e6,
		WarmPatchNs:                7e6,
		DeltaRewriteNs:             12e6,
		EmitThroughputMBps:         120,
		WarmPatchAllocsPerOp:       4000,
		WarmPatchBytesPerOp:        1.6e6,
		WarmAnalyzeAllocsPerOp:     60000,
		DeltaAnalyzeAllocsPerOp:    20000,
		ServiceP50Ns:               9e6,
		ServiceP99Ns:               25e6,
		ServiceRequests:            64,
		BatchItemsPerSec:           40,
		BatchItems:                 12,
		ProfileGuidedOverheadRatio: 0.31,
		FuncPtrCoverageRatio:       1.5,
		ProfileWorkloads: map[string]ProfileStats{
			"docker-x64":           {HotFuncs: 22, VariantFuncs: 22, Ratio: 0.24},
			"libcuda-stripped-x64": {HotFuncs: 80, VariantFuncs: 80, Ratio: 0.44},
			"spec-perlbench-a64":   {HotFuncs: 11, VariantFuncs: 11, Ratio: 0.30},
		},
		AllocBudgets: map[string]float64{
			BudgetWarmPatch:    5200,
			BudgetWarmAnalyze:  78000,
			BudgetDeltaAnalyze: 26000,
		},
	}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	base, cand := sample(), sample()
	cand.WarmPatchNs *= 1.5          // within the 75% latency tolerance
	cand.WarmPatchAllocsPerOp *= 1.1 // within the 20% allocs tolerance
	regs, err := Compare(base, cand, Tolerances{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	cases := []struct {
		name  string
		mutil func(*Trajectory)
		field string
	}{
		{"latency", func(c *Trajectory) { c.WarmPatchNs *= 2 }, "warm_patch_ns"},
		{"allocs", func(c *Trajectory) { c.WarmPatchAllocsPerOp *= 1.5 }, "warm_patch_allocs_per_op"},
		{"tail", func(c *Trajectory) { c.ServiceP99Ns *= 3 }, "service_p99_ns"},
		{"throughput-drop", func(c *Trajectory) { c.EmitThroughputMBps /= 10 }, "emit_throughput_mbps"},
		{"batch-throughput-drop", func(c *Trajectory) { c.BatchItemsPerSec /= 10 }, "batch_items_per_sec"},
		{"guided-ratio", func(c *Trajectory) { c.ProfileGuidedOverheadRatio *= 2 }, "profile_guided_overhead_ratio"},
		{"funcptr-coverage-drop", func(c *Trajectory) { c.FuncPtrCoverageRatio = 1.25 }, "funcptr_coverage_ratio"},
		{"workload-guided-ratio", func(c *Trajectory) {
			st := c.ProfileWorkloads["docker-x64"]
			st.Ratio *= 2
			c.ProfileWorkloads["docker-x64"] = st
		}, "profile_workloads/docker-x64/guided_overhead_ratio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, cand := sample(), sample()
			tc.mutil(cand)
			regs, err := Compare(base, cand, Tolerances{})
			if err != nil {
				t.Fatalf("Compare: %v", err)
			}
			if len(regs) != 1 || regs[0].Field != tc.field {
				t.Fatalf("want one regression on %s, got %v", tc.field, regs)
			}
		})
	}
}

func TestCompareImprovementIsNotRegression(t *testing.T) {
	base, cand := sample(), sample()
	cand.WarmPatchNs /= 4
	cand.WarmPatchAllocsPerOp /= 4
	cand.EmitThroughputMBps *= 4
	regs, err := Compare(base, cand, Tolerances{})
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareRejectsZeroOrMissingFields(t *testing.T) {
	base, cand := sample(), sample()
	base.DeltaRewriteNs = 0
	if _, err := Compare(base, cand, Tolerances{}); err == nil {
		t.Fatal("zero baseline field must error, not silently pass")
	}
	base, cand = sample(), sample()
	cand.ServiceP50Ns = 0
	if _, err := Compare(base, cand, Tolerances{}); err == nil {
		t.Fatal("zero candidate field must error")
	}
	base, cand = sample(), sample()
	delete(cand.ProfileWorkloads, "spec-perlbench-a64")
	if _, err := Compare(base, cand, Tolerances{}); err == nil {
		t.Fatal("dropped profile workload must error, not shrink the gate")
	}
	base, cand = sample(), sample()
	st := base.ProfileWorkloads["docker-x64"]
	st.Ratio = 0
	base.ProfileWorkloads["docker-x64"] = st
	if _, err := Compare(base, cand, Tolerances{}); err == nil {
		t.Fatal("zero baseline workload ratio must error")
	}
}

func TestCompareRejectsBadSchema(t *testing.T) {
	base, cand := sample(), sample()
	base.Schema = "icfgpatch-bench/v0"
	if _, err := Compare(base, cand, Tolerances{}); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := sample()
	if err := want.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestRecordSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("recording is slow")
	}
	tr, err := Record(RecordOptions{PR: 6, Iters: 1, AllocRuns: 1, ServiceRequests: 8})
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	// Every gated field must be populated — Compare refuses zeros, so a
	// snapshot with holes would break the gate for the next PR.
	if _, err := Compare(tr, tr, Tolerances{}); err != nil {
		t.Fatalf("self-compare of a fresh recording failed: %v", err)
	}
	for _, k := range []string{BudgetWarmPatch, BudgetWarmAnalyze, BudgetDeltaAnalyze} {
		if tr.AllocBudgets[k] <= 0 {
			t.Fatalf("budget %s missing from recording", k)
		}
	}
	if tr.ServiceRequests != 8 {
		t.Fatalf("service requests = %d, want 8", tr.ServiceRequests)
	}
}
