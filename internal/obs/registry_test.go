package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestCounterVecText(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("icfg_requests_total", "requests by outcome", "outcome")
	v.With("ok").Add(3)
	v.With("error").Inc()
	if v.Value("ok") != 3 || v.Value("error") != 1 || v.Value("absent") != 0 {
		t.Fatal("counter values wrong")
	}
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP icfg_requests_total requests by outcome",
		"# TYPE icfg_requests_total counter",
		`icfg_requests_total{outcome="error"} 1`,
		`icfg_requests_total{outcome="ok"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGaugeFuncScrapedLive(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.GaugeFunc("icfg_queue_depth", "queued requests", "", "", func() float64 { return n })
	n = 7
	if !strings.Contains(scrape(t, r), "icfg_queue_depth 7") {
		t.Fatal("gauge not evaluated at scrape time")
	}
	n = 9
	if !strings.Contains(scrape(t, r), "icfg_queue_depth 9") {
		t.Fatal("gauge stale on second scrape")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("icfg_stage_seconds", "stage latency", "stage", []float64{0.01, 0.1, 1})
	h := hv.With("layout")
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count %d", h.Count())
	}
	if s := h.Sum(); s < 5.5 || s > 5.6 {
		t.Fatalf("sum %v", s)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`icfg_stage_seconds_bucket{stage="layout",le="0.01"} 1`,
		`icfg_stage_seconds_bucket{stage="layout",le="0.1"} 2`,
		`icfg_stage_seconds_bucket{stage="layout",le="1"} 3`,
		`icfg_stage_seconds_bucket{stage="layout",le="+Inf"} 4`,
		`icfg_stage_seconds_count{stage="layout"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReRegistrationSharesFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("icfg_total", "t")
	b := r.Counter("icfg_total", "t")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatal("re-registration created a second series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type-conflicting re-registration did not panic")
		}
	}()
	r.GaugeFunc("icfg_total", "t", "", "", func() float64 { return 0 })
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []float64{1})
	c := r.Counter("c", "c")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("lost observations: %d %d", h.Count(), c.Value())
	}
	if s := h.Sum(); s != 4000 {
		t.Fatalf("sum %v", s)
	}
}
