// Package obs is the toolkit's observability layer: a lightweight span
// tracer for the rewrite pipeline and a dependency-free metrics registry
// rendered in the Prometheus text exposition format.
//
// Both halves are built for the rewrite daemon's constraints. Spans cost
// nothing when disabled: every method is nil-receiver safe, so the
// pipeline threads a *Trace through unconditionally and callers that
// want no tracing pass nil. The registry serves the same counters the
// service already keeps (request outcomes, cache paths, store
// hit/miss/eviction) plus per-stage latency histograms, so a running
// icfg-serve can be read from the outside — the observable-failure-mode
// requirement the binary-rewriting comparison literature keeps arriving
// at: a rewriter that degrades gracefully but silently is
// indistinguishable from one that is broken.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span: a counter, a cache path,
// a size — whatever explains where the span's time went.
type Attr struct {
	Key string
	Val string
}

// Span is one timed region of a request, with children for the regions
// it contains. A nil *Span is a valid no-op span: every method returns
// without doing work, so instrumented code never branches on "is
// tracing enabled".
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	running  bool
	attrs    []Attr
	children []*Span
}

// NewTrace starts a root span for one request or run.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now(), running: true}
}

// Start begins a child span. It returns nil when s is nil.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), running: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End finishes the span, fixing its duration. Ending twice keeps the
// first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.running {
		s.dur = time.Since(s.start)
		s.running = false
	}
	s.mu.Unlock()
}

// Record attaches an already-measured child span, the graft point for
// laps measured elsewhere (core.Metrics stage timings). It returns nil
// when s is nil.
func (s *Span) Record(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, dur: d}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	s.SetAttr(key, fmt.Sprintf("%d", v))
}

// Dur returns the span's duration; for a still-running span, the time
// since it started.
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return time.Since(s.start)
	}
	return s.dur
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Find returns the first child span (depth-first) with the given name,
// or nil — a test convenience.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		if c.Name() == name {
			return c
		}
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Render formats the span tree as an indented report, one span per
// line: name, duration, then attrs in insertion order.
func (s *Span) Render() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	name, dur, running := s.name, s.dur, s.running
	if running {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	fmt.Fprintf(b, "%s%s %s", strings.Repeat("  ", depth), name, dur.Round(time.Microsecond))
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Val)
	}
	if running {
		b.WriteString(" (running)")
	}
	b.WriteString("\n")
	for _, c := range kids {
		c.render(b, depth+1)
	}
}

// sortedKeys returns m's keys sorted, shared by the registry renderers.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
