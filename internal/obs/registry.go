package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). It is safe for concurrent
// registration and observation; output is deterministic (families in
// registration order, series sorted by label value).
//
// The implementation is deliberately small: the daemon needs counters,
// gauges read at scrape time, and fixed-bucket histograms — nothing
// else — and the container must not grow dependencies.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byN  map[string]*family
}

// family is one named metric with its series, one per label value.
type family struct {
	name, help, typ string
	label           string // label key; "" for a single unlabeled series

	mu     sync.Mutex
	series map[string]any // label value -> *Counter | *Histogram | func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: map[string]*family{}}
}

func (r *Registry) family(name, help, typ, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byN[name]; ok {
		if f.typ != typ || f.label != label {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s{%s}, was %s{%s}", name, typ, label, f.typ, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, label: label, series: map[string]any{}}
	r.fams = append(r.fams, f)
	r.byN[name] = f
	return f
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	f *family
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help, "").With("")
}

// CounterVec registers (or returns) a counter family with one label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.family(name, help, "counter", label)}
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.series[value]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.series[value] = c
	return c
}

// Snapshot returns every label value's current count.
func (v *CounterVec) Snapshot() map[string]uint64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	out := make(map[string]uint64, len(v.f.series))
	for val, c := range v.f.series {
		out[val] = c.(*Counter).Value()
	}
	return out
}

// Value returns the count for one label value (0 if never observed).
func (v *CounterVec) Value(value string) uint64 {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.series[value]; ok {
		return c.(*Counter).Value()
	}
	return 0
}

// GaugeFunc registers a gauge series evaluated at scrape time. label
// and value may be empty for an unlabeled gauge; calling again with the
// same name and a new value adds a series to the family.
func (r *Registry) GaugeFunc(name, help, label, value string, fn func() float64) {
	f := r.family(name, help, "gauge", label)
	f.mu.Lock()
	f.series[value] = fn
	f.mu.Unlock()
}

// DefBuckets are the default latency buckets, in seconds: the rewrite
// pipeline's stages span ~100µs (warm patch stages on small binaries)
// to whole seconds (cold analysis of the libxul-like workload).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a fixed-bucket histogram of float64 observations.
type Histogram struct {
	buckets []float64 // upper bounds, sorted; +Inf implied
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Histogram{buckets: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// Histogram registers (or returns) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, "", buckets).With("")
}

// HistogramVec registers (or returns) a histogram family with one label
// key. A nil bucket slice selects DefBuckets.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.family(name, help, "histogram", label), buckets: buckets}
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok := v.f.series[value]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.buckets)
	v.f.series[value] = h
	return h
}

// WriteText renders every family in the Prometheus text format.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.writeText(w)
	}
}

func (f *family) writeText(w io.Writer) {
	f.mu.Lock()
	series := make(map[string]any, len(f.series))
	for k, v := range f.series {
		series[k] = v
	}
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	for _, val := range sortedKeys(series) {
		switch s := series[val].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labelStr(f.label, val), s.Value())
		case func() float64:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelStr(f.label, val), fmtFloat(s()))
		case *Histogram:
			cum := uint64(0)
			for i, ub := range s.buckets {
				cum += s.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStrLe(f.label, val, fmtFloat(ub)), cum)
			}
			cum += s.counts[len(s.buckets)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelStrLe(f.label, val, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelStr(f.label, val), fmtFloat(s.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelStr(f.label, val), s.count.Load())
		}
	}
}

func labelStr(key, val string) string {
	if key == "" {
		return ""
	}
	return fmt.Sprintf("{%s=%q}", key, val)
}

func labelStrLe(key, val, le string) string {
	if key == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("{%s=%q,le=%q}", key, val, le)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an HTTP handler serving the registry as a /metrics
// endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		r.WriteText(&b)
		io.WriteString(w, b.String())
	})
}
