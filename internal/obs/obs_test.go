package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.End()
	s.SetAttr("k", "v")
	s.SetInt("n", 3)
	if s.Record("lap", time.Millisecond) != nil {
		t.Fatal("nil span recorded a lap")
	}
	if s.Render() != "" || s.Dur() != 0 || s.Name() != "" || s.Find("x") != nil {
		t.Fatal("nil span leaked state")
	}
}

func TestSpanTree(t *testing.T) {
	root := NewTrace("request")
	root.SetAttr("path", "cold")
	an := root.Start("analyze")
	an.Record("cfg", 2*time.Millisecond)
	an.Record("funcptr-analysis", time.Millisecond)
	an.End()
	pt := root.Start("patch")
	pt.SetInt("trampolines", 12)
	pt.End()
	root.End()

	if root.Find("cfg") == nil || root.Find("patch") == nil {
		t.Fatal("Find missed recorded spans")
	}
	if root.Find("cfg").Dur() != 2*time.Millisecond {
		t.Fatalf("recorded lap duration %v", root.Find("cfg").Dur())
	}
	out := root.Render()
	for _, want := range []string{"request", "path=cold", "  analyze", "    cfg 2ms", "  patch", "trampolines=12"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(running)") {
		t.Errorf("ended spans render as running:\n%s", out)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("r")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Start("c")
			c.SetAttr("k", "v")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := strings.Count(root.Render(), "\n"); got != 16 {
		t.Fatalf("expected 16 children, rendered %d lines after root", got)
	}
}

func TestEndTwiceKeepsFirstDuration(t *testing.T) {
	s := NewTrace("x")
	s.End()
	d := s.Dur()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Dur() != d {
		t.Fatal("second End changed the duration")
	}
}
