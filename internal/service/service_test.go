package service

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/store"
	"icfgpatch/internal/workload"
)

func blockEmpty() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty}
}

// testProfile is a mid-size deterministic workload: large enough that a
// rewrite is real work, small enough for tight test loops.
func testProfile() workload.Profile {
	return workload.Profile{
		Name: "served", Seed: 7, Lang: "c++",
		Funcs: 24, SwitchFrac: 0.35, SpillFrac: 0.2,
		TinyFrac: 0.1, Exceptions: true, StackCalls: true, Iters: 8,
	}
}

func testBinaryRaw(t testing.TB) []byte {
	t.Helper()
	p, err := workload.Generate(arch.X64, false, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	return p.Binary.Marshal()
}

// TestServe32ConcurrentClients hammers one served binary from 32
// clients. Every response must be byte-identical to a cold local
// Rewrite of the same request, and the analysis store must have
// single-flighted: one miss, everything else warm.
func TestServe32ConcurrentClients(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Two request shapes alternate, sharing one analysis.
	var names []string
	for _, sym := range img.FuncSymbols() {
		names = append(names, sym.Name)
	}
	optsFull := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	optsPart := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	optsPart.Request.Funcs = names[:len(names)/2]
	wantFull, err := core.Rewrite(img, optsFull)
	if err != nil {
		t.Fatal(err)
	}
	wantPart, err := core.Rewrite(img, optsPart)
	if err != nil {
		t.Fatal(err)
	}
	want := map[bool][]byte{true: wantFull.Binary.Marshal(), false: wantPart.Binary.Marshal()}

	s := New(Config{Workers: 4, QueueDepth: 256, AnalysisEntries: 4})
	defer s.Shutdown(context.Background())

	const clients, perClient = 32, 4
	var wg sync.WaitGroup
	var analysisHits atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				full := (c+i)%2 == 0
				opts := optsPart
				if full {
					opts = optsFull
				}
				resp, err := s.Submit(context.Background(), Request{Raw: raw, Opts: opts})
				if err != nil {
					t.Errorf("client %d req %d: %v", c, i, err)
					return
				}
				if !bytes.Equal(resp.Image, want[full]) {
					t.Errorf("client %d req %d: served image differs from local rewrite", c, i)
					return
				}
				if resp.AnalysisHit {
					analysisHits.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if st.Served != clients*perClient {
		t.Fatalf("served = %d, want %d", st.Served, clients*perClient)
	}
	if st.Analyses.Misses != 1 {
		t.Fatalf("analysis store misses = %d, want 1 (single-flight)", st.Analyses.Misses)
	}
	if got := analysisHits.Load(); got != clients*perClient-1 {
		t.Fatalf("analysis hits = %d, want %d", got, clients*perClient-1)
	}
}

// TestQueueFullRejection saturates a one-worker, depth-one queue and
// checks the backpressure path rejects cleanly while accepted requests
// still complete. The worker is wedged deterministically on a gated
// analysis build, so the saturated state is observable, not a race.
func TestQueueFullRejection(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	dequeued := make(chan struct{}, 8)
	testHookDequeue = func() { dequeued <- struct{}{} }
	defer func() { testHookDequeue = nil }()

	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Shutdown(context.Background())

	key := AnalysisKey{Hash: store.Hash(raw), Arch: img.Arch, Mode: core.ModeJT}
	started := make(chan struct{})
	gate := make(chan struct{})
	go s.stores.Analyses.GetOrCreate(key, func() (*core.Analysis, error) {
		close(started)
		<-gate
		return core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
	})
	<-started

	// Job A occupies the worker — the dequeue hook confirms the worker
	// holds it (and then wedges on the gated entry) — and job B fills
	// the queue's single slot.
	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	results := make(chan error, 2)
	submit := func() {
		go func() {
			_, err := s.Submit(context.Background(), Request{Raw: raw, Opts: opts})
			results <- err
		}()
	}
	submit()
	select {
	case <-dequeued:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first job")
	}
	submit()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d queued", s.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}

	// Worker busy + queue full: the next submission must be rejected
	// immediately with the backpressure error.
	if _, err := s.Submit(context.Background(), Request{Raw: raw, Opts: opts}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated submit: err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", st.Rejected)
	}

	// The two accepted requests still complete once the worker is
	// released.
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("accepted request %d failed: %v", i, err)
		}
	}
	if st := s.Stats(); st.Served != 2 {
		t.Fatalf("served = %d, want 2", st.Served)
	}
}

// TestGracefulShutdown verifies the drain contract deterministically:
// the in-flight request completes, queued requests get ErrShuttingDown,
// later submissions are rejected, and Shutdown itself returns. The
// single worker is wedged via the analysis store's single-flight — the
// test starts a gated build for the job's key, so the worker's
// GetOrCreate blocks on the in-flight entry until the gate opens.
func TestGracefulShutdown(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, QueueDepth: 8})

	key := AnalysisKey{Hash: store.Hash(raw), Arch: img.Arch, Mode: core.ModeJT}
	started := make(chan struct{})
	gate := make(chan struct{})
	buildDone := make(chan struct{})
	go func() {
		defer close(buildDone)
		_, _, err := s.stores.Analyses.GetOrCreate(key, func() (*core.Analysis, error) {
			close(started)
			<-gate
			return core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
		})
		if err != nil {
			t.Errorf("gated build: %v", err)
		}
	}()
	<-started // the in-flight entry now owns the key

	const jobs = 4
	var wg sync.WaitGroup
	var okN, downN atomic.Uint64
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(context.Background(), Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}})
			switch {
			case err == nil:
				okN.Add(1)
			case errors.Is(err, ErrShuttingDown):
				downN.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}

	// Wait until the worker holds one job (blocked on the gated entry)
	// and the other three sit in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != jobs-1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never settled: %d queued", s.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if q := s.Stats().Queued; q != jobs-1 {
		t.Fatalf("queue not stable: %d queued", q)
	}

	// Shutdown must block on the wedged in-flight request; release the
	// gate only after the drain signal is closed, so the worker cannot
	// pick up a second job.
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(context.Background()) }()
	select {
	case <-s.pool.Drain():
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown never signalled the drain")
	}
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	<-buildDone

	if okN.Load() != 1 {
		t.Fatalf("in-flight requests completed = %d, want 1", okN.Load())
	}
	if downN.Load() != jobs-1 {
		t.Fatalf("drained rejections = %d, want %d", downN.Load(), jobs-1)
	}
	if _, err := s.Submit(context.Background(), Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit: %v", err)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRequestTimeout exercises the per-request deadline at the
// processing seams.
func TestRequestTimeout(t *testing.T) {
	raw := testBinaryRaw(t)
	s := New(Config{Workers: 1, Timeout: time.Nanosecond})
	defer s.Shutdown(context.Background())
	_, err := s.Submit(context.Background(), Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("failed counter = %d", st.Failed)
	}
}

// TestCallerCancellation verifies a dead caller context is honoured.
func TestCallerCancellation(t *testing.T) {
	raw := testBinaryRaw(t)
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Submit(ctx, Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestHTTPRoundTrip drives the full wire path: client → HTTP → queue →
// store → patch → framed reply, twice, checking the second response is
// a result-cache hit with identical bytes.
func TestHTTPRoundTrip(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty(), Verify: true}
	local, err := core.Rewrite(img, opts)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, ResultEntries: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	image1, reply1, err := cl.Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(image1, local.Binary.Marshal()) {
		t.Fatal("served image differs from local rewrite")
	}
	if reply1.ResultHit {
		t.Fatal("first request cannot be a result hit")
	}
	if reply1.Stats.InstrumentedFuncs != local.Stats.InstrumentedFuncs {
		t.Fatalf("stats diverged: %d vs %d", reply1.Stats.InstrumentedFuncs, local.Stats.InstrumentedFuncs)
	}

	image2, reply2, err := cl.Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reply2.ResultHit {
		t.Fatal("second identical request missed the result cache")
	}
	if !bytes.Equal(image1, image2) {
		t.Fatal("cached image differs")
	}

	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.Results.Hits != 1 {
		t.Fatalf("server stats: %+v", st)
	}
}

// TestResultCachePersistence restarts the service over the same disk
// directory and expects the repeat request to be served from disk
// without any analysis or patch work.
func TestResultCachePersistence(t *testing.T) {
	dir := t.TempDir()
	raw := testBinaryRaw(t)
	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}

	s1 := New(Config{Workers: 1, ResultEntries: 4, Dir: dir})
	resp1, err := s1.Submit(context.Background(), Request{Raw: raw, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{Workers: 1, ResultEntries: 4, Dir: dir})
	defer s2.Shutdown(context.Background())
	resp2, err := s2.Submit(context.Background(), Request{Raw: raw, Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.ResultHit {
		t.Fatal("restarted service did not warm from disk")
	}
	if !bytes.Equal(resp1.Image, resp2.Image) {
		t.Fatal("persisted image differs")
	}
	if st := s2.Stats(); st.Analyses.Misses != 0 {
		t.Fatalf("disk hit still ran analysis: %s", st.Analyses)
	}
}

// TestOptionsWireRoundTrip checks EncodeOptions/ParseOptions are
// inverses over the CLI-expressible surface.
func TestOptionsWireRoundTrip(t *testing.T) {
	cases := []core.Options{
		{Mode: core.ModeDir, Request: blockEmpty()},
		{Mode: core.ModeJT, Request: instrument.Request{Where: instrument.FuncEntry, Payload: instrument.PayloadCounter, Funcs: []string{"f1", "f2"}}, Verify: true, InstrGap: 1 << 20},
		{Mode: core.ModeFuncPtr, Request: blockEmpty()},
	}
	for i, o := range cases {
		v, err := EncodeOptions(o)
		if err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		got, err := ParseOptions(v)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		if got.Mode != o.Mode || got.Verify != o.Verify || got.InstrGap != o.InstrGap ||
			got.Request.Where != o.Request.Where || got.Request.Payload != o.Request.Payload ||
			len(got.Request.Funcs) != len(o.Request.Funcs) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, o, got)
		}
	}
	if _, err := EncodeOptions(core.Options{Variant: core.Variant{NoTrampolines: true}}); err == nil {
		t.Fatal("variants must not be wire-encodable")
	}
}
