// Service metrics: every counter the daemon already keeps, plus the
// per-stage latency distributions, rendered by internal/obs as a
// Prometheus /metrics endpoint. The registry is per-Server so tests can
// assert on isolated counters; gauges read live server state at scrape
// time.
package service

import (
	"context"
	"errors"

	"icfgpatch/internal/obs"
	"icfgpatch/internal/store"
	"icfgpatch/internal/workload"
)

// Request outcome labels for icfg_requests_total. Every submission ends
// in exactly one of them.
const (
	outcomeOK        = "ok"       // rewrite served
	outcomeError     = "error"    // rewrite failed
	outcomeTimeout   = "timeout"  // server-side deadline fired
	outcomeCanceled  = "canceled" // client gave up (disconnect, cancel)
	outcomeQueueFull = "queue_full"
	outcomeShutdown  = "shutdown"
)

// Cache path labels for icfg_cache_path_total: how much of the pipeline
// a served request actually ran.
const (
	pathCold         = "cold"          // full Analyze + Patch
	pathDelta        = "delta"         // fresh analysis assembled partly from reused function units
	pathWarmAnalysis = "warm-analysis" // cached analysis, per-request Patch
	pathResultCache  = "result-cache"  // byte-identical replay, no patching
)

// metrics is one Server's instrumentation: outcome/cache-path counters,
// latency histograms, and scrape-time gauges over the queue and stores.
type metrics struct {
	reg       *obs.Registry
	requests  *obs.CounterVec   // by outcome
	cachePath *obs.CounterVec   // by cache path, served requests only
	stage     *obs.HistogramVec // by pipeline stage, seconds
	request   *obs.Histogram    // end-to-end processing, seconds
	queueWait *obs.Histogram    // enqueue -> dequeue, seconds
	// funcsReused / funcsRecomputed accumulate the delta engine's work
	// split over every analysis freshly built by this server (cached
	// analyses did no function-level work and contribute nothing).
	funcsReused     *obs.Counter
	funcsRecomputed *obs.Counter
	// patchReused / patchReencoded accumulate the emit stage's work split
	// over every patch this server ran (result-cache replays ran no patch
	// and contribute nothing).
	patchReused    *obs.Counter
	patchReencoded *obs.Counter
}

func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:       reg,
		requests:  reg.CounterVec("icfg_requests_total", "rewrite requests by outcome", "outcome"),
		cachePath: reg.CounterVec("icfg_cache_path_total", "served requests by cache path", "path"),
		stage: reg.HistogramVec("icfg_stage_seconds",
			"per-stage pipeline latency (excludes result-cache replays)", "stage", nil),
		request:   reg.Histogram("icfg_request_seconds", "server-side processing time, excluding queueing", nil),
		queueWait: reg.Histogram("icfg_queue_wait_seconds", "time from enqueue to worker dequeue", nil),
		funcsReused: reg.Counter("icfg_analysis_funcs_reused_total",
			"function analysis units reused from the unit store"),
		funcsRecomputed: reg.Counter("icfg_analysis_funcs_recomputed_total",
			"function analysis units recomputed"),
		patchReused: reg.Counter("icfg_patch_funcs_reused_total",
			"function units whose emitted bytes were copied from the emit cache"),
		patchReencoded: reg.Counter("icfg_patch_funcs_reencoded_total",
			"function units rendered and encoded by the emit stage"),
	}
	reg.GaugeFunc("icfg_queue_depth", "requests waiting in the queue", "", "",
		func() float64 { return float64(s.pool.Queued()) })
	reg.GaugeFunc("icfg_queue_capacity", "request queue capacity", "", "",
		func() float64 { return float64(s.pool.QueueCap()) })
	reg.GaugeFunc("icfg_workers", "rewrite worker count", "", "",
		func() float64 { return float64(s.pool.Workers()) })
	reg.GaugeFunc("icfg_batch_queue_depth", "batch-lane requests waiting in the queue", "", "",
		func() float64 { return float64(s.pool.BatchQueued()) })
	reg.GaugeFunc("icfg_batch_queue_capacity", "batch-lane queue capacity", "", "",
		func() float64 { return float64(s.pool.BatchQueueCap()) })
	registerStoreGauges(reg, "analysis", func() store.Stats { return s.stores.Analyses.Stats() })
	if s.stores.Results != nil {
		registerStoreGauges(reg, "result", func() store.Stats { return s.stores.Results.Stats() })
	}
	if s.stores.Units != nil {
		units := s.stores.Units
		registerStoreGauges(reg, "funcs", func() store.Stats { return units.Stats() })
		reg.GaugeFunc("icfg_store_entries", "entries held by store", "store", "funcs",
			func() float64 { return float64(units.Len()) })
	}
	registerCacheGauges(reg, "icfg_workload_cache", "workload generation cache",
		func() store.Stats { return workload.CacheStats() })
	return m
}

// registerStoreGauges exposes one store's cumulative counters as a
// labeled series per store (analysis, result).
func registerStoreGauges(reg *obs.Registry, name string, stats func() store.Stats) {
	reg.GaugeFunc("icfg_store_hits", "cache hits by store", "store", name,
		func() float64 { return float64(stats().Hits) })
	reg.GaugeFunc("icfg_store_misses", "cache misses by store", "store", name,
		func() float64 { return float64(stats().Misses) })
	reg.GaugeFunc("icfg_store_evictions", "cache evictions by store", "store", name,
		func() float64 { return float64(stats().Evictions) })
	reg.GaugeFunc("icfg_store_disk_hits", "artifacts warmed from disk by store", "store", name,
		func() float64 { return float64(stats().DiskHits) })
	reg.GaugeFunc("icfg_store_peer_hits", "artifacts seeded from cluster peers by store", "store", name,
		func() float64 { return float64(stats().PeerHits) })
	reg.GaugeFunc("icfg_store_persist_failures", "failed disk persists by store", "store", name,
		func() float64 { return float64(stats().PersistFailures) })
}

// registerCacheGauges exposes a process-global cache's counters as
// unlabeled gauges under a distinct prefix.
func registerCacheGauges(reg *obs.Registry, prefix, what string, stats func() store.Stats) {
	reg.GaugeFunc(prefix+"_hits", what+" hits", "", "",
		func() float64 { return float64(stats().Hits) })
	reg.GaugeFunc(prefix+"_misses", what+" misses", "", "",
		func() float64 { return float64(stats().Misses) })
}

// observeServed records a successfully served response: its cache path,
// end-to-end latency, and — unless the response is a result-cache
// replay, whose stage timings belong to the run that produced it — the
// per-stage histogram samples.
func (m *metrics) observeServed(resp *Response) {
	m.requests.With(outcomeOK).Inc()
	m.cachePath.With(respPath(resp)).Inc()
	m.request.Observe(resp.Elapsed.Seconds())
	if resp.ResultHit {
		return
	}
	if !resp.AnalysisHit {
		// The analysis was freshly built for this request, so its delta
		// split is this request's function-level work.
		m.funcsReused.Add(uint64(resp.Metrics.FuncsReused))
		m.funcsRecomputed.Add(uint64(resp.Metrics.FuncsRecomputed))
	}
	// The patch stage ran for this request whether or not the analysis
	// was cached, so its emit split is always this request's work.
	m.patchReused.Add(uint64(resp.Metrics.PatchFuncsReused))
	m.patchReencoded.Add(uint64(resp.Metrics.PatchFuncsReencoded))
	for _, st := range resp.Metrics.Stages {
		m.stage.With(st.Name).Observe(st.Wall.Seconds())
	}
}

// CachePath classifies how this served response was produced — one of
// the icfg_cache_path_total labels (cold, delta, warm-analysis,
// result-cache). Exported for the batch subsystem's per-item events.
func (r *Response) CachePath() string { return respPath(r) }

// ReplyCachePath is CachePath over a remote rewrite's wire Reply, so a
// node relaying a batch item to the hash's owner reports the same
// vocabulary the owner would have.
func ReplyCachePath(rep *Reply) string {
	switch {
	case rep.ResultHit:
		return pathResultCache
	case rep.AnalysisHit:
		return pathWarmAnalysis
	case rep.FuncsReused > 0:
		return pathDelta
	default:
		return pathCold
	}
}

// respPath classifies how a served response was produced.
func respPath(resp *Response) string {
	switch {
	case resp.ResultHit:
		return pathResultCache
	case resp.AnalysisHit:
		return pathWarmAnalysis
	case resp.Metrics.FuncsReused > 0:
		// Freshly built, but assembled partly from reused function
		// units: the delta path.
		return pathDelta
	default:
		return pathCold
	}
}

// observeFailed classifies a processing failure into its outcome label.
// The deadline/cancel distinction matters operationally: timeouts point
// at the server (undersized Timeout, oversized binaries), cancellations
// at clients disconnecting.
func (m *metrics) observeFailed(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		m.requests.With(outcomeTimeout).Inc()
	case errors.Is(err, context.Canceled):
		m.requests.With(outcomeCanceled).Inc()
	default:
		m.requests.With(outcomeError).Inc()
	}
}

// traceFor starts the request's span tree when tracing is requested.
// It returns nil otherwise, which disables every downstream span at
// zero cost.
func traceFor(req *Request) *obs.Span {
	if !req.Trace {
		return nil
	}
	sp := obs.NewTrace("rewrite")
	sp.SetAttr("mode", req.Opts.Mode.String())
	return sp
}

// finishTrace closes the request's root span, stamps the cache path,
// and attaches the tree to the response.
func finishTrace(sp *obs.Span, resp *Response) {
	if sp == nil || resp == nil {
		return
	}
	sp.SetAttr("path", respPath(resp))
	sp.End()
	resp.Trace = sp
}
