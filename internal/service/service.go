// Package service turns the rewriter into a daemon: a bounded worker
// pool consuming a backpressured request queue, with warm-path caching
// through the content-addressed analysis store (internal/store).
//
// The paper's incremental pitch is operational here: rewriting the same
// binary with different instrumentation sets (the Diogenes §9 loop)
// pays for CFG, jump-table, and function-pointer analysis once per
// (binary hash, arch, mode, variant) and then runs only core.Patch per
// request. An optional second-level result cache — keyed additionally
// by the full instrumentation request, persistable to disk — serves
// byte-identical repeat requests without patching at all.
package service

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/store"
)

// Sentinel errors for the service's rejection paths.
var (
	// ErrQueueFull is returned by Submit when the request queue is at
	// capacity — the backpressure signal; clients should retry later.
	ErrQueueFull = errors.New("service: request queue full")
	// ErrShuttingDown is returned for requests submitted after Shutdown
	// began, and for queued requests drained during Shutdown.
	ErrShuttingDown = errors.New("service: shutting down")
)

// Config configures a Server. Zero values select the documented
// defaults.
type Config struct {
	// Workers is the rewrite worker count (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending request queue (default: 64).
	QueueDepth int
	// AnalysisEntries bounds the analysis store (default: 32 entries).
	AnalysisEntries int
	// FuncEntries bounds the function-unit store — the delta engine's
	// second, function-keyed cache level shared by every analysis the
	// server runs (default: 4096 function identities; -1 disables it).
	FuncEntries int
	// ResultEntries bounds the request-level result cache; 0 disables
	// it (analyses are still cached).
	ResultEntries int
	// PatchJobs bounds the worker pool each request's plan and emit
	// stages run on, for requests that do not set their own
	// core.Options.PatchJobs (default: 0, serial). The emitted bytes are
	// byte-identical whatever the value, so it is not part of any cache
	// identity.
	PatchJobs int
	// Dir enables on-disk persistence of the result cache.
	Dir string
	// Timeout bounds each request's processing time, measured from
	// dequeue; 0 means no server-side limit.
	Timeout time.Duration
}

// Request is one rewrite submission. Either Binary or Raw (a serialised
// binary) must be set; Hash is the content address and is computed when
// empty.
type Request struct {
	Raw    []byte
	Binary *bin.Binary
	Hash   string
	Opts   core.Options
	// Trace requests a span tree for this rewrite; the Response carries
	// it back. Tracing is per-request so one noisy client cannot slow
	// the pipeline for everyone.
	Trace bool
}

// Response is one completed rewrite.
type Response struct {
	// Image is the serialised rewritten binary.
	Image []byte
	Stats core.Stats
	// Metrics is the request's per-pass metrics. On an analysis-store
	// hit the analysis stages report the cached analysis's timings (see
	// core.Analysis.Metrics); on a result-cache hit the whole record is
	// the cached request's.
	Metrics core.Metrics
	// AnalysisHit reports that the patch ran against a cached analysis;
	// ResultHit that the entire response was served from the result
	// cache (AnalysisHit is false then — no analysis was consulted).
	AnalysisHit bool
	ResultHit   bool
	// Elapsed is the server-side processing time, excluding queueing.
	Elapsed time.Duration
	// Trace is the request's span tree (Request.Trace only). A
	// result-cache replay has no analyze/patch children — the root span
	// with path=result-cache is the whole story.
	Trace *obs.Span
}

// AnalysisKey addresses one cached analysis: the content hash of the
// serialised input binary plus everything core.Analyze consumes.
type AnalysisKey struct {
	Hash    string
	Arch    arch.Arch
	Mode    core.Mode
	Variant core.Variant
}

// cachedResult is the result cache's artifact (gob-encoded on disk).
type cachedResult struct {
	Image   []byte
	Stats   core.Stats
	Metrics core.Metrics
}

// ServerStats is a snapshot of the service's counters.
type ServerStats struct {
	Analyses store.Stats
	Results  store.Stats
	// Funcs is the function-unit store's counters: hits are per-function
	// reuses across binary versions, misses are recomputed functions.
	Funcs store.Stats
	// FuncsHeld is the number of distinct function identities currently
	// in the unit store.
	FuncsHeld int
	Served    uint64
	Failed    uint64
	Rejected  uint64
	Queued    int
	QueueCap  int
	Workers   int
	// Outcomes breaks every finished submission down by its
	// icfg_requests_total label (ok, error, timeout, canceled,
	// queue_full, shutdown).
	Outcomes map[string]uint64
}

// String renders the snapshot as a short multi-line report.
func (s ServerStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d queued=%d/%d served=%d failed=%d rejected=%d\n",
		s.Workers, s.Queued, s.QueueCap, s.Served, s.Failed, s.Rejected)
	fmt.Fprintf(&b, "analysis store: %s\n", s.Analyses)
	fmt.Fprintf(&b, "result store:   %s\n", s.Results)
	fmt.Fprintf(&b, "func-unit store: %s held=%d", s.Funcs, s.FuncsHeld)
	return b.String()
}

type job struct {
	ctx      context.Context
	req      *Request
	resp     *Response
	err      error
	done     chan struct{}
	enqueued time.Time
}

func (j *job) finish(resp *Response, err error) {
	j.resp, j.err = resp, err
	close(j.done)
}

// Server is the rewrite daemon. Create with New, submit with Submit
// (or the HTTP handler), stop with Shutdown.
type Server struct {
	cfg      Config
	analyses *store.Store[AnalysisKey, *core.Analysis]
	results  *store.Store[string, cachedResult] // nil when disabled
	units    *core.UnitStore                    // nil when disabled

	queue   chan *job
	drain   chan struct{}
	workers sync.WaitGroup

	stateMu  sync.RWMutex
	draining bool
	stopped  chan struct{}

	served, failed, rejected atomic.Uint64

	metrics *metrics
}

// New creates a Server and starts its workers.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.AnalysisEntries <= 0 {
		cfg.AnalysisEntries = 32
	}
	if cfg.FuncEntries == 0 {
		cfg.FuncEntries = 4096
	}
	s := &Server{
		cfg:      cfg,
		analyses: store.New(store.Config[AnalysisKey, *core.Analysis]{MaxEntries: cfg.AnalysisEntries}),
		queue:    make(chan *job, cfg.QueueDepth),
		drain:    make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	if cfg.FuncEntries > 0 {
		s.units = core.NewUnitStore(cfg.FuncEntries)
	}
	if cfg.ResultEntries > 0 {
		s.results = store.New(store.Config[string, cachedResult]{
			MaxEntries: cfg.ResultEntries,
			Dir:        cfg.Dir,
			KeyPath:    func(k string) string { return k + ".res" },
			Encode:     encodeResult,
			Decode:     decodeResult,
		})
	}
	s.metrics = newMetrics(s)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

func encodeResult(v cachedResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeResult(data []byte) (cachedResult, error) {
	var v cachedResult
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
	return v, err
}

// Submit enqueues one request and waits for its response. It returns
// ErrQueueFull immediately when the queue is at capacity (the caller
// owns the retry policy), ErrShuttingDown once Shutdown has begun, and
// ctx's error if the caller gives up first.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	if err := normalize(&req); err != nil {
		return nil, err
	}
	j := &job{ctx: ctx, req: &req, done: make(chan struct{}), enqueued: time.Now()}

	// The state lock pairs the draining check with the (non-blocking)
	// enqueue, so Shutdown's queue drain cannot miss a racing Submit.
	s.stateMu.RLock()
	if s.draining {
		s.stateMu.RUnlock()
		s.metrics.requests.With(outcomeShutdown).Inc()
		return nil, ErrShuttingDown
	}
	select {
	case s.queue <- j:
		s.stateMu.RUnlock()
	default:
		s.stateMu.RUnlock()
		s.rejected.Add(1)
		s.metrics.requests.With(outcomeQueueFull).Inc()
		return nil, ErrQueueFull
	}

	select {
	case <-j.done:
		return j.resp, j.err
	case <-ctx.Done():
		// The job stays queued; the worker that dequeues it observes the
		// dead context and abandons it at the first seam.
		return nil, ctx.Err()
	}
}

// normalize fills the request's derived fields.
func normalize(req *Request) error {
	if req.Binary == nil {
		if len(req.Raw) == 0 {
			return errors.New("service: request carries no binary")
		}
		b, err := bin.Unmarshal(req.Raw)
		if err != nil {
			return fmt.Errorf("service: bad request binary: %w", err)
		}
		req.Binary = b
	}
	if req.Hash == "" {
		if len(req.Raw) > 0 {
			req.Hash = store.Hash(req.Raw)
		} else {
			req.Hash = store.Hash(req.Binary.Marshal())
		}
	}
	return nil
}

// worker is one pool goroutine: it prefers the drain signal over new
// work, so Shutdown stops the pool after at most the in-flight request
// per worker.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case <-s.drain:
			return
		default:
		}
		select {
		case <-s.drain:
			return
		case j := <-s.queue:
			s.process(j)
		}
	}
}

// testHookDequeue, when non-nil, runs as a worker picks up a job —
// test instrumentation for deterministic scheduling assertions.
var testHookDequeue func()

// process runs one dequeued job under the server-side timeout.
func (s *Server) process(j *job) {
	if testHookDequeue != nil {
		testHookDequeue()
	}
	s.metrics.queueWait.Observe(time.Since(j.enqueued).Seconds())
	ctx := j.ctx
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	sp := traceFor(j.req)
	j.req.Opts.Trace = sp
	start := time.Now()
	resp, err := s.handle(ctx, j.req)
	if err != nil {
		s.failed.Add(1)
		s.metrics.observeFailed(err)
		j.finish(nil, err)
		return
	}
	resp.Elapsed = time.Since(start)
	finishTrace(sp, resp)
	s.served.Add(1)
	s.metrics.observeServed(resp)
	j.finish(resp, nil)
}

// handle serves one request through the cache hierarchy. A single
// retry absorbs the singleflight wart: when the building request's
// context dies mid-build, its waiters receive that foreign context
// error even though their own contexts are live — the failed build is
// not cached, so one retry rebuilds cleanly.
func (s *Server) handle(ctx context.Context, req *Request) (*Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := s.rewriteOnce(ctx, req)
		if err != nil && attempt == 0 && isContextErr(err) && ctx.Err() == nil {
			continue
		}
		return resp, err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// rewriteOnce is one pass through result cache → analysis cache →
// patch. The request's context is honoured at the phase seams: before
// starting, between Analyze and Patch, and before serialisation.
func (s *Server) rewriteOnce(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.results == nil {
		res, analysisHit, err := s.analyzeAndPatch(ctx, req)
		if err != nil {
			return nil, err
		}
		return &Response{Image: res.Image, Stats: res.Stats, Metrics: res.Metrics, AnalysisHit: analysisHit}, nil
	}
	var analysisHit bool
	key := resultFingerprint(req.Hash, req.Opts)
	v, hit, err := s.results.GetOrCreate(key, func() (cachedResult, error) {
		res, ah, err := s.analyzeAndPatch(ctx, req)
		if err != nil {
			return cachedResult{}, err
		}
		analysisHit = ah
		return *res, nil
	})
	if err != nil {
		return nil, err
	}
	if hit {
		return &Response{Image: v.Image, Stats: v.Stats, Metrics: v.Metrics, ResultHit: true}, nil
	}
	return &Response{Image: v.Image, Stats: v.Stats, Metrics: v.Metrics, AnalysisHit: analysisHit}, nil
}

// analyzeAndPatch is the warm path's seam: analysis through the
// content-addressed store (single-flighted across concurrent requests
// for the same binary), then a per-request patch.
func (s *Server) analyzeAndPatch(ctx context.Context, req *Request) (*cachedResult, bool, error) {
	key := AnalysisKey{Hash: req.Hash, Arch: req.Binary.Arch, Mode: req.Opts.Mode, Variant: req.Opts.Variant}
	an, hit, err := s.analyses.GetOrCreate(key, func() (*core.Analysis, error) {
		// The requester's trace rides into Analyze but is never part of
		// the analysis identity; waiters sharing this single-flighted
		// build see the cached result without the builder's spans.
		// The function-unit store turns an analysis-store miss for a new
		// version of a known binary into a delta: unchanged functions'
		// units are pulled instead of recomputed.
		return core.Analyze(req.Binary, core.AnalysisConfig{
			Mode: req.Opts.Mode, Variant: req.Opts.Variant, Trace: req.Opts.Trace,
			Units: s.units,
		})
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		req.Opts.Trace.Record("analyze", 0).SetAttr("cached", "true")
	}
	if err := ctx.Err(); err != nil {
		return nil, hit, err
	}
	opts := req.Opts
	if opts.PatchJobs == 0 {
		opts.PatchJobs = s.cfg.PatchJobs
	}
	res, err := an.Patch(opts)
	if err != nil {
		return nil, hit, err
	}
	if err := ctx.Err(); err != nil {
		return nil, hit, err
	}
	image := res.Binary.Marshal()
	// The serialised image is the response; the rewritten binary object
	// is dead, so its pooled emit buffers go back for the next request —
	// the steady-state loop the emit pool exists for.
	res.Recycle()
	return &cachedResult{Image: image, Stats: res.Stats, Metrics: res.Metrics}, hit, nil
}

// resultFingerprint extends the content address with the full
// instrumentation request, canonically rendered.
func resultFingerprint(hash string, o core.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|m%d|w%d|p%d|v%t|g%d|nr%t|%+v|f:%s|a:",
		hash, o.Mode, o.Request.Where, o.Request.Payload,
		o.Verify, o.InstrGap, o.NoRAMap, o.Variant,
		strings.Join(o.Request.Funcs, ","))
	for _, a := range o.Request.Addrs {
		fmt.Fprintf(&b, "%x,", a)
	}
	return store.Hash([]byte(b.String()))
}

// Shutdown drains the service: new submissions are rejected, workers
// finish their in-flight requests and stop, and every request still
// queued fails with ErrShuttingDown. It returns ctx's error if the
// in-flight work outlives the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stateMu.Lock()
	already := s.draining
	s.draining = true
	s.stateMu.Unlock()
	if already {
		select {
		case <-s.stopped:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	close(s.drain)

	finished := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return ctx.Err()
	}

	// With the state lock held once more, no Submit can still be
	// enqueueing: everything left in the queue is drainable.
	s.stateMu.Lock()
	for {
		select {
		case j := <-s.queue:
			s.rejected.Add(1)
			s.metrics.requests.With(outcomeShutdown).Inc()
			j.finish(nil, ErrShuttingDown)
			continue
		default:
		}
		break
	}
	s.stateMu.Unlock()
	close(s.stopped)
	return nil
}

// Stats snapshots the service counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Analyses:  s.analyses.Stats(),
		Funcs:     s.units.Stats(),
		FuncsHeld: s.units.Len(),
		Served:    s.served.Load(),
		Failed:    s.failed.Load(),
		Rejected:  s.rejected.Load(),
		Queued:    len(s.queue),
		QueueCap:  cap(s.queue),
		Workers:   s.cfg.Workers,
		Outcomes:  s.metrics.requests.Snapshot(),
	}
	if s.results != nil {
		st.Results = s.results.Stats()
	}
	return st
}
