// Package service turns the rewriter into a daemon. It is deliberately
// thin: three layers compose here and each lives in its own package —
//
//   - internal/service/sched — the bounded worker pool and
//     backpressured queue (knows nothing about rewriting);
//   - internal/service/storage — the analysis / function-unit / result
//     cache bundle and its key vocabulary;
//   - internal/service/wire — the /rewrite option encoding and reply
//     frame shared by servers, clients, gateways, and peers.
//
// The paper's incremental pitch is operational here: rewriting the same
// binary with different instrumentation sets (the Diogenes §9 loop)
// pays for CFG, jump-table, and function-pointer analysis once per
// (binary hash, arch, mode, variant) and then runs only core.Patch per
// request. An optional second-level result cache — keyed additionally
// by the full instrumentation request, persistable to disk — serves
// byte-identical repeat requests without patching at all.
//
// The cluster (internal/cluster) plugs into the storage layer through
// Stores and the WarmUnits hook — a node that misses its analysis store
// can fetch the owning peer's cached function units before recomputing
// — and into the transport layer through ServeRewrite and Registry,
// without touching scheduling.
package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/service/sched"
	"icfgpatch/internal/service/storage"
	"icfgpatch/internal/store"
)

// Sentinel errors for the service's rejection paths — the scheduling
// layer's sentinels re-exported so callers keep matching against the
// service package.
var (
	// ErrQueueFull is returned by Submit when the request queue is at
	// capacity — the backpressure signal; clients should retry later.
	ErrQueueFull = sched.ErrQueueFull
	// ErrShuttingDown is returned for requests submitted after Shutdown
	// began, and (wrapped) for queued requests drained during Shutdown.
	ErrShuttingDown = sched.ErrShuttingDown
)

// AnalysisKey addresses one cached analysis; see storage.AnalysisKey.
type AnalysisKey = storage.AnalysisKey

// Config configures a Server. Zero values select the documented
// defaults.
type Config struct {
	// Workers is the rewrite worker count (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending request queue (default: 64).
	QueueDepth int
	// BatchQueueDepth bounds the batch lane's queue (default: 256).
	// Batch items only run when no interactive request is queued, and
	// at most Workers-1 workers serve them, so fleet jobs cannot starve
	// interactive traffic.
	BatchQueueDepth int
	// MaxRequestBytes caps HTTP request bodies at the /rewrite and
	// /batch doors (0: wire.DefaultMaxBody; negative: unbounded). An
	// over-cap POST gets 413 instead of being read into memory whole.
	MaxRequestBytes int64
	// AnalysisEntries bounds the analysis store (default: 32 entries).
	AnalysisEntries int
	// FuncEntries bounds the function-unit store — the delta engine's
	// second, function-keyed cache level shared by every analysis the
	// server runs (default: 4096 function identities; -1 disables it).
	FuncEntries int
	// ResultEntries bounds the request-level result cache; 0 disables
	// it (analyses are still cached).
	ResultEntries int
	// PatchJobs bounds the worker pool each request's plan and emit
	// stages run on, for requests that do not set their own
	// core.Options.PatchJobs (default: 0, serial). The emitted bytes are
	// byte-identical whatever the value, so it is not part of any cache
	// identity.
	PatchJobs int
	// Dir enables on-disk persistence of the result cache.
	Dir string
	// Timeout bounds each request's processing time, measured from
	// dequeue; 0 means no server-side limit.
	Timeout time.Duration
	// WarmUnits, when set, runs on an analysis-store miss before
	// core.Analyze, with the missing key. The cluster installs the peer
	// warm path here: fetch the owning peer's cached function units and
	// seed them into the unit store so the analysis becomes a pure delta.
	// The hook must be best-effort — failures mean a cold analysis, not
	// a failed request. SetWarmUnits installs it after construction.
	WarmUnits func(ctx context.Context, key AnalysisKey)
}

// Request is one rewrite submission. Either Binary or Raw (a serialised
// binary) must be set; Hash is the content address and is computed when
// empty.
type Request struct {
	Raw    []byte
	Binary *bin.Binary
	Hash   string
	Opts   core.Options
	// Trace requests a span tree for this rewrite; the Response carries
	// it back. Tracing is per-request so one noisy client cannot slow
	// the pipeline for everyone.
	Trace bool
}

// Response is one completed rewrite.
type Response struct {
	// Image is the serialised rewritten binary.
	Image []byte
	Stats core.Stats
	// Metrics is the request's per-pass metrics. On an analysis-store
	// hit the analysis stages report the cached analysis's timings (see
	// core.Analysis.Metrics); on a result-cache hit the whole record is
	// the cached request's.
	Metrics core.Metrics
	// AnalysisHit reports that the patch ran against a cached analysis;
	// ResultHit that the entire response was served from the result
	// cache (AnalysisHit is false then — no analysis was consulted).
	AnalysisHit bool
	ResultHit   bool
	// Elapsed is the server-side processing time, excluding queueing.
	Elapsed time.Duration
	// Trace is the request's span tree (Request.Trace only). A
	// result-cache replay has no analyze/patch children — the root span
	// with path=result-cache is the whole story.
	Trace *obs.Span
}

// ServerStats is a snapshot of the service's counters.
type ServerStats struct {
	Analyses store.Stats
	Results  store.Stats
	// Funcs is the function-unit store's counters: hits are per-function
	// reuses across binary versions, misses are recomputed functions,
	// peer-hits are units seeded from cluster peers.
	Funcs store.Stats
	// FuncsHeld is the number of distinct function identities currently
	// in the unit store.
	FuncsHeld int
	Served    uint64
	Failed    uint64
	Rejected  uint64
	Queued    int
	QueueCap  int
	// BatchQueued / BatchQueueCap describe the scheduler's batch lane.
	BatchQueued   int
	BatchQueueCap int
	Workers       int
	// Outcomes breaks every finished submission down by its
	// icfg_requests_total label (ok, error, timeout, canceled,
	// queue_full, shutdown).
	Outcomes map[string]uint64
}

// String renders the snapshot as a short multi-line report.
func (s ServerStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d queued=%d/%d served=%d failed=%d rejected=%d\n",
		s.Workers, s.Queued, s.QueueCap, s.Served, s.Failed, s.Rejected)
	fmt.Fprintf(&b, "analysis store: %s\n", s.Analyses)
	fmt.Fprintf(&b, "result store:   %s\n", s.Results)
	fmt.Fprintf(&b, "func-unit store: %s held=%d", s.Funcs, s.FuncsHeld)
	return b.String()
}

// Server is the rewrite daemon. Create with New, submit with Submit
// (or the HTTP handler), stop with Shutdown.
type Server struct {
	cfg    Config
	stores *storage.Stores
	pool   *sched.Pool

	warmMu    sync.RWMutex
	warmUnits func(ctx context.Context, key AnalysisKey)

	served, failed, rejected atomic.Uint64

	metrics *metrics
}

// New creates a Server and starts its workers.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, warmUnits: cfg.WarmUnits}
	s.stores = storage.New(storage.Config{
		AnalysisEntries: cfg.AnalysisEntries,
		FuncEntries:     cfg.FuncEntries,
		ResultEntries:   cfg.ResultEntries,
		Dir:             cfg.Dir,
	})
	// The pool's hooks close over s; none can fire before New returns
	// (workers idle until the first Do), so s.metrics is always set by
	// the time they run.
	s.pool = sched.New(sched.Config{
		Workers:         cfg.Workers,
		QueueDepth:      cfg.QueueDepth,
		BatchQueueDepth: cfg.BatchQueueDepth,
		QueueWait:       func(d time.Duration) { s.metrics.queueWait.Observe(d.Seconds()) },
		Dequeue: func() {
			if testHookDequeue != nil {
				testHookDequeue()
			}
		},
		Dropped: func() {
			s.rejected.Add(1)
			s.metrics.requests.With(outcomeShutdown).Inc()
		},
	})
	s.metrics = newMetrics(s)
	return s
}

// Stores exposes the cache bundle — the seam the cluster's federated
// unit store reads from (CachedUnits) and writes into (SeedUnits).
func (s *Server) Stores() *storage.Stores { return s.stores }

// Registry exposes the server's metrics registry so embedders (the
// cluster node) can register their own series on the same /metrics
// endpoint.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// SetWarmUnits installs (or clears) the analysis-miss warm hook after
// construction — the cluster needs the server to exist before it can
// build the peering that the hook consults.
func (s *Server) SetWarmUnits(fn func(ctx context.Context, key AnalysisKey)) {
	s.warmMu.Lock()
	s.warmUnits = fn
	s.warmMu.Unlock()
}

func (s *Server) warmHook() func(ctx context.Context, key AnalysisKey) {
	s.warmMu.RLock()
	fn := s.warmUnits
	s.warmMu.RUnlock()
	return fn
}

// Submit enqueues one request and waits for its response. It returns
// ErrQueueFull immediately when the queue is at capacity (the caller
// owns the retry policy), ErrShuttingDown once Shutdown has begun, and
// ctx's error if the caller gives up first.
func (s *Server) Submit(ctx context.Context, req Request) (*Response, error) {
	return s.submit(ctx, req, s.pool.Do)
}

// SubmitBatch is Submit on the scheduler's batch lane: the request only
// runs when no interactive request is queued, at most Workers-1 workers
// serve batch work, and a full batch queue blocks the caller
// (backpressure for a job runner) instead of returning ErrQueueFull.
func (s *Server) SubmitBatch(ctx context.Context, req Request) (*Response, error) {
	return s.submit(ctx, req, s.pool.DoBatch)
}

func (s *Server) submit(ctx context.Context, req Request, do func(context.Context, func(context.Context) error) error) (*Response, error) {
	if err := normalize(&req); err != nil {
		return nil, err
	}
	var resp *Response
	err := do(ctx, func(ctx context.Context) error {
		r, err := s.process(ctx, &req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	switch {
	case err == nil:
		return resp, nil
	case errors.Is(err, ErrQueueFull):
		s.rejected.Add(1)
		s.metrics.requests.With(outcomeQueueFull).Inc()
	case err == ErrShuttingDown:
		// At-the-door rejection. Drained-from-queue tasks are counted by
		// the pool's Dropped hook instead, so each rejection is counted
		// exactly once whether or not its submitter is still waiting.
		s.metrics.requests.With(outcomeShutdown).Inc()
	}
	return nil, err
}

// normalize fills the request's derived fields.
func normalize(req *Request) error {
	if req.Binary == nil {
		if len(req.Raw) == 0 {
			return errors.New("service: request carries no binary")
		}
		b, err := bin.Unmarshal(req.Raw)
		if err != nil {
			return fmt.Errorf("service: bad request binary: %w", err)
		}
		req.Binary = b
	}
	if req.Hash == "" {
		if len(req.Raw) > 0 {
			req.Hash = store.Hash(req.Raw)
		} else {
			req.Hash = store.Hash(req.Binary.Marshal())
		}
	}
	return nil
}

// testHookDequeue, when non-nil, runs as a worker picks up a job —
// test instrumentation for deterministic scheduling assertions.
var testHookDequeue func()

// process runs one dequeued request under the server-side timeout.
func (s *Server) process(ctx context.Context, req *Request) (*Response, error) {
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	sp := traceFor(req)
	req.Opts.Trace = sp
	start := time.Now()
	resp, err := s.handle(ctx, req)
	if err != nil {
		s.failed.Add(1)
		s.metrics.observeFailed(err)
		return nil, err
	}
	resp.Elapsed = time.Since(start)
	finishTrace(sp, resp)
	s.served.Add(1)
	s.metrics.observeServed(resp)
	return resp, nil
}

// handle serves one request through the cache hierarchy. A single
// retry absorbs the singleflight wart: when the building request's
// context dies mid-build, its waiters receive that foreign context
// error even though their own contexts are live — the failed build is
// not cached, so one retry rebuilds cleanly.
func (s *Server) handle(ctx context.Context, req *Request) (*Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := s.rewriteOnce(ctx, req)
		if err != nil && attempt == 0 && isContextErr(err) && ctx.Err() == nil {
			continue
		}
		return resp, err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// rewriteOnce is one pass through result cache → analysis cache →
// patch. The request's context is honoured at the phase seams: before
// starting, between Analyze and Patch, and before serialisation.
func (s *Server) rewriteOnce(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.stores.Results == nil {
		res, analysisHit, err := s.analyzeAndPatch(ctx, req)
		if err != nil {
			return nil, err
		}
		return &Response{Image: res.Image, Stats: res.Stats, Metrics: res.Metrics, AnalysisHit: analysisHit}, nil
	}
	var analysisHit bool
	key := storage.Fingerprint(req.Hash, req.Opts)
	v, hit, err := s.stores.Results.GetOrCreate(key, func() (storage.CachedResult, error) {
		res, ah, err := s.analyzeAndPatch(ctx, req)
		if err != nil {
			return storage.CachedResult{}, err
		}
		analysisHit = ah
		return *res, nil
	})
	if err != nil {
		return nil, err
	}
	if hit {
		return &Response{Image: v.Image, Stats: v.Stats, Metrics: v.Metrics, ResultHit: true}, nil
	}
	return &Response{Image: v.Image, Stats: v.Stats, Metrics: v.Metrics, AnalysisHit: analysisHit}, nil
}

// analyzeAndPatch is the warm path's seam: analysis through the
// content-addressed store (single-flighted across concurrent requests
// for the same binary), then a per-request patch.
func (s *Server) analyzeAndPatch(ctx context.Context, req *Request) (*storage.CachedResult, bool, error) {
	key := AnalysisKey{Hash: req.Hash, Arch: req.Binary.Arch, Mode: req.Opts.Mode, Variant: req.Opts.Variant, NoEvidence: req.Opts.NoEvidence}
	an, hit, err := s.stores.Analyses.GetOrCreate(key, func() (*core.Analysis, error) {
		// An analysis-store miss is the cluster's warm-path moment: ask
		// the owning peer for this binary's cached function units before
		// recomputing. Best-effort by contract — on any failure the
		// analysis below simply runs colder.
		if warm := s.warmHook(); warm != nil {
			warm(ctx, key)
		}
		// The requester's trace rides into Analyze but is never part of
		// the analysis identity; waiters sharing this single-flighted
		// build see the cached result without the builder's spans.
		// The function-unit store turns an analysis-store miss for a new
		// version of a known binary into a delta: unchanged functions'
		// units are pulled instead of recomputed.
		return core.Analyze(req.Binary, core.AnalysisConfig{
			Mode: req.Opts.Mode, Variant: req.Opts.Variant, NoEvidence: req.Opts.NoEvidence,
			Trace: req.Opts.Trace, Units: s.stores.Units,
		})
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		req.Opts.Trace.Record("analyze", 0).SetAttr("cached", "true")
	}
	if err := ctx.Err(); err != nil {
		return nil, hit, err
	}
	opts := req.Opts
	if opts.PatchJobs == 0 {
		opts.PatchJobs = s.cfg.PatchJobs
	}
	res, err := an.Patch(opts)
	if err != nil {
		return nil, hit, err
	}
	if err := ctx.Err(); err != nil {
		return nil, hit, err
	}
	image := res.Binary.Marshal()
	// The serialised image is the response; the rewritten binary object
	// is dead, so its pooled emit buffers go back for the next request —
	// the steady-state loop the emit pool exists for.
	res.Recycle()
	return &storage.CachedResult{Image: image, Stats: res.Stats, Metrics: res.Metrics}, hit, nil
}

// Shutdown drains the service: new submissions are rejected, workers
// finish their in-flight requests and stop, and every request still
// queued fails with ErrShuttingDown. It returns ctx's error if the
// in-flight work outlives the context.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.pool.Shutdown(ctx)
}

// Stats snapshots the service counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Analyses:      s.stores.Analyses.Stats(),
		Funcs:         s.stores.Units.Stats(),
		FuncsHeld:     s.stores.Units.Len(),
		Served:        s.served.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		Queued:        s.pool.Queued(),
		QueueCap:      s.pool.QueueCap(),
		BatchQueued:   s.pool.BatchQueued(),
		BatchQueueCap: s.pool.BatchQueueCap(),
		Workers:       s.pool.Workers(),
		Outcomes:      s.metrics.requests.Snapshot(),
	}
	if s.stores.Results != nil {
		st.Results = s.stores.Results.Stats()
	}
	return st
}
