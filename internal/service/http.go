// HTTP transport: the service's mux over the wire format defined in
// internal/service/wire (see that package for the /rewrite frame).
//
//	POST /rewrite — one rewrite (wire frame in the 200 body)
//	GET /stats   — JSON ServerStats
//	GET /healthz — 200 "ok"
//	GET /metrics — Prometheus text exposition (internal/obs registry)
//	GET /debug/pprof/ — standard net/http/pprof profiles
//
// Adding trace=1 to /rewrite returns the request's rendered span tree
// in the Reply's trace field.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"

	"icfgpatch/internal/core"
	"icfgpatch/internal/profile"
	"icfgpatch/internal/service/wire"
)

// Reply is the JSON half of a /rewrite response; see wire.Reply.
type Reply = wire.Reply

// EncodeOptions renders the CLI-expressible rewrite options as query
// parameters; see wire.EncodeOptions.
func EncodeOptions(o core.Options) (url.Values, error) { return wire.EncodeOptions(o) }

// ParseOptions is EncodeOptions' inverse; see wire.ParseOptions.
func ParseOptions(v url.Values) (core.Options, error) { return wire.ParseOptions(v) }

// Handler returns the HTTP interface to the service, including the
// observability endpoints: /metrics for the Prometheus registry and the
// pprof profiles, wired explicitly because the service builds its own
// mux rather than using http.DefaultServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", s.handleRewrite)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// The body cap is the door's OOM guard: one oversized POST gets a
	// 413 instead of an unbounded ReadAll allocation.
	raw, ok := wire.ReadBody(w, r, s.cfg.MaxRequestBytes)
	if !ok {
		return
	}
	s.ServeRewrite(w, r, raw)
}

// MaxRequestBytes reports the door cap this server enforces, so
// embedders (the cluster node) apply the same cap at their own doors.
func (s *Server) MaxRequestBytes() int64 { return s.cfg.MaxRequestBytes }

// ServeRewrite serves one rewrite whose body has already been read —
// the seam the cluster node uses to serve a request it decided to
// handle locally (it must read the body first to route by content
// hash). Options and trace flag come from r's query string; the frame
// goes to w.
func (s *Server) ServeRewrite(w http.ResponseWriter, r *http.Request, raw []byte) {
	q := r.URL.Query()
	opts, err := wire.ParseOptions(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Get("profile") == "1" || q.Get("profile") == "true" {
		// profile=1 bodies carry a profile artifact ahead of the binary.
		// Bad framing is the sender's bug (400); a profile that frames
		// correctly but fails its own hardened decode — or decodes to a
		// trivial artifact — degrades to the unguided rewrite, by the
		// profile contract: guidance is advisory, never a failure mode.
		pb, bb, err := wire.SplitProfile(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		raw = bb
		if p, err := profile.Decode(pb); err == nil && !p.Trivial() {
			opts.Profile = p
		}
	}
	trace := q.Get("trace") == "1" || q.Get("trace") == "true"
	submit := s.Submit
	if q.Get("lane") == "batch" {
		// lane=batch puts the request on the scheduler's batch lane —
		// the path cluster peers use when forwarding each other's batch
		// items, so a forwarded fleet job cannot jump the priority
		// fence on the remote node.
		submit = s.SubmitBatch
	}
	resp, err := submit(r.Context(), Request{Raw: raw, Opts: opts, Trace: trace})
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	reply := &wire.Reply{
		Stats:           resp.Stats,
		MetricsText:     resp.Metrics.Render(),
		AnalysisHit:     resp.AnalysisHit,
		ResultHit:       resp.ResultHit,
		FuncsReused:     resp.Metrics.FuncsReused,
		FuncsRecomputed: resp.Metrics.FuncsRecomputed,
		ElapsedUS:       resp.Elapsed.Microseconds(),
		TraceText:       resp.Trace.Render(),
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	wire.WriteFrame(w, reply, resp.Image)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// statusFor maps service errors onto HTTP statuses the client can act
// on: retryable rejections are distinct from rewrite failures.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusUnprocessableEntity
	}
}
