// HTTP transport: the wire format shared by cmd/icfg-serve and
// cmd/icfg-rewrite -remote.
//
//	POST /rewrite?mode=jt&where=block&payload=empty[&funcs=a,b][&verify=1][&gap=N]
//	  body: serialised input binary (.icfg bytes)
//	  200 body: 8-byte little-endian JSON length, a JSON Reply, then
//	            the serialised rewritten binary
//	  errors: 400 bad request/options, 422 rewrite failure,
//	          429 queue full, 503 shutting down, 504 deadline exceeded
//	GET /stats   — JSON ServerStats
//	GET /healthz — 200 "ok"
//	GET /metrics — Prometheus text exposition (internal/obs registry)
//	GET /debug/pprof/ — standard net/http/pprof profiles
//
// Adding trace=1 to /rewrite returns the request's rendered span tree
// in the Reply's trace field.
package service

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"net/url"
	"strconv"
	"strings"

	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

// Reply is the JSON half of a /rewrite response.
type Reply struct {
	Stats       core.Stats `json:"stats"`
	MetricsText string     `json:"metrics"`
	AnalysisHit bool       `json:"analysisHit"`
	ResultHit   bool       `json:"resultHit"`
	// FuncsReused / FuncsRecomputed expose the delta engine's work split
	// for the analysis behind this response: how many function units were
	// pulled unchanged from the unit store versus recomputed. On cache
	// hits they describe the run that originally built the artifact.
	FuncsReused     int   `json:"funcsReused"`
	FuncsRecomputed int   `json:"funcsRecomputed"`
	ElapsedUS       int64 `json:"elapsedUs"`
	// TraceText is the rendered span tree (trace=1 requests only).
	TraceText string `json:"trace,omitempty"`
}

// EncodeOptions renders the CLI-expressible rewrite options as query
// parameters. Options outside the wire surface (instrumentation at raw
// addresses, baseline variants) are rejected: they are in-process-only.
func EncodeOptions(o core.Options) (url.Values, error) {
	v := url.Values{}
	v.Set("mode", o.Mode.String())
	switch o.Request.Where {
	case instrument.BlockEntry:
		v.Set("where", "block")
	case instrument.FuncEntry:
		v.Set("where", "func")
	default:
		return nil, fmt.Errorf("service: instrumentation point %d not expressible on the wire", o.Request.Where)
	}
	switch o.Request.Payload {
	case instrument.PayloadEmpty:
		v.Set("payload", "empty")
	case instrument.PayloadCounter:
		v.Set("payload", "counter")
	default:
		return nil, fmt.Errorf("service: payload %d not expressible on the wire", o.Request.Payload)
	}
	if len(o.Request.Funcs) > 0 {
		v.Set("funcs", strings.Join(o.Request.Funcs, ","))
	}
	if o.Verify {
		v.Set("verify", "1")
	}
	if o.InstrGap > 0 {
		v.Set("gap", strconv.FormatUint(o.InstrGap, 10))
	}
	if o.Variant != (core.Variant{}) {
		return nil, errors.New("service: baseline variants are not expressible on the wire")
	}
	return v, nil
}

// ParseOptions is EncodeOptions' inverse, also used by the CLIs to turn
// their flags into core.Options.
func ParseOptions(v url.Values) (core.Options, error) {
	var o core.Options
	switch m := v.Get("mode"); m {
	case "dir":
		o.Mode = core.ModeDir
	case "jt", "":
		o.Mode = core.ModeJT
	case "func-ptr", "funcptr":
		o.Mode = core.ModeFuncPtr
	default:
		return o, fmt.Errorf("unknown mode %q", m)
	}
	switch w := v.Get("where"); w {
	case "block", "":
		o.Request.Where = instrument.BlockEntry
	case "func":
		o.Request.Where = instrument.FuncEntry
	default:
		return o, fmt.Errorf("unknown instrumentation point %q", w)
	}
	switch p := v.Get("payload"); p {
	case "empty", "":
		o.Request.Payload = instrument.PayloadEmpty
	case "counter":
		o.Request.Payload = instrument.PayloadCounter
	default:
		return o, fmt.Errorf("unknown payload %q", p)
	}
	if f := v.Get("funcs"); f != "" {
		o.Request.Funcs = strings.Split(f, ",")
	}
	o.Verify = v.Get("verify") == "1" || v.Get("verify") == "true"
	if g := v.Get("gap"); g != "" {
		gap, err := strconv.ParseUint(g, 10, 64)
		if err != nil {
			return o, fmt.Errorf("bad gap %q: %v", g, err)
		}
		o.InstrGap = gap
	}
	return o, nil
}

// Handler returns the HTTP interface to the service, including the
// observability endpoints: /metrics for the Prometheus registry and the
// pprof profiles, wired explicitly because the service builds its own
// mux rather than using http.DefaultServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", s.handleRewrite)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", s.metrics.reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	opts, err := ParseOptions(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	trace := q.Get("trace") == "1" || q.Get("trace") == "true"
	resp, err := s.Submit(r.Context(), Request{Raw: raw, Opts: opts, Trace: trace})
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	reply, err := json.Marshal(Reply{
		Stats:           resp.Stats,
		MetricsText:     resp.Metrics.Render(),
		AnalysisHit:     resp.AnalysisHit,
		ResultHit:       resp.ResultHit,
		FuncsReused:     resp.Metrics.FuncsReused,
		FuncsRecomputed: resp.Metrics.FuncsRecomputed,
		ElapsedUS:       resp.Elapsed.Microseconds(),
		TraceText:       resp.Trace.Render(),
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(reply)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(hdr[:])
	w.Write(reply)
	w.Write(resp.Image)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

// statusFor maps service errors onto HTTP statuses the client can act
// on: retryable rejections are distinct from rewrite failures.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusUnprocessableEntity
	}
}
