package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/store"
)

// TestMetricsEndpoint drives the full scrape path: three requests with
// distinct cache paths (cold, result-cache, warm-analysis) against a
// server whose result-cache directory is unwritable, then asserts the
// /metrics text carries the outcome counters, cache-path counters,
// latency histograms, gauges, and the persist-failure count.
func TestMetricsEndpoint(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	// Dir is an existing regular file: every result persist fails, which
	// must be visible in the scrape but never fail a request.
	notADir := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 2, ResultEntries: 8, Dir: notADir})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	full := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	// Verify changes the result fingerprint but not one emit input, so the
	// second request patches against the cached analysis with every
	// function unit served from its emit cache — the patch-reuse counter's
	// deterministic source.
	verify := full
	verify.Verify = true
	part := full
	part.Request.Funcs = []string{img.FuncSymbols()[0].Name}
	// cold, warm-analysis (full emit reuse), result-cache, warm-analysis.
	for _, opts := range []core.Options{full, verify, full, part} {
		if _, _, err := cl.Rewrite(context.Background(), raw, opts); err != nil {
			t.Fatal(err)
		}
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		`icfg_requests_total{outcome="ok"} 4`,
		`icfg_cache_path_total{path="cold"} 1`,
		`icfg_cache_path_total{path="result-cache"} 1`,
		`icfg_cache_path_total{path="warm-analysis"} 2`,
		`icfg_request_seconds_count 4`,
		`icfg_queue_wait_seconds_count 4`,
		// Stage histograms exclude the result-cache replay: the cold and
		// both warm requests each contribute one sample per stage (a warm
		// request's analysis stages replay the cached analysis's
		// timings — see Response.Metrics).
		`icfg_stage_seconds_bucket{stage="plan",le="+Inf"} 3`,
		`icfg_stage_seconds_bucket{stage="layout",le="+Inf"} 3`,
		`icfg_stage_seconds_bucket{stage="emit",le="+Inf"} 3`,
		`icfg_stage_seconds_bucket{stage="cfg",le="+Inf"} 3`,
		`icfg_queue_depth 0`,
		`icfg_workers 2`,
		`icfg_store_hits{store="analysis"} 2`,
		`icfg_store_misses{store="analysis"} 1`,
		`icfg_store_persist_failures{store="result"} 3`,
		`icfg_store_persist_failures{store="analysis"} 0`,
		"icfg_workload_cache_misses",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The patch-reuse split: the cold request re-encoded every unit, the
	// verify repeat (identical plan and layout) copied every unit from the
	// emit cache, and the partial request re-encoded against its own
	// layout. Both sides of the split must therefore be nonzero.
	if v := metricValue(t, text, "icfg_patch_funcs_reused_total"); v < 1 {
		t.Errorf("icfg_patch_funcs_reused_total = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "icfg_patch_funcs_reencoded_total"); v < 1 {
		t.Errorf("icfg_patch_funcs_reencoded_total = %v, want >= 1", v)
	}

	// The profiling surface rides on the same mux.
	pres, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pres.Body.Close()
	if pres.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", pres.StatusCode)
	}
}

// metricValue extracts an unlabeled counter's value from a /metrics
// scrape body.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parsing %s value %q: %v", name, rest, err)
		}
		return v
	}
	t.Fatalf("/metrics missing %s", name)
	return 0
}

// waitOutcome polls the server's outcome counters until the label
// reaches want or the deadline passes.
func waitOutcome(t *testing.T, s *Server, label string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := s.Stats().Outcomes[label]; got >= want {
			if got != want {
				t.Fatalf("outcome %q = %d, want %d", label, got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("outcome %q never reached %d: %v", label, want, s.Stats().Outcomes)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTimeoutMidPipelineCountsTimeout wedges the worker between Analyze
// and Patch past the server-side deadline: the analysis single-flight
// entry is owned by a gated test build, and the gate opens only after
// the request's timeout has expired. The failure must surface as
// DeadlineExceeded and be counted under the timeout outcome, not error.
func TestTimeoutMidPipelineCountsTimeout(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	dequeued := make(chan struct{}, 1)
	testHookDequeue = func() { dequeued <- struct{}{} }
	defer func() { testHookDequeue = nil }()

	const timeout = 20 * time.Millisecond
	s := New(Config{Workers: 1, Timeout: timeout})
	defer s.Shutdown(context.Background())

	key := AnalysisKey{Hash: store.Hash(raw), Arch: img.Arch, Mode: core.ModeJT}
	started := make(chan struct{})
	gate := make(chan struct{})
	go s.stores.Analyses.GetOrCreate(key, func() (*core.Analysis, error) {
		close(started)
		<-gate
		return core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
	})
	<-started

	result := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}})
		result <- err
	}()
	select {
	case <-dequeued:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the job")
	}
	// The request's deadline starts at dequeue; let it expire while the
	// worker waits on the gated analysis, then release.
	time.Sleep(4 * timeout)
	close(gate)

	if err := <-result; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	waitOutcome(t, s, outcomeTimeout, 1)
	if st := s.Stats(); st.Outcomes[outcomeError] != 0 {
		t.Fatalf("timeout misclassified as error: %v", st.Outcomes)
	}
}

// TestDisconnectDuringQueueWaitCountsCanceled covers the abandoned-job
// path: a client gives up while its request is still queued behind a
// wedged worker. Submit returns the client's context error immediately,
// and when the worker eventually dequeues the dead job it must count it
// as canceled — the operational signal that clients are disconnecting,
// distinct from server-side errors.
func TestDisconnectDuringQueueWaitCountsCanceled(t *testing.T) {
	raw := testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	dequeued := make(chan struct{}, 4)
	testHookDequeue = func() { dequeued <- struct{}{} }
	defer func() { testHookDequeue = nil }()

	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	key := AnalysisKey{Hash: store.Hash(raw), Arch: img.Arch, Mode: core.ModeJT}
	started := make(chan struct{})
	gate := make(chan struct{})
	go s.stores.Analyses.GetOrCreate(key, func() (*core.Analysis, error) {
		close(started)
		<-gate
		return core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
	})
	<-started

	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	first := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), Request{Raw: raw, Opts: opts})
		first <- err
	}()
	select {
	case <-dequeued:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first job")
	}

	// Second job queues behind the wedged worker; its client disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, Request{Raw: raw, Opts: opts})
		second <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-second; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning client: err = %v, want Canceled", err)
	}

	// Release the worker: the first job completes, then the abandoned
	// job is dequeued, observed dead, and counted as canceled.
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first job: %v", err)
	}
	waitOutcome(t, s, outcomeCanceled, 1)
	waitOutcome(t, s, outcomeOK, 1)
}

// TestOutcomeSnapshotInStats checks every rejection path lands in the
// ServerStats outcome map alongside the legacy counters.
func TestOutcomeSnapshotInStats(t *testing.T) {
	raw := testBinaryRaw(t)
	s := New(Config{Workers: 1, Timeout: time.Nanosecond})
	if _, err := s.Submit(context.Background(), Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), Request{Raw: raw, Opts: core.Options{Mode: core.ModeJT, Request: blockEmpty()}}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown", err)
	}
	st := s.Stats()
	if st.Outcomes[outcomeTimeout] != 1 || st.Outcomes[outcomeShutdown] != 1 {
		t.Fatalf("outcomes = %v, want timeout=1 shutdown=1", st.Outcomes)
	}
	if st.Failed != 1 {
		t.Fatalf("failed = %d, want 1", st.Failed)
	}
}

// TestTraceRoundTripOverHTTP checks the per-request span tree reaches
// the client: stage names and the cache-path attribute must appear in
// the rendered text, and an untraced request must carry none.
func TestTraceRoundTripOverHTTP(t *testing.T) {
	raw := testBinaryRaw(t)
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	cl := &Client{BaseURL: ts.URL, Trace: true}
	_, reply, err := cl.Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rewrite", "analyze", "patch", core.StageCFG, core.StageLayout, "path=cold"} {
		if !strings.Contains(reply.TraceText, want) {
			t.Errorf("trace missing %q:\n%s", want, reply.TraceText)
		}
	}

	plain := &Client{BaseURL: ts.URL}
	_, reply2, err := plain.Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reply2.TraceText != "" {
		t.Errorf("untraced request carried a trace:\n%s", reply2.TraceText)
	}
	// Warm repeat with tracing: the analyze span must be marked cached.
	_, reply3, err := cl.Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reply3.TraceText, "cached=true") {
		t.Errorf("warm trace not marked cached:\n%s", reply3.TraceText)
	}
}
