// Package storage is the rewrite service's cache layer: the
// content-addressed analysis store, the function-unit store the delta
// engine shares across analyses, and the optional request-level result
// cache, bundled with their key and fingerprint vocabulary. It is the
// seam the cluster's federated unit store plugs into — a peer that
// wants another node's cached analysis state talks to this layer
// (CachedUnits / SeedUnits) and never touches scheduling or transport.
package storage

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/store"
)

// AnalysisKey addresses one cached analysis: the content hash of the
// serialised input binary plus everything core.Analyze consumes.
type AnalysisKey struct {
	Hash    string
	Arch    arch.Arch
	Mode    core.Mode
	Variant core.Variant
	// NoEvidence mirrors core.AnalysisConfig.NoEvidence: on a CFI binary
	// the evidence-enabled func-ptr analysis can differ from the
	// conservative one, so the two must never share a cache entry.
	NoEvidence bool
}

// CachedResult is the result cache's artifact (gob-encoded on disk).
type CachedResult struct {
	Image   []byte
	Stats   core.Stats
	Metrics core.Metrics
}

// Config sizes the store bundle. Zero values select the documented
// defaults.
type Config struct {
	// AnalysisEntries bounds the analysis store (default: 32 entries).
	AnalysisEntries int
	// FuncEntries bounds the function-unit store (default: 4096 function
	// identities; -1 disables it).
	FuncEntries int
	// ResultEntries bounds the request-level result cache; 0 disables it
	// (analyses are still cached).
	ResultEntries int
	// Dir enables on-disk persistence of the result cache.
	Dir string
}

// Stores is the service's two-level cache bundle.
type Stores struct {
	// Analyses single-flights whole-binary analyses by content address.
	Analyses *store.Store[AnalysisKey, *core.Analysis]
	// Results serves byte-identical repeat requests; nil when disabled.
	Results *store.Store[string, CachedResult]
	// Units is the delta engine's function-keyed cache; nil when
	// disabled.
	Units *core.UnitStore
}

// New builds the bundle with the service's defaults applied.
func New(cfg Config) *Stores {
	if cfg.AnalysisEntries <= 0 {
		cfg.AnalysisEntries = 32
	}
	if cfg.FuncEntries == 0 {
		cfg.FuncEntries = 4096
	}
	st := &Stores{
		Analyses: store.New(store.Config[AnalysisKey, *core.Analysis]{MaxEntries: cfg.AnalysisEntries}),
	}
	if cfg.FuncEntries > 0 {
		st.Units = core.NewUnitStore(cfg.FuncEntries)
	}
	if cfg.ResultEntries > 0 {
		st.Results = store.New(store.Config[string, CachedResult]{
			MaxEntries: cfg.ResultEntries,
			Dir:        cfg.Dir,
			KeyPath:    func(k string) string { return k + ".res" },
			Encode:     encodeResult,
			Decode:     decodeResult,
		})
	}
	return st
}

func encodeResult(v CachedResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeResult(data []byte) (CachedResult, error) {
	var v CachedResult
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v)
	return v, err
}

// Fingerprint extends the content address with the full instrumentation
// request, canonically rendered — the result cache's key. The profile
// joins through its canonical content hash (same binary + same profile
// ⇒ same cached bytes; a nil profile hashes to the empty string, so
// degraded guided requests share the unguided entry).
func Fingerprint(hash string, o core.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|m%d|w%d|p%d|v%t|g%d|nr%t|ne%t|%+v|f:%s|ph:%s|a:",
		hash, o.Mode, o.Request.Where, o.Request.Payload,
		o.Verify, o.InstrGap, o.NoRAMap, o.NoEvidence, o.Variant,
		strings.Join(o.Request.Funcs, ","), o.Profile.Hash())
	for _, a := range o.Request.Addrs {
		fmt.Fprintf(&b, "%x,", a)
	}
	return store.Hash([]byte(b.String()))
}

// CachedUnits returns the function units of an already-completed
// analysis for key, or nil when this node has none. It is the owner
// side of the cluster's peer warm path: a side-effect-free read (no hit
// accounting, no LRU promotion, no single-flight join) so serving a
// peer never distorts the local cache's behaviour.
func (st *Stores) CachedUnits(key AnalysisKey) []*core.FuncUnit {
	if st == nil || st.Analyses == nil {
		return nil
	}
	an, ok := st.Analyses.Peek(key)
	if !ok || an == nil {
		return nil
	}
	return an.FuncUnits
}

// SeedUnits deposits peer-fetched units into the unit store (the
// receiver side of the warm path), returning the number seeded. The
// units still face Analyze's full validation before any reuse.
func (st *Stores) SeedUnits(us []*core.FuncUnit) int {
	if st == nil || st.Units == nil {
		return 0
	}
	return st.Units.Seed(us)
}
