// Package batch is the fleet-rewriting subsystem: submit a manifest of
// binaries + modes, get a job ID, stream per-binary progress and
// per-stage span events over SSE (or poll), and collect the rewritten
// images. It rides the layers below it rather than duplicating them:
//
//   - scheduling — every item runs through the service's batch lane
//     (sched.Pool.DoBatch), so interactive /rewrite requests always
//     dispatch first and one worker stays reserved for them;
//   - dedupe — items sharing a binary hash dedupe through the analysis
//     store's single-flight exactly like concurrent /rewrite requests:
//     a 10-item job over 3 distinct binaries performs 3 analyses;
//   - persistence — the job record (inputs, options, and each finished
//     item's output) lives in an internal/store with disk persistence,
//     re-Put after every item completion, so a restarted daemon
//     resumes drained jobs from the last completed item and finishes
//     them byte-identically;
//   - observability — job/item counters and queue-depth gauges join
//     the server's /metrics registry.
//
// The cluster plugs in through SetExec: a node replaces the local
// executor with one that routes each item to the peer owning its
// content hash (the same ring /rewrite uses), so fleet jobs keep the
// cluster's cache locality without new routing machinery.
package batch

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"icfgpatch/internal/core"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
	"icfgpatch/internal/store"
)

// Exec runs one item's rewrite and returns its outcome. The default
// executor submits to the local server's batch lane; the cluster
// installs a routing executor via SetExec.
type Exec func(ctx context.Context, item *Item) (*ExecResult, error)

// ExecResult is one executed item's outcome.
type ExecResult struct {
	// Image is the rewritten serialised binary.
	Image []byte
	// Path is the cache path the rewrite took (service cache-path
	// vocabulary: cold, delta, warm-analysis, result-cache).
	Path string
	// Elapsed is the rewrite's server-side processing time.
	Elapsed time.Duration
	// Stages carries the pipeline's per-stage wall times when the item
	// ran locally; empty for items forwarded to a peer.
	Stages []core.StageMetric
}

// Item is one unit of batch work: a manifest entry plus its parsed
// options and content hash.
type Item struct {
	Index int
	Name  string
	// Opts is the item's /rewrite query string (already validated).
	Opts string
	// Input is the serialised input binary; Hash its content address —
	// the same hash /rewrite routes and caches by.
	Input []byte
	Hash  string
}

// Options returns the item's parsed rewrite options.
func (it *Item) Options() (core.Options, error) { return wire.ParseItemOptions(it.Opts) }

// record is the persisted job state, gob-encoded into the job store.
// It carries everything a restarted daemon needs to finish the job:
// pending items' inputs and finished items' outputs.
type record struct {
	ID    string
	Items []itemRecord
}

type itemRecord struct {
	Name      string
	Opts      string
	Input     []byte
	Hash      string
	State     string // wire.BatchPending/Running are both persisted as pending
	Path      string
	Err       string
	ElapsedUS int64
	Image     []byte
}

// Job is one batch job's live state. All fields behind mu; the event
// log grows monotonically and is the replay source for late or
// reconnecting SSE subscribers.
type Job struct {
	ID      string
	Total   int
	Resumed bool

	mu     sync.Mutex
	rec    *record
	state  string
	done   int
	events []wire.BatchEvent
	subs   map[chan wire.BatchEvent]bool // true once overflowed (closed)
	doneCh chan struct{}
}

// Config configures a Manager. Zero values select the documented
// defaults.
type Config struct {
	// Dir enables job-state persistence (and therefore resume); jobs
	// are memory-only without it.
	Dir string
	// Entries bounds the in-memory job store (default 256). Evicted
	// finished jobs remain on disk when Dir is set.
	Entries int
	// Parallel bounds each job's concurrently in-flight items (default
	// 4). The scheduler's batch lane is the real throttle — this only
	// bounds how much of the batch queue one job can occupy.
	Parallel int
	// MaxRequestBytes caps the /batch manifest POST body (0:
	// wire.DefaultMaxBody; negative: unbounded), matching the /rewrite
	// doors.
	MaxRequestBytes int64
}

// Manager owns batch jobs for one server: submission, execution,
// events, persistence, resume.
type Manager struct {
	srv *service.Server
	cfg Config

	execMu sync.RWMutex
	exec   Exec

	mu   sync.Mutex
	jobs map[string]*Job

	records *store.Store[string, *record]

	rootCtx context.Context
	cancel  context.CancelFunc
	runners sync.WaitGroup

	jobsTotal   *obs.CounterVec
	itemsTotal  *obs.CounterVec
	eventsTotal *obs.Counter
	active      int64 // guarded by mu
	subscribers int64 // guarded by mu
}

// jobSuffix names persisted job records: <id>.job in cfg.Dir.
const jobSuffix = ".job"

// New builds a Manager over srv, registers its metrics on srv's
// registry, and — when cfg.Dir holds records of unfinished jobs from a
// previous process — resumes them immediately.
func New(srv *service.Server, cfg Config) (*Manager, error) {
	if cfg.Entries <= 0 {
		cfg.Entries = 256
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = 4
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		srv:     srv,
		cfg:     cfg,
		jobs:    map[string]*Job{},
		rootCtx: ctx,
		cancel:  cancel,
	}
	m.exec = m.execLocal
	m.records = store.New(store.Config[string, *record]{
		MaxEntries: cfg.Entries,
		Dir:        cfg.Dir,
		KeyPath:    func(id string) string { return id + jobSuffix },
		Encode:     encodeRecord,
		Decode:     decodeRecord,
	})
	reg := srv.Registry()
	m.jobsTotal = reg.CounterVec("icfg_batch_jobs_total", "batch jobs by outcome", "outcome")
	m.itemsTotal = reg.CounterVec("icfg_batch_items_total", "batch items by outcome", "outcome")
	m.eventsTotal = reg.Counter("icfg_batch_events_total", "batch progress events emitted")
	reg.GaugeFunc("icfg_batch_jobs_active", "batch jobs currently running", "", "",
		func() float64 { m.mu.Lock(); defer m.mu.Unlock(); return float64(m.active) })
	reg.GaugeFunc("icfg_batch_subscribers", "live batch event-stream subscribers", "", "",
		func() float64 { m.mu.Lock(); defer m.mu.Unlock(); return float64(m.subscribers) })
	if err := m.resume(); err != nil {
		cancel()
		return nil, err
	}
	return m, nil
}

// SetExec replaces the per-item executor (the cluster's routing seam).
func (m *Manager) SetExec(e Exec) {
	m.execMu.Lock()
	m.exec = e
	m.execMu.Unlock()
}

// LocalExec returns the default executor — submit to the local
// server's batch lane — for routing executors to fall back on.
func (m *Manager) LocalExec() Exec { return m.execLocal }

func (m *Manager) execLocal(ctx context.Context, it *Item) (*ExecResult, error) {
	opts, err := it.Options()
	if err != nil {
		return nil, err
	}
	resp, err := m.srv.SubmitBatch(ctx, service.Request{Raw: it.Input, Hash: it.Hash, Opts: opts})
	if err != nil {
		return nil, err
	}
	return &ExecResult{
		Image:   resp.Image,
		Path:    resp.CachePath(),
		Elapsed: resp.Elapsed,
		Stages:  resp.Metrics.Stages,
	}, nil
}

// Submit validates a manifest, persists the new job, and starts its
// runner. The returned job is already running.
func (m *Manager) Submit(man wire.BatchManifest) (*Job, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	id, err := newID()
	if err != nil {
		return nil, err
	}
	rec := &record{ID: id, Items: make([]itemRecord, len(man.Items))}
	for i, it := range man.Items {
		rec.Items[i] = itemRecord{
			Name:  it.Name,
			Opts:  it.Opts,
			Input: it.Binary,
			Hash:  store.Hash(it.Binary),
			State: wire.BatchPending,
		}
	}
	job := m.track(rec, false)
	m.persist(job)
	m.start(job)
	return job, nil
}

// track registers a live Job for rec.
func (m *Manager) track(rec *record, resumed bool) *Job {
	job := &Job{
		ID:      rec.ID,
		Total:   len(rec.Items),
		Resumed: resumed,
		rec:     rec,
		state:   wire.BatchRunning,
		subs:    map[chan wire.BatchEvent]bool{},
		doneCh:  make(chan struct{}),
	}
	for i := range rec.Items {
		if rec.Items[i].State == wire.BatchDone || rec.Items[i].State == wire.BatchFailed {
			job.done++
		}
	}
	m.mu.Lock()
	m.jobs[rec.ID] = job
	m.active++
	m.mu.Unlock()
	return job
}

// start launches the job's runner goroutine.
func (m *Manager) start(job *Job) {
	m.runners.Add(1)
	go func() {
		defer m.runners.Done()
		m.run(job)
	}()
}

// resume scans the persistence directory for records of jobs that were
// still running when the previous process died and restarts them. The
// read goes through the record store so corrupt or oversized records
// take the store's delete-and-skip path instead of wedging startup.
func (m *Manager) resume() error {
	if m.cfg.Dir == "" {
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(m.cfg.Dir, "*"+jobSuffix))
	if err != nil {
		return err
	}
	for _, p := range paths {
		id := strings.TrimSuffix(filepath.Base(p), jobSuffix)
		rec, _, err := m.records.GetOrCreate(id, func() (*record, error) {
			return nil, fmt.Errorf("batch: job %s not on disk", id)
		})
		if err != nil || rec == nil {
			continue // corrupt record: the store already deleted it
		}
		unfinished := false
		for i := range rec.Items {
			if rec.Items[i].State != wire.BatchDone && rec.Items[i].State != wire.BatchFailed {
				rec.Items[i].State = wire.BatchPending
				unfinished = true
			}
		}
		if !unfinished {
			continue // finished jobs stay pollable from disk, nothing to run
		}
		m.start(m.track(rec, true))
	}
	return nil
}

// run drives one job: pending items fan out up to cfg.Parallel wide,
// each through the (possibly cluster-routing) executor on the batch
// lane, with the record re-persisted and events emitted as each item
// lands.
func (m *Manager) run(job *Job) {
	m.emit(job, wire.BatchEvent{Type: wire.EventJobStart, Item: -1})
	sem := make(chan struct{}, m.cfg.Parallel)
	var wg sync.WaitGroup
	for i := range job.rec.Items {
		job.mu.Lock()
		state := job.rec.Items[i].State
		job.mu.Unlock()
		if state == wire.BatchDone || state == wire.BatchFailed {
			continue // resumed job: already completed before the restart
		}
		if m.rootCtx.Err() != nil {
			break // manager shutting down; the job resumes after restart
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			m.runItem(job, i)
		}(i)
	}
	wg.Wait()

	if m.rootCtx.Err() != nil {
		// Shutdown mid-job: leave the record as-is (running state is
		// persisted as pending) so the next process resumes it; emit
		// nothing — subscribers see the disconnect and re-attach.
		m.mu.Lock()
		m.active--
		m.mu.Unlock()
		return
	}
	job.mu.Lock()
	failed := 0
	for i := range job.rec.Items {
		if job.rec.Items[i].State == wire.BatchFailed {
			failed++
		}
	}
	job.state = wire.BatchDone
	outcome := "ok"
	typ := wire.EventJobDone
	if failed > 0 {
		job.state = wire.BatchFailed
		outcome = "failed"
		typ = wire.EventJobFailed
	}
	job.mu.Unlock()
	m.persist(job)
	m.jobsTotal.With(outcome).Inc()
	m.emit(job, wire.BatchEvent{Type: typ, Item: -1})
	m.mu.Lock()
	m.active--
	m.mu.Unlock()
	close(job.doneCh)
}

// runItem executes one item and records its outcome.
func (m *Manager) runItem(job *Job, i int) {
	job.mu.Lock()
	job.rec.Items[i].State = wire.BatchRunning
	it := &Item{
		Index: i,
		Name:  job.rec.Items[i].Name,
		Opts:  job.rec.Items[i].Opts,
		Input: job.rec.Items[i].Input,
		Hash:  job.rec.Items[i].Hash,
	}
	job.mu.Unlock()
	m.emit(job, wire.BatchEvent{Type: wire.EventItemStart, Item: i, Name: it.Name})

	m.execMu.RLock()
	exec := m.exec
	m.execMu.RUnlock()
	res, err := exec(m.rootCtx, it)

	if m.rootCtx.Err() != nil && err != nil {
		// Shutdown killed the rewrite, not the rewrite itself: the item
		// goes back to pending for the next process.
		job.mu.Lock()
		job.rec.Items[i].State = wire.BatchPending
		job.mu.Unlock()
		return
	}
	job.mu.Lock()
	ir := &job.rec.Items[i]
	if err != nil {
		ir.State = wire.BatchFailed
		ir.Err = err.Error()
	} else {
		ir.State = wire.BatchDone
		ir.Image = res.Image
		ir.Path = res.Path
		ir.ElapsedUS = res.Elapsed.Microseconds()
	}
	job.done++
	done := job.done
	job.mu.Unlock()

	// Persist before announcing: a crash after the event but before the
	// persist would re-run the item (harmless, idempotent); the reverse
	// order could announce work a restart then silently redoes.
	m.persist(job)
	if err != nil {
		m.itemsTotal.With("failed").Inc()
		m.emit(job, wire.BatchEvent{Type: wire.EventItemFailed, Item: i, Name: it.Name,
			Err: err.Error(), Done: done})
		return
	}
	for _, st := range res.Stages {
		m.emit(job, wire.BatchEvent{Type: wire.EventItemStage, Item: i, Name: it.Name,
			Stage: st.Name, WallUS: st.Wall.Microseconds()})
	}
	m.itemsTotal.With("ok").Inc()
	m.emit(job, wire.BatchEvent{Type: wire.EventItemDone, Item: i, Name: it.Name,
		Path: res.Path, WallUS: res.Elapsed.Microseconds(), Done: done})
}

// persist re-Puts the job's record through the store (and so to disk).
func (m *Manager) persist(job *Job) {
	job.mu.Lock()
	// Snapshot under the lock; gob encoding happens on the copy so item
	// goroutines are not serialised behind disk writes.
	snap := &record{ID: job.rec.ID, Items: append([]itemRecord(nil), job.rec.Items...)}
	job.mu.Unlock()
	for i := range snap.Items {
		if snap.Items[i].State == wire.BatchRunning {
			snap.Items[i].State = wire.BatchPending
		}
	}
	m.records.Put(snap.ID, snap) // persist failures are counted by the store
}

// emit appends one event to the job's log and fans it out. Subscribers
// too slow to keep up are closed with their overflow flag set; they
// re-attach from their last sequence number and replay from the log.
func (m *Manager) emit(job *Job, ev wire.BatchEvent) {
	job.mu.Lock()
	ev.Seq = int64(len(job.events)) + 1
	ev.Total = job.Total
	if ev.Done == 0 && ev.Item == -1 {
		ev.Done = job.done
	}
	job.events = append(job.events, ev)
	for ch, dead := range job.subs {
		if dead {
			continue
		}
		select {
		case ch <- ev:
		default:
			job.subs[ch] = true
			close(ch)
		}
	}
	job.mu.Unlock()
	m.eventsTotal.Inc()
}

// Get returns a live job by ID. Finished jobs evicted from memory but
// persisted on disk are revived read-only (no runner — all items are
// final).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		return job, true
	}
	if m.cfg.Dir == "" || !validID(id) {
		return nil, false
	}
	rec, _, err := m.records.GetOrCreate(id, func() (*record, error) {
		return nil, fmt.Errorf("batch: no job %s", id)
	})
	if err != nil || rec == nil {
		return nil, false
	}
	job = &Job{
		ID:     rec.ID,
		Total:  len(rec.Items),
		rec:    rec,
		state:  wire.BatchDone,
		subs:   map[chan wire.BatchEvent]bool{},
		doneCh: make(chan struct{}),
	}
	for i := range rec.Items {
		if rec.Items[i].State == wire.BatchFailed {
			job.state = wire.BatchFailed
		}
		job.done++
	}
	close(job.doneCh)
	m.mu.Lock()
	if cur, ok := m.jobs[id]; ok {
		job = cur // lost a race to another reviver
	} else {
		m.jobs[id] = job
	}
	m.mu.Unlock()
	return job, true
}

// Status snapshots one job.
func (j *Job) Status() *wire.BatchStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &wire.BatchStatus{
		ID:      j.ID,
		State:   j.state,
		Done:    j.done,
		Total:   j.Total,
		Resumed: j.Resumed,
		Items:   make([]wire.BatchItemStatus, len(j.rec.Items)),
	}
	for i := range j.rec.Items {
		ir := &j.rec.Items[i]
		st.Items[i] = wire.BatchItemStatus{
			Name:      ir.Name,
			State:     ir.State,
			Path:      ir.Path,
			Err:       ir.Err,
			ElapsedUS: ir.ElapsedUS,
			Bytes:     len(ir.Image),
		}
	}
	return st
}

// Output returns item idx's rewritten image, or an error while the
// item is not done.
func (j *Job) Output(idx int) ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if idx < 0 || idx >= len(j.rec.Items) {
		return nil, fmt.Errorf("batch: job %s has no item %d", j.ID, idx)
	}
	ir := &j.rec.Items[idx]
	switch ir.State {
	case wire.BatchDone:
		return ir.Image, nil
	case wire.BatchFailed:
		return nil, fmt.Errorf("batch: item %d (%s) failed: %s", idx, ir.Name, ir.Err)
	default:
		return nil, fmt.Errorf("batch: item %d (%s) is %s", idx, ir.Name, ir.State)
	}
}

// Subscribe attaches an event listener from sequence `from` (events
// with Seq > from). It returns the replayable backlog, a live channel
// (nil when the job already ended and the backlog is everything), and
// a cancel function. A listener that falls behind the channel buffer
// has its channel closed; re-Subscribe from the last seen sequence
// resumes loss-free from the log.
func (m *Manager) Subscribe(j *Job, from int64) (backlog []wire.BatchEvent, live chan wire.BatchEvent, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if int(from) < len(j.events) {
		backlog = append(backlog, j.events[from:]...)
	}
	if j.state != wire.BatchRunning {
		return backlog, nil, func() {}
	}
	live = make(chan wire.BatchEvent, 512)
	j.subs[live] = false
	m.mu.Lock()
	m.subscribers++
	m.mu.Unlock()
	cancel = func() {
		j.mu.Lock()
		dead, ok := j.subs[live]
		delete(j.subs, live)
		j.mu.Unlock()
		if ok && !dead {
			close(live)
		}
		m.mu.Lock()
		m.subscribers--
		m.mu.Unlock()
	}
	return backlog, live, cancel
}

// Done returns a channel closed when the job finishes (not when it is
// parked for resume by a shutdown).
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Shutdown stops accepting work and interrupts running jobs; their
// records stay persisted as pending so the next process resumes them.
// It returns when every runner has parked or ctx expires.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.cancel()
	finished := make(chan struct{})
	go func() {
		m.runners.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func encodeRecord(r *record) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeRecord(data []byte) (*record, error) {
	var r record
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// newID mints a job ID: 16 random bytes, hex.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("batch: id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// validID rejects IDs that could escape the persistence directory
// before they reach a file path.
func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		ok := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
		if !ok {
			return false
		}
	}
	return true
}
