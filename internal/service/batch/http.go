// Batch HTTP surface, layered over the service handler:
//
//	POST /batch                   — submit a manifest, 202 + job ID
//	GET  /batch/{id}              — JSON status snapshot (polling fallback)
//	GET  /batch/{id}/events       — SSE progress stream (?from=N resumes)
//	GET  /batch/{id}/output/{idx} — one item's rewritten image
//
// The event stream replays from the job's in-memory log, so a client
// that reconnects with its last seen sequence number (Last-Event-ID or
// ?from) continues loss-free and duplicate-free.
package batch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"icfgpatch/internal/service/wire"
)

// Handler wraps base with the /batch routes. Everything else falls
// through to base, so callers install the batch surface with
// srv.Handler() (or the cluster node's handler) as the base.
func (m *Manager) Handler(base http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /batch", m.handleSubmit)
	mux.HandleFunc("POST /batch/{$}", m.handleSubmit)
	mux.HandleFunc("GET /batch/{id}", m.handleStatus)
	mux.HandleFunc("GET /batch/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /batch/{id}/output/{idx}", m.handleOutput)
	mux.Handle("/", base)
	return mux
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// The manifest door gets the same OOM guard as /rewrite: over-cap
	// POSTs draw 413 before the body is read into memory.
	body, ok := wire.ReadBody(w, r, m.cfg.MaxRequestBytes)
	if !ok {
		return
	}
	var man wire.BatchManifest
	if err := json.Unmarshal(body, &man); err != nil {
		http.Error(w, fmt.Sprintf("batch: bad manifest: %v", err), http.StatusBadRequest)
		return
	}
	job, err := m.Submit(man)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(wire.BatchAccepted{ID: job.ID, Items: job.Total})
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "batch: no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.Status())
}

// handleEvents streams the job's progress as SSE. `from` (query param,
// or the standard Last-Event-ID header on reconnect) is the client's
// last seen sequence number; the stream starts at from+1.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "batch: no such job", http.StatusNotFound)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "batch: streaming unsupported", http.StatusInternalServerError)
		return
	}
	from := int64(0)
	if s := r.URL.Query().Get("from"); s != "" {
		from, _ = strconv.ParseInt(s, 10, 64)
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		from, _ = strconv.ParseInt(s, 10, 64)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)

	// Each (re)subscription replays the log past `from`, then follows
	// live. A subscriber the emitter outran has its channel closed with
	// events missing from it — looping back to Subscribe with the last
	// written sequence closes the gap from the log.
	for {
		backlog, live, cancel := m.Subscribe(job, from)
		for _, ev := range backlog {
			if err := wire.WriteSSE(w, ev); err != nil {
				cancel()
				return
			}
			from = ev.Seq
		}
		flusher.Flush()
		if live == nil {
			cancel()
			return // job already finished; the backlog was the whole story
		}
		overflowed := false
		for {
			var (
				ev wire.BatchEvent
				ok bool
			)
			select {
			case ev, ok = <-live:
			case <-r.Context().Done():
				cancel()
				return
			}
			if !ok {
				overflowed = true
				break
			}
			if ev.Seq <= from {
				continue // replayed above before the subscription landed
			}
			if err := wire.WriteSSE(w, ev); err != nil {
				cancel()
				return
			}
			flusher.Flush()
			from = ev.Seq
			if ev.Type == wire.EventJobDone || ev.Type == wire.EventJobFailed {
				cancel()
				return
			}
		}
		cancel()
		if !overflowed {
			return
		}
	}
}

func (m *Manager) handleOutput(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "batch: no such job", http.StatusNotFound)
		return
	}
	idx, err := strconv.Atoi(r.PathValue("idx"))
	if err != nil {
		http.Error(w, "batch: bad item index", http.StatusBadRequest)
		return
	}
	image, err := job.Output(idx)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(image)
}
