package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
	"icfgpatch/internal/workload"
)

// genBinary produces a deterministic serialised test binary; distinct
// seeds yield distinct content hashes.
func genBinary(t testing.TB, seed int64) []byte {
	t.Helper()
	p, err := workload.Generate(arch.X64, false, workload.Profile{
		Name: fmt.Sprintf("batch-%d", seed), Seed: seed, Lang: "c++",
		Funcs: 12, SwitchFrac: 0.3, SpillFrac: 0.2,
		TinyFrac: 0.1, Exceptions: true, StackCalls: true, Iters: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p.Binary.Marshal()
}

func newTestManager(t testing.TB, scfg service.Config, bcfg Config) (*service.Server, *Manager) {
	t.Helper()
	if scfg.Workers == 0 {
		scfg.Workers = 4
	}
	srv := service.New(scfg)
	mgr, err := New(srv, bcfg)
	if err != nil {
		srv.Shutdown(context.Background())
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
		srv.Shutdown(ctx)
	})
	return srv, mgr
}

// directRewrite computes the reference output for raw on a throwaway
// server — what a single /rewrite of the same request would return.
func directRewrite(t testing.TB, raw []byte) []byte {
	t.Helper()
	srv := service.New(service.Config{Workers: 2})
	defer srv.Shutdown(context.Background())
	resp, err := srv.Submit(context.Background(), service.Request{
		Raw:  raw,
		Opts: core.Options{Mode: core.ModeJT},
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Image
}

func waitDone(t testing.TB, job *Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish", job.ID)
	}
}

// TestBatchDedupe is the headline acceptance check: a 10-binary batch
// with 3 distinct contents performs exactly 3 analyses (the rest
// dedupe through the analysis store's single-flight), and every output
// is byte-identical to a single /rewrite of the same binary.
func TestBatchDedupe(t *testing.T) {
	raws := [][]byte{genBinary(t, 11), genBinary(t, 12), genBinary(t, 13)}
	want := make([][]byte, len(raws))
	for i, raw := range raws {
		want[i] = directRewrite(t, raw)
	}

	srv, mgr := newTestManager(t, service.Config{}, Config{})
	man := wire.BatchManifest{}
	for i := 0; i < 10; i++ {
		man.Items = append(man.Items, wire.BatchItem{Binary: raws[i%len(raws)]})
	}
	job, err := mgr.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	st := job.Status()
	if st.State != wire.BatchDone {
		t.Fatalf("job state = %s, want %s", st.State, wire.BatchDone)
	}
	if st.Done != 10 {
		t.Fatalf("done = %d, want 10", st.Done)
	}
	if got := srv.Stats().Analyses.Misses; got != 3 {
		t.Errorf("analysis misses = %d, want 3 (10 items over 3 distinct binaries)", got)
	}
	for i := 0; i < 10; i++ {
		image, err := job.Output(i)
		if err != nil {
			t.Fatalf("output %d: %v", i, err)
		}
		if !bytes.Equal(image, want[i%len(raws)]) {
			t.Errorf("item %d output differs from single /rewrite of the same binary", i)
		}
	}
}

// TestBatchResume kills a manager mid-job and verifies a fresh process
// over the same directory finishes it: the pre-restart item's output
// survives, the rest re-run, and every output stays byte-identical to
// a single rewrite.
func TestBatchResume(t *testing.T) {
	dir := t.TempDir()
	raws := [][]byte{genBinary(t, 21), genBinary(t, 22), genBinary(t, 23), genBinary(t, 24)}
	want := make([][]byte, len(raws))
	for i, raw := range raws {
		want[i] = directRewrite(t, raw)
	}

	srv1 := service.New(service.Config{Workers: 4})
	mgr1, err := New(srv1, Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Gate the executor: item 0 runs for real, every other item blocks
	// until shutdown cancels it — freezing the job with exactly one
	// completed item in the persisted record.
	local := mgr1.LocalExec()
	mgr1.SetExec(func(ctx context.Context, it *Item) (*ExecResult, error) {
		if it.Index == 0 {
			return local(ctx, it)
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	man := wire.BatchManifest{}
	for _, raw := range raws {
		man.Items = append(man.Items, wire.BatchItem{Binary: raw})
	}
	job, err := mgr1.Submit(man)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := job.Status(); st.Items[0].State == wire.BatchDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("item 0 never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	srv1.Shutdown(ctx)
	select {
	case <-job.Done():
		t.Fatal("parked job reported done; it should wait for the next process")
	default:
	}

	// "Restart": a fresh server and manager over the same directory.
	// New() resumes the job immediately with the default local executor.
	srv2, mgr2 := newTestManager(t, service.Config{}, Config{Dir: dir})
	_ = srv2
	job2, ok := mgr2.Get(job.ID)
	if !ok {
		t.Fatalf("restarted manager does not know job %s", job.ID)
	}
	if !job2.Resumed {
		t.Error("resumed job not marked Resumed")
	}
	waitDone(t, job2)
	st := job2.Status()
	if st.State != wire.BatchDone {
		t.Fatalf("resumed job state = %s, want %s", st.State, wire.BatchDone)
	}
	if !st.Resumed {
		t.Error("status does not report Resumed")
	}
	for i := range raws {
		image, err := job2.Output(i)
		if err != nil {
			t.Fatalf("output %d: %v", i, err)
		}
		if !bytes.Equal(image, want[i]) {
			t.Errorf("item %d output differs from single /rewrite after resume", i)
		}
	}
}

// collectSSE reads one event stream to completion.
func collectSSE(t testing.TB, url string) []wire.BatchEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var evs []wire.BatchEvent
	if err := wire.ReadSSE(resp.Body, func(ev wire.BatchEvent) bool {
		evs = append(evs, ev)
		return true
	}); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return evs
}

// TestBatchSSEEventOrder submits over HTTP and checks the stream's
// contract: contiguous sequence numbers from 1, job-start first,
// job-done last, one item-done per item with start-before-done, and
// loss-free replay from ?from=N.
func TestBatchSSEEventOrder(t *testing.T) {
	srv, mgr := newTestManager(t, service.Config{}, Config{})
	ts := httptest.NewServer(mgr.Handler(srv.Handler()))
	defer ts.Close()

	man := wire.BatchManifest{}
	for i := 0; i < 4; i++ {
		man.Items = append(man.Items, wire.BatchItem{
			Name:   fmt.Sprintf("bin%d", i),
			Binary: genBinary(t, int64(31+i%2)), // two distinct contents
		})
	}
	body, _ := json.Marshal(man)
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /batch: %d: %s", resp.StatusCode, b)
	}
	var acc wire.BatchAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acc.Items != 4 {
		t.Fatalf("accepted %d items, want 4", acc.Items)
	}

	evs := collectSSE(t, ts.URL+"/batch/"+acc.ID+"/events")
	if len(evs) < 2+2*4 {
		t.Fatalf("only %d events for a 4-item job", len(evs))
	}
	started := map[int]bool{}
	doneCount := 0
	for i, ev := range evs {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d: sequence not contiguous from 1", i, ev.Seq)
		}
		if ev.Total != 4 {
			t.Errorf("event %d total = %d, want 4", i, ev.Total)
		}
		switch ev.Type {
		case wire.EventJobStart:
			if i != 0 {
				t.Errorf("job-start at position %d, want 0", i)
			}
		case wire.EventItemStart:
			started[ev.Item] = true
		case wire.EventItemDone:
			doneCount++
			if !started[ev.Item] {
				t.Errorf("item %d done before its start event", ev.Item)
			}
			if ev.Path == "" {
				t.Errorf("item %d done event carries no cache path", ev.Item)
			}
		case wire.EventItemFailed:
			t.Errorf("item %d failed: %s", ev.Item, ev.Err)
		case wire.EventJobDone:
			if i != len(evs)-1 {
				t.Errorf("job-done at position %d, want last (%d)", i, len(evs)-1)
			}
			if ev.Done != 4 {
				t.Errorf("job-done done = %d, want 4", ev.Done)
			}
		case wire.EventJobFailed:
			t.Error("job failed")
		}
	}
	if doneCount != 4 {
		t.Errorf("%d item-done events, want 4", doneCount)
	}

	// Replay from mid-stream: the finished job's log serves ?from=N with
	// exactly the suffix, duplicate-free.
	from := int64(len(evs) - 2)
	tail := collectSSE(t, fmt.Sprintf("%s/batch/%s/events?from=%d", ts.URL, acc.ID, from))
	if len(tail) != 2 {
		t.Fatalf("replay from %d returned %d events, want 2", from, len(tail))
	}
	if tail[0].Seq != from+1 {
		t.Errorf("replay starts at seq %d, want %d", tail[0].Seq, from+1)
	}
}

// TestBatchSSEClientDisconnect cancels an event stream mid-job: the
// job must still finish, and the subscriber gauge must drain to zero.
func TestBatchSSEClientDisconnect(t *testing.T) {
	srv, mgr := newTestManager(t, service.Config{}, Config{})
	// Slow the items down so the disconnect happens mid-job.
	local := mgr.LocalExec()
	var gate atomic.Bool
	mgr.SetExec(func(ctx context.Context, it *Item) (*ExecResult, error) {
		for !gate.Load() {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
		return local(ctx, it)
	})
	ts := httptest.NewServer(mgr.Handler(srv.Handler()))
	defer ts.Close()

	man := wire.BatchManifest{Items: []wire.BatchItem{{Binary: genBinary(t, 41)}}}
	job, err := mgr.Submit(man)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/batch/"+job.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first frame (job-start), then walk away mid-stream.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	cancel()
	resp.Body.Close()

	gate.Store(true)
	waitDone(t, job)
	if st := job.Status(); st.State != wire.BatchDone {
		t.Fatalf("job state after disconnect = %s, want %s", st.State, wire.BatchDone)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		mgr.mu.Lock()
		n := mgr.subscribers
		mgr.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber gauge stuck at %d after disconnect", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBatchBodyCap verifies the OOM guard on both doors the manager
// fronts: an over-cap /batch manifest and an over-cap /rewrite body
// each draw 413, and one byte under the cap does not.
func TestBatchBodyCap(t *testing.T) {
	const cap = 4096
	srv, mgr := newTestManager(t,
		service.Config{MaxRequestBytes: cap},
		Config{MaxRequestBytes: cap})
	ts := httptest.NewServer(mgr.Handler(srv.Handler()))
	defer ts.Close()

	post := func(path string, n int) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(strings.Repeat("x", n)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/batch", cap+1); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap /batch: %d, want 413", code)
	}
	if code := post("/rewrite", cap+1); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-cap /rewrite: %d, want 413", code)
	}
	// At the cap the guard must not fire; the garbage body fails later,
	// in the parser, as a plain 400.
	if code := post("/batch", cap); code != http.StatusBadRequest {
		t.Errorf("at-cap /batch: %d, want 400 (bad manifest, not 413)", code)
	}
}
