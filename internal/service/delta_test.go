package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/workload"
)

// TestDeltaMetricsScrape drives the delta path end to end over HTTP:
// version 1 of a binary is served cold, then a K-function mutation of
// it misses the analysis store but reassembles from the shared unit
// store. The scrape must show the delta cache-path label, the
// funcs-reused/recomputed counters matching the replies, and the
// function-unit store's own gauge series.
func TestDeltaMetricsScrape(t *testing.T) {
	p, err := workload.Generate(arch.X64, false, testProfile())
	if err != nil {
		t.Fatal(err)
	}
	v1 := p.Binary
	v2, _, err := workload.MutateVersion(v1, 2, 13)
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := &Client{BaseURL: ts.URL}

	opts := core.Options{Mode: core.ModeJT, Request: blockEmpty()}
	_, reply1, err := cl.Rewrite(context.Background(), v1.Marshal(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if reply1.FuncsReused != 0 || reply1.FuncsRecomputed == 0 {
		t.Fatalf("cold reply delta split = %d reused / %d recomputed", reply1.FuncsReused, reply1.FuncsRecomputed)
	}
	_, reply2, err := cl.Rewrite(context.Background(), v2.Marshal(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if reply2.FuncsReused == 0 {
		t.Fatalf("v2 reply reused nothing (recomputed %d): delta path never engaged", reply2.FuncsRecomputed)
	}
	if reply2.FuncsRecomputed >= reply1.FuncsRecomputed {
		t.Fatalf("v2 recomputed %d of %d funcs: not a delta", reply2.FuncsRecomputed, reply1.FuncsRecomputed)
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		`icfg_cache_path_total{path="cold"} 1`,
		`icfg_cache_path_total{path="delta"} 1`,
		fmt.Sprintf("icfg_analysis_funcs_reused_total %d", reply1.FuncsReused+reply2.FuncsReused),
		fmt.Sprintf("icfg_analysis_funcs_recomputed_total %d", reply1.FuncsRecomputed+reply2.FuncsRecomputed),
		fmt.Sprintf(`icfg_store_hits{store="funcs"} %d`, reply2.FuncsReused),
		`icfg_store_disk_hits{store="funcs"} 0`,
		`icfg_store_misses{store="analysis"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(text, `icfg_store_entries{store="funcs"}`) {
		t.Errorf("/metrics missing the funcs store entries gauge:\n%s", text)
	}

	// The drain report carries the unit store's split too.
	if rep := s.Stats().String(); !strings.Contains(rep, "func-unit store") {
		t.Errorf("drain report missing the func-unit store line:\n%s", rep)
	}
}
