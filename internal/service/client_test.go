package service

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"icfgpatch/internal/core"
)

// flakyListener fronts a real HTTP server but kills the first n
// accepted connections before a byte is exchanged — the client sees
// connection resets / EOFs exactly as it would from a cluster node
// dying mid-restart behind a gateway.
func flakyServer(t *testing.T, failFirst int, h http.Handler) (*Client, *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var killed atomic.Int64
	srv := &http.Server{Handler: h}
	go srv.Serve(&flakyListener{Listener: ln, failFirst: int64(failFirst), killed: &killed})
	t.Cleanup(func() { srv.Close() })
	return &Client{BaseURL: "http://" + ln.Addr().String(),
		Retries: 4, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond}, &killed
}

type flakyListener struct {
	net.Listener
	failFirst int64
	killed    *atomic.Int64
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.killed.Add(1) <= l.failFirst {
			// SO_LINGER 0 turns Close into a RST, so the client observes a
			// reset (or an EOF, depending on timing) rather than a FIN that
			// keep-alive machinery might paper over.
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			c.Close()
			continue
		}
		return c, nil
	}
}

// TestClientRetriesTransient: a server whose first connections die
// before any HTTP exchange is reached on a later attempt; the caller
// sees one successful round trip.
func TestClientRetriesTransient(t *testing.T) {
	raw := testBinaryRaw(t)
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	c, killed := flakyServer(t, 3, s.Handler())

	image, reply, err := c.Rewrite(context.Background(), raw,
		core.Options{Mode: core.ModeJT, Request: blockEmpty()})
	if err != nil {
		t.Fatalf("rewrite through flaky server: %v", err)
	}
	if len(image) == 0 || reply == nil {
		t.Fatal("empty success")
	}
	if k := killed.Load(); k < 4 {
		t.Fatalf("server killed %d connections; retries never exercised", k)
	}
}

// TestClientRetriesExhausted: with fewer retries than failures the
// transient error surfaces to the caller.
func TestClientRetriesExhausted(t *testing.T) {
	raw := testBinaryRaw(t)
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	c, _ := flakyServer(t, 100, s.Handler())
	c.Retries = 2

	_, _, err := c.Rewrite(context.Background(), raw,
		core.Options{Mode: core.ModeJT, Request: blockEmpty()})
	if err == nil {
		t.Fatal("rewrite succeeded through a dead server")
	}
	if !Transient(errors.Unwrap(err)) && !Transient(err) {
		t.Fatalf("exhausted retries surfaced a non-transient error: %v", err)
	}
}

// TestClientNoRetryOnHTTPError: a served response — even a failure
// status — must not be retried: the server may have executed the
// request, and the status is the answer.
func TestClientNoRetryOnHTTPError(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		http.Error(w, "rewrite failed", http.StatusUnprocessableEntity)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Retries: 5, RetryBase: time.Millisecond}
	_, _, err := c.Rewrite(context.Background(), []byte("x"),
		core.Options{Mode: core.ModeJT, Request: blockEmpty()})
	if err == nil {
		t.Fatal("422 did not surface as an error")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("server hit %d times for a non-transient failure, want 1", n)
	}
}

// TestTransientErrClassifier pins which failures are retry-safe.
func TestTransientErrClassifier(t *testing.T) {
	for _, err := range []error{syscall.ECONNREFUSED, syscall.ECONNRESET, io.EOF, io.ErrUnexpectedEOF} {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, context.Canceled, context.DeadlineExceeded, errors.New("boom")} {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

// TestClientBackoffNoOverflow is the regression test for the retry
// backoff overflow: `base << try` goes negative around try 38 (with the
// 50ms default base), and the negative backoff reached rand.Int63n,
// which panics on non-positive arguments. 64 retries against a dead
// listener walks try well past the overflow point; the fix saturates
// the backoff at RetryMax, so this must return an error — not panic.
func TestClientBackoffNoOverflow(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening: every attempt is ECONNREFUSED

	c := &Client{
		BaseURL: "http://" + addr,
		Retries: 64,
		// 1ns base/2ns max keep 64 capped sleeps instantaneous while the
		// attempt counter runs far past where the shift overflowed.
		RetryBase: 1,
		RetryMax:  2,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, _, err = c.Rewrite(ctx, []byte("x"), core.Options{Mode: core.ModeJT, Request: blockEmpty()})
	if err == nil {
		t.Fatal("rewrite against a dead listener succeeded")
	}
	if !Transient(err) {
		t.Fatalf("dead listener surfaced a non-transient error: %v", err)
	}
}
