package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"

	"icfgpatch/internal/core"
	"icfgpatch/internal/service/wire"
)

// Client drives a remote icfg-serve instance (or an icfg-gateway) over
// the /rewrite wire format. The zero value is not usable; set BaseURL.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// Trace asks the server for the request's span tree; it comes back
	// in Reply.TraceText.
	Trace bool
	// Retries is how many times a transiently-failed request is retried
	// (0 = no retries). Only connection-level failures — refused or
	// reset connections, EOF before response headers — are retried;
	// anything the server actually answered, including 5xx, is not,
	// because the request may have executed. Retries back off
	// exponentially from RetryBase with jitter, capped at RetryMax.
	Retries int
	// RetryBase is the first retry's backoff (default 50ms).
	RetryBase time.Duration
	// RetryMax caps the per-attempt backoff (default 2s).
	RetryMax time.Duration
}

// Transient reports whether a request failed in a way that proves
// the server never answered: connection refused (nothing listening —
// e.g. a node mid-restart behind a gateway), connection reset or torn
// down mid-write, or EOF before response headers. These are the
// cluster's routine failover signals and safe to retry even for
// non-idempotent work — an incomplete request body cannot have been
// processed. net.ErrClosed covers the transport's own teardown: its
// read loop sees the peer's reset and closes the connection while the
// write is still in flight, so the write reports a local close.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// do issues req's round trip with the client's retry policy. attempt
// builds a fresh *http.Request each time so the body reader is rewound.
func (c *Client) do(ctx context.Context, attempt func() (*http.Request, error)) (*http.Response, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.RetryMax
	if max <= 0 {
		max = 2 * time.Second
	}
	var lastErr error
	for try := 0; ; try++ {
		req, err := attempt()
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if try >= c.Retries || !Transient(err) || ctx.Err() != nil {
			return nil, lastErr
		}
		backoff := base << uint(try)
		if backoff > max {
			backoff = max
		}
		// Full jitter: sleep a uniform fraction of the backoff so a herd
		// of clients retrying a restarted node doesn't re-synchronise.
		d := time.Duration(rand.Int63n(int64(backoff) + 1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Rewrite submits a serialised binary with the given options and
// returns the rewritten image plus the server's reply metadata.
func (c *Client) Rewrite(ctx context.Context, raw []byte, opts core.Options) ([]byte, *Reply, error) {
	params, err := wire.EncodeOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	if c.Trace {
		params.Set("trace", "1")
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + "/rewrite?" + params.Encode()
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	})
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, nil, fmt.Errorf("service: remote rewrite failed (%s): %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	reply, image, err := wire.ReadFrame(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	return image, reply, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + "/stats"
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: stats: %s", resp.Status)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
