package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"icfgpatch/internal/core"
)

// Client drives a remote icfg-serve instance over the /rewrite wire
// format. The zero value is not usable; set BaseURL.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// Trace asks the server for the request's span tree; it comes back
	// in Reply.TraceText.
	Trace bool
}

// maxReplyHeader bounds the JSON header a client will accept, keeping a
// corrupt or hostile length prefix from driving a huge allocation.
const maxReplyHeader = 16 << 20

// Rewrite submits a serialised binary with the given options and
// returns the rewritten image plus the server's reply metadata.
func (c *Client) Rewrite(ctx context.Context, raw []byte, opts core.Options) ([]byte, *Reply, error) {
	params, err := EncodeOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	if c.Trace {
		params.Set("trace", "1")
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + "/rewrite?" + params.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, nil, fmt.Errorf("service: remote rewrite failed (%s): %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	var hdr [8]byte
	if _, err := io.ReadFull(resp.Body, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("service: truncated reply header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > maxReplyHeader {
		return nil, nil, fmt.Errorf("service: reply header declares %d bytes", n)
	}
	jr := make([]byte, n)
	if _, err := io.ReadFull(resp.Body, jr); err != nil {
		return nil, nil, fmt.Errorf("service: truncated reply: %w", err)
	}
	var reply Reply
	if err := json.Unmarshal(jr, &reply); err != nil {
		return nil, nil, fmt.Errorf("service: bad reply JSON: %w", err)
	}
	image, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("service: truncated image: %w", err)
	}
	return image, &reply, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + "/stats"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: stats: %s", resp.Status)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
