package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"time"

	"icfgpatch/internal/core"
	"icfgpatch/internal/service/wire"
)

// Client drives a remote icfg-serve instance (or an icfg-gateway) over
// the /rewrite wire format. The zero value is not usable; set BaseURL.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8844".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// Trace asks the server for the request's span tree; it comes back
	// in Reply.TraceText.
	Trace bool
	// Retries is how many times a transiently-failed request is retried
	// (0 = no retries). Only connection-level failures — refused or
	// reset connections, EOF before response headers — are retried;
	// anything the server actually answered, including 5xx, is not,
	// because the request may have executed. Retries back off
	// exponentially from RetryBase with jitter, capped at RetryMax.
	Retries int
	// RetryBase is the first retry's backoff (default 50ms).
	RetryBase time.Duration
	// RetryMax caps the per-attempt backoff (default 2s).
	RetryMax time.Duration
}

// Transient reports whether a request failed in a way that proves
// the server never answered: connection refused (nothing listening —
// e.g. a node mid-restart behind a gateway), connection reset or torn
// down mid-write, or EOF before response headers. These are the
// cluster's routine failover signals and safe to retry even for
// non-idempotent work — an incomplete request body cannot have been
// processed. net.ErrClosed covers the transport's own teardown: its
// read loop sees the peer's reset and closes the connection while the
// write is still in flight, so the write reports a local close.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// do issues req's round trip with the client's retry policy. attempt
// builds a fresh *http.Request each time so the body reader is rewound.
func (c *Client) do(ctx context.Context, attempt func() (*http.Request, error)) (*http.Response, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	base := c.RetryBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.RetryMax
	if max <= 0 {
		max = 2 * time.Second
	}
	var lastErr error
	for try := 0; ; try++ {
		req, err := attempt()
		if err != nil {
			return nil, err
		}
		resp, err := hc.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if try >= c.Retries || !Transient(err) || ctx.Err() != nil {
			return nil, lastErr
		}
		// Saturating doubling, not `base << try`: a shift by the raw
		// attempt number overflows int64 around try 38 at the 50ms
		// default base, and the negative result slipped past the cap
		// below straight into rand.Int63n, which panics on non-positive
		// arguments. Doubling stops as soon as the cap is reached, so no
		// retry count can overflow.
		backoff := base
		for i := 0; i < try && backoff < max; i++ {
			backoff <<= 1
		}
		if backoff > max || backoff <= 0 {
			backoff = max
		}
		// Full jitter: sleep a uniform fraction of the backoff so a herd
		// of clients retrying a restarted node doesn't re-synchronise.
		d := time.Duration(rand.Int63n(int64(backoff) + 1))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Rewrite submits a serialised binary with the given options and
// returns the rewritten image plus the server's reply metadata. A
// profile in opts is serialised and framed into the request body
// (profile=1); the query string never carries it.
func (c *Client) Rewrite(ctx context.Context, raw []byte, opts core.Options) ([]byte, *Reply, error) {
	body := raw
	prof := opts.Profile
	opts.Profile = nil
	params, err := wire.EncodeOptions(opts)
	if err != nil {
		return nil, nil, err
	}
	if prof != nil {
		params.Set("profile", "1")
		body = wire.FrameProfile(prof.Encode(), raw)
	}
	if c.Trace {
		params.Set("trace", "1")
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + "/rewrite?" + params.Encode()
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		return req, nil
	})
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, nil, fmt.Errorf("service: remote rewrite failed (%s): %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	reply, image, err := wire.ReadFrame(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("service: %w", err)
	}
	return image, reply, nil
}

// BatchSubmit posts a manifest to /batch and returns the accepted job
// ID. Submissions are not retried even on transport death: the server
// may have accepted the job before the connection died, and a blind
// resubmit would rewrite the fleet twice.
func (c *Client) BatchSubmit(ctx context.Context, m wire.BatchManifest) (*wire.BatchAccepted, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	u := strings.TrimSuffix(c.BaseURL, "/") + "/batch"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("service: batch submit failed (%s): %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	var acc wire.BatchAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		return nil, fmt.Errorf("service: bad batch accept body: %w", err)
	}
	return &acc, nil
}

// BatchStatus polls one job's status snapshot.
func (c *Client) BatchStatus(ctx context.Context, id string) (*wire.BatchStatus, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + "/batch/" + url.PathEscape(id)
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("service: batch status (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var st wire.BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// BatchEvents follows one job's SSE event stream from sequence `from`
// (0 streams from the beginning), calling fn per event until the
// stream ends — the server closes it after job-done/job-failed — or fn
// returns false. Transient disconnects resume from the last seen
// sequence number, up to Retries times per disconnect, so a node
// restart mid-stream costs duplicate-free continuation, not a dead
// progress display.
func (c *Client) BatchEvents(ctx context.Context, id string, from int64, fn func(wire.BatchEvent) bool) error {
	last := from
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	for attempt := 0; ; attempt++ {
		u := fmt.Sprintf("%s/batch/%s/events?from=%d",
			strings.TrimSuffix(c.BaseURL, "/"), url.PathEscape(id), last)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err == nil && resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			return fmt.Errorf("service: batch events (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
		}
		if err == nil {
			done := false
			err = wire.ReadSSE(resp.Body, func(ev wire.BatchEvent) bool {
				last = ev.Seq
				if !fn(ev) {
					done = true
					return false
				}
				if ev.Type == wire.EventJobDone || ev.Type == wire.EventJobFailed {
					done = true
					return false
				}
				return true
			})
			resp.Body.Close()
			if done || err == nil {
				return nil
			}
		}
		if attempt >= c.Retries || !Transient(err) || ctx.Err() != nil {
			return err
		}
	}
}

// BatchOutput fetches item idx's rewritten image.
func (c *Client) BatchOutput(ctx context.Context, id string, idx int) ([]byte, error) {
	u := fmt.Sprintf("%s/batch/%s/output/%d", strings.TrimSuffix(c.BaseURL, "/"), url.PathEscape(id), idx)
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("service: batch output (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	return io.ReadAll(resp.Body)
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (*ServerStats, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + "/stats"
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("service: stats: %s", resp.Status)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
