// Package sched is the rewrite service's scheduling layer: a bounded
// worker pool consuming two backpressured task queues — an interactive
// lane and a batch lane — with a graceful drain. It knows nothing about
// rewriting, caching, or HTTP — the layering split that lets the
// cluster plug new transports and storage behaviour into the service
// without touching how work is queued and drained.
//
// Semantics carried over from the original in-service pool, verbatim:
//
//   - Do rejects immediately with ErrQueueFull when the queue is at
//     capacity (the caller owns the retry policy) and with
//     ErrShuttingDown once Shutdown has begun.
//   - A caller whose context dies while its task is queued gets the
//     context error; the task stays queued, and the worker that later
//     dequeues it is expected to observe the dead context and abandon
//     cheaply (the task receives its submitter's context).
//   - Shutdown stops the workers after at most one in-flight task each,
//     then fails every still-queued task with ErrDrained.
//
// The batch lane (DoBatch) exists for fleet rewriting: batch items must
// never add latency to interactive requests, so workers always prefer
// the interactive queue, at most Workers-1 workers may run batch tasks
// at once (one worker is permanently reserved for interactive work on
// multi-worker pools), and a full batch queue blocks the submitter —
// backpressure for a background job — instead of rejecting.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Sentinel errors for the pool's rejection paths.
var (
	// ErrQueueFull is returned by Do when the queue is at capacity.
	ErrQueueFull = errors.New("service: request queue full")
	// ErrShuttingDown is returned for tasks submitted after Shutdown
	// began.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrDrained is returned for tasks that were queued when Shutdown
	// began. It wraps ErrShuttingDown, so errors.Is(err, ErrShuttingDown)
	// holds for both rejection flavours; the distinction lets the
	// service count at-the-door rejections and drained tasks separately.
	ErrDrained = fmt.Errorf("%w (drained from queue)", ErrShuttingDown)
)

// Config configures a Pool. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker goroutine count (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending interactive task queue (default: 64).
	QueueDepth int
	// BatchQueueDepth bounds the pending batch task queue (default: 256).
	BatchQueueDepth int
	// QueueWait, when set, observes each task's enqueue→dequeue wait.
	QueueWait func(time.Duration)
	// Dequeue, when set, runs as a worker picks up a task — test
	// instrumentation for deterministic scheduling assertions.
	Dequeue func()
	// Dropped, when set, runs once per task drained during Shutdown
	// (the task's Do call also returns ErrDrained).
	Dropped func()
}

type task struct {
	ctx      context.Context
	run      func(ctx context.Context) error
	err      error
	done     chan struct{}
	enqueued time.Time
}

// Pool is the bounded two-lane worker pool. Create with New, submit
// with Do (interactive) or DoBatch (batch), stop with Shutdown.
type Pool struct {
	cfg        Config
	queue      chan *task
	batchQueue chan *task
	// batchSlots caps how many workers may run batch tasks at once
	// (Workers-1, min 1), so at least one worker is always parked on the
	// interactive queue of a multi-worker pool.
	batchSlots chan struct{}
	drain      chan struct{}
	workers    sync.WaitGroup

	stateMu  sync.RWMutex
	draining bool
	stopped  chan struct{}
}

// New creates a Pool and starts its workers.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchQueueDepth <= 0 {
		cfg.BatchQueueDepth = 256
	}
	slots := cfg.Workers - 1
	if slots < 1 {
		slots = 1
	}
	p := &Pool{
		cfg:        cfg,
		queue:      make(chan *task, cfg.QueueDepth),
		batchQueue: make(chan *task, cfg.BatchQueueDepth),
		batchSlots: make(chan struct{}, slots),
		drain:      make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

// Do enqueues run on the interactive lane and waits for it. run
// executes exactly once on a worker goroutine with the submitter's
// context, unless the pool is draining (ErrShuttingDown / ErrDrained)
// or the queue is full (ErrQueueFull). If ctx dies while the task is
// queued, Do returns ctx's error and the task is abandoned at dequeue
// by contract of run observing its context.
func (p *Pool) Do(ctx context.Context, run func(ctx context.Context) error) error {
	t := &task{ctx: ctx, run: run, done: make(chan struct{}), enqueued: time.Now()}

	// The state lock pairs the draining check with the (non-blocking)
	// enqueue, so Shutdown's queue drain cannot miss a racing Do.
	p.stateMu.RLock()
	if p.draining {
		p.stateMu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case p.queue <- t:
		p.stateMu.RUnlock()
	default:
		p.stateMu.RUnlock()
		return ErrQueueFull
	}
	return p.wait(ctx, t)
}

// DoBatch enqueues run on the batch lane and waits for it. Unlike Do,
// a full batch queue blocks the submitter until space frees (or ctx
// dies, or the pool drains): batch submitters are background job
// runners that want backpressure, not an error to retry. Batch tasks
// are only dequeued when the interactive queue is empty, and at most
// Workers-1 workers run batch tasks concurrently.
func (p *Pool) DoBatch(ctx context.Context, run func(ctx context.Context) error) error {
	t := &task{ctx: ctx, run: run, done: make(chan struct{}), enqueued: time.Now()}
	for {
		// Same lock pairing as Do: the non-blocking enqueue under the
		// read lock is what keeps a racing Shutdown from missing this
		// task. A blocking send could slip into the queue after
		// Shutdown's drain loop finished and never complete.
		p.stateMu.RLock()
		if p.draining {
			p.stateMu.RUnlock()
			return ErrShuttingDown
		}
		enqueued := false
		select {
		case p.batchQueue <- t:
			enqueued = true
		default:
		}
		p.stateMu.RUnlock()
		if enqueued {
			return p.wait(ctx, t)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-p.drain:
			return ErrShuttingDown
		case <-time.After(2 * time.Millisecond):
			// Queue full: poll for space. The interval is far below any
			// rewrite's service time, so the wasted capacity is noise.
		}
	}
}

// wait blocks until the task completes or the submitter's context dies.
func (p *Pool) wait(ctx context.Context, t *task) error {
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		// The task stays queued; the worker that dequeues it observes
		// the dead context and abandons it at the first seam.
		return ctx.Err()
	}
}

// worker is one pool goroutine: it prefers the drain signal over new
// work and the interactive queue over the batch queue, so Shutdown
// stops the pool after at most the in-flight task per worker and batch
// work never delays an already-queued interactive request.
func (p *Pool) worker() {
	defer p.workers.Done()
	for {
		select {
		case <-p.drain:
			return
		default:
		}
		// Interactive work first, unconditionally.
		select {
		case <-p.drain:
			return
		case t := <-p.queue:
			p.serve(t)
			continue
		default:
		}
		// Nothing interactive queued: also watch the batch lane, but
		// only with a batch slot in hand — the worker that fails to get
		// one stays parked on the interactive queue, which is exactly
		// the reservation that bounds interactive dispatch latency
		// while a fleet job floods the batch lane.
		var batchCh chan *task
		holding := false
		select {
		case p.batchSlots <- struct{}{}:
			holding = true
			batchCh = p.batchQueue
		default:
		}
		select {
		case <-p.drain:
			if holding {
				<-p.batchSlots
			}
			return
		case t := <-p.queue:
			if holding {
				<-p.batchSlots
			}
			p.serve(t)
		case t := <-batchCh:
			p.serve(t)
			<-p.batchSlots
		}
	}
}

func (p *Pool) serve(t *task) {
	if p.cfg.Dequeue != nil {
		p.cfg.Dequeue()
	}
	if p.cfg.QueueWait != nil {
		p.cfg.QueueWait(time.Since(t.enqueued))
	}
	t.err = t.run(t.ctx)
	close(t.done)
}

// Shutdown drains the pool: new submissions are rejected, workers
// finish their in-flight tasks and stop, and every task still queued —
// on either lane — fails with ErrDrained. It returns ctx's error if the
// in-flight work outlives the context.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.stateMu.Lock()
	already := p.draining
	p.draining = true
	p.stateMu.Unlock()
	if already {
		select {
		case <-p.stopped:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	close(p.drain)

	finished := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return ctx.Err()
	}

	// With the state lock held once more, no Do can still be enqueueing:
	// everything left in either queue is drainable.
	p.stateMu.Lock()
	for _, q := range []chan *task{p.queue, p.batchQueue} {
		for {
			select {
			case t := <-q:
				if p.cfg.Dropped != nil {
					p.cfg.Dropped()
				}
				t.err = ErrDrained
				close(t.done)
				continue
			default:
			}
			break
		}
	}
	p.stateMu.Unlock()
	close(p.stopped)
	return nil
}

// Drain returns a channel closed when Shutdown begins — the signal
// workers prefer over new work. Exposed so embedders (and tests) can
// sequence against the start of a drain.
func (p *Pool) Drain() <-chan struct{} { return p.drain }

// Queued returns the number of tasks waiting in the interactive queue.
func (p *Pool) Queued() int { return len(p.queue) }

// QueueCap returns the interactive queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }

// BatchQueued returns the number of tasks waiting in the batch queue.
func (p *Pool) BatchQueued() int { return len(p.batchQueue) }

// BatchQueueCap returns the batch queue's capacity.
func (p *Pool) BatchQueueCap() int { return cap(p.batchQueue) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }
