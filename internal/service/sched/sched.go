// Package sched is the rewrite service's scheduling layer: a bounded
// worker pool consuming a backpressured task queue, with a graceful
// drain. It knows nothing about rewriting, caching, or HTTP — the
// layering split that lets the cluster plug new transports and storage
// behaviour into the service without touching how work is queued and
// drained.
//
// Semantics carried over from the original in-service pool, verbatim:
//
//   - Do rejects immediately with ErrQueueFull when the queue is at
//     capacity (the caller owns the retry policy) and with
//     ErrShuttingDown once Shutdown has begun.
//   - A caller whose context dies while its task is queued gets the
//     context error; the task stays queued, and the worker that later
//     dequeues it is expected to observe the dead context and abandon
//     cheaply (the task receives its submitter's context).
//   - Shutdown stops the workers after at most one in-flight task each,
//     then fails every still-queued task with ErrDrained.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Sentinel errors for the pool's rejection paths.
var (
	// ErrQueueFull is returned by Do when the queue is at capacity.
	ErrQueueFull = errors.New("service: request queue full")
	// ErrShuttingDown is returned for tasks submitted after Shutdown
	// began.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrDrained is returned for tasks that were queued when Shutdown
	// began. It wraps ErrShuttingDown, so errors.Is(err, ErrShuttingDown)
	// holds for both rejection flavours; the distinction lets the
	// service count at-the-door rejections and drained tasks separately.
	ErrDrained = fmt.Errorf("%w (drained from queue)", ErrShuttingDown)
)

// Config configures a Pool. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker goroutine count (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending task queue (default: 64).
	QueueDepth int
	// QueueWait, when set, observes each task's enqueue→dequeue wait.
	QueueWait func(time.Duration)
	// Dequeue, when set, runs as a worker picks up a task — test
	// instrumentation for deterministic scheduling assertions.
	Dequeue func()
	// Dropped, when set, runs once per task drained during Shutdown
	// (the task's Do call also returns ErrDrained).
	Dropped func()
}

type task struct {
	ctx      context.Context
	run      func(ctx context.Context) error
	err      error
	done     chan struct{}
	enqueued time.Time
}

// Pool is the bounded worker pool. Create with New, submit with Do,
// stop with Shutdown.
type Pool struct {
	cfg     Config
	queue   chan *task
	drain   chan struct{}
	workers sync.WaitGroup

	stateMu  sync.RWMutex
	draining bool
	stopped  chan struct{}
}

// New creates a Pool and starts its workers.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	p := &Pool{
		cfg:     cfg,
		queue:   make(chan *task, cfg.QueueDepth),
		drain:   make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		p.workers.Add(1)
		go p.worker()
	}
	return p
}

// Do enqueues run and waits for it. run executes exactly once on a
// worker goroutine with the submitter's context, unless the pool is
// draining (ErrShuttingDown / ErrDrained) or the queue is full
// (ErrQueueFull). If ctx dies while the task is queued, Do returns
// ctx's error and the task is abandoned at dequeue by contract of run
// observing its context.
func (p *Pool) Do(ctx context.Context, run func(ctx context.Context) error) error {
	t := &task{ctx: ctx, run: run, done: make(chan struct{}), enqueued: time.Now()}

	// The state lock pairs the draining check with the (non-blocking)
	// enqueue, so Shutdown's queue drain cannot miss a racing Do.
	p.stateMu.RLock()
	if p.draining {
		p.stateMu.RUnlock()
		return ErrShuttingDown
	}
	select {
	case p.queue <- t:
		p.stateMu.RUnlock()
	default:
		p.stateMu.RUnlock()
		return ErrQueueFull
	}

	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		// The task stays queued; the worker that dequeues it observes
		// the dead context and abandons it at the first seam.
		return ctx.Err()
	}
}

// worker is one pool goroutine: it prefers the drain signal over new
// work, so Shutdown stops the pool after at most the in-flight task per
// worker.
func (p *Pool) worker() {
	defer p.workers.Done()
	for {
		select {
		case <-p.drain:
			return
		default:
		}
		select {
		case <-p.drain:
			return
		case t := <-p.queue:
			if p.cfg.Dequeue != nil {
				p.cfg.Dequeue()
			}
			if p.cfg.QueueWait != nil {
				p.cfg.QueueWait(time.Since(t.enqueued))
			}
			t.err = t.run(t.ctx)
			close(t.done)
		}
	}
}

// Shutdown drains the pool: new submissions are rejected, workers
// finish their in-flight tasks and stop, and every task still queued
// fails with ErrDrained. It returns ctx's error if the in-flight work
// outlives the context.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.stateMu.Lock()
	already := p.draining
	p.draining = true
	p.stateMu.Unlock()
	if already {
		select {
		case <-p.stopped:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	close(p.drain)

	finished := make(chan struct{})
	go func() {
		p.workers.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return ctx.Err()
	}

	// With the state lock held once more, no Do can still be enqueueing:
	// everything left in the queue is drainable.
	p.stateMu.Lock()
	for {
		select {
		case t := <-p.queue:
			if p.cfg.Dropped != nil {
				p.cfg.Dropped()
			}
			t.err = ErrDrained
			close(t.done)
			continue
		default:
		}
		break
	}
	p.stateMu.Unlock()
	close(p.stopped)
	return nil
}

// Drain returns a channel closed when Shutdown begins — the signal
// workers prefer over new work. Exposed so embedders (and tests) can
// sequence against the start of a drain.
func (p *Pool) Drain() <-chan struct{} { return p.drain }

// Queued returns the number of tasks waiting in the queue.
func (p *Pool) Queued() int { return len(p.queue) }

// QueueCap returns the queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.queue) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.cfg.Workers }
