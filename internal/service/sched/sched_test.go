package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRejections pins the three rejection paths: queue full at the
// door, shutting down at the door, and drained from the queue — with
// the Dropped hook firing exactly once per drained task.
func TestPoolRejections(t *testing.T) {
	var dropped atomic.Int64
	p := New(Config{Workers: 1, QueueDepth: 2, Dropped: func() { dropped.Add(1) }})

	// Wedge the single worker.
	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(context.Context) error {
			close(running)
			<-gate
			return nil
		})
	}()
	<-running

	// Fill the queue behind it.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- p.Do(context.Background(), func(context.Context) error { return nil })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Queued() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d queued", p.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	if err := p.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue Do: err = %v, want ErrQueueFull", err)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- p.Shutdown(context.Background()) }()
	<-p.Drain()
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != ErrShuttingDown {
		t.Fatalf("at-door Do: err = %v, want ErrShuttingDown exactly", err)
	}
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	for i := 0; i < 2; i++ {
		err := <-errs
		if !errors.Is(err, ErrDrained) || !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("queued Do: err = %v, want ErrDrained wrapping ErrShuttingDown", err)
		}
	}
	if n := dropped.Load(); n != 2 {
		t.Fatalf("Dropped hook ran %d times, want 2", n)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeat shutdown: %v", err)
	}
}

// TestPoolContextWhileQueued: the submitter's dead context unblocks Do
// while the task stays queued; the task later runs with that dead
// context (the worker-side abandon contract).
func TestPoolContextWhileQueued(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4})
	defer p.Shutdown(context.Background())

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error {
		close(running)
		<-gate
		return nil
	})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	sawDead := make(chan bool, 1)
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(c context.Context) error {
			sawDead <- c.Err() != nil
			return c.Err()
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("task never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do after cancel: err = %v, want context.Canceled", err)
	}
	close(gate)
	if !<-sawDead {
		t.Fatal("abandoned task ran with a live context")
	}
}

// TestPoolHooks: QueueWait and Dequeue observe each executed task.
func TestPoolHooks(t *testing.T) {
	var dequeues, waits atomic.Int64
	p := New(Config{
		Workers: 2, QueueDepth: 4,
		Dequeue:   func() { dequeues.Add(1) },
		QueueWait: func(d time.Duration) { waits.Add(1) },
	})
	defer p.Shutdown(context.Background())
	for i := 0; i < 5; i++ {
		if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if dequeues.Load() != 5 || waits.Load() != 5 {
		t.Fatalf("hooks: dequeues=%d waits=%d, want 5/5", dequeues.Load(), waits.Load())
	}
}
