package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRejections pins the three rejection paths: queue full at the
// door, shutting down at the door, and drained from the queue — with
// the Dropped hook firing exactly once per drained task.
func TestPoolRejections(t *testing.T) {
	var dropped atomic.Int64
	p := New(Config{Workers: 1, QueueDepth: 2, Dropped: func() { dropped.Add(1) }})

	// Wedge the single worker.
	gate := make(chan struct{})
	running := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(context.Context) error {
			close(running)
			<-gate
			return nil
		})
	}()
	<-running

	// Fill the queue behind it.
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- p.Do(context.Background(), func(context.Context) error { return nil })
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Queued() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d queued", p.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	if err := p.Do(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue Do: err = %v, want ErrQueueFull", err)
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- p.Shutdown(context.Background()) }()
	<-p.Drain()
	if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != ErrShuttingDown {
		t.Fatalf("at-door Do: err = %v, want ErrShuttingDown exactly", err)
	}
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	for i := 0; i < 2; i++ {
		err := <-errs
		if !errors.Is(err, ErrDrained) || !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("queued Do: err = %v, want ErrDrained wrapping ErrShuttingDown", err)
		}
	}
	if n := dropped.Load(); n != 2 {
		t.Fatalf("Dropped hook ran %d times, want 2", n)
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeat shutdown: %v", err)
	}
}

// TestPoolContextWhileQueued: the submitter's dead context unblocks Do
// while the task stays queued; the task later runs with that dead
// context (the worker-side abandon contract).
func TestPoolContextWhileQueued(t *testing.T) {
	p := New(Config{Workers: 1, QueueDepth: 4})
	defer p.Shutdown(context.Background())

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) error {
		close(running)
		<-gate
		return nil
	})
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	sawDead := make(chan bool, 1)
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(c context.Context) error {
			sawDead <- c.Err() != nil
			return c.Err()
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("task never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do after cancel: err = %v, want context.Canceled", err)
	}
	close(gate)
	if !<-sawDead {
		t.Fatal("abandoned task ran with a live context")
	}
}

// TestPoolHooks: QueueWait and Dequeue observe each executed task.
func TestPoolHooks(t *testing.T) {
	var dequeues, waits atomic.Int64
	p := New(Config{
		Workers: 2, QueueDepth: 4,
		Dequeue:   func() { dequeues.Add(1) },
		QueueWait: func(d time.Duration) { waits.Add(1) },
	})
	defer p.Shutdown(context.Background())
	for i := 0; i < 5; i++ {
		if err := p.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if dequeues.Load() != 5 || waits.Load() != 5 {
		t.Fatalf("hooks: dequeues=%d waits=%d, want 5/5", dequeues.Load(), waits.Load())
	}
}

// TestBatchLaneReservedWorker: with W workers, at most W-1 may run
// batch tasks, so an interactive request always finds a worker even
// while the batch lane is saturated with long-running tasks.
func TestBatchLaneReservedWorker(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 4, BatchQueueDepth: 8})
	defer p.Shutdown(context.Background())

	// Saturate the batch lane: slot cap is Workers-1 = 1, so exactly one
	// batch task runs; the rest queue behind it.
	gate := make(chan struct{})
	running := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.DoBatch(context.Background(), func(context.Context) error {
				running <- struct{}{}
				<-gate
				return nil
			})
		}()
	}
	<-running // one batch task holds the single batch slot
	deadline := time.Now().Add(5 * time.Second)
	for p.BatchQueued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch queue never backed up")
		}
		time.Sleep(time.Millisecond)
	}
	if n := len(running); n != 0 {
		t.Fatalf("%d extra batch tasks running; slot cap not enforced", n+1)
	}

	// The reserved worker serves interactive work immediately.
	done := make(chan error, 1)
	go func() {
		done <- p.Do(context.Background(), func(context.Context) error { return nil })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interactive Do under batch flood: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("interactive request starved behind batch tasks")
	}
	if p.BatchQueued() == 0 {
		t.Fatal("batch queue drained before the interactive request finished; preemption untested")
	}
	close(gate)
	wg.Wait()
}

// TestBatchLaneBackpressure: a full batch queue blocks DoBatch instead
// of rejecting, and unblocks when space frees.
func TestBatchLaneBackpressure(t *testing.T) {
	p := New(Config{Workers: 2, QueueDepth: 2, BatchQueueDepth: 1})
	defer p.Shutdown(context.Background())

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.DoBatch(context.Background(), func(context.Context) error {
		close(running)
		<-gate
		return nil
	})
	<-running
	// Fill the 1-deep batch queue.
	queued := make(chan error, 1)
	go func() {
		queued <- p.DoBatch(context.Background(), func(context.Context) error { return nil })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.BatchQueued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("batch queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// A third submission must block (not error) until space frees.
	blocked := make(chan error, 1)
	go func() {
		blocked <- p.DoBatch(context.Background(), func(context.Context) error { return nil })
	}()
	select {
	case err := <-blocked:
		t.Fatalf("DoBatch on a full queue returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	for _, ch := range []chan error{queued, blocked} {
		if err := <-ch; err != nil {
			t.Fatalf("backpressured DoBatch: %v", err)
		}
	}
}

// TestBatchLaneDrain: Shutdown fails queued batch tasks with ErrDrained
// and a DoBatch blocked on a full queue with ErrShuttingDown — neither
// hangs.
func TestBatchLaneDrain(t *testing.T) {
	var dropped atomic.Int64
	p := New(Config{Workers: 1, QueueDepth: 2, BatchQueueDepth: 1, Dropped: func() { dropped.Add(1) }})

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.DoBatch(context.Background(), func(context.Context) error {
		close(running)
		<-gate
		return nil
	})
	<-running
	queued := make(chan error, 1)
	go func() {
		queued <- p.DoBatch(context.Background(), func(context.Context) error { return nil })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for p.BatchQueued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("batch queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- p.DoBatch(context.Background(), func(context.Context) error { return nil })
	}()

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- p.Shutdown(context.Background()) }()
	<-p.Drain()
	close(gate) // let the in-flight batch task finish so workers exit
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-queued; !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("queued batch task: err = %v, want ErrDrained", err)
	}
	if err := <-blocked; !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("blocked DoBatch: err = %v, want ErrShuttingDown", err)
	}
	if dropped.Load() != 1 {
		t.Fatalf("dropped hook fired %d times, want 1", dropped.Load())
	}
}
