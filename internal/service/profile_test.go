package service

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/profile"
	"icfgpatch/internal/service/wire"
)

func blockCounter() instrument.Request {
	return instrument.Request{Where: instrument.BlockEntry, Payload: instrument.PayloadCounter}
}

// guidedFixture builds the shared test inputs: a workload binary, a
// hot-skewed profile over its functions, and the guided/unguided local
// rewrites every remote path must reproduce byte-for-byte.
func guidedFixture(t *testing.T) (raw []byte, prof *profile.Profile, guided, unguided []byte) {
	t.Helper()
	raw = testBinaryRaw(t)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		t.Fatal(err)
	}
	heat := make(map[uint64]uint64)
	for i, f := range an.Graph.Funcs {
		if i%4 == 0 {
			heat[f.Entry] = 500
		} else {
			heat[f.Entry] = 1
		}
	}
	prof = an.ProfileFromHeat("fixture", heat)

	opts := core.Options{Mode: core.ModeJT, Request: blockCounter(), Profile: prof}
	g, err := an.Patch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.VariantFuncs == 0 {
		t.Fatal("fixture profile planned no variants")
	}
	opts.Profile = nil
	u, err := an.Patch(opts)
	if err != nil {
		t.Fatal(err)
	}
	return raw, prof, g.Binary.Marshal(), u.Binary.Marshal()
}

// TestProfileUploadRemote: a client rewrite carrying a profile must
// produce bytes identical to the local guided rewrite — and different
// from the unguided one — with the variant stats riding back in the
// reply.
func TestProfileUploadRemote(t *testing.T) {
	raw, prof, guided, unguided := guidedFixture(t)
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	image, reply, err := c.Rewrite(context.Background(), raw,
		core.Options{Mode: core.ModeJT, Request: blockCounter(), Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(image, guided) {
		t.Fatal("remote guided rewrite differs from local guided rewrite")
	}
	if bytes.Equal(image, unguided) {
		t.Fatal("remote guided rewrite matches the unguided output — profile was dropped in transit")
	}
	if reply.Stats.VariantFuncs == 0 || reply.Stats.HotFuncs == 0 {
		t.Fatalf("reply stats hot=%d variants=%d: guidance invisible in the reply",
			reply.Stats.HotFuncs, reply.Stats.VariantFuncs)
	}

	plain, _, err := c.Rewrite(context.Background(), raw,
		core.Options{Mode: core.ModeJT, Request: blockCounter()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, unguided) {
		t.Fatal("remote unguided rewrite differs from local unguided rewrite")
	}
}

// TestProfileUploadDegrades: a well-framed but corrupt (or trivial)
// profile degrades to the unguided rewrite — 200, unguided bytes, no
// error. Bad framing, by contrast, is the sender's bug: 400.
func TestProfileUploadDegrades(t *testing.T) {
	raw, prof, _, unguided := guidedFixture(t)
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/rewrite?mode=jt&where=block&payload=counter&profile=1",
			"application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Corrupt profile: flip a byte past the magic so decode fails.
	pb := prof.Encode()
	pb[len(pb)-1] ^= 0xFF
	resp := post(wire.FrameProfile(pb, raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt profile got %s, want 200 (degrade, not fail)", resp.Status)
	}
	_, image, err := wire.ReadFrame(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(image, unguided) {
		t.Fatal("corrupt profile did not degrade to the unguided bytes")
	}

	// Trivial profile: decodes fine, carries no heat.
	trivial := (&profile.Profile{Arch: arch.X64}).Encode()
	resp = post(wire.FrameProfile(trivial, raw))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trivial profile got %s, want 200", resp.Status)
	}
	_, image, err = wire.ReadFrame(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(image, unguided) {
		t.Fatal("trivial profile did not degrade to the unguided bytes")
	}

	// Hostile framing: declared profile length exceeds the body.
	bad := wire.FrameProfile(prof.Encode(), raw)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	resp = post(bad)
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hostile framing got %s, want 400", resp.Status)
	}
	if !strings.Contains(string(msg), "profile") {
		t.Fatalf("400 body %q does not name the framing problem", msg)
	}
}

// TestProfileCacheIdentity: the profile is part of the result cache's
// key — a repeat guided request replays from cache, guided and
// unguided requests never share an entry, and a degraded (corrupt)
// profile lands on the unguided entry.
func TestProfileCacheIdentity(t *testing.T) {
	raw, prof, _, _ := guidedFixture(t)
	s := New(Config{Workers: 2, ResultEntries: 16})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}

	guidedOpts := core.Options{Mode: core.ModeJT, Request: blockCounter(), Profile: prof}
	plainOpts := core.Options{Mode: core.ModeJT, Request: blockCounter()}

	if _, reply, err := c.Rewrite(context.Background(), raw, guidedOpts); err != nil {
		t.Fatal(err)
	} else if reply.ResultHit {
		t.Fatal("first guided request was a result hit")
	}
	if _, reply, err := c.Rewrite(context.Background(), raw, guidedOpts); err != nil {
		t.Fatal(err)
	} else if !reply.ResultHit {
		t.Fatal("repeat guided request missed the result cache")
	}
	if _, reply, err := c.Rewrite(context.Background(), raw, plainOpts); err != nil {
		t.Fatal(err)
	} else if reply.ResultHit {
		t.Fatal("unguided request hit the guided cache entry")
	}

	// A corrupt profile degrades to nil guidance, so its fingerprint must
	// collapse onto the unguided entry just served.
	pb := prof.Encode()
	pb[len(pb)-1] ^= 0xFF
	resp, err := http.Post(srv.URL+"/rewrite?mode=jt&where=block&payload=counter&profile=1",
		"application/octet-stream", bytes.NewReader(wire.FrameProfile(pb, raw)))
	if err != nil {
		t.Fatal(err)
	}
	reply, _, err := wire.ReadFrame(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reply.ResultHit {
		t.Fatal("degraded-profile request missed the unguided cache entry")
	}
}
