// Package wire is the rewrite service's transport contract: the
// /rewrite option encoding, the reply frame, and nothing else. It is
// the one vocabulary every process in a deployment shares — icfg-serve
// nodes, the icfg-gateway front door, icfg-rewrite -remote, and the
// cluster's peer-to-peer endpoints — split out of the service so that
// transports (HTTP handlers, clients, proxies) can speak the format
// without dragging in scheduling or storage.
//
// The /rewrite frame:
//
//	POST /rewrite?mode=jt&where=block&payload=empty[&funcs=a,b][&verify=1][&gap=N][&profile=1][&features=N]
//	  body: serialised input binary (.icfg bytes); with profile=1 the
//	        body is FrameProfile's framing — an 8-byte little-endian
//	        profile length, the serialised profile artifact, then the
//	        binary — so the profile participates in content-hash routing
//	        and cache identity without a second upload channel
//	  200 body: 8-byte little-endian JSON length, a JSON Reply, then
//	            the serialised rewritten binary
//	  errors: 400 bad request/options, 422 rewrite failure,
//	          429 queue full, 503 shutting down, 504 deadline exceeded
//
// features=N is the option bitfield (decimal; see FeatureNoEvidence).
// Every door — the plain serve door, a cluster node, the gateway —
// rejects unknown bits with 400 rather than serving the request with
// part of its semantics silently dropped: a feature bit changes what
// the rewrite MEANS (and therefore its cache identity), so an old
// process that does not understand one must refuse, not guess.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"

	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

// Feature bits carried by the features=<bits> query parameter.
const (
	// FeatureNoEvidence disables the landing-pad evidence layer for the
	// request (core.Options.NoEvidence): the binary is analysed on the
	// historical conservative path as if it carried no markers.
	FeatureNoEvidence uint64 = 1 << 0

	// KnownFeatures is the mask of feature bits this build understands.
	KnownFeatures = FeatureNoEvidence
)

// ParseFeatures parses a features=<bits> parameter value. The empty
// string is the zero bitfield. Unknown bits are an error — the caller
// turns it into a 400 — because each bit alters rewrite semantics and
// cache identity, so ignoring one would serve a subtly wrong answer.
func ParseFeatures(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	bits, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad features %q: %v", s, err)
	}
	if unknown := bits &^ KnownFeatures; unknown != 0 {
		return 0, fmt.Errorf("unknown feature bits %#x in features=%s (this build understands %#x)", unknown, s, uint64(KnownFeatures))
	}
	return bits, nil
}

// FeatureBits renders the options that travel as feature bits.
func FeatureBits(o core.Options) uint64 {
	var bits uint64
	if o.NoEvidence {
		bits |= FeatureNoEvidence
	}
	return bits
}

// Reply is the JSON half of a /rewrite response.
type Reply struct {
	Stats       core.Stats `json:"stats"`
	MetricsText string     `json:"metrics"`
	AnalysisHit bool       `json:"analysisHit"`
	ResultHit   bool       `json:"resultHit"`
	// FuncsReused / FuncsRecomputed expose the delta engine's work split
	// for the analysis behind this response: how many function units were
	// pulled unchanged from the unit store versus recomputed. On cache
	// hits they describe the run that originally built the artifact.
	FuncsReused     int   `json:"funcsReused"`
	FuncsRecomputed int   `json:"funcsRecomputed"`
	ElapsedUS       int64 `json:"elapsedUs"`
	// TraceText is the rendered span tree (trace=1 requests only).
	TraceText string `json:"trace,omitempty"`
}

// MaxReplyHeader bounds the JSON header a reader will accept, keeping a
// corrupt or hostile length prefix from driving a huge allocation.
const MaxReplyHeader = 16 << 20

// WriteFrame writes one /rewrite response frame: length-prefixed JSON
// reply, then the image bytes.
func WriteFrame(w io.Writer, reply *Reply, image []byte) error {
	jr, err := json.Marshal(reply)
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(jr)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(jr); err != nil {
		return err
	}
	_, err = w.Write(image)
	return err
}

// ReadFrame reads one /rewrite response frame, returning the reply and
// the image bytes.
func ReadFrame(r io.Reader) (*Reply, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("wire: truncated reply header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > MaxReplyHeader {
		return nil, nil, fmt.Errorf("wire: reply header declares %d bytes", n)
	}
	jr := make([]byte, n)
	if _, err := io.ReadFull(r, jr); err != nil {
		return nil, nil, fmt.Errorf("wire: truncated reply: %w", err)
	}
	var reply Reply
	if err := json.Unmarshal(jr, &reply); err != nil {
		return nil, nil, fmt.Errorf("wire: bad reply JSON: %w", err)
	}
	image, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: truncated image: %w", err)
	}
	return &reply, image, nil
}

// EncodeOptions renders the CLI-expressible rewrite options as query
// parameters. Options outside the wire surface (instrumentation at raw
// addresses, baseline variants) are rejected: they are in-process-only.
func EncodeOptions(o core.Options) (url.Values, error) {
	v := url.Values{}
	v.Set("mode", o.Mode.String())
	switch o.Request.Where {
	case instrument.BlockEntry:
		v.Set("where", "block")
	case instrument.FuncEntry:
		v.Set("where", "func")
	default:
		return nil, fmt.Errorf("wire: instrumentation point %d not expressible on the wire", o.Request.Where)
	}
	switch o.Request.Payload {
	case instrument.PayloadEmpty:
		v.Set("payload", "empty")
	case instrument.PayloadCounter:
		v.Set("payload", "counter")
	default:
		return nil, fmt.Errorf("wire: payload %d not expressible on the wire", o.Request.Payload)
	}
	if len(o.Request.Funcs) > 0 {
		v.Set("funcs", strings.Join(o.Request.Funcs, ","))
	}
	if o.Verify {
		v.Set("verify", "1")
	}
	if o.InstrGap > 0 {
		v.Set("gap", strconv.FormatUint(o.InstrGap, 10))
	}
	if bits := FeatureBits(o); bits != 0 {
		v.Set("features", strconv.FormatUint(bits, 10))
	}
	if o.Variant != (core.Variant{}) {
		return nil, errors.New("wire: baseline variants are not expressible on the wire")
	}
	if o.Profile != nil {
		return nil, errors.New("wire: profiles travel in the request body (profile=1 framing), not the query string")
	}
	return v, nil
}

// FrameProfile builds a profile=1 request body: an 8-byte
// little-endian profile length, the serialised profile artifact, then
// the serialised binary. Framing the profile into the body — instead
// of a side channel — keeps one POST per rewrite and folds the profile
// into the cluster's content-hash routing for free.
func FrameProfile(profileBytes, image []byte) []byte {
	out := make([]byte, 8+len(profileBytes)+len(image))
	binary.LittleEndian.PutUint64(out[:8], uint64(len(profileBytes)))
	copy(out[8:], profileBytes)
	copy(out[8+len(profileBytes):], image)
	return out
}

// SplitProfile undoes FrameProfile, returning the profile artifact
// bytes and the binary bytes. The declared profile length is validated
// against the body before any slicing, so a hostile prefix cannot
// drive an out-of-range read.
func SplitProfile(body []byte) (profileBytes, binaryBytes []byte, err error) {
	if len(body) < 8 {
		return nil, nil, errors.New("wire: profiled body shorter than its length prefix")
	}
	n := binary.LittleEndian.Uint64(body[:8])
	if n > uint64(len(body)-8) {
		return nil, nil, fmt.Errorf("wire: profiled body declares %d profile bytes, only %d present", n, len(body)-8)
	}
	return body[8 : 8+n], body[8+n:], nil
}

// ParseMode parses a wire mode string; "" selects the default (jt).
func ParseMode(m string) (core.Mode, error) {
	switch m {
	case "dir":
		return core.ModeDir, nil
	case "jt", "":
		return core.ModeJT, nil
	case "func-ptr", "funcptr":
		return core.ModeFuncPtr, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", m)
	}
}

// ParseOptions is EncodeOptions' inverse, also used by the CLIs to turn
// their flags into core.Options.
func ParseOptions(v url.Values) (core.Options, error) {
	var o core.Options
	mode, err := ParseMode(v.Get("mode"))
	if err != nil {
		return o, err
	}
	o.Mode = mode
	switch w := v.Get("where"); w {
	case "block", "":
		o.Request.Where = instrument.BlockEntry
	case "func":
		o.Request.Where = instrument.FuncEntry
	default:
		return o, fmt.Errorf("unknown instrumentation point %q", w)
	}
	switch p := v.Get("payload"); p {
	case "empty", "":
		o.Request.Payload = instrument.PayloadEmpty
	case "counter":
		o.Request.Payload = instrument.PayloadCounter
	default:
		return o, fmt.Errorf("unknown payload %q", p)
	}
	if f := v.Get("funcs"); f != "" {
		o.Request.Funcs = strings.Split(f, ",")
	}
	o.Verify = v.Get("verify") == "1" || v.Get("verify") == "true"
	bits, err := ParseFeatures(v.Get("features"))
	if err != nil {
		return o, err
	}
	o.NoEvidence = bits&FeatureNoEvidence != 0
	if g := v.Get("gap"); g != "" {
		gap, err := strconv.ParseUint(g, 10, 64)
		if err != nil {
			return o, fmt.Errorf("bad gap %q: %v", g, err)
		}
		o.InstrGap = gap
	}
	return o, nil
}
