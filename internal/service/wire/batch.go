// Batch wire contract: the /batch manifest, job status, and event
// encodings, plus the SSE framing both ends of the event stream speak.
//
// The batch surface:
//
//	POST /batch                 body: JSON BatchManifest
//	                            202 body: JSON BatchAccepted
//	GET  /batch/{id}            200 body: JSON BatchStatus (poll fallback)
//	GET  /batch/{id}/events     200 text/event-stream of BatchEvents,
//	                            ?from=N (or Last-Event-ID) resumes after
//	                            sequence N; the stream ends after the
//	                            job-done / job-failed event
//	GET  /batch/{id}/output/{i} 200 body: item i's rewritten image bytes
//
// Every event is `id: <seq>` + `event: <type>` + one `data:` line of
// JSON; sequence numbers are per-job, contiguous from 1, so a client
// that reconnects with ?from=<last seen> misses nothing and duplicates
// nothing.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"icfgpatch/internal/core"
)

// DefaultMaxBody caps request bodies at every service door (/rewrite on
// serve, node, and gateway, and the /batch manifest) unless configured
// otherwise. One oversized POST must not be able to OOM a node: the cap
// is enforced by http.MaxBytesReader, so the connection is also torn
// down instead of draining the remainder.
const DefaultMaxBody int64 = 256 << 20

// ReadBody reads r's body through http.MaxBytesReader with the given
// cap (0 selects DefaultMaxBody; negative disables the cap). On
// failure it writes the HTTP error — 413 when the cap was exceeded,
// 400 otherwise — and returns ok=false.
func ReadBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	if limit == 0 {
		limit = DefaultMaxBody
	}
	body := r.Body
	if limit > 0 {
		body = http.MaxBytesReader(w, r.Body, limit)
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d-byte cap", mbe.Limit),
				http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return raw, true
}

// MaxBatchItems bounds a single manifest. A fleet bigger than this
// submits as several jobs.
const MaxBatchItems = 4096

// BatchItem is one manifest entry: a serialised binary (base64 in
// JSON) plus its rewrite options, encoded as a /rewrite query string
// ("mode=jt&where=block&payload=empty") so the batch surface reuses
// the exact option vocabulary — and validation — of single rewrites.
type BatchItem struct {
	// Name labels the item in status reports and events; defaults to
	// its index.
	Name string `json:"name,omitempty"`
	// Opts is the item's /rewrite query string; "" selects the
	// defaults (jt, block entry, empty payload).
	Opts string `json:"opts,omitempty"`
	// Binary is the serialised input binary (.icfg bytes).
	Binary []byte `json:"binary"`
}

// BatchManifest is the POST /batch body.
type BatchManifest struct {
	Items []BatchItem `json:"items"`
}

// ParseItemOptions parses one item's Opts query string into
// core.Options, exactly as the /rewrite door would.
func ParseItemOptions(opts string) (core.Options, error) {
	v, err := url.ParseQuery(opts)
	if err != nil {
		return core.Options{}, fmt.Errorf("wire: bad item opts %q: %v", opts, err)
	}
	return ParseOptions(v)
}

// Validate checks the manifest's shape and option strings, filling
// default names. It does not decode the binaries — the service does
// that once, where the result can be reused.
func (m *BatchManifest) Validate() error {
	if len(m.Items) == 0 {
		return errors.New("wire: batch manifest has no items")
	}
	if len(m.Items) > MaxBatchItems {
		return fmt.Errorf("wire: batch manifest has %d items, cap is %d", len(m.Items), MaxBatchItems)
	}
	for i := range m.Items {
		it := &m.Items[i]
		if len(it.Binary) == 0 {
			return fmt.Errorf("wire: batch item %d (%s) carries no binary", i, it.Name)
		}
		if _, err := ParseItemOptions(it.Opts); err != nil {
			return fmt.Errorf("wire: batch item %d (%s): %w", i, it.Name, err)
		}
		if it.Name == "" {
			it.Name = strconv.Itoa(i)
		}
	}
	return nil
}

// BatchAccepted is the POST /batch response.
type BatchAccepted struct {
	ID    string `json:"id"`
	Items int    `json:"items"`
}

// Batch job and item states.
const (
	BatchPending = "pending"
	BatchRunning = "running"
	BatchDone    = "done"
	BatchFailed  = "failed"
)

// BatchItemStatus is one item's slice of a status snapshot.
type BatchItemStatus struct {
	Name  string `json:"name"`
	State string `json:"state"`
	// Path is the cache path the item's rewrite took (cold, delta,
	// warm-analysis, result-cache) once done.
	Path      string `json:"path,omitempty"`
	Err       string `json:"err,omitempty"`
	ElapsedUS int64  `json:"elapsedUs,omitempty"`
	// Bytes is the rewritten image's size once done.
	Bytes int `json:"bytes,omitempty"`
}

// BatchStatus is the GET /batch/{id} body: the polling fallback for
// clients that cannot hold an SSE stream.
type BatchStatus struct {
	ID    string            `json:"id"`
	State string            `json:"state"`
	Done  int               `json:"done"`
	Total int               `json:"total"`
	Items []BatchItemStatus `json:"items"`
	// Resumed reports that this job was recovered from persisted state
	// by a restarted server.
	Resumed bool `json:"resumed,omitempty"`
}

// Batch event types, in the order a job emits them.
const (
	EventJobStart  = "job-start"
	EventItemStart = "item-start"
	// EventItemStage carries one pipeline stage's wall time for a
	// finished item — the per-stage span feed.
	EventItemStage  = "item-stage"
	EventItemDone   = "item-done"
	EventItemFailed = "item-failed"
	EventJobDone    = "job-done"
	EventJobFailed  = "job-failed"
)

// BatchEvent is one event-stream entry.
type BatchEvent struct {
	// Seq is the per-job sequence number, contiguous from 1.
	Seq int64 `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Item / Name identify the item for item-* events; Item is -1 for
	// job-level events.
	Item int    `json:"item"`
	Name string `json:"name,omitempty"`
	// Stage / WallUS carry one pipeline stage's timing (item-stage).
	Stage  string `json:"stage,omitempty"`
	WallUS int64  `json:"wallUs,omitempty"`
	// Path is the item's cache path (item-done).
	Path string `json:"path,omitempty"`
	Err  string `json:"err,omitempty"`
	// Done/Total are the job's progress counters, stamped on item-done,
	// item-failed, and job-level events.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// WriteSSE writes one event in the text/event-stream framing.
func WriteSSE(w io.Writer, ev BatchEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// ReadSSE consumes a text/event-stream of BatchEvents, calling fn for
// each. It returns nil when the stream ends cleanly (EOF after a
// job-done/job-failed event or fn returning false), the read error
// otherwise. Comment lines and unknown fields are skipped per the SSE
// grammar.
func ReadSSE(r io.Reader, fn func(BatchEvent) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	var data strings.Builder
	flush := func() (bool, error) {
		if data.Len() == 0 {
			return true, nil
		}
		var ev BatchEvent
		err := json.Unmarshal([]byte(data.String()), &ev)
		data.Reset()
		if err != nil {
			return false, fmt.Errorf("wire: bad SSE event: %w", err)
		}
		return fn(ev), nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			cont, err := flush()
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:/event:/comment lines — the JSON body carries seq and
			// type, so the framing copies are informational.
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	_, err := flush()
	return err
}
