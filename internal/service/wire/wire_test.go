package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
)

// TestFrameRoundTrip: WriteFrame's output parses back to the same reply
// and image through ReadFrame.
func TestFrameRoundTrip(t *testing.T) {
	in := &Reply{FuncsReused: 3, FuncsRecomputed: 1, AnalysisHit: true, ElapsedUS: 1234}
	image := []byte("not really a binary, but the frame does not care")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in, image); err != nil {
		t.Fatal(err)
	}
	out, gotImage, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.FuncsReused != in.FuncsReused || out.FuncsRecomputed != in.FuncsRecomputed ||
		out.AnalysisHit != in.AnalysisHit || out.ElapsedUS != in.ElapsedUS {
		t.Fatalf("reply round trip: got %+v, want %+v", out, in)
	}
	if !bytes.Equal(gotImage, image) {
		t.Fatalf("image round trip: got %q", gotImage)
	}
}

// TestReadFrameRejects pins the reader's defence: truncated streams and
// hostile length prefixes error out instead of allocating or hanging.
func TestReadFrameRejects(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader([]byte{1, 2, 3})); err == nil || !strings.Contains(err.Error(), "truncated reply header") {
		t.Fatalf("short header: err = %v", err)
	}
	var hostile [8]byte
	binary.LittleEndian.PutUint64(hostile[:], MaxReplyHeader+1)
	if _, _, err := ReadFrame(bytes.NewReader(hostile[:])); err == nil || !strings.Contains(err.Error(), "declares") {
		t.Fatalf("hostile prefix: err = %v", err)
	}
	var short [8]byte
	binary.LittleEndian.PutUint64(short[:], 100)
	if _, _, err := ReadFrame(bytes.NewReader(append(short[:], []byte("{}")...))); err == nil || !strings.Contains(err.Error(), "truncated reply") {
		t.Fatalf("short body: err = %v", err)
	}
}

// TestParseMode covers the mode vocabulary including the default.
func TestParseMode(t *testing.T) {
	cases := map[string]core.Mode{"dir": core.ModeDir, "jt": core.ModeJT, "": core.ModeJT,
		"func-ptr": core.ModeFuncPtr, "funcptr": core.ModeFuncPtr}
	for in, want := range cases {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMode("nonsense"); err == nil {
		t.Error("ParseMode accepted nonsense")
	}
}

// TestEncodeOptionsRejectsNonWire: in-process-only options must not
// silently drop on the floor.
func TestEncodeOptionsRejectsNonWire(t *testing.T) {
	if _, err := EncodeOptions(core.Options{Request: instrument.Request{Where: instrument.Point(99)}}); err == nil {
		t.Error("EncodeOptions accepted an unknown instrumentation point")
	}
	if _, err := EncodeOptions(core.Options{
		Request: instrument.Request{Where: instrument.BlockEntry},
		Variant: core.Variant{NoTrampolines: true},
	}); err == nil {
		t.Error("EncodeOptions accepted a baseline variant")
	}
}
