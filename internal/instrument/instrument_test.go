package instrument

import (
	"testing"

	"icfgpatch/internal/arch"
)

func TestRequestWants(t *testing.T) {
	all := Request{Where: BlockEntry}
	if !all.Wants("anything") {
		t.Error("nil Funcs must cover everything")
	}
	some := Request{Funcs: []string{"a", "b"}}
	if !some.Wants("a") || some.Wants("c") {
		t.Error("subset selection wrong")
	}
}

func TestCounterSnippetShape(t *testing.T) {
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			seq := CounterSnippet(a, pie, 0x500000)
			if len(seq) < 7 {
				t.Fatalf("%s pie=%v: snippet too short (%d instrs)", a, pie, len(seq))
			}
			// First two instructions spill the scratch registers below
			// SP; last two restore them.
			if seq[0].Kind != arch.Store || seq[1].Kind != arch.Store {
				t.Errorf("%s pie=%v: snippet does not spill", a, pie)
			}
			last := seq[len(seq)-1]
			prev := seq[len(seq)-2]
			if last.Kind != arch.Load || prev.Kind != arch.Load {
				t.Errorf("%s pie=%v: snippet does not restore", a, pie)
			}
			// The snippet must only clobber its two scratch registers
			// (net effect; spilled and restored).
			var defs arch.RegSet
			for _, ins := range seq {
				defs = defs.Union(ins.Defs(a))
			}
			defs = defs.Remove(snipA).Remove(snipB)
			if defs != 0 {
				t.Errorf("%s pie=%v: snippet clobbers extra registers %v", a, pie, defs)
			}
			// Contains exactly one increment.
			incs := 0
			for _, ins := range seq {
				if ins.Kind == arch.ALUImm && ins.Op == arch.Add && ins.Imm == 1 {
					incs++
				}
			}
			if incs != 1 {
				t.Errorf("%s pie=%v: %d increments", a, pie, incs)
			}
		}
	}
}

func TestCounterSnippetAddressing(t *testing.T) {
	// PIE snippets must form the cell address PC-relatively; position
	// dependent snippets materialise it.
	seq := CounterSnippet(arch.X64, true, 0x500000)
	foundLea := false
	for _, ins := range seq {
		if ins.Kind == arch.Lea {
			foundLea = true
		}
		if ins.Kind == arch.MovImm {
			t.Error("pie snippet uses an absolute immediate")
		}
	}
	if !foundLea {
		t.Error("pie x64 snippet has no lea")
	}
	seq = CounterSnippet(arch.A64, false, 0x500000)
	for _, ins := range seq {
		if ins.Kind == arch.LeaHi {
			t.Error("non-pie snippet uses adrp")
		}
	}
}
