// Package instrument defines the Dyninst-like instrumentation interface:
// where to instrument (instrumentation points), what to insert
// (payloads), and which functions to touch (partial instrumentation —
// the capability Section 9's Diogenes case study depends on). The
// rewriter (package core) consumes a Request and emits payload snippets
// into the relocated code.
package instrument

import (
	"icfgpatch/internal/arch"
)

// Point selects where payloads are inserted.
type Point uint8

// Instrumentation points.
const (
	// BlockEntry instruments the entry of every basic block — the
	// paper's strong verification workload ("instruments every basic
	// block with empty instrumentation, which will trigger relocating
	// all functions").
	BlockEntry Point = iota
	// FuncEntry instruments function entries only, with the once-per-
	// call semantics that plain instruction patching cannot provide.
	FuncEntry
	// AtAddrs instruments the specific instruction addresses listed in
	// Request.Addrs — the Dyninst API model where users choose arbitrary
	// instrumentation points. Instrumentation integrity still holds:
	// trampolines at CFL blocks guarantee the containing block is
	// entered through relocated code.
	AtAddrs
)

// Payload selects what is inserted at each point.
type Payload uint8

// Payloads.
const (
	// PayloadEmpty inserts nothing but still forces relocation — the
	// paper's overhead measurement payload.
	PayloadEmpty Payload = iota
	// PayloadCounter increments a per-point 8-byte counter cell,
	// preserving all registers (the execution-count tool).
	PayloadCounter
)

// Request describes one instrumentation run.
type Request struct {
	Where   Point
	Payload Payload
	// Funcs restricts instrumentation to the named functions; nil means
	// every instrumentable function (partial instrumentation leaves the
	// rest of the binary untouched).
	Funcs []string
	// Addrs lists the instruction addresses to instrument when Where is
	// AtAddrs.
	Addrs []uint64
}

// WantsAddr reports whether the request instruments the instruction at
// addr (AtAddrs only).
func (r Request) WantsAddr(addr uint64) bool {
	if r.Where != AtAddrs {
		return false
	}
	for _, a := range r.Addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// Wants reports whether the request covers the named function.
func (r Request) Wants(name string) bool {
	if r.Funcs == nil {
		return true
	}
	for _, f := range r.Funcs {
		if f == name {
			return true
		}
	}
	return false
}

// Snippet registers clobbered and preserved by payload code.
const (
	snipA = arch.R8
	snipB = arch.R9
)

// CounterSnippet returns the instruction sequence incrementing the
// 8-byte cell at cellAddr, transparent to the interrupted register
// state: the two scratch registers are spilled below the stack pointer
// and restored. The address is materialised PC-relatively in position
// independent code and absolutely otherwise.
func CounterSnippet(a arch.Arch, pie bool, cellAddr uint64) []arch.Instr {
	seq := []arch.Instr{
		{Kind: arch.Store, Rs2: snipA, Rs1: arch.SP, Size: 8, Imm: -16},
		{Kind: arch.Store, Rs2: snipB, Rs1: arch.SP, Size: 8, Imm: -24},
	}
	if pie {
		if a == arch.X64 {
			// Lea's displacement is resolved by the relocator once the
			// snippet's address is known; mark the target via Imm hack:
			// the relocator rewrites PC-relative operands by absolute
			// target, so emit with a placeholder and let it SetTarget.
			seq = append(seq, arch.Instr{Kind: arch.Lea, Rd: snipA, Imm: int64(cellAddr)})
		} else {
			seq = append(seq,
				arch.Instr{Kind: arch.LeaHi, Rd: snipA, Imm: int64(cellAddr)},
				arch.Instr{Kind: arch.AddImm16, Rd: snipA, Rs1: snipA, Imm: int64(cellAddr & 0xFFF)},
			)
		}
	} else {
		if a == arch.X64 {
			seq = append(seq, arch.Instr{Kind: arch.MovImm, Rd: snipA, Imm: int64(cellAddr)})
		} else {
			seq = append(seq,
				arch.Instr{Kind: arch.MovImm16, Rd: snipA, Imm: int64(cellAddr & 0xFFFF)},
				arch.Instr{Kind: arch.MovK16, Rd: snipA, Imm: int64((cellAddr >> 16) & 0xFFFF), Shift: 1},
			)
		}
	}
	seq = append(seq,
		arch.Instr{Kind: arch.Load, Rd: snipB, Rs1: snipA, Size: 8},
		arch.Instr{Kind: arch.ALUImm, Op: arch.Add, Rd: snipB, Rs1: snipB, Imm: 1},
		arch.Instr{Kind: arch.Store, Rs2: snipB, Rs1: snipA, Size: 8},
		arch.Instr{Kind: arch.Load, Rd: snipB, Rs1: arch.SP, Size: 8, Imm: -24},
		arch.Instr{Kind: arch.Load, Rd: snipA, Rs1: arch.SP, Size: 8, Imm: -16},
	)
	return seq
}

// PCRelSnippetIndexes returns the indexes within CounterSnippet output
// whose operands are PC-relative references to cellAddr and must be
// re-resolved at the snippet's final address: the Lea (X64 PIE) or the
// LeaHi (fixed-width PIE). Absolute forms return nothing.
func PCRelSnippetIndexes(a arch.Arch, pie bool) []int {
	if !pie {
		return nil
	}
	return []int{2} // the address-forming instruction follows the two spills
}
