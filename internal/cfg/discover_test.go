package cfg

import (
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
)

// strippedFixture builds a program, records ground truth, and strips the
// symbol table.
func strippedFixture(t *testing.T, a arch.Arch, pie bool) (*bin.Binary, *asm.DebugInfo) {
	t.Helper()
	b := asm.New(a, pie)
	leaf := b.Func("leaf")
	leaf.OpI(arch.Add, arch.R0, arch.R1, 1)
	leaf.Return()
	helper := b.Func("helper")
	helper.SetFrame(16)
	helper.CallF("leaf")
	helper.OpI(arch.Add, arch.R0, arch.R0, 2)
	helper.Return()
	// ptrOnly is never called directly; it is only reachable through a
	// function pointer cell — discoverable via relocations/data.
	ptrOnly := b.Func("ptronly")
	ptrOnly.OpI(arch.Add, arch.R0, arch.R1, 7)
	ptrOnly.Return()
	b.FuncPtrGlobal("fp", "ptronly", 0)
	m := b.Func("main")
	m.SetFrame(32)
	m.Li(arch.R1, 5)
	m.CallF("helper")
	m.StoreLocal(arch.R0, 8)
	m.Li(arch.R1, 2)
	m.CallPtr(arch.R9, "fp")
	m.LoadLocal(arch.R2, 8)
	m.Op3(arch.Add, arch.R0, arch.R0, arch.R2)
	m.Print(arch.R0)
	m.Halt()
	b.SetEntry("main")
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	stripped := img.Clone()
	stripped.Symbols = nil // strip
	return stripped, dbg
}

func TestDiscoverFunctionsRecoversEntries(t *testing.T) {
	for _, a := range arch.All() {
		for _, pie := range []bool{false, true} {
			img, dbg := strippedFixture(t, a, pie)
			syms, err := DiscoverFunctions(img)
			if err != nil {
				t.Fatalf("%s pie=%v: %v", a, pie, err)
			}
			found := map[uint64]bin.Symbol{}
			for _, s := range syms {
				found[s.Addr] = s
			}
			for _, name := range []string{"main", "helper", "leaf", "ptronly"} {
				start := dbg.FuncStart[name]
				s, ok := found[start]
				if !ok {
					t.Errorf("%s pie=%v: %s entry %#x not discovered", a, pie, name, start)
					continue
				}
				// The extent must cover the true function body (padding
				// may be trimmed).
				if s.Addr+s.Size > dbg.FuncEnd[name] {
					t.Errorf("%s pie=%v: %s extent %#x overruns true end %#x",
						a, pie, name, s.Addr+s.Size, dbg.FuncEnd[name])
				}
			}
		}
	}
}

func TestBuildStrippedProducesUsableCFG(t *testing.T) {
	img, dbg := strippedFixture(t, arch.X64, false)
	g, err := BuildStripped(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Funcs) < 4 {
		t.Fatalf("only %d functions in stripped CFG", len(g.Funcs))
	}
	f, ok := g.FuncContaining(dbg.FuncStart["helper"])
	if !ok || f.Entry != dbg.FuncStart["helper"] {
		t.Error("helper not rediscovered as a function")
	}
	for _, fn := range g.Funcs {
		if fn.Err != nil {
			t.Errorf("stripped function %s failed analysis: %v", fn.Name, fn.Err)
		}
	}
	// The original binary must not have been mutated.
	if len(img.Symbols) != 0 {
		t.Error("BuildStripped added symbols to the input")
	}
}

func TestDiscoverRejectsTextlessBinary(t *testing.T) {
	b := bin.New(arch.X64)
	if _, err := DiscoverFunctions(b); err == nil {
		t.Error("discovery on empty binary succeeded")
	}
}
