// Package cfg constructs control flow graphs from binary code by
// control-flow traversal, the critical binary analysis task the paper's
// trampoline placement is built on (Section 4). The builder is
// deliberately structured around the paper's failure-mode taxonomy:
//
//   - Indirect jumps are resolved through a pluggable Resolver (package
//     analysis provides the jump-table analysis). Resolution failures are
//     per-function and graceful: the function is marked with an analysis
//     error instead of poisoning the whole binary.
//   - After failed resolution, the gap-based indirect tail call heuristic
//     of Section 5.1 runs: if the function's unexplored byte ranges are
//     empty or contain only nop padding, unresolved indirect jumps are
//     classified as tail calls and the function remains instrumentable.
//   - Jump-table target sets may over-approximate; extra targets merely
//     split blocks and create unnecessary control-flow-landing blocks,
//     never wrong rewriting.
package cfg

import (
	"fmt"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/unwind"
)

// EdgeKind classifies intra-procedural control flow edges.
type EdgeKind uint8

// Edge kinds.
const (
	// EdgeFall is sequential fall-through into a leader.
	EdgeFall EdgeKind = iota
	// EdgeJump is a direct unconditional branch.
	EdgeJump
	// EdgeCond is the taken side of a conditional branch.
	EdgeCond
	// EdgeCallFall is the fall-through after a call returns.
	EdgeCallFall
	// EdgeIndirect is a resolved jump-table edge.
	EdgeIndirect
)

// Edge is one intra-procedural successor.
type Edge struct {
	To   uint64
	Kind EdgeKind
}

// Block is a basic block: an address range with at most one control flow
// instruction, at its end, and incoming control flow only at its start.
type Block struct {
	Start  uint64
	End    uint64
	Instrs []arch.Instr
	Succs  []Edge
	Preds  []uint64 // start addresses of predecessor blocks
}

// Last returns the block's final instruction.
func (b *Block) Last() arch.Instr { return b.Instrs[len(b.Instrs)-1] }

// Len returns the block's size in bytes.
func (b *Block) Len() int { return int(b.End - b.Start) }

// TableKind classifies the jump target expression tar(x) recovered by
// jump-table analysis.
type TableKind uint8

// Table kinds.
const (
	// TarAbs: tar(x) = x (absolute 8-byte entries).
	TarAbs TableKind = iota
	// TarTableRel: tar(x) = tableBase + x (signed table-relative).
	TarTableRel
	// TarFuncRel4: tar(x) = funcStart + 4*x (A64 compressed entries).
	TarFuncRel4
)

// ResolvedTable is the product of successful jump-table analysis, with
// everything jump table cloning (Section 5.1) needs.
type ResolvedTable struct {
	JumpAddr uint64 // address of the indirect jump
	LoadAddr uint64 // address of the table-read LoadIdx
	// BaseInstrs are the addresses of the instructions forming the
	// table base address; cloning overwrites their targets so the
	// relocated dispatch references the cloned table.
	BaseInstrs []uint64
	// FuncStartInstrs are the addresses of instructions forming the
	// function-start base of TarFuncRel4 tables; cloning retargets them
	// to the relocated function start.
	FuncStartInstrs []uint64
	TableAddr       uint64
	EntrySize       int
	Signed          bool
	Count           int
	BoundExact      bool // true when a bounds check fixed the count; false for Assumption-2 extension
	Kind            TableKind
	FuncStart       uint64
	Targets         []uint64
	InText          bool // table data embedded in the code section (PPC)
	// MarkBounded records that the table's inexact bound was tightened
	// by trusted landing-pad evidence (trimmed at the first unmarked
	// candidate entry) — the per-table attribution of the evidence
	// layer's jump-table source.
	MarkBounded bool
}

// DecodeEntry applies the recovered target expression tar(x) to a raw
// table entry value. The second result is false for implausible raw
// values (a zero absolute entry).
func (t *ResolvedTable) DecodeEntry(x int64) (uint64, bool) {
	switch t.Kind {
	case TarAbs:
		return uint64(x), x != 0
	case TarTableRel:
		return t.TableAddr + uint64(x), true
	default:
		return t.FuncStart + 4*uint64(x), true
	}
}

// EncodeEntry is the inverse of DecodeEntry: it solves tar(x) = target
// for x, used by jump table cloning to compute new entry values
// (Section 5.1: "we solve tar(x) = y for x0 and write x0 to the new
// jump table").
func (t *ResolvedTable) EncodeEntry(target uint64) int64 {
	switch t.Kind {
	case TarAbs:
		return int64(target)
	case TarTableRel:
		return int64(target - t.TableAddr)
	default:
		return int64((target - t.FuncStart) / 4)
	}
}

// IndirectJump records one indirect jump discovered during traversal.
type IndirectJump struct {
	Addr     uint64
	Table    *ResolvedTable // non-nil when resolved
	TailCall bool           // classified by the gap heuristic
	Err      error          // resolution failure, if any
}

// Func is one function's CFG.
type Func struct {
	Name   string
	Entry  uint64
	End    uint64
	Blocks []*Block // sorted by Start
	// IndirectJumps lists every indirect jump in the function.
	IndirectJumps []IndirectJump
	// CatchPads are exception landing pad addresses inside the function;
	// they are CFG entry points and, after rewriting, CFL blocks.
	CatchPads []uint64
	// DataRanges are known in-code data regions (embedded jump tables).
	DataRanges [][2]uint64
	// Gaps are byte ranges inside the function not covered by decoded
	// instructions or known data.
	Gaps [][2]uint64
	// GapsNopOnly reports whether every gap decodes to nop padding.
	GapsNopOnly bool
	// Err is the function's graceful analysis failure, if any: the
	// rewriter skips such functions, losing only their coverage.
	Err error

	byStart map[uint64]*Block
}

// BlockAt returns the block starting exactly at addr.
func (f *Func) BlockAt(addr uint64) (*Block, bool) {
	b, ok := f.byStart[addr]
	return b, ok
}

// Reindex rebuilds the function's internal block index from Blocks.
// Deserialised graphs need it: the index is unexported, so any codec
// (gob drops unexported fields) delivers a Func whose BlockAt answers
// nothing until Reindex runs.
func (f *Func) Reindex() {
	f.byStart = make(map[uint64]*Block, len(f.Blocks))
	for _, blk := range f.Blocks {
		f.byStart[blk.Start] = blk
	}
}

// BlockContaining returns the block whose range covers addr.
func (f *Func) BlockContaining(addr uint64) (*Block, bool) {
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Start > addr })
	if i > 0 && addr < f.Blocks[i-1].End {
		return f.Blocks[i-1], true
	}
	return nil, false
}

// Contains reports whether addr is inside the function's range.
func (f *Func) Contains(addr uint64) bool { return addr >= f.Entry && addr < f.End }

// Instrumentable reports whether the rewriter may relocate this function.
func (f *Func) Instrumentable() bool { return f.Err == nil }

// Graph is the whole-binary CFG.
type Graph struct {
	Binary *bin.Binary
	Arch   arch.Arch
	Funcs  []*Func // sorted by entry
	byName map[string]*Func
}

// FuncByName returns the named function's CFG.
func (g *Graph) FuncByName(name string) (*Func, bool) {
	f, ok := g.byName[name]
	return f, ok
}

// FuncContaining returns the function covering addr.
func (g *Graph) FuncContaining(addr uint64) (*Func, bool) {
	i := sort.Search(len(g.Funcs), func(i int) bool { return g.Funcs[i].Entry > addr })
	if i > 0 && addr < g.Funcs[i-1].End {
		return g.Funcs[i-1], true
	}
	return nil, false
}

// IsFuncEntry reports whether addr is a function entry point.
func (g *Graph) IsFuncEntry(addr uint64) bool {
	f, ok := g.FuncContaining(addr)
	return ok && f.Entry == addr
}

// Resolver attempts to resolve the targets of an indirect jump. The
// implementation (package analysis) performs backward slicing from the
// jump; it may consult the partially built function for the slice and
// the whole binary for table bytes and boundary hints.
type Resolver interface {
	ResolveJump(b *bin.Binary, f *Func, jumpAddr uint64) (*ResolvedTable, error)
}

// Build constructs the CFG of every function symbol in the binary. A nil
// resolver leaves all indirect jumps unresolved (they are then subject
// to the tail-call heuristic). Build itself only fails on malformed
// inputs; per-function analysis failures land in Func.Err.
func Build(b *bin.Binary, resolver Resolver) (*Graph, error) {
	text := b.Text()
	if text == nil {
		return nil, fmt.Errorf("cfg: binary has no text section")
	}
	pads, err := UnwindTable(b)
	if err != nil {
		return nil, err
	}
	var funcs []*Func
	for _, sym := range b.FuncSymbols() {
		if sym.Size == 0 {
			continue
		}
		funcs = append(funcs, BuildFunc(b, text, sym, pads, resolver))
	}
	return Assemble(b, funcs), nil
}

// UnwindTable decodes the binary's unwind table, or returns nil when the
// binary carries none. Decoding once and passing the table to every
// BuildFunc call is what lets callers build functions individually.
func UnwindTable(b *bin.Binary) (*unwind.Table, error) {
	s := b.Section(bin.SecEhFrame)
	if s == nil {
		return nil, nil
	}
	tab, err := unwind.Decode(s.Data)
	if err != nil {
		return nil, fmt.Errorf("cfg: parsing unwind table: %w", err)
	}
	return tab, nil
}

// Assemble builds a whole-binary Graph from individually constructed
// functions: the seam the delta engine uses to mix freshly built
// functions with units reused from a previous version of the binary.
// The input slice is retained and re-sorted by entry address.
func Assemble(b *bin.Binary, funcs []*Func) *Graph {
	g := &Graph{Binary: b, Arch: b.Arch, Funcs: funcs, byName: map[string]*Func{}}
	sort.Slice(g.Funcs, func(i, j int) bool { return g.Funcs[i].Entry < g.Funcs[j].Entry })
	for _, f := range g.Funcs {
		g.byName[f.Name] = f
	}
	return g
}

// CatchPads returns the exception landing pads inside sym, in table
// order — the per-function slice of the unwind table BuildFunc consumes
// and the delta engine folds into a function's analysis identity.
func CatchPads(pads *unwind.Table, sym bin.Symbol) []uint64 {
	if pads == nil {
		return nil
	}
	var out []uint64
	if fde, ok := pads.Find(sym.Addr); ok {
		for _, p := range fde.Pads {
			if p.Pad >= sym.Addr && p.Pad < sym.Addr+sym.Size {
				out = append(out, p.Pad)
			}
		}
	}
	return out
}

// BuildFunc runs the traverse/resolve fixpoint for one function. It is
// the unit of incremental analysis: everything it reads is either the
// function's own content, the unwind table slice covering it, or —
// through the resolver — jump-table bytes and boundary hints, which the
// resolver can record for reuse validation.
func BuildFunc(b *bin.Binary, text *bin.Section, sym bin.Symbol, pads *unwind.Table, resolver Resolver) *Func {
	catchPads := CatchPads(pads, sym)

	resolved := map[uint64]*ResolvedTable{}
	errs := map[uint64]error{}
	var f *Func
	for iter := 0; iter < 8; iter++ {
		f = traverse(b, text, sym, catchPads, resolved)
		progress := false
		for i := range f.IndirectJumps {
			ij := &f.IndirectJumps[i]
			if ij.Table != nil || errs[ij.Addr] != nil {
				ij.Err = errs[ij.Addr]
				continue
			}
			if resolver == nil {
				errs[ij.Addr] = fmt.Errorf("cfg: no resolver for indirect jump at %#x", ij.Addr)
				ij.Err = errs[ij.Addr]
				continue
			}
			tbl, err := resolver.ResolveJump(b, f, ij.Addr)
			if err != nil {
				errs[ij.Addr] = err
				ij.Err = err
				continue
			}
			resolved[ij.Addr] = tbl
			progress = true
		}
		if !progress {
			break
		}
	}

	// Gap analysis and the indirect tail call heuristic (Section 5.1):
	// unresolved indirect jumps in gap-free (or nop-padded-gap) functions
	// are classified as tail calls; otherwise the function fails.
	f.computeGaps(b.Arch, text)
	var failErr error
	for i := range f.IndirectJumps {
		ij := &f.IndirectJumps[i]
		if ij.Table != nil {
			continue
		}
		if f.GapsNopOnly {
			ij.TailCall = true
			continue
		}
		if failErr == nil {
			failErr = fmt.Errorf("cfg: %s: unresolved indirect jump at %#x with non-nop gaps: %w", sym.Name, ij.Addr, ij.Err)
		}
	}
	f.Err = failErr
	return f
}

// traverse performs one control-flow traversal pass.
func traverse(b *bin.Binary, text *bin.Section, sym bin.Symbol, catchPads []uint64, resolved map[uint64]*ResolvedTable) *Func {
	enc := arch.ForArch(b.Arch)
	start, end := sym.Addr, sym.Addr+sym.Size
	f := &Func{Name: sym.Name, Entry: start, End: end, CatchPads: catchPads, byStart: map[uint64]*Block{}}

	var dataRanges [][2]uint64
	for _, t := range resolved {
		if t.InText {
			dataRanges = append(dataRanges, [2]uint64{t.TableAddr, t.TableAddr + uint64(t.EntrySize*t.Count)})
		}
	}
	f.DataRanges = dataRanges
	inData := func(a uint64) bool {
		for _, r := range dataRanges {
			if a >= r[0] && a < r[1] {
				return true
			}
		}
		return false
	}
	inRange := func(a uint64) bool { return a >= start && a < end && !inData(a) }

	instrAt := map[uint64]arch.Instr{}
	leaders := map[uint64]bool{start: true}
	work := []uint64{start}
	push := func(a uint64) {
		if inRange(a) {
			leaders[a] = true
			work = append(work, a)
		}
	}
	for _, p := range catchPads {
		push(p)
	}
	for _, t := range resolved {
		for _, tgt := range t.Targets {
			push(tgt)
		}
	}

	visited := map[uint64]bool{}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if visited[pc] || !inRange(pc) {
			continue
		}
		visited[pc] = true
		for inRange(pc) {
			if _, seen := instrAt[pc]; seen {
				leaders[pc] = true
				break
			}
			off := pc - text.Addr
			if off >= uint64(len(text.Data)) {
				break
			}
			win := text.Data[off:min(int(off)+enc.MaxLen(), len(text.Data))]
			ins, err := enc.Decode(win, pc)
			if err != nil || ins.Kind == arch.Illegal {
				break
			}
			instrAt[pc] = ins
			next := pc + uint64(ins.EncLen)
			if !ins.IsControlFlow() {
				pc = next
				continue
			}
			switch ins.Kind {
			case arch.Branch:
				if t, _ := ins.Target(); inRange(t) {
					push(t)
				}
			case arch.BranchCond:
				if t, _ := ins.Target(); inRange(t) {
					push(t)
				}
				push(next)
			case arch.Call, arch.CallInd, arch.CallIndMem:
				push(next)
			case arch.JumpInd:
				if tbl := resolved[pc]; tbl != nil {
					for _, t := range tbl.Targets {
						push(t)
					}
				}
			}
			break
		}
	}

	// Cut blocks.
	addrs := make([]uint64, 0, len(instrAt))
	for a := range instrAt {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var cur *Block
	flush := func() {
		if cur != nil {
			f.Blocks = append(f.Blocks, cur)
			cur = nil
		}
	}
	for _, a := range addrs {
		ins := instrAt[a]
		if cur != nil && (leaders[a] || a != cur.End) {
			flush()
		}
		if cur == nil {
			cur = &Block{Start: a, End: a}
		}
		cur.Instrs = append(cur.Instrs, ins)
		cur.End = a + uint64(ins.EncLen)
		if ins.IsControlFlow() {
			flush()
		}
	}
	flush()
	sort.Slice(f.Blocks, func(i, j int) bool { return f.Blocks[i].Start < f.Blocks[j].Start })
	for _, blk := range f.Blocks {
		f.byStart[blk.Start] = blk
	}

	// Edges.
	for bi, blk := range f.Blocks {
		last := blk.Last()
		add := func(to uint64, k EdgeKind) {
			if _, ok := f.byStart[to]; ok {
				blk.Succs = append(blk.Succs, Edge{To: to, Kind: k})
			}
		}
		switch last.Kind {
		case arch.Branch:
			if t, _ := last.Target(); inRange(t) {
				add(t, EdgeJump)
			}
		case arch.BranchCond:
			if t, _ := last.Target(); inRange(t) {
				add(t, EdgeCond)
			}
			add(blk.End, EdgeFall)
		case arch.Call, arch.CallInd, arch.CallIndMem:
			add(blk.End, EdgeCallFall)
		case arch.JumpInd:
			ij := IndirectJump{Addr: last.Addr}
			if tbl := resolved[last.Addr]; tbl != nil {
				ij.Table = tbl
				for _, t := range tbl.Targets {
					add(t, EdgeIndirect)
				}
			}
			f.IndirectJumps = append(f.IndirectJumps, ij)
		case arch.Ret, arch.Halt, arch.Throw, arch.Trap:
			// no successors
		default:
			add(blk.End, EdgeFall)
		}
		_ = bi
	}
	sort.Slice(f.IndirectJumps, func(i, j int) bool { return f.IndirectJumps[i].Addr < f.IndirectJumps[j].Addr })

	// Predecessors.
	for _, blk := range f.Blocks {
		for _, e := range blk.Succs {
			if to, ok := f.byStart[e.To]; ok {
				to.Preds = append(to.Preds, blk.Start)
			}
		}
	}
	return f
}

// computeGaps finds unexplored byte ranges and classifies their content.
func (f *Func) computeGaps(a arch.Arch, text *bin.Section) {
	type span struct{ s, e uint64 }
	var covered []span
	for _, blk := range f.Blocks {
		covered = append(covered, span{blk.Start, blk.End})
	}
	for _, dr := range f.DataRanges {
		covered = append(covered, span{dr[0], dr[1]})
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i].s < covered[j].s })
	f.Gaps = nil
	pos := f.Entry
	for _, sp := range covered {
		if sp.s > pos {
			f.Gaps = append(f.Gaps, [2]uint64{pos, sp.s})
		}
		if sp.e > pos {
			pos = sp.e
		}
	}
	if pos < f.End {
		f.Gaps = append(f.Gaps, [2]uint64{pos, f.End})
	}
	// Decode each gap: only-nops gaps are alignment padding (Section 5.1
	// heuristic for indirect tail calls).
	f.GapsNopOnly = true
	for _, gap := range f.Gaps {
		off := gap[0] - text.Addr
		data := text.Data[off : off+(gap[1]-gap[0])]
		for _, ins := range arch.DecodeAll(a, data, gap[0]) {
			if ins.Kind != arch.Nop {
				f.GapsNopOnly = false
				return
			}
		}
	}
}

// SplitAt splits the block containing addr so that addr starts a new
// block, returning the new (or existing) block. Over-approximated
// control flow edges from imprecise analysis land here: the split wastes
// a little scratch space but cannot cause wrong rewriting (Section 4.3).
func (f *Func) SplitAt(addr uint64) (*Block, bool) {
	if blk, ok := f.byStart[addr]; ok {
		return blk, true
	}
	blk, ok := f.BlockContaining(addr)
	if !ok {
		return nil, false
	}
	// Find the instruction boundary.
	idx := -1
	for i, ins := range blk.Instrs {
		if ins.Addr == addr {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return nil, false // not on an instruction boundary
	}
	nb := &Block{Start: addr, End: blk.End, Instrs: blk.Instrs[idx:], Succs: blk.Succs, Preds: []uint64{blk.Start}}
	blk.Instrs = blk.Instrs[:idx]
	blk.End = addr
	blk.Succs = []Edge{{To: addr, Kind: EdgeFall}}
	f.byStart[addr] = nb
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Start > blk.Start })
	f.Blocks = append(f.Blocks, nil)
	copy(f.Blocks[i+1:], f.Blocks[i:])
	f.Blocks[i] = nb
	return nb, true
}
