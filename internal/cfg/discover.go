package cfg

import (
	"fmt"
	"sort"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
)

// DiscoverFunctions recovers function entry points from a stripped
// binary, the way Dyninst's parser does when no symbol table survives
// (the real libcuda.so from the paper's Section 9 is stripped). Entry
// evidence, in decreasing reliability:
//
//   - the program entry point;
//   - direct call targets found by linearly decoding the code section;
//   - code addresses in runtime relocations (function pointers in PIE);
//   - 8-byte data cells holding instruction-aligned code addresses
//     (position dependent function pointer tables).
//
// Function extents run from each entry to the next discovered entry,
// with trailing nop padding trimmed. The result is a synthesised symbol
// table (names fn_<addr>) that Build accepts like a real one.
func DiscoverFunctions(b *bin.Binary) ([]bin.Symbol, error) {
	text := b.Text()
	if text == nil {
		return nil, fmt.Errorf("cfg: binary has no text section")
	}
	entries := map[uint64]bool{}
	add := func(a uint64) {
		if text.Contains(a) && a%b.Arch.InstrAlign() == 0 {
			entries[a] = true
		}
	}
	if !b.SharedLib {
		add(b.Entry)
	}
	for _, sym := range b.DynSymbols {
		if sym.Kind == bin.SymFunc {
			add(sym.Addr)
		}
	}
	// Direct call targets from a linear sweep.
	for _, ins := range arch.DecodeAll(b.Arch, text.Data, text.Addr) {
		if ins.Kind == arch.Call {
			if t, ok := ins.Target(); ok {
				add(t)
			}
		}
	}
	// Function pointers via relocations.
	for _, rl := range b.Relocs {
		if rl.Kind == bin.RelocRelative {
			add(uint64(rl.Addend))
		}
	}
	// Function pointers in initialised data.
	if data := b.Section(bin.SecData); data != nil {
		for off := uint64(0); off+8 <= data.Size(); off += 8 {
			var v uint64
			for i := uint64(0); i < 8; i++ {
				v |= uint64(data.Data[off+i]) << (8 * i)
			}
			add(v)
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("cfg: no function entries discovered")
	}

	sorted := make([]uint64, 0, len(entries))
	for a := range entries {
		sorted = append(sorted, a)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var out []bin.Symbol
	for i, start := range sorted {
		end := text.End()
		if i+1 < len(sorted) {
			end = sorted[i+1]
		}
		// Trim trailing nop padding off the extent.
		end = trimNops(b.Arch, text, start, end)
		if end <= start {
			continue
		}
		out = append(out, bin.Symbol{
			Name: fmt.Sprintf("fn_%x", start),
			Addr: start,
			Size: end - start,
			Kind: bin.SymFunc,
		})
	}
	return out, nil
}

// trimNops shrinks [start,end) past any trailing nop run.
func trimNops(a arch.Arch, text *bin.Section, start, end uint64) uint64 {
	data := text.Data[start-text.Addr : end-text.Addr]
	ins := arch.DecodeAll(a, data, start)
	last := start
	for _, i := range ins {
		if i.Kind != arch.Nop {
			last = i.Addr + uint64(i.EncLen)
		}
	}
	return last
}

// BuildStripped constructs the CFG of a stripped binary: function
// entries are discovered first, then traversal proceeds as usual.
func BuildStripped(b *bin.Binary, resolver Resolver) (*Graph, error) {
	syms, err := DiscoverFunctions(b)
	if err != nil {
		return nil, err
	}
	clone := b.Clone()
	clone.Symbols = syms
	g, err := Build(clone, resolver)
	if err != nil {
		return nil, err
	}
	g.Binary = b
	return g, nil
}
