package cfg

import (
	"fmt"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/asm"
	"icfgpatch/internal/bin"
)

// link builds a binary from the builder.
func link(t *testing.T, b *asm.Builder) (*bin.Binary, *asm.DebugInfo) {
	t.Helper()
	img, dbg, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return img, dbg
}

// simpleProgram: a diamond CFG with a loop and a call.
func simpleProgram(a arch.Arch) *asm.Builder {
	b := asm.New(a, false)
	callee := b.Func("callee")
	callee.OpI(arch.Add, arch.R0, arch.R1, 1)
	callee.Return()
	f := b.Func("main")
	f.SetFrame(16)
	els := f.NewLabel()
	join := f.NewLabel()
	f.Li(arch.R3, 5)
	f.BranchCondTo(arch.EQ, arch.R3, els)
	f.OpI(arch.Add, arch.R3, arch.R3, 1)
	f.BranchTo(join)
	f.Bind(els)
	f.OpI(arch.Sub, arch.R3, arch.R3, 1)
	f.Bind(join)
	f.Mov(arch.R1, arch.R3)
	f.CallF("callee")
	f.Print(arch.R0)
	f.Halt()
	b.SetEntry("main")
	return b
}

func TestBuildBasicStructure(t *testing.T) {
	for _, a := range arch.All() {
		img, dbg := link(t, simpleProgram(a))
		g, err := Build(img, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Funcs) != 2 {
			t.Fatalf("%s: %d funcs", a, len(g.Funcs))
		}
		f, ok := g.FuncByName("main")
		if !ok {
			t.Fatal("main not found")
		}
		if f.Entry != dbg.FuncStart["main"] || f.End != dbg.FuncEnd["main"] {
			t.Errorf("%s: bounds [%#x,%#x), want [%#x,%#x)", a, f.Entry, f.End, dbg.FuncStart["main"], dbg.FuncEnd["main"])
		}
		// Diamond + join + call fallthrough: at least 5 blocks.
		if len(f.Blocks) < 5 {
			t.Errorf("%s: only %d blocks", a, len(f.Blocks))
		}
		if f.Err != nil {
			t.Errorf("%s: unexpected analysis error: %v", a, f.Err)
		}
		// Every block's bytes must be covered and contiguous within the
		// block, and blocks must not overlap.
		for i, blk := range f.Blocks {
			if len(blk.Instrs) == 0 || blk.Start >= blk.End {
				t.Fatalf("%s: degenerate block %+v", a, blk)
			}
			pos := blk.Start
			for _, ins := range blk.Instrs {
				if ins.Addr != pos {
					t.Fatalf("%s: hole inside block at %#x", a, pos)
				}
				pos += uint64(ins.EncLen)
			}
			if pos != blk.End {
				t.Fatalf("%s: block end mismatch", a)
			}
			if i > 0 && blk.Start < f.Blocks[i-1].End {
				t.Fatalf("%s: overlapping blocks", a)
			}
		}
	}
}

func TestEdgesAndPreds(t *testing.T) {
	img, _ := link(t, simpleProgram(arch.X64))
	g, err := Build(img, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := g.FuncByName("main")
	kinds := map[EdgeKind]int{}
	for _, blk := range f.Blocks {
		for _, e := range blk.Succs {
			kinds[e.Kind]++
			to, ok := f.BlockAt(e.To)
			if !ok {
				t.Fatalf("edge to missing block %#x", e.To)
			}
			found := false
			for _, p := range to.Preds {
				if p == blk.Start {
					found = true
				}
			}
			if !found {
				t.Errorf("pred list of %#x misses %#x", to.Start, blk.Start)
			}
		}
	}
	if kinds[EdgeCond] == 0 || kinds[EdgeJump] == 0 || kinds[EdgeFall] == 0 || kinds[EdgeCallFall] == 0 {
		t.Errorf("edge kinds = %v, want all four intra kinds", kinds)
	}
}

func TestCallDoesNotEndTraversal(t *testing.T) {
	img, _ := link(t, simpleProgram(arch.A64))
	g, _ := Build(img, nil)
	f, _ := g.FuncByName("main")
	// The block after the call must exist.
	var callBlock *Block
	for _, blk := range f.Blocks {
		if blk.Last().Kind == arch.Call {
			callBlock = blk
		}
	}
	if callBlock == nil {
		t.Fatal("no call block")
	}
	if len(callBlock.Succs) != 1 || callBlock.Succs[0].Kind != EdgeCallFall {
		t.Fatalf("call block succs = %+v", callBlock.Succs)
	}
}

func TestUnresolvedIndirectJumpWithNopGapsIsTailCall(t *testing.T) {
	// A function whose only indirect jump is a genuine tail call: no
	// gaps, so the Section 5.1 heuristic classifies it as a tail call
	// and the function stays instrumentable even without a resolver.
	for _, a := range arch.All() {
		b := asm.New(a, false)
		fin := b.Func("fin")
		fin.Return()
		b.FuncPtrGlobal("fp", "fin", 0)
		f := b.Func("main")
		f.LoadGlobal(arch.R9, arch.R9, "fp", 8)
		f.TailJumpReg(arch.R9)
		b.SetEntry("main")
		img, _ := link(t, b)
		g, err := Build(img, nil)
		if err != nil {
			t.Fatal(err)
		}
		fn, _ := g.FuncByName("main")
		if fn.Err != nil {
			t.Errorf("%s: tail-call function marked failed: %v", a, fn.Err)
		}
		if len(fn.IndirectJumps) != 1 || !fn.IndirectJumps[0].TailCall {
			t.Errorf("%s: indirect jump not classified as tail call: %+v", a, fn.IndirectJumps)
		}
	}
}

func TestUnresolvedJumpWithRealCodeGapsFailsFunction(t *testing.T) {
	// A switch with no resolver leaves real case blocks unexplored:
	// gaps contain real code, so the function must fail gracefully.
	for _, a := range arch.All() {
		b := asm.New(a, false)
		f := b.Func("main")
		f.SetFrame(16)
		f.Li(arch.R8, 2)
		cases := []asm.Label{f.NewLabel(), f.NewLabel(), f.NewLabel()}
		def := f.NewLabel()
		join := f.NewLabel()
		f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
		for i, c := range cases {
			f.Bind(c)
			f.OpI(arch.Add, arch.R3, arch.R3, int64(i))
			f.BranchTo(join)
		}
		f.Bind(def)
		f.Bind(join)
		f.Print(arch.R3)
		f.Halt()
		b.SetEntry("main")
		img, _ := link(t, b)
		g, err := Build(img, nil)
		if err != nil {
			t.Fatal(err)
		}
		fn, _ := g.FuncByName("main")
		if fn.Err == nil {
			t.Errorf("%s: unresolved switch did not fail the function (gaps nop-only=%v, gaps=%v)",
				a, fn.GapsNopOnly, fn.Gaps)
		}
	}
}

// fakeResolver resolves every jump to fixed targets.
type fakeResolver struct {
	targets map[uint64][]uint64
	calls   int
}

func (r *fakeResolver) ResolveJump(b *bin.Binary, f *Func, jumpAddr uint64) (*ResolvedTable, error) {
	r.calls++
	ts, ok := r.targets[jumpAddr]
	if !ok {
		return nil, fmt.Errorf("no")
	}
	return &ResolvedTable{JumpAddr: jumpAddr, Targets: ts, Count: len(ts), EntrySize: 8, Kind: TarAbs}, nil
}

func TestResolverTargetsBecomeEdgesAndBlocks(t *testing.T) {
	b := asm.New(arch.X64, false)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 0)
	cases := []asm.Label{f.NewLabel(), f.NewLabel()}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	f.Bind(cases[0])
	f.OpI(arch.Add, arch.R3, arch.R3, 1)
	f.BranchTo(join)
	f.Bind(cases[1])
	f.OpI(arch.Add, arch.R3, arch.R3, 2)
	f.Bind(def)
	f.Bind(join)
	f.Print(arch.R3)
	f.Halt()
	b.SetEntry("main")
	img, dbg := link(t, b)

	truth := dbg.Tables[0]
	res := &fakeResolver{targets: map[uint64][]uint64{truth.DispatchAddr: truth.Targets}}
	g, err := Build(img, res)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := g.FuncByName("main")
	if fn.Err != nil {
		t.Fatalf("resolved function failed: %v", fn.Err)
	}
	if len(fn.IndirectJumps) != 1 || fn.IndirectJumps[0].Table == nil {
		t.Fatal("jump not resolved")
	}
	for _, target := range truth.Targets {
		if _, ok := fn.BlockAt(target); !ok {
			t.Errorf("case target %#x has no block", target)
		}
	}
	jb, _ := fn.BlockContaining(truth.DispatchAddr)
	if len(jb.Succs) != len(truth.Targets) {
		t.Errorf("dispatch block has %d edges, want %d", len(jb.Succs), len(truth.Targets))
	}
}

func TestCatchPadsAreEntryPoints(t *testing.T) {
	b := asm.New(arch.X64, false)
	b.SetMeta("exceptions", "1")
	f := b.Func("main")
	f.SetFrame(16)
	catch := f.NewLabel()
	done := f.NewLabel()
	f.BeginTry()
	f.Throw()
	f.EndTry(catch)
	f.BranchTo(done)
	f.Bind(catch)
	f.OpI(arch.Add, arch.R3, arch.R3, 1)
	f.Bind(done)
	f.Halt()
	b.SetEntry("main")
	img, _ := link(t, b)
	g, _ := Build(img, nil)
	fn, _ := g.FuncByName("main")
	if len(fn.CatchPads) != 1 {
		t.Fatalf("catch pads = %v", fn.CatchPads)
	}
	if _, ok := fn.BlockAt(fn.CatchPads[0]); !ok {
		t.Error("catch pad did not become a block leader")
	}
}

func TestSplitAt(t *testing.T) {
	img, _ := link(t, simpleProgram(arch.X64))
	g, _ := Build(img, nil)
	f, _ := g.FuncByName("main")
	blk := f.Blocks[0]
	if len(blk.Instrs) < 2 {
		t.Skip("first block too small")
	}
	mid := blk.Instrs[1].Addr
	before := len(f.Blocks)
	nb, ok := f.SplitAt(mid)
	if !ok || nb.Start != mid {
		t.Fatalf("SplitAt failed: %v %v", nb, ok)
	}
	if len(f.Blocks) != before+1 {
		t.Error("block count unchanged")
	}
	if blk.End != mid || len(blk.Succs) != 1 || blk.Succs[0].To != mid {
		t.Error("original block not linked to the split")
	}
	// Splitting at a non-boundary must fail (over-approximated targets
	// mid-instruction cannot be honoured).
	if _, ok := f.SplitAt(mid + 1); ok && img.Arch == arch.X64 {
		if _, exists := f.BlockAt(mid + 1); !exists {
			t.Error("split at non-boundary succeeded")
		}
	}
	// Splitting at an existing boundary is a no-op returning the block.
	again, ok := f.SplitAt(mid)
	if !ok || again != nb {
		t.Error("re-split did not return the existing block")
	}
}

func TestGraphQueries(t *testing.T) {
	img, dbg := link(t, simpleProgram(arch.PPC))
	g, _ := Build(img, nil)
	if f, ok := g.FuncContaining(dbg.FuncStart["main"] + 4); !ok || f.Name != "main" {
		t.Error("FuncContaining failed")
	}
	if !g.IsFuncEntry(dbg.FuncStart["callee"]) {
		t.Error("IsFuncEntry failed")
	}
	if g.IsFuncEntry(dbg.FuncStart["callee"] + 4) {
		t.Error("IsFuncEntry matched mid-function")
	}
	if _, ok := g.FuncContaining(0x10); ok {
		t.Error("FuncContaining matched nothing-land")
	}
}

func TestNopPaddingNotInAnyBlock(t *testing.T) {
	// Inter-function padding must not be attributed to either function.
	img, dbg := link(t, simpleProgram(arch.X64))
	g, _ := Build(img, nil)
	for _, f := range g.Funcs {
		for _, blk := range f.Blocks {
			if blk.End > dbg.FuncEnd[f.Name] {
				t.Errorf("block of %s extends past the function end", f.Name)
			}
		}
	}
}

func TestInterFunctionPaddingIsNotAGap(t *testing.T) {
	// Alignment padding sits between functions, outside every function
	// range: functions must report no gaps for it.
	img, _ := link(t, simpleProgram(arch.A64))
	g, _ := Build(img, nil)
	for _, f := range g.Funcs {
		if len(f.Gaps) != 0 {
			t.Errorf("%s has gaps %v", f.Name, f.Gaps)
		}
		if !f.GapsNopOnly {
			t.Errorf("%s: GapsNopOnly false with no gaps", f.Name)
		}
	}
}

func TestPPCInTextTableIsDataRangeNotGap(t *testing.T) {
	b := asm.New(arch.PPC, false)
	f := b.Func("main")
	f.SetFrame(16)
	f.Li(arch.R8, 1)
	cases := []asm.Label{f.NewLabel(), f.NewLabel()}
	def := f.NewLabel()
	join := f.NewLabel()
	f.Switch(arch.R8, arch.R9, arch.R10, cases, def, asm.SwitchOpts{})
	for _, c := range cases {
		f.Bind(c)
		f.BranchTo(join)
	}
	f.Bind(def)
	f.Bind(join)
	f.Halt()
	b.SetEntry("main")
	img, dbg := link(t, b)
	truth := dbg.Tables[0]
	res := &fakeResolver{targets: map[uint64][]uint64{truth.DispatchAddr: truth.Targets}}
	// Resolve with in-text table marking so the data range is recorded.
	res2 := markedResolver{fakeResolver: res, addr: truth.Addr, entry: truth.EntrySize, n: truth.N}
	g, err := Build(img, res2)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := g.FuncByName("main")
	if fn.Err != nil {
		t.Fatalf("analysis failed: %v", fn.Err)
	}
	if len(fn.DataRanges) != 1 {
		t.Fatalf("data ranges = %v", fn.DataRanges)
	}
	dr := fn.DataRanges[0]
	if dr[0] != truth.Addr || dr[1] != truth.Addr+uint64(truth.EntrySize*truth.N) {
		t.Errorf("data range %v, want table [%#x,%#x)", dr, truth.Addr, truth.Addr+uint64(truth.EntrySize*truth.N))
	}
	// Blocks must not overlap the table.
	for _, blk := range fn.Blocks {
		if blk.Start < dr[1] && dr[0] < blk.End {
			t.Errorf("block [%#x,%#x) overlaps table data", blk.Start, blk.End)
		}
	}
}

// markedResolver wraps fakeResolver, adding in-text table metadata.
type markedResolver struct {
	*fakeResolver
	addr  uint64
	entry int
	n     int
}

func (r markedResolver) ResolveJump(b *bin.Binary, f *Func, jumpAddr uint64) (*ResolvedTable, error) {
	tbl, err := r.fakeResolver.ResolveJump(b, f, jumpAddr)
	if err != nil {
		return nil, err
	}
	tbl.TableAddr = r.addr
	tbl.EntrySize = r.entry
	tbl.Count = r.n
	tbl.InText = true
	return tbl, nil
}
