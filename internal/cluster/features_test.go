package cluster

// Wire-level feature-bit contract: every door — the plain serve door, a
// cluster node, the gateway front door, and the peer-units endpoint —
// must reject unknown feature bits with 400, and the one known bit
// (FeatureNoEvidence) must change rewrite semantics end to end over
// HTTP: a CFI binary that func-ptr mode accepts under landing-pad
// evidence must be refused when the client asks for the conservative
// path.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/service"
	"icfgpatch/internal/workload"
)

// postRewrite posts raw to base/rewrite with a hand-built query string,
// returning the status code and body text.
func postRewrite(t *testing.T, base, query string, raw []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(strings.TrimSuffix(base, "/")+"/rewrite?"+query,
		"application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", query, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, string(body)
}

func TestUnknownFeatureBitsRejectedAtEveryDoor(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 2, Replicas: 2})
	srv := service.New(service.Config{})
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	plain := httptest.NewServer(srv.Handler())
	t.Cleanup(plain.Close)

	raw := clusterBinary(t, arch.X64, 33)
	doors := []struct{ name, base string }{
		{"serve", plain.URL},
		{"node", tc.URLs[0]},
		{"gateway", tc.GatewayURL()},
	}
	for _, d := range doors {
		// Bit 1 (the lowest unknown bit) must die with a 400 naming it.
		status, body := postRewrite(t, d.base, "mode=jt&features=2", raw)
		if status != http.StatusBadRequest {
			t.Fatalf("%s door: features=2 got %d (%s), want 400", d.name, status, strings.TrimSpace(body))
		}
		if !strings.Contains(body, "unknown feature bits") {
			t.Fatalf("%s door: 400 body does not name the unknown bits: %q", d.name, body)
		}
		// A garbage bitfield is equally a sender bug.
		if status, _ := postRewrite(t, d.base, "mode=jt&features=zebra", raw); status != http.StatusBadRequest {
			t.Fatalf("%s door: features=zebra got %d, want 400", d.name, status)
		}
		// The known bit passes and the rewrite is served.
		status, body = postRewrite(t, d.base, fmt.Sprintf("mode=jt&features=%d", 1), raw)
		if status != http.StatusOK {
			t.Fatalf("%s door: features=1 got %d (%s), want 200", d.name, status, strings.TrimSpace(body))
		}
	}

	// The peer-to-peer door holds the same line.
	resp, err := http.Get(tc.URLs[0] + "/peer/units?hash=abc&arch=1&mode=1&features=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("peer units door: features=2 got %d, want 400", resp.StatusCode)
	}
}

// TestNoEvidenceFeatureEndToEnd drives the evidence axis over HTTP: the
// Go-like CFI function-table binary rewrites soundly in func-ptr mode by
// default (trusted landing pads), and the same request with the
// no-evidence feature bit takes the conservative path and is refused —
// proving the bit reaches core.Analyze and forks the cache identity
// rather than being dropped at the door.
func TestNoEvidenceFeatureEndToEnd(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 2, Replicas: 2})
	prog, err := workload.GoTableCFI(arch.X64)
	if err != nil {
		t.Fatal(err)
	}
	raw := prog.Binary.Marshal()
	opts := clusterOpts(core.ModeFuncPtr)
	for _, cl := range []*service.Client{tc.NodeClient(0), tc.GatewayClient()} {
		_, reply, err := cl.Rewrite(context.Background(), raw, opts)
		if err != nil {
			t.Fatalf("evidence-enabled rewrite: %v", err)
		}
		if !reply.Stats.EvidenceTrusted || reply.Stats.EvidenceSkips == 0 {
			t.Fatalf("evidence-enabled rewrite did not use landing pads: %+v", reply.Stats)
		}
		noEv := opts
		noEv.NoEvidence = true
		if _, _, err := cl.Rewrite(context.Background(), raw, noEv); err == nil ||
			!strings.Contains(err.Error(), "imprecise") {
			t.Fatalf("no-evidence rewrite: got %v, want the conservative imprecise-func-ptr refusal", err)
		}
	}
}
