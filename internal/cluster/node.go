package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/obs"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
	"icfgpatch/internal/store"
)

// RoutedHeader marks a request that has already been routed once. A
// node receiving it serves locally unconditionally, so disagreeing ring
// views (mid-rollout config skew) degrade to one extra hop, never a
// forwarding loop.
const RoutedHeader = "X-Icfg-Routed"

// maxUnitsPayload bounds a peer's unit payload (the same defensive cap
// idea as wire.MaxReplyHeader, sized for unit bundles).
const maxUnitsPayload = 256 << 20

// DefaultPeerTimeout bounds the warm path's peer fetch. The whole point
// of asking a peer is to beat recomputation, so a slow peer is treated
// as a miss quickly.
const DefaultPeerTimeout = 2 * time.Second

// router is the routing core Node and Gateway share: ring + health +
// the forwarding loop.
type router struct {
	ring     *Ring
	health   *Health
	hc       *http.Client
	replicas int
	forwards *obs.Counter
	// relayTruncated counts relays whose body copy died mid-stream: the
	// peer answered, headers went out, and then the pipe broke — the
	// client got a truncated frame it will reject. Invisible before this
	// counter: forwardRewrite reports success (the routing decision WAS
	// final) and nothing recorded that the bytes never all arrived.
	relayTruncated *obs.Counter
}

// forwardRewrite proxies one already-read /rewrite to target. It
// returns an error only if the target never answered (hc.Do failed);
// once a response arrives — any status — it is relayed and the routing
// decision is final.
func (rt *router) forwardRewrite(w http.ResponseWriter, r *http.Request, target string, raw []byte, routedBy string) error {
	u := strings.TrimSuffix(target, "/") + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	// Relay the caller's Content-Type (a /batch manifest is JSON, a
	// /rewrite body an octet stream) instead of assuming binary.
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	} else {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if routedBy != "" {
		req.Header.Set(RoutedHeader, routedBy)
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		rt.relayTruncated.Inc()
	}
	return nil
}

// tryOwners walks the replica set looking for a peer that answers:
// healthy owners first in replica order, then — because a health mark
// is a belief, not a fact — one second pass over the owners the first
// pass skipped. Transient failures mark the peer down and fail over;
// an answered request (any status) ends the search. Returns false if
// no owner answered.
func (rt *router) tryOwners(w http.ResponseWriter, r *http.Request, raw []byte, owners []string, self, routedBy string) bool {
	try := func(o string) (answered bool) {
		if err := rt.forwardRewrite(w, r, o, raw, routedBy); err != nil {
			if service.Transient(err) {
				rt.health.MarkDown(o)
			}
			return false
		}
		rt.health.MarkUp(o)
		rt.forwards.Inc()
		return true
	}
	tried := make(map[string]bool, len(owners))
	for _, o := range owners {
		if o == self || !rt.health.Healthy(o) {
			continue
		}
		tried[o] = true
		if try(o) {
			return true
		}
	}
	for _, o := range owners {
		if o == self || tried[o] {
			continue
		}
		if try(o) {
			return true
		}
	}
	return false
}

// Config configures a Node.
type Config struct {
	// Self is this node's base URL exactly as it appears in Peers.
	Self string
	// Peers is the full cluster membership, self included. Every member
	// must agree on this set (and VNodes) for routing to agree.
	Peers []string
	// Replicas is the replication factor: how many distinct peers own
	// each content hash (default DefaultReplicas).
	Replicas int
	// VNodes is the per-peer virtual node count (default DefaultVNodes).
	VNodes int
	// PeerTimeout bounds the warm path's unit fetch from the owning peer
	// (default DefaultPeerTimeout). On expiry the analysis recomputes —
	// the warm path is strictly best-effort.
	PeerTimeout time.Duration
	// DownTTL is how long a failed peer stays marked down (default
	// DefaultDownTTL).
	DownTTL time.Duration
	// HTTPClient overrides http.DefaultClient for forwards, peer
	// fetches, and probes.
	HTTPClient *http.Client
}

// Node wraps one service.Server with cluster routing: requests whose
// content hash this node owns (or that arrive pre-routed) are served
// locally; the rest forward to a healthy owner with failover. On a
// local analysis miss the node asks the owning peer for its cached
// function units before recomputing (the warm path), installed via the
// server's WarmUnits hook.
type Node struct {
	router
	cfg        Config
	srv        *service.Server
	peerHits   *obs.Counter
	peerMisses *obs.Counter
}

// NewNode builds the node around srv, registers the cluster metrics on
// srv's registry, and installs the peer warm path.
func NewNode(srv *service.Server, cfg Config) (*Node, error) {
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer set", cfg.Self)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	n := &Node{
		router: router{ring: ring, health: NewHealth(cfg.DownTTL), hc: hc, replicas: cfg.Replicas},
		cfg:    cfg,
		srv:    srv,
	}
	reg := srv.Registry()
	n.peerHits = reg.Counter("icfg_cluster_peer_hits_total",
		"analysis misses warmed with function units fetched from the owning peer")
	n.peerMisses = reg.Counter("icfg_cluster_peer_misses_total",
		"analysis misses no peer could warm (recomputed locally)")
	n.forwards = reg.Counter("icfg_cluster_forwards_total",
		"rewrite requests forwarded to an owning peer")
	n.relayTruncated = reg.Counter("icfg_cluster_relay_truncated_total",
		"forwarded responses whose relay to the client died mid-body")
	reg.GaugeFunc("icfg_cluster_peers_healthy", "cluster peers currently believed reachable", "", "",
		func() float64 { return float64(n.health.CountHealthy(n.ring.peers)) })
	srv.SetWarmUnits(n.warmUnits)
	return n, nil
}

// Self returns this node's peer URL.
func (n *Node) Self() string { return n.cfg.Self }

// Owners returns the replica set for a content hash, owner first.
func (n *Node) Owners(hash string) []string { return n.ring.Owners(hash, n.cfg.Replicas) }

// StartProbes runs active /healthz sweeps every interval until ctx
// ends, complementing the passive mark-downs from failed forwards.
func (n *Node) StartProbes(ctx context.Context, interval time.Duration) {
	go n.health.ProbeLoop(ctx, n.hc, n.ring.peers, n.cfg.Self, interval)
}

// Handler wraps the service's HTTP surface with the cluster endpoints:
// /rewrite gains routing, /peer/units serves the warm path, /cluster
// reports membership; everything else (/stats, /healthz, /metrics,
// pprof) passes through to the service handler.
func (n *Node) Handler() http.Handler {
	return n.HandlerWith(n.srv.Handler())
}

// HandlerWith is Handler over a caller-chosen base — the seam that lets
// the daemon stack the batch surface under the cluster routes (batch
// mux wraps service handler, node wraps that), so /batch jobs submitted
// at any node run there while /rewrite keeps cluster routing.
func (n *Node) HandlerWith(base http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rewrite", n.handleRewrite)
	mux.HandleFunc("/peer/units", n.handlePeerUnits)
	mux.HandleFunc("/cluster", n.handleInfo)
	mux.Handle("/", base)
	return mux
}

func (n *Node) handleRewrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Same door cap as the plain service: the node must read the whole
	// body to route by content hash, which is exactly why an unbounded
	// read here was the cluster's OOM door.
	raw, ok := wire.ReadBody(w, r, n.srv.MaxRequestBytes())
	if !ok {
		return
	}
	// Pre-routed requests are served unconditionally (no loops); so are
	// requests this node owns.
	if r.Header.Get(RoutedHeader) != "" {
		n.srv.ServeRewrite(w, r, raw)
		return
	}
	owners := n.ring.Owners(store.Hash(raw), n.cfg.Replicas)
	for _, o := range owners {
		if o == n.cfg.Self {
			n.srv.ServeRewrite(w, r, raw)
			return
		}
	}
	if n.tryOwners(w, r, raw, owners, n.cfg.Self, n.cfg.Self) {
		return
	}
	// Every owner is unreachable: serve locally rather than fail. The
	// output is byte-identical anywhere — routing is a cache-locality
	// policy, and availability wins when the policy can't be satisfied.
	n.srv.ServeRewrite(w, r, raw)
}

// handlePeerUnits is the warm path's owner side: GET
// /peer/units?hash=H&arch=A&mode=M returns the gob unit bundle of the
// matching completed analysis, 404 when this node has none. The read
// is side-effect-free (store.Peek underneath) so peer traffic never
// perturbs local cache behaviour.
func (n *Node) handlePeerUnits(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	hash := q.Get("hash")
	if hash == "" {
		http.Error(w, "missing hash", http.StatusBadRequest)
		return
	}
	archN, err := strconv.ParseUint(q.Get("arch"), 10, 8)
	if err != nil {
		http.Error(w, "bad arch", http.StatusBadRequest)
		return
	}
	modeN, err := strconv.ParseUint(q.Get("mode"), 10, 8)
	if err != nil {
		http.Error(w, "bad mode", http.StatusBadRequest)
		return
	}
	// The peer door holds the same feature-bit line as the client doors:
	// an unknown bit means the peers disagree about what an analysis key
	// even addresses, so refuse rather than serve the wrong cache slice.
	feats, err := wire.ParseFeatures(q.Get("features"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key := service.AnalysisKey{Hash: hash, Arch: arch.Arch(archN), Mode: core.Mode(modeN),
		NoEvidence: feats&wire.FeatureNoEvidence != 0}
	units := n.srv.Stores().CachedUnits(key)
	if len(units) == 0 {
		http.Error(w, "no cached analysis", http.StatusNotFound)
		return
	}
	data, err := core.MarshalUnits(units)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// warmUnits is the warm path's receiver side, installed as the
// service's WarmUnits hook: on an analysis-store miss, ask the owning
// peers (in replica order) for their cached units and seed whatever
// arrives into the unit store. Strictly best-effort under PeerTimeout;
// the seeded units still face Analyze's full validation, so a stale
// peer answer costs a recompute, never a wrong reuse.
func (n *Node) warmUnits(ctx context.Context, key service.AnalysisKey) {
	if key.Variant != (core.Variant{}) {
		return // variants are in-process-only and never peer-cached
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.PeerTimeout)
	defer cancel()
	attempted := false
	for _, o := range n.ring.Owners(key.Hash, n.cfg.Replicas) {
		if o == n.cfg.Self || !n.health.Healthy(o) {
			continue
		}
		attempted = true
		units, err := n.fetchUnits(ctx, o, key)
		if err != nil {
			if service.Transient(err) {
				n.health.MarkDown(o)
			}
			continue
		}
		if len(units) == 0 {
			continue // peer answered but has nothing for this key
		}
		if n.srv.Stores().SeedUnits(units) > 0 {
			n.peerHits.Inc()
			return
		}
	}
	// A miss means "asked and came up empty", so only count it when a
	// fetch was actually attempted. When this node owns the hash itself
	// (the common case under routed traffic — that is why it is doing
	// the analysis) or every peer is marked down, no peer was asked and
	// nothing missed; counting those walked the miss rate toward 100%
	// on a healthy cluster and buried the real signal.
	if attempted {
		n.peerMisses.Inc()
	}
}

// fetchUnits asks one peer for its cached units. A 404 is a clean
// "don't have it" (nil, nil); transport errors propagate for health
// accounting.
func (n *Node) fetchUnits(ctx context.Context, owner string, key service.AnalysisKey) ([]*core.FuncUnit, error) {
	var feats uint64
	if key.NoEvidence {
		feats |= wire.FeatureNoEvidence
	}
	u := fmt.Sprintf("%s/peer/units?hash=%s&arch=%d&mode=%d&features=%d",
		strings.TrimSuffix(owner, "/"), url.QueryEscape(key.Hash), key.Arch, key.Mode, feats)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer units: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxUnitsPayload))
	if err != nil {
		return nil, err
	}
	return core.UnmarshalUnits(data)
}

// Info is the /cluster endpoint's JSON body.
type Info struct {
	Self     string   `json:"self,omitempty"`
	Peers    []string `json:"peers"`
	Healthy  int      `json:"healthy"`
	Replicas int      `json:"replicas"`
}

func (n *Node) handleInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Info{
		Self:     n.cfg.Self,
		Peers:    n.ring.Peers(),
		Healthy:  n.health.CountHealthy(n.ring.peers),
		Replicas: n.cfg.Replicas,
	})
}
