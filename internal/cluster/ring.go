// Package cluster turns independent icfg-serve daemons into a rewrite
// cluster. A consistent-hash ring routes each request by the content
// hash of its input binary, so every version of a binary lands on the
// same owning nodes — exactly where the incremental caches (analysis
// store, function-unit store) accumulate. Three pieces compose:
//
//   - Ring (this file): the hash ring, mapping a content hash to its
//     ordered replica set;
//   - Node: a routing wrapper around one service.Server — serves
//     requests it owns, forwards the rest, and warms its unit store
//     from the owning peer on an analysis miss;
//   - Gateway: the thin stateless front door that load-balances onto
//     the ring with health-checked failover.
//
// Routing is a performance policy, never a correctness one: any node
// can serve any request (the caches just run colder), and the emitted
// bytes are identical wherever a request lands — the cluster tests
// prove this, including with the owning peer killed mid-workload.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the per-peer virtual-node count. 128 points per peer
// keeps the load split close to even for small clusters while the ring
// stays tiny (a few KB).
const DefaultVNodes = 128

// DefaultReplicas is the default replication factor: the owner plus one
// failover replica.
const DefaultReplicas = 2

// Ring is an immutable consistent-hash ring over a fixed peer set.
// Membership health is deliberately not the ring's problem — the ring
// answers "who would own this key", and callers skip unhealthy owners
// (Node, Gateway) so a dead peer's keys fail over to the next replica
// without re-hashing anything.
type Ring struct {
	peers  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	peer int // index into peers
}

// NewRing builds a ring over peers with the given virtual-node count
// per peer (<=0 selects DefaultVNodes). Peer order does not matter and
// duplicates are rejected; every member must agree on the peer set for
// routing to agree.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := append([]string(nil), peers...)
	sort.Strings(uniq)
	for i := 1; i < len(uniq); i++ {
		if uniq[i] == uniq[i-1] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", uniq[i])
		}
	}
	r := &Ring{peers: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for pi, p := range r.peers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", p, v)), peer: pi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on peer index so ring order is deterministic even in
		// the (vanishingly unlikely) event of a 64-bit hash collision.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// ringHash is the first 8 bytes of SHA-256 — stable across processes
// and Go versions (ring agreement requires that; maphash would differ
// per process) and uniform even over the short, similar strings vnode
// labels are, where weaker string hashes visibly skew the load split.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the ring's full membership, sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Owners returns the n distinct peers responsible for key, in replica
// order: the first is the owner, the rest are failover replicas in the
// order a healthy-owner search should try them. n is clamped to the
// peer count.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := ringHash(key)
	// First point clockwise of h (wrapping).
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for off := 0; off < len(r.points) && len(owners) < n; off++ {
		pt := r.points[(i+off)%len(r.points)]
		if !seen[pt.peer] {
			seen[pt.peer] = true
			owners = append(owners, r.peers[pt.peer])
		}
	}
	return owners
}
