// Cluster side of the batch subsystem: a routing item executor. A
// batch job runs entirely on the node that accepted it (job state,
// events, persistence are local), but each item's rewrite goes to the
// peer owning its content hash — the same ring /rewrite routes by — so
// a fleet job enjoys the cluster's cache locality: ten nodes each
// holding a slice of the fleet's analyses beat one node recomputing
// them all.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"icfgpatch/internal/service"
	"icfgpatch/internal/service/batch"
	"icfgpatch/internal/service/wire"
)

// InstallBatch replaces mgr's item executor with one that routes each
// item to its content hash's owning peer. Self-owned items run
// locally; forwarded items carry lane=batch so they land on the remote
// node's batch lane (a fleet job must not jump the priority fence by
// crossing the wire) and the routed marker so they cannot loop.
// Unreachable owners degrade to local execution — routing is a
// cache-locality policy, availability wins.
func (n *Node) InstallBatch(mgr *batch.Manager) {
	local := mgr.LocalExec()
	mgr.SetExec(func(ctx context.Context, it *batch.Item) (*batch.ExecResult, error) {
		owners := n.ring.Owners(it.Hash, n.cfg.Replicas)
		for _, o := range owners {
			if o == n.cfg.Self {
				return local(ctx, it)
			}
		}
		for _, o := range owners {
			if !n.health.Healthy(o) {
				continue
			}
			res, err := n.execItemAt(ctx, o, it)
			if err != nil {
				if service.Transient(err) {
					n.health.MarkDown(o)
				}
				continue
			}
			n.health.MarkUp(o)
			n.forwards.Inc()
			return res, nil
		}
		// Every owner failed or is marked down. Run the item here: a
		// rewrite is byte-identical anywhere, and a deterministic input
		// error will fail locally exactly as it failed remotely.
		return local(ctx, it)
	})
}

// execItemAt runs one item's rewrite on a specific peer over the plain
// /rewrite wire format.
func (n *Node) execItemAt(ctx context.Context, owner string, it *batch.Item) (*batch.ExecResult, error) {
	q, err := url.ParseQuery(it.Opts)
	if err != nil {
		return nil, err
	}
	q.Set("lane", "batch")
	u := strings.TrimSuffix(owner, "/") + "/rewrite?" + q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(it.Input))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(RoutedHeader, n.cfg.Self)
	resp, err := n.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: peer batch item (%s): %s",
			resp.Status, strings.TrimSpace(string(msg)))
	}
	reply, image, err := wire.ReadFrame(resp.Body)
	if err != nil {
		return nil, err
	}
	return &batch.ExecResult{
		Image:   image,
		Path:    service.ReplyCachePath(reply),
		Elapsed: time.Duration(reply.ElapsedUS) * time.Microsecond,
	}, nil
}
