package cluster

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"icfgpatch/internal/service"
)

// DefaultDownTTL is how long a passively marked-down peer stays skipped
// before routing gives it another chance. Short on purpose: a wrong
// mark-down costs one failed forward at worst, while a long TTL keeps
// load off a recovered node.
const DefaultDownTTL = 5 * time.Second

// Health tracks which peers are believed reachable. Marks come from two
// sources: passively, from transient forward/fetch failures (the
// cheapest possible health check — real traffic), and actively, from
// Probe sweeps of /healthz. Mark-downs expire after a TTL so a peer
// that comes back is rediscovered without any coordination.
type Health struct {
	ttl time.Duration

	mu   sync.Mutex
	down map[string]time.Time
}

// NewHealth creates a tracker; ttl<=0 selects DefaultDownTTL.
func NewHealth(ttl time.Duration) *Health {
	if ttl <= 0 {
		ttl = DefaultDownTTL
	}
	return &Health{ttl: ttl, down: make(map[string]time.Time)}
}

// MarkDown records a failed interaction with peer.
func (h *Health) MarkDown(peer string) {
	h.mu.Lock()
	h.down[peer] = time.Now()
	h.mu.Unlock()
}

// MarkUp clears peer's down mark (a successful interaction).
func (h *Health) MarkUp(peer string) {
	h.mu.Lock()
	delete(h.down, peer)
	h.mu.Unlock()
}

// Healthy reports whether peer should be routed to. An expired mark is
// cleared: the peer gets one real request as its probe.
func (h *Health) Healthy(peer string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	at, ok := h.down[peer]
	if !ok {
		return true
	}
	if time.Since(at) > h.ttl {
		delete(h.down, peer)
		return true
	}
	return false
}

// CountHealthy returns how many of peers are currently routable — the
// icfg_cluster_peers_healthy gauge.
func (h *Health) CountHealthy(peers []string) int {
	n := 0
	for _, p := range peers {
		if h.Healthy(p) {
			n++
		}
	}
	return n
}

// Probe actively sweeps every peer's /healthz (self excluded — a node
// is axiomatically reachable from itself) and updates the marks. Each
// probe gets its own short deadline so one hung peer cannot stall the
// sweep budget of the rest.
func (h *Health) Probe(ctx context.Context, hc *http.Client, peers []string, self string) {
	if hc == nil {
		hc = http.DefaultClient
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		pctx, cancel := context.WithTimeout(ctx, time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, strings.TrimSuffix(p, "/")+"/healthz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := hc.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
		switch {
		case err == nil && resp.StatusCode == http.StatusOK:
			h.MarkUp(p)
		case err != nil && !service.Transient(err) && pctx.Err() == nil:
			// Unclassifiable failure: leave the marks alone rather than
			// flap on e.g. a local DNS hiccup.
		default:
			h.MarkDown(p)
		}
	}
}

// ProbeLoop runs Probe every interval until ctx is done.
func (h *Health) ProbeLoop(ctx context.Context, hc *http.Client, peers []string, self string, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			h.Probe(ctx, hc, peers, self)
		}
	}
}
