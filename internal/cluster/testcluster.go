package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"icfgpatch/internal/service"
	"icfgpatch/internal/service/batch"
)

// TestClusterConfig sizes an in-process cluster.
type TestClusterConfig struct {
	// Nodes is the node count (default 3).
	Nodes int
	// Replicas is the replication factor (default DefaultReplicas).
	Replicas int
	// Service is the per-node service config (each node gets its own
	// Server built from a copy).
	Service service.Config
	// PeerTimeout bounds each node's warm-path fetch.
	PeerTimeout time.Duration
	// DownTTL overrides the health mark-down TTL.
	DownTTL time.Duration
	// WrapNode, when set, wraps node i's handler — fault-injection
	// middleware for tests (delays, drops).
	WrapNode func(i int, h http.Handler) http.Handler
	// Batch installs a batch.Manager on every node (cluster-routing
	// executor, /batch HTTP surface) and routes /batch through the
	// gateway. The cap for the gateway's /batch door follows
	// Service.MaxRequestBytes.
	Batch bool
}

// TestCluster is an in-process multi-node cluster: N real
// service.Servers, each wrapped in a cluster Node behind its own
// httptest listener, plus a Gateway fronting them all. Everything runs
// over real HTTP on the loopback interface, so routing, forwarding,
// failover, and the peer warm path are exercised end to end — only the
// machines are missing.
type TestCluster struct {
	Nodes   []*Node
	Servers []*service.Server
	URLs    []string
	Gateway *Gateway
	// Managers holds each node's batch manager (cfg.Batch only).
	Managers []*batch.Manager

	listeners []*httptest.Server
	gwSrv     *httptest.Server
	killed    []bool
}

// NewTestCluster builds and starts the cluster. The listeners come up
// before the nodes exist (each node needs the full URL set, including
// its own), so every listener starts on a placeholder that 503s until
// its node's handler is swapped in.
func NewTestCluster(t testing.TB, cfg TestClusterConfig) *TestCluster {
	t.Helper()
	n := cfg.Nodes
	if n <= 0 {
		n = 3
	}
	tc := &TestCluster{killed: make([]bool, n)}
	handlers := make([]atomic.Pointer[http.Handler], n)
	for i := 0; i < n; i++ {
		idx := i
		ls := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := handlers[idx].Load()
			if h == nil {
				http.Error(w, "node starting", http.StatusServiceUnavailable)
				return
			}
			(*h).ServeHTTP(w, r)
		}))
		tc.listeners = append(tc.listeners, ls)
		tc.URLs = append(tc.URLs, ls.URL)
	}
	for i := 0; i < n; i++ {
		srv := service.New(cfg.Service)
		node, err := NewNode(srv, Config{
			Self:        tc.URLs[i],
			Peers:       tc.URLs,
			Replicas:    cfg.Replicas,
			PeerTimeout: cfg.PeerTimeout,
			DownTTL:     cfg.DownTTL,
		})
		if err != nil {
			t.Fatalf("cluster node %d: %v", i, err)
		}
		tc.Servers = append(tc.Servers, srv)
		tc.Nodes = append(tc.Nodes, node)
		h := node.Handler()
		if cfg.Batch {
			mgr, err := batch.New(srv, batch.Config{MaxRequestBytes: cfg.Service.MaxRequestBytes})
			if err != nil {
				t.Fatalf("batch manager %d: %v", i, err)
			}
			tc.Managers = append(tc.Managers, mgr)
			node.InstallBatch(mgr)
			h = node.HandlerWith(mgr.Handler(srv.Handler()))
			if cfg.WrapNode != nil {
				h = cfg.WrapNode(i, h)
			}
			handlers[i].Store(&h)
			continue
		}
		if cfg.WrapNode != nil {
			h = cfg.WrapNode(i, h)
		}
		handlers[i].Store(&h)
	}
	gw, err := NewGateway(GatewayConfig{
		Peers:           tc.URLs,
		Replicas:        cfg.Replicas,
		DownTTL:         cfg.DownTTL,
		MaxRequestBytes: cfg.Service.MaxRequestBytes,
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	tc.Gateway = gw
	tc.gwSrv = httptest.NewServer(gw.Handler())
	t.Cleanup(tc.Close)
	return tc
}

// GatewayURL is the front door's base URL.
func (tc *TestCluster) GatewayURL() string { return tc.gwSrv.URL }

// NodeClient returns a service client talking directly to node i.
func (tc *TestCluster) NodeClient(i int) *service.Client {
	return &service.Client{BaseURL: tc.URLs[i]}
}

// GatewayClient returns a service client talking through the gateway.
func (tc *TestCluster) GatewayClient() *service.Client {
	return &service.Client{BaseURL: tc.gwSrv.URL}
}

// Kill abruptly takes node i off the network: in-flight connections are
// severed and new ones refused, exactly like a crashed process. The
// node's Server is left un-shutdown on purpose — a crash does not
// drain.
func (tc *TestCluster) Kill(i int) {
	if tc.killed[i] {
		return
	}
	tc.killed[i] = true
	tc.listeners[i].CloseClientConnections()
	tc.listeners[i].Close()
}

// Close tears the cluster down.
func (tc *TestCluster) Close() {
	tc.gwSrv.Close()
	for i, ls := range tc.listeners {
		if !tc.killed[i] {
			ls.Close()
		}
	}
}
