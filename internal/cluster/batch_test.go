package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/core"
	"icfgpatch/internal/service"
	"icfgpatch/internal/service/wire"
)

// TestClusterBatchThroughGateway drives a fleet job through the front
// door: a 10-item manifest over 3 distinct binaries lands on one node
// (by manifest hash), each item routes to its binary's ring owner, the
// SSE progress feed proxies back through the gateway, and every output
// is byte-identical to a single-process rewrite. The cluster-wide
// analysis count must still be 3 — item routing keeps the dedupe that
// single-node batches get from the analysis store.
func TestClusterBatchThroughGateway(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Batch: true})
	raws := [][]byte{
		clusterBinary(t, arch.X64, 61),
		clusterBinary(t, arch.X64, 62),
		clusterBinary(t, arch.X64, 63),
	}
	want := make([][]byte, len(raws))
	for i, raw := range raws {
		want[i] = localWant(t, raw, core.ModeJT)
	}
	man := wire.BatchManifest{}
	for i := 0; i < 10; i++ {
		man.Items = append(man.Items, wire.BatchItem{
			Name:   fmt.Sprintf("fleet-%d", i),
			Binary: raws[i%len(raws)],
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cl := tc.GatewayClient()
	acc, err := cl.BatchSubmit(ctx, man)
	if err != nil {
		t.Fatalf("submit through gateway: %v", err)
	}
	if acc.Items != 10 {
		t.Fatalf("accepted %d items, want 10", acc.Items)
	}

	// Follow the SSE feed through the gateway's streaming proxy to the
	// job's end; the event contract itself is covered in the batch
	// package — here the point is that the proxy relays it live.
	var last wire.BatchEvent
	itemsDone := 0
	if err := cl.BatchEvents(ctx, acc.ID, 0, func(ev wire.BatchEvent) bool {
		if ev.Type == wire.EventItemDone {
			itemsDone++
		}
		last = ev
		return true
	}); err != nil {
		t.Fatalf("event stream through gateway: %v", err)
	}
	if last.Type != wire.EventJobDone {
		t.Fatalf("stream ended on %s, want %s", last.Type, wire.EventJobDone)
	}
	if itemsDone != 10 {
		t.Errorf("%d item-done events, want 10", itemsDone)
	}

	st, err := cl.BatchStatus(ctx, acc.ID)
	if err != nil {
		t.Fatalf("status through gateway: %v", err)
	}
	if st.State != wire.BatchDone {
		t.Fatalf("job state = %s, want %s", st.State, wire.BatchDone)
	}
	for i := 0; i < 10; i++ {
		image, err := cl.BatchOutput(ctx, acc.ID, i)
		if err != nil {
			t.Fatalf("output %d through gateway: %v", i, err)
		}
		if !bytes.Equal(image, want[i%len(raws)]) {
			t.Errorf("item %d output differs from single-process rewrite", i)
		}
	}

	// Dedupe held across the cluster: 3 distinct binaries, each analyzed
	// exactly once on whichever node owns its hash.
	misses := uint64(0)
	for _, srv := range tc.Servers {
		misses += srv.Stats().Analyses.Misses
	}
	if misses != 3 {
		t.Errorf("cluster-wide analysis misses = %d, want 3", misses)
	}
}

// TestClusterBatchBodyCap verifies the request-body cap on every
// cluster door: node /rewrite and /batch, gateway /rewrite and /batch
// all draw 413 for a body one byte over the cap.
func TestClusterBatchBodyCap(t *testing.T) {
	const cap = 4096
	tc := NewTestCluster(t, TestClusterConfig{
		Batch:   true,
		Service: service.Config{MaxRequestBytes: cap},
	})
	post := func(base, path string) int {
		resp, err := http.Post(base+path, "application/octet-stream",
			strings.NewReader(strings.Repeat("x", cap+1)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, door := range []struct {
		name string
		base string
		path string
	}{
		{"node /rewrite", tc.URLs[0], "/rewrite?mode=jt"},
		{"node /batch", tc.URLs[0], "/batch"},
		{"gateway /rewrite", tc.GatewayURL(), "/rewrite?mode=jt"},
		{"gateway /batch", tc.GatewayURL(), "/batch"},
	} {
		if code := post(door.base, door.path); code != http.StatusRequestEntityTooLarge {
			t.Errorf("over-cap POST to %s: %d, want 413", door.name, code)
		}
	}
}
