package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"icfgpatch/internal/arch"
	"icfgpatch/internal/bin"
	"icfgpatch/internal/core"
	"icfgpatch/internal/instrument"
	"icfgpatch/internal/store"
	"icfgpatch/internal/workload"
)

var clusterArches = []arch.Arch{arch.X64, arch.PPC, arch.A64}
var clusterModes = []core.Mode{core.ModeDir, core.ModeJT, core.ModeFuncPtr}

func clusterProfile(seed int64) workload.Profile {
	return workload.Profile{
		Name: "cluster", Seed: seed, Lang: "c++",
		Funcs: 14, SwitchFrac: 0.35, SpillFrac: 0.2,
		TinyFrac: 0.1, Exceptions: true, StackCalls: true, Iters: 4,
	}
}

func clusterBinary(t *testing.T, a arch.Arch, seed int64) []byte {
	t.Helper()
	p, err := workload.Generate(a, false, clusterProfile(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p.Binary.Marshal()
}

func clusterOpts(mode core.Mode) core.Options {
	return core.Options{Mode: mode, Request: instrument.Request{
		Where: instrument.BlockEntry, Payload: instrument.PayloadEmpty,
	}}
}

// localWant computes the single-process reference bytes for raw.
func localWant(t *testing.T, raw []byte, mode core.Mode) []byte {
	t.Helper()
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Rewrite(img, clusterOpts(mode))
	if err != nil {
		t.Fatal(err)
	}
	return res.Binary.Marshal()
}

func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(strings.TrimSuffix(base, "/") + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestClusterByteEquivalence is the cluster's ground truth: the same
// request, served by every node and by the gateway, across all three
// arches and all three modes, must emit bytes identical to a
// single-process core rewrite. With replicas == N every node is an
// owner and serves locally, so each node's full local pipeline is
// exercised — including the peer warm path, since later nodes seed
// their unit stores from whichever node analyzed the binary first.
func TestClusterByteEquivalence(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 3, Replicas: 3})
	for _, a := range clusterArches {
		raw := clusterBinary(t, a, 21)
		for _, mode := range clusterModes {
			t.Run(fmt.Sprintf("%s/%s", a, mode), func(t *testing.T) {
				want := localWant(t, raw, mode)
				for i := range tc.Nodes {
					got, _, err := tc.NodeClient(i).Rewrite(context.Background(), raw, clusterOpts(mode))
					if err != nil {
						t.Fatalf("node %d: %v", i, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("node %d diverged from local rewrite (%d vs %d bytes)", i, len(got), len(want))
					}
				}
				got, _, err := tc.GatewayClient().Rewrite(context.Background(), raw, clusterOpts(mode))
				if err != nil {
					t.Fatalf("gateway: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatal("gateway diverged from local rewrite")
				}
			})
		}
	}
}

// TestClusterFailover kills the owning peer mid-workload and requires
// the cluster to keep serving byte-identical output across every arch
// and mode: the gateway and the surviving nodes must fail over to the
// replica (or serve locally as a last resort) without any client-visible
// difference beyond latency.
func TestClusterFailover(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 3, Replicas: 2})
	type combo struct {
		raw  []byte
		mode core.Mode
		want []byte
	}
	var combos []combo
	for _, a := range clusterArches {
		raw := clusterBinary(t, a, 22)
		for _, mode := range clusterModes {
			combos = append(combos, combo{raw: raw, mode: mode, want: localWant(t, raw, mode)})
		}
	}

	// Phase 1: full cluster. Everything through the gateway.
	gw := tc.GatewayClient()
	for ci, c := range combos {
		got, _, err := gw.Rewrite(context.Background(), c.raw, clusterOpts(c.mode))
		if err != nil {
			t.Fatalf("pre-kill combo %d: %v", ci, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Fatalf("pre-kill combo %d diverged", ci)
		}
	}

	// Kill the node that owns the first binary, mid-workload.
	victimURL := tc.Nodes[0].Owners(store.Hash(combos[0].raw))[0]
	victim := -1
	for i, u := range tc.URLs {
		if u == victimURL {
			victim = i
		}
	}
	if victim < 0 {
		t.Fatalf("owner %s not in cluster", victimURL)
	}
	tc.Kill(victim)

	// Phase 2: same workload again — through the gateway and directly
	// against every surviving node.
	for ci, c := range combos {
		got, _, err := gw.Rewrite(context.Background(), c.raw, clusterOpts(c.mode))
		if err != nil {
			t.Fatalf("post-kill combo %d via gateway: %v", ci, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Fatalf("post-kill combo %d via gateway diverged", ci)
		}
		for i := range tc.Nodes {
			if i == victim {
				continue
			}
			got, _, err := tc.NodeClient(i).Rewrite(context.Background(), c.raw, clusterOpts(c.mode))
			if err != nil {
				t.Fatalf("post-kill combo %d via node %d: %v", ci, i, err)
			}
			if !bytes.Equal(got, c.want) {
				t.Fatalf("post-kill combo %d via node %d diverged", ci, i)
			}
		}
	}
}

// TestClusterPeerWarmPath pins the federated unit store: after node A
// analyzes a binary, node B's first request for it must fetch A's
// function units instead of recomputing — FuncsRecomputed == 0 on B,
// with the units attributed as peer hits (not disk hits) in B's stats.
func TestClusterPeerWarmPath(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 3, Replicas: 3})
	raw := clusterBinary(t, arch.X64, 23)
	opts := clusterOpts(core.ModeJT)

	_, cold, err := tc.NodeClient(0).Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FuncsRecomputed == 0 {
		t.Fatal("cold rewrite recomputed nothing; test premise broken")
	}

	_, warm, err := tc.NodeClient(1).Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FuncsRecomputed != 0 {
		t.Fatalf("peer-warmed rewrite recomputed %d funcs, want 0", warm.FuncsRecomputed)
	}
	if warm.FuncsReused != cold.FuncsRecomputed {
		t.Fatalf("peer-warmed rewrite reused %d funcs, want %d", warm.FuncsReused, cold.FuncsRecomputed)
	}

	st, err := tc.NodeClient(1).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Funcs.PeerHits == 0 {
		t.Fatalf("node 1 unit store reports no peer hits: %+v", st.Funcs)
	}
	if st.Funcs.DiskHits != 0 {
		t.Fatalf("peer units misattributed as disk hits: %+v", st.Funcs)
	}

	metrics := scrape(t, tc.URLs[1])
	if !strings.Contains(metrics, "icfg_cluster_peer_hits_total 1") {
		t.Fatalf("node 1 metrics missing peer hit:\n%s", metrics)
	}
}

// TestClusterPeerTimeout: a peer that cannot answer the unit fetch
// within PeerTimeout is treated as a miss — the analysis recomputes
// locally and the request still succeeds with identical bytes.
func TestClusterPeerTimeout(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{
		Nodes: 3, Replicas: 3, PeerTimeout: 50 * time.Millisecond,
		WrapNode: func(i int, h http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/peer/units" {
					time.Sleep(300 * time.Millisecond)
				}
				h.ServeHTTP(w, r)
			})
		},
	})
	raw := clusterBinary(t, arch.A64, 24)
	opts := clusterOpts(core.ModeJT)
	want := localWant(t, raw, core.ModeJT)

	if _, _, err := tc.NodeClient(0).Rewrite(context.Background(), raw, opts); err != nil {
		t.Fatal(err)
	}
	got, reply, err := tc.NodeClient(1).Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("timeout-fallback rewrite diverged")
	}
	if reply.FuncsRecomputed == 0 {
		t.Fatal("node 1 claims reuse although the peer fetch should have timed out")
	}
	st, err := tc.NodeClient(1).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Funcs.PeerHits != 0 {
		t.Fatalf("peer hits recorded despite timeout: %+v", st.Funcs)
	}
	metrics := scrape(t, tc.URLs[1])
	if !strings.Contains(metrics, "icfg_cluster_peer_misses_total 1") {
		t.Fatalf("node 1 metrics missing peer miss:\n%s", metrics)
	}
}

// TestClusterMetricsScrape checks the cluster series on the wire: a
// non-owner node's forward increments icfg_cluster_forwards_total, the
// healthy gauge counts the full membership, and the gateway exposes its
// own forward counter.
func TestClusterMetricsScrape(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 3, Replicas: 1})
	raw := clusterBinary(t, arch.PPC, 25)
	opts := clusterOpts(core.ModeDir)
	want := localWant(t, raw, core.ModeDir)

	owner := tc.Nodes[0].Owners(store.Hash(raw))[0]
	nonOwner := -1
	for i, u := range tc.URLs {
		if u != owner {
			nonOwner = i
			break
		}
	}
	got, _, err := tc.NodeClient(nonOwner).Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("forwarded rewrite diverged")
	}

	metrics := scrape(t, tc.URLs[nonOwner])
	for _, line := range []string{
		"icfg_cluster_forwards_total 1",
		"icfg_cluster_peers_healthy 3",
		"icfg_cluster_peer_hits_total 0",
		"icfg_cluster_peer_misses_total 0",
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("node metrics missing %q", line)
		}
	}

	if _, _, err := tc.GatewayClient().Rewrite(context.Background(), raw, opts); err != nil {
		t.Fatal(err)
	}
	gm := scrape(t, tc.GatewayURL())
	for _, line := range []string{
		"icfg_cluster_forwards_total 1",
		"icfg_cluster_peers_healthy 3",
	} {
		if !strings.Contains(gm, line) {
			t.Errorf("gateway metrics missing %q", line)
		}
	}
}

// TestClusterProfilePassThrough: a profile-framed rewrite through the
// cluster — including forwarded requests, since replicas=1 means most
// nodes do not own the body's content hash — must produce bytes
// identical to the local guided rewrite. The cluster treats the framed
// body as opaque: the profile participates in routing via the body
// hash and is split only by the serving node's door.
func TestClusterProfilePassThrough(t *testing.T) {
	tc := NewTestCluster(t, TestClusterConfig{Nodes: 3, Replicas: 1})
	raw := clusterBinary(t, arch.X64, 33)
	img, err := bin.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	an, err := core.Analyze(img, core.AnalysisConfig{Mode: core.ModeJT})
	if err != nil {
		t.Fatal(err)
	}
	heat := make(map[uint64]uint64)
	for i, f := range an.Graph.Funcs {
		heat[f.Entry] = uint64(1 + 400*(i%3/2))
	}
	prof := an.ProfileFromHeat("cluster", heat)
	opts := core.Options{Mode: core.ModeJT, Request: instrument.Request{
		Where: instrument.BlockEntry, Payload: instrument.PayloadCounter,
	}, Profile: prof}
	want, err := an.Patch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.VariantFuncs == 0 {
		t.Fatal("cluster fixture profile planned no variants")
	}
	wantBytes := want.Binary.Marshal()
	for i := range tc.Nodes {
		got, reply, err := tc.NodeClient(i).Rewrite(context.Background(), raw, opts)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if !bytes.Equal(got, wantBytes) {
			t.Fatalf("node %d guided rewrite diverged from local", i)
		}
		if reply.Stats.VariantFuncs == 0 {
			t.Fatalf("node %d dropped the profile in transit", i)
		}
	}
	got, _, err := tc.GatewayClient().Rewrite(context.Background(), raw, opts)
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	if !bytes.Equal(got, wantBytes) {
		t.Fatal("gateway guided rewrite diverged from local")
	}
}
