package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A second ring from the same peers in a different order must agree
	// on every routing decision — the cluster's core invariant.
	r2, err := NewRing([]string{"http://d", "http://b", "http://a", "http://c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("hash-%d", i)
		o1 := r1.Owners(key, 3)
		o2 := r2.Owners(key, 3)
		if len(o1) != 3 {
			t.Fatalf("Owners(%q, 3) returned %d peers", key, len(o1))
		}
		seen := map[string]bool{}
		for j, p := range o1 {
			if seen[p] {
				t.Fatalf("Owners(%q) repeated peer %s", key, p)
			}
			seen[p] = true
			if o2[j] != p {
				t.Fatalf("rings disagree on %q: %v vs %v", key, o1, o2)
			}
		}
	}
}

func TestRingOwnersClamp(t *testing.T) {
	r, err := NewRing([]string{"http://a", "http://b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Fatalf("Owners clamped to %d, want 2", len(got))
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("Owners(k, 0) = %d peers, want 1", len(got))
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("key-%d", i), 1)[0]]++
	}
	for p, c := range counts {
		frac := float64(c) / keys
		// With 128 vnodes the split stays well inside [1/6, 1/2] for
		// three peers; a gross imbalance means the vnode hashing
		// regressed.
		if frac < 1.0/6 || frac > 0.5 {
			t.Errorf("peer %s owns %.1f%% of keys", p, 100*frac)
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer set accepted")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0); err == nil {
		t.Error("duplicate peer accepted")
	}
}
